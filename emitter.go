package rvgo

import (
	"fmt"

	"rvgo/internal/monitor"
	"rvgo/internal/param"
)

// Emitter is a pre-resolved parametric event: the symbol and parameter
// binding of one event of one Monitor, resolved once by Event. Its Emit
// is the hot path of the façade — no per-event name lookup, no
// allocation: on the sequential backend Emit is 0 allocs/op (enforced by
// benchmark and by the rvbench micro gate).
//
// An Emitter is a small value; copy it freely. It is valid for the
// lifetime of the Monitor that resolved it and is as safe for concurrent
// use as that Monitor's backend.
type Emitter struct {
	rt     monitor.Runtime
	params param.Set
	sym    int32
	arity  int32
	name   string
}

// Event resolves an event name to an Emitter. The error contract is
// EmitNamed's: unknown names are reported, nothing is dispatched.
func (m *Monitor) Event(name string) (Emitter, error) {
	ms := m.rt.Spec()
	sym, ok := ms.Symbol(name)
	if !ok {
		return Emitter{}, fmt.Errorf("rvgo: property %q has no event %q", ms.Name, name)
	}
	ps := ms.Events[sym].Params
	return Emitter{rt: m.rt, params: ps, sym: int32(sym), arity: int32(ps.Count()), name: name}, nil
}

// MustEvent is Event, panicking on unknown names: for the common case
// where the event list is spelled next to the spec that declares it.
func (m *Monitor) MustEvent(name string) Emitter {
	em, err := m.Event(name)
	if err != nil {
		panic(err)
	}
	return em
}

// Name returns the event name the Emitter was resolved from.
func (e Emitter) Name() string { return e.name }

// Arity returns the number of parameter objects Emit expects.
func (e Emitter) Arity() int { return int(e.arity) }

// Emit dispatches the event over vals, which bind the event's parameters
// in binding order and must all be alive. Arity mismatches panic — an
// Emitter is resolved against the spec, so a mismatch is a programming
// error at the call site, not input to validate per event.
func (e Emitter) Emit(vals ...Ref) {
	if len(vals) != int(e.arity) {
		panic(fmt.Sprintf("rvgo: event %q takes %d values, got %d", e.name, e.arity, len(vals)))
	}
	e.rt.Dispatch(int(e.sym), param.Of(e.params, vals...))
}
