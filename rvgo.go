package rvgo

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"rvgo/internal/cluster"
	"rvgo/internal/metrics"
	"rvgo/internal/monitor"
	"rvgo/internal/remote"
	"rvgo/internal/shard"
	"rvgo/internal/trace"
	"rvgo/spec"
)

// Monitor is a running parametric monitor: one property (built with
// rvgo/spec), one backend. The backend — the paper's sequential engine,
// the sharded concurrent runtime, or a remote session against a
// monitoring server — is chosen by the options passed to New and is
// invisible afterwards: every Monitor supports the same event, death,
// synchronization and counter surface, and the conformance suite holds
// all backends to the same observable behavior.
//
// Concurrency: with the sequential backend (the default) a Monitor is
// single-threaded. With WithShards(n > 1), WithRemote or WithCluster,
// Emit, EmitNamed, Dispatch, Emitter.Emit, Free, FreeAsync, Barrier,
// Flush and Stats are safe for concurrent use.
type Monitor struct {
	rt     monitor.Runtime
	sp     *spec.Spec
	rem    *remote.Client
	clu    *cluster.Client
	tp     *tap            // non-nil with WithRecord/WithFlightRecorder/remote WithMetrics
	flight *flightRecorder // non-nil with WithFlightRecorder
	met    *Metrics        // non-nil with WithMetrics

	verdicts  chan Verdict
	closeOnce sync.Once
}

type config struct {
	gc         GCPolicy
	creation   CreationStrategy
	avoid      AvoidMode
	profGuards []bool
	profile    *CreationProfile
	shards     int
	sweep      int
	batch      int
	depth      int
	remoteAddr string
	remoteConn net.Conn
	nodes      []string
	hashSeed   uint64
	hasSeed    bool
	window     int
	handler    func(Verdict)
	streamBuf  int
	hasStream  bool
	recordPath string
	flightN    int
	met        *Metrics
}

// Option configures a Monitor under construction.
type Option func(*config) error

// WithGC selects the monitor garbage-collection policy (default
// GCCoenable, the paper's contribution).
func WithGC(p GCPolicy) Option {
	return func(c *config) error {
		switch p {
		case GCNone, GCAllDead, GCCoenable:
			c.gc = p
			return nil
		}
		return fmt.Errorf("rvgo: unknown GC policy %d (want GCCoenable, GCAllDead or GCNone)", int(p))
	}
}

// WithCreation selects the monitor creation strategy (default
// CreateEnable). CreateFull is the Figure 5 semantic oracle and requires
// the sequential backend.
func WithCreation(s CreationStrategy) Option {
	return func(c *config) error {
		switch s {
		case CreateEnable, CreateFull:
			c.creation = s
			return nil
		}
		return fmt.Errorf("rvgo: unknown creation strategy %d (want CreateEnable or CreateFull)", int(s))
	}
}

// WithAvoidance selects the creation-avoidance mode (default AvoidOff):
// the static doomed-monitor analysis (and any profile guards, see
// WithProfileGuards) consulted before a monitor is materialized. AvoidAudit
// counts guard hits in Stats.Avoided without changing behavior; AvoidEnforce
// suppresses guarded creations while keeping per-slice verdicts
// bit-identical to the unguarded engine. Enforcement under CreateFull
// additionally requires GCNone (see the engine's soundness boundary).
// Works on every backend; the mode travels in the session handshake for
// remote and cluster Monitors.
func WithAvoidance(mode AvoidMode) Option {
	return func(c *config) error {
		switch mode {
		case AvoidOff, AvoidAudit, AvoidEnforce:
			c.avoid = mode
			return nil
		}
		return fmt.Errorf("rvgo: unknown avoidance mode %d (want AvoidOff, AvoidAudit or AvoidEnforce)", int(mode))
	}
}

// WithProfileGuards installs a per-symbol profile-guard vector — usually
// CreationProfile.Guards from a recorded-trace replay — consulted by the
// avoidance guard alongside the static analysis. Effective only with
// WithAvoidance(AvoidAudit or AvoidEnforce); enforcement is restricted to
// maximal-domain creations, so suppression can never starve a monitor the
// property still needs. Local backends only: the vector does not cross the
// wire.
func WithProfileGuards(guards []bool) Option {
	return func(c *config) error {
		if len(guards) == 0 {
			return errors.New("rvgo: WithProfileGuards: empty guard vector")
		}
		c.profGuards = guards
		return nil
	}
}

// WithCreationProfile attaches a per-creation-site statistics accumulator
// (see NewCreationProfile): for each event symbol, how many monitors were
// born at it, re-stepped after birth, and ever reached a goal. Read the
// profile after Flush or Close; feed its Guards() back through
// WithProfileGuards on a later run. Sequential backend only — the counters
// are engine-local and unsynchronized.
func WithCreationProfile(p *CreationProfile) Option {
	return func(c *config) error {
		if p == nil {
			return errors.New("rvgo: WithCreationProfile: nil profile")
		}
		c.profile = p
		return nil
	}
}

// WithShards selects the backend shape: 1 is the sequential engine
// (also the local default when the option is omitted), n > 1 the sharded
// concurrent runtime with n worker engines. Combined with WithRemote it
// sizes the server-side backend of the session instead; there, omitting
// the option leaves the choice to the server's configured default.
func WithShards(n int) Option {
	return func(c *config) error {
		if n < 1 {
			return fmt.Errorf("rvgo: WithShards(%d): shard count must be >= 1 (1 = sequential engine, >1 = sharded runtime)", n)
		}
		c.shards = n
		return nil
	}
}

// WithBatch tunes the sharded runtime's ingestion batching: events per
// mailbox send and mailbox depth in batches (zero keeps a default).
// Requires WithShards(n > 1).
func WithBatch(size, depth int) Option {
	return func(c *config) error {
		if size < 0 || depth < 0 {
			return fmt.Errorf("rvgo: WithBatch(%d, %d): sizes must be >= 0", size, depth)
		}
		c.batch, c.depth = size, depth
		return nil
	}
}

// WithSweepInterval sets the number of events between the engine's
// tombstone sweeps (0 keeps the default). Local backends only.
func WithSweepInterval(n int) Option {
	return func(c *config) error {
		if n < 0 {
			return fmt.Errorf("rvgo: WithSweepInterval(%d): interval must be >= 0", n)
		}
		c.sweep = n
		return nil
	}
}

// WithRemote monitors over the network: the Monitor becomes a session
// against the monitoring server at addr (cmd/rvserve, or a Server from
// NewServer). The spec must carry transferable provenance — built by
// spec.Builtin or compiled from .rv source — because both ends compile it
// independently and verify the result in the handshake. Object deaths
// become protocol-level free messages: call Free/FreeAsync explicitly
// (or attach through package rv, which does).
func WithRemote(addr string) Option {
	return func(c *config) error {
		if addr == "" {
			return errors.New("rvgo: WithRemote: empty address")
		}
		c.remoteAddr = addr
		return nil
	}
}

// WithRemoteConn is WithRemote over an already-established connection
// (a test pipe, a tunneled stream). The Monitor owns the connection.
func WithRemoteConn(conn net.Conn) Option {
	return func(c *config) error {
		if conn == nil {
			return errors.New("rvgo: WithRemoteConn: nil connection")
		}
		c.remoteConn = conn
		return nil
	}
}

// WithCluster monitors across a cluster of monitoring servers: the
// Monitor becomes one logical session whose slices are spread over the
// given rvserve nodes by consistent-hashing the property's pivot
// parameter. Everything WithRemote requires applies (transferable spec
// provenance, explicit Free/FreeAsync deaths); additionally the session
// must use enable-set creation — the guarantee that every monitor binds
// the pivot is what makes the slice placement sound. Events that do not
// bind the pivot broadcast to every node under an all-or-nothing credit
// discipline, nodes may join and leave mid-run (see Monitor.Nodes), and a
// node crash re-homes its slices onto the survivors by deterministic
// journal replay, preserving exact verdict and counter semantics.
// WithCluster(addr) with a single node is equivalent in observable
// behavior to WithRemote(addr).
func WithCluster(addrs ...string) Option {
	return func(c *config) error {
		if len(addrs) == 0 {
			return errors.New("rvgo: WithCluster: no node addresses")
		}
		for _, a := range addrs {
			if a == "" {
				return errors.New("rvgo: WithCluster: empty node address")
			}
		}
		c.nodes = append([]string(nil), addrs...)
		return nil
	}
}

// WithHashSeed perturbs the cluster's pivot→slot and slot→node hashes.
// Sessions that must agree on slice placement should share a seed; a
// single session can leave it unset. Cluster sessions only.
func WithHashSeed(seed uint64) Option {
	return func(c *config) error {
		c.hashSeed = seed
		c.hasSeed = true
		return nil
	}
}

// WithWindow caps a remote session's event-credit window (0 accepts the
// server's). Remote sessions only.
func WithWindow(n int) Option {
	return func(c *config) error {
		if n < 0 {
			return fmt.Errorf("rvgo: WithWindow(%d): window must be >= 0", n)
		}
		c.window = n
		return nil
	}
}

// WithVerdictHandler installs f as the verdict handler.
//
// The invocation context is backend-specific, and that difference is part
// of the contract:
//
//   - sequential engine: f runs synchronously on the goroutine calling
//     Emit/Dispatch, before the call returns.
//   - sharded runtime: f runs on worker goroutines. Invocations are
//     serialized (no two run concurrently), so f itself needs no lock,
//     but state f mutates must only be read by other goroutines after a
//     Barrier, Flush or Close — those operations order every handler
//     invocation for already-dispatched events before their return.
//   - remote session: f runs on the session's reader goroutine, in
//     per-slice order. It must not call back into the Monitor.
//
// Under all backends f must be fast: it runs inside the dispatch path.
func WithVerdictHandler(f func(Verdict)) Option {
	return func(c *config) error {
		c.handler = f
		return nil
	}
}

// WithRecord taps every dispatched event and object death into a
// persistent trace at path — the append-only segment format read by
// cmd/rvquery — while the Monitor runs normally. Recording works on every
// backend; the trace captures the stream at the façade, so a later replay
// reproduces the online run's verdicts and settled counters exactly,
// under any backend and GC policy. Recording errors (a full disk, a
// vanished directory) are sticky and surfaced by Err; the trace is sealed
// by Close, and Flush also seals the open segment so the on-disk trace
// catches up to the flush point.
func WithRecord(path string) Option {
	return func(c *config) error {
		if path == "" {
			return errors.New("rvgo: WithRecord: empty path")
		}
		c.recordPath = path
		return nil
	}
}

// WithFlightRecorder keeps a fixed-size in-memory ring of the last n
// records (events and deaths) crossing the façade, on every backend.
// When a goal verdict is delivered the ring is snapshotted, and
// LastWindow(ref) retrieves the window behind the most recent verdict
// that bound ref — the recent-event context of a failure, without
// recording the whole run. Recording into the ring does not allocate.
func WithFlightRecorder(n int) Option {
	return func(c *config) error {
		if n < 1 {
			return fmt.Errorf("rvgo: WithFlightRecorder(%d): window size must be >= 1", n)
		}
		c.flightN = n
		return nil
	}
}

// WithVerdictStream makes the Monitor deliver verdicts to a channel of
// the given buffer size, returned by Verdicts. Delivery blocks when the
// buffer is full — natural backpressure, but it means the consumer must
// drain the channel concurrently with event emission (or size the buffer
// for the expected verdict volume). The channel is closed by Close, so
// `for v := range m.Verdicts()` terminates. Composes with
// WithVerdictHandler: the handler runs first.
func WithVerdictStream(buffer int) Option {
	return func(c *config) error {
		if buffer < 0 {
			return fmt.Errorf("rvgo: WithVerdictStream(%d): buffer must be >= 0", buffer)
		}
		c.streamBuf = buffer
		c.hasStream = true
		return nil
	}
}

// New builds a Monitor for a property. With no options it monitors on the
// in-process sequential engine with coenable-set GC and enable-set
// creation avoidance — the paper's configuration. The spec's validation
// and static analyses have already run at build time, so New only wires
// the backend; a non-nil Monitor is ready for events.
func New(s *spec.Spec, opts ...Option) (*Monitor, error) {
	if s == nil {
		return nil, errors.New("rvgo: nil spec")
	}
	// cfg.shards stays 0 when WithShards is omitted: locally that means
	// the sequential engine; remotely it lets the server's configured
	// default backend apply (the wire Hello carries 0).
	cfg := config{gc: GCCoenable, creation: CreateEnable}
	// fail releases a caller-supplied connection on every construction
	// error: the Monitor owns it from the moment the option is applied,
	// even if New never reaches the handshake.
	fail := func(err error) (*Monitor, error) {
		if cfg.remoteConn != nil {
			cfg.remoteConn.Close()
		}
		return nil, err
	}
	for _, o := range opts {
		if o == nil {
			continue
		}
		if err := o(&cfg); err != nil {
			return fail(err)
		}
	}
	remote := cfg.remoteAddr != "" || cfg.remoteConn != nil
	clustered := len(cfg.nodes) > 0
	networked := remote || clustered
	if cfg.remoteAddr != "" && cfg.remoteConn != nil {
		return fail(errors.New("rvgo: WithRemote and WithRemoteConn are mutually exclusive"))
	}
	if clustered && remote {
		return fail(errors.New("rvgo: WithCluster and WithRemote/WithRemoteConn are mutually exclusive"))
	}
	if cfg.hasSeed && !clustered {
		return fail(errors.New("rvgo: WithHashSeed applies only to cluster sessions (WithCluster)"))
	}
	if clustered && cfg.shards != 0 {
		return fail(errors.New("rvgo: WithShards does not apply to cluster sessions: the cluster already shards by pivot across nodes, and its per-node sessions must stay sequential"))
	}
	if cfg.window != 0 && !networked {
		return fail(errors.New("rvgo: WithWindow applies only to remote and cluster sessions"))
	}
	if (cfg.batch != 0 || cfg.depth != 0) && (networked || cfg.shards <= 1) {
		return fail(errors.New("rvgo: WithBatch requires a local sharded backend (WithShards(n > 1))"))
	}
	if cfg.sweep != 0 && networked {
		return fail(errors.New("rvgo: WithSweepInterval is not supported for remote or cluster sessions"))
	}
	if cfg.profGuards != nil && networked {
		return fail(errors.New("rvgo: WithProfileGuards requires a local backend (the guard vector does not cross the wire)"))
	}
	if cfg.profile != nil && (networked || cfg.shards > 1) {
		return fail(errors.New("rvgo: WithCreationProfile requires the sequential backend (the profile counters are engine-local)"))
	}

	m := &Monitor{sp: s}
	handler := cfg.handler
	if cfg.flightN > 0 {
		// Snapshot before the user handler runs, so a handler (or a
		// goroutine it signals) calling LastWindow sees this verdict's
		// window already captured.
		m.flight = newFlightRecorder(cfg.flightN)
		user := handler
		handler = func(v Verdict) {
			m.flight.onVerdict(v)
			if user != nil {
				user(v)
			}
		}
	}
	if cfg.hasStream {
		ch := make(chan Verdict, cfg.streamBuf)
		m.verdicts = ch
		user := handler
		handler = func(v Verdict) {
			if user != nil {
				user(v)
			}
			ch <- v
		}
	}

	m.met = cfg.met
	// cli counts the remote session's client-side stream: with WithRemote
	// the engine (and its rv_engine_* series) lives in the server, so the
	// local registry carries rv_client_* totals instead, counted at the tap.
	var cli *metrics.ClientSeries
	switch {
	case networked:
		if cfg.met != nil {
			cli = metrics.NewClientSeries(cfg.met.reg, s.Name())
			cs, user := cli, handler
			handler = func(v Verdict) {
				cs.Verdicts.Inc()
				if user != nil {
					user(v)
				}
			}
		}
		if clustered {
			cl, err := m.dialCluster(cfg, handler)
			if err != nil {
				return fail(err)
			}
			m.rt, m.clu = cl, cl
			break
		}
		cl, err := m.dialRemote(cfg, handler)
		if err != nil {
			// remote.NewSession closes the connection on handshake
			// errors itself; closing again is a harmless no-op, and the
			// pre-handshake errors (provenance) need it.
			return fail(err)
		}
		m.rt, m.rem = cl, cl
	case cfg.shards > 1:
		so := shard.Options{
			Options: monitor.Options{
				GC:            cfg.gc,
				Creation:      cfg.creation,
				Avoid:         cfg.avoid,
				ProfileGuards: cfg.profGuards,
				OnVerdict:     handler,
				SweepInterval: cfg.sweep,
			},
			Shards:       cfg.shards,
			BatchSize:    cfg.batch,
			MailboxDepth: cfg.depth,
		}
		if cfg.met != nil {
			// All workers share one engine series; delta publication makes
			// their counters sum, and the runtime adds per-shard series.
			so.Options.Metrics = metrics.NewEngineSeries(cfg.met.reg, s.Name(), cfg.gc.String())
			so.MetricsRegistry = cfg.met.reg
			so.MetricsLabel = s.Name()
		}
		rt, err := shard.New(s.Compiled(), so)
		if err != nil {
			return nil, err
		}
		m.rt = rt
	default:
		mo := monitor.Options{
			GC:            cfg.gc,
			Creation:      cfg.creation,
			Avoid:         cfg.avoid,
			ProfileGuards: cfg.profGuards,
			Profile:       cfg.profile,
			OnVerdict:     handler,
			SweepInterval: cfg.sweep,
		}
		if cfg.met != nil {
			mo.Metrics = metrics.NewEngineSeries(cfg.met.reg, s.Name(), cfg.gc.String())
		}
		eng, err := monitor.New(s.Compiled(), mo)
		if err != nil {
			return nil, err
		}
		m.rt = eng
	}
	if cfg.recordPath != "" || m.flight != nil || cli != nil {
		// The tap becomes the Monitor's runtime before anything resolves
		// an Emitter, so every ingestion path is recorded.
		t := &tap{rt: m.rt, cli: cli}
		if m.flight != nil {
			t.ring = m.flight.ring
		}
		if cfg.recordPath != "" {
			wo := trace.WriterOptions{}
			if cfg.met != nil {
				wo.Metrics = metrics.NewTraceSeries(cfg.met.reg, s.Name())
			}
			w, err := trace.CreateForSpec(cfg.recordPath, s.Compiled(), wo)
			if err != nil {
				m.rt.Close()
				return nil, err
			}
			t.rec = w
		}
		m.tp, m.rt = t, t
	}
	return m, nil
}

// NewCreationProfile returns an empty creation profile sized for the
// property, ready for WithCreationProfile.
func NewCreationProfile(s *spec.Spec) *CreationProfile {
	return monitor.NewCreationProfile(s.Compiled())
}

func (m *Monitor) dialRemote(cfg config, handler func(Verdict)) (*remote.Client, error) {
	kind, ref, ok := m.sp.Source()
	if !ok {
		return nil, fmt.Errorf("rvgo: property %q cannot back a remote session: the server needs transferable provenance (build the spec with spec.Builtin or from .rv source)", m.sp.Name())
	}
	ropts := remote.Options{
		GC:        cfg.gc,
		Creation:  cfg.creation,
		Avoid:     cfg.avoid,
		Shards:    cfg.shards,
		Window:    cfg.window,
		OnVerdict: handler,
	}
	switch kind {
	case spec.SourceBuiltin:
		ropts.Prop = ref
	case spec.SourceFile:
		ropts.SpecSource = ref
	default:
		return nil, fmt.Errorf("rvgo: unknown spec provenance %q", kind)
	}
	if cfg.remoteConn != nil {
		return remote.NewSession(cfg.remoteConn, ropts)
	}
	return remote.Dial(cfg.remoteAddr, ropts)
}

func (m *Monitor) dialCluster(cfg config, handler func(Verdict)) (*cluster.Client, error) {
	kind, ref, ok := m.sp.Source()
	if !ok {
		return nil, fmt.Errorf("rvgo: property %q cannot back a cluster session: the nodes need transferable provenance (build the spec with spec.Builtin or from .rv source)", m.sp.Name())
	}
	copts := cluster.Options{
		GC:        cfg.gc,
		Creation:  cfg.creation,
		Avoid:     cfg.avoid,
		Nodes:     cfg.nodes,
		Seed:      cfg.hashSeed,
		Window:    cfg.window,
		OnVerdict: handler,
	}
	if cfg.met != nil {
		copts.Metrics = metrics.NewClusterSeries(cfg.met.reg, m.sp.Name())
	}
	switch kind {
	case spec.SourceBuiltin:
		copts.Prop = ref
	case spec.SourceFile:
		copts.SpecSource = ref
	default:
		return nil, fmt.Errorf("rvgo: unknown spec provenance %q", kind)
	}
	return cluster.Open(copts)
}

var _ monitor.Runtime = (*Monitor)(nil)

// Property returns the specification being monitored.
func (m *Monitor) Property() *spec.Spec { return m.sp }

// Spec returns the compiled internal form of the property; it exists to
// satisfy the runtime contract shared with the internal backends (its
// result type lives under internal/ and cannot be named outside this
// module — use Property for introspection).
func (m *Monitor) Spec() *monitor.Spec { return m.rt.Spec() }

// Emit dispatches the parametric event sym⟨vals⟩; vals bind the event's
// parameters in binding order (see spec.Spec.EventParams) and must all be
// alive. Symbols index the spec's event list; prefer Event, whose Emitter
// carries the resolved symbol with a readable name attached.
func (m *Monitor) Emit(sym int, vals ...Ref) { m.rt.Emit(sym, vals...) }

// EmitNamed dispatches an event by name. Unknown names and arity
// mismatches are errors; the event is not dispatched and the Monitor
// remains usable. For hot paths resolve an Emitter once instead.
func (m *Monitor) EmitNamed(name string, vals ...Ref) error { return m.rt.EmitNamed(name, vals...) }

// Dispatch processes one pre-bound parametric event (see BindingOf).
func (m *Monitor) Dispatch(sym int, theta Instance) { m.rt.Dispatch(sym, theta) }

// Free positions an explicit object death in the event stream: every
// event dispatched before the call observes the objects alive, and the
// caller dispatches no later event mentioning them. This is the death
// signal that drives monitor GC when no real garbage collector is
// involved (trace replay, simulated heaps, remote sessions).
func (m *Monitor) Free(refs ...Ref) { m.rt.Free(refs...) }

// FreeAsync positions an object death without stalling the producer: the
// backend invokes die exactly once, after every previously dispatched
// event has been processed and before any later one, and die marks the
// objects dead. Package rv uses this to turn Go garbage-collection
// cleanups into stream-positioned deaths.
func (m *Monitor) FreeAsync(die func(), refs ...Ref) { m.rt.FreeAsync(die, refs...) }

// Barrier returns once every event dispatched before the call has been
// fully processed (and its verdicts delivered). Synchronous backends
// return immediately.
func (m *Monitor) Barrier() { m.rt.Barrier() }

// Flush performs a full expunge/compaction pass so the Stats counters
// settle; it implies Barrier.
func (m *Monitor) Flush() { m.rt.Flush() }

// Stats returns the monitoring counters. For concurrent backends the
// snapshot covers at least every event processed before the last Barrier
// or Flush.
func (m *Monitor) Stats() Stats { return m.rt.Stats() }

// Verdicts returns the verdict stream configured with WithVerdictStream,
// or nil. The channel is closed by Close.
func (m *Monitor) Verdicts() <-chan Verdict { return m.verdicts }

// NodeInfo describes one member of a cluster Monitor's node set.
type NodeInfo struct {
	// Addr is the node address as given to WithCluster or AddNode.
	Addr string
	// Slots is the number of slots (virtual shards) whose live session the
	// node currently hosts.
	Slots int
}

// Nodes reports a cluster Monitor's membership and per-node slot
// placement. For non-cluster backends it returns nil.
func (m *Monitor) Nodes() []NodeInfo {
	if m.clu == nil {
		return nil
	}
	ns := m.clu.Nodes()
	out := make([]NodeInfo, len(ns))
	for i, n := range ns {
		out[i] = NodeInfo{Addr: n.Addr, Slots: n.Slots}
	}
	return out
}

// AddNode admits a node to a cluster Monitor's membership; the slots the
// consistent-hash assignment places on it migrate over gracefully while
// monitoring continues. Cluster sessions only.
func (m *Monitor) AddNode(addr string) error {
	if m.clu == nil {
		return errors.New("rvgo: AddNode applies only to cluster sessions (WithCluster)")
	}
	return m.clu.AddNode(addr)
}

// RemoveNode gracefully drains a node out of a cluster Monitor's
// membership, migrating its slots to the remaining nodes. Cluster
// sessions only; the last node cannot be removed.
func (m *Monitor) RemoveNode(addr string) error {
	if m.clu == nil {
		return errors.New("rvgo: RemoveNode applies only to cluster sessions (WithCluster)")
	}
	return m.clu.RemoveNode(addr)
}

// Err returns the Monitor's sticky error: for a remote or cluster Monitor
// the session error — connection loss, a server error, a protocol
// violation, total node loss —
// after which the event methods degrade to no-ops; for a recording
// Monitor (WithRecord) the first trace-write failure, after which
// monitoring continues but the trace is incomplete. Otherwise nil.
func (m *Monitor) Err() error {
	if m.rem != nil {
		if err := m.rem.Err(); err != nil {
			return err
		}
	}
	if m.clu != nil {
		if err := m.clu.Err(); err != nil {
			return err
		}
	}
	if m.tp != nil {
		return m.tp.recErr()
	}
	return nil
}

// Close releases the backend (worker goroutines, network sessions) and
// closes the verdict stream. Close is idempotent; dispatching after Close
// is a programming error.
func (m *Monitor) Close() {
	m.closeOnce.Do(func() {
		m.rt.Close()
		if m.verdicts != nil {
			close(m.verdicts)
		}
	})
}
