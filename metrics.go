package rvgo

import (
	"errors"
	"io"
	"net/http"

	"rvgo/internal/metrics"
)

// Metrics is a telemetry registry for one or more Monitors: pass it to New
// with WithMetrics and every layer of the attached Monitor — engine,
// sharded runtime, trace recorder — publishes its counters, gauges and
// latency histograms into it. Families are labeled by the property name
// (the tenant dimension), so one registry can aggregate several Monitors
// and keep their series apart; two Monitors over the same property sum
// into the same series.
//
// Instrumentation follows the hot-path discipline of the rest of the
// façade: label values are interned at construction and publication is
// amortized atomic arithmetic, so an instrumented Emitter.Emit on the
// sequential backend stays 0 allocs/op (TestMetricsZeroAlloc gates it).
// The price is staleness, not drift: counters lag the engine's exact
// Stats by a bounded publication interval and settle to equality at every
// Flush and at Close.
//
// A Metrics is safe for concurrent use; scraping (Snapshot,
// WritePrometheus, ServeHTTP) only reads atomics and never blocks a
// backend. The zero value is not usable — construct with NewMetrics.
type Metrics struct {
	reg *metrics.Registry
}

// NewMetrics returns an empty registry ready to attach with WithMetrics.
func NewMetrics() *Metrics { return &Metrics{reg: metrics.NewRegistry()} }

// MetricFamily is the point-in-time state of one metric family: name,
// kind ("counter", "gauge" or "histogram"), optional label dimension, and
// every labeled series. It marshals to the same JSON served in the
// rvserve /statusz document.
type MetricFamily = metrics.FamilySnapshot

// MetricSeries is one series of a family: its label value and current
// value (counters and gauges), or sum/count/buckets (histograms).
type MetricSeries = metrics.SeriesSnapshot

// MetricBucket is one cumulative histogram bucket; the implicit +Inf
// bucket is omitted (its count is the series count), so Le is always a
// finite, JSON-encodable number.
type MetricBucket = metrics.BucketSnapshot

// Snapshot returns every family's current state, in registration order.
// Each value is an exact atomic read, but the snapshot is not a
// consistent cut across series; for counters that settle to engine Stats,
// call Flush on the Monitor first.
func (x *Metrics) Snapshot() []MetricFamily { return x.reg.Snapshot() }

// Find returns the snapshot of one family by name.
func (x *Metrics) Find(name string) (MetricFamily, bool) { return x.reg.Find(name) }

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4) — the same shape rvserve serves at /metrics.
func (x *Metrics) WritePrometheus(w io.Writer) error { return x.reg.WriteProm(w) }

// ServeHTTP makes a Metrics mountable as a /metrics endpoint in the
// application's own HTTP server:
//
//	http.Handle("/metrics", mon.Metrics())
func (x *Metrics) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	x.reg.WriteProm(w)
}

var _ http.Handler = (*Metrics)(nil)

// WithMetrics attaches the Monitor's telemetry to reg. Every backend
// reports:
//
//   - sequential engine and sharded runtime: events, steps, monitor
//     creations/flags/collections, pool recycling, live and peak-live
//     gauges, sweep counts and sweep-latency histograms (labeled by GC
//     policy), all under the property's tenant label; the sharded runtime
//     adds per-shard mailbox depth, batch counters and refusal/broadcast
//     totals.
//   - WithRecord's trace writer: segments, records, bytes and fsync
//     latency, labeled by property.
//   - remote sessions: the engine runs server-side (scrape the server's
//     /metrics for it); the client registry carries the session-local
//     rv_client_* event, free and verdict totals.
//
// The same registry may be shared by any number of Monitors.
func WithMetrics(reg *Metrics) Option {
	return func(c *config) error {
		if reg == nil {
			return errors.New("rvgo: WithMetrics: nil registry")
		}
		c.met = reg
		return nil
	}
}

// Metrics returns the registry attached with WithMetrics, or nil.
func (m *Monitor) Metrics() *Metrics { return m.met }
