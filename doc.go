// Package rvgo is a from-scratch Go reproduction of "Garbage Collection
// for Monitoring Parametric Properties" (Jin, Meredith, Griffith, Roşu —
// PLDI 2011): the RV runtime-verification system, whose contribution is a
// formalism-independent, coenable-set-driven garbage collector for
// parametric monitor instances, paired with lazily collected weak-keyed
// indexing trees.
//
// This package is the system's one public surface. Build a property with
// rvgo/spec — fluently, from .rv source, or from the built-in library of
// the paper's evaluation — and run it with New:
//
//	property, err := spec.Builtin("UnsafeIter")
//	m, err := rvgo.New(property, rvgo.WithVerdictHandler(report))
//	create := m.MustEvent("create")
//	...
//	create.Emit(coll, iter) // the allocation-free hot path
//
// The options select among three interchangeable backends behind the same
// Monitor type: the sequential engine of the paper (the default); a
// sharded concurrent runtime (WithShards) that partitions the monitor
// store across single-threaded engine workers by a pivot parameter
// derived from the enable-set analysis, with batched, backpressured event
// ingestion; and a remote session (WithRemote) against the multi-tenant
// monitoring server (NewServer, cmd/rvserve), speaking a compact binary
// protocol in which object death is an explicit trace event — the network
// replacement for the weak references the in-process engines consume.
// The conformance suite holds all three to the same observable behavior,
// so backend choice is a deployment decision, not a semantic one.
//
// Three ingestion modes feed a Monitor: recorded traces (cmd/rvmon, the
// DaCapo substrate driven by cmd/rvbench), network sessions (WithRemote,
// package client), and — closest to the paper's title — live Go objects
// through the rv frontend: rv.Attach emits events over a program's own
// heap objects, a weak-keyed registry (Registry) assigns their monitoring
// identities, and the real Go garbage collector's cleanups become the
// stream-positioned death signals that drive coenable-set monitor
// reclamation.
//
// The implementation lives under internal/ (one package per subsystem —
// see DESIGN.md for the inventory) and is sealed off: rvgo and rvgo/spec
// are the only packages that import it, a boundary the repository
// enforces in CI (boundary_test.go) together with a golden file of this
// package's exported API (apisurface_test.go, api/). Five command-line
// tools ship with the library:
//
//	cmd/rvmon       monitor a parametric event trace against an .rv spec
//	cmd/rvcoenable  print the Section 3 static analyses for a property
//	cmd/rvbench     regenerate the paper's Figure 9/10 tables
//	cmd/rvserve     serve monitoring sessions over TCP
//	cmd/rvload      load-test a monitoring server with concurrent sessions
//
// and runnable examples under examples/. The benchmarks in bench_test.go
// regenerate each evaluation artifact as a testing.B benchmark.
package rvgo
