// Package rvgo is a from-scratch Go reproduction of "Garbage Collection
// for Monitoring Parametric Properties" (Jin, Meredith, Griffith, Roşu —
// PLDI 2011): the RV runtime-verification system, whose contribution is a
// formalism-independent, coenable-set-driven garbage collector for
// parametric monitor instances, paired with lazily collected weak-keyed
// indexing trees.
//
// Three interchangeable runtimes implement the monitor.Runtime interface:
// the sequential engine of the paper (internal/monitor); a sharded
// concurrent runtime (internal/shard) that partitions the monitor store
// across single-threaded engine workers by a pivot parameter derived from
// the enable-set analysis, with batched, backpressured event ingestion;
// and a remote runtime (package client) that monitors over a TCP session
// against the multi-tenant monitoring server (internal/server), speaking
// a compact binary protocol (internal/wire) in which object death is an
// explicit trace event — the network replacement for the weak references
// the in-process engines consume.
//
// Three ingestion modes feed those runtimes: recorded traces (cmd/rvmon,
// internal/dacapo), network sessions (client), and — closest to the
// paper's title — live Go objects through the rv frontend: rv.Attach
// emits events over a program's own heap objects, a weak-keyed registry
// (internal/registry) assigns their monitoring identities, and the real
// Go garbage collector's cleanups become the stream-positioned death
// signals that drive coenable-set monitor reclamation.
//
// The library lives under internal/ (one package per subsystem — see
// DESIGN.md for the inventory), with five command-line tools:
//
//	cmd/rvmon       monitor a parametric event trace against an .rv spec
//	cmd/rvcoenable  print the Section 3 static analyses for a property
//	cmd/rvbench     regenerate the paper's Figure 9/10 tables
//	cmd/rvserve     serve monitoring sessions over TCP
//	cmd/rvload      load-test a monitoring server with concurrent sessions
//
// and runnable examples under examples/. The benchmarks in bench_test.go
// regenerate each evaluation artifact as a testing.B benchmark.
package rvgo
