package spec

import (
	"fmt"
	"strings"

	"rvgo/internal/cfg"
	"rvgo/internal/ere"
	"rvgo/internal/fsm"
	"rvgo/internal/logic"
	"rvgo/internal/ltl"
	"rvgo/internal/monitor"
	"rvgo/internal/param"
)

// Builder assembles a parametric property fluently:
//
//	s, err := spec.New("UnsafeIter").
//		Params("c", "i").
//		Event("create", "c", "i").
//		Event("update", "c").
//		Event("next", "i").
//		ERE("update* create next* update+ next").
//		Build()
//
// Exactly one logic block (FSM, ERE, LTL or CFG) must be given; the
// block's language is the alphabet of declared events, in declaration
// order. Errors accumulate and are reported by Build, which also runs
// validation and the Section 3 static analyses, so a non-nil *Spec is
// ready to monitor.
type Builder struct {
	name   string
	params []string
	events []eventDecl
	kind   string
	body   string
	states []FSMState
	goal   []string
	errs   []string
}

type eventDecl struct {
	name   string
	params []string
}

// New starts a property definition.
func New(name string) *Builder { return &Builder{name: name} }

// Params declares the property's parameters, in index order.
func (b *Builder) Params(names ...string) *Builder {
	b.params = append(b.params, names...)
	return b
}

// Event declares a parametric event: its name and the parameters it
// binds (D(e)), by parameter name. Declaration order is symbol order and
// defines the alphabet of the logic block.
func (b *Builder) Event(name string, params ...string) *Builder {
	b.events = append(b.events, eventDecl{name: name, params: params})
	return b
}

// FSMState is one state of an FSM logic block: its name and its
// transitions. The first state passed to FSM is the start state; states
// without outgoing transitions are terminal.
type FSMState struct {
	Name        string
	Transitions []FSMTransition
}

// FSMTransition is one FSM edge: on event On, move to state To.
type FSMTransition struct {
	On, To string
}

// State builds an FSMState from alternating on-event/to-state pairs:
//
//	spec.State("more", "hasnexttrue", "more", "next", "unknown")
func State(name string, pairs ...string) FSMState {
	st := FSMState{Name: name}
	for i := 0; i+1 < len(pairs); i += 2 {
		st.Transitions = append(st.Transitions, FSMTransition{On: pairs[i], To: pairs[i+1]})
	}
	if len(pairs)%2 != 0 {
		// Surfaced as a build error by FSM below; an FSMState cannot
		// carry an error itself.
		st.Transitions = append(st.Transitions, FSMTransition{On: pairs[len(pairs)-1], To: ""})
	}
	return st
}

// FSM sets the logic block to a finite-state machine over the declared
// events. Goal categories are the names of the goal states (an FSM has no
// default goal; set one with Goal).
func (b *Builder) FSM(states ...FSMState) *Builder {
	b.setKind("fsm")
	b.states = states
	return b
}

// ERE sets the logic block to an extended regular expression over the
// declared events. The default goal category is Match.
func (b *Builder) ERE(expr string) *Builder {
	b.setKind("ere")
	b.body = expr
	return b
}

// LTL sets the logic block to a past-time LTL formula over the declared
// events. The default goal category is Violation.
func (b *Builder) LTL(formula string) *Builder {
	b.setKind("ltl")
	b.body = formula
	return b
}

// CFG sets the logic block to a context-free grammar over the declared
// events. The default goal category is Fail (the trace left the
// language's prefix closure); a Goal of Match admits the grammar-level
// coenable analysis instead.
func (b *Builder) CFG(grammar string) *Builder {
	b.setKind("cfg")
	b.body = grammar
	return b
}

// Goal sets the verdict categories of interest G — the ones that invoke
// the verdict handler. It overrides the formalism's default.
func (b *Builder) Goal(categories ...string) *Builder {
	b.goal = append(b.goal, categories...)
	return b
}

func (b *Builder) setKind(kind string) {
	if b.kind != "" {
		b.errorf("property %q has both a %s and a %s block; exactly one logic block is allowed", b.name, b.kind, kind)
		return
	}
	b.kind = kind
}

func (b *Builder) errorf(format string, args ...any) {
	b.errs = append(b.errs, fmt.Sprintf(format, args...))
}

// Build compiles and analyzes the property. All accumulated definition
// errors, compilation errors and static-analysis errors are reported
// here — a non-nil Spec never fails later at dispatch time.
func (b *Builder) Build() (*Spec, error) {
	if b.kind == "" {
		b.errorf("property %q has no logic block (use FSM, ERE, LTL or CFG)", b.name)
	}
	paramIdx := make(map[string]int, len(b.params))
	for i, p := range b.params {
		if _, dup := paramIdx[p]; dup {
			b.errorf("property %q declares parameter %q twice", b.name, p)
		}
		paramIdx[p] = i
	}
	if len(b.params) > param.MaxParams {
		b.errorf("property %q has %d parameters, max %d", b.name, len(b.params), param.MaxParams)
	}
	alphabet := make([]string, len(b.events))
	events := make([]monitor.EventDef, len(b.events))
	seenEv := map[string]bool{}
	for i, ev := range b.events {
		if seenEv[ev.name] {
			b.errorf("property %q declares event %q twice", b.name, ev.name)
		}
		seenEv[ev.name] = true
		alphabet[i] = ev.name
		var ps param.Set
		for _, p := range ev.params {
			idx, ok := paramIdx[p]
			if !ok {
				b.errorf("event %q binds undeclared parameter %q", ev.name, p)
				continue
			}
			ps = ps.Union(param.SetOf(idx))
		}
		events[i] = monitor.EventDef{Name: ev.name, Params: ps}
	}

	goal := b.goal
	if len(goal) == 0 {
		switch b.kind {
		case "ere":
			goal = []string{Match}
		case "ltl":
			goal = []string{Violation}
		case "cfg":
			goal = []string{Fail}
		case "fsm":
			b.errorf("property %q: an FSM block needs an explicit Goal (its categories are its state names)", b.name)
		}
	}

	var bp logic.Blueprint
	if len(b.errs) == 0 {
		var err error
		if bp, err = b.blueprint(alphabet); err != nil {
			b.errorf("%s block: %v", b.kind, err)
		}
	}
	if len(b.errs) > 0 {
		return nil, fmt.Errorf("spec: building %q: %s", b.name, strings.Join(b.errs, "; "))
	}

	cats := make([]logic.Category, len(goal))
	for i, g := range goal {
		cats[i] = logic.Category(g)
	}
	ms := &monitor.Spec{
		Name:   b.name,
		Params: append([]string(nil), b.params...),
		Events: events,
		BP:     bp,
		Goal:   cats,
	}
	if err := ms.Analyze(); err != nil {
		return nil, err
	}
	return &Spec{ms: ms, kind: b.kind}, nil
}

func (b *Builder) blueprint(alphabet []string) (logic.Blueprint, error) {
	switch b.kind {
	case "fsm":
		m := fsm.New(alphabet)
		for _, st := range b.states {
			if err := m.AddState(st.Name); err != nil {
				return nil, err
			}
		}
		for _, st := range b.states {
			for _, tr := range st.Transitions {
				if tr.To == "" {
					return nil, fmt.Errorf("state %q: State(...) takes alternating event/target pairs", st.Name)
				}
				if err := m.AddTransition(st.Name, tr.On, tr.To); err != nil {
					return nil, err
				}
			}
		}
		if err := m.Freeze(); err != nil {
			return nil, err
		}
		return m, nil
	case "ere":
		return ere.Compile(b.body, alphabet)
	case "ltl":
		return ltl.Compile(b.body, alphabet)
	case "cfg":
		return cfg.CompileAuto(b.body, alphabet)
	}
	return nil, fmt.Errorf("unknown formalism %q", b.kind)
}
