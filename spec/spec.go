// Package spec is the specification-building half of the rvgo façade: the
// one public way to obtain a parametric property, whether from the built-in
// library of the paper's evaluation (Builtin), from .rv specification
// source (Parse, ParseOne), or programmatically through the fluent Builder
// (New). Every route compiles the property down to the internal monitoring
// representation and runs the Section 3 static analyses — validation,
// coenable/enable sets, creation events, dead states — eagerly, so a Spec
// in hand is guaranteed runnable: errors surface at build time, never at
// first event dispatch.
//
// A *Spec is immutable once built and safe to share between any number of
// monitors (rvgo.New) across any backend.
package spec

import (
	"fmt"
	"io"
	"strings"

	"rvgo/internal/coenable"
	"rvgo/internal/monitor"
	"rvgo/internal/props"
	ispec "rvgo/internal/spec"
)

// Verdict categories of the bundled formalisms: ERE monitors report Match,
// CFG monitors Match or Fail, LTL monitors Violation and Validation, and
// FSM monitors use their state names as categories.
const (
	Match      = "match"
	Fail       = "fail"
	Violation  = "violation"
	Validation = "validation"
)

// Source provenance kinds, as reported by (*Spec).Source.
const (
	// SourceBuiltin names a property from the built-in library; remote
	// sessions negotiate it by name.
	SourceBuiltin = "builtin"
	// SourceFile is .rv specification text; remote sessions ship the
	// source and both ends compile it.
	SourceFile = "source"
)

// Spec is a compiled, analyzed parametric specification. It is produced by
// Builtin, Parse/ParseOne, or Builder.Build, and consumed by rvgo.New.
type Spec struct {
	ms       *monitor.Spec
	kind     string            // formalism of the logic block, or "builtin"
	handlers map[string]string // verdict category → .rv handler body
	srcKind  string            // SourceBuiltin, SourceFile, or ""
	srcRef   string
}

// Name returns the property name.
func (s *Spec) Name() string { return s.ms.Name }

// Params returns the property's parameter names, in index order.
func (s *Spec) Params() []string { return append([]string(nil), s.ms.Params...) }

// Events returns the property's event names, in symbol order.
func (s *Spec) Events() []string {
	out := make([]string, len(s.ms.Events))
	for i, e := range s.ms.Events {
		out[i] = e.Name
	}
	return out
}

// EventParams returns the parameter names an event binds, in binding
// order — the order Emitter.Emit and EmitNamed expect values in.
func (s *Spec) EventParams(event string) ([]string, error) {
	sym, ok := s.ms.Symbol(event)
	if !ok {
		return nil, fmt.Errorf("spec: property %q has no event %q", s.ms.Name, event)
	}
	var out []string
	for m := s.ms.Events[sym].Params; m != 0; m = m.Rest() {
		out = append(out, s.ms.Params[m.First()])
	}
	return out, nil
}

// Goal returns the verdict categories carrying handlers (the set G).
func (s *Spec) Goal() []string {
	out := make([]string, len(s.ms.Goal))
	for i, g := range s.ms.Goal {
		out[i] = string(g)
	}
	return out
}

// Kind returns the formalism the property was built from: "fsm", "ere",
// "ltl", "cfg", or "builtin" for library properties.
func (s *Spec) Kind() string { return s.kind }

// Handlers returns the verdict-category → handler-body map of a property
// parsed from .rv source (empty otherwise). Handler bodies are interpreted
// with RunHandler.
func (s *Spec) Handlers() map[string]string {
	out := make(map[string]string, len(s.handlers))
	for k, v := range s.handlers {
		out[k] = v
	}
	return out
}

// Source reports the property's provenance: ("builtin", name) for library
// properties, ("source", text) for single-property .rv source. Properties
// assembled through the Builder have no transferable provenance (ok =
// false) and cannot back a remote session, which must negotiate the spec
// by reference so both ends compile the same thing.
func (s *Spec) Source() (kind, ref string, ok bool) {
	return s.srcKind, s.srcRef, s.srcKind != ""
}

// AlivenessFormula returns the minimized ALIVENESS boolean formula the
// coenable-set GC evaluates after the given event (paper §4.2.2): a
// monitor whose last event was this one is kept only while the formula
// holds over its bound objects' liveness.
func (s *Spec) AlivenessFormula(event string) (string, error) {
	an, sym, err := s.analysisFor(event)
	if err != nil {
		return "", err
	}
	return coenable.AlivenessFormula(an.CoenParams[sym], s.ms.Params), nil
}

// CoenableSets returns the event's parameter coenable sets COENABLE^X(e)
// (Definition 11), formatted over the property's parameter names.
func (s *Spec) CoenableSets(event string) (string, error) {
	an, sym, err := s.analysisFor(event)
	if err != nil {
		return "", err
	}
	return coenable.FormatParamSets(an.CoenParams[sym], s.ms.Params), nil
}

// HasCoenable reports whether the Section 3 coenable analysis applies to
// the property (it does not for CFG goals other than {match}; such
// monitors fall back to all-parameters-dead collection).
func (s *Spec) HasCoenable() bool {
	an, err := s.ms.Analysis()
	if err != nil {
		return false
	}
	return an.HasCoenable
}

func (s *Spec) analysisFor(event string) (*monitor.Analysis, int, error) {
	sym, ok := s.ms.Symbol(event)
	if !ok {
		return nil, 0, fmt.Errorf("spec: property %q has no event %q", s.ms.Name, event)
	}
	an, err := s.ms.Analysis()
	if err != nil {
		return nil, 0, err
	}
	return an, sym, nil
}

// WriteAnalysis writes the full Section 3 static-analysis report for the
// property: coenable sets at event and parameter granularity, the
// minimized ALIVENESS formulas, and the enable sets with creation events
// marked. This is the report cmd/rvcoenable prints.
func (s *Spec) WriteAnalysis(w io.Writer) error {
	an, err := s.ms.Analysis()
	if err != nil {
		return err
	}
	alphabet := s.Events()
	fmt.Fprintf(w, "property %s(%s), goal G = {%s}\n",
		s.ms.Name, strings.Join(s.ms.Params, ", "), strings.Join(s.Goal(), ", "))
	if !an.HasCoenable {
		fmt.Fprintf(w, "  (no coenable analysis for this goal/formalism: monitors fall back to\n")
		fmt.Fprintf(w, "   all-parameters-dead collection plus sink termination)\n\n")
		return nil
	}
	pad := func(name string) string {
		max := 0
		for _, a := range alphabet {
			if len(a) > max {
				max = len(a)
			}
		}
		return strings.Repeat(" ", max-len(name)+1)
	}
	fmt.Fprintln(w, "  coenable sets (events occurring after e in goal traces):")
	for sym, e := range s.ms.Events {
		fmt.Fprintf(w, "    COENABLE(%s)%s= %s\n", e.Name, pad(e.Name),
			coenable.FormatEventSets(an.CoenEvents[sym], alphabet))
	}
	fmt.Fprintln(w, "  parameter coenable sets (Definition 11):")
	for sym, e := range s.ms.Events {
		fmt.Fprintf(w, "    COENABLE^X(%s)%s= %s\n", e.Name, pad(e.Name),
			coenable.FormatParamSets(an.CoenParams[sym], s.ms.Params))
	}
	fmt.Fprintln(w, "  ALIVENESS formulas (§4.2.2, minimized):")
	for sym, e := range s.ms.Events {
		fmt.Fprintf(w, "    ALIVENESS(%s)%s= %s\n", e.Name, pad(e.Name),
			coenable.AlivenessFormula(an.CoenParams[sym], s.ms.Params))
	}
	fmt.Fprintln(w, "  enable sets (events occurring before e; ∅ ⇒ creation event):")
	for sym, e := range s.ms.Events {
		marker := ""
		if an.Creation[sym] {
			marker = "   [creation event]"
		}
		fmt.Fprintf(w, "    ENABLE(%s)%s= %s%s\n", e.Name, pad(e.Name),
			coenable.FormatEventSets(an.EnableEvents[sym], alphabet), marker)
	}
	if an.Doomed != nil {
		fmt.Fprintf(w, "  creation guards (doomed-monitor analysis: %d/%d automaton states cannot reach the goal):\n",
			coenable.DoomedCount(an.Doomed), len(an.Doomed))
		for sym, e := range s.ms.Events {
			g := an.Guards[sym]
			var notes []string
			if g.Creation {
				notes = append(notes, "creation event")
			}
			if g.DoomedStart {
				notes = append(notes, "doomed start ⇒ guarded")
			}
			if g.NoViablePrefix {
				notes = append(notes, "no viable prefix ⇒ guarded")
			}
			if len(notes) == 0 {
				notes = append(notes, "unguarded")
			}
			fmt.Fprintf(w, "    GUARD(%s)%s= %s\n", e.Name, pad(e.Name), strings.Join(notes, ", "))
		}
	}
	fmt.Fprintln(w)
	return nil
}

// CreationGuard is the static creation-guard summary for one event: the
// products of the doomed-monitor analysis (see DESIGN.md "Static creation
// avoidance") at specification granularity.
type CreationGuard struct {
	// Event is the event name.
	Event string
	// Creation reports ∅ ∈ ENABLE(e): the event can begin a goal trace, so
	// the enable-set strategy creates monitors from ⊥ for it.
	Creation bool
	// DoomedStart reports that the event's transition out of the initial
	// state lands in a state from which no goal category is reachable: a
	// monitor created at the start of the trace by this event is provably
	// wasted, and the engine's static guard declines to materialize it.
	DoomedStart bool
	// NoViablePrefix reports that ENABLE(e) is empty: no goal trace
	// contains the event at all.
	NoViablePrefix bool
}

// CreationGuards returns the per-event static creation-guard summary, or
// nil when the property's formalism is not graph-backed (CFG properties,
// whose state space the doomed analysis cannot enumerate).
func (s *Spec) CreationGuards() ([]CreationGuard, error) {
	an, err := s.ms.Analysis()
	if err != nil {
		return nil, err
	}
	if an.Guards == nil {
		return nil, nil
	}
	out := make([]CreationGuard, len(an.Guards))
	for i, g := range an.Guards {
		out[i] = CreationGuard{
			Event:          s.ms.Events[i].Name,
			Creation:       g.Creation,
			DoomedStart:    g.DoomedStart,
			NoViablePrefix: g.NoViablePrefix,
		}
	}
	return out, nil
}

// AvoidanceSite is one event symbol's row in an AvoidanceReport: the
// static guard verdicts plus, when a creation profile was supplied, the
// profiled per-creation-site statistics.
type AvoidanceSite struct {
	CreationGuard
	// Created, Restepped and ReachedGoal are the profiled counts: monitors
	// born at the event, of those stepped again after their birth step, and
	// of those ever reaching a goal category. Zero without a profile.
	Created     uint64
	Restepped   uint64
	ReachedGoal uint64
	// ProfileGuarded reports that the profile recommends guarding the
	// event: it created monitors and none ever reached a goal.
	ProfileGuarded bool
}

// AvoidanceReport is the creation-avoidance summary for a property:
// per-event static guards, the doomed fraction of the automaton, and —
// when built from a recorded-trace replay profile — the empirical
// per-creation-site statistics feeding profile-guided guards.
type AvoidanceReport struct {
	Property     string
	DoomedStates int // automaton states from which no goal is reachable
	TotalStates  int
	Profiled     bool
	Sites        []AvoidanceSite
}

// Avoidance builds the property's creation-avoidance report. The profile
// is optional (nil gives the static half only); supply a
// rvgo.CreationProfile filled by a replay run to get the profile-guided
// half. The profile must be sized for this property's event list.
func (s *Spec) Avoidance(profile *monitor.CreationProfile) (*AvoidanceReport, error) {
	an, err := s.ms.Analysis()
	if err != nil {
		return nil, err
	}
	guards, err := s.CreationGuards()
	if err != nil {
		return nil, err
	}
	r := &AvoidanceReport{Property: s.ms.Name, TotalStates: len(an.Doomed)}
	r.DoomedStates = coenable.DoomedCount(an.Doomed)
	var profGuards []bool
	if profile != nil {
		if len(profile.Created) != len(s.ms.Events) {
			return nil, fmt.Errorf("spec: creation profile sized for %d events, property %q has %d",
				len(profile.Created), s.ms.Name, len(s.ms.Events))
		}
		r.Profiled = true
		profGuards = profile.Guards()
	}
	for sym, e := range s.ms.Events {
		site := AvoidanceSite{CreationGuard: CreationGuard{Event: e.Name}}
		if guards != nil {
			site.CreationGuard = guards[sym]
		}
		if profile != nil {
			site.Created = profile.Created[sym]
			site.Restepped = profile.Restepped[sym]
			site.ReachedGoal = profile.ReachedGoal[sym]
			site.ProfileGuarded = profGuards[sym]
		}
		r.Sites = append(r.Sites, site)
	}
	return r, nil
}

// Write formats the report, one site per line.
func (r *AvoidanceReport) Write(w io.Writer) {
	fmt.Fprintf(w, "creation avoidance for %s", r.Property)
	if r.TotalStates > 0 {
		fmt.Fprintf(w, " (%d/%d automaton states doomed)", r.DoomedStates, r.TotalStates)
	}
	fmt.Fprintln(w, ":")
	for _, site := range r.Sites {
		var notes []string
		if site.Creation {
			notes = append(notes, "creation event")
		}
		if site.DoomedStart {
			notes = append(notes, "static guard: doomed start")
		}
		if site.NoViablePrefix {
			notes = append(notes, "static guard: no viable prefix")
		}
		if r.Profiled {
			notes = append(notes, fmt.Sprintf("created %d, restepped %d, reached goal %d",
				site.Created, site.Restepped, site.ReachedGoal))
			if site.ProfileGuarded {
				notes = append(notes, "profile guard: never reaches goal")
			}
		}
		if len(notes) == 0 {
			notes = append(notes, "unguarded")
		}
		fmt.Fprintf(w, "  %-12s %s\n", site.Event, strings.Join(notes, "; "))
	}
}

// Compiled returns the internal compiled form. It exists for the rvgo
// façade and the in-repo tools; external users have no use for it (its
// type lives under internal/ and cannot be named outside this module).
func (s *Spec) Compiled() *monitor.Spec { return s.ms }

// Builtin returns a property from the built-in library: the five
// properties of the paper's DaCapo evaluation (HasNext, UnsafeIter,
// UnsafeMapIter, UnsafeSyncColl, UnsafeSyncMap) plus HasNextLTL, SafeLock,
// SafeLockMatch, HashSet, SafeEnum, SafeFile and SafeFileWriter. The
// returned Spec carries name provenance, so it can back remote sessions.
func Builtin(name string) (*Spec, error) {
	ms, err := props.Build(name)
	if err != nil {
		return nil, err
	}
	return &Spec{ms: ms, kind: "builtin", srcKind: SourceBuiltin, srcRef: name}, nil
}

// BuiltinNames returns the built-in property names, sorted.
func BuiltinNames() []string { return props.Names() }

// DaCapoProperties returns the five properties of the paper's evaluation,
// in the column order of its Figures 9 and 10.
func DaCapoProperties() []string { return props.DaCapoProperties() }

// Parse compiles .rv specification source. A property may carry several
// logic blocks (Figure 2 defines HASNEXT as both an FSM and a past-time
// LTL formula); each block compiles to its own Spec, with the block's
// handlers attached. When the source yields exactly one Spec it carries
// source provenance and can back remote sessions.
func Parse(src string) ([]*Spec, error) {
	p, err := ispec.Parse(src)
	if err != nil {
		return nil, err
	}
	compiled, err := p.Compile()
	if err != nil {
		return nil, err
	}
	out := make([]*Spec, len(compiled))
	for i, c := range compiled {
		handlers := make(map[string]string, len(c.Handlers))
		for cat, body := range c.Handlers {
			handlers[string(cat)] = body
		}
		out[i] = &Spec{ms: c.Spec, kind: c.Kind, handlers: handlers}
	}
	if len(out) == 1 {
		out[0].srcKind, out[0].srcRef = SourceFile, src
	}
	return out, nil
}

// ParseOne compiles .rv source that must define exactly one monitorable
// property with one logic block — the shape a remote session can
// negotiate.
func ParseOne(src string) (*Spec, error) {
	specs, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if len(specs) != 1 {
		return nil, fmt.Errorf("spec: source compiles to %d properties, want exactly 1", len(specs))
	}
	return specs[0], nil
}

// RunHandler interprets an .rv handler body (see Handlers): each
// `print "..."` line yields one call to emit; anything else is ignored.
func RunHandler(body string, emit func(string)) { ispec.RunHandler(body, emit) }
