module rvgo

go 1.24
