package rvgo

import (
	"rvgo/internal/cluster"
	"rvgo/internal/heap"
	"rvgo/internal/logic"
	"rvgo/internal/monitor"
	"rvgo/internal/param"
	"rvgo/internal/registry"
	"rvgo/internal/server"
)

// The façade re-exports the identity, counter and verdict types of the
// monitoring runtime as aliases, so user code — and the public rv and
// client packages — never name an internal package. An alias is the
// internal type: no wrapping, no copying, no drift.

// Ref is a possibly-weak reference to a parameter object: the identity
// currency of the whole system. A Ref must never keep its referent alive.
type Ref = heap.Ref

// Stats are the monitoring counters of the paper's Figure 10 (events,
// monitors created/flagged/collected, goal verdicts, live and peak-live
// monitors).
type Stats = monitor.Stats

// Verdict is one goal-category report delivered to the verdict handler.
type Verdict = monitor.Verdict

// Category is a verdict category; see the constants in rvgo/spec.
type Category = logic.Category

// Instance is a parameter instance θ: a partial map from the property's
// parameters to objects. Emitter.Emit and EmitNamed build instances for
// you; Dispatch accepts one directly.
type Instance = param.Instance

// BindingOf builds the instance for event sym of the compiled spec,
// binding vals in the event's parameter order — the typed input of
// Monitor.Dispatch.
func BindingOf(m *Monitor, sym int, vals ...Ref) Instance {
	return param.Of(m.rt.Spec().Events[sym].Params, vals...)
}

// GCPolicy selects how monitor instances are reclaimed.
type GCPolicy = monitor.GCPolicy

const (
	// GCNone never reclaims monitors: the pre-GC baseline.
	GCNone = monitor.GCNone
	// GCAllDead reclaims a monitor only when every bound parameter object
	// has died — the JavaMOP condition the paper improves upon.
	GCAllDead = monitor.GCAllDead
	// GCCoenable is the paper's contribution: a monitor is reclaimed as
	// soon as its ALIVENESS formula (from the coenable-set analysis and
	// the last event observed) becomes false. The default.
	GCCoenable = monitor.GCCoenable
)

// CreationStrategy selects how monitor instances are materialized.
type CreationStrategy = monitor.CreationStrategy

const (
	// CreateEnable uses the enable-set analysis to skip instances that
	// could never reach a goal verdict. The production default.
	CreateEnable = monitor.CreateEnable
	// CreateFull materializes every least upper bound exactly as in the
	// paper's Figure 5 — the semantic oracle, quadratic in the worst
	// case. Requires WithShards(1).
	CreateFull = monitor.CreateFull
)

// AvoidMode selects the creation-avoidance mode (see WithAvoidance).
type AvoidMode = monitor.AvoidMode

const (
	// AvoidOff disables the creation-avoidance guards. The default.
	AvoidOff = monitor.AvoidOff
	// AvoidAudit evaluates the guards and counts would-be-suppressed
	// creations in Stats.Avoided, but still materializes every monitor.
	AvoidAudit = monitor.AvoidAudit
	// AvoidEnforce suppresses guarded creations; per-slice verdicts stay
	// bit-identical to the unguarded engine.
	AvoidEnforce = monitor.AvoidEnforce
)

// CreationProfile accumulates per-creation-site statistics during a run
// (see WithCreationProfile); its Guards method synthesizes a profile-guard
// vector for WithProfileGuards.
type CreationProfile = monitor.CreationProfile

// Heap is the deterministic simulated heap: monitored objects are
// allocated with Alloc and die when the workload calls Free, which is the
// death signal driving monitor GC. Use it for traces and tests; monitor
// real Go objects through package rv instead.
type Heap = heap.Heap

// Object is a simulated heap object; it implements Ref.
type Object = heap.Object

// NewHeap returns an empty simulated heap.
func NewHeap() *Heap { return heap.New() }

// Registry is the weak-keyed live-object table of the rv frontend: it
// gives real Go objects stable monitoring identities without keeping them
// alive, and queues their garbage-collection deaths for stream-positioned
// delivery.
type Registry = registry.Table

// RegistryStats are the Registry's lifecycle counters.
type RegistryStats = registry.Stats

// NewRegistry returns an empty live-object registry.
func NewRegistry() *Registry { return registry.New() }

// Server is the multi-tenant monitoring server: it accepts wire-protocol
// sessions over TCP (the other end of WithRemote), each with its own
// property, GC policy and backend. This is what cmd/rvserve runs.
type Server = server.Server

// ServerOptions configures a Server.
type ServerOptions = server.Options

// ServerStats are the server's aggregate session counters.
type ServerStats = server.Stats

// NewServer builds a monitoring server; drive it with Serve and stop it
// with Shutdown.
func NewServer(opts ServerOptions) *Server { return server.New(opts) }

// Router is the cluster tier's front door: it accepts the same
// wire-protocol sessions a Server does, but fans each one out across a
// set of rvserve nodes, placing every slice by consistent-hashing its
// pivot parameter and re-homing slots off failed or drained nodes. This
// is what cmd/rvserve runs with -cluster; clients connect with plain
// WithRemote and cannot tell a router from a node.
type Router = cluster.Router

// RouterOptions configures a Router.
type RouterOptions = cluster.RouterOptions

// RouterStatusz is the router's JSON status document (its /statusz).
type RouterStatusz = cluster.Statusz

// NewRouter builds a cluster router over the given nodes; drive it with
// Serve and stop it with Shutdown.
func NewRouter(opts RouterOptions) (*Router, error) { return cluster.NewRouter(opts) }
