package rvgo

import (
	"fmt"
	"sync"

	"rvgo/internal/metrics"
	"rvgo/internal/monitor"
	"rvgo/internal/param"
	"rvgo/internal/trace"
)

// tap interposes on a backend's event surface to feed the persistent
// trace recorder (WithRecord) and the flight recorder (WithFlightRecorder)
// before forwarding. It is installed as the Monitor's runtime before any
// Emitter is resolved, so every ingestion path — Emit, EmitNamed,
// Dispatch, Emitter.Emit, Free, FreeAsync — passes through it.
type tap struct {
	rt   monitor.Runtime
	rec  *trace.Writer         // nil when not recording
	ring *trace.Ring           // nil without a flight recorder
	cli  *metrics.ClientSeries // nil unless remote + WithMetrics

	mu  sync.Mutex
	err error // first recording error, sticky
}

var _ monitor.Runtime = (*tap)(nil)

func (t *tap) fail(err error) {
	if err == nil {
		return
	}
	t.mu.Lock()
	if t.err == nil {
		t.err = err
	}
	t.mu.Unlock()
}

// recErr returns the sticky recording error.
func (t *tap) recErr() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

func (t *tap) Spec() *monitor.Spec { return t.rt.Spec() }

func (t *tap) Emit(sym int, vals ...Ref) {
	spec := t.rt.Spec()
	if sym < 0 || sym >= len(spec.Events) {
		// Forward: the backend owns the error/panic discipline.
		t.rt.Emit(sym, vals...)
		return
	}
	theta := param.Empty()
	k := 0
	for m := spec.Events[sym].Params; m != 0 && k < len(vals); m = m.Rest() {
		theta = theta.Bind(m.First(), vals[k])
		k++
	}
	t.Dispatch(sym, theta)
}

func (t *tap) EmitNamed(name string, vals ...Ref) error {
	spec := t.rt.Spec()
	sym, ok := spec.Symbol(name)
	if !ok {
		return fmt.Errorf("rvgo: spec %q has no event %q", spec.Name, name)
	}
	if want := spec.Events[sym].Params.Count(); want != len(vals) {
		return fmt.Errorf("rvgo: event %q binds %d parameters, got %d values", name, want, len(vals))
	}
	t.Emit(sym, vals...)
	return nil
}

func (t *tap) Dispatch(sym int, theta Instance) {
	if t.cli != nil {
		t.cli.Events.Inc()
	}
	if t.ring != nil {
		t.ring.RecordDispatch(sym, theta)
	}
	if t.rec != nil {
		t.fail(t.rec.Event(sym, theta))
	}
	t.rt.Dispatch(sym, theta)
}

func (t *tap) Free(refs ...Ref) {
	if t.cli != nil {
		t.cli.Frees.Inc()
	}
	if t.ring != nil {
		t.ring.RecordFree(refs...)
	}
	if t.rec != nil {
		t.fail(t.rec.Free(refs...))
	}
	t.rt.Free(refs...)
}

func (t *tap) FreeAsync(die func(), refs ...Ref) {
	// The record position is the call: the producer dispatches no later
	// event mentioning the refs, so replay applying the death here
	// reproduces exactly the liveness every recorded event observed.
	if t.cli != nil {
		t.cli.Frees.Inc()
	}
	if t.ring != nil {
		t.ring.RecordFree(refs...)
	}
	if t.rec != nil {
		t.fail(t.rec.Free(refs...))
	}
	t.rt.FreeAsync(die, refs...)
}

func (t *tap) Barrier() { t.rt.Barrier() }

func (t *tap) Flush() {
	t.rt.Flush()
	if t.rec != nil {
		// Seal the open segment so a reader (or a crash) sees everything
		// up to the flush point.
		t.fail(t.rec.Flush())
	}
}

func (t *tap) Stats() Stats { return t.rt.Stats() }

func (t *tap) Close() {
	t.rt.Close()
	if t.rec != nil {
		t.fail(t.rec.Close())
	}
}

// maxFlightWindows bounds the retained verdict snapshots: a Fail burst
// keeps the most recent windows, old ones fall off.
const maxFlightWindows = 16

// flightSnap is one verdict's snapshot: the window of records leading to
// it plus the verdict instance's object IDs for LastWindow lookup.
type flightSnap struct {
	ids []uint64
	win []trace.RingEvent
}

// flightRecorder pairs the ring with snapshot-on-verdict retention.
type flightRecorder struct {
	ring  *trace.Ring
	mu    sync.Mutex
	snaps []flightSnap // newest last
}

func newFlightRecorder(n int) *flightRecorder {
	return &flightRecorder{ring: trace.NewRing(n)}
}

// onVerdict snapshots the ring at a goal verdict. It runs inside the
// verdict handler chain, under each backend's handler serialization.
func (f *flightRecorder) onVerdict(v Verdict) {
	k := v.Inst.Key()
	var ids []uint64
	for m := k.Mask; m != 0; m = m.Rest() {
		ids = append(ids, k.IDs[m.First()])
	}
	snap := flightSnap{ids: ids, win: f.ring.Snapshot()}
	f.mu.Lock()
	f.snaps = append(f.snaps, snap)
	if len(f.snaps) > maxFlightWindows {
		f.snaps = f.snaps[len(f.snaps)-maxFlightWindows:]
	}
	f.mu.Unlock()
}

// lastWindow returns the newest snapshot whose verdict bound id, or nil.
func (f *flightRecorder) lastWindow(id uint64) []trace.RingEvent {
	f.mu.Lock()
	defer f.mu.Unlock()
	for i := len(f.snaps) - 1; i >= 0; i-- {
		for _, sid := range f.snaps[i].ids {
			if sid == id {
				return f.snaps[i].win
			}
		}
	}
	return nil
}

// WindowEvent is one flight-recorder record: a parametric event or an
// object-death point from the window preceding a verdict.
type WindowEvent struct {
	// Seq is the record's position in the monitored stream (1-based).
	Seq uint64
	// Free reports an object-death record; Event is then empty.
	Free bool
	// Event is the event name.
	Event string
	// IDs are the bound (or dying) object IDs, in ascending parameter
	// order for events.
	IDs []uint64
}

// LastWindow returns the flight-recorder window captured at the most
// recent goal verdict whose instance bound ref: the exact recent-event
// context that produced the verdict, oldest record first. It returns nil
// without WithFlightRecorder, or when no verdict has mentioned ref.
//
// Synchronization follows the verdict handler contract: after a verdict
// delivered on the sequential backend the window is immediately visible;
// on concurrent backends call Barrier or Flush first.
func (m *Monitor) LastWindow(ref Ref) []WindowEvent {
	if m.flight == nil || ref == nil {
		return nil
	}
	win := m.flight.lastWindow(ref.ID())
	if win == nil {
		return nil
	}
	spec := m.rt.Spec()
	out := make([]WindowEvent, len(win))
	for i, e := range win {
		we := WindowEvent{Seq: e.Seq, IDs: append([]uint64(nil), e.IDs[:e.N]...)}
		if e.Kind == trace.RingFree {
			we.Free = true
		} else if int(e.Sym) < len(spec.Events) {
			we.Event = spec.Events[e.Sym].Name
		}
		out[i] = we
	}
	return out
}
