// Benchmarks regenerating the paper's evaluation artifacts (one benchmark
// per table/figure, see DESIGN.md's experiment index) plus the ablations
// of the design decisions and micro-benchmarks of the hot paths.
//
// The authoritative table generator is cmd/rvbench; these benches exercise
// the same harness at a small scale so `go test -bench=.` reports the
// relative shape: RV ≤ MOP ≪ TM in time, RV below MOP in retained
// monitors and memory.
package rvgo_test

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"rvgo/internal/cfg"
	"rvgo/internal/dacapo"
	"rvgo/internal/ere"
	"rvgo/internal/eval"
	"rvgo/internal/heap"
	"rvgo/internal/logic"
	"rvgo/internal/monitor"
	"rvgo/internal/param"
	"rvgo/internal/props"
	"rvgo/internal/shard"
	"rvgo/internal/slicing"
	"rvgo/internal/tracematches"
	"rvgo/internal/wire"
)

const benchScale = 0.02

var benchRows = []string{"bloat", "avrora"}
var benchProps = []string{"HasNext", "UnsafeIter", "UnsafeMapIter"}

// runCell executes one monitored workload and returns the cell.
func runCell(b *testing.B, bench, prop string, sys eval.System) eval.Cell {
	b.Helper()
	cfg := eval.DefaultConfig()
	cfg.Scale = benchScale
	cfg.Timeout = time.Minute
	cell, err := eval.RunCell(bench, prop, sys, eval.Baseline{}, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return cell
}

// BenchmarkFig9A regenerates the runtime-overhead grid of Figure 9(A):
// the ns/op of each sub-benchmark is the monitored runtime of the cell;
// compare against the Baseline sub-benchmark for the overhead ratio.
func BenchmarkFig9A(b *testing.B) {
	for _, bench := range benchRows {
		b.Run(bench+"/Baseline", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eval.RunBaseline(bench, benchScale); err != nil {
					b.Fatal(err)
				}
			}
		})
		for _, prop := range benchProps {
			for _, sys := range []eval.System{eval.SysTM, eval.SysMOP, eval.SysRV} {
				b.Run(fmt.Sprintf("%s/%s/%s", bench, prop, sys), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						runCell(b, bench, prop, sys)
					}
				})
			}
		}
	}
}

// BenchmarkFig9B regenerates the peak-memory comparison of Figure 9(B) as
// a reported metric (peakMB) per cell.
func BenchmarkFig9B(b *testing.B) {
	for _, bench := range benchRows {
		for _, prop := range benchProps {
			for _, sys := range []eval.System{eval.SysTM, eval.SysMOP, eval.SysRV} {
				b.Run(fmt.Sprintf("%s/%s/%s", bench, prop, sys), func(b *testing.B) {
					peak := 0.0
					for i := 0; i < b.N; i++ {
						if c := runCell(b, bench, prop, sys); c.PeakMemMB > peak {
							peak = c.PeakMemMB
						}
					}
					b.ReportMetric(peak, "peakMB")
				})
			}
		}
	}
}

// BenchmarkFig10 regenerates the monitoring statistics of Figure 10 as
// reported metrics: events (E), monitors created (M), flagged (FM) and
// collected (CM) per run of the RV system.
func BenchmarkFig10(b *testing.B) {
	for _, bench := range benchRows {
		for _, prop := range benchProps {
			b.Run(fmt.Sprintf("%s/%s", bench, prop), func(b *testing.B) {
				var st monitor.Stats
				for i := 0; i < b.N; i++ {
					st = runCell(b, bench, prop, eval.SysRV).Stats
				}
				b.ReportMetric(float64(st.Events), "E")
				b.ReportMetric(float64(st.Created), "M")
				b.ReportMetric(float64(st.Flagged), "FM")
				b.ReportMetric(float64(st.Collected), "CM")
			})
		}
	}
}

// BenchmarkGCPolicy is the abl-gc ablation: the same workload under no GC,
// JavaMOP's all-dead GC, and RV's coenable GC. The retained metric shows
// what the paper's Figure 10 shows — coenable GC collects what all-dead
// cannot.
func BenchmarkGCPolicy(b *testing.B) {
	for _, mode := range []struct {
		name string
		gc   monitor.GCPolicy
	}{
		{"None", monitor.GCNone},
		{"AllDead", monitor.GCAllDead},
		{"Coenable", monitor.GCCoenable},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var peak int64
			for i := 0; i < b.N; i++ {
				spec, err := props.Build("UnsafeIter")
				if err != nil {
					b.Fatal(err)
				}
				eng, err := monitor.New(spec, monitor.Options{GC: mode.gc, Creation: monitor.CreateEnable})
				if err != nil {
					b.Fatal(err)
				}
				sink, err := dacapo.Adapt("UnsafeIter", eng)
				if err != nil {
					b.Fatal(err)
				}
				rt := dacapo.NewRuntime()
				rt.AddSink(sink)
				p, _ := dacapo.Get("bloat")
				if err := p.Run(rt, benchScale); err != nil {
					b.Fatal(err)
				}
				eng.Flush()
				peak = eng.Stats().PeakLive
			}
			b.ReportMetric(float64(peak), "peakLive")
		})
	}
}

// BenchmarkCreation is the abl-create ablation: the exact Figure 5
// semantics (CreateFull, quadratic joins) against the enable-set guarded
// strategy on the same workload.
func BenchmarkCreation(b *testing.B) {
	for _, mode := range []struct {
		name string
		cs   monitor.CreationStrategy
	}{
		{"Full", monitor.CreateFull},
		{"Enable", monitor.CreateEnable},
	} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				spec, err := props.Build("UnsafeIter")
				if err != nil {
					b.Fatal(err)
				}
				eng, err := monitor.New(spec, monitor.Options{GC: monitor.GCCoenable, Creation: mode.cs})
				if err != nil {
					b.Fatal(err)
				}
				sink, err := dacapo.Adapt("UnsafeIter", eng)
				if err != nil {
					b.Fatal(err)
				}
				rt := dacapo.NewRuntime()
				rt.AddSink(sink)
				p, _ := dacapo.Get("avrora")
				if err := p.Run(rt, 0.01); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSweepInterval is the abl-lazy ablation: eager (sweep every
// event) versus lazy (default) collection — the paper's argument for
// laziness in §4.2.
func BenchmarkSweepInterval(b *testing.B) {
	for _, mode := range []struct {
		name     string
		interval int
	}{
		{"Eager1", 1},
		{"Lazy16k", 1 << 14},
	} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				spec, err := props.Build("UnsafeIter")
				if err != nil {
					b.Fatal(err)
				}
				eng, err := monitor.New(spec, monitor.Options{
					GC: monitor.GCCoenable, Creation: monitor.CreateEnable,
					SweepInterval: mode.interval,
				})
				if err != nil {
					b.Fatal(err)
				}
				sink, err := dacapo.Adapt("UnsafeIter", eng)
				if err != nil {
					b.Fatal(err)
				}
				rt := dacapo.NewRuntime()
				rt.AddSink(sink)
				p, _ := dacapo.Get("bloat")
				if err := p.Run(rt, benchScale); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLiveObjects measures the live-object ingestion mode (the rv
// frontend over real Go objects, deaths delivered by pinned real-GC
// cycles): per-policy runtime of the workload, with the settled monitor
// counts as metrics. The shape to expect mirrors BenchmarkGCPolicy, now
// against the real collector: coenable leaves only the collections'
// monitors live (liveMons ≈ #collections), the other policies retain
// every dead iterator's monitor.
func BenchmarkLiveObjects(b *testing.B) {
	for _, mode := range []struct {
		name string
		gc   monitor.GCPolicy
	}{
		{"None", monitor.GCNone},
		{"AllDead", monitor.GCAllDead},
		{"Coenable", monitor.GCCoenable},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var last eval.LiveResult
			for i := 0; i < b.N; i++ {
				r, err := eval.RunLivePolicy(mode.gc, eval.LiveConfig{Scale: 0.125})
				if err != nil {
					b.Fatal(err)
				}
				if !r.Settled {
					b.Fatal("cleanups did not settle")
				}
				last = r
			}
			b.ReportMetric(float64(last.Stats.Collected), "CM")
			b.ReportMetric(float64(last.Stats.Live), "liveMons")
		})
	}
}

// --- sharded runtime scaling ---

// shardBackends is the grid compared by the scaling benchmarks: the
// sequential engine and the sharded runtime at 1/2/4/8 workers.
var shardBackends = []struct {
	name   string
	shards int // 0 = sequential monitor.Engine
}{
	{"Sequential", 0},
	{"Shards1", 1},
	{"Shards2", 2},
	{"Shards4", 4},
	{"Shards8", 8},
}

// newShardBenchBackend builds one backend for a scaling benchmark.
func newShardBenchBackend(b *testing.B, propName string, shards int) monitor.Runtime {
	b.Helper()
	spec, err := props.Build(propName)
	if err != nil {
		b.Fatal(err)
	}
	opts := monitor.Options{GC: monitor.GCCoenable, Creation: monitor.CreateEnable}
	if shards == 0 {
		eng, err := monitor.New(spec, opts)
		if err != nil {
			b.Fatal(err)
		}
		return eng
	}
	rt, err := shard.New(spec, shard.Options{Options: opts, Shards: shards, BatchSize: 256})
	if err != nil {
		b.Fatal(err)
	}
	return rt
}

// BenchmarkShardScalingHasNext measures event throughput on the synthetic
// multi-slice workload where sharding is embarrassingly parallel: HASNEXT
// slices are single-iterator, every event binds the pivot, nothing
// broadcasts. ns/op is per event; compare Sequential vs ShardsN (on a
// multi-core host, 4 shards should clear 2× the sequential throughput).
func BenchmarkShardScalingHasNext(b *testing.B) {
	for _, bk := range shardBackends {
		b.Run(bk.name, func(b *testing.B) {
			rt := newShardBenchBackend(b, "HasNext", bk.shards)
			defer rt.Close()
			h := heap.New()
			iters := make([]*heap.Object, 1024)
			for i := range iters {
				iters[i] = h.Alloc("")
			}
			spec := rt.Spec()
			hnT, _ := spec.Symbol("hasnexttrue")
			nxt, _ := spec.Symbol("next")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				it := iters[i&1023]
				if i&1 == 0 {
					rt.Emit(hnT, it)
				} else {
					rt.Emit(nxt, it)
				}
			}
			rt.Barrier()
		})
	}
}

// BenchmarkShardScalingUnsafeIter is the honest mixed case: next events do
// not bind the UNSAFEITER pivot (the collection) and broadcast to every
// shard, so scaling is sublinear — the benchmark quantifies the broadcast
// tax alongside the routed update/create traffic.
func BenchmarkShardScalingUnsafeIter(b *testing.B) {
	for _, bk := range shardBackends {
		b.Run(bk.name, func(b *testing.B) {
			rt := newShardBenchBackend(b, "UnsafeIter", bk.shards)
			defer rt.Close()
			h := heap.New()
			spec := rt.Spec()
			create, _ := spec.Symbol("create")
			update, _ := spec.Symbol("update")
			next, _ := spec.Symbol("next")
			const nColl = 64
			cols := make([]*heap.Object, nColl)
			its := make([]*heap.Object, nColl*16)
			for c := range cols {
				cols[c] = h.Alloc("")
			}
			for i := range its {
				its[i] = h.Alloc("")
				rt.Emit(create, cols[i%nColl], its[i])
			}
			rt.Barrier() // drain the setup events before the clock starts
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i&7 == 7 {
					rt.Emit(update, cols[i%nColl])
				} else {
					rt.Emit(next, its[i%len(its)])
				}
			}
			rt.Barrier()
		})
	}
}

// --- micro-benchmarks of the hot paths ---

// BenchmarkDispatchHasNext measures one single-parameter event dispatch.
// The sequential hot path is allocation-free in steady state (run with
// -benchmem; the allocs-regression CI gate pins this via eval.RunMicro).
func BenchmarkDispatchHasNext(b *testing.B) {
	b.ReportAllocs()
	spec, err := props.Build("HasNext")
	if err != nil {
		b.Fatal(err)
	}
	eng, err := monitor.New(spec, monitor.Options{GC: monitor.GCCoenable, Creation: monitor.CreateEnable})
	if err != nil {
		b.Fatal(err)
	}
	h := heap.New()
	iters := make([]*heap.Object, 256)
	for i := range iters {
		iters[i] = h.Alloc("")
	}
	hnT, _ := spec.Symbol("hasnexttrue")
	nxt, _ := spec.Symbol("next")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := iters[i&255]
		eng.Emit(hnT, it)
		eng.Emit(nxt, it)
	}
}

// BenchmarkDispatchUnsafeIterUpdate measures the fan-out path: an update
// event hitting a collection with many iterators. Allocation-free in
// steady state.
func BenchmarkDispatchUnsafeIterUpdate(b *testing.B) {
	b.ReportAllocs()
	spec, err := props.Build("UnsafeIter")
	if err != nil {
		b.Fatal(err)
	}
	eng, err := monitor.New(spec, monitor.Options{GC: monitor.GCCoenable, Creation: monitor.CreateEnable})
	if err != nil {
		b.Fatal(err)
	}
	h := heap.New()
	c := h.Alloc("c")
	create, _ := spec.Symbol("create")
	update, _ := spec.Symbol("update")
	for i := 0; i < 64; i++ {
		eng.Emit(create, c, h.Alloc(""))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Emit(update, c)
	}
}

// BenchmarkCoenableAnalysis measures the full static analysis of a spec.
func BenchmarkCoenableAnalysis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		spec, err := props.UnsafeMapIter()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := spec.Analysis(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkERECompile measures derivative-DFA construction.
func BenchmarkERECompile(b *testing.B) {
	alphabet := []string{"create", "update", "next"}
	for i := 0; i < b.N; i++ {
		if _, err := ere.Compile("update* create next* update+ next", alphabet); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCFGBackends compares one monitor step of the two CFG backends
// on a 64-deep SafeLock state: the general Earley recognizer (chart
// copies) versus the SLR(1) stack machine (JavaMOP's approach) the
// property library uses when the grammar allows.
func BenchmarkCFGBackends(b *testing.B) {
	g, err := cfg.Parse("S -> S begin S end | S acquire S release | epsilon",
		[]string{"acquire", "release", "begin", "end"})
	if err != nil {
		b.Fatal(err)
	}
	slr, err := cfg.CompileSLR(g)
	if err != nil {
		b.Fatal(err)
	}
	for _, backend := range []struct {
		name string
		bp   logic.Blueprint
	}{
		{"Earley", cfg.FromGrammar(g)},
		{"SLR", slr},
	} {
		b.Run(backend.name, func(b *testing.B) {
			s := backend.bp.Start()
			for i := 0; i < 64; i++ {
				s = s.Step(0) // acquire
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i%2 == 0 {
					s.Step(1) // release
				} else {
					s.Step(0)
				}
			}
		})
	}
}

// BenchmarkTracematchDispatch measures the TM baseline's per-event cost on
// the same shape as BenchmarkDispatchUnsafeIterUpdate.
func BenchmarkTracematchDispatch(b *testing.B) {
	spec, err := props.Build("UnsafeIter")
	if err != nil {
		b.Fatal(err)
	}
	tm, err := tracematches.New(spec, tracematches.Options{})
	if err != nil {
		b.Fatal(err)
	}
	h := heap.New()
	c := h.Alloc("c")
	for i := 0; i < 64; i++ {
		tm.Emit(0, c, h.Alloc("")) // create
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm.Emit(1, c) // update
	}
}

// BenchmarkReferenceAlgorithm measures the abstract Figure 5 algorithm
// (the oracle), for scale against the engine.
func BenchmarkReferenceAlgorithm(b *testing.B) {
	bp, err := ere.Compile("update* create next* update+ next",
		[]string{"create", "update", "next"})
	if err != nil {
		b.Fatal(err)
	}
	var _ logic.Blueprint = bp
	h := heap.New()
	c := h.Alloc("c")
	iters := make([]*heap.Object, 32)
	for i := range iters {
		iters[i] = h.Alloc("")
	}
	b.ResetTimer()
	mon := slicing.New(bp)
	for i := 0; i < b.N; i++ {
		it := iters[i&31]
		mon.Process(slicing.Event{Sym: 0, Inst: param.Empty().Bind(0, c).Bind(1, it)})
		mon.Process(slicing.Event{Sym: 2, Inst: param.Empty().Bind(1, it)})
	}
}

// --- allocation micro-benchmarks (run with -benchmem) ---
//
// These pin the allocation-free hot path: interned parameter instances,
// pooled monitors, preboxed monitor states, scratch-buffer leaf walks and
// the reused wire decode buffers. The same scenarios run inside
// eval.RunMicro, whose allocs/event section is what the CI -compare gate
// enforces; the Benchmark forms exist for benchstat comparisons across
// revisions.

// BenchmarkDispatchChurnAllocs: generations of short-lived iterators —
// create, step, die, collect, recycle. Steady state allocates only the
// workload's own heap object and the two canonical instances of the fresh
// bindings (the intern table's documented amortization boundary); the
// monitor itself comes from the free list.
func BenchmarkDispatchChurnAllocs(b *testing.B) {
	b.ReportAllocs()
	spec, err := props.Build("UnsafeIter")
	if err != nil {
		b.Fatal(err)
	}
	eng, err := monitor.New(spec, monitor.Options{
		GC: monitor.GCCoenable, Creation: monitor.CreateEnable, SweepInterval: 256,
	})
	if err != nil {
		b.Fatal(err)
	}
	h := heap.New()
	c := h.Alloc("c")
	create, _ := spec.Symbol("create")
	update, _ := spec.Symbol("update")
	next, _ := spec.Symbol("next")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := h.Alloc("")
		eng.Emit(create, c, it)
		eng.Emit(next, it)
		h.Free(it)
		eng.Emit(update, c)
	}
}

// BenchmarkShardDispatchAllocs: the producer-side cost of routing one
// event into the sharded runtime (batch append; the batch pool recycles
// its boxed batches). Dispatch with a bound instance is the production
// path (the dacapo adapter's fast path builds instances directly); Emit
// through the Runtime interface would additionally box its variadic slice.
func BenchmarkShardDispatchAllocs(b *testing.B) {
	b.ReportAllocs()
	rt := newShardBenchBackend(b, "HasNext", 2)
	defer rt.Close()
	h := heap.New()
	iters := make([]*heap.Object, 256)
	for i := range iters {
		iters[i] = h.Alloc("")
	}
	spec := rt.Spec()
	hnT, _ := spec.Symbol("hasnexttrue")
	nxt, _ := spec.Symbol("next")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := iters[i&255]
		if i&1 == 0 {
			rt.Dispatch(hnT, param.Empty().Bind(0, it))
		} else {
			rt.Dispatch(nxt, param.Empty().Bind(0, it))
		}
	}
	rt.Barrier()
}

// BenchmarkWireDecodeAllocs: the server's per-frame decode loop; the
// reader reuses its frame and ID buffers, so a pipelined event stream
// decodes without allocating.
func BenchmarkWireDecodeAllocs(b *testing.B) {
	var buf bytes.Buffer
	w := wire.NewWriter(&buf)
	const burst = 4096
	for i := 0; i < burst; i++ {
		if err := w.WriteEvent(i&3, []uint64{uint64(i & 1023), uint64(i & 255)}); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		b.Fatal(err)
	}
	encoded := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	var msg wire.Msg
	r := wire.NewReader(&loopBytes{data: encoded})
	for i := 0; i < b.N; i++ {
		if err := r.Next(&msg); err != nil {
			b.Fatal(err)
		}
	}
}

// loopBytes replays a byte stream forever (frames align with the buffer).
type loopBytes struct {
	data []byte
	off  int
}

func (l *loopBytes) Read(p []byte) (int, error) {
	if l.off == len(l.data) {
		l.off = 0
	}
	n := copy(p, l.data[l.off:])
	l.off += n
	return n, nil
}
