// Tests of the WithMetrics façade: the exposed series must settle to the
// engine's exact Stats, instrumentation must not cost the hot path its
// 0 allocs/op guarantee, and — the observability ground rule — enabling
// metrics must not change a single observable of the monitored run.
package rvgo_test

import (
	"fmt"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"

	"rvgo"
	"rvgo/internal/conformance"
	"rvgo/internal/monitor"
	"rvgo/spec"
)

// seriesValue reads one labeled series from a registry snapshot.
func seriesValue(t *testing.T, met *rvgo.Metrics, family, label string) float64 {
	t.Helper()
	fam, ok := met.Find(family)
	if !ok {
		t.Fatalf("registry has no family %q (have %v)", family, familyNames(met))
	}
	for _, s := range fam.Series {
		if s.Label == label {
			return s.Value
		}
	}
	t.Fatalf("family %q has no series %q: %+v", family, label, fam.Series)
	return 0
}

func familyNames(met *rvgo.Metrics) []string {
	var names []string
	for _, f := range met.Snapshot() {
		names = append(names, f.Name)
	}
	return names
}

// TestMonitorMetrics covers the attach/expose cycle on the sequential
// backend: after a Flush the engine series equal the exact Stats counters,
// the Prometheus text carries them under the tenant label, and the
// registry is mountable as an http.Handler.
func TestMonitorMetrics(t *testing.T) {
	sp, err := spec.Builtin("HasNext")
	if err != nil {
		t.Fatal(err)
	}
	met := rvgo.NewMetrics()
	m, err := rvgo.New(sp, rvgo.WithMetrics(met))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.Metrics() != met {
		t.Fatal("Monitor.Metrics() did not return the attached registry")
	}
	hnT, next := m.MustEvent("hasnexttrue"), m.MustEvent("next")
	h := rvgo.NewHeap()
	for i := 0; i < 1000; i++ {
		it := h.Alloc("it")
		hnT.Emit(it)
		next.Emit(it)
		m.Free(it)
		h.Free(it)
	}
	m.Flush()
	st := m.Stats()

	// Settled equality with the exact counters, per family.
	for _, c := range []struct {
		family string
		want   uint64
	}{
		{"rv_engine_events_total", st.Events},
		{"rv_engine_monitors_created_total", st.Created},
		{"rv_engine_monitors_collected_total", st.Collected},
		{"rv_engine_verdicts_total", st.GoalVerdicts},
	} {
		if got := seriesValue(t, met, c.family, "HasNext"); got != float64(c.want) {
			t.Errorf("%s{tenant=HasNext} = %v, want %d (exact Stats)", c.family, got, c.want)
		}
	}
	if live := seriesValue(t, met, "rv_engine_monitors_live", "HasNext"); live != float64(st.Live) {
		t.Errorf("rv_engine_monitors_live = %v, want %d", live, st.Live)
	}

	// The mounted handler serves the same series as WritePrometheus.
	var sb strings.Builder
	if err := met.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	met.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Body.String() != sb.String() {
		t.Error("ServeHTTP body differs from WritePrometheus output")
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q, want the Prometheus text exposition type", ct)
	}
	want := fmt.Sprintf("rv_engine_events_total{tenant=\"HasNext\"} %d", st.Events)
	if !strings.Contains(sb.String(), want) {
		t.Errorf("Prometheus text missing %q:\n%s", want, sb.String())
	}
}

// TestMetricsSharedRegistry pins the aggregation contract: two Monitors
// over the same property attached to one registry sum into one series.
func TestMetricsSharedRegistry(t *testing.T) {
	sp, err := spec.Builtin("HasNext")
	if err != nil {
		t.Fatal(err)
	}
	met := rvgo.NewMetrics()
	var total uint64
	for _, n := range []int{300, 700} {
		m, err := rvgo.New(sp, rvgo.WithMetrics(met))
		if err != nil {
			t.Fatal(err)
		}
		hnT := m.MustEvent("hasnexttrue")
		h := rvgo.NewHeap()
		it := h.Alloc("it")
		for i := 0; i < n; i++ {
			hnT.Emit(it)
		}
		total += uint64(n)
		m.Close() // Close settles this Monitor's deltas into the registry
	}
	if got := seriesValue(t, met, "rv_engine_events_total", "HasNext"); got != float64(total) {
		t.Errorf("shared series = %v after two monitors, want %d", got, total)
	}
}

// TestMetricsZeroAlloc is the hard gate of the tentpole: WithMetrics must
// not cost the sequential hot path its 0 allocs/op guarantee
// (TestEmitterZeroAlloc without instrumentation). The run is long enough
// to cross the engine's amortized publication interval many times, so the
// delta-publish path itself is under the gate too.
func TestMetricsZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	sp, err := spec.Builtin("HasNext")
	if err != nil {
		t.Fatal(err)
	}
	m, err := rvgo.New(sp, rvgo.WithMetrics(rvgo.NewMetrics()))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	hnT, next := m.MustEvent("hasnexttrue"), m.MustEvent("next")
	h := rvgo.NewHeap()
	it := h.Alloc("it")
	hnT.Emit(it) // warm up: monitor creation is off the steady-state path
	if avg := testing.AllocsPerRun(2000, func() {
		hnT.Emit(it)
		next.Emit(it)
	}); avg != 0 {
		t.Errorf("instrumented Emitter.Emit allocates %.2f allocs/op on the sequential backend, want 0", avg)
	}
}

// scriptedRun drives a fixed UNSAFEITER workload (40 iterators over 4
// collections, one violation each, explicit deaths) and returns the
// settled counters and the sorted verdict set.
func scriptedRun(t *testing.T, opts ...rvgo.Option) (rvgo.Stats, []string) {
	t.Helper()
	sp, err := spec.Builtin("UnsafeIter")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var verdicts []string
	opts = append(opts, rvgo.WithVerdictHandler(func(v rvgo.Verdict) {
		mu.Lock()
		verdicts = append(verdicts, string(v.Cat)+"@"+v.Inst.Format(sp.Params()))
		mu.Unlock()
	}))
	m, err := rvgo.New(sp, opts...)
	if err != nil {
		t.Fatal(err)
	}
	h := rvgo.NewHeap()
	create, update, next := m.MustEvent("create"), m.MustEvent("update"), m.MustEvent("next")
	for cIdx := 0; cIdx < 4; cIdx++ {
		c := h.Alloc(fmt.Sprintf("c%d", cIdx))
		for r := 0; r < 10; r++ {
			it := h.Alloc(fmt.Sprintf("i%d_%d", cIdx, r))
			create.Emit(c, it)
			update.Emit(c)
			next.Emit(it) // next after update: one UNSAFEITER violation
			m.Free(it)
			h.Free(it)
		}
		m.Free(c)
		h.Free(c)
	}
	m.Flush()
	st := m.Stats()
	m.Close()
	mu.Lock()
	defer mu.Unlock()
	sort.Strings(verdicts)
	return st, verdicts
}

// TestMetricsConformance runs the observability ground rule over the full
// matrix — three backends × three GC policies: with metrics attached the
// oracle suites must still pass, and a scripted trace must produce
// bit-identical settled counters and verdicts with and without a registry.
func TestMetricsConformance(t *testing.T) {
	addr := startFacadeServer(t)
	backends := []struct {
		name string
		opts func() []rvgo.Option
	}{
		{"seq", func() []rvgo.Option { return nil }},
		{"shard4", func() []rvgo.Option { return []rvgo.Option{rvgo.WithShards(4)} }},
		{"remote", func() []rvgo.Option { return []rvgo.Option{rvgo.WithRemote(addr)} }},
	}
	policies := []rvgo.GCPolicy{rvgo.GCCoenable, rvgo.GCAllDead, rvgo.GCNone}
	for _, bk := range backends {
		for _, gc := range policies {
			bk, gc := bk, gc
			t.Run(fmt.Sprintf("%s/gc=%s", bk.name, gc), func(t *testing.T) {
				// Oracle suites with a registry attached.
				build := func(t *testing.T, prop string, onVerdict func(monitor.Verdict)) monitor.Runtime {
					sp, err := spec.Builtin(prop)
					if err != nil {
						t.Fatal(err)
					}
					opts := append(bk.opts(), rvgo.WithGC(gc),
						rvgo.WithMetrics(rvgo.NewMetrics()),
						rvgo.WithVerdictHandler(onVerdict))
					m, err := rvgo.New(sp, opts...)
					if err != nil {
						t.Fatal(err)
					}
					return m
				}
				t.Run("EmitNamed", func(t *testing.T) { conformance.RunEmitNamed(t, build) })
				t.Run("RunFree", func(t *testing.T) { conformance.RunFreePolicy(t, build, gc) })

				// Bit-identical with and without instrumentation.
				t.Run("Identical", func(t *testing.T) {
					base := append(bk.opts(), rvgo.WithGC(gc))
					met := rvgo.NewMetrics()
					stOn, vOn := scriptedRun(t, append(base, rvgo.WithMetrics(met))...)
					stOff, vOff := scriptedRun(t, base...)
					if stOn != stOff {
						t.Errorf("stats diverge with metrics attached:\n  on  %+v\n  off %+v", stOn, stOff)
					}
					if fmt.Sprint(vOn) != fmt.Sprint(vOff) || len(vOn) != 40 {
						t.Errorf("verdicts diverge: with metrics %v, without %v", vOn, vOff)
					}
					// The registry's settled counters match the run they
					// instrumented. Remote sessions count at the client tap
					// (the engine series live in the server's registry).
					if bk.name == "remote" {
						if got := seriesValue(t, met, "rv_client_events_total", "UnsafeIter"); got != float64(stOn.Events) {
							t.Errorf("rv_client_events_total = %v, want %d", got, stOn.Events)
						}
						if got := seriesValue(t, met, "rv_client_verdicts_total", "UnsafeIter"); got != 40 {
							t.Errorf("rv_client_verdicts_total = %v, want 40", got)
						}
					} else {
						// Engine events sum per-worker dispatches: on the
						// sharded runtime a broadcast counts once per shard
						// it reaches, so the series dominates the deduped
						// façade counter (and equals it sequentially).
						got := seriesValue(t, met, "rv_engine_events_total", "UnsafeIter")
						if bk.name == "seq" && got != float64(stOn.Events) {
							t.Errorf("rv_engine_events_total = %v, want %d", got, stOn.Events)
						}
						if got < float64(stOn.Events) {
							t.Errorf("rv_engine_events_total = %v, want >= %d", got, stOn.Events)
						}
						if got := seriesValue(t, met, "rv_engine_monitors_created_total", "UnsafeIter"); got != float64(stOn.Created) {
							t.Errorf("rv_engine_monitors_created_total = %v, want %d", got, stOn.Created)
						}
						if got := seriesValue(t, met, "rv_engine_monitors_collected_total", "UnsafeIter"); got != float64(stOn.Collected) {
							t.Errorf("rv_engine_monitors_collected_total = %v, want %d", got, stOn.Collected)
						}
					}
				})
			})
		}
	}
}
