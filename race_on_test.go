//go:build race

package rvgo_test

// raceEnabled reports that the race detector is active; allocation-count
// assertions are skipped, since instrumentation allocates.
const raceEnabled = true
