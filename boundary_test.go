package rvgo_test

import (
	"bytes"
	"encoding/json"
	"io"
	"os/exec"
	"sort"
	"strings"
	"testing"
)

// The façade boundary: rvgo and rvgo/spec are the only packages outside
// internal/ that may touch rvgo/internal/... — they ARE the public
// surface over it. The public frontends (rv, client) are implemented
// purely on the façade, and the command-line tools may additionally use
// the tool-glue trio below (shared flag validation and the evaluation
// harness, which are dev tooling, not API). Everything else is a
// boundary violation: it would hand users an import path that a future
// refactor breaks.
var (
	// facadePackages may import any internal package.
	facadePackages = map[string]bool{
		"rvgo":      true,
		"rvgo/spec": true,
	}
	// publicPackages is the complete allowed set of non-main packages
	// outside internal/ (the façade plus the two frontends).
	publicPackages = map[string]bool{
		"rvgo":        true,
		"rvgo/spec":   true,
		"rvgo/rv":     true,
		"rvgo/client": true,
	}
	// toolGlue is what a main package (cmd/, examples/) may import from
	// internal/: the shared CLI validation and the evaluation/workload
	// harness driven by rvbench and rvload.
	toolGlue = map[string]bool{
		"rvgo/internal/cliutil": true,
		"rvgo/internal/eval":    true,
		"rvgo/internal/dacapo":  true,
	}
)

type listedPackage struct {
	ImportPath string
	Name       string
	Imports    []string
}

// TestBoundary enforces the façade boundary with `go list`: no package
// outside internal/ — except the façade itself, and tool glue for main
// packages — imports rvgo/internal/..., and no new public package
// appears outside internal/ unannounced. CI runs this in the lint job;
// test-only imports are exempt (the façade's own oracle tests compare
// against internal backends by design).
func TestBoundary(t *testing.T) {
	out, err := exec.Command("go", "list", "-json=ImportPath,Name,Imports", "./...").Output()
	if err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			t.Fatalf("go list: %v\n%s", err, ee.Stderr)
		}
		t.Fatalf("go list: %v", err)
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []listedPackage
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		pkgs = append(pkgs, p)
	}
	if len(pkgs) < 10 {
		t.Fatalf("go list returned %d packages — wrong working directory?", len(pkgs))
	}

	var violations []string
	for _, p := range pkgs {
		if strings.HasPrefix(p.ImportPath, "rvgo/internal/") {
			continue
		}
		if p.Name != "main" && !publicPackages[p.ImportPath] {
			violations = append(violations,
				p.ImportPath+": new public (non-main) package outside internal/ — extend the façade instead, or add it here deliberately")
			continue
		}
		// The cluster backend is façade-only: even the other public
		// packages (rvgo/spec, the frontends) and the tool mains reach it
		// through rvgo.WithCluster / client.DialCluster, never by import —
		// its wire-level membership machinery is not a public surface.
		for _, imp := range p.Imports {
			if imp == "rvgo/internal/cluster" && p.ImportPath != "rvgo" {
				violations = append(violations,
					p.ImportPath+" imports rvgo/internal/cluster — the cluster backend is façade-only (use rvgo.WithCluster)")
			}
		}
		if facadePackages[p.ImportPath] {
			continue
		}
		for _, imp := range p.Imports {
			if !strings.HasPrefix(imp, "rvgo/internal/") {
				continue
			}
			if p.Name == "main" && toolGlue[imp] {
				continue
			}
			violations = append(violations, p.ImportPath+" imports "+imp)
		}
	}
	sort.Strings(violations)
	for _, v := range violations {
		t.Errorf("façade boundary violation: %s", v)
	}
}
