// Benchmarks of the façade hot paths: the pre-resolved Emitter (which
// must preserve PR 4's 0 allocs/op on the sequential backend) and
// EmitNamed's name resolution (which, since the Spec.Symbol map, must not
// scale with the alphabet size).
package rvgo_test

import (
	"fmt"
	"testing"

	"rvgo"
	"rvgo/spec"
)

// BenchmarkEmitterEmit measures the façade's per-event hot path on the
// sequential backend: one pre-resolved Emitter dispatching a
// single-parameter event in steady state. The allocs/op column must read
// 0 — the same guarantee the internal dispatcher fast path gives the
// DaCapo adapter (TestEmitterZeroAlloc gates it in plain `go test`).
func BenchmarkEmitterEmit(b *testing.B) {
	sp, err := spec.Builtin("HasNext")
	if err != nil {
		b.Fatal(err)
	}
	m, err := rvgo.New(sp)
	if err != nil {
		b.Fatal(err)
	}
	defer m.Close()
	hnT, next := m.MustEvent("hasnexttrue"), m.MustEvent("next")
	h := rvgo.NewHeap()
	it := h.Alloc("it")
	hnT.Emit(it)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hnT.Emit(it)
		next.Emit(it)
	}
}

// alphabetSpec builds an FSM property with n events e0..e(n-1) forming a
// chain s0 -e0→ s1 -e1→ … → done. A chain keeps the enable-set families
// linear in n (a clique of mutually-preceding events makes the §3 enable
// family enumerate subsets of the alphabet — exponential, and nothing the
// paper's ≤6-event properties ever approach), so only name-resolution
// cost varies with the alphabet size.
func alphabetSpec(b *testing.B, n int) *spec.Spec {
	bld := spec.New(fmt.Sprintf("Alphabet%d", n)).Params("x")
	states := make([]spec.FSMState, n+1)
	for i := 0; i < n; i++ {
		ev := fmt.Sprintf("e%d", i)
		bld.Event(ev, "x")
		to := fmt.Sprintf("s%d", i+1)
		if i == n-1 {
			to = "done"
		}
		states[i] = spec.State(fmt.Sprintf("s%d", i), ev, to)
	}
	states[n] = spec.State("done")
	sp, err := bld.FSM(states...).Goal("done").Build()
	if err != nil {
		b.Fatal(err)
	}
	return sp
}

// BenchmarkEmitNamedAlphabet dispatches by name under growing alphabets,
// always using the lexically last event — the worst case for the linear
// scan Spec.Symbol used to be. With the name→symbol map the three
// sub-benchmarks report the same ns/op; under the old scan the 64-event
// case paid ~16× the 4-event case in resolution alone.
func BenchmarkEmitNamedAlphabet(b *testing.B) {
	for _, n := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("alphabet%d", n), func(b *testing.B) {
			sp := alphabetSpec(b, n)
			m, err := rvgo.New(sp)
			if err != nil {
				b.Fatal(err)
			}
			defer m.Close()
			h := rvgo.NewHeap()
			x := h.Alloc("x")
			last := fmt.Sprintf("e%d", n-1)
			if err := m.EmitNamed(last, x); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := m.EmitNamed(last, x); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
