package rvgo_test

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdRef matches references to markdown files: bare names in Go comments
// ("see DESIGN.md") and link targets in markdown ("[x](DESIGN.md)").
var mdRef = regexp.MustCompile(`[A-Za-z0-9_./-]*[A-Za-z0-9_-]\.md\b`)

// TestDocsHealth fails when a *.md file referenced from a Go source or a
// markdown file does not exist in the repository — documentation that the
// code promises must actually be committed. (CI runs this as its
// docs-health step.)
func TestDocsHealth(t *testing.T) {
	refs := map[string][]string{} // referenced md path -> referring files
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		ext := filepath.Ext(path)
		if ext != ".go" && ext != ".md" {
			return nil
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range mdRef.FindAllString(string(raw), -1) {
			// References are repo-root-relative by convention; strip a
			// leading "./".
			m = strings.TrimPrefix(m, "./")
			refs[m] = append(refs[m], path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) == 0 {
		t.Fatal("no markdown references found at all — is the test running at the repo root?")
	}
	for target, sources := range refs {
		if _, err := os.Stat(target); err != nil {
			// Deduplicate and cap the source list for the message.
			seen := map[string]bool{}
			var uniq []string
			for _, s := range sources {
				if !seen[s] {
					seen[s] = true
					uniq = append(uniq, s)
				}
			}
			t.Errorf("%s is referenced by %s but does not exist", target, strings.Join(uniq, ", "))
		}
	}
}
