package rvgo_test

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"rvgo"
	"rvgo/internal/conformance"
	"rvgo/internal/monitor"
	"rvgo/spec"
)

// startFacadeServer runs an in-process monitoring server for the remote
// façade cells.
func startFacadeServer(t testing.TB) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := rvgo.NewServer(rvgo.ServerOptions{})
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	t.Cleanup(func() {
		srv.Shutdown(5 * time.Second)
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return l.Addr().String()
}

// TestFacadeConformance runs the backend-independent Runtime suites
// against rvgo.Monitor for all three backends × all three GC policies:
// the façade must preserve the oracle behavior of the backends it wraps —
// EmitNamed's error contract, death positioning, verdict equality with a
// sequential reference — no matter which options selected it.
func TestFacadeConformance(t *testing.T) {
	addr := startFacadeServer(t)
	addr2 := startFacadeServer(t)
	backends := []struct {
		name string
		opts func() []rvgo.Option
	}{
		{"seq", func() []rvgo.Option { return nil }},
		{"shard4", func() []rvgo.Option { return []rvgo.Option{rvgo.WithShards(4)} }},
		{"remote", func() []rvgo.Option { return []rvgo.Option{rvgo.WithRemote(addr)} }},
		{"cluster2", func() []rvgo.Option { return []rvgo.Option{rvgo.WithCluster(addr, addr2)} }},
	}
	policies := []rvgo.GCPolicy{rvgo.GCCoenable, rvgo.GCAllDead, rvgo.GCNone}
	for _, bk := range backends {
		for _, gc := range policies {
			gc := gc
			build := func(t *testing.T, prop string, onVerdict func(monitor.Verdict)) monitor.Runtime {
				sp, err := spec.Builtin(prop)
				if err != nil {
					t.Fatal(err)
				}
				opts := append(bk.opts(), rvgo.WithGC(gc), rvgo.WithVerdictHandler(onVerdict))
				m, err := rvgo.New(sp, opts...)
				if err != nil {
					t.Fatal(err)
				}
				return m
			}
			t.Run(fmt.Sprintf("%s/gc=%s", bk.name, gc), func(t *testing.T) {
				t.Run("EmitNamed", func(t *testing.T) { conformance.RunEmitNamed(t, build) })
				t.Run("RunFree", func(t *testing.T) { conformance.RunFreePolicy(t, build, gc) })
			})
		}
	}
}

// TestShardVerdictHandlerContract exercises the documented concurrency
// contract of WithVerdictHandler on the sharded backend with the race
// detector watching: handler invocations are serialized across the four
// workers, so a handler may mutate unlocked state, and that state is
// readable by the driving goroutine after a Flush (and again after
// Close), which order every handler call for already-dispatched events
// before their return.
func TestShardVerdictHandlerContract(t *testing.T) {
	sp, err := spec.Builtin("UnsafeIter")
	if err != nil {
		t.Fatal(err)
	}
	// Deliberately unsynchronized handler state.
	byInst := map[string]int{}
	var order []string
	m, err := rvgo.New(sp,
		rvgo.WithShards(4), rvgo.WithBatch(4, 4),
		rvgo.WithVerdictHandler(func(v rvgo.Verdict) {
			k := v.Inst.Format(sp.Params())
			byInst[k]++
			order = append(order, k)
		}))
	if err != nil {
		t.Fatal(err)
	}
	h := rvgo.NewHeap()
	const producers, rounds = 4, 50
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			c := h.Alloc(fmt.Sprintf("c%d", p))
			for r := 0; r < rounds; r++ {
				it := h.Alloc(fmt.Sprintf("i%d_%d", p, r))
				// create, update, next: one UNSAFEITER match per round.
				for _, step := range []struct {
					ev   string
					vals []rvgo.Ref
				}{{"create", []rvgo.Ref{c, it}}, {"update", []rvgo.Ref{c}}, {"next", []rvgo.Ref{it}}} {
					if err := m.EmitNamed(step.ev, step.vals...); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(p)
	}
	wg.Wait()
	m.Flush()
	if got, want := len(order), producers*rounds; got != want {
		t.Errorf("handler invocations after Flush = %d, want %d", got, want)
	}
	for k, n := range byInst {
		if n != 1 {
			t.Errorf("slice %s reported %d times, want 1", k, n)
		}
	}
	m.Close()
	if got, want := len(byInst), producers*rounds; got != want {
		t.Errorf("distinct verdict slices = %d, want %d", got, want)
	}
}

// TestVerdictStream covers WithVerdictStream: verdicts arrive on the
// channel (after the handler), and Close closes it so range terminates.
func TestVerdictStream(t *testing.T) {
	sp, err := spec.Builtin("HasNext")
	if err != nil {
		t.Fatal(err)
	}
	handled := 0
	m, err := rvgo.New(sp,
		rvgo.WithVerdictStream(8),
		rvgo.WithVerdictHandler(func(rvgo.Verdict) { handled++ }))
	if err != nil {
		t.Fatal(err)
	}
	h := rvgo.NewHeap()
	it := h.Alloc("it")
	next := m.MustEvent("next")
	next.Emit(it) // next with no hasnext: error state
	m.Flush()
	m.Close()
	var got []string
	for v := range m.Verdicts() {
		got = append(got, string(v.Cat)+"@"+v.Inst.Format(sp.Params()))
	}
	if len(got) != 1 || got[0] != "error@<i=it>" || handled != 1 {
		t.Errorf("stream = %v (handler saw %d), want one error@<i=it>", got, handled)
	}
	if m.Verdicts() == nil {
		t.Error("Verdicts() = nil after WithVerdictStream")
	}
}

// TestOptionValidation pins the construction-time error contract: bad
// options fail at New with a message naming the option, never later.
func TestOptionValidation(t *testing.T) {
	builtin, err := spec.Builtin("HasNext")
	if err != nil {
		t.Fatal(err)
	}
	built, err := spec.New("P").Params("x").Event("e", "x").ERE("e").Build()
	if err != nil {
		t.Fatal(err)
	}
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	cases := []struct {
		name string
		sp   *spec.Spec
		opts []rvgo.Option
		want string
	}{
		{"ZeroShards", builtin, []rvgo.Option{rvgo.WithShards(0)}, "WithShards"},
		{"WindowLocal", builtin, []rvgo.Option{rvgo.WithWindow(8)}, "WithWindow"},
		{"BatchSeq", builtin, []rvgo.Option{rvgo.WithBatch(4, 4)}, "WithBatch"},
		{"EmptyRemote", builtin, []rvgo.Option{rvgo.WithRemote("")}, "WithRemote"},
		{"RemoteAndConn", builtin, []rvgo.Option{rvgo.WithRemote("x:1"), rvgo.WithRemoteConn(c1)}, "mutually exclusive"},
		{"BadGC", builtin, []rvgo.Option{rvgo.WithGC(rvgo.GCPolicy(9))}, "GC policy"},
		{"BadCreation", builtin, []rvgo.Option{rvgo.WithCreation(rvgo.CreationStrategy(9))}, "creation strategy"},
		{"RemoteNeedsProvenance", built, []rvgo.Option{rvgo.WithRemote("127.0.0.1:1")}, "provenance"},
		{"FullCreationSharded", builtin, []rvgo.Option{rvgo.WithShards(4), rvgo.WithCreation(rvgo.CreateFull)}, "single shard"},
		{"EmptyCluster", builtin, []rvgo.Option{rvgo.WithCluster()}, "WithCluster"},
		{"ClusterEmptyAddr", builtin, []rvgo.Option{rvgo.WithCluster("a:1", "")}, "WithCluster"},
		{"ClusterAndRemote", builtin, []rvgo.Option{rvgo.WithCluster("a:1"), rvgo.WithRemote("b:1")}, "mutually exclusive"},
		{"ClusterAndConn", builtin, []rvgo.Option{rvgo.WithCluster("a:1"), rvgo.WithRemoteConn(c1)}, "mutually exclusive"},
		{"ClusterShards", builtin, []rvgo.Option{rvgo.WithCluster("a:1"), rvgo.WithShards(2)}, "WithShards"},
		{"SeedLocal", builtin, []rvgo.Option{rvgo.WithHashSeed(7)}, "WithHashSeed"},
		{"ClusterNeedsProvenance", built, []rvgo.Option{rvgo.WithCluster("127.0.0.1:1")}, "provenance"},
		{"ClusterSweep", builtin, []rvgo.Option{rvgo.WithCluster("a:1"), rvgo.WithSweepInterval(64)}, "WithSweepInterval"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, err := rvgo.New(tc.sp, tc.opts...)
			if err == nil {
				m.Close()
				t.Fatalf("New succeeded, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
		})
	}
	if _, err := rvgo.New(nil); err == nil {
		t.Error("New(nil) succeeded")
	}
}

// TestBuilderMatchesBuiltin replays one trace against the fluent-built
// HASNEXT and the built-in library one: identical verdicts and counters —
// the builder is a front end to the same compiled property.
func TestBuilderMatchesBuiltin(t *testing.T) {
	fluent, err := spec.New("HasNext").
		Params("i").
		Event("hasnexttrue", "i").
		Event("hasnextfalse", "i").
		Event("next", "i").
		FSM(
			spec.State("unknown", "hasnexttrue", "more", "hasnextfalse", "none", "next", "error"),
			spec.State("more", "hasnexttrue", "more", "hasnextfalse", "none", "next", "unknown"),
			spec.State("none", "hasnexttrue", "more", "hasnextfalse", "none", "next", "error"),
			spec.State("error"),
		).
		Goal("error").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	builtin, err := spec.Builtin("HasNext")
	if err != nil {
		t.Fatal(err)
	}
	run := func(sp *spec.Spec) (rvgo.Stats, []string) {
		var verdicts []string
		m, err := rvgo.New(sp, rvgo.WithVerdictHandler(func(v rvgo.Verdict) {
			verdicts = append(verdicts, string(v.Cat)+"@"+v.Inst.Format(sp.Params()))
		}))
		if err != nil {
			t.Fatal(err)
		}
		h := rvgo.NewHeap()
		hnT, hnF, next := m.MustEvent("hasnexttrue"), m.MustEvent("hasnextfalse"), m.MustEvent("next")
		a, b := h.Alloc("a"), h.Alloc("b")
		hnT.Emit(a)
		next.Emit(a)
		hnF.Emit(a)
		next.Emit(a) // violation on a
		hnT.Emit(b)
		next.Emit(b)
		h.Free(a)
		h.Free(b)
		m.Flush()
		st := m.Stats()
		m.Close()
		return st, verdicts
	}
	stF, vF := run(fluent)
	stB, vB := run(builtin)
	if stF != stB {
		t.Errorf("stats diverge:\n  fluent  %+v\n  builtin %+v", stF, stB)
	}
	if fmt.Sprint(vF) != fmt.Sprint(vB) || len(vF) != 1 {
		t.Errorf("verdicts diverge: fluent %v, builtin %v", vF, vB)
	}
}

// TestBuilderErrors pins the build-time diagnostics of the fluent API.
func TestBuilderErrors(t *testing.T) {
	cases := []struct {
		name string
		b    *spec.Builder
		want string
	}{
		{"NoLogic", spec.New("P").Params("x").Event("e", "x"), "no logic block"},
		{"TwoLogics", spec.New("P").Params("x").Event("e", "x").ERE("e").LTL("[] e"), "both"},
		{"UndeclaredParam", spec.New("P").Params("x").Event("e", "y").ERE("e"), "undeclared parameter"},
		{"DupEvent", spec.New("P").Params("x").Event("e", "x").Event("e", "x").ERE("e"), "twice"},
		{"FSMNoGoal", spec.New("P").Params("x").Event("e", "x").FSM(spec.State("s", "e", "s")), "Goal"},
		{"OddStatePairs", spec.New("P").Params("x").Event("e", "x").FSM(spec.State("s", "e")).Goal("s"), "pairs"},
		{"BadERE", spec.New("P").Params("x").Event("e", "x").ERE("(("), "ere block"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tc.b.Build()
			if err == nil {
				t.Fatalf("Build succeeded, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

// TestEmitterContract pins Event/Emitter behavior: resolution errors for
// unknown events, arity panics at the call site, and introspection.
func TestEmitterContract(t *testing.T) {
	sp, err := spec.Builtin("UnsafeIter")
	if err != nil {
		t.Fatal(err)
	}
	m, err := rvgo.New(sp)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, err := m.Event("nosuch"); err == nil || !strings.Contains(err.Error(), "nosuch") {
		t.Errorf("Event(nosuch) error = %v, want one naming the event", err)
	}
	create := m.MustEvent("create")
	if create.Name() != "create" || create.Arity() != 2 {
		t.Errorf("create emitter = (%q, %d), want (create, 2)", create.Name(), create.Arity())
	}
	h := rvgo.NewHeap()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Emit with wrong arity did not panic")
			}
		}()
		create.Emit(h.Alloc("only-one"))
	}()
	if got := m.Stats().Events; got != 0 {
		t.Errorf("misfired emit dispatched: Events = %d, want 0", got)
	}
	// EventParams exposes the binding order Emit expects.
	ps, err := sp.EventParams("create")
	if err != nil || fmt.Sprint(ps) != "[c i]" {
		t.Errorf("EventParams(create) = %v, %v; want [c i]", ps, err)
	}
}

// TestEmitterZeroAlloc is the façade half of the PR-4 hot-path guarantee:
// a pre-resolved Emitter dispatching on the sequential backend allocates
// nothing per event. (The benchmark BenchmarkEmitterEmit reports the same
// number under -benchmem; this test makes it a hard gate in plain `go
// test`.)
func TestEmitterZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	sp, err := spec.Builtin("HasNext")
	if err != nil {
		t.Fatal(err)
	}
	m, err := rvgo.New(sp)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	hnT, next := m.MustEvent("hasnexttrue"), m.MustEvent("next")
	h := rvgo.NewHeap()
	it := h.Alloc("it")
	hnT.Emit(it) // warm up: monitor creation is off the steady-state path
	if avg := testing.AllocsPerRun(2000, func() {
		hnT.Emit(it)
		next.Emit(it)
	}); avg != 0 {
		t.Errorf("Emitter.Emit allocates %.2f allocs/op on the sequential backend, want 0", avg)
	}
}
