package rv_test

import (
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"rvgo"
	"rvgo/internal/heap"
	"rvgo/internal/monitor"
	"rvgo/internal/props"
	"rvgo/rv"
	rvspec "rvgo/spec"
)

// coll/iter are real parameter objects for the racy workload.
type coll struct {
	p   int
	pad [4]int64
}
type iter struct {
	p, r int
	pad  [2]int64
}

//go:noinline
func newIter(p, r int) *iter { return &iter{p: p, r: r} }

// TestFreeDuringDispatchRace is the free-during-dispatch satellite: on the
// sharded backend, cleanup-driven frees (delivered by auto-poll from
// whatever goroutine happens to Attach next, racing in-flight Dispatch
// batches on every other producer) must leave per-slice verdict sequences
// exactly equal to a sequential-engine replay with explicit frees. The
// workload completes each iterator's slice before dropping it, so verdict
// content is death-timing-independent; what the race detector and the
// comparison check is that delivery racing dispatch corrupts nothing.
func TestFreeDuringDispatchRace(t *testing.T) {
	spec, err := props.Build("UnsafeIter")
	if err != nil {
		t.Fatal(err)
	}
	const producers = 8
	const rounds = 120

	label := func(v any) string {
		switch o := v.(type) {
		case *coll:
			return fmt.Sprintf("c%d", o.p)
		case *iter:
			return fmt.Sprintf("i%d_%d", o.p, o.r)
		}
		return "?"
	}

	// Racy run: sharded backend, concurrent producers, real GC.
	var vmu sync.Mutex
	got := map[string][]string{}
	sp, err := rvspec.Builtin("UnsafeIter")
	if err != nil {
		t.Fatal(err)
	}
	srt, err := rvgo.New(sp,
		rvgo.WithShards(4), rvgo.WithBatch(4, 4),
		rvgo.WithVerdictHandler(func(v rvgo.Verdict) {
			vmu.Lock()
			got[v.Inst.Format(spec.Params)] = append(got[v.Inst.Format(spec.Params)], string(v.Cat))
			vmu.Unlock()
		}))
	if err != nil {
		t.Fatal(err)
	}
	s := rv.New(srt, rv.Options{Label: label})

	stop := make(chan struct{})
	var gcPump sync.WaitGroup
	gcPump.Add(1)
	go func() {
		// Keep the collector churning so cleanups fire while producers
		// are mid-batch; deliveries then ride the producers' auto-polls
		// and this goroutine's explicit polls.
		defer gcPump.Done()
		for {
			select {
			case <-stop:
				return
			default:
				runtime.GC()
				s.Poll()
				time.Sleep(200 * time.Microsecond)
			}
		}
	}()

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			c := &coll{p: p}
			for r := 0; r < rounds; r++ {
				it := newIter(p, r)
				if err := s.Attach("create", c, it); err != nil {
					t.Error(err)
					return
				}
				if err := s.Attach("update", c); err != nil {
					t.Error(err)
					return
				}
				if err := s.Attach("next", it); err != nil {
					t.Error(err)
					return
				}
				// The slice (c, it) has reached its verdict; drop the
				// iterator and let the real GC reclaim the monitor.
			}
			runtime.KeepAlive(c)
		}(p)
	}
	wg.Wait()
	close(stop)
	gcPump.Wait()
	// Deliver whatever the GC has found by now; stragglers are a
	// liveness matter, not a verdict one.
	s.Collect(0, time.Second)
	s.Flush()
	gotStats := s.Stats()
	s.Close()

	// Reference: the same per-producer event sequences, single-threaded,
	// on the sequential engine with explicit frees at the same points.
	want := map[string][]string{}
	eng, err := monitor.New(spec, monitor.Options{
		GC: monitor.GCCoenable, Creation: monitor.CreateEnable,
		OnVerdict: func(v monitor.Verdict) {
			want[v.Inst.Format(spec.Params)] = append(want[v.Inst.Format(spec.Params)], string(v.Cat))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h := heap.New()
	for p := 0; p < producers; p++ {
		c := h.Alloc(fmt.Sprintf("c%d", p))
		for r := 0; r < rounds; r++ {
			it := h.Alloc(fmt.Sprintf("i%d_%d", p, r))
			for _, e := range []struct {
				name string
				vals []heap.Ref
			}{{"create", []heap.Ref{c, it}}, {"update", []heap.Ref{c}}, {"next", []heap.Ref{it}}} {
				if err := eng.EmitNamed(e.name, e.vals...); err != nil {
					t.Fatal(err)
				}
			}
			eng.Free(it)
			h.Free(it)
		}
	}
	eng.Flush()
	wantStats := eng.Stats()
	eng.Close()

	if !reflect.DeepEqual(want, got) {
		t.Fatalf("per-slice verdicts diverge:\n  sequential: %d slices\n  racy:       %d slices", len(want), len(got))
	}
	if want := wantStats.GoalVerdicts; gotStats.GoalVerdicts != want {
		t.Errorf("GoalVerdicts = %d, want %d", gotStats.GoalVerdicts, want)
	}
	if want := wantStats.Events; gotStats.Events != want {
		t.Errorf("Events = %d, want %d", gotStats.Events, want)
	}
}
