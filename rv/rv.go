// Package rv is the live-object instrumentation frontend: monitor your
// actual program, not a recorded trace. A monitored program attaches
// parametric events directly to its own live Go objects —
//
//	m, _ := rvgo.New(spec)
//	session := rv.New(m, rv.Options{})
//	rv.Attach(session, "create", coll, iter)
//	rv.Attach(session, "next", iter)
//
// — and when the Go garbage collector later reclaims one of those objects,
// that collection is the death signal that drives the paper's coenable-set
// monitor GC, exactly as the JVM's weak references drive JavaMOP/RV.
//
// This is the third ingestion mode of this reproduction, next to recorded
// traces (cmd/rvmon, the DaCapo substrate) and network sessions
// (rvgo.WithRemote): see DESIGN.md for the map. It works against any
// rvgo.Monitor — the sequential engine, the sharded concurrent runtime,
// or a remote session.
//
// # How death travels
//
// Objects are given stable monitoring identities by a weak-keyed registry
// (rvgo.Registry): the session never keeps a monitored object alive. When
// the Go GC collects one, a runtime.AddCleanup hook enqueues its identity
// on the session's death queue. The queue is delivered at deterministic
// points — automatically at the next Attach, or explicitly via Poll or
// Collect — through the Monitor's FreeAsync path: the death is positioned
// in the event stream (after everything already dispatched, before
// everything later) and only then becomes visible, so per-slice verdicts
// and settled counters are identical to an explicit-free replay of the
// same trace. A raw weak-reference flip could race queued events; a
// queued, stream-positioned death cannot.
//
// # Contracts
//
// Monitored objects must be pointer-shaped (pointers, maps, channels) and
// heap-allocated — registering a pointer to a global crashes the runtime,
// the same contract as runtime.AddCleanup. Beware the tiny allocator:
// a pointer-free object smaller than 16 bytes shares its allocation block
// with unrelated neighbours and is only collected when the whole block is,
// so its death signal can be delayed indefinitely. Real parameter objects
// (iterators, collections) contain pointers and are unaffected; if you
// must monitor a tiny pointer-free struct, give it a pointer field. A
// session is as safe for concurrent Attach as its Monitor's backend (the
// sharded and remote runtimes are; the sequential engine is
// single-threaded). Poll and Collect may run concurrently with Attach on
// a concurrent backend: a cleanup can only fire after the program dropped
// the object, so its death signal always trails the object's own events.
package rv

import (
	"fmt"
	"runtime"
	"time"

	"rvgo"
)

// Options configures a session.
type Options struct {
	// ManualPoll disables automatic death delivery at Attach: pending
	// death signals are delivered only by explicit Poll or Collect calls.
	// Oracle tests use this to pin deaths to exact trace positions.
	ManualPoll bool
	// Label names a monitored object for diagnostics and verdict
	// rendering. Nil labels objects "obj#<id>" by identity.
	Label func(v any) string
}

// Session binds a monitor to the live objects of this process.
type Session struct {
	m    *rvgo.Monitor
	tab  *rvgo.Registry
	opts Options
}

// New wraps a monitor in a live-object session. The session does not own
// the monitor: Close shuts it down, but the caller may also drive it
// directly (Monitor) for stats or flushes.
func New(m *rvgo.Monitor, opts Options) *Session {
	return &Session{m: m, tab: rvgo.NewRegistry(), opts: opts}
}

// Attach emits the named parametric event over live Go objects, in the
// spec's parameter order for that event. Objects are registered on first
// sight; the same object always binds the same monitoring identity. The
// error contract is EmitNamed's (unknown event, arity mismatch) plus a
// registration error for values without reference identity.
func Attach(s *Session, event string, objs ...any) error { return s.Attach(event, objs...) }

// Attach is the method form of the package-level Attach.
func (s *Session) Attach(event string, objs ...any) error {
	if !s.opts.ManualPoll && s.tab.Pending() > 0 {
		s.Poll()
	}
	refs := make([]rvgo.Ref, len(objs))
	for i, o := range objs {
		label := ""
		if s.opts.Label != nil {
			label = s.opts.Label(o)
		}
		ref, err := s.tab.Register(o, label)
		if err != nil {
			return fmt.Errorf("rv: event %q, value %d: %w", event, i, err)
		}
		refs[i] = ref
	}
	err := s.m.EmitNamed(event, refs...)
	// Pin the objects until the event is in the backend's stream: without
	// this, the GC could collect an object between registration and
	// dispatch, and a concurrent Poll could deliver its death ahead of
	// this very event.
	runtime.KeepAlive(objs)
	return err
}

// Poll delivers every queued death signal to the monitor through its
// pipelined FreeAsync path and returns the number delivered. Delivery is
// what makes a collection observable: until a death is delivered, the
// monitors still see the object as alive.
func (s *Session) Poll() int {
	objs := s.tab.Drain()
	if len(objs) == 0 {
		return 0
	}
	refs := make([]rvgo.Ref, len(objs))
	for i, o := range objs {
		refs[i] = o
	}
	h := s.tab.Heap()
	s.m.FreeAsync(func() {
		for _, o := range objs {
			h.Free(o)
		}
	}, refs...)
	return len(objs)
}

// Collect pins a garbage-collection point: it runs Go GC cycles until n
// death signals beyond those already delivered are available — cleanups
// that fired before the call but were never delivered count toward n, so
// an automatic GC sneaking in between dropping an object and calling
// Collect cannot strand the target — then delivers everything pending. It
// returns the number delivered and whether the target was reached; this
// is the deterministic reclamation point the live-object benchmarks and
// oracle tests are built on. (Under automatic polling a concurrent Attach
// may deliver some of the n first; the target still settles, and the
// returned count covers only this call's deliveries.)
func (s *Session) Collect(n int, timeout time.Duration) (delivered int, ok bool) {
	st := s.tab.Stats() // one consistent Cleaned/Delivered snapshot
	ok = s.tab.Settle(st.Delivered+uint64(n), timeout)
	return s.Poll(), ok
}

// Pending returns the number of deaths queued but not yet delivered.
func (s *Session) Pending() int { return s.tab.Pending() }

// Monitor returns the session's monitor, for stats, flushes and barriers.
func (s *Session) Monitor() *rvgo.Monitor { return s.m }

// Registry returns the session's object table, for diagnostics and tests.
func (s *Session) Registry() *rvgo.Registry { return s.tab }

// Stats returns the monitor's counters.
func (s *Session) Stats() rvgo.Stats { return s.m.Stats() }

// Flush settles the monitor's counters (a full expunge/compaction pass).
func (s *Session) Flush() { s.m.Flush() }

// Close delivers any pending deaths and closes the monitor.
func (s *Session) Close() {
	s.Poll()
	s.m.Close()
}
