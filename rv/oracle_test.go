package rv_test

import (
	"fmt"
	"math/rand"
	"net"
	"reflect"
	"testing"
	"time"

	"rvgo"
	"rvgo/internal/heap"
	"rvgo/internal/monitor"
	"rvgo/internal/props"
	"rvgo/rv"
	"rvgo/spec"
)

// ostep is one step of a backend-independent trace over object ordinals:
// an event, or (ev == "") the death of ordinal objs[0]. The same trace is
// replayed once with explicit frees on simulated-heap objects and once
// through the rv frontend with real Go objects dropped at the same points
// and collected by the real garbage collector; the paper's claim — the
// host GC is a faithful death signal — is that the two runs are
// indistinguishable.
type ostep struct {
	ev   string
	objs []int
}

// genTrace generates a random trace for a spec: per-parameter pools of
// live ordinals, events over live objects only, births, and deaths that
// permanently retire an ordinal (as real garbage collection does). Only
// ordinals that appeared in an event can die as a trace step — the death
// of a never-monitored object is invisible to every ingestion mode, so it
// would have no replayable position.
func genTrace(rng *rand.Rand, spec *monitor.Spec, n int) []ostep {
	nParams := len(spec.Params)
	pools := make([][]int, nParams)
	used := map[int]bool{}
	next := 0
	alloc := func(p int) {
		pools[p] = append(pools[p], next)
		next++
	}
	for p := 0; p < nParams; p++ {
		alloc(p)
		alloc(p)
	}
	var steps []ostep
	for len(steps) < n {
		switch r := rng.Float64(); {
		case r < 0.08: // death
			p := rng.Intn(nParams)
			if len(pools[p]) <= 1 {
				continue
			}
			i := rng.Intn(len(pools[p]))
			if !used[pools[p][i]] {
				continue
			}
			o := pools[p][i]
			pools[p] = append(pools[p][:i], pools[p][i+1:]...)
			steps = append(steps, ostep{objs: []int{o}})
		case r < 0.2: // birth
			alloc(rng.Intn(nParams))
		default:
			sym := rng.Intn(len(spec.Events))
			if spec.Events[sym].Params.Empty() {
				continue
			}
			ps := spec.Events[sym].Params.Members()
			objs := make([]int, len(ps))
			for k, p := range ps {
				objs[k] = pools[p][rng.Intn(len(pools[p]))]
				used[objs[k]] = true
			}
			steps = append(steps, ostep{ev: spec.Events[sym].Name, objs: objs})
		}
	}
	return steps
}

// result is one replay's observable outcome.
type result struct {
	verdicts map[string][]string
	stats    monitor.Stats
}

func recordVerdicts(spec *monitor.Spec, into map[string][]string) func(monitor.Verdict) {
	return func(v monitor.Verdict) {
		k := v.Inst.Format(spec.Params)
		into[k] = append(into[k], fmt.Sprintf("%d/%s", v.Sym, v.Cat))
	}
}

// backend builds one façade monitor for the oracle grid. shards == 0 is
// the sequential engine; remote != "" dials a server session. Going
// through rvgo here means every oracle cell also exercises the façade's
// backend wiring.
func backend(t testing.TB, prop string, gc monitor.GCPolicy, shards int, remote string, onV func(monitor.Verdict)) *rvgo.Monitor {
	t.Helper()
	sp, err := spec.Builtin(prop)
	if err != nil {
		t.Fatal(err)
	}
	opts := []rvgo.Option{rvgo.WithGC(gc), rvgo.WithVerdictHandler(onV)}
	switch {
	case remote != "":
		opts = append(opts, rvgo.WithRemote(remote), rvgo.WithShards(max(shards, 1)))
	case shards > 0:
		opts = append(opts, rvgo.WithShards(shards), rvgo.WithBatch(4, 0))
	}
	m, err := rvgo.New(sp, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// replayExplicit drives a trace with simulated-heap objects and explicit,
// synchronous frees: the reference run.
func replayExplicit(t testing.TB, rt *rvgo.Monitor, steps []ostep) monitor.Stats {
	t.Helper()
	h := heap.New()
	objs := map[int]*heap.Object{}
	get := func(o int) *heap.Object {
		v, ok := objs[o]
		if !ok {
			v = h.Alloc(fmt.Sprintf("o%d", o))
			objs[o] = v
		}
		return v
	}
	for _, st := range steps {
		if st.ev == "" {
			o := get(st.objs[0])
			rt.Free(o)
			h.Free(o)
			continue
		}
		vals := make([]heap.Ref, len(st.objs))
		for k, o := range st.objs {
			vals[k] = get(o)
		}
		if err := rt.EmitNamed(st.ev, vals...); err != nil {
			t.Fatal(err)
		}
	}
	rt.Flush()
	st := rt.Stats()
	rt.Close()
	return st
}

// liveObj is a real heap-allocated parameter object for the rv replay.
type liveObj struct {
	ord int
	pad [4]int64
}

//go:noinline
func newLiveObj(ord int) *liveObj { return &liveObj{ord: ord} }

// replayLive drives the same trace through the rv frontend: real objects,
// dropped at the trace's death points and collected by pinned Go GC
// cycles, with the death signals delivered at exactly those positions.
func replayLive(t testing.TB, rt *rvgo.Monitor, steps []ostep) monitor.Stats {
	t.Helper()
	s := rv.New(rt, rv.Options{
		ManualPoll: true,
		Label:      func(v any) string { return fmt.Sprintf("o%d", v.(*liveObj).ord) },
	})
	objs := map[int]*liveObj{}
	get := func(o int) *liveObj {
		v, ok := objs[o]
		if !ok {
			v = newLiveObj(o)
			objs[o] = v
		}
		return v
	}
	for _, st := range steps {
		if st.ev == "" {
			// Drop the only strong reference, pin a GC point, deliver.
			delete(objs, st.objs[0])
			delivered, ok := s.Collect(1, 20*time.Second)
			if !ok || delivered != 1 {
				t.Fatalf("death of o%d: delivered %d (settled=%v); registry %+v",
					st.objs[0], delivered, ok, s.Registry().Stats())
			}
			continue
		}
		vals := make([]any, len(st.objs))
		for k, o := range st.objs {
			vals[k] = get(o)
		}
		if err := s.Attach(st.ev, vals...); err != nil {
			t.Fatal(err)
		}
	}
	s.Flush()
	st := s.Stats()
	s.Close()
	return st
}

// compareRuns checks per-slice verdict sequences and settled counters.
// exactPeak excludes PeakLive for multi-shard backends (which sum
// per-shard peaks).
func compareRuns(t *testing.T, name string, want, got result, exactPeak bool) {
	t.Helper()
	a, b := want.stats, got.stats
	if !exactPeak {
		a.PeakLive, b.PeakLive = 0, 0
	}
	if a != b {
		t.Errorf("%s: settled counters diverge:\n  explicit %+v\n  live     %+v", name, a, b)
	}
	if !reflect.DeepEqual(want.verdicts, got.verdicts) {
		t.Errorf("%s: per-slice verdicts diverge:\n  explicit %v\n  live     %v",
			name, want.verdicts, got.verdicts)
	}
}

// startServer runs an in-process monitoring server for the remote cells.
func startServer(t testing.TB) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := rvgo.NewServer(rvgo.ServerOptions{})
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	t.Cleanup(func() {
		srv.Shutdown(5 * time.Second)
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return l.Addr().String()
}

// TestLiveOracle is the acceptance oracle of the live-object frontend:
// replaying a trace with explicit frees and re-running it with real
// objects dropped at the same points (collected by the real Go GC) yield
// identical per-slice verdicts and settled GC counters, on the sequential
// engine, the sharded runtime, and remote sessions, under all three GC
// policies.
func TestLiveOracle(t *testing.T) {
	addr := startServer(t)
	gcs := []monitor.GCPolicy{monitor.GCNone, monitor.GCAllDead, monitor.GCCoenable}
	propsUnder := []string{"HasNext", "UnsafeIter", "UnsafeMapIter"}
	traceLen := 160
	seeds := 2
	if testing.Short() {
		propsUnder = propsUnder[:2]
		seeds = 1
	}
	backends := []struct {
		name      string
		shards    int
		remote    bool
		exactPeak bool
	}{
		{"seq", 0, false, true},
		{"shard4", 4, false, false},
		{"remote1", 1, true, true},
		{"remote4", 4, true, false},
	}
	for _, prop := range propsUnder {
		spec, err := props.Build(prop)
		if err != nil {
			t.Fatal(err)
		}
		for seed := 0; seed < seeds; seed++ {
			rng := rand.New(rand.NewSource(int64(seed)))
			steps := genTrace(rng, spec, traceLen)
			for _, gc := range gcs {
				for _, bk := range backends {
					name := fmt.Sprintf("%s/seed%d/gc=%s/%s", prop, seed, gc, bk.name)
					remote := ""
					if bk.remote {
						remote = addr
					}
					want := result{verdicts: map[string][]string{}}
					rtA := backend(t, prop, gc, bk.shards, remote, recordVerdicts(spec, want.verdicts))
					want.stats = replayExplicit(t, rtA, steps)

					got := result{verdicts: map[string][]string{}}
					rtB := backend(t, prop, gc, bk.shards, remote, recordVerdicts(spec, got.verdicts))
					got.stats = replayLive(t, rtB, steps)

					compareRuns(t, name, want, got, bk.exactPeak)
				}
			}
		}
	}
}
