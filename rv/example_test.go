package rv_test

import (
	"fmt"
	"time"

	"rvgo"
	"rvgo/rv"
	"rvgo/spec"
)

// Cache and CacheIter play the monitored program: a collection type and
// its iterator, instrumented by hand with rv.Attach calls. (Like any real
// iterator, CacheIter points at its collection — which also keeps it off
// the tiny-allocator path, so the GC can reclaim each iterator
// individually; see the package comment.)
type Cache struct{ entries []string }

type CacheIter struct {
	c   *Cache
	pos int
}

// iterate walks the cache with a scoped iterator. noinline keeps the
// iterator out of the caller's frame, so it is genuinely unreachable —
// and collectable — when iterate returns.
//
//go:noinline
func iterate(s *rv.Session, c *Cache) {
	it := &CacheIter{c: c}
	rv.Attach(s, "create", c, it)
	for range c.entries {
		rv.Attach(s, "next", it)
	}
}

// Example monitors the UNSAFEITER property over live Go objects: mutating
// a collection while iterating it is reported, and once the program drops
// an iterator, the real Go garbage collector's collection of it reclaims
// the iterator's monitors.
func Example() {
	property, err := spec.Builtin("UnsafeIter")
	if err != nil {
		panic(err)
	}
	m, err := rvgo.New(property, rvgo.WithVerdictHandler(func(v rvgo.Verdict) {
		fmt.Printf("verdict: %s at %s\n", v.Cat, v.Inst.Format(property.Params()))
	}))
	if err != nil {
		panic(err)
	}
	s := rv.New(m, rv.Options{Label: func(v any) string {
		switch v.(type) {
		case *Cache:
			return "cache"
		case *CacheIter:
			return "iter"
		}
		return "?"
	}})

	cache := &Cache{entries: []string{"a", "b"}}

	// A well-behaved iteration, inside its own scope: the iterator is
	// unreachable once iterate returns.
	iterate(s, cache)

	// Let the Go GC collect the dropped iterator and deliver its death:
	// the coenable-set analysis reclaims its monitors.
	if _, ok := s.Collect(1, 10*time.Second); !ok {
		panic("iterator was not collected")
	}

	// An unsafe iteration: the cache is updated mid-iteration.
	it := &CacheIter{c: cache}
	rv.Attach(s, "create", cache, it)
	cache.entries = append(cache.entries, "c")
	rv.Attach(s, "update", cache)
	rv.Attach(s, "next", it)

	s.Flush()
	st := s.Stats()
	// Two of the three monitors are gone: the first iterator's, reclaimed
	// because the real GC collected its object, and the matched one,
	// terminated after its verdict (no suffix can reach another goal).
	fmt.Printf("monitors created: %d, collected: %d\n", st.Created, st.Collected)
	s.Close()

	// Output:
	// verdict: match at <c=cache, i=iter>
	// monitors created: 3, collected: 2
}
