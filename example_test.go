package rvgo_test

import (
	"fmt"
	"net"
	"time"

	"rvgo"
	"rvgo/rv"
	"rvgo/spec"
)

// Example is the five-minute tour: a built-in property, the default
// backend (sequential engine, coenable-set GC, enable-set creation),
// typed emitters, one violation, settled counters.
func Example() {
	property, err := spec.Builtin("HasNext")
	if err != nil {
		panic(err)
	}
	m, err := rvgo.New(property, rvgo.WithVerdictHandler(func(v rvgo.Verdict) {
		fmt.Printf("violation at %s\n", v.Inst.Format(property.Params()))
	}))
	if err != nil {
		panic(err)
	}
	hasNextTrue := m.MustEvent("hasnexttrue")
	next := m.MustEvent("next")

	h := rvgo.NewHeap()
	it := h.Alloc("iter")
	hasNextTrue.Emit(it)
	next.Emit(it)
	next.Emit(it) // next() without a preceding hasNext(): the verdict
	h.Free(it)

	m.Flush()
	st := m.Stats()
	fmt.Printf("events=%d created=%d collected=%d verdicts=%d\n",
		st.Events, st.Created, st.Collected, st.GoalVerdicts)
	m.Close()
	// Output:
	// violation at <i=iter>
	// events=3 created=1 collected=1 verdicts=1
}

// Example_sharded runs the same property on the sharded concurrent
// runtime: WithShards is the only change, and the settled counters equal
// a sequential run of the same trace (the suite in internal/conformance
// holds every backend to that).
func Example_sharded() {
	property, err := spec.Builtin("UnsafeIter")
	if err != nil {
		panic(err)
	}
	m, err := rvgo.New(property, rvgo.WithShards(4))
	if err != nil {
		panic(err)
	}
	create := m.MustEvent("create")
	next := m.MustEvent("next")

	h := rvgo.NewHeap()
	coll := h.Alloc("coll")
	for k := 0; k < 1000; k++ {
		it := h.Alloc(fmt.Sprintf("it%d", k))
		create.Emit(coll, it)
		next.Emit(it)
		m.Free(it) // position the death behind the events above
		h.Free(it)
	}
	m.Flush()
	st := m.Stats()
	fmt.Printf("created=%d collected=%d live=%d\n", st.Created, st.Collected, st.Live)
	m.Close()
	// Output:
	// created=1000 collected=1000 live=0
}

// Example_remote monitors over the network: an in-process server stands
// in for `rvserve` on another machine, and WithRemote turns the Monitor
// into a wire session. Object death becomes an explicit Free message —
// the protocol-level stand-in for a weak reference clearing.
func Example_remote() {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	srv := rvgo.NewServer(rvgo.ServerOptions{})
	go srv.Serve(l)
	defer srv.Shutdown(5 * time.Second)

	property, err := spec.Builtin("HasNext")
	if err != nil {
		panic(err)
	}
	m, err := rvgo.New(property,
		rvgo.WithRemote(l.Addr().String()),
		rvgo.WithVerdictHandler(func(v rvgo.Verdict) {
			fmt.Printf("violation at %s\n", v.Inst.Format(property.Params()))
		}))
	if err != nil {
		panic(err)
	}
	h := rvgo.NewHeap()
	it := h.Alloc("iter")
	next := m.MustEvent("next")
	next.Emit(it) // pipelines to the server; the verdict rides back
	h.Free(it)
	m.Free(it)

	m.Flush()
	fmt.Printf("verdicts=%d\n", m.Stats().GoalVerdicts)
	m.Close()
	if err := m.Err(); err != nil {
		panic(err)
	}
	// Output:
	// violation at <i=iter>
	// verdicts=1
}

// Example_liveObjects monitors real Go objects through the rv frontend:
// no simulated heap, no explicit frees — the weak-keyed registry assigns
// identities and the Go garbage collector's cleanups become the death
// signals that drive monitor reclamation.
func Example_liveObjects() {
	property, err := spec.Builtin("UnsafeIter")
	if err != nil {
		panic(err)
	}
	m, err := rvgo.New(property, rvgo.WithVerdictHandler(func(v rvgo.Verdict) {
		fmt.Printf("caught %s at %s\n", v.Cat, v.Inst.Format(property.Params()))
	}))
	if err != nil {
		panic(err)
	}
	session := rv.New(m, rv.Options{Label: func(v any) string {
		if _, ok := v.(map[string]int); ok {
			return "scores"
		}
		return "cursor"
	}})

	scores := map[string]int{"ada": 3}
	cursor := &struct{ pos int }{}
	rv.Attach(session, "create", scores, cursor)
	scores["bob"] = 1
	rv.Attach(session, "update", scores)
	rv.Attach(session, "next", cursor) // iterating after an update: caught

	session.Flush()
	// Two monitors: the matched ⟨scores, cursor⟩ slice and the ⟨scores⟩
	// progenitor the update event materialized.
	fmt.Printf("monitors created=%d\n", session.Stats().Created)
	session.Close()
	// Output:
	// caught match at <c=scores, i=cursor>
	// monitors created=2
}
