package monitor

import (
	"fmt"
	"sort"
	"time"

	"rvgo/internal/arena"
	"rvgo/internal/heap"
	"rvgo/internal/index"
	"rvgo/internal/logic"
	"rvgo/internal/metrics"
	"rvgo/internal/param"
)

// GCPolicy selects how monitor instances are reclaimed.
type GCPolicy int

const (
	// GCNone never flags monitors: the pre-GC baseline.
	GCNone GCPolicy = iota
	// GCAllDead flags a monitor only when every bound parameter object has
	// been collected — the JavaMOP condition the paper improves upon.
	GCAllDead
	// GCCoenable is the paper's contribution: a monitor is flagged as soon
	// as its ALIVENESS formula (derived from coenable sets and the last
	// event observed) becomes false, plus termination of dead states.
	GCCoenable
)

func (p GCPolicy) String() string {
	switch p {
	case GCNone:
		return "none"
	case GCAllDead:
		return "alldead"
	case GCCoenable:
		return "coenable"
	}
	return fmt.Sprintf("GCPolicy(%d)", int(p))
}

// CreationStrategy selects how new monitor instances are materialized.
type CreationStrategy int

const (
	// CreateEnable uses the enable-set analysis (Chen et al., ASE'09) plus
	// a fresh-object guard: a progenitor θ'' may be extended to θ' only
	// when the parameters in dom(θ')\dom(θ'') bind objects receiving their
	// first event now. Sound for G-verdicts; skips instances that could
	// never trigger. This is the production strategy.
	CreateEnable CreationStrategy = iota
	// CreateFull materializes every lub {θ} ⊔ Θ exactly as in Figure 5.
	// Quadratic in the worst case; used as the semantic oracle in tests.
	CreateFull
)

// Verdict is one goal-category report delivered to the handler.
type Verdict struct {
	Spec *Spec
	Sym  int
	Cat  logic.Category
	Inst param.Instance
}

// Options configures an Engine.
type Options struct {
	GC       GCPolicy
	Creation CreationStrategy
	// OnVerdict is the specification handler; nil counts verdicts only.
	//
	// Concurrency contract (it differs per backend, and the façade's
	// WithVerdictHandler documents the same rules for users): on the
	// sequential Engine the handler runs synchronously on the goroutine
	// calling Emit/Dispatch; on the sharded runtime it runs on worker
	// goroutines, serialized (never two invocations at once), with
	// handler-written state readable by other goroutines only after a
	// Barrier, Flush or Close; on the remote client it runs on the
	// session's reader goroutine and must not call back into the client.
	OnVerdict func(Verdict)
	// SweepInterval is the number of events between tombstone sweeps
	// (0 = default).
	SweepInterval int
	// Avoid selects the creation-avoidance mode: off (default), audit
	// (count guard hits in Stats.Avoided, create anyway), or enforce
	// (suppress guarded creations; per-slice verdicts stay bit-identical
	// to the unguarded engine — see avoid.go for the soundness boundary).
	Avoid AvoidMode
	// ProfileGuards, when non-nil, is a per-symbol guard vector (usually
	// CreationProfile.Guards from a recorded-trace replay) consulted by
	// the avoidance guard in addition to the static doomed analysis. It
	// has effect only when Avoid is not AvoidOff, and enforcement is
	// restricted to maximal-domain creations.
	ProfileGuards []bool
	// Profile, when non-nil, accumulates per-creation-site statistics
	// (see CreationProfile). Engine-local and unsynchronized: sequential
	// engines only; read it after Flush/Close.
	Profile *CreationProfile
	// Metrics, when non-nil, receives the engine's telemetry. The engine
	// keeps its exact non-atomic Stats and publishes *deltas* into the
	// shared atomic series at amortized points — every publishInterval
	// events, after each sweep, and on Flush/Close — so the hot path stays
	// allocation-free and scrape-side reads race nothing. Series values lag
	// the true counters by at most publishInterval events until the next
	// Flush/Close settles them. Multiple engines (shard workers, repeated
	// sessions of one tenant) may share one series; deltas sum correctly.
	Metrics *metrics.EngineSeries
}

// publishInterval is the delta-publication period in events; a power of
// two so the hot-path check is a mask.
const publishInterval = 256

// Stats are the monitoring counters of the paper's Figure 10, plus some.
type Stats struct {
	Events       uint64 // E: parametric events dispatched
	Created      uint64 // M: monitor instances created
	Flagged      uint64 // FM: flagged unnecessary by ALIVENESS/termination
	Collected    uint64 // CM: dropped from every container
	GoalVerdicts uint64 // handler invocations
	Steps        uint64 // base-monitor transitions taken
	Avoided      uint64 // creations suppressed (or, in audit mode, only counted) by the avoidance guards
	Live         int64  // currently live (uncollected) monitors
	PeakLive     int64  // maximum of Live
}

// Monitor record flags. A flagged monitor has been proven unnecessary by
// ALIVENESS/termination; a collected monitor has been dropped by every
// container; inExact reports that the engine's Δ map still references the
// record — a slot is recycled only once it is both collected and out of Δ.
const (
	monFlagged uint8 = 1 << iota
	monCollected
	monInExact
	// monStepped marks the birth step as taken; monRestepped and
	// monGoaled dedupe the creation-profile counters (set only when a
	// CreationProfile is attached).
	monStepped
	monRestepped
	monGoaled
)

// Mon is one monitor-instance record: a handle to its parameter instance θ
// (a slot in the engine's interner arena), the state of its trace slice,
// and GC bookkeeping. Mon is deliberately pointer-free: monitor records
// live in slab arenas (see package arena) whose slabs the host garbage
// collector never scans, so ten million live monitors cost the collector
// exactly as much as zero. Everything a Mon used to reach through pointers
// — the engine, its instance, its boxed logic state — is reached through
// the owning engine instead.
type Mon struct {
	instH      arena.Handle // instance slot in the engine's interner arena
	state      uint32       // graph-mode logic state word (see Engine.g)
	lastSym    int32
	refs       int32 // container refcount (reachability stand-in)
	paramsSeen param.Set
	birthSym   int16 // creating event symbol (creation-site identity)
	flags      uint8
}

// Engine is the RV runtime for one specification.
type Engine struct {
	spec *Spec
	an   *Analysis
	opts Options
	bp   logic.Blueprint
	// g is the explored state graph when the runtime blueprint is
	// graph-backed (every Explorable formalism: FSM, ERE, ptLTL). With g
	// set, a monitor's logic state is the uint32 word Mon.state and a step
	// is one array read — no interface values anywhere in the store. When
	// g is nil (CFG monitors with unbounded state), per-monitor boxed
	// states live in the boxState side slice instead.
	g *logic.Graph
	// botWord/botState is Δ(⊥): the state of the empty-domain slice, in
	// whichever representation the blueprint uses. It only advances on
	// propositional events (D(e) = ∅) and is the progenitor state for
	// instances created from ⊥.
	botWord  uint32
	botState logic.State

	// intern canonicalizes parameter instances: every θ the engine touches
	// resolves to one slab slot with a stable canonical pointer, so
	// instance identity is pointer identity and the per-event maps below
	// key on 8 bytes, while monitor records hold the slot's uint32-indexed
	// handle. Entries are swept with the tombstones (retaining anything Δ
	// still maps); slots stay pinned while a monitor holds their handle.
	intern *param.Interner

	// mons is the monitor store: a slab arena of pointer-free Mon records
	// addressed by generation-tagged handles. Reclaimed monitors are a
	// free-list push; creations pop the free list — the collected garbage
	// literally becomes the allocator (and with it, PR 4's pooled-monitor
	// free list generalizes to the whole store).
	mons arena.Pool[Mon]
	// boxState holds the per-monitor boxed logic state for non-graph
	// blueprints, indexed by monitor slot; unused (empty) in graph mode.
	boxState []logic.State

	// trees are the dispatch indexing trees, one per event parameter set
	// (Figure 6).
	trees map[param.Set]*index.Tree
	// exact is Δ's domain: interned instance → monitor handle (kept while
	// flagged so a terminated instance is never re-materialized with a
	// wrong slice).
	exact map[*param.Instance]arena.Handle
	// regs are the per-domain join indexes (CreateEnable).
	regs map[param.Set]*domainReg
	// domains is every instance domain, descending popcount.
	domains []param.Set
	// joins[sym] lists the domains R (⊉ D(e)) that a CreateEnable join
	// must consider for events with symbol sym, with the overlap O.
	joins [][]joinPlan

	// seen records, per object that has appeared in an event, which event
	// parameter-domains it appeared under; seenInst records the exact
	// instances of multi-parameter events. Both are swept periodically and
	// back the fresh-object creation guard.
	seen      map[uint64]seenRec
	seenInst  map[param.Key]param.Instance
	evDomains []param.Set // distinct event parameter sets, for seenRec bits
	domBit    []uint16    // per symbol, bit for its domain in seenRec.doms
	sinceSwep int

	// allParams is the maximal instance domain (the union of every event's
	// parameter set — by union closure the unique maximal element of
	// domains); avoided holds the enforce-mode tombstones for suppressed
	// creations; profGuards/prof are Options.ProfileGuards/Profile.
	allParams  param.Set
	avoided    map[*param.Instance]struct{}
	profGuards []bool
	prof       *CreationProfile

	stats Stats

	// met is Options.Metrics; pub/pubRecycled/pubReused/pubArena are the
	// values already published into it, so each publish Adds only the
	// delta accumulated since the last one.
	met                    *metrics.EngineSeries
	pub                    Stats
	pubRecycled, pubReused uint64
	pubArena               arena.Stats

	// recycled counts monitors returned to the arena free list.
	recycled uint64

	// scratch, reused across events: the per-event processed set, the
	// pending insertions, and the leaf-visit buffers for the closure-free
	// dispatch loops.
	processed map[*param.Instance]bool
	pendAdd   []arena.Handle
	visitBuf  []index.Handle
	monBuf    []arena.Handle
}

// domainReg indexes the monitor instances whose domain is exactly R, for
// the creation joins: projections[O] maps θ|O to the instances agreeing on
// O; all holds every instance (used when a join has empty overlap).
type domainReg struct {
	R           param.Set
	projections map[param.Set]*index.Tree
	all         *index.Set
}

type joinPlan struct {
	R param.Set
	O param.Set
}

// seenRec tracks one object's event history shape: which event domains it
// has been bound under. Stored by value: the seen map never allocates per
// record.
type seenRec struct {
	ref  heap.Ref
	doms uint16
}

// New builds an engine for a spec; Analyze is run if it has not been.
func New(spec *Spec, opts Options) (*Engine, error) {
	an, err := spec.Analysis()
	if err != nil {
		return nil, err
	}
	if opts.SweepInterval <= 0 {
		opts.SweepInterval = 1 << 14
	}
	if opts.Avoid < AvoidOff || opts.Avoid > AvoidEnforce {
		return nil, fmt.Errorf("monitor: unknown avoidance mode %d", opts.Avoid)
	}
	if opts.Avoid == AvoidEnforce && opts.Creation == CreateFull && opts.GC != GCNone {
		return nil, fmt.Errorf("monitor: enforced creation avoidance under the full strategy requires the none GC policy (a tombstone cannot mirror the flag timing that ends a real doomed monitor's Figure-5 progenitor role); use audit mode")
	}
	if opts.ProfileGuards != nil && len(opts.ProfileGuards) != len(spec.Events) {
		return nil, fmt.Errorf("monitor: profile guards cover %d events, spec %q has %d", len(opts.ProfileGuards), spec.Name, len(spec.Events))
	}
	if opts.Profile != nil {
		if err := opts.Profile.bind(spec); err != nil {
			return nil, err
		}
	}
	e := &Engine{
		spec:       spec,
		an:         an,
		opts:       opts,
		bp:         spec.RuntimeBlueprint(),
		intern:     param.NewInterner(),
		trees:      map[param.Set]*index.Tree{},
		exact:      map[*param.Instance]arena.Handle{},
		regs:       map[param.Set]*domainReg{},
		seen:       map[uint64]seenRec{},
		seenInst:   map[param.Key]param.Instance{},
		processed:  map[*param.Instance]bool{},
		met:        opts.Metrics,
		avoided:    map[*param.Instance]struct{}{},
		profGuards: opts.ProfileGuards,
		prof:       opts.Profile,
	}
	for _, ev := range spec.Events {
		e.allParams = e.allParams.Union(ev.Params)
	}
	if gb, ok := e.bp.(logic.GraphBlueprint); ok {
		e.g = gb.G
	}
	if poolCheck {
		e.mons.SetChecks(poisonMon, verifyMon)
	}
	e.domBit = make([]uint16, len(spec.Events))
	for sym, ev := range spec.Events {
		found := -1
		for i, d := range e.evDomains {
			if d == ev.Params {
				found = i
				break
			}
		}
		if found < 0 {
			found = len(e.evDomains)
			e.evDomains = append(e.evDomains, ev.Params)
		}
		e.domBit[sym] = 1 << uint(found)
	}
	if e.g != nil {
		e.botWord = 0 // the graph's start state is state 0 by construction
	} else {
		e.botState = e.bp.Start()
	}

	// Dispatch trees: one per distinct event parameter set.
	for _, ev := range spec.Events {
		if !ev.Params.Empty() {
			if _, ok := e.trees[ev.Params]; !ok {
				e.trees[ev.Params] = index.NewTree(ev.Params)
			}
		}
	}
	// Instance domains: closure of event parameter sets under union.
	domSet := map[param.Set]bool{}
	for _, ev := range spec.Events {
		if !ev.Params.Empty() {
			domSet[ev.Params] = true
		}
	}
	for changed := true; changed; {
		changed = false
		var cur []param.Set
		for d := range domSet {
			cur = append(cur, d)
		}
		for _, a := range cur {
			for _, b := range cur {
				u := a.Union(b)
				if !domSet[u] {
					domSet[u] = true
					changed = true
				}
			}
		}
	}
	for d := range domSet {
		e.domains = append(e.domains, d)
	}
	sortDomains(e.domains)
	for d := range domSet {
		e.regs[d] = &domainReg{R: d, projections: map[param.Set]*index.Tree{}, all: index.NewSet()}
	}

	// Join plans: for event e and domain R ⊉ D(e), the overlap O = R∩D(e).
	// Under CreateEnable a join is statically skipped when no nonempty
	// enable parameter set fits inside R (an exactly-R progenitor's
	// paramsSeen is a nonempty subset of R).
	e.joins = make([][]joinPlan, len(spec.Events))
	for sym, ev := range spec.Events {
		for _, R := range e.domains {
			if ev.Params.SubsetOf(R) {
				continue // instances ⊒ θ: handled by dispatch
			}
			if opts.Creation == CreateEnable {
				ok := false
				for y := range an.EnableParams[sym] {
					if !y.Empty() && y.SubsetOf(R) {
						ok = true
						break
					}
				}
				if !ok {
					continue
				}
			}
			O := R.Inter(ev.Params)
			e.joins[sym] = append(e.joins[sym], joinPlan{R: R, O: O})
			if !O.Empty() {
				reg := e.regs[R]
				if _, ok := reg.projections[O]; !ok {
					reg.projections[O] = index.NewTree(O)
				}
			}
		}
	}
	return e, nil
}

// Spec returns the engine's specification.
func (e *Engine) Spec() *Spec { return e.spec }

// Stats returns a copy of the counters.
func (e *Engine) Stats() Stats { return e.stats }

// PoolStats returns the monitor free-list counters: how many collected
// monitors were recycled into the arena free list and how many creations
// were served from it (tests, diagnostics).
func (e *Engine) PoolStats() (recycled, reused uint64) { return e.recycled, e.mons.Reused() }

// ArenaStats returns the monitor-store slab arena's occupancy snapshot.
func (e *Engine) ArenaStats() arena.Stats { return e.mons.Stats() }

// InstanceArenaStats returns the interner slab arena's occupancy snapshot.
func (e *Engine) InstanceArenaStats() arena.Stats { return e.intern.Stats() }

// InternedInstances returns the intern-table size (tests, diagnostics).
func (e *Engine) InternedInstances() int { return e.intern.Len() }

// instOf resolves a monitor record's parameter instance.
func (e *Engine) instOf(m *Mon) *param.Instance { return e.intern.At(m.instH) }

// EmitNamed dispatches an event by name; vals bind D(e)'s parameters in
// ascending parameter-index order. Unknown names and arity mismatches are
// reported as errors (Emit, the index-based hot path, panics instead).
func (e *Engine) EmitNamed(name string, vals ...heap.Ref) error {
	sym, ok := e.spec.Symbol(name)
	if !ok {
		return fmt.Errorf("monitor: spec %q has no event %q", e.spec.Name, name)
	}
	if want := e.spec.Events[sym].Params.Count(); len(vals) != want {
		return fmt.Errorf("monitor: event %q takes %d values, got %d", name, want, len(vals))
	}
	e.Emit(sym, vals...)
	return nil
}

// Emit dispatches the parametric event sym⟨vals⟩. vals bind the parameters
// in D(e) in ascending index order and must all be alive.
func (e *Engine) Emit(sym int, vals ...heap.Ref) {
	theta := param.Of(e.spec.Events[sym].Params, vals...)
	e.Dispatch(sym, theta)
}

// Dispatch processes one parametric event (the body of Figure 5's loop,
// with indexing trees playing the role of Δ and Θ).
func (e *Engine) Dispatch(sym int, theta param.Instance) {
	e.stats.Events++
	if e.met != nil && e.stats.Events&(publishInterval-1) == 0 {
		e.publishMetrics()
	}
	clear(e.processed)
	e.pendAdd = e.pendAdd[:0]
	evParams := e.spec.Events[sym].Params

	// 1. Dispatch to existing monitors more informative than θ.
	if evParams.Empty() {
		// Propositional event: every instance's slice includes it, ⊥'s
		// too. The same deterministic rule as the indexed path applies
		// (observeDeaths): a parameter death is observed before stepping,
		// and the monitor is skipped only if that flags it. Δ keeps
		// unflagged monitors even after a parameter death (see sweep), so
		// membership here never depends on sweep timing.
		ms := e.monBuf[:0]
		for _, h := range e.exact {
			if e.mons.At(h).flags&monFlagged == 0 {
				ms = append(ms, h)
			}
		}
		e.sortHandles(ms)
		for _, h := range ms {
			m := e.mons.At(h)
			if !e.observeDeaths(h, m) {
				continue
			}
			e.step(h, m, sym)
			e.processed[e.instOf(m)] = true
		}
		e.monBuf = ms[:0]
		if e.g != nil {
			e.botWord = uint32(e.g.Next[e.botWord][sym])
		} else {
			e.botState = e.botState.Step(sym)
		}
		return
	}

	// Canonicalize θ: one intern lookup replaces every per-event Key
	// computation; from here instance identity is pointer identity.
	tp, _ := e.intern.Intern(theta)

	if leaf := e.trees[evParams].Lookup(e, tp); leaf != nil {
		// Closure-free leaf walk: AppendLive compacts exactly like
		// ForEach and fills the reused scratch buffer; the flagged
		// re-check below mirrors ForEach's visit-time Collectable check.
		buf := leaf.AppendLive(e, e.visitBuf[:0])
		for _, h := range buf {
			m := e.mons.At(h)
			if m.flags&monFlagged != 0 || !e.observeDeaths(h, m) {
				continue
			}
			e.step(h, m, sym)
			e.processed[e.instOf(m)] = true
		}
		e.visitBuf = buf[:0]
	}

	// 2. Creation joins: combine θ with compatible existing instances of
	// other domains (largest first, so a new instance is built from the
	// most informative progenitor).
	switch e.opts.Creation {
	case CreateFull:
		// Exact Figure 5 semantics: scan Θ for all compatible instances.
		// Joins must read pre-event states; monitors in the dispatch set
		// were already stepped, but those are ⊒ θ and their lub with θ is
		// themselves (already processed), so progenitors here are exactly
		// the un-stepped ones. Candidates are visited most informative
		// first: because Θ is lub-closed under CreateFull, the first
		// candidate producing a given lub is max{θ'' ∈ Θ | θ'' ⊑ θ'}.
		cands := e.monBuf[:0]
		for p, h := range e.exact {
			if e.mons.At(h).flags&monFlagged != 0 || e.processed[p] {
				continue
			}
			if p.Compatible(*tp) {
				cands = append(cands, h)
			}
		}
		e.sortByInformativeness(cands)
		if len(e.avoided) == 0 {
			for _, h := range cands {
				e.tryCreate(sym, tp, h)
			}
		} else {
			// Enforced avoidance: tombstoned instances take part in the
			// scan as ghost progenitors, claiming (and re-tombstoning)
			// exactly the lubs their suppressed monitors would have, in
			// the same informativeness order first-claim-wins relies on.
			var ghosts []*param.Instance
			for p := range e.avoided {
				if !e.processed[p] && p.Compatible(*tp) {
					ghosts = append(ghosts, p)
				}
			}
			sort.Slice(ghosts, func(i, j int) bool { return moreInformative(ghosts[i], ghosts[j]) })
			gi := 0
			for _, h := range cands {
				hp := e.instOf(e.mons.At(h))
				for gi < len(ghosts) && moreInformative(ghosts[gi], hp) {
					e.tryAvoidLub(tp, ghosts[gi])
					gi++
				}
				e.tryCreate(sym, tp, h)
			}
			for ; gi < len(ghosts); gi++ {
				e.tryAvoidLub(tp, ghosts[gi])
			}
		}
		e.monBuf = cands[:0]
	case CreateEnable:
		for _, jp := range e.joins[sym] {
			reg := e.regs[jp.R]
			var leaf *index.Set
			if jp.O.Empty() {
				leaf = reg.all
			} else if leaf = reg.projections[jp.O].Lookup(e, tp); leaf == nil {
				continue
			}
			buf := leaf.AppendLive(e, e.visitBuf[:0])
			for _, h := range buf {
				e.tryCreate(sym, tp, h)
			}
			e.visitBuf = buf[:0]
		}
	}

	// 3. θ itself, from ⊥, if nothing else materialized it. A tombstoned
	// instance blocks re-creation the same way its real monitor's Δ entry
	// would (the suppressed slice is not the fresh-from-⊥ slice).
	if !e.processed[tp] {
		if _, exists := e.exact[tp]; !exists {
			if _, av := e.avoided[tp]; !av {
				switch {
				case e.opts.Creation == CreateFull:
					e.createFromBot(sym, tp)
				case e.an.Creation[sym] && e.priorEventsOK(tp, 0):
					e.createFromBot(sym, tp)
				}
			}
		}
	}

	// 4. Insert the new monitors into the indexing structures.
	for _, h := range e.pendAdd {
		e.insert(h)
	}

	// 5. Mark θ's objects as seen and sweep tombstones periodically.
	for pm := evParams; pm != 0; pm = pm.Rest() {
		v := tp.Value(pm.First())
		rec, ok := e.seen[v.ID()]
		if !ok {
			rec.ref = v
		}
		rec.doms |= e.domBit[sym]
		e.seen[v.ID()] = rec
	}
	if evParams.Count() > 1 {
		e.seenInst[tp.Key()] = *tp
	}
	e.sinceSwep++
	if e.sinceSwep >= e.opts.SweepInterval {
		e.sinceSwep = 0
		e.timedSweep()
	}
}

// createFromBot materializes θ from the empty-domain progenitor ⊥, unless
// the creation-avoidance guard fires first.
func (e *Engine) createFromBot(sym int, tp *param.Instance) {
	if e.opts.Avoid != AvoidOff && e.guardHit(sym, tp.Mask(), e.botWord) {
		e.stats.Avoided++
		if e.opts.Avoid == AvoidEnforce {
			e.recordAvoided(tp)
			return
		}
	}
	// Re-intern for the handle: the instance is already canonical, so this
	// is one map read.
	_, th := e.intern.Intern(*tp)
	e.create(sym, tp, th, e.botWord, e.botState, 0)
}

// timedSweep runs a sweep pass, recording its duration in the per-policy
// collection-latency histogram and settling the published counters. Both
// extras are sweep-frequency cold-path work; the bare sweep stays
// untouched for engines without telemetry.
func (e *Engine) timedSweep() {
	if e.met == nil {
		e.sweep()
		return
	}
	start := time.Now()
	e.sweep()
	e.met.SweepSeconds.Observe(time.Since(start).Seconds())
	e.met.Sweeps.Inc()
	e.publishMetrics()
}

// publishMetrics adds the counter movement since the last publication into
// the shared atomic series. Allocation-free; called only at amortized
// points (see Options.Metrics).
func (e *Engine) publishMetrics() {
	m, s, p := e.met, &e.stats, &e.pub
	m.Events.Add(s.Events - p.Events)
	m.Steps.Add(s.Steps - p.Steps)
	m.Created.Add(s.Created - p.Created)
	m.Flagged.Add(s.Flagged - p.Flagged)
	m.Collected.Add(s.Collected - p.Collected)
	m.Verdicts.Add(s.GoalVerdicts - p.GoalVerdicts)
	m.Live.Add(s.Live - p.Live)
	m.PeakLive.SetMax(s.PeakLive)
	reused := e.mons.Reused()
	m.Recycled.Add(e.recycled - e.pubRecycled)
	m.Reused.Add(reused - e.pubReused)
	ast := e.mons.Stats()
	m.ArenaSlabs.Add(int64(ast.Slabs) - int64(e.pubArena.Slabs))
	m.ArenaCap.Add(int64(ast.Cap) - int64(e.pubArena.Cap))
	m.ArenaFree.Add(int64(ast.Free) - int64(e.pubArena.Free))
	e.pub = *s
	e.pubRecycled, e.pubReused = e.recycled, reused
	e.pubArena = ast
}

// --- index.Resolver ---------------------------------------------------
//
// The indexing trees hold generation-tagged handles, not pointers; the
// engine is their Resolver, mapping a handle back to monitor behavior
// through the slab arena. Every dereference is generation-checked, so a
// container that somehow held a stale handle fails loudly at the point of
// misuse instead of silently touching a recycled record.

var _ index.Resolver = (*Engine)(nil)

// NotifyParamDeath implements index.Resolver: re-evaluate ALIVENESS under
// the engine's GC policy (Figure 7A: monitors below a dead mapping are
// notified and decide for themselves).
func (e *Engine) NotifyParamDeath(h index.Handle) {
	m := e.mons.At(h)
	if m.flags&monFlagged != 0 {
		return
	}
	switch e.opts.GC {
	case GCNone:
	case GCAllDead:
		if e.instOf(m).AliveMask().Empty() {
			e.flagMon(m)
		}
	case GCCoenable:
		e.checkAliveness(m)
	}
}

// Collectable implements index.Resolver.
func (e *Engine) Collectable(h index.Handle) bool {
	return e.mons.At(h).flags&monFlagged != 0
}

// Retain implements index.Resolver.
func (e *Engine) Retain(h index.Handle) { e.mons.At(h).refs++ }

// Release implements index.Resolver.
func (e *Engine) Release(h index.Handle) {
	m := e.mons.At(h)
	m.refs--
	if m.refs <= 0 && m.flags&monCollected == 0 {
		m.flags |= monCollected
		e.stats.Collected++
		e.stats.Live--
		if m.flags&monInExact == 0 {
			e.recycle(h, m)
		}
	}
}

func (e *Engine) flagMon(m *Mon) {
	if m.flags&monFlagged == 0 {
		m.flags |= monFlagged
		e.stats.Flagged++
	}
}

// observeDeaths delivers parameter-death notifications for a monitor at a
// deterministic point — the moment an event or a creation join reaches it —
// rather than whenever lazy expunging or a sweep happens to discover the
// death (Figure 7's notification, hoisted onto the access path). Verdict
// semantics are unchanged: a monitor is only flagged when its ALIVENESS
// formula is false, and by Theorem 1 such a monitor can never reach a goal
// verdict. What eagerness buys is that step and creation decisions become a
// pure function of the per-slice event/death sequence, independent of
// expunge quotas and sweep intervals — the property that lets the sharded
// runtime (internal/shard) compare its merged counters exactly against the
// sequential engine. Reports whether the monitor may be stepped.
func (e *Engine) observeDeaths(h arena.Handle, m *Mon) bool {
	if m.flags&monFlagged != 0 {
		return false
	}
	if !e.instOf(m).AllAlive() {
		e.NotifyParamDeath(h)
		return m.flags&monFlagged == 0
	}
	return true
}

// tryCreate materializes θ' = progenitor ⊔ θ if permitted.
func (e *Engine) tryCreate(sym int, theta *param.Instance, progH arena.Handle) {
	prog := e.mons.At(progH)
	if prog.flags&monFlagged != 0 {
		return
	}
	progInst := e.instOf(prog)
	if e.opts.Creation == CreateEnable && !progInst.AllAlive() {
		// The death of any bound object ends the progenitor role: in
		// JavaMOP/RV a progenitor is only reachable through weak-keyed
		// trees (see sweep). Observing the death here, instead of at the
		// sweep that would compact the registry, makes the creation
		// decision deterministic. CreateFull is exempt — it is the exact
		// Figure 5 oracle, and Figure 5 has no notion of object death.
		e.NotifyParamDeath(progH)
		return
	}
	lub, ok := progInst.Lub(*theta)
	if !ok {
		return
	}
	// Membership checks go through Get, not Intern: a lub the guards
	// below reject must leave no intern-table entry behind (its objects
	// may live arbitrarily long), so canonicalization happens only once
	// creation is certain.
	lp, lh, known := e.intern.Get(lub.Key())
	if known {
		if e.processed[lp] {
			return
		}
		if _, exists := e.exact[lp]; exists {
			// Already materialized (it was in the dispatch set, possibly
			// flagged); never rebuild from a less informative slice.
			e.processed[lp] = true
			return
		}
		if _, av := e.avoided[lp]; av {
			// Suppressed earlier: its tombstone blocks a rebuild exactly
			// as the real monitor's Δ entry would have.
			e.processed[lp] = true
			return
		}
	}
	if e.opts.Creation == CreateEnable {
		// Enable check: the progenitor's slice (the candidate's prefix)
		// must be a viable goal-trace prefix for this event.
		if !e.an.EnableParams[sym][prog.paramsSeen] {
			return
		}
		if !e.priorEventsOK(&lub, progInst.Mask()) {
			return
		}
	}
	if e.opts.Avoid != AvoidOff && e.guardHit(sym, lub.Mask(), prog.state) {
		e.stats.Avoided++
		if e.opts.Avoid == AvoidEnforce {
			if !known {
				lp, _ = e.intern.Intern(lub)
			}
			e.recordAvoided(lp)
			return
		}
	}
	if !known {
		lp, lh = e.intern.Intern(lub)
	}
	var baseBox logic.State
	if e.g == nil {
		baseBox = e.boxState[progH.Index()]
	}
	e.create(sym, lp, lh, prog.state, baseBox, prog.paramsSeen)
}

// priorEventsOK is the fresh-object creation guard of CreateEnable: θ' may
// be built from a progenitor covering progDom ⊆ dom(θ') only when no prior
// event belongs to θ”s slice without being in the progenitor's. A prior
// event is in θ”s slice when its instance is ⊑ θ', which requires its
// parameter domain to fit inside dom(θ') and its objects to match θ”s; a
// prior event under a singleton domain {x} always matches (same object),
// and for multi-parameter domains the exact sub-instance θ'|D is looked up
// in seenInst. Skipping creation is sound: either the conflicting prior
// event materialized a progenitor the joins already consulted (and the lub
// closure loss means no instance carries the merged slice), or it was
// itself skipped as unable to reach G (enable theorem), making θ”s true
// slice unviable. The price is completeness on object-recombination
// interleavings, which JavaMOP's timestamp scheme trades away as well (see
// DESIGN.md).
func (e *Engine) priorEventsOK(lub *param.Instance, progDom param.Set) bool {
	target := lub.Mask()
	for xm := target.Diff(progDom); xm != 0; xm = xm.Rest() {
		x := xm.First()
		rec, ok := e.seen[lub.Value(x).ID()]
		if !ok {
			continue
		}
		for bi, d := range e.evDomains {
			if rec.doms&(1<<uint(bi)) == 0 || !d.SubsetOf(target) {
				continue
			}
			if d == param.SetOf(x) {
				return false
			}
			if _, hit := e.seenInst[lub.Restrict(d).Key()]; hit {
				return false
			}
		}
	}
	return true
}

// create builds a monitor for θ' from a progenitor state, steps it with the
// current event, and queues it for insertion. Records come from the arena:
// slots reclaimed by the coenable GC are recycled into the next creations.
// baseWord carries the progenitor state in graph mode, baseBox in box mode.
func (e *Engine) create(sym int, inst *param.Instance, instH arena.Handle, baseWord uint32, baseBox logic.State, seen param.Set) {
	h, m := e.mons.Alloc()
	e.intern.Pin(instH)
	m.instH = instH
	m.state = baseWord
	m.paramsSeen = seen
	m.birthSym = int16(sym)
	if e.g == nil {
		e.setBox(h.Index(), baseBox)
	}
	if e.prof != nil {
		e.prof.Created[sym]++
	}
	e.stats.Created++
	e.stats.Live++
	if e.stats.Live > e.stats.PeakLive {
		e.stats.PeakLive = e.stats.Live
	}
	e.exact[inst] = h
	m.flags |= monInExact
	e.processed[inst] = true
	e.step(h, m, sym)
	e.pendAdd = append(e.pendAdd, h)
}

// setBox stores a monitor's boxed state (non-graph blueprints only).
func (e *Engine) setBox(idx uint32, st logic.State) {
	for int(idx) >= len(e.boxState) {
		e.boxState = append(e.boxState, nil)
	}
	e.boxState[idx] = st
}

// recycle pushes a fully dead monitor — collected (no container reference)
// and out of Δ — back to the arena free list. Its slot generation advances,
// so every copy of the handle is stale from here on; under race/testing
// builds the record is additionally poisoned (see pool.go), so a straggling
// reference that dodged the generation check still fails loudly.
func (e *Engine) recycle(h arena.Handle, m *Mon) {
	if m.refs > 0 || m.flags&monCollected == 0 || m.flags&monInExact != 0 {
		panic("monitor: recycling a monitor that is still referenced")
	}
	instH := m.instH
	if e.g == nil && int(h.Index()) < len(e.boxState) {
		e.boxState[h.Index()] = nil
	}
	e.mons.Free(h)
	e.intern.Unpin(instH)
	e.recycled++
}

// step advances one monitor with an event, reports goal verdicts and
// applies monitor termination.
func (e *Engine) step(h arena.Handle, m *Mon, sym int) {
	var cat logic.Category
	var st logic.State
	if e.g != nil {
		// Graph mode: a step is one array read on the state word; the
		// verdict category another. No interface values are touched unless
		// a verdict or the dead-state check needs a boxed state.
		m.state = uint32(e.g.Next[m.state][sym])
		cat = e.g.Cat[m.state]
	} else {
		idx := h.Index()
		st = e.boxState[idx].Step(sym)
		e.boxState[idx] = st
		cat = st.Category()
	}
	m.lastSym = int32(sym)
	m.paramsSeen = m.paramsSeen.Union(e.spec.Events[sym].Params)
	e.stats.Steps++
	if e.prof != nil {
		// Creation-site profiling: the first step is the birth step; any
		// later one marks the site's monitors as participating in slices
		// longer than their creation event.
		if m.flags&monStepped == 0 {
			m.flags |= monStepped
		} else if m.flags&monRestepped == 0 {
			m.flags |= monRestepped
			e.prof.Restepped[m.birthSym]++
		}
	}
	if e.spec.goalSet[cat] {
		e.stats.GoalVerdicts++
		if e.prof != nil && m.flags&monGoaled == 0 {
			m.flags |= monGoaled
			e.prof.ReachedGoal[m.birthSym]++
		}
		if e.opts.OnVerdict != nil {
			e.opts.OnVerdict(Verdict{Spec: e.spec, Sym: sym, Cat: cat, Inst: *e.instOf(m)})
		}
	}
	if e.opts.GC == GCCoenable {
		if e.g != nil {
			st = e.g.State(int(m.state)) // preboxed: no allocation
		}
		if e.an.Dead(st) {
			e.flagMon(m)
			return
		}
		if e.an.HasCoenable && len(e.an.CoenParams[sym]) == 0 {
			// No suffix can reach G after this event (∅-only coenable
			// family): terminate after the handler has run (§3).
			e.flagMon(m)
		}
	}
}

// checkAliveness evaluates the ALIVENESS formula for the monitor's last
// event (Figure 7 / §4.2.2).
func (e *Engine) checkAliveness(m *Mon) {
	inst := e.instOf(m)
	if !e.an.HasCoenable {
		// Fall back to the all-dead condition.
		if inst.AliveMask().Empty() {
			e.flagMon(m)
		}
		return
	}
	disjuncts := e.an.CoenParams[m.lastSym]
	if !alive(disjuncts, *inst) {
		e.flagMon(m)
	}
}

func alive(disjuncts []param.Set, inst param.Instance) bool {
	bound := inst.Mask()
	aliveMask := inst.AliveMask()
	deadBound := bound.Diff(aliveMask)
	for _, s := range disjuncts {
		if s.Inter(deadBound).Empty() {
			return true
		}
	}
	return false
}

// insert places a monitor into every dispatch tree over a subset of its
// domain and into its domain registry.
func (e *Engine) insert(h arena.Handle) {
	inst := e.instOf(e.mons.At(h))
	dom := inst.Mask()
	for ps, tree := range e.trees {
		if ps.SubsetOf(dom) {
			tree.GetOrCreate(e, inst).Add(e, h)
		}
	}
	reg := e.regs[dom]
	reg.all.Add(e, h)
	for _, tree := range reg.projections {
		tree.GetOrCreate(e, inst).Add(e, h)
	}
}

// sweep applies the physical weak-reference semantics the paper's systems
// get from the JVM: bookkeeping entries whose objects died are dropped.
//
//   - Δ entries (exact) for *flagged* instances with a dead bound object go
//     — such an instance can never recur in an event, so no wrong-slice
//     resurrection is possible, and the flag means nothing will step it
//     again. Unflagged monitors stay even with a dead parameter (they
//     remain reachable through live keys in the weak trees, and keeping
//     them makes propositional dispatch independent of sweep timing).
//     Flagged monitors whose objects all live stay as tombstones: their
//     instances can recur, and rebuilding them from a progenitor would
//     resurrect them with a wrong slice.
//   - Δ entries for *collected* instances with a dead bound object go too,
//     flagged or not: collected means no container references the monitor,
//     and the dead object's identity can never recur in an event, so the
//     entry is unreachable — except under CreateFull, whose Figure 5
//     oracle scans Δ for progenitors and has no notion of object death.
//     (The coenable formula can keep such a monitor unflagged forever — a
//     disjunct over unbound parameters stays satisfiable — which without
//     this rule pinned its arena slot and intern entry unboundedly.)
//   - Domain registries release members with dead bound objects: in
//     JavaMOP/RV a progenitor is only reachable through weak-keyed trees,
//     so the death of any of its objects ends its progenitor role.
//   - Fresh-object guard records for dead objects go as well.
//   - Intern-table entries for dead instances go once Δ no longer maps
//     them (Δ membership pins the canonical pointer; see param.Interner).
//   - A monitor that is now both collected and out of Δ is recycled into
//     the arena free list.
func (e *Engine) sweep() {
	for p, h := range e.exact {
		m := e.mons.At(h)
		if !p.AllAlive() {
			if m.flags&monFlagged == 0 {
				// An object died without the trees noticing yet; give the
				// monitor its notification now (equivalent to the paper's
				// tree-access notification, just on the sweep path).
				e.NotifyParamDeath(h)
			}
			drop := m.flags&monFlagged != 0
			if !drop && m.flags&monCollected != 0 && e.opts.Creation != CreateFull {
				drop = true
			}
			if drop {
				delete(e.exact, p)
				m.flags &^= monInExact
				if m.flags&monCollected != 0 {
					e.recycle(h, m)
				}
			}
		}
	}
	// Avoided-creation tombstones mirror their would-be monitors' exit
	// from Δ, so enforce-mode blocking stays in lockstep with the
	// unguarded engine: under coenable a doomed monitor is flagged at its
	// birth step, so its Δ entry goes at the first sweep after any bound
	// object dies; under alldead it is flagged (and its entry goes) once
	// every object is dead; under none Δ entries never leave. Dropped or
	// kept, the instance cannot be wrongly rebuilt — a recurrence needs
	// every object alive — so this only mirrors bookkeeping lifetime.
	for p := range e.avoided {
		var drop bool
		switch e.opts.GC {
		case GCCoenable:
			drop = !p.AllAlive()
		case GCAllDead:
			drop = p.AliveMask().Empty()
		}
		if drop {
			delete(e.avoided, p)
		}
	}
	for id, rec := range e.seen {
		if !rec.ref.Alive() {
			delete(e.seen, id)
		}
	}
	for k, inst := range e.seenInst {
		if !inst.AllAlive() {
			delete(e.seenInst, k)
		}
	}
	for _, reg := range e.regs {
		reg.all.CompactWith(e, e.deadParam)
	}
	e.intern.Sweep(e.internRetain)
}

// internRetain pins intern-table entries that Δ still maps: their
// canonical pointers are monitor identities and must survive until the
// monitor leaves Δ.
func (e *Engine) internRetain(p *param.Instance) bool {
	if _, ok := e.exact[p]; ok {
		return true
	}
	_, ok := e.avoided[p]
	return ok
}

// deadParam reports a monitor with a dead bound parameter object (domain
// registries drop such members; see sweep).
func (e *Engine) deadParam(h index.Handle) bool {
	return !e.instOf(e.mons.At(h)).AllAlive()
}

// Flush performs a full expunge/compaction pass over every structure; used
// at the end of a monitored run so the Figure 10 counters settle.
//
// Two passes are required for the counters to converge deterministically:
// the first delivers every pending death notification (expunging a dead key
// notifies the monitors below; the sweep notifies exact-map stragglers), but
// a monitor can become flagged mid-pass, after some of its containers were
// already compacted — which containers depends on map iteration order. The
// second pass re-compacts with the settled flag state, releasing every
// flagged monitor from every container.
func (e *Engine) Flush() {
	for pass := 0; pass < 2; pass++ {
		for _, t := range e.trees {
			t.Root().FlushAll(e)
		}
		for _, reg := range e.regs {
			reg.all.Compact(e)
			for _, t := range reg.projections {
				t.Root().FlushAll(e)
			}
		}
		e.timedSweep()
	}
}

// Monitors returns the live (unflagged, uncollected) monitor instances,
// for tests and diagnostics.
func (e *Engine) Monitors() []param.Instance {
	var out []param.Instance
	for p, h := range e.exact {
		if e.mons.At(h).flags&(monFlagged|monCollected) == 0 {
			out = append(out, *p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return keyLess(out[i].Key(), out[j].Key()) })
	return out
}

// State returns the current base state for θ, or nil if no monitor exists.
func (e *Engine) State(inst param.Instance) logic.State {
	p, _, ok := e.intern.Get(inst.Key())
	if !ok {
		return nil
	}
	h, ok := e.exact[p]
	if !ok {
		return nil
	}
	m := e.mons.At(h)
	if m.flags&monFlagged != 0 {
		return nil
	}
	if e.g != nil {
		return e.g.State(int(m.state))
	}
	return e.boxState[h.Index()]
}

func sortDomains(ds []param.Set) {
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && domLess(ds[j], ds[j-1]); j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
}

// domLess orders domains by descending popcount (largest progenitors
// first), then ascending mask.
func domLess(a, b param.Set) bool {
	if a.Count() != b.Count() {
		return a.Count() > b.Count()
	}
	return a < b
}

// sortHandles orders monitor handles by their instance key (mask, then
// IDs), the deterministic order every backend shares.
func (e *Engine) sortHandles(hs []arena.Handle) {
	sort.Slice(hs, func(i, j int) bool {
		return keyLess(e.instOf(e.mons.At(hs[i])).Key(), e.instOf(e.mons.At(hs[j])).Key())
	})
}

func keyLess(a, b param.Key) bool {
	if a.Mask != b.Mask {
		return a.Mask < b.Mask
	}
	for i := 0; i < param.MaxParams; i++ {
		if a.IDs[i] != b.IDs[i] {
			return a.IDs[i] < b.IDs[i]
		}
	}
	return false
}

// sortByInformativeness orders monitors by descending domain size, then
// by instance key for determinism.
func (e *Engine) sortByInformativeness(hs []arena.Handle) {
	e.sortHandles(hs)
	// Stable re-partition by popcount, descending.
	var out []arena.Handle
	for c := param.MaxParams; c >= 0; c-- {
		for _, h := range hs {
			if e.instOf(e.mons.At(h)).Mask().Count() == c {
				out = append(out, h)
			}
		}
	}
	copy(hs, out)
}
