package monitor

import (
	"fmt"
	"time"

	"rvgo/internal/heap"
	"rvgo/internal/index"
	"rvgo/internal/logic"
	"rvgo/internal/metrics"
	"rvgo/internal/param"
)

// GCPolicy selects how monitor instances are reclaimed.
type GCPolicy int

const (
	// GCNone never flags monitors: the pre-GC baseline.
	GCNone GCPolicy = iota
	// GCAllDead flags a monitor only when every bound parameter object has
	// been collected — the JavaMOP condition the paper improves upon.
	GCAllDead
	// GCCoenable is the paper's contribution: a monitor is flagged as soon
	// as its ALIVENESS formula (derived from coenable sets and the last
	// event observed) becomes false, plus termination of dead states.
	GCCoenable
)

func (p GCPolicy) String() string {
	switch p {
	case GCNone:
		return "none"
	case GCAllDead:
		return "alldead"
	case GCCoenable:
		return "coenable"
	}
	return fmt.Sprintf("GCPolicy(%d)", int(p))
}

// CreationStrategy selects how new monitor instances are materialized.
type CreationStrategy int

const (
	// CreateEnable uses the enable-set analysis (Chen et al., ASE'09) plus
	// a fresh-object guard: a progenitor θ'' may be extended to θ' only
	// when the parameters in dom(θ')\dom(θ'') bind objects receiving their
	// first event now. Sound for G-verdicts; skips instances that could
	// never trigger. This is the production strategy.
	CreateEnable CreationStrategy = iota
	// CreateFull materializes every lub {θ} ⊔ Θ exactly as in Figure 5.
	// Quadratic in the worst case; used as the semantic oracle in tests.
	CreateFull
)

// Verdict is one goal-category report delivered to the handler.
type Verdict struct {
	Spec *Spec
	Sym  int
	Cat  logic.Category
	Inst param.Instance
}

// Options configures an Engine.
type Options struct {
	GC       GCPolicy
	Creation CreationStrategy
	// OnVerdict is the specification handler; nil counts verdicts only.
	//
	// Concurrency contract (it differs per backend, and the façade's
	// WithVerdictHandler documents the same rules for users): on the
	// sequential Engine the handler runs synchronously on the goroutine
	// calling Emit/Dispatch; on the sharded runtime it runs on worker
	// goroutines, serialized (never two invocations at once), with
	// handler-written state readable by other goroutines only after a
	// Barrier, Flush or Close; on the remote client it runs on the
	// session's reader goroutine and must not call back into the client.
	OnVerdict func(Verdict)
	// SweepInterval is the number of events between tombstone sweeps
	// (0 = default).
	SweepInterval int
	// Metrics, when non-nil, receives the engine's telemetry. The engine
	// keeps its exact non-atomic Stats and publishes *deltas* into the
	// shared atomic series at amortized points — every publishInterval
	// events, after each sweep, and on Flush/Close — so the hot path stays
	// allocation-free and scrape-side reads race nothing. Series values lag
	// the true counters by at most publishInterval events until the next
	// Flush/Close settles them. Multiple engines (shard workers, repeated
	// sessions of one tenant) may share one series; deltas sum correctly.
	Metrics *metrics.EngineSeries
}

// publishInterval is the delta-publication period in events; a power of
// two so the hot-path check is a mask.
const publishInterval = 256

// Stats are the monitoring counters of the paper's Figure 10, plus some.
type Stats struct {
	Events       uint64 // E: parametric events dispatched
	Created      uint64 // M: monitor instances created
	Flagged      uint64 // FM: flagged unnecessary by ALIVENESS/termination
	Collected    uint64 // CM: dropped from every container
	GoalVerdicts uint64 // handler invocations
	Steps        uint64 // base-monitor transitions taken
	Live         int64  // currently live (uncollected) monitors
	PeakLive     int64  // maximum of Live
}

// maxPool bounds the monitor free list; beyond it, collected monitors are
// left to the Go GC (the pool only needs to cover the live working set).
const maxPool = 1 << 16

// Mon is one monitor instance: a parameter instance θ (an interned
// canonical pointer — see the engine's intern table), the state of its
// trace slice, and GC bookkeeping.
type Mon struct {
	eng        *Engine
	inst       *param.Instance
	state      logic.State
	lastSym    int32
	paramsSeen param.Set
	flagged    bool
	collected  bool
	// inExact reports that the engine's Δ map still references the
	// monitor; a monitor is recycled only once it is both collected (no
	// container holds it) and out of Δ.
	inExact bool
	pooled  bool
	refs    int32
}

// Inst returns the monitor's parameter instance.
func (m *Mon) Inst() param.Instance { return *m.inst }

// NotifyParamDeath implements index.Monitor: re-evaluate ALIVENESS under
// the engine's GC policy (Figure 7A: monitors below a dead mapping are
// notified and decide for themselves).
func (m *Mon) NotifyParamDeath() {
	if poolCheck && m.pooled {
		panic("monitor: pooled monitor notified")
	}
	if m.flagged {
		return
	}
	switch m.eng.opts.GC {
	case GCNone:
	case GCAllDead:
		if m.inst.AliveMask().Empty() {
			m.flag()
		}
	case GCCoenable:
		m.eng.checkAliveness(m)
	}
}

// Collectable implements index.Monitor.
func (m *Mon) Collectable() bool { return m.flagged }

// Retain implements index.Monitor.
func (m *Mon) Retain() { m.refs++ }

// Release implements index.Monitor.
func (m *Mon) Release() {
	m.refs--
	if m.refs <= 0 && !m.collected {
		m.collected = true
		m.eng.stats.Collected++
		m.eng.stats.Live--
		if !m.inExact {
			m.eng.recycle(m)
		}
	}
}

func (m *Mon) flag() {
	if !m.flagged {
		m.flagged = true
		m.eng.stats.Flagged++
	}
}

// domainReg indexes the monitor instances whose domain is exactly R, for
// the creation joins: projections[O] maps θ|O to the instances agreeing on
// O; all holds every instance (used when a join has empty overlap).
type domainReg struct {
	R           param.Set
	projections map[param.Set]*index.Tree
	all         *index.Set
}

// Engine is the RV runtime for one specification.
type Engine struct {
	spec *Spec
	an   *Analysis
	opts Options
	bp   logic.Blueprint
	// botState is Δ(⊥): the state of the empty-domain slice. It only
	// advances on propositional events (D(e) = ∅) and is the progenitor
	// state for instances created from ⊥.
	botState logic.State

	// intern canonicalizes parameter instances: every θ the engine touches
	// resolves to one *param.Instance, so instance identity is pointer
	// identity and the per-event maps below key on 8 bytes. Entries are
	// swept with the tombstones (retaining anything Δ still maps).
	intern *param.Interner

	// trees are the dispatch indexing trees, one per event parameter set
	// (Figure 6).
	trees map[param.Set]*index.Tree
	// exact is Δ's domain: interned instance → monitor (kept while flagged
	// so a terminated instance is never re-materialized with a wrong
	// slice).
	exact map[*param.Instance]*Mon
	// regs are the per-domain join indexes (CreateEnable).
	regs map[param.Set]*domainReg
	// domains is every instance domain, descending popcount.
	domains []param.Set
	// joins[sym] lists the domains R (⊉ D(e)) that a CreateEnable join
	// must consider for events with symbol sym, with the overlap O.
	joins [][]joinPlan

	// seen records, per object that has appeared in an event, which event
	// parameter-domains it appeared under; seenInst records the exact
	// instances of multi-parameter events. Both are swept periodically and
	// back the fresh-object creation guard.
	seen      map[uint64]seenRec
	seenInst  map[param.Key]param.Instance
	evDomains []param.Set // distinct event parameter sets, for seenRec bits
	domBit    []uint16    // per symbol, bit for its domain in seenRec.doms
	sinceSwep int

	stats Stats

	// met is Options.Metrics; pub/pubRecycled/pubReused are the counter
	// values already published into it, so each publish Adds only the
	// delta accumulated since the last one.
	met                    *metrics.EngineSeries
	pub                    Stats
	pubRecycled, pubReused uint64

	// pool is the monitor free list: instances reclaimed by the coenable
	// GC (collected and out of Δ) are recycled into the next creations —
	// the collected garbage literally becomes the allocator.
	pool     []*Mon
	recycled uint64 // monitors pushed into the pool
	reused   uint64 // creations served from the pool

	// scratch, reused across events: the per-event processed set, the
	// pending insertions, and the leaf-visit buffers for the closure-free
	// dispatch loops.
	processed map[*param.Instance]bool
	pendAdd   []*Mon
	visitBuf  []index.Monitor
	monBuf    []*Mon
}

type joinPlan struct {
	R param.Set
	O param.Set
}

// seenRec tracks one object's event history shape: which event domains it
// has been bound under. Stored by value: the seen map never allocates per
// record.
type seenRec struct {
	ref  heap.Ref
	doms uint16
}

// New builds an engine for a spec; Analyze is run if it has not been.
func New(spec *Spec, opts Options) (*Engine, error) {
	an, err := spec.Analysis()
	if err != nil {
		return nil, err
	}
	if opts.SweepInterval <= 0 {
		opts.SweepInterval = 1 << 14
	}
	e := &Engine{
		spec:      spec,
		an:        an,
		opts:      opts,
		bp:        spec.RuntimeBlueprint(),
		intern:    param.NewInterner(),
		trees:     map[param.Set]*index.Tree{},
		exact:     map[*param.Instance]*Mon{},
		regs:      map[param.Set]*domainReg{},
		seen:      map[uint64]seenRec{},
		seenInst:  map[param.Key]param.Instance{},
		processed: map[*param.Instance]bool{},
		met:       opts.Metrics,
	}
	e.domBit = make([]uint16, len(spec.Events))
	for sym, ev := range spec.Events {
		found := -1
		for i, d := range e.evDomains {
			if d == ev.Params {
				found = i
				break
			}
		}
		if found < 0 {
			found = len(e.evDomains)
			e.evDomains = append(e.evDomains, ev.Params)
		}
		e.domBit[sym] = 1 << uint(found)
	}
	e.botState = e.bp.Start()

	// Dispatch trees: one per distinct event parameter set.
	for _, ev := range spec.Events {
		if !ev.Params.Empty() {
			if _, ok := e.trees[ev.Params]; !ok {
				e.trees[ev.Params] = index.NewTree(ev.Params)
			}
		}
	}
	// Instance domains: closure of event parameter sets under union.
	domSet := map[param.Set]bool{}
	for _, ev := range spec.Events {
		if !ev.Params.Empty() {
			domSet[ev.Params] = true
		}
	}
	for changed := true; changed; {
		changed = false
		var cur []param.Set
		for d := range domSet {
			cur = append(cur, d)
		}
		for _, a := range cur {
			for _, b := range cur {
				u := a.Union(b)
				if !domSet[u] {
					domSet[u] = true
					changed = true
				}
			}
		}
	}
	for d := range domSet {
		e.domains = append(e.domains, d)
	}
	sortDomains(e.domains)
	for d := range domSet {
		e.regs[d] = &domainReg{R: d, projections: map[param.Set]*index.Tree{}, all: index.NewSet()}
	}

	// Join plans: for event e and domain R ⊉ D(e), the overlap O = R∩D(e).
	// Under CreateEnable a join is statically skipped when no nonempty
	// enable parameter set fits inside R (an exactly-R progenitor's
	// paramsSeen is a nonempty subset of R).
	e.joins = make([][]joinPlan, len(spec.Events))
	for sym, ev := range spec.Events {
		for _, R := range e.domains {
			if ev.Params.SubsetOf(R) {
				continue // instances ⊒ θ: handled by dispatch
			}
			if opts.Creation == CreateEnable {
				ok := false
				for y := range an.EnableParams[sym] {
					if !y.Empty() && y.SubsetOf(R) {
						ok = true
						break
					}
				}
				if !ok {
					continue
				}
			}
			O := R.Inter(ev.Params)
			e.joins[sym] = append(e.joins[sym], joinPlan{R: R, O: O})
			if !O.Empty() {
				reg := e.regs[R]
				if _, ok := reg.projections[O]; !ok {
					reg.projections[O] = index.NewTree(O)
				}
			}
		}
	}
	return e, nil
}

// Spec returns the engine's specification.
func (e *Engine) Spec() *Spec { return e.spec }

// Stats returns a copy of the counters.
func (e *Engine) Stats() Stats { return e.stats }

// PoolStats returns the monitor free-list counters: how many collected
// monitors were recycled into the pool and how many creations were served
// from it (tests, diagnostics).
func (e *Engine) PoolStats() (recycled, reused uint64) { return e.recycled, e.reused }

// InternedInstances returns the intern-table size (tests, diagnostics).
func (e *Engine) InternedInstances() int { return e.intern.Len() }

// EmitNamed dispatches an event by name; vals bind D(e)'s parameters in
// ascending parameter-index order. Unknown names and arity mismatches are
// reported as errors (Emit, the index-based hot path, panics instead).
func (e *Engine) EmitNamed(name string, vals ...heap.Ref) error {
	sym, ok := e.spec.Symbol(name)
	if !ok {
		return fmt.Errorf("monitor: spec %q has no event %q", e.spec.Name, name)
	}
	if want := e.spec.Events[sym].Params.Count(); len(vals) != want {
		return fmt.Errorf("monitor: event %q takes %d values, got %d", name, want, len(vals))
	}
	e.Emit(sym, vals...)
	return nil
}

// Emit dispatches the parametric event sym⟨vals⟩. vals bind the parameters
// in D(e) in ascending index order and must all be alive.
func (e *Engine) Emit(sym int, vals ...heap.Ref) {
	theta := param.Of(e.spec.Events[sym].Params, vals...)
	e.Dispatch(sym, theta)
}

// Dispatch processes one parametric event (the body of Figure 5's loop,
// with indexing trees playing the role of Δ and Θ).
func (e *Engine) Dispatch(sym int, theta param.Instance) {
	e.stats.Events++
	if e.met != nil && e.stats.Events&(publishInterval-1) == 0 {
		e.publishMetrics()
	}
	clear(e.processed)
	e.pendAdd = e.pendAdd[:0]
	evParams := e.spec.Events[sym].Params

	// 1. Dispatch to existing monitors more informative than θ.
	if evParams.Empty() {
		// Propositional event: every instance's slice includes it, ⊥'s
		// too. The same deterministic rule as the indexed path applies
		// (observeDeaths): a parameter death is observed before stepping,
		// and the monitor is skipped only if that flags it. Δ keeps
		// unflagged monitors even after a parameter death (see sweep), so
		// membership here never depends on sweep timing.
		ms := e.monBuf[:0]
		for _, m := range e.exact {
			if !m.flagged {
				ms = append(ms, m)
			}
		}
		sortMons(ms)
		for _, m := range ms {
			if !e.observeDeaths(m) {
				continue
			}
			e.step(m, sym)
			e.processed[m.inst] = true
		}
		e.monBuf = ms[:0]
		e.botState = e.botState.Step(sym)
		return
	}

	// Canonicalize θ: one intern lookup replaces every per-event Key
	// computation; from here instance identity is pointer identity.
	tp := e.intern.Intern(theta)

	if leaf := e.trees[evParams].Lookup(tp); leaf != nil {
		// Closure-free leaf walk: AppendLive compacts exactly like
		// ForEach and fills the reused scratch buffer; the flagged
		// re-check below mirrors ForEach's visit-time Collectable check.
		buf := leaf.AppendLive(e.visitBuf[:0])
		for _, im := range buf {
			m := im.(*Mon)
			if m.flagged || !e.observeDeaths(m) {
				continue
			}
			e.step(m, sym)
			e.processed[m.inst] = true
		}
		e.visitBuf = buf[:0]
	}

	// 2. Creation joins: combine θ with compatible existing instances of
	// other domains (largest first, so a new instance is built from the
	// most informative progenitor).
	switch e.opts.Creation {
	case CreateFull:
		// Exact Figure 5 semantics: scan Θ for all compatible instances.
		// Joins must read pre-event states; monitors in the dispatch set
		// were already stepped, but those are ⊒ θ and their lub with θ is
		// themselves (already processed), so progenitors here are exactly
		// the un-stepped ones. Candidates are visited most informative
		// first: because Θ is lub-closed under CreateFull, the first
		// candidate producing a given lub is max{θ'' ∈ Θ | θ'' ⊑ θ'}.
		cands := e.monBuf[:0]
		for _, m := range e.exact {
			if m.flagged || e.processed[m.inst] {
				continue
			}
			if m.inst.Compatible(*tp) {
				cands = append(cands, m)
			}
		}
		sortMonsByInformativeness(cands)
		for _, m := range cands {
			e.tryCreate(sym, tp, m)
		}
		e.monBuf = cands[:0]
	case CreateEnable:
		for _, jp := range e.joins[sym] {
			reg := e.regs[jp.R]
			var leaf *index.Set
			if jp.O.Empty() {
				leaf = reg.all
			} else if leaf = reg.projections[jp.O].Lookup(tp); leaf == nil {
				continue
			}
			buf := leaf.AppendLive(e.visitBuf[:0])
			for _, im := range buf {
				e.tryCreate(sym, tp, im.(*Mon))
			}
			e.visitBuf = buf[:0]
		}
	}

	// 3. θ itself, from ⊥, if nothing else materialized it.
	if !e.processed[tp] {
		if _, exists := e.exact[tp]; !exists {
			switch {
			case e.opts.Creation == CreateFull:
				e.create(sym, tp, e.botState, 0)
			case e.an.Creation[sym] && e.priorEventsOK(tp, 0):
				e.create(sym, tp, e.botState, 0)
			}
		}
	}

	// 4. Insert the new monitors into the indexing structures.
	for _, m := range e.pendAdd {
		e.insert(m)
	}

	// 5. Mark θ's objects as seen and sweep tombstones periodically.
	for pm := evParams; pm != 0; pm = pm.Rest() {
		v := tp.Value(pm.First())
		rec, ok := e.seen[v.ID()]
		if !ok {
			rec.ref = v
		}
		rec.doms |= e.domBit[sym]
		e.seen[v.ID()] = rec
	}
	if evParams.Count() > 1 {
		e.seenInst[tp.Key()] = *tp
	}
	e.sinceSwep++
	if e.sinceSwep >= e.opts.SweepInterval {
		e.sinceSwep = 0
		e.timedSweep()
	}
}

// timedSweep runs a sweep pass, recording its duration in the per-policy
// collection-latency histogram and settling the published counters. Both
// extras are sweep-frequency cold-path work; the bare sweep stays
// untouched for engines without telemetry.
func (e *Engine) timedSweep() {
	if e.met == nil {
		e.sweep()
		return
	}
	start := time.Now()
	e.sweep()
	e.met.SweepSeconds.Observe(time.Since(start).Seconds())
	e.met.Sweeps.Inc()
	e.publishMetrics()
}

// publishMetrics adds the counter movement since the last publication into
// the shared atomic series. Allocation-free; called only at amortized
// points (see Options.Metrics).
func (e *Engine) publishMetrics() {
	m, s, p := e.met, &e.stats, &e.pub
	m.Events.Add(s.Events - p.Events)
	m.Steps.Add(s.Steps - p.Steps)
	m.Created.Add(s.Created - p.Created)
	m.Flagged.Add(s.Flagged - p.Flagged)
	m.Collected.Add(s.Collected - p.Collected)
	m.Verdicts.Add(s.GoalVerdicts - p.GoalVerdicts)
	m.Live.Add(s.Live - p.Live)
	m.PeakLive.SetMax(s.PeakLive)
	m.Recycled.Add(e.recycled - e.pubRecycled)
	m.Reused.Add(e.reused - e.pubReused)
	e.pub = *s
	e.pubRecycled, e.pubReused = e.recycled, e.reused
}

// observeDeaths delivers parameter-death notifications for a monitor at a
// deterministic point — the moment an event or a creation join reaches it —
// rather than whenever lazy expunging or a sweep happens to discover the
// death (Figure 7's notification, hoisted onto the access path). Verdict
// semantics are unchanged: a monitor is only flagged when its ALIVENESS
// formula is false, and by Theorem 1 such a monitor can never reach a goal
// verdict. What eagerness buys is that step and creation decisions become a
// pure function of the per-slice event/death sequence, independent of
// expunge quotas and sweep intervals — the property that lets the sharded
// runtime (internal/shard) compare its merged counters exactly against the
// sequential engine. Reports whether the monitor may be stepped.
func (e *Engine) observeDeaths(m *Mon) bool {
	if m.flagged {
		return false
	}
	if !m.inst.AllAlive() {
		m.NotifyParamDeath()
		return !m.flagged
	}
	return true
}

// tryCreate materializes θ' = progenitor ⊔ θ if permitted.
func (e *Engine) tryCreate(sym int, theta *param.Instance, prog *Mon) {
	if prog.flagged {
		return
	}
	if e.opts.Creation == CreateEnable && !prog.inst.AllAlive() {
		// The death of any bound object ends the progenitor role: in
		// JavaMOP/RV a progenitor is only reachable through weak-keyed
		// trees (see sweep). Observing the death here, instead of at the
		// sweep that would compact the registry, makes the creation
		// decision deterministic. CreateFull is exempt — it is the exact
		// Figure 5 oracle, and Figure 5 has no notion of object death.
		prog.NotifyParamDeath()
		return
	}
	lub, ok := prog.inst.Lub(*theta)
	if !ok {
		return
	}
	// Membership checks go through Get, not Intern: a lub the guards
	// below reject must leave no intern-table entry behind (its objects
	// may live arbitrarily long), so canonicalization happens only once
	// creation is certain.
	lp, known := e.intern.Get(lub.Key())
	if known {
		if e.processed[lp] {
			return
		}
		if _, exists := e.exact[lp]; exists {
			// Already materialized (it was in the dispatch set, possibly
			// flagged); never rebuild from a less informative slice.
			e.processed[lp] = true
			return
		}
	}
	if e.opts.Creation == CreateEnable {
		// Enable check: the progenitor's slice (the candidate's prefix)
		// must be a viable goal-trace prefix for this event.
		if !e.an.EnableParams[sym][prog.paramsSeen] {
			return
		}
		if !e.priorEventsOK(&lub, prog.inst.Mask()) {
			return
		}
	}
	if !known {
		lp = e.intern.Intern(lub)
	}
	e.create(sym, lp, prog.state, prog.paramsSeen)
}

// priorEventsOK is the fresh-object creation guard of CreateEnable: θ' may
// be built from a progenitor covering progDom ⊆ dom(θ') only when no prior
// event belongs to θ”s slice without being in the progenitor's. A prior
// event is in θ”s slice when its instance is ⊑ θ', which requires its
// parameter domain to fit inside dom(θ') and its objects to match θ”s; a
// prior event under a singleton domain {x} always matches (same object),
// and for multi-parameter domains the exact sub-instance θ'|D is looked up
// in seenInst. Skipping creation is sound: either the conflicting prior
// event materialized a progenitor the joins already consulted (and the lub
// closure loss means no instance carries the merged slice), or it was
// itself skipped as unable to reach G (enable theorem), making θ”s true
// slice unviable. The price is completeness on object-recombination
// interleavings, which JavaMOP's timestamp scheme trades away as well (see
// DESIGN.md).
func (e *Engine) priorEventsOK(lub *param.Instance, progDom param.Set) bool {
	target := lub.Mask()
	for xm := target.Diff(progDom); xm != 0; xm = xm.Rest() {
		x := xm.First()
		rec, ok := e.seen[lub.Value(x).ID()]
		if !ok {
			continue
		}
		for bi, d := range e.evDomains {
			if rec.doms&(1<<uint(bi)) == 0 || !d.SubsetOf(target) {
				continue
			}
			if d == param.SetOf(x) {
				return false
			}
			if _, hit := e.seenInst[lub.Restrict(d).Key()]; hit {
				return false
			}
		}
	}
	return true
}

// create builds a monitor for θ' from a progenitor state, steps it with the
// current event, and queues it for insertion. Monitors come from the free
// list when the coenable GC has recycled any.
func (e *Engine) create(sym int, inst *param.Instance, base logic.State, seen param.Set) {
	var m *Mon
	if n := len(e.pool); n > 0 {
		m = e.pool[n-1]
		e.pool[n-1] = nil
		e.pool = e.pool[:n-1]
		e.reused++
		if poolCheck {
			checkPooled(m)
		}
		*m = Mon{}
	} else {
		m = &Mon{}
	}
	m.eng, m.inst, m.state, m.paramsSeen = e, inst, base, seen
	e.stats.Created++
	e.stats.Live++
	if e.stats.Live > e.stats.PeakLive {
		e.stats.PeakLive = e.stats.Live
	}
	e.exact[inst] = m
	m.inExact = true
	e.processed[inst] = true
	e.step(m, sym)
	e.pendAdd = append(e.pendAdd, m)
}

// recycle pushes a fully dead monitor — collected (no container reference)
// and out of Δ — onto the free list. Under race/testing builds the monitor
// is poisoned first, so any straggling reference that steps or notifies it
// fails loudly instead of corrupting a future reuse.
func (e *Engine) recycle(m *Mon) {
	if m.refs > 0 || !m.collected || m.inExact || m.pooled {
		panic("monitor: recycling a monitor that is still referenced")
	}
	m.pooled = true
	if poolCheck {
		poison(m)
	}
	if len(e.pool) < maxPool {
		e.pool = append(e.pool, m)
		e.recycled++
	}
}

// step advances one monitor with an event, reports goal verdicts and
// applies monitor termination.
func (e *Engine) step(m *Mon, sym int) {
	if poolCheck && m.pooled {
		panic("monitor: pooled monitor stepped")
	}
	m.state = m.state.Step(sym)
	m.lastSym = int32(sym)
	m.paramsSeen = m.paramsSeen.Union(e.spec.Events[sym].Params)
	e.stats.Steps++
	cat := m.state.Category()
	if e.spec.goalSet[cat] {
		e.stats.GoalVerdicts++
		if e.opts.OnVerdict != nil {
			e.opts.OnVerdict(Verdict{Spec: e.spec, Sym: sym, Cat: cat, Inst: *m.inst})
		}
	}
	if e.opts.GC == GCCoenable {
		if e.an.Dead(m.state) {
			m.flag()
			return
		}
		if e.an.HasCoenable && len(e.an.CoenParams[sym]) == 0 {
			// No suffix can reach G after this event (∅-only coenable
			// family): terminate after the handler has run (§3).
			m.flag()
		}
	}
}

// checkAliveness evaluates the ALIVENESS formula for the monitor's last
// event (Figure 7 / §4.2.2).
func (e *Engine) checkAliveness(m *Mon) {
	if !e.an.HasCoenable {
		// Fall back to the all-dead condition.
		if m.inst.AliveMask().Empty() {
			m.flag()
		}
		return
	}
	disjuncts := e.an.CoenParams[m.lastSym]
	if !alive(disjuncts, *m.inst) {
		m.flag()
	}
}

func alive(disjuncts []param.Set, inst param.Instance) bool {
	bound := inst.Mask()
	aliveMask := inst.AliveMask()
	deadBound := bound.Diff(aliveMask)
	for _, s := range disjuncts {
		if s.Inter(deadBound).Empty() {
			return true
		}
	}
	return false
}

// insert places a monitor into every dispatch tree over a subset of its
// domain and into its domain registry.
func (e *Engine) insert(m *Mon) {
	dom := m.inst.Mask()
	for ps, tree := range e.trees {
		if ps.SubsetOf(dom) {
			tree.GetOrCreate(m.inst).Add(m)
		}
	}
	reg := e.regs[dom]
	reg.all.Add(m)
	for _, tree := range reg.projections {
		tree.GetOrCreate(m.inst).Add(m)
	}
}

// sweep applies the physical weak-reference semantics the paper's systems
// get from the JVM: bookkeeping entries whose objects died are dropped.
//
//   - Δ entries (exact) for *flagged* instances with a dead bound object go
//     — such an instance can never recur in an event, so no wrong-slice
//     resurrection is possible, and the flag means nothing will step it
//     again. Unflagged monitors stay even with a dead parameter (they
//     remain reachable through live keys in the weak trees, and keeping
//     them makes propositional dispatch independent of sweep timing).
//     Flagged monitors whose objects all live stay as tombstones: their
//     instances can recur, and rebuilding them from a progenitor would
//     resurrect them with a wrong slice.
//   - Domain registries release members with dead bound objects: in
//     JavaMOP/RV a progenitor is only reachable through weak-keyed trees,
//     so the death of any of its objects ends its progenitor role.
//   - Fresh-object guard records for dead objects go as well.
//   - Intern-table entries for dead instances go once Δ no longer maps
//     them (Δ membership pins the canonical pointer; see param.Interner).
//   - A monitor that is now both collected and out of Δ is recycled into
//     the free list.
func (e *Engine) sweep() {
	for p, m := range e.exact {
		if !m.inst.AllAlive() {
			if !m.flagged {
				// An object died without the trees noticing yet; give the
				// monitor its notification now (equivalent to the paper's
				// tree-access notification, just on the sweep path).
				m.NotifyParamDeath()
			}
			if m.flagged {
				delete(e.exact, p)
				m.inExact = false
				if m.collected {
					e.recycle(m)
				}
			}
		}
	}
	for id, rec := range e.seen {
		if !rec.ref.Alive() {
			delete(e.seen, id)
		}
	}
	for k, inst := range e.seenInst {
		if !inst.AllAlive() {
			delete(e.seenInst, k)
		}
	}
	for _, reg := range e.regs {
		reg.all.CompactWith(deadParam)
	}
	e.intern.Sweep(e.internRetain)
}

// internRetain pins intern-table entries that Δ still maps: their
// canonical pointers are monitor identities and must survive until the
// monitor leaves Δ.
func (e *Engine) internRetain(p *param.Instance) bool {
	_, ok := e.exact[p]
	return ok
}

func deadParam(im index.Monitor) bool {
	return !im.(*Mon).inst.AllAlive()
}

// Flush performs a full expunge/compaction pass over every structure; used
// at the end of a monitored run so the Figure 10 counters settle.
//
// Two passes are required for the counters to converge deterministically:
// the first delivers every pending death notification (expunging a dead key
// notifies the monitors below; the sweep notifies exact-map stragglers), but
// a monitor can become flagged mid-pass, after some of its containers were
// already compacted — which containers depends on map iteration order. The
// second pass re-compacts with the settled flag state, releasing every
// flagged monitor from every container.
func (e *Engine) Flush() {
	for pass := 0; pass < 2; pass++ {
		for _, t := range e.trees {
			t.Root().FlushAll()
		}
		for _, reg := range e.regs {
			reg.all.Compact()
			for _, t := range reg.projections {
				t.Root().FlushAll()
			}
		}
		e.timedSweep()
	}
}

// Monitors returns the live (unflagged, uncollected) monitor instances,
// for tests and diagnostics.
func (e *Engine) Monitors() []*Mon {
	var out []*Mon
	for _, m := range e.exact {
		if !m.flagged && !m.collected {
			out = append(out, m)
		}
	}
	sortMons(out)
	return out
}

// State returns the current base state for θ, or nil if no monitor exists.
func (e *Engine) State(inst param.Instance) logic.State {
	p, ok := e.intern.Get(inst.Key())
	if !ok {
		return nil
	}
	if m, ok := e.exact[p]; ok && !m.flagged {
		return m.state
	}
	return nil
}

func sortDomains(ds []param.Set) {
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && domLess(ds[j], ds[j-1]); j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
}

// domLess orders domains by descending popcount (largest progenitors
// first), then ascending mask.
func domLess(a, b param.Set) bool {
	if a.Count() != b.Count() {
		return a.Count() > b.Count()
	}
	return a < b
}

func sortMons(ms []*Mon) {
	keys := make([]param.Key, len(ms))
	byKey := map[param.Key]*Mon{}
	for i, m := range ms {
		keys[i] = m.inst.Key()
		byKey[keys[i]] = m
	}
	param.SortKeys(keys)
	for i, k := range keys {
		ms[i] = byKey[k]
	}
}

// sortMonsByInformativeness orders monitors by descending domain size, then
// by instance key for determinism.
func sortMonsByInformativeness(ms []*Mon) {
	sortMons(ms)
	// Stable re-partition by popcount, descending.
	var out []*Mon
	for c := param.MaxParams; c >= 0; c-- {
		for _, m := range ms {
			if m.inst.Mask().Count() == c {
				out = append(out, m)
			}
		}
	}
	copy(ms, out)
}
