// avoid.go: the runtime half of the static creation-avoidance analysis
// (internal/coenable's Doomed/Guards). The engine consults a creation
// guard immediately before materializing a monitor; in audit mode the hit
// is only counted (Stats.Avoided), in enforce mode the creation is
// suppressed and the instance recorded as a tombstone so the engine's
// create-once discipline (an instance in Δ is never rebuilt from a less
// informative slice) stays in lockstep with the unguarded engine.
//
// Soundness boundaries, mirrored by the checks in New and proven against
// the unguarded engine by conformance.RunAvoidanceOracle (see DESIGN.md
// "Static creation avoidance"):
//
//   - Audit mode never changes behavior: any strategy, any GC policy.
//   - Enforce + CreateEnable suppresses only maximal-domain creations.
//     A maximal-domain monitor can never serve as a join progenitor (every
//     join strictly grows the domain, and the maximal domain — the union
//     of all event parameter sets, present by union closure — has no
//     strict superset), so suppressing it cannot starve a descendant; the
//     tombstone replicates its Δ-blocking exactly, including its exit from
//     Δ (see sweep).
//   - Enforce + CreateFull additionally suppresses the suppressed
//     instance's would-be descendants (doom is a trap: every successor of
//     a doomed state is doomed), with tombstones standing in as Figure-5
//     scan progenitors. This requires GCNone — with monitor GC on, a real
//     doomed monitor's flag timing (which ends its progenitor role)
//     depends on tree-access and sweep timing a tombstone cannot mirror.
package monitor

import (
	"fmt"

	"rvgo/internal/param"
)

// AvoidMode selects how the engine uses the creation-avoidance guards.
type AvoidMode int

const (
	// AvoidOff disables the guards entirely (the default).
	AvoidOff AvoidMode = iota
	// AvoidAudit evaluates the guards and counts would-be-suppressed
	// creations in Stats.Avoided, but still materializes every monitor:
	// behavior is bit-identical to AvoidOff.
	AvoidAudit
	// AvoidEnforce suppresses guarded creations, recording tombstones so
	// per-slice verdicts stay bit-identical to the unguarded engine.
	AvoidEnforce
)

func (m AvoidMode) String() string {
	switch m {
	case AvoidOff:
		return "off"
	case AvoidAudit:
		return "audit"
	case AvoidEnforce:
		return "enforce"
	}
	return fmt.Sprintf("AvoidMode(%d)", int(m))
}

// ParseAvoidMode maps the -avoid flag values to avoidance modes.
func ParseAvoidMode(s string) (AvoidMode, error) {
	switch s {
	case "off", "":
		return AvoidOff, nil
	case "audit":
		return AvoidAudit, nil
	case "enforce":
		return AvoidEnforce, nil
	}
	return 0, fmt.Errorf("unknown avoidance mode %q (want off, audit or enforce)", s)
}

// CreationProfile accumulates per-creation-site statistics during a run:
// for each event symbol, how many monitors were born at it, how many of
// those were ever stepped again after their birth step, and how many ever
// reached a goal category. A profile collected from a recorded trace
// replay feeds Guards, the profile-guided complement to the static doomed
// analysis. Counters are engine-local and unsynchronized: attach a
// profile to a sequential engine only, and read it after Flush/Close.
type CreationProfile struct {
	Events      []string // event names, index = symbol
	Created     []uint64 // monitors born at the symbol
	Restepped   []uint64 // of those, stepped again after the birth step
	ReachedGoal []uint64 // of those, ever reaching a goal category
}

// NewCreationProfile returns an empty profile sized for the spec.
func NewCreationProfile(s *Spec) *CreationProfile {
	p := &CreationProfile{
		Events:      make([]string, len(s.Events)),
		Created:     make([]uint64, len(s.Events)),
		Restepped:   make([]uint64, len(s.Events)),
		ReachedGoal: make([]uint64, len(s.Events)),
	}
	for i, ev := range s.Events {
		p.Events[i] = ev.Name
	}
	return p
}

// bind validates a caller-constructed profile against the spec.
func (p *CreationProfile) bind(s *Spec) error {
	n := len(s.Events)
	if len(p.Created) != n || len(p.Restepped) != n || len(p.ReachedGoal) != n {
		return fmt.Errorf("monitor: creation profile sized for %d events, spec %q has %d", len(p.Created), s.Name, n)
	}
	return nil
}

// Guards synthesizes per-symbol profile guards: an event symbol is
// guarded when the profiled run created monitors at it and none ever
// reached a goal. Such guards are empirical, not proven — they hold for
// the profiled trace (replaying it under enforce mode preserves every
// verdict) and for workloads with the same creation-site behavior; the
// engine additionally restricts their enforcement to maximal-domain
// creations so suppression can never starve a descendant monitor.
func (p *CreationProfile) Guards() []bool {
	out := make([]bool, len(p.Created))
	for sym := range p.Created {
		out[sym] = p.Created[sym] > 0 && p.ReachedGoal[sym] == 0
	}
	return out
}

// GuardedSites returns how many symbols Guards would guard.
func (p *CreationProfile) GuardedSites() int {
	n := 0
	for _, g := range p.Guards() {
		if g {
			n++
		}
	}
	return n
}

// guardHit evaluates the creation guards for a creation with instance
// domain dom whose first transition is sym out of graph state base. It
// reports true when the creation is provably (static doomed guard) or
// empirically (profile guard) unable to reach a goal category. Guards are
// only consulted when Options.Avoid is not AvoidOff, so the unguarded hot
// path is untouched.
func (e *Engine) guardHit(sym int, dom param.Set, base uint32) bool {
	if e.g != nil && e.an.Doomed[e.g.Next[base][sym]] {
		// The static guard: the post-creation state cannot reach a goal.
		// Under CreateEnable only maximal-domain creations are eligible
		// (see the package comment in avoid.go); under CreateFull the
		// tombstone closure covers descendants, so every creation is.
		if e.opts.Creation == CreateFull || dom == e.allParams {
			return true
		}
	}
	if e.profGuards != nil && e.profGuards[sym] && dom == e.allParams {
		return true
	}
	return false
}

// recordAvoided tombstones a suppressed creation: the instance joins the
// avoided set (blocking any later from-⊥ or join rebuild with a wrong
// slice, exactly as the real monitor's Δ entry would have) and is marked
// processed for this event.
func (e *Engine) recordAvoided(p *param.Instance) {
	e.avoided[p] = struct{}{}
	e.processed[p] = true
}

// tryAvoidLub replicates tryCreate for a suppressed (tombstoned)
// progenitor under CreateFull: the lub the unguarded engine would have
// built from it starts in a doomed state too (doom is a trap), so it is
// recorded as avoided rather than materialized. First-claim-wins ordering
// with the real candidates is preserved by the merge in Dispatch.
func (e *Engine) tryAvoidLub(theta, ghost *param.Instance) {
	lub, ok := ghost.Lub(*theta)
	if !ok {
		return
	}
	lp, _, known := e.intern.Get(lub.Key())
	if known {
		if e.processed[lp] {
			return
		}
		if _, exists := e.exact[lp]; exists {
			e.processed[lp] = true
			return
		}
		if _, av := e.avoided[lp]; av {
			e.processed[lp] = true
			return
		}
	} else {
		lp, _ = e.intern.Intern(lub)
	}
	e.stats.Avoided++
	e.recordAvoided(lp)
}

// moreInformative orders instances by descending domain size, then by
// instance key — the same order sortByInformativeness gives monitor
// handles, so tombstoned and real Figure-5 scan candidates merge into one
// deterministic sequence.
func moreInformative(a, b *param.Instance) bool {
	ac, bc := a.Mask().Count(), b.Mask().Count()
	if ac != bc {
		return ac > bc
	}
	return keyLess(a.Key(), b.Key())
}
