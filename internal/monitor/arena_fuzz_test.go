package monitor

import (
	"testing"

	"rvgo/internal/arena"
)

// FuzzSlabArena drives random interleavings of alloc/free/reuse against
// the monitor record arena — with the engine's own poison/verify pair
// installed — and checks the allocator invariants the engine's correctness
// rests on:
//
//   - no double handout: a slot index is never live under two handles;
//   - no aliasing: every live record still carries exactly the stamp its
//     allocation wrote (a lost or duplicated slot would scramble stamps);
//   - no generation resurrection: a freed handle never dereferences again,
//     on At (panic), Get (miss) or Alive (false), even after its slot is
//     reallocated under a fresh generation (the ABA case);
//   - poison trips on use-after-free: a stray write through a dangling
//     record pointer is caught by the verify hook when the slot leaves the
//     free list.
func FuzzSlabArena(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 2, 0, 0, 0})
	f.Add([]byte{0, 1, 0, 2, 2, 0, 0, 3, 1, 0, 3, 1, 2, 2})
	f.Add([]byte{0, 0, 0, 1, 0, 2, 2, 1, 0, 3, 3, 0, 2, 0, 1, 1})
	f.Fuzz(func(t *testing.T, ops []byte) {
		var p arena.Pool[Mon]
		p.SetChecks(poisonMon, verifyMon)

		var (
			liveH []arena.Handle
			stamp = map[arena.Handle]uint32{} // live handle -> expected stamp
			slot  = map[uint32]arena.Handle{} // live slot index -> its handle
			stale []arena.Handle
			next  uint32
		)
		free := func(i int) {
			h := liveH[i]
			p.Free(h)
			liveH[i] = liveH[len(liveH)-1]
			liveH = liveH[:len(liveH)-1]
			delete(stamp, h)
			delete(slot, h.Index())
			stale = append(stale, h)
			if len(stale) > 64 {
				stale = stale[1:]
			}
		}
		mustBeStale := func(h arena.Handle) {
			t.Helper()
			if _, ok := p.Get(h); ok {
				t.Fatalf("stale handle %v resolved via Get", h)
			}
			if p.Alive(h) {
				t.Fatalf("stale handle %v reported alive", h)
			}
			defer func() {
				if recover() == nil {
					t.Fatalf("At(%v) on a stale handle did not panic", h)
				}
			}()
			p.At(h)
		}

		for i := 0; i+1 < len(ops); i += 2 {
			op, arg := ops[i], int(ops[i+1])
			switch op % 4 {
			case 0: // alloc
				h, m := p.Alloc()
				if h.IsNil() {
					t.Fatal("Alloc returned Nil")
				}
				if prev, dup := slot[h.Index()]; dup {
					t.Fatalf("double handout: slot %d live under %v and %v", h.Index(), prev, h)
				}
				if _, reused := stamp[h]; reused {
					t.Fatalf("handle %v issued twice", h)
				}
				next++
				m.state = next
				stamp[h] = next
				slot[h.Index()] = h
				liveH = append(liveH, h)
			case 1: // free a live handle
				if len(liveH) == 0 {
					continue
				}
				free(arg % len(liveH))
			case 2: // audit every live record's stamp (no aliasing, no loss)
				for h, want := range stamp {
					if got := p.At(h).state; got != want {
						t.Fatalf("record %v stamp = %d, want %d (slot aliased or clobbered)", h, got, want)
					}
				}
				if p.Live() != len(liveH) {
					t.Fatalf("Live() = %d, model has %d", p.Live(), len(liveH))
				}
			case 3: // a freed handle must stay dead, even after ABA reuse
				if len(stale) == 0 {
					continue
				}
				mustBeStale(stale[arg%len(stale)])
			}
		}

		// Every remaining stale handle is still dead after all reuse.
		for _, h := range stale {
			mustBeStale(h)
		}

		// Poison discipline: scribbling through a dangling record pointer is
		// caught when the slot leaves the free list (LIFO: the next Alloc
		// pops exactly the slot just freed).
		if len(liveH) > 0 {
			h := liveH[0]
			dangling := p.At(h)
			p.Free(h)
			dangling.lastSym = 12345 // simulated use-after-free write
			func() {
				defer func() {
					if recover() == nil {
						t.Fatal("verify did not trip on a mutated freed record")
					}
				}()
				p.Alloc()
			}()
		}
	})
}
