package monitor_test

import (
	"fmt"
	"math/rand"
	"testing"

	"rvgo/internal/heap"
	"rvgo/internal/monitor"
	"rvgo/internal/param"
	"rvgo/internal/props"
	"rvgo/internal/slicing"
)

// mapIterTrace generates a well-formed UNSAFEMAPITER trace: views belong
// to one map, iterators to one view, objects' first events are their
// creating events.
func mapIterTrace(rng *rand.Rand, h *heap.Heap, n int) []slicing.Event {
	const (
		pM = 0
		pC = 1
		pI = 2
	)
	const (
		symCreateColl = 0
		symCreateIter = 1
		symUseIter    = 2
		symUpdateMap  = 3
	)
	maps := []*heap.Object{h.Alloc("m1"), h.Alloc("m2")}
	type view struct{ m, c *heap.Object }
	type iter struct {
		v  view
		it *heap.Object
	}
	var views []view
	var iters []iter
	var tr []slicing.Event
	for len(tr) < n {
		switch rng.Intn(4) {
		case 0:
			m := maps[rng.Intn(len(maps))]
			v := view{m: m, c: h.Alloc(fmt.Sprintf("c%d", len(views)))}
			views = append(views, v)
			tr = append(tr, slicing.Event{Sym: symCreateColl,
				Inst: param.Empty().Bind(pM, v.m).Bind(pC, v.c)})
		case 1:
			if len(views) == 0 {
				continue
			}
			v := views[rng.Intn(len(views))]
			it := iter{v: v, it: h.Alloc(fmt.Sprintf("i%d", len(iters)))}
			iters = append(iters, it)
			tr = append(tr, slicing.Event{Sym: symCreateIter,
				Inst: param.Empty().Bind(pC, v.c).Bind(pI, it.it)})
		case 2:
			if len(iters) == 0 {
				continue
			}
			it := iters[rng.Intn(len(iters))]
			tr = append(tr, slicing.Event{Sym: symUseIter,
				Inst: param.Empty().Bind(pI, it.it)})
		case 3:
			m := maps[rng.Intn(len(maps))]
			tr = append(tr, slicing.Event{Sym: symUpdateMap,
				Inst: param.Empty().Bind(pM, m)})
		}
	}
	return tr
}

// TestUnsafeMapIterEngineMatchesReference: the three-parameter property —
// where instances are built through chained joins ⟨m,c⟩ ⊔ ⟨c,i⟩ — agrees
// with the Figure 5 oracle under both creation strategies on well-formed
// traces.
func TestUnsafeMapIterEngineMatchesReference(t *testing.T) {
	spec, err := props.Build("UnsafeMapIter")
	if err != nil {
		t.Fatal(err)
	}
	for _, strat := range []monitor.CreationStrategy{monitor.CreateFull, monitor.CreateEnable} {
		for seed := int64(0); seed < 25; seed++ {
			rng := rand.New(rand.NewSource(seed))
			h := heap.New()
			tr := mapIterTrace(rng, h, 70)

			var engGot []verdictRec
			eng, err := monitor.New(spec, monitor.Options{
				GC: monitor.GCNone, Creation: strat,
				OnVerdict: func(v monitor.Verdict) {
					engGot = append(engGot, verdictRec{key: v.Inst.Key(), cat: v.Cat})
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			ref := slicing.New(spec.RuntimeBlueprint())
			var refGot []verdictRec
			for _, e := range tr {
				eng.Dispatch(e.Sym, e.Inst)
				for _, up := range ref.Process(e) {
					if spec.IsGoal(up.Cat) {
						refGot = append(refGot, verdictRec{key: up.Inst.Key(), cat: up.Cat})
					}
				}
			}
			if d := diffVerdicts(engGot, refGot); d != "" {
				t.Fatalf("strategy %v seed %d: %s", strat, seed, d)
			}
		}
	}
}

// TestUnsafeMapIterGC: killing an iterator flags its ⟨m,c,i⟩ monitors even
// while map and view live on; killing the map flags monitors whose future
// needs it.
func TestUnsafeMapIterGC(t *testing.T) {
	spec, err := props.Build("UnsafeMapIter")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := monitor.New(spec, monitor.Options{
		GC: monitor.GCCoenable, Creation: monitor.CreateEnable, SweepInterval: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := heap.New()
	m := h.Alloc("m")
	c := h.Alloc("c")
	createColl, _ := spec.Symbol("createColl")
	createIter, _ := spec.Symbol("createIter")
	useIter, _ := spec.Symbol("useIter")
	updateMap, _ := spec.Symbol("updateMap")

	eng.Emit(createColl, m, c)
	for k := 0; k < 20; k++ {
		it := h.Alloc(fmt.Sprintf("i%d", k))
		eng.Emit(createIter, c, it)
		eng.Emit(useIter, it)
		h.Free(it)
		eng.Emit(updateMap, m) // touches the ⟨m⟩-tree: lazy notification
	}
	eng.Flush()
	st := eng.Stats()
	if st.Flagged == 0 || st.Collected == 0 {
		t.Fatalf("dead iterators must flag ⟨m,c,i⟩ monitors: %+v", st)
	}
}

// TestEngineStatsConsistency: counters hold basic invariants on a random
// workload.
func TestEngineStatsConsistency(t *testing.T) {
	spec := unsafeIterSpec(t)
	eng, err := monitor.New(spec, monitor.Options{GC: monitor.GCCoenable, Creation: monitor.CreateEnable, SweepInterval: 8})
	if err != nil {
		t.Fatal(err)
	}
	h := heap.New()
	rng := rand.New(rand.NewSource(9))
	c := h.Alloc("c")
	var live []*heap.Object
	for n := 0; n < 300; n++ {
		switch rng.Intn(4) {
		case 0:
			it := h.Alloc("")
			live = append(live, it)
			eng.Emit(symCreate, c, it)
		case 1:
			eng.Emit(symUpdate, c)
		case 2:
			if len(live) > 0 {
				eng.Emit(symNext, live[rng.Intn(len(live))])
			}
		case 3:
			if len(live) > 0 {
				k := rng.Intn(len(live))
				h.Free(live[k])
				live = append(live[:k], live[k+1:]...)
			}
		}
	}
	eng.Flush()
	st := eng.Stats()
	if st.Collected > st.Created {
		t.Fatalf("collected %d > created %d", st.Collected, st.Created)
	}
	if st.Live != int64(st.Created)-int64(st.Collected) {
		t.Fatalf("live %d != created %d - collected %d", st.Live, st.Created, st.Collected)
	}
	if st.PeakLive < st.Live {
		t.Fatalf("peak %d < live %d", st.PeakLive, st.Live)
	}
	if st.Events != 0 && st.Steps == 0 {
		t.Fatal("events dispatched but no steps taken")
	}
}

// TestRealWeakReferences runs the engine over Go's real weak pointers: the
// same UNSAFEITER scenario with the garbage collector, not the simulated
// heap, deciding liveness. Collection is best-effort, so the assertion is
// one-sided: if the GC did reclaim iterators, the engine must flag
// monitors; no verdict may ever be lost either way.
func TestRealWeakReferences(t *testing.T) {
	spec := unsafeIterSpec(t)
	verdicts := 0
	eng, err := monitor.New(spec, monitor.Options{
		GC: monitor.GCCoenable, Creation: monitor.CreateEnable, SweepInterval: 4,
		OnVerdict: func(monitor.Verdict) { verdicts++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	type collection struct{ name string }
	type iterator struct{ pos int }

	collObj := &collection{name: "c"}
	collRef := heap.NewWeak(collObj, "c")

	makeIterator := func(violate bool) {
		it := &iterator{}
		ref := heap.NewWeak(it, "i")
		eng.Emit(symCreate, collRef, ref)
		eng.Emit(symNext, ref)
		if violate {
			eng.Emit(symUpdate, collRef)
			eng.Emit(symNext, ref)
		}
		_ = it.pos
	}
	for k := 0; k < 50; k++ {
		makeIterator(k == 25)
	}
	heap.ForceCollect()
	// Touch the trees so lazy expunging observes the collected iterators.
	eng.Emit(symUpdate, collRef)
	eng.Flush()

	if verdicts != 1 {
		t.Fatalf("verdicts = %d, want exactly the injected violation", verdicts)
	}
	st := eng.Stats()
	if st.Created < 50 {
		t.Fatalf("created = %d", st.Created)
	}
	if st.Flagged == 0 {
		t.Skip("GC did not reclaim iterators during the test (best-effort)")
	}
	// Keep collObj alive to the end so collection monitors stay valid.
	_ = collObj.name
}
