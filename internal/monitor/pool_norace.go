//go:build !race

package monitor

// poolCheck disables monitor free-list poisoning outside race builds; the
// guarded checks compile away entirely.
const poolCheck = false
