// Package monitor implements the RV parametric monitoring engine (paper
// §4): event dispatch through indexing trees, monitor-instance creation
// with enable-set avoidance, and the paper's contribution — lazy garbage
// collection of unnecessary monitor instances driven by coenable sets.
package monitor

import (
	"fmt"

	"rvgo/internal/cfg"
	"rvgo/internal/coenable"
	"rvgo/internal/logic"
	"rvgo/internal/param"
)

// ExploreLimit bounds state-graph exploration during static analysis.
const ExploreLimit = 1 << 15

// EventDef declares one parametric event: its name and D(e), the parameters
// it instantiates (Definition 4).
type EventDef struct {
	Name   string
	Params param.Set
}

// Spec is a compiled parametric specification: parameters X, events with
// their parameter bindings D, a base-monitor blueprint, and the verdict
// categories of interest G (the ones carrying handlers).
type Spec struct {
	Name   string
	Params []string
	Events []EventDef
	BP     logic.Blueprint
	Goal   []logic.Category

	analysis *Analysis
	runBP    logic.Blueprint // blueprint actually used at runtime
	goalSet  map[logic.Category]bool
	// symIdx is the name→symbol map backing Symbol. It is written once,
	// inside Analyze (strictly before any backend worker can exist), and
	// read-only afterwards, so concurrent EmitNamed calls need no lock.
	symIdx map[string]int
}

// Analysis holds the products of the static analyses of §3: coenable and
// enable sets at both event and parameter granularity, creation events, and
// the dead-state predicate used for monitor termination.
type Analysis struct {
	// CoenEvents and EnableEvents are the Section 3 set families, for
	// display and tests.
	CoenEvents   coenable.Sets
	EnableEvents coenable.Sets
	// CoenParams[sym] is COENABLE^X(e): the ALIVENESS disjuncts.
	CoenParams [][]param.Set
	// EnableParams[sym] is ENABLE^X(e) as a membership set: the parameter
	// sets D(w) of prefixes w of goal traces containing e.
	EnableParams []map[param.Set]bool
	// Creation[sym] reports ∅ ∈ ENABLE(e): e can begin a goal trace.
	Creation []bool
	// HasCoenable reports whether coenable information exists (false for
	// CFG properties whose goal is not {match}; such monitors fall back to
	// all-parameters-dead collection).
	HasCoenable bool
	// Doomed is the per-state cannot-reach-goal predicate over the explored
	// graph (nil for non-graph blueprints): the engine's static creation
	// guard consults it before materializing a monitor. See
	// coenable.Doomed.
	Doomed []bool
	// Guards is the per-symbol static creation-guard summary (nil for
	// non-graph blueprints), for introspection and the avoidance report.
	Guards []coenable.GuardInfo
	// dead reports that a state can never (again) trigger a goal handler.
	dead func(logic.State) bool
}

// Dead reports whether a monitor in state s can never trigger again.
func (a *Analysis) Dead(s logic.State) bool {
	if a.dead == nil {
		return false
	}
	return a.dead(s)
}

// Validate checks the spec's structural invariants.
func (s *Spec) Validate() error {
	if len(s.Params) == 0 || len(s.Params) > param.MaxParams {
		return fmt.Errorf("monitor: spec %q has %d parameters, want 1..%d", s.Name, len(s.Params), param.MaxParams)
	}
	alpha := s.BP.Alphabet()
	if len(alpha) != len(s.Events) {
		return fmt.Errorf("monitor: spec %q has %d events but blueprint alphabet %d", s.Name, len(s.Events), len(alpha))
	}
	for i, e := range s.Events {
		if e.Name != alpha[i] {
			return fmt.Errorf("monitor: spec %q event %d is %q but alphabet has %q", s.Name, i, e.Name, alpha[i])
		}
		if !e.Params.SubsetOf(param.Set(1<<uint(len(s.Params))) - 1) {
			return fmt.Errorf("monitor: spec %q event %q binds undeclared parameters", s.Name, e.Name)
		}
	}
	if len(s.Goal) == 0 {
		return fmt.Errorf("monitor: spec %q has no goal categories (no handlers)", s.Name)
	}
	return nil
}

// Symbol returns the symbol index for an event name. After Analyze has
// run (every runtime backend requires it, and the rvgo façade runs it at
// spec-build time) lookups go through the name→symbol map, so EmitNamed
// and emitter resolution cost one map read regardless of alphabet size.
// Before Analyze — spec construction is single-threaded — it falls back
// to a scan rather than racing to build the map.
func (s *Spec) Symbol(name string) (int, bool) {
	if s.symIdx != nil {
		sym, ok := s.symIdx[name]
		return sym, ok
	}
	for i, e := range s.Events {
		if e.Name == name {
			return i, true
		}
	}
	return 0, false
}

// EventParams returns D as a slice indexed by symbol.
func (s *Spec) EventParams() []param.Set {
	ps := make([]param.Set, len(s.Events))
	for i, e := range s.Events {
		ps[i] = e.Params
	}
	return ps
}

// IsGoal reports whether a category is in G.
func (s *Spec) IsGoal(c logic.Category) bool { return s.goalSet[c] }

// Analysis returns the static-analysis products, running Analyze on first
// use.
func (s *Spec) Analysis() (*Analysis, error) {
	if s.analysis == nil {
		if err := s.Analyze(); err != nil {
			return nil, err
		}
	}
	return s.analysis, nil
}

// RuntimeBlueprint returns the blueprint used for monitoring. For finite
// (Explorable) formalisms this is the explored graph — integer states, one
// array read per step — demonstrating that the engine is driven purely by
// the abstract monitor interface.
func (s *Spec) RuntimeBlueprint() logic.Blueprint {
	if s.runBP == nil {
		if err := s.Analyze(); err != nil {
			panic(err)
		}
	}
	return s.runBP
}

// Analyze runs the static analyses of §3 for the spec.
func (s *Spec) Analyze() error {
	if s.analysis != nil {
		return nil
	}
	if err := s.Validate(); err != nil {
		return err
	}
	s.goalSet = map[logic.Category]bool{}
	for _, c := range s.Goal {
		s.goalSet[c] = true
	}
	s.symIdx = make(map[string]int, len(s.Events))
	for i, e := range s.Events {
		s.symIdx[e.Name] = i
	}
	goal := func(c logic.Category) bool { return s.goalSet[c] }
	a := &Analysis{}
	evParams := s.EventParams()

	switch bp := s.BP.(type) {
	case logic.Explorable:
		g, err := bp.Explore(ExploreLimit)
		if err != nil {
			return fmt.Errorf("monitor: exploring %q: %w", s.Name, err)
		}
		a.CoenEvents = coenable.FromGraph(g, goal)
		a.EnableEvents = coenable.EnableFromGraph(g, goal)
		a.HasCoenable = true
		// Prebox the graph's states before any engine steps a monitor:
		// every Step then returns a preallocated interface value (see
		// logic.Graph.Box), keeping the dispatch hot path allocation-free.
		g.Box()
		s.runBP = logic.GraphBlueprint{G: g}
		a.dead = deadFromGraph(g, goal)
		a.Doomed = coenable.Doomed(g, goal)
		a.Guards = coenable.Guards(g, goal, a.EnableEvents)
	case cfgBlueprint:
		s.runBP = bp
		if len(s.Goal) == 1 && s.Goal[0] == logic.Match {
			a.CoenEvents = bp.Grammar().Coenable()
			a.EnableEvents = bp.Grammar().Enable()
			a.HasCoenable = true
		} else {
			// No static analysis for non-match CFG goals: the monitor is
			// only collected when all parameter objects die (the JavaMOP
			// condition), plus sink termination below.
			a.CoenEvents = make(coenable.Sets, len(s.Events))
			a.EnableEvents = universalEnable(len(s.Events))
		}
		a.dead = func(st logic.State) bool {
			c := st.Category()
			if c == logic.Fail {
				// The Earley fail sink is permanent: report once (the
				// engine reports before the dead check), then terminate.
				return true
			}
			return false
		}
	default:
		a.CoenEvents = make(coenable.Sets, len(s.Events))
		a.EnableEvents = universalEnable(len(s.Events))
		s.runBP = s.BP
	}

	if a.HasCoenable {
		a.CoenParams = coenable.ParamSets(a.CoenEvents, evParams)
	} else {
		a.CoenParams = make([][]param.Set, len(s.Events))
	}
	a.EnableParams = make([]map[param.Set]bool, len(s.Events))
	a.Creation = make([]bool, len(s.Events))
	for sym := range s.Events {
		m := map[param.Set]bool{}
		// ParamSets minimizes by absorption, which is correct for the
		// ALIVENESS disjunction but not for the enable membership test;
		// recompute the full image here.
		for _, es := range a.EnableEvents[sym] {
			var ps param.Set
			for b := range s.Events {
				if es.Has(b) {
					ps = ps.Union(evParams[b])
				}
			}
			m[ps] = true
		}
		a.EnableParams[sym] = m
		a.Creation[sym] = m[param.Set(0)]
	}
	s.analysis = a
	return nil
}

// cfgBlueprint is satisfied by both CFG monitor backends (the incremental
// Earley recognizer and the table-driven SLR(1) recognizer): either way
// the §3 grammar-level analyses apply.
type cfgBlueprint interface {
	logic.Blueprint
	Grammar() *cfg.Grammar
}

// universalEnable is the no-information enable family: every event may
// start a trace and be preceded by anything — all creation permitted.
func universalEnable(n int) coenable.Sets {
	sets := make(coenable.Sets, n)
	all := coenable.EventSet(1)<<uint(n) - 1
	for i := range sets {
		var fam []coenable.EventSet
		for t := coenable.EventSet(0); ; t++ {
			fam = append(fam, t)
			if t == all {
				break
			}
		}
		sets[i] = fam
	}
	return sets
}

// deadFromGraph builds the monitor-termination predicate: a state is dead
// when no goal handler can trigger in the future — either no goal state is
// reachable in ≥1 steps, or the state is an absorbing goal sink (the
// handler has already run and re-running it would report the same verdict
// forever).
func deadFromGraph(g *logic.Graph, goal coenable.Goal) func(logic.State) bool {
	reach0 := coenable.CanReachGoal(g, goal)
	n := g.NumStates()
	dead := make([]bool, n)
	for s := 0; s < n; s++ {
		future := false
		sink := true
		for a := range g.Alphabet {
			t := g.Next[s][a]
			if reach0[t] {
				future = true
			}
			if t != s {
				sink = false
			}
		}
		dead[s] = !future || (sink && goal(g.Cat[s]))
	}
	return func(st logic.State) bool {
		gs, ok := st.(logic.GraphState)
		if !ok {
			return false
		}
		return dead[gs.S]
	}
}
