package monitor

import (
	"rvgo/internal/heap"
	"rvgo/internal/param"
)

// Runtime is the engine-agnostic monitoring surface: everything a workload
// adapter, a trace driver or the evaluation harness needs from a backend.
// The sequential Engine implements it synchronously; the sharded runtime
// (package internal/shard) implements it over a pool of Engine workers.
// Every future backend (remote, persistent, ...) should implement Runtime
// so the tools in cmd/ can run it unchanged.
type Runtime interface {
	// Spec returns the specification being monitored.
	Spec() *Spec
	// Emit dispatches the parametric event sym⟨vals⟩; vals bind D(e) in
	// ascending parameter-index order and must all be alive.
	Emit(sym int, vals ...heap.Ref)
	// EmitNamed dispatches an event by name.
	EmitNamed(name string, vals ...heap.Ref) error
	// Dispatch processes one parametric event.
	Dispatch(sym int, theta param.Instance)
	// Barrier returns once every event dispatched before the call has been
	// fully processed. Synchronous backends return immediately.
	Barrier()
	// Flush performs a full expunge/compaction pass so the Figure 10
	// counters settle; it implies Barrier.
	Flush()
	// Stats returns the monitoring counters. For asynchronous backends the
	// snapshot covers at least every event processed before the last
	// Barrier or Flush.
	Stats() Stats
	// Close releases backend resources (worker goroutines, mailboxes).
	// Dispatching after Close is a programming error.
	Close()
}

var _ Runtime = (*Engine)(nil)

// Barrier implements Runtime. The sequential engine processes events
// synchronously, so every dispatched event is already fully processed.
func (e *Engine) Barrier() {}

// Close implements Runtime. The sequential engine holds no goroutines or
// external resources.
func (e *Engine) Close() {}
