package monitor

import (
	"rvgo/internal/arena"
	"rvgo/internal/heap"
	"rvgo/internal/param"
)

// Runtime is the engine-agnostic monitoring surface: everything a workload
// adapter, a trace driver or the evaluation harness needs from a backend.
// The sequential Engine implements it synchronously; the sharded runtime
// (package internal/shard) implements it over a pool of Engine workers.
// Every future backend (remote, persistent, ...) should implement Runtime
// so the tools in cmd/ can run it unchanged.
type Runtime interface {
	// Spec returns the specification being monitored.
	Spec() *Spec
	// Emit dispatches the parametric event sym⟨vals⟩; vals bind D(e) in
	// ascending parameter-index order and must all be alive.
	Emit(sym int, vals ...heap.Ref)
	// EmitNamed dispatches an event by name.
	EmitNamed(name string, vals ...heap.Ref) error
	// Dispatch processes one parametric event.
	Dispatch(sym int, theta param.Instance)
	// Free positions an explicit object death in the event stream: every
	// event dispatched before the call is processed observing the objects
	// alive. The caller marks the objects dead after Free returns and
	// dispatches no later event mentioning them. Synchronous backends need
	// do nothing; asynchronous backends barrier their queues or forward a
	// protocol-level free. This is the synchronous death signal used by
	// explicit-free drivers (trace replay, the simulated-heap free hook).
	Free(refs ...heap.Ref)
	// FreeAsync positions an object death without stalling the producer:
	// the runtime invokes die exactly once, after every previously
	// dispatched event has been processed and before any later event is,
	// and die marks the objects dead. The caller dispatches no later event
	// mentioning the refs (with a garbage-collected object that is
	// automatic: the object is unreachable, so no event can bind it). A nil
	// die degrades to Free's synchronous contract. This is the death path
	// of the live-object frontend (package rv): Go-GC cleanups become
	// stream-positioned deaths that drive coenable-set monitor GC exactly
	// like an internal/wire free.
	FreeAsync(die func(), refs ...heap.Ref)
	// Barrier returns once every event dispatched before the call has been
	// fully processed. Synchronous backends return immediately.
	Barrier()
	// Flush performs a full expunge/compaction pass so the Figure 10
	// counters settle; it implies Barrier.
	Flush()
	// Stats returns the monitoring counters. For asynchronous backends the
	// snapshot covers at least every event processed before the last
	// Barrier or Flush.
	Stats() Stats
	// Close releases backend resources (worker goroutines, mailboxes).
	// Dispatching after Close is a programming error.
	Close()
}

var _ Runtime = (*Engine)(nil)

// Barrier implements Runtime. The sequential engine processes events
// synchronously, so every dispatched event is already fully processed.
func (e *Engine) Barrier() {}

// Free implements Runtime. The sequential engine needs no positioning:
// every dispatched event has already been processed, and it observes
// deaths lazily through ref liveness when the death is applied.
func (e *Engine) Free(refs ...heap.Ref) {}

// FreeAsync implements Runtime: the positioned point is now.
func (e *Engine) FreeAsync(die func(), refs ...heap.Ref) {
	if die != nil {
		die()
	}
}

// Close implements Runtime. The sequential engine holds no goroutines or
// external resources; closing settles any published telemetry and returns
// the slab arenas (monitor records and interned instances) to the host
// allocator in O(slabs) — the engine-side counterpart of the per-monitor
// reclamation the GC policies do during the run. Dispatching after Close
// is a programming error; with the store reset it fails fast on a stale
// handle rather than corrupting state.
func (e *Engine) Close() {
	if e.met != nil {
		e.publishMetrics()
		// The arena gauges track a store that no longer exists; settle
		// them to zero so shared series don't leak phantom capacity.
		st := e.mons.Stats()
		e.met.ArenaSlabs.Add(-int64(st.Slabs))
		e.met.ArenaCap.Add(-int64(st.Cap))
		e.met.ArenaFree.Add(-int64(st.Free))
		e.pubArena = arena.Stats{}
	}
	e.mons.Reset()
	e.intern.Reset()
	e.boxState = nil
	e.exact = map[*param.Instance]arena.Handle{}
}
