package monitor

// Pool poisoning: under race builds (the -race test suite) a monitor
// entering the free list is poisoned and a monitor leaving it is verified,
// so a straggling container reference that steps, notifies or re-releases
// a recycled monitor fails loudly at the point of misuse instead of
// silently corrupting the slice state of whatever creation reuses the
// allocation. poolCheck is a build-tag constant (see pool_race.go /
// pool_norace.go), so in normal builds every check below compiles away.

// poison scrambles a pooled monitor so any use before reuse crashes:
// Step on a nil state dereferences, and the sentinel symbol makes the
// wreckage attributable in the panic.
func poison(m *Mon) {
	m.state = nil
	m.lastSym = -0x7001 // "pooled" sentinel
	m.eng = nil
}

// checkPooled verifies the invariants of a monitor leaving the free list.
func checkPooled(m *Mon) {
	if !m.pooled || m.refs != 0 || !m.collected || m.inExact {
		panic("monitor: free-list monitor in impossible state")
	}
	if m.state != nil || m.lastSym != -0x7001 {
		panic("monitor: free-list monitor was mutated while pooled")
	}
}
