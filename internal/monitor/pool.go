package monitor

import "rvgo/internal/arena"

// Arena poisoning: under race builds (the -race test suite) a monitor
// record entering the arena free list is poisoned and one leaving it is
// verified, so a straggling dangling pointer that mutated a freed record
// fails loudly at the recycle point even if it dodged the handle
// generation check. poolCheck is a build-tag constant (see pool_race.go /
// pool_norace.go); in normal builds the checks are never installed and the
// arena's poison/verify hooks stay nil.

// poisonState is an out-of-range logic state word: any graph step through
// it indexes far outside Next and panics attributably.
const poisonState uint32 = 0xDEAD7001

// poisonMon scrambles a freed monitor record so any mutation before reuse
// is detectable, and any use crashes: the state word is out of range for
// every state graph, and the sentinel symbol makes the wreckage
// attributable in the panic.
func poisonMon(m *Mon) {
	m.state = poisonState
	m.lastSym = -0x7001 // "pooled" sentinel
	m.instH = arena.Nil
	m.refs = -1
}

// verifyMon asserts the poison is intact on a record leaving the free
// list.
func verifyMon(m *Mon) {
	if m.state != poisonState || m.lastSym != -0x7001 || !m.instH.IsNil() || m.refs != -1 {
		panic("monitor: free-list monitor was mutated while pooled")
	}
}
