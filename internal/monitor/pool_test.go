package monitor_test

import (
	"fmt"
	"testing"

	"rvgo/internal/heap"
	"rvgo/internal/monitor"
	"rvgo/internal/param"
)

// churnTrace drives an engine through generations of short-lived iterators:
// each generation creates an iterator on a long-lived collection, steps it,
// then frees it — the coenable GC flags and collects its monitor, and the
// periodic sweep recycles it into the free list for the next generation.
func churnTrace(t *testing.T, eng *monitor.Engine, h *heap.Heap, generations int) {
	t.Helper()
	c := h.Alloc("c")
	for g := 0; g < generations; g++ {
		it := h.Alloc(fmt.Sprintf("i%d", g))
		eng.Dispatch(symCreate, param.Empty().Bind(pC, c).Bind(pI, it))
		eng.Dispatch(symNext, param.Empty().Bind(pI, it))
		h.Free(it)
		// Touch the engine so the death is observed and swept.
		eng.Dispatch(symUpdate, param.Empty().Bind(pC, c))
	}
	eng.Flush()
}

// TestMonitorPoolRecycles: collected monitors come back out of the free
// list — the coenable GC's garbage becomes the allocator — and the engine
// holds far fewer interned instances than it saw, because the intern table
// is swept with the tombstones.
func TestMonitorPoolRecycles(t *testing.T) {
	spec := unsafeIterSpec(t)
	eng, err := monitor.New(spec, monitor.Options{
		GC: monitor.GCCoenable, Creation: monitor.CreateEnable, SweepInterval: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := heap.New()
	const generations = 200
	churnTrace(t, eng, h, generations)

	st := eng.Stats()
	if st.Created < generations {
		t.Fatalf("Created = %d, want >= %d", st.Created, generations)
	}
	recycled, reused := eng.PoolStats()
	if recycled == 0 {
		t.Fatalf("no monitors recycled despite %d collected", st.Collected)
	}
	if reused == 0 {
		t.Fatal("no creations served from the free list")
	}
	if reused > st.Created {
		t.Fatalf("reused %d > created %d", reused, st.Created)
	}
	// The intern table must not accumulate one entry per dead generation.
	if n := eng.InternedInstances(); n > generations/2 {
		t.Fatalf("intern table holds %d instances after churn of %d", n, generations)
	}
}

// TestPooledEngineMatchesFreshCounters: a churn-heavy run has identical
// settled counters and verdicts whether monitors come from the pool or
// fresh allocations — pooling is invisible to the monitoring semantics.
// (The fresh-allocation engine is simulated by an identical run: pooling is
// deterministic, so the real assertion is against the reference algorithm
// in the engine_test oracle suites; here we pin determinism.)
func TestPooledEngineMatchesFreshCounters(t *testing.T) {
	run := func() (monitor.Stats, []verdictRec) {
		spec := unsafeIterSpec(t)
		var got []verdictRec
		eng, err := monitor.New(spec, monitor.Options{
			GC: monitor.GCCoenable, Creation: monitor.CreateEnable, SweepInterval: 4,
			OnVerdict: func(v monitor.Verdict) {
				got = append(got, verdictRec{key: v.Inst.Key(), cat: v.Cat})
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		h := heap.New()
		churnTrace(t, eng, h, 100)
		return eng.Stats(), got
	}
	s1, v1 := run()
	s2, v2 := run()
	if s1 != s2 {
		t.Fatalf("counters diverge across identical runs:\n%+v\n%+v", s1, s2)
	}
	if d := diffVerdicts(v1, v2); d != "" {
		t.Fatalf("verdicts diverge: %s", d)
	}
}
