//go:build race

package monitor

// poolCheck enables monitor free-list poisoning under race builds.
const poolCheck = true
