package monitor_test

import (
	"fmt"
	"math/rand"
	"testing"

	"rvgo/internal/ere"
	"rvgo/internal/heap"
	"rvgo/internal/logic"
	"rvgo/internal/monitor"
	"rvgo/internal/param"
	"rvgo/internal/slicing"
)

const (
	pC = 0
	pI = 1
)

const (
	symCreate = 0
	symUpdate = 1
	symNext   = 2
)

// unsafeIterSpec builds the UNSAFEITER spec of Figure 3.
func unsafeIterSpec(t testing.TB) *monitor.Spec {
	t.Helper()
	alphabet := []string{"create", "update", "next"}
	bp, err := ere.Compile("update* create next* update+ next", alphabet)
	if err != nil {
		t.Fatal(err)
	}
	s := &monitor.Spec{
		Name:   "UnsafeIter",
		Params: []string{"c", "i"},
		Events: []monitor.EventDef{
			{Name: "create", Params: param.SetOf(pC, pI)},
			{Name: "update", Params: param.SetOf(pC)},
			{Name: "next", Params: param.SetOf(pI)},
		},
		BP:   bp,
		Goal: []logic.Category{logic.Match},
	}
	if err := s.Analyze(); err != nil {
		t.Fatal(err)
	}
	return s
}

// hasNextSpec builds the HASNEXT FSM property of Figure 2 as an ERE
// equivalent for single-parameter testing.
func hasNextSpec(t testing.TB) *monitor.Spec {
	t.Helper()
	alphabet := []string{"hasnexttrue", "hasnextfalse", "next"}
	// Violation pattern: a next not immediately preceded by hasnexttrue.
	bp, err := ere.Compile(
		"(hasnexttrue | hasnextfalse | next)* (hasnextfalse | next) next", alphabet)
	if err != nil {
		t.Fatal(err)
	}
	s := &monitor.Spec{
		Name:   "HasNext",
		Params: []string{"i"},
		Events: []monitor.EventDef{
			{Name: "hasnexttrue", Params: param.SetOf(0)},
			{Name: "hasnextfalse", Params: param.SetOf(0)},
			{Name: "next", Params: param.SetOf(0)},
		},
		BP:   bp,
		Goal: []logic.Category{logic.Match},
	}
	if err := s.Analyze(); err != nil {
		t.Fatal(err)
	}
	return s
}

// randomTrace generates a random UNSAFEITER trace over nc collections and
// ni iterators. If fresh is true, iterators first appear at their create
// event (the well-formed shape real programs produce).
func randomTrace(rng *rand.Rand, h *heap.Heap, n, nc, ni int, fresh bool) []slicing.Event {
	cols := make([]*heap.Object, nc)
	for i := range cols {
		cols[i] = h.Alloc(fmt.Sprintf("c%d", i+1))
	}
	iters := make([]*heap.Object, ni)
	created := make([]bool, ni)
	for i := range iters {
		iters[i] = h.Alloc(fmt.Sprintf("i%d", i+1))
	}
	var tr []slicing.Event
	for len(tr) < n {
		c := cols[rng.Intn(nc)]
		it := rng.Intn(ni)
		switch rng.Intn(3) {
		case 0:
			tr = append(tr, slicing.Event{Sym: symUpdate, Inst: param.Empty().Bind(pC, c)})
		case 1:
			if fresh && created[it] {
				// Real programs create an iterator exactly once.
				continue
			}
			tr = append(tr, slicing.Event{
				Sym:  symCreate,
				Inst: param.Empty().Bind(pC, c).Bind(pI, iters[it]),
			})
			created[it] = true
		case 2:
			if fresh && !created[it] {
				continue
			}
			tr = append(tr, slicing.Event{Sym: symNext, Inst: param.Empty().Bind(pI, iters[it])})
		}
	}
	return tr
}

type verdictRec struct {
	key param.Key
	cat logic.Category
}

func runEngine(t testing.TB, spec *monitor.Spec, opts monitor.Options, tr []slicing.Event) ([]verdictRec, monitor.Stats) {
	t.Helper()
	var got []verdictRec
	opts.OnVerdict = func(v monitor.Verdict) {
		got = append(got, verdictRec{key: v.Inst.Key(), cat: v.Cat})
	}
	eng, err := monitor.New(spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range tr {
		eng.Dispatch(e.Sym, e.Inst)
	}
	eng.Flush()
	return got, eng.Stats()
}

func runReference(spec *monitor.Spec, tr []slicing.Event) []verdictRec {
	ref := slicing.New(spec.RuntimeBlueprint())
	var got []verdictRec
	for _, e := range tr {
		for _, up := range ref.Process(e) {
			if spec.IsGoal(up.Cat) {
				got = append(got, verdictRec{key: up.Inst.Key(), cat: up.Cat})
			}
		}
	}
	return got
}

func diffVerdicts(a, b []verdictRec) string {
	count := func(v []verdictRec) map[verdictRec]int {
		m := map[verdictRec]int{}
		for _, r := range v {
			m[r]++
		}
		return m
	}
	ca, cb := count(a), count(b)
	for r, n := range ca {
		if cb[r] != n {
			return fmt.Sprintf("verdict %v: %d vs %d", r, n, cb[r])
		}
	}
	for r, n := range cb {
		if ca[r] != n {
			return fmt.Sprintf("verdict %v: %d vs %d", r, ca[r], n)
		}
	}
	return ""
}

// TestEngineFullMatchesReference: the CreateFull engine is verdict-
// equivalent to the abstract algorithm of Figure 5 on random traces —
// including adversarial interleavings where iterators are seen before
// their create event.
func TestEngineFullMatchesReference(t *testing.T) {
	spec := unsafeIterSpec(t)
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		h := heap.New()
		tr := randomTrace(rng, h, 60, 2, 3, false)
		eng, _ := runEngine(t, spec, monitor.Options{GC: monitor.GCNone, Creation: monitor.CreateFull}, tr)
		ref := runReference(spec, tr)
		if d := diffVerdicts(eng, ref); d != "" {
			t.Fatalf("seed %d: engine(full) != reference: %s", seed, d)
		}
	}
}

// TestEngineEnableMatchesReferenceOnFreshTraces: with the fresh-object
// discipline real programs follow (an iterator's first event is its
// create), the enable-optimized engine is also verdict-equivalent.
func TestEngineEnableMatchesReferenceOnFreshTraces(t *testing.T) {
	spec := unsafeIterSpec(t)
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		h := heap.New()
		tr := randomTrace(rng, h, 60, 2, 3, true)
		eng, _ := runEngine(t, spec, monitor.Options{GC: monitor.GCNone, Creation: monitor.CreateEnable}, tr)
		ref := runReference(spec, tr)
		if d := diffVerdicts(eng, ref); d != "" {
			t.Fatalf("seed %d: engine(enable) != reference: %s", seed, d)
		}
	}
}

// TestEngineEnableSoundOnAdversarialTraces: on arbitrary interleavings the
// enable-optimized engine may skip monitors, but must never report a
// verdict the slicing semantics would not (soundness).
func TestEngineEnableSoundOnAdversarialTraces(t *testing.T) {
	spec := unsafeIterSpec(t)
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		h := heap.New()
		tr := randomTrace(rng, h, 80, 2, 3, false)
		eng, _ := runEngine(t, spec, monitor.Options{GC: monitor.GCNone, Creation: monitor.CreateEnable}, tr)
		ref := runReference(spec, tr)
		refCount := map[verdictRec]int{}
		for _, r := range ref {
			refCount[r]++
		}
		engCount := map[verdictRec]int{}
		for _, r := range eng {
			engCount[r]++
		}
		for r, n := range engCount {
			if refCount[r] < n {
				t.Fatalf("seed %d: engine(enable) reported %v %d times, reference only %d (unsound)",
					seed, r, n, refCount[r])
			}
		}
	}
}

// TestCoenableGCPreservesVerdicts: killing parameter objects mid-trace and
// enabling coenable GC must not change the verdict stream — Theorem 1 says
// flagged monitors could never have triggered. Three engines (no GC,
// JavaMOP all-dead GC, RV coenable GC) observe the same single pass of
// events and frees; events only ever mention live objects, as in a real
// program.
func TestCoenableGCPreservesVerdicts(t *testing.T) {
	spec := unsafeIterSpec(t)
	anyFlagged := false
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		h := heap.New()
		cols := []*heap.Object{h.Alloc("c1"), h.Alloc("c2")}
		var live []*heap.Object

		mk := func(gc monitor.GCPolicy, sink *[]verdictRec) *monitor.Engine {
			eng, err := monitor.New(spec, monitor.Options{
				GC: gc, Creation: monitor.CreateEnable, SweepInterval: 16,
				OnVerdict: func(v monitor.Verdict) {
					*sink = append(*sink, verdictRec{key: v.Inst.Key(), cat: v.Cat})
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			return eng
		}
		var gotNone, gotDead, gotCoen []verdictRec
		engines := []*monitor.Engine{
			mk(monitor.GCNone, &gotNone),
			mk(monitor.GCAllDead, &gotDead),
			mk(monitor.GCCoenable, &gotCoen),
		}
		emit := func(sym int, inst param.Instance) {
			for _, eng := range engines {
				eng.Dispatch(sym, inst)
			}
		}

		iterSeq := 0
		for n := 0; n < 150; n++ {
			switch rng.Intn(10) {
			case 0, 1:
				iterSeq++
				it := h.Alloc(fmt.Sprintf("i%d", iterSeq))
				live = append(live, it)
				c := cols[rng.Intn(len(cols))]
				emit(symCreate, param.Empty().Bind(pC, c).Bind(pI, it))
			case 2, 3, 4:
				emit(symUpdate, param.Empty().Bind(pC, cols[rng.Intn(len(cols))]))
			case 5, 6, 7:
				if len(live) == 0 {
					continue
				}
				emit(symNext, param.Empty().Bind(pI, live[rng.Intn(len(live))]))
			default:
				if len(live) == 0 {
					continue
				}
				k := rng.Intn(len(live))
				h.Free(live[k])
				live = append(live[:k], live[k+1:]...)
			}
		}
		for _, eng := range engines {
			eng.Flush()
		}
		if d := diffVerdicts(gotNone, gotCoen); d != "" {
			t.Fatalf("seed %d: coenable GC changed verdicts: %s", seed, d)
		}
		if d := diffVerdicts(gotNone, gotDead); d != "" {
			t.Fatalf("seed %d: all-dead GC changed verdicts: %s", seed, d)
		}
		if engines[2].Stats().Flagged > 0 {
			anyFlagged = true
		}
	}
	if !anyFlagged {
		t.Fatal("coenable GC never flagged a monitor across 40 random runs")
	}
}

// TestPaperScenario replays §1's motivating scenario: a long-lived
// Collection and a dead Iterator. JavaMOP-mode retains the ⟨c,i⟩ monitor;
// RV-mode flags and collects it.
func TestPaperScenario(t *testing.T) {
	spec := unsafeIterSpec(t)

	scenario := func(gc monitor.GCPolicy) monitor.Stats {
		h := heap.New()
		c := h.Alloc("c1")
		eng, err := monitor.New(spec, monitor.Options{GC: gc, Creation: monitor.CreateEnable, SweepInterval: 4})
		if err != nil {
			t.Fatal(err)
		}
		// Many iterators created and abandoned; collection lives forever.
		for k := 0; k < 50; k++ {
			it := h.Alloc(fmt.Sprintf("i%d", k))
			eng.Emit(symCreate, c, it)
			eng.Emit(symNext, it)
			h.Free(it)
			// Subsequent updates touch the ⟨c⟩-tree, triggering lazy
			// notification of dead iterators (Figure 7).
			eng.Emit(symUpdate, c)
		}
		eng.Flush()
		return eng.Stats()
	}

	rv := scenario(monitor.GCCoenable)
	mop := scenario(monitor.GCAllDead)

	if rv.Flagged == 0 || rv.Collected == 0 {
		t.Fatalf("RV mode must flag and collect dead-iterator monitors: %+v", rv)
	}
	if rv.Live >= mop.Live {
		t.Fatalf("RV must retain fewer monitors than JavaMOP mode: rv=%d mop=%d", rv.Live, mop.Live)
	}
	if mop.Flagged != 0 {
		t.Fatalf("JavaMOP mode must not flag monitors while the collection lives: %+v", mop)
	}
	// RV also avoids stepping dead monitors: update events fan out to fewer
	// instances.
	if rv.Steps >= mop.Steps {
		t.Fatalf("RV must take fewer base-monitor steps: rv=%d mop=%d", rv.Steps, mop.Steps)
	}
}

// TestHasNextSingleParam checks a single-parameter property end to end,
// including verdict positions.
func TestHasNextSingleParam(t *testing.T) {
	spec := hasNextSpec(t)
	h := heap.New()
	i1 := h.Alloc("i1")
	i2 := h.Alloc("i2")

	var verdicts []string
	eng, err := monitor.New(spec, monitor.Options{
		GC: monitor.GCCoenable, Creation: monitor.CreateEnable,
		OnVerdict: func(v monitor.Verdict) {
			verdicts = append(verdicts, v.Inst.Format(spec.Params))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	const (
		hnT = 0
		hnF = 1
		nxt = 2
	)
	eng.Emit(hnT, i1)
	eng.Emit(nxt, i1) // ok
	eng.Emit(hnT, i2)
	eng.Emit(nxt, i2) // ok
	eng.Emit(nxt, i2) // violation: next after next
	eng.Emit(hnF, i1)
	eng.Emit(nxt, i1) // violation: next after hasnextfalse

	if len(verdicts) != 2 {
		t.Fatalf("verdicts = %v, want two violations", verdicts)
	}
	if verdicts[0] != "<i=i2>" || verdicts[1] != "<i=i1>" {
		t.Fatalf("verdicts = %v", verdicts)
	}
}
