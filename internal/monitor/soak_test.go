// The soak tier is timing-based and million-scale; under the race detector
// it would take minutes and measure the detector, not the collector. The
// race suite covers the arena through the conformance and stress tests.

//go:build !race

package monitor_test

import (
	"math"
	"runtime"
	rtmetrics "runtime/metrics"
	"testing"

	"rvgo/internal/heap"
	"rvgo/internal/monitor"
)

// gcPauseTotal reads the cumulative stop-the-world pause time from the
// runtime's /gc/pauses histogram (bucket-midpoint approximation — exact
// totals are not exported, but the approximation is consistent between two
// reads, so deltas compare fairly).
func gcPauseTotal(t *testing.T) float64 {
	t.Helper()
	s := []rtmetrics.Sample{{Name: "/gc/pauses:seconds"}}
	rtmetrics.Read(s)
	if s[0].Value.Kind() != rtmetrics.KindFloat64Histogram {
		t.Fatalf("/gc/pauses:seconds kind = %v", s[0].Value.Kind())
	}
	h := s[0].Value.Float64Histogram()
	total := 0.0
	for i, count := range h.Counts {
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		if math.IsInf(lo, -1) {
			lo = hi
		}
		if math.IsInf(hi, 1) {
			hi = lo
		}
		total += float64(count) * (lo + hi) / 2
	}
	return total
}

// buildLiveMonitors creates an engine holding exactly n live monitors (one
// UNSAFEITER ⟨c,i⟩ slice per iterator, GCNone so nothing is reclaimed) and
// returns it with the simulated heap keeping the parameter objects alive.
func buildLiveMonitors(t *testing.T, n int) (*monitor.Engine, *heap.Heap) {
	t.Helper()
	eng, err := monitor.New(unsafeIterSpec(t), monitor.Options{
		GC:       monitor.GCNone,
		Creation: monitor.CreateEnable,
		// The soak population never dies; don't pay sweeps over it.
		SweepInterval: 1 << 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := heap.New()
	c := h.Alloc("c")
	for j := 0; j < n; j++ {
		eng.Emit(symCreate, c, h.Alloc(""))
	}
	return eng, h
}

// TestArenaScaleLiveMonitors is the scale/soak tier of the arena store
// (skipped under -short): a million live monitors must (a) be accounted
// exactly by the slab arena, (b) cost the host collector stop-the-world
// pauses that stay flat relative to a 10× smaller population — the store
// is noscan, so pause time must not scale with monitor count — and (c)
// vanish without a slab leak on Flush/Close.
func TestArenaScaleLiveMonitors(t *testing.T) {
	if testing.Short() {
		t.Skip("soak tier: skipped under -short")
	}

	const big = 1_000_000
	const small = big / 10

	// measure runs k forced collections against an engine holding n live
	// monitors and returns the added STW pause time.
	measure := func(n int) (pause float64, eng *monitor.Engine, h *heap.Heap) {
		eng, h = buildLiveMonitors(t, n)
		runtime.GC() // let the build's floating garbage clear
		before := gcPauseTotal(t)
		for i := 0; i < 5; i++ {
			runtime.GC()
		}
		return gcPauseTotal(t) - before, eng, h
	}

	smallPause, smallEng, _ := measure(small)
	smallEng.Close()

	bigPause, eng, hp := measure(big)
	_ = hp

	// (a) Arena occupancy is the engine's exact live count.
	st := eng.Stats()
	ast := eng.ArenaStats()
	if st.Created != big || st.Live != big {
		t.Fatalf("engine stats = %+v, want %d created and live", st, big)
	}
	if ast.Live != int(st.Live) {
		t.Fatalf("arena live %d != engine live %d", ast.Live, st.Live)
	}
	if occ := ast.Occupancy(); occ < 0.9 {
		t.Errorf("arena occupancy %.3f after pure growth, want ≥0.9 (slabs %d, cap %d)", occ, ast.Slabs, ast.Cap)
	}
	if ist := eng.InstanceArenaStats(); ist.Live < big {
		t.Errorf("instance arena live %d, want ≥%d (one interned instance per monitor)", ist.Live, big)
	}

	// (b) Host-GC pause contribution stays flat: 10× the live monitors may
	// not cost 10× the stop-the-world time. The bound is deliberately loose
	// (5× over a floored baseline) — the store being noscan makes the real
	// ratio ≈1, but CI schedulers add noise to any timing assertion.
	floor := 2e-3 // 2ms across 5 forced cycles
	if smallPause < floor {
		smallPause = floor
	}
	if bigPause > smallPause*5 {
		t.Errorf("STW pause grew with monitor count: %d mons -> %.2fms, %d mons -> %.2fms (>5x)",
			small, smallPause*1e3, big, bigPause*1e3)
	}
	t.Logf("STW pause over 5 forced GCs: %d mons = %.3fms, %d mons = %.3fms (slabs: %d)",
		small, smallPause*1e3, big, bigPause*1e3, ast.Slabs)

	// (c) Flush keeps the population (nothing is collectable under GCNone);
	// Close returns every slab to the host allocator.
	eng.Flush()
	if got := eng.ArenaStats().Live; got != big {
		t.Fatalf("Flush changed arena live to %d, want %d (GCNone reclaims nothing)", got, big)
	}
	eng.Close()
	if st := eng.ArenaStats(); st.Slabs != 0 || st.Live != 0 || st.Cap != 0 {
		t.Fatalf("slab leak after Close: %+v", st)
	}
	if st := eng.InstanceArenaStats(); st.Slabs != 0 || st.Live != 0 {
		t.Fatalf("instance slab leak after Close: %+v", st)
	}
}
