package monitor_test

import (
	"testing"

	"rvgo/internal/conformance"
	"rvgo/internal/monitor"
	"rvgo/internal/props"
)

// TestEngineConformance runs the backend-independent Runtime suite on the
// sequential engine.
func TestEngineConformance(t *testing.T) {
	conformance.RunEmitNamed(t, func(t *testing.T, prop string, onVerdict func(monitor.Verdict)) monitor.Runtime {
		spec, err := props.Build(prop)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := monitor.New(spec, monitor.Options{
			GC:        monitor.GCCoenable,
			Creation:  monitor.CreateEnable,
			OnVerdict: onVerdict,
		})
		if err != nil {
			t.Fatal(err)
		}
		return eng
	})
}
