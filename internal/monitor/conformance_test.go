package monitor_test

import (
	"testing"

	"rvgo/internal/conformance"
	"rvgo/internal/monitor"
	"rvgo/internal/props"
)

// engineFactory builds a sequential engine for the conformance suites.
func engineFactory(t *testing.T, prop string, onVerdict func(monitor.Verdict)) monitor.Runtime {
	return enginePolicyFactory(t, prop, monitor.GCCoenable, onVerdict)
}

// enginePolicyFactory builds a sequential engine under an explicit GC
// policy for the oracle matrix.
func enginePolicyFactory(t *testing.T, prop string, gc monitor.GCPolicy, onVerdict func(monitor.Verdict)) monitor.Runtime {
	spec, err := props.Build(prop)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := monitor.New(spec, monitor.Options{
		GC:        gc,
		Creation:  monitor.CreateEnable,
		OnVerdict: onVerdict,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestEngineConformance runs the backend-independent Runtime suite on the
// sequential engine.
func TestEngineConformance(t *testing.T) {
	conformance.RunEmitNamed(t, engineFactory)
}

// TestEngineFreeConformance runs the death-positioning suite (Free and
// FreeAsync) on the sequential engine.
func TestEngineFreeConformance(t *testing.T) {
	conformance.RunFree(t, engineFactory)
}

// TestEngineArenaOracle replays the avrora trace under every GC policy on
// a fresh engine and compares it against a reference engine run of the
// same trace — the arena-store engine must be observationally identical
// to itself across independent runs (determinism of the slab/handle
// store) before the cross-backend cells mean anything.
func TestEngineArenaOracle(t *testing.T) {
	conformance.RunArenaOracle(t, enginePolicyFactory)
}

// TestEngineAvoidanceOracle replays the avrora trace under every GC policy
// × avoidance mode and holds verdicts and settled counters against the
// unguarded engine (bit-identical in audit mode; verdict-identical with
// the Created + Avoided invariant in enforce mode).
func TestEngineAvoidanceOracle(t *testing.T) {
	conformance.RunAvoidanceOracle(t, func(t *testing.T, prop string, gc monitor.GCPolicy, avoid monitor.AvoidMode, onVerdict func(monitor.Verdict)) monitor.Runtime {
		spec, err := props.Build(prop)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := monitor.New(spec, monitor.Options{
			GC:        gc,
			Creation:  monitor.CreateEnable,
			Avoid:     avoid,
			OnVerdict: onVerdict,
		})
		if err != nil {
			t.Fatal(err)
		}
		return eng
	})
}

// TestEngineAvoidanceEnforcement proves the guard-firing enforcement
// paths — full-strategy static guards and profile-guided guards — on the
// sequential engine, the only backend where those configurations exist.
func TestEngineAvoidanceEnforcement(t *testing.T) {
	conformance.RunAvoidanceEnforcement(t)
}
