package monitor_test

import (
	"testing"

	"rvgo/internal/conformance"
	"rvgo/internal/monitor"
	"rvgo/internal/props"
)

// engineFactory builds a sequential engine for the conformance suites.
func engineFactory(t *testing.T, prop string, onVerdict func(monitor.Verdict)) monitor.Runtime {
	spec, err := props.Build(prop)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := monitor.New(spec, monitor.Options{
		GC:        monitor.GCCoenable,
		Creation:  monitor.CreateEnable,
		OnVerdict: onVerdict,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestEngineConformance runs the backend-independent Runtime suite on the
// sequential engine.
func TestEngineConformance(t *testing.T) {
	conformance.RunEmitNamed(t, engineFactory)
}

// TestEngineFreeConformance runs the death-positioning suite (Free and
// FreeAsync) on the sequential engine.
func TestEngineFreeConformance(t *testing.T) {
	conformance.RunFree(t, engineFactory)
}
