// Package wire is the binary session protocol between a remote monitored
// program (package client) and the monitoring server (internal/server).
//
// The paper's engine observes object death through weak references — a
// channel that does not exist across a network. The protocol therefore
// makes garbage an explicit trace event: a client names its parameter
// objects with small integer IDs, emits events over those IDs, and sends a
// Free message when an object dies on its side. The server materializes
// one simulated-heap object per remote ID and frees it on Free, which is
// exactly the death signal the coenable-set GC consumes; monitor lifetime
// on the server is governed entirely by these protocol-level deaths.
// Death is final: a remote ID must never be reused after its Free — an
// event naming a freed ID is a session error, not a reallocation.
//
// Framing: every message is one frame — a uvarint payload length followed
// by the payload; the payload's first byte is the message type. Integers
// are unsigned varints (two-byte frames for the common small-ID events),
// strings are uvarint-length-prefixed UTF-8. A Writer buffers frames until
// Flush, so event streams pipeline; a Reader decodes one frame at a time.
//
// Session shape:
//
//	client                         server
//	Hello{spec, gc, shards} ───────▶  compile spec, build Runtime
//	       ◀─────── HelloAck{session, window, event defs}
//	Event* Free* Barrier/Flush/StatsReq ───▶ (pipelined)
//	       ◀─────── Verdict* Credit* BarrierAck/FlushAck/Stats
//	Bye ───────────▶ drain, final flush
//	       ◀─────── ByeAck{final stats}
//
// Flow control is credit-based: HelloAck grants the client a window of
// event credits and every Event spends one; the server replenishes with
// Credit messages as the monitoring runtime actually accepts events, so a
// backend refusing shard.TryDispatch withholds credit and stalls the
// producer at the protocol level rather than in an unbounded server
// queue. Free, Barrier, Flush, StatsReq and Bye are credit-exempt: a
// death or a drain must never be blocked behind the window it is meant to
// help clear.
//
// # Cluster sessions
//
// A cluster router (internal/cluster) terminates ordinary sessions from
// clients and opens one downstream session per slot (virtual shard) on the
// rvserve nodes it manages. Three rules extend the protocol there:
//
//   - Node sessions are marked: the router sends a NodeHello frame before
//     the ordinary Hello. Only sessions so marked may use the handoff
//     frames below; on any other session they are a protocol error.
//
//   - Broadcast credit is all-or-nothing. An event that does not bind the
//     pivot parameter must reach every slot, and the router writes it to
//     none of them until it holds one event credit from each. A single
//     slot with an empty window therefore withholds the whole broadcast —
//     and, because the router's ingest stalls, withholds the upstream
//     client's credit end-to-end. This mirrors the in-process sharded
//     runtime, whose TryDispatch refuses a broadcast unless every shard
//     mailbox has room; partial acceptance would let slots observe
//     different event prefixes at a barrier. See the all-or-nothing
//     broadcast test in internal/cluster.
//
//   - Handoff is journal replay. Moving a slot to another node opens a
//     fresh marked session there and replays the slot's event/free journal
//     between HandoffBegin and HandoffEnd. The engine's step and creation
//     decisions are a pure function of the per-slice sequence, so the
//     replay reconstructs the donor's monitor state and counters exactly.
//     HandoffBegin carries Skip, the number of verdicts the upstream
//     client already received from the donor: the node suppresses that
//     many verdict forwards (the engine still counts them), then forwards
//     the rest — which after a crash is precisely the tail the dead donor
//     never delivered. HandoffEnd flushes the backend and is acknowledged
//     by HandoffAck with the settled counters, which the router checks
//     against the donor's ByeAck on a graceful move.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Version is the protocol version. A server refuses a Hello whose version
// it does not speak. Version 2 added Hello.Avoid and Stats.Avoided.
const Version = 2

// MaxFrame bounds a frame payload; a peer announcing a larger frame is
// corrupt or hostile and the connection is dropped.
const MaxFrame = 1 << 20

// Message types. Client→server and server→client types share one space.
const (
	THello      byte = 1  // c→s: open a session
	THelloAck   byte = 2  // s→c: session accepted
	TEvent      byte = 3  // c→s: parametric event over remote object IDs
	TFree       byte = 4  // c→s: remote objects died
	TBarrier    byte = 5  // c→s: request a processing barrier
	TBarrierAck byte = 6  // s→c: barrier reached
	TFlush      byte = 7  // c→s: request a full expunge/compaction pass
	TFlushAck   byte = 8  // s→c: flush done
	TStatsReq   byte = 9  // c→s: request a counter snapshot
	TStats      byte = 10 // s→c: counter snapshot
	TVerdict    byte = 11 // s→c: a goal verdict was reached
	TCredit     byte = 12 // s→c: replenish the event window
	TError      byte = 13 // s→c: fatal session error (connection closes)
	TBye        byte = 14 // c→s: orderly shutdown
	TByeAck     byte = 15 // s→c: final stats, session closed

	// Cluster-tier types (see "Cluster sessions" above). All four are
	// valid only on router↔node links.
	TNodeHello    byte = 16 // r→n: mark a router-owned slot session (precedes Hello)
	THandoffBegin byte = 17 // r→n: slot journal replay follows; suppress Skip verdict forwards
	THandoffEnd   byte = 18 // r→n: replay complete; flush and ack with settled stats
	THandoffAck   byte = 19 // n→r: handoff settled, counters attached
)

// SpecKind says how Hello.Spec is to be interpreted.
const (
	// SpecProp names a property from the server's built-in library
	// (internal/props).
	SpecProp byte = 0
	// SpecSource carries .rv specification source text compiled by the
	// server (internal/spec); it must compile to exactly one property.
	SpecSource byte = 1
)

// Hello opens a session: the spec to monitor, the GC policy and creation
// strategy for the session's engine(s), and the backend shape.
type Hello struct {
	Version  uint64
	SpecKind byte
	// Spec is a property name (SpecProp) or .rv source (SpecSource).
	Spec string
	// GC, Creation and Avoid use monitor.GCPolicy /
	// monitor.CreationStrategy / monitor.AvoidMode values.
	GC       byte
	Creation byte
	Avoid    byte
	// Shards selects the session backend: 1 = sequential engine, >1 = the
	// sharded runtime with that many workers. 0 lets the server choose.
	Shards uint64
	// Window is the requested event-credit window (0 = server default).
	Window uint64
}

// EventDef mirrors monitor.EventDef on the wire: the event name and the
// parameter-set bitmask D(e).
type EventDef struct {
	Name   string
	Params uint64
}

// HelloAck accepts a session. Events echoes the compiled spec's event
// list so the client can verify its local spec matches the server's.
type HelloAck struct {
	Session  uint64
	Window   uint64 // granted credit window
	SpecName string
	Params   []string
	Events   []EventDef
}

// Event is one parametric event: the symbol index and the remote IDs
// binding D(e) in ascending parameter-index order.
type Event struct {
	Sym int
	IDs []uint64
}

// Free reports the death of remote objects, in death order. The server
// barriers its runtime before applying the deaths, so every event sent
// before the Free observes the objects alive.
type Free struct {
	IDs []uint64
}

// Sync is the shared shape of Barrier/BarrierAck/Flush/FlushAck/StatsReq:
// a client-chosen token echoed in the matching ack.
type Sync struct {
	Token uint64
}

// Stats is a counter snapshot (monitor.Stats on the wire).
type Stats struct {
	Token        uint64
	Events       uint64
	Created      uint64
	Flagged      uint64
	Collected    uint64
	GoalVerdicts uint64
	Steps        uint64
	Avoided      uint64
	Live         int64
	PeakLive     int64
}

// Verdict pushes one goal verdict: the triggering symbol, the verdict
// category, and the instance as a parameter bitmask plus the remote IDs of
// the bound objects in ascending parameter order. The client maps IDs back
// to its own refs; labels never cross the wire.
type Verdict struct {
	Sym  int
	Cat  string
	Mask uint64
	IDs  []uint64
}

// Credit replenishes the client's event window by N.
type Credit struct {
	N uint64
}

// Error is a fatal session error; the server closes the connection after
// sending it.
type Error struct {
	Msg string
}

// Bye requests orderly shutdown; ByeAck carries the final settled stats.
type ByeAck struct {
	Stats Stats
}

// NodeHello marks a session as router-owned, naming the router instance
// and the slot (virtual shard) whose slices the session will carry. It is
// sent before the ordinary Hello and is what authorizes the handoff
// frames on this session.
type NodeHello struct {
	Router uint64
	Slot   uint64
}

// HandoffBegin opens a slot-handoff bracket: the frames that follow, up
// to HandoffEnd, replay the slot's journal. Skip is the number of verdicts
// the upstream client already received from the slot's previous owner; the
// node suppresses that many verdict forwards (its engine still counts
// them) and forwards the rest.
type HandoffBegin struct {
	Skip uint64
}

// Writer encodes frames onto a buffered stream. Frames accumulate in the
// buffer (pipelining) until Flush; the buffer also drains to the
// connection whenever it fills, so sustained event streams do not require
// explicit flushes. Writer is not safe for concurrent use.
type Writer struct {
	bw  *bufio.Writer
	buf []byte
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriterSize(w, 32*1024)}
}

// Flush drains buffered frames to the underlying stream.
func (w *Writer) Flush() error { return w.bw.Flush() }

func (w *Writer) frame() { w.buf = w.buf[:0] }

func (w *Writer) u(v uint64)   { w.buf = binary.AppendUvarint(w.buf, v) }
func (w *Writer) b(v byte)     { w.buf = append(w.buf, v) }
func (w *Writer) i(v int64)    { w.buf = binary.AppendVarint(w.buf, v) }
func (w *Writer) s(str string) { w.u(uint64(len(str))); w.buf = append(w.buf, str...) }

func (w *Writer) emit() error {
	if len(w.buf) > MaxFrame {
		return fmt.Errorf("wire: frame of %d bytes exceeds MaxFrame", len(w.buf))
	}
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(w.buf)))
	if _, err := w.bw.Write(hdr[:n]); err != nil {
		return err
	}
	_, err := w.bw.Write(w.buf)
	return err
}

// WriteHello encodes a Hello frame.
func (w *Writer) WriteHello(h Hello) error {
	w.frame()
	w.b(THello)
	w.u(h.Version)
	w.b(h.SpecKind)
	w.s(h.Spec)
	w.b(h.GC)
	w.b(h.Creation)
	w.b(h.Avoid)
	w.u(h.Shards)
	w.u(h.Window)
	return w.emit()
}

// WriteHelloAck encodes a HelloAck frame.
func (w *Writer) WriteHelloAck(a HelloAck) error {
	w.frame()
	w.b(THelloAck)
	w.u(a.Session)
	w.u(a.Window)
	w.s(a.SpecName)
	w.u(uint64(len(a.Params)))
	for _, p := range a.Params {
		w.s(p)
	}
	w.u(uint64(len(a.Events)))
	for _, e := range a.Events {
		w.s(e.Name)
		w.u(e.Params)
	}
	return w.emit()
}

// WriteEvent encodes an Event frame.
func (w *Writer) WriteEvent(sym int, ids []uint64) error {
	w.frame()
	w.b(TEvent)
	w.u(uint64(sym))
	w.u(uint64(len(ids)))
	for _, id := range ids {
		w.u(id)
	}
	return w.emit()
}

// WriteFree encodes a Free frame.
func (w *Writer) WriteFree(ids []uint64) error {
	w.frame()
	w.b(TFree)
	w.u(uint64(len(ids)))
	for _, id := range ids {
		w.u(id)
	}
	return w.emit()
}

// WriteSync encodes one of the token-only frame types (TBarrier,
// TBarrierAck, TFlush, TFlushAck, TStatsReq, THandoffEnd; TCredit uses
// WriteCredit).
func (w *Writer) WriteSync(t byte, token uint64) error {
	w.frame()
	w.b(t)
	w.u(token)
	return w.emit()
}

// WriteStats encodes a Stats frame.
func (w *Writer) WriteStats(s Stats) error {
	w.frame()
	w.b(TStats)
	w.writeStatsBody(s)
	return w.emit()
}

func (w *Writer) writeStatsBody(s Stats) {
	w.u(s.Token)
	w.u(s.Events)
	w.u(s.Created)
	w.u(s.Flagged)
	w.u(s.Collected)
	w.u(s.GoalVerdicts)
	w.u(s.Steps)
	w.u(s.Avoided)
	w.i(s.Live)
	w.i(s.PeakLive)
}

// WriteVerdict encodes a Verdict frame.
func (w *Writer) WriteVerdict(v Verdict) error {
	w.frame()
	w.b(TVerdict)
	w.u(uint64(v.Sym))
	w.s(v.Cat)
	w.u(v.Mask)
	for _, id := range v.IDs {
		w.u(id)
	}
	return w.emit()
}

// WriteCredit encodes a Credit frame.
func (w *Writer) WriteCredit(n uint64) error {
	w.frame()
	w.b(TCredit)
	w.u(n)
	return w.emit()
}

// WriteError encodes an Error frame.
func (w *Writer) WriteError(msg string) error {
	w.frame()
	w.b(TError)
	w.s(msg)
	return w.emit()
}

// WriteBye encodes a Bye frame.
func (w *Writer) WriteBye() error {
	w.frame()
	w.b(TBye)
	return w.emit()
}

// WriteByeAck encodes a ByeAck frame.
func (w *Writer) WriteByeAck(a ByeAck) error {
	w.frame()
	w.b(TByeAck)
	w.writeStatsBody(a.Stats)
	return w.emit()
}

// WriteNodeHello encodes a NodeHello frame.
func (w *Writer) WriteNodeHello(h NodeHello) error {
	w.frame()
	w.b(TNodeHello)
	w.u(h.Router)
	w.u(h.Slot)
	return w.emit()
}

// WriteHandoffBegin encodes a HandoffBegin frame.
func (w *Writer) WriteHandoffBegin(h HandoffBegin) error {
	w.frame()
	w.b(THandoffBegin)
	w.u(h.Skip)
	return w.emit()
}

// WriteHandoffAck encodes a HandoffAck frame (the settled counters of a
// completed handoff; Token echoes the HandoffEnd's).
func (w *Writer) WriteHandoffAck(s Stats) error {
	w.frame()
	w.b(THandoffAck)
	w.writeStatsBody(s)
	return w.emit()
}

// Msg is one decoded frame: Type plus the fields of the matching struct.
// A single sum type keeps the hot read loop allocation-light (the decoder
// reuses one Msg and its ID slice across frames when the caller permits).
type Msg struct {
	Type         byte
	Hello        Hello
	HelloAck     HelloAck
	Event        Event
	Free         Free
	Sync         Sync
	Stats        Stats
	Verdict      Verdict
	Credit       Credit
	Error        Error
	NodeHello    NodeHello
	HandoffBegin HandoffBegin
}

// Reader decodes frames from a buffered stream.
type Reader struct {
	br  *bufio.Reader
	buf []byte
	pos int
	ids []uint64 // reused backing for Event/Free/Verdict IDs
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, 32*1024)}
}

// FrameBuffered reports whether a complete frame is already sitting in the
// read buffer, so the next Next call will return without blocking on the
// connection. The server's ingest loop uses it to batch-process pipelined
// event frames — decode and dispatch while data is buffered, flush credit
// only when the stream would block — so a burst of N events costs one
// credit write instead of N. A corrupt length prefix reports true: Next
// will surface the error without blocking.
func (r *Reader) FrameBuffered() bool {
	n := r.br.Buffered()
	if n == 0 {
		return false
	}
	k := n
	if k > binary.MaxVarintLen64 {
		k = binary.MaxVarintLen64
	}
	peek, err := r.br.Peek(k)
	if err != nil {
		return false
	}
	flen, vn := binary.Uvarint(peek)
	if vn == 0 {
		return false // length varint incomplete
	}
	if vn < 0 {
		return true // overlong varint: let Next report the corruption
	}
	return uint64(n-vn) >= flen
}

// ErrFrameTooLarge reports a frame exceeding MaxFrame.
var ErrFrameTooLarge = errors.New("wire: frame exceeds MaxFrame")

var errShortFrame = errors.New("wire: truncated frame")

// Next reads and decodes one frame into msg. The Event/Free/Verdict ID
// slices and all strings are valid until the following Next call. Returns
// io.EOF at a clean end of stream.
func (r *Reader) Next(msg *Msg) error {
	n, err := binary.ReadUvarint(r.br)
	if err != nil {
		return err
	}
	if n > MaxFrame {
		return ErrFrameTooLarge
	}
	if uint64(cap(r.buf)) < n {
		r.buf = make([]byte, n)
	}
	r.buf = r.buf[:n]
	if _, err := io.ReadFull(r.br, r.buf); err != nil {
		if err == io.EOF {
			return io.ErrUnexpectedEOF
		}
		return err
	}
	r.pos = 0
	r.ids = r.ids[:0]
	t, err := r.rb()
	if err != nil {
		return err
	}
	*msg = Msg{Type: t}
	switch t {
	case THello:
		return r.decodeHello(&msg.Hello)
	case THelloAck:
		return r.decodeHelloAck(&msg.HelloAck)
	case TEvent:
		sym, err := r.ru()
		if err != nil {
			return err
		}
		if sym > math.MaxInt32 {
			return fmt.Errorf("wire: event symbol %d out of range", sym)
		}
		msg.Event.Sym = int(sym)
		msg.Event.IDs, err = r.ruSlice()
		return err
	case TFree:
		var err error
		msg.Free.IDs, err = r.ruSlice()
		return err
	case TBarrier, TBarrierAck, TFlush, TFlushAck, TStatsReq:
		tok, err := r.ru()
		msg.Sync.Token = tok
		return err
	case TStats:
		return r.decodeStats(&msg.Stats)
	case TVerdict:
		return r.decodeVerdict(&msg.Verdict)
	case TCredit:
		n, err := r.ru()
		msg.Credit.N = n
		return err
	case TError:
		s, err := r.rs()
		msg.Error.Msg = s
		return err
	case TBye, TByeAck:
		if t == TByeAck {
			return r.decodeStats(&msg.Stats)
		}
		return nil
	case TNodeHello:
		var err error
		if msg.NodeHello.Router, err = r.ru(); err != nil {
			return err
		}
		msg.NodeHello.Slot, err = r.ru()
		return err
	case THandoffBegin:
		skip, err := r.ru()
		msg.HandoffBegin.Skip = skip
		return err
	case THandoffEnd:
		tok, err := r.ru()
		msg.Sync.Token = tok
		return err
	case THandoffAck:
		return r.decodeStats(&msg.Stats)
	default:
		return fmt.Errorf("wire: unknown message type %d", t)
	}
}

func (r *Reader) rb() (byte, error) {
	if r.pos >= len(r.buf) {
		return 0, errShortFrame
	}
	b := r.buf[r.pos]
	r.pos++
	return b, nil
}

func (r *Reader) ru() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		return 0, errShortFrame
	}
	r.pos += n
	return v, nil
}

func (r *Reader) ri() (int64, error) {
	v, n := binary.Varint(r.buf[r.pos:])
	if n <= 0 {
		return 0, errShortFrame
	}
	r.pos += n
	return v, nil
}

func (r *Reader) rs() (string, error) {
	n, err := r.ru()
	if err != nil {
		return "", err
	}
	if uint64(len(r.buf)-r.pos) < n {
		return "", errShortFrame
	}
	s := string(r.buf[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return s, nil
}

// ruSlice reads a count-prefixed uvarint slice into the reader's reused
// backing array.
func (r *Reader) ruSlice() ([]uint64, error) {
	n, err := r.ru()
	if err != nil {
		return nil, err
	}
	if uint64(len(r.buf)-r.pos) < n { // each id is ≥ 1 byte
		return nil, errShortFrame
	}
	start := len(r.ids)
	for k := uint64(0); k < n; k++ {
		id, err := r.ru()
		if err != nil {
			return nil, err
		}
		r.ids = append(r.ids, id)
	}
	return r.ids[start:], nil
}

func (r *Reader) decodeHello(h *Hello) error {
	var err error
	if h.Version, err = r.ru(); err != nil {
		return err
	}
	if h.SpecKind, err = r.rb(); err != nil {
		return err
	}
	if h.Spec, err = r.rs(); err != nil {
		return err
	}
	if h.GC, err = r.rb(); err != nil {
		return err
	}
	if h.Creation, err = r.rb(); err != nil {
		return err
	}
	if h.Avoid, err = r.rb(); err != nil {
		return err
	}
	if h.Shards, err = r.ru(); err != nil {
		return err
	}
	h.Window, err = r.ru()
	return err
}

func (r *Reader) decodeHelloAck(a *HelloAck) error {
	var err error
	if a.Session, err = r.ru(); err != nil {
		return err
	}
	if a.Window, err = r.ru(); err != nil {
		return err
	}
	if a.SpecName, err = r.rs(); err != nil {
		return err
	}
	np, err := r.ru()
	if err != nil {
		return err
	}
	if uint64(len(r.buf)-r.pos) < np {
		return errShortFrame
	}
	a.Params = make([]string, np)
	for i := range a.Params {
		if a.Params[i], err = r.rs(); err != nil {
			return err
		}
	}
	ne, err := r.ru()
	if err != nil {
		return err
	}
	if uint64(len(r.buf)-r.pos) < ne {
		return errShortFrame
	}
	a.Events = make([]EventDef, ne)
	for i := range a.Events {
		if a.Events[i].Name, err = r.rs(); err != nil {
			return err
		}
		if a.Events[i].Params, err = r.ru(); err != nil {
			return err
		}
	}
	return nil
}

func (r *Reader) decodeStats(s *Stats) error {
	var err error
	if s.Token, err = r.ru(); err != nil {
		return err
	}
	if s.Events, err = r.ru(); err != nil {
		return err
	}
	if s.Created, err = r.ru(); err != nil {
		return err
	}
	if s.Flagged, err = r.ru(); err != nil {
		return err
	}
	if s.Collected, err = r.ru(); err != nil {
		return err
	}
	if s.GoalVerdicts, err = r.ru(); err != nil {
		return err
	}
	if s.Steps, err = r.ru(); err != nil {
		return err
	}
	if s.Avoided, err = r.ru(); err != nil {
		return err
	}
	if s.Live, err = r.ri(); err != nil {
		return err
	}
	s.PeakLive, err = r.ri()
	return err
}

func (r *Reader) decodeVerdict(v *Verdict) error {
	sym, err := r.ru()
	if err != nil {
		return err
	}
	if sym > math.MaxInt32 {
		return fmt.Errorf("wire: verdict symbol %d out of range", sym)
	}
	v.Sym = int(sym)
	if v.Cat, err = r.rs(); err != nil {
		return err
	}
	if v.Mask, err = r.ru(); err != nil {
		return err
	}
	n := popcount(v.Mask)
	start := len(r.ids)
	for k := 0; k < n; k++ {
		id, err := r.ru()
		if err != nil {
			return err
		}
		r.ids = append(r.ids, id)
	}
	v.IDs = r.ids[start:]
	return nil
}

func popcount(v uint64) int {
	n := 0
	for ; v != 0; v &= v - 1 {
		n++
	}
	return n
}
