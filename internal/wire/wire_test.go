package wire

import (
	"bytes"
	"io"
	"reflect"
	"testing"
)

// encodeAll writes one frame of every message type and returns the stream.
func encodeAll(t testing.TB) ([]byte, []Msg) {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	want := []Msg{
		{Type: THello, Hello: Hello{Version: Version, SpecKind: SpecProp, Spec: "HasNext", GC: 2, Creation: 0, Shards: 4, Window: 1024}},
		{Type: THello, Hello: Hello{Version: Version, SpecKind: SpecSource, Spec: "property X {...}", GC: 0, Creation: 1}},
		{Type: THelloAck, HelloAck: HelloAck{
			Session: 7, Window: 512, SpecName: "UnsafeIter",
			Params: []string{"c", "i"},
			Events: []EventDef{{Name: "create", Params: 3}, {Name: "update", Params: 1}, {Name: "next", Params: 2}},
		}},
		{Type: TEvent, Event: Event{Sym: 2, IDs: []uint64{5}}},
		{Type: TEvent, Event: Event{Sym: 0, IDs: []uint64{1, 300, 1 << 40}}},
		{Type: TEvent, Event: Event{Sym: 1, IDs: []uint64{}}},
		{Type: TFree, Free: Free{IDs: []uint64{9, 10, 11}}},
		{Type: TFree, Free: Free{IDs: []uint64{}}},
		{Type: TBarrier, Sync: Sync{Token: 42}},
		{Type: TBarrierAck, Sync: Sync{Token: 42}},
		{Type: TFlush, Sync: Sync{Token: 1}},
		{Type: TFlushAck, Sync: Sync{Token: 1}},
		{Type: TStatsReq, Sync: Sync{Token: 99}},
		{Type: TStats, Stats: Stats{Token: 99, Events: 1e6, Created: 500, Flagged: 400, Collected: 390, GoalVerdicts: 3, Steps: 2e6, Live: 110, PeakLive: 240}},
		{Type: TStats, Stats: Stats{Live: -1, PeakLive: -5}},
		{Type: TVerdict, Verdict: Verdict{Sym: 1, Cat: "error", Mask: 0b101, IDs: []uint64{12, 77}}},
		{Type: TVerdict, Verdict: Verdict{Sym: 0, Cat: "match", Mask: 0, IDs: []uint64{}}},
		{Type: TCredit, Credit: Credit{N: 256}},
		{Type: TError, Error: Error{Msg: "unknown property \"Nope\""}},
		{Type: TBye},
		{Type: TByeAck, Stats: Stats{Events: 8, Created: 2, Live: 1, PeakLive: 2}},
		{Type: TNodeHello, NodeHello: NodeHello{Router: 3, Slot: 11}},
		{Type: THandoffBegin, HandoffBegin: HandoffBegin{Skip: 17}},
		{Type: THandoffBegin},
		{Type: THandoffEnd, Sync: Sync{Token: 5}},
		{Type: THandoffAck, Stats: Stats{Token: 5, Events: 120, Created: 9, Collected: 4, Steps: 240, Live: 5, PeakLive: 9}},
	}
	for _, m := range want {
		var err error
		switch m.Type {
		case THello:
			err = w.WriteHello(m.Hello)
		case THelloAck:
			err = w.WriteHelloAck(m.HelloAck)
		case TEvent:
			err = w.WriteEvent(m.Event.Sym, m.Event.IDs)
		case TFree:
			err = w.WriteFree(m.Free.IDs)
		case TBarrier, TBarrierAck, TFlush, TFlushAck, TStatsReq, THandoffEnd:
			err = w.WriteSync(m.Type, m.Sync.Token)
		case TStats:
			err = w.WriteStats(m.Stats)
		case TVerdict:
			err = w.WriteVerdict(m.Verdict)
		case TCredit:
			err = w.WriteCredit(m.Credit.N)
		case TError:
			err = w.WriteError(m.Error.Msg)
		case TBye:
			err = w.WriteBye()
		case TByeAck:
			err = w.WriteByeAck(ByeAck{Stats: m.Stats})
		case TNodeHello:
			err = w.WriteNodeHello(m.NodeHello)
		case THandoffBegin:
			err = w.WriteHandoffBegin(m.HandoffBegin)
		case THandoffAck:
			err = w.WriteHandoffAck(m.Stats)
		}
		if err != nil {
			t.Fatalf("encoding %d: %v", m.Type, err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), want
}

// TestRoundTrip encodes one frame of every message type and decodes the
// stream back, requiring exact equality field by field.
func TestRoundTrip(t *testing.T) {
	stream, want := encodeAll(t)
	r := NewReader(bytes.NewReader(stream))
	for i, exp := range want {
		var got Msg
		if err := r.Next(&got); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		// The reader reuses its ID backing; normalize empty vs nil for
		// comparison and copy out before the next frame overwrites it.
		got.Event.IDs = append([]uint64{}, got.Event.IDs...)
		got.Free.IDs = append([]uint64{}, got.Free.IDs...)
		got.Verdict.IDs = append([]uint64{}, got.Verdict.IDs...)
		if exp.Event.IDs == nil {
			exp.Event.IDs = []uint64{}
		}
		if exp.Free.IDs == nil {
			exp.Free.IDs = []uint64{}
		}
		if exp.Verdict.IDs == nil {
			exp.Verdict.IDs = []uint64{}
		}
		if !reflect.DeepEqual(got, exp) {
			t.Errorf("frame %d (type %d) round-trip:\n got %+v\nwant %+v", i, exp.Type, got, exp)
		}
	}
	var extra Msg
	if err := r.Next(&extra); err != io.EOF {
		t.Fatalf("after last frame: err = %v, want io.EOF", err)
	}
}

// TestTruncation: every proper prefix of a valid stream must produce a
// clean error (EOF/unexpected EOF/short frame), never a panic or a bogus
// decoded message beyond the cut.
func TestTruncation(t *testing.T) {
	stream, _ := encodeAll(t)
	for cut := 0; cut < len(stream); cut++ {
		r := NewReader(bytes.NewReader(stream[:cut]))
		var msg Msg
		for {
			if err := r.Next(&msg); err != nil {
				break // any error is fine; the loop must terminate
			}
		}
	}
}

// TestFrameTooLarge: an announced length beyond MaxFrame is refused
// without allocating the claimed amount.
func TestFrameTooLarge(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x7F}) // uvarint ≫ MaxFrame
	r := NewReader(&buf)
	var msg Msg
	if err := r.Next(&msg); err != ErrFrameTooLarge {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

// TestUnknownType: a frame with an unregistered type byte errors cleanly.
func TestUnknownType(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{1, 200}) // length 1, type 200
	r := NewReader(&buf)
	var msg Msg
	if err := r.Next(&msg); err == nil {
		t.Fatal("unknown type decoded without error")
	}
}

// TestReaderReuse: the reader's reused ID backing must hand out disjoint
// windows within one frame (an Event's IDs must survive until the next
// Next call).
func TestReaderReuse(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteEvent(1, []uint64{10, 20}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteEvent(2, []uint64{30, 40, 50}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	var m1 Msg
	if err := r.Next(&m1); err != nil {
		t.Fatal(err)
	}
	first := append([]uint64{}, m1.Event.IDs...)
	var m2 Msg
	if err := r.Next(&m2); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, []uint64{10, 20}) {
		t.Fatalf("first event IDs = %v", first)
	}
	if !reflect.DeepEqual(append([]uint64{}, m2.Event.IDs...), []uint64{30, 40, 50}) {
		t.Fatalf("second event IDs = %v", m2.Event.IDs)
	}
}

// FuzzReader feeds arbitrary bytes to the frame decoder: it must never
// panic and must always terminate.
func FuzzReader(f *testing.F) {
	stream, _ := encodeAll(f)
	f.Add(stream)
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{5, TEvent, 1, 1, 1, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		var msg Msg
		for i := 0; i < 1000; i++ {
			if err := r.Next(&msg); err != nil {
				return
			}
		}
	})
}

// FuzzEventRoundTrip: any symbol/ID combination encodes and decodes to
// itself.
func FuzzEventRoundTrip(f *testing.F) {
	f.Add(0, uint64(1), uint64(2), 2)
	f.Add(5, uint64(1<<63), uint64(0), 1)
	f.Fuzz(func(t *testing.T, sym int, a, b uint64, n int) {
		if sym < 0 || n < 0 || n > 2 {
			return
		}
		ids := []uint64{a, b}[:n]
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.WriteEvent(sym, ids); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		r := NewReader(&buf)
		var msg Msg
		if err := r.Next(&msg); err != nil {
			t.Fatal(err)
		}
		if msg.Type != TEvent || msg.Event.Sym != sym || !reflect.DeepEqual(append([]uint64{}, msg.Event.IDs...), append([]uint64{}, ids...)) {
			t.Fatalf("round trip: got %+v, want sym=%d ids=%v", msg.Event, sym, ids)
		}
	})
}

// FuzzWire is the CI smoke fuzz target: arbitrary bytes through the frame
// decoder must never panic, must terminate, and every frame that decodes as
// an Event, Free or Verdict must re-encode and decode back to itself
// (decode → encode → decode is the identity on the decoder's image).
func FuzzWire(f *testing.F) {
	stream, _ := encodeAll(f)
	f.Add(stream)
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{2, TFree, 0})
	f.Add([]byte{5, TEvent, 1, 1, 1, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		var msg Msg
		for i := 0; i < 1000; i++ {
			if err := r.Next(&msg); err != nil {
				return
			}
			var buf bytes.Buffer
			w := NewWriter(&buf)
			var werr error
			switch msg.Type {
			case TEvent:
				werr = w.WriteEvent(msg.Event.Sym, msg.Event.IDs)
			case TFree:
				werr = w.WriteFree(msg.Free.IDs)
			case TVerdict:
				werr = w.WriteVerdict(msg.Verdict)
			default:
				continue
			}
			if werr != nil {
				t.Fatalf("re-encoding decoded frame: %v", werr)
			}
			if err := w.Flush(); err != nil {
				t.Fatal(err)
			}
			// Snapshot before the second decode reuses the reader state.
			want := Msg{Type: msg.Type}
			switch msg.Type {
			case TEvent:
				want.Event = Event{Sym: msg.Event.Sym, IDs: append([]uint64{}, msg.Event.IDs...)}
			case TFree:
				want.Free = Free{IDs: append([]uint64{}, msg.Free.IDs...)}
			case TVerdict:
				want.Verdict = Verdict{Sym: msg.Verdict.Sym, Cat: msg.Verdict.Cat,
					Mask: msg.Verdict.Mask, IDs: append([]uint64{}, msg.Verdict.IDs...)}
			}
			r2 := NewReader(&buf)
			var msg2 Msg
			if err := r2.Next(&msg2); err != nil {
				t.Fatalf("decoding re-encoded frame: %v", err)
			}
			if msg2.Type != want.Type {
				t.Fatalf("round trip type %d != %d", msg2.Type, want.Type)
			}
			switch want.Type {
			case TEvent:
				if msg2.Event.Sym != want.Event.Sym || !reflect.DeepEqual(append([]uint64{}, msg2.Event.IDs...), want.Event.IDs) {
					t.Fatalf("event round trip: %+v != %+v", msg2.Event, want.Event)
				}
			case TFree:
				if !reflect.DeepEqual(append([]uint64{}, msg2.Free.IDs...), want.Free.IDs) {
					t.Fatalf("free round trip: %+v != %+v", msg2.Free, want.Free)
				}
			case TVerdict:
				if msg2.Verdict.Sym != want.Verdict.Sym || msg2.Verdict.Cat != want.Verdict.Cat ||
					msg2.Verdict.Mask != want.Verdict.Mask ||
					!reflect.DeepEqual(append([]uint64{}, msg2.Verdict.IDs...), want.Verdict.IDs) {
					t.Fatalf("verdict round trip: %+v != %+v", msg2.Verdict, want.Verdict)
				}
			}
		}
	})
}

// TestFrameBuffered: a complete buffered frame reports true, a partial one
// false, and consuming the stream drains it back to false.
func TestFrameBuffered(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteEvent(3, []uint64{7, 9}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteCredit(5); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	r := NewReader(bytes.NewReader(full))
	if r.FrameBuffered() {
		t.Fatal("nothing read yet: bufio buffer is empty")
	}
	var msg Msg
	if err := r.Next(&msg); err != nil || msg.Type != TEvent {
		t.Fatalf("Next: %v type %d", err, msg.Type)
	}
	// The second frame was pulled into the buffer by the first read.
	if !r.FrameBuffered() {
		t.Fatal("complete second frame buffered but not reported")
	}
	if err := r.Next(&msg); err != nil || msg.Type != TCredit {
		t.Fatalf("Next: %v type %d", err, msg.Type)
	}
	if r.FrameBuffered() {
		t.Fatal("stream drained but FrameBuffered still true")
	}

	// A truncated frame must not report complete.
	r2 := NewReader(bytes.NewReader(full[:len(full)-1]))
	if err := r2.Next(&msg); err != nil {
		t.Fatal(err)
	}
	if r2.FrameBuffered() {
		t.Fatal("truncated frame reported as buffered")
	}
}
