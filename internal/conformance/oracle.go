package conformance

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"rvgo/internal/dacapo"
	"rvgo/internal/heap"
	"rvgo/internal/monitor"
	"rvgo/internal/props"
)

// PolicyFactory builds one backend instance for the given property under a
// specific GC policy, wired to the verdict handler. The oracle suite closes
// every runtime it builds.
type PolicyFactory func(t *testing.T, prop string, gc monitor.GCPolicy, onVerdict func(monitor.Verdict)) monitor.Runtime

// oracleScale sizes the avrora replay: large enough that the trace
// exercises creation joins, coenable flagging, object deaths, sweeps and
// monitor recycling; small enough for every backend × policy cell to stay
// well under a second.
const oracleScale = 0.05

// oracleProp is the replayed property. UNSAFEITER is the paper's running
// example and the one whose avrora slice population stresses all three
// reclamation policies differently.
const oracleProp = "UnsafeIter"

// avroraReplay drives the synthetic avrora trace through a backend and
// returns its per-slice verdict sequences and settled counters. The
// substrate is seeded, so every call replays the identical event/death
// sequence; object deaths reach the backend through the Runtime.Free hook
// exactly as the evaluation harness positions them.
func avroraReplay(t *testing.T, rt monitor.Runtime) monitor.Stats {
	t.Helper()
	drt := dacapo.NewRuntime()
	sink, err := dacapo.Adapt(oracleProp, rt)
	if err != nil {
		t.Fatal(err)
	}
	drt.AddSink(sink)
	drt.Heap.SetFreeHook(func(o *heap.Object) { rt.Free(o) })
	p, ok := dacapo.Get("avrora")
	if !ok {
		t.Fatal("avrora benchmark missing")
	}
	if err := p.Run(drt, oracleScale); err != nil {
		t.Fatal(err)
	}
	rt.Flush()
	stats := rt.Stats()
	rt.Close()
	return stats
}

// sliceVerdicts accumulates verdict categories per trace slice. Backends
// may interleave slices differently (shard workers, the remote reader
// goroutine) but must deliver each slice's verdicts in order, so equality
// is per-slice sequence equality.
type sliceVerdicts struct {
	mu sync.Mutex
	m  map[string][]string
}

func (sv *sliceVerdicts) handler() func(monitor.Verdict) {
	sv.m = map[string][]string{}
	return func(v monitor.Verdict) {
		key := v.Inst.Format(v.Spec.Params)
		sv.mu.Lock()
		sv.m[key] = append(sv.m[key], string(v.Cat))
		sv.mu.Unlock()
	}
}

func (sv *sliceVerdicts) diff(want *sliceVerdicts) string {
	keys := map[string]bool{}
	for k := range sv.m {
		keys[k] = true
	}
	for k := range want.m {
		keys[k] = true
	}
	var sorted []string
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	for _, k := range sorted {
		if fmt.Sprint(sv.m[k]) != fmt.Sprint(want.m[k]) {
			return fmt.Sprintf("slice %s: verdicts %v, want %v", k, sv.m[k], want.m[k])
		}
	}
	return ""
}

// RunArenaOracle is the arena-vs-seed oracle matrix: it replays the
// seeded avrora trace through the backend under every GC policy and
// requires per-slice verdict sequences and all settled Figure 10 counters
// to be bit-identical to a sequential-engine reference run of the same
// trace — the semantics the pre-arena engine pinned down (and that
// BENCH_PR4.json still gates counter-exactly in CI). PeakLive is compared
// as a lower bound only on non-sequential backends (a sharded runtime sums
// per-shard peaks).
func RunArenaOracle(t *testing.T, build PolicyFactory) {
	for _, gc := range []monitor.GCPolicy{monitor.GCNone, monitor.GCAllDead, monitor.GCCoenable} {
		t.Run(gc.String(), func(t *testing.T) {
			spec, err := props.Build(oracleProp)
			if err != nil {
				t.Fatal(err)
			}
			var wantV sliceVerdicts
			ref, err := monitor.New(spec, monitor.Options{
				GC:        gc,
				Creation:  monitor.CreateEnable,
				OnVerdict: wantV.handler(),
			})
			if err != nil {
				t.Fatal(err)
			}
			want := avroraReplay(t, ref)

			var gotV sliceVerdicts
			rt := build(t, oracleProp, gc, gotV.handler())
			got := avroraReplay(t, rt)

			if d := gotV.diff(&wantV); d != "" {
				t.Error(d)
			}
			if got.PeakLive < want.PeakLive {
				t.Errorf("PeakLive = %d, below the sequential peak %d", got.PeakLive, want.PeakLive)
			}
			want.PeakLive, got.PeakLive = 0, 0
			if got != want {
				t.Errorf("settled counters diverge:\n  got  %+v\n  want %+v", got, want)
			}
			// The trace kills objects, so the reclaiming policies must have
			// reclaimed — an oracle that never collects is not testing the
			// arena's recycling path.
			if gc != monitor.GCNone && got.Collected == 0 {
				t.Error("no monitor collected over the avrora trace")
			}
		})
	}
}
