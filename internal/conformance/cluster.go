package conformance

import (
	"testing"

	"rvgo/internal/monitor"
	"rvgo/internal/param"
	"rvgo/internal/props"
)

// ClusterHarness is a cluster-backed runtime plus the membership levers
// the oracle pulls mid-trace. Any nil lever is skipped.
type ClusterHarness struct {
	// RT is the cluster-backed monitor.Runtime under test (a
	// cluster.Client, or a remote.Client dialed into a cluster router).
	RT monitor.Runtime
	// Join admits a fresh node to the membership (graceful slot moves).
	Join func() error
	// Kill abruptly destroys a live node — no Bye, no drain — forcing the
	// crash-handoff path: journals replayed onto survivors with verdict
	// skip counts covering exactly what was already delivered.
	Kill func() error
	// Leave gracefully drains a node out of the membership.
	Leave func() error
}

// ClusterFactory builds one cluster harness for the given property and GC
// policy. The oracle closes the runtime it returns.
type ClusterFactory func(t *testing.T, prop string, gc monitor.GCPolicy, onVerdict func(monitor.Verdict)) ClusterHarness

// membershipRuntime interposes on Dispatch to fire the harness levers at
// fixed points in the event stream: Join at 1/3, Kill at 1/2, Leave at
// 2/3 of the reference run's event count. The avrora driver is
// single-threaded, so the count needs no synchronization.
type membershipRuntime struct {
	monitor.Runtime
	t       *testing.T
	n       uint64
	joinAt  uint64
	killAt  uint64
	leaveAt uint64
	join    func() error
	kill    func() error
	leave   func() error
}

func (m *membershipRuntime) Dispatch(sym int, theta param.Instance) {
	m.Runtime.Dispatch(sym, theta)
	m.n++
	switch {
	case m.n == m.joinAt && m.join != nil:
		if err := m.join(); err != nil {
			m.t.Errorf("join at event %d: %v", m.n, err)
		}
	case m.n == m.killAt && m.kill != nil:
		if err := m.kill(); err != nil {
			m.t.Errorf("kill at event %d: %v", m.n, err)
		}
	case m.n == m.leaveAt && m.leave != nil:
		if err := m.leave(); err != nil {
			m.t.Errorf("leave at event %d: %v", m.n, err)
		}
	}
}

// RunClusterOracle is the cluster-vs-sequential oracle matrix: the seeded
// avrora trace replayed through a cluster harness under every GC policy,
// with a node join, a node crash, and a graceful leave injected mid-trace,
// must produce per-slice verdict sequences and settled Figure 10 counters
// bit-identical to the sequential engine's reference run — the same bar
// RunArenaOracle sets for in-process backends. PeakLive is excluded, as in
// the sharded runtime's equivalence tests: each slot engine samples its
// peak on its own maintenance clock, so the sum is not comparable to the
// sequential peak. Every other counter is exact: each slice lives in
// exactly one slot, crash recovery replays a slot's journal
// deterministically, and graceful moves are counter-verified against the
// donor's ByeAck inside the cluster layer itself.
func RunClusterOracle(t *testing.T, build ClusterFactory) {
	for _, gc := range []monitor.GCPolicy{monitor.GCNone, monitor.GCAllDead, monitor.GCCoenable} {
		t.Run(gc.String(), func(t *testing.T) {
			spec, err := props.Build(oracleProp)
			if err != nil {
				t.Fatal(err)
			}
			var wantV sliceVerdicts
			ref, err := monitor.New(spec, monitor.Options{
				GC:        gc,
				Creation:  monitor.CreateEnable,
				OnVerdict: wantV.handler(),
			})
			if err != nil {
				t.Fatal(err)
			}
			want := avroraReplay(t, ref)

			var gotV sliceVerdicts
			h := build(t, oracleProp, gc, gotV.handler())
			wrapped := &membershipRuntime{
				Runtime: h.RT,
				t:       t,
				joinAt:  want.Events / 3,
				killAt:  want.Events / 2,
				leaveAt: 2 * want.Events / 3,
				join:    h.Join,
				kill:    h.Kill,
				leave:   h.Leave,
			}
			got := avroraReplay(t, wrapped)

			if d := gotV.diff(&wantV); d != "" {
				t.Error(d)
			}
			if got.PeakLive <= 0 {
				t.Errorf("PeakLive = %d, want positive", got.PeakLive)
			}
			want.PeakLive, got.PeakLive = 0, 0
			if got != want {
				t.Errorf("settled counters diverge:\n  got  %+v\n  want %+v", got, want)
			}
			if gc != monitor.GCNone && got.Collected == 0 {
				t.Error("no monitor collected over the avrora trace")
			}
		})
	}
}
