package conformance

import (
	"fmt"
	"sync"
	"testing"

	"rvgo/internal/heap"
	"rvgo/internal/monitor"
	"rvgo/internal/props"
)

// freeDriver replays the shared death-positioning trace on one backend:
// two iterators over one collection, the first freed before it is ever
// advanced (its slice must stay verdict-free and its monitor must be
// reclaimable), the second advanced after an update (the UNSAFEITER
// match). async selects the FreeAsync path, sync the Free path.
func freeDriver(t *testing.T, rt monitor.Runtime, async bool) (stats monitor.Stats) {
	t.Helper()
	h := heap.New()
	c, i1, i2 := h.Alloc("c"), h.Alloc("i1"), h.Alloc("i2")
	emit := func(ev string, vals ...heap.Ref) {
		t.Helper()
		if err := rt.EmitNamed(ev, vals...); err != nil {
			t.Fatalf("EmitNamed(%s): %v", ev, err)
		}
	}
	emit("create", c, i1)
	emit("update", c)
	// i1 dies here: every event so far observed it alive, nothing later
	// mentions it. Its slice never saw a post-update next, so this death
	// must not suppress or invent any verdict.
	if async {
		rt.FreeAsync(func() { h.Free(i1) }, i1)
	} else {
		rt.Free(i1)
		h.Free(i1)
	}
	emit("create", c, i2)
	emit("update", c)
	emit("next", i2)
	rt.Flush()
	stats = rt.Stats()
	rt.Close()
	return stats
}

// RunFree exercises the death-positioning contract (Free and FreeAsync)
// on a backend built with coenable GC; see RunFreePolicy.
func RunFree(t *testing.T, build Factory) {
	RunFreePolicy(t, build, monitor.GCCoenable)
}

// RunFreePolicy exercises the death-positioning contract (Free and
// FreeAsync) on a backend and requires its observable outcome — per-slice
// verdicts and settled counters — to equal a sequential-engine reference
// run of the same trace under the same GC policy. The factory must build
// its backend with gc; PeakLive is compared only against an upper bound
// (a sharded backend sums per-shard peaks), and the reclamation check —
// the freed iterator's monitor must actually be collected — applies only
// under GCCoenable, the one policy whose analysis can prove the monitor
// unnecessary while the collection object lives.
func RunFreePolicy(t *testing.T, build Factory, gc monitor.GCPolicy) {
	reference := func(t *testing.T, async bool) ([]string, monitor.Stats) {
		t.Helper()
		var verdicts []string
		spec, err := props.Build("UnsafeIter")
		if err != nil {
			t.Fatal(err)
		}
		eng, err := monitor.New(spec, monitor.Options{
			GC: gc, Creation: monitor.CreateEnable,
			OnVerdict: func(v monitor.Verdict) {
				verdicts = append(verdicts, string(v.Cat)+"@"+v.Inst.Format(v.Spec.Params))
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		stats := freeDriver(t, eng, async)
		return verdicts, stats
	}

	for _, mode := range []struct {
		name  string
		async bool
	}{{"Free", false}, {"FreeAsync", true}} {
		t.Run(mode.name, func(t *testing.T) {
			wantV, want := reference(t, mode.async)

			var mu sync.Mutex
			var gotV []string
			rt := build(t, "UnsafeIter", func(v monitor.Verdict) {
				mu.Lock()
				gotV = append(gotV, string(v.Cat)+"@"+v.Inst.Format(v.Spec.Params))
				mu.Unlock()
			})
			got := freeDriver(t, rt, mode.async)

			if fmt.Sprint(gotV) != fmt.Sprint(wantV) {
				t.Errorf("verdicts = %v, want %v", gotV, wantV)
			}
			if got.PeakLive < want.PeakLive {
				t.Errorf("PeakLive = %d, below the sequential peak %d", got.PeakLive, want.PeakLive)
			}
			want.PeakLive, got.PeakLive = 0, 0
			if got != want {
				t.Errorf("settled counters diverge:\n  got  %+v\n  want %+v", got, want)
			}
			// The freed iterator's monitor must actually be reclaimed
			// under coenable GC — that is what the death signal is for.
			if gc == monitor.GCCoenable && got.Collected == 0 {
				t.Error("no monitor collected after the iterator's death")
			}
		})
	}
}
