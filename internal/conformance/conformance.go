// Package conformance is the backend-independent monitor.Runtime test
// suite. Every backend — the sequential engine, the sharded runtime, and
// the remote client — must pass it; each backend's test package invokes
// the suite with a factory building that backend.
package conformance

import (
	"strings"
	"testing"

	"rvgo/internal/heap"
	"rvgo/internal/monitor"
)

// Factory builds one backend instance for the given property, wired to
// the verdict handler. The suite closes every runtime it builds.
type Factory func(t *testing.T, prop string, onVerdict func(monitor.Verdict)) monitor.Runtime

// RunEmitNamed exercises the EmitNamed error contract on a backend:
// unknown event names and arity mismatches must come back as errors (not
// panics, not silent drops), must not dispatch anything, and must leave
// the runtime usable; correct calls must dispatch and reach verdicts.
func RunEmitNamed(t *testing.T, build Factory) {
	t.Run("UnknownEvent", func(t *testing.T) {
		rt := build(t, "UnsafeIter", nil)
		defer rt.Close()
		h := heap.New()
		err := rt.EmitNamed("nosuchevent", h.Alloc("x"))
		if err == nil {
			t.Fatal("EmitNamed with an unknown event name returned nil error")
		}
		if !strings.Contains(err.Error(), "nosuchevent") {
			t.Errorf("error %q does not name the offending event", err)
		}
		rt.Barrier()
		if got := rt.Stats().Events; got != 0 {
			t.Errorf("unknown event dispatched anyway: Events = %d, want 0", got)
		}
	})

	t.Run("WrongArity", func(t *testing.T) {
		rt := build(t, "UnsafeIter", nil)
		defer rt.Close()
		h := heap.New()
		c, i := h.Alloc("c"), h.Alloc("i")
		// create binds (c, i): two values.
		for _, vals := range [][]heap.Ref{{}, {c}, {c, i, h.Alloc("z")}} {
			err := rt.EmitNamed("create", vals...)
			if err == nil {
				t.Fatalf("EmitNamed(create, %d values) returned nil error, want arity error", len(vals))
			}
			if !strings.Contains(err.Error(), "2") {
				t.Errorf("arity error %q does not state the expected arity", err)
			}
		}
		rt.Barrier()
		if got := rt.Stats().Events; got != 0 {
			t.Errorf("misfired events dispatched: Events = %d, want 0", got)
		}
		// The runtime must still be usable after rejected calls.
		if err := rt.EmitNamed("create", c, i); err != nil {
			t.Fatalf("valid EmitNamed after rejected calls: %v", err)
		}
		rt.Barrier()
		if got := rt.Stats().Events; got != 1 {
			t.Errorf("after valid EmitNamed: Events = %d, want 1", got)
		}
	})

	t.Run("VerdictDelivery", func(t *testing.T) {
		var verdicts []string
		done := make(chan struct{})
		rt := build(t, "UnsafeIter", func(v monitor.Verdict) {
			verdicts = append(verdicts, string(v.Cat)+"@"+v.Inst.Format(v.Spec.Params))
			close(done)
		})
		defer rt.Close()
		h := heap.New()
		c, i := h.Alloc("c"), h.Alloc("i")
		// The UNSAFEITER violation: create, update, then use the iterator.
		for _, step := range []struct {
			ev   string
			vals []heap.Ref
		}{
			{"create", []heap.Ref{c, i}},
			{"update", []heap.Ref{c}},
			{"next", []heap.Ref{i}},
		} {
			if err := rt.EmitNamed(step.ev, step.vals...); err != nil {
				t.Fatalf("EmitNamed(%s): %v", step.ev, err)
			}
		}
		rt.Barrier()
		select {
		case <-done:
		default:
			t.Fatal("no verdict delivered before Barrier returned")
		}
		want := "match@<c=c, i=i>"
		if len(verdicts) != 1 || verdicts[0] != want {
			t.Errorf("verdicts = %v, want [%s]", verdicts, want)
		}
		st := rt.Stats()
		if st.Events != 3 || st.GoalVerdicts != 1 {
			t.Errorf("stats = %+v, want Events=3 GoalVerdicts=1", st)
		}
	})
}
