package conformance

import (
	"testing"

	"rvgo/internal/fsm"
	"rvgo/internal/heap"
	"rvgo/internal/logic"
	"rvgo/internal/monitor"
	"rvgo/internal/param"
	"rvgo/internal/props"
)

// AvoidFactory builds one backend instance for the given property under a
// specific GC policy and creation-avoidance mode, wired to the verdict
// handler. The avoidance oracle closes every runtime it builds.
type AvoidFactory func(t *testing.T, prop string, gc monitor.GCPolicy, avoid monitor.AvoidMode, onVerdict func(monitor.Verdict)) monitor.Runtime

// RunAvoidanceOracle is the creation-avoidance-vs-unguarded oracle matrix:
// it replays the seeded avrora trace through the backend under every GC
// policy in audit and enforce modes and holds both against a sequential
// unguarded reference run of the same trace.
//
//   - Audit mode must be bit-identical in everything: per-slice verdict
//     sequences and every settled counter (the guards are evaluated but
//     only counted, in Stats.Avoided).
//   - Enforce mode must preserve per-slice verdict sequences, Events and
//     GoalVerdicts exactly, and satisfy the suppression invariant
//     Created + Avoided == unguarded Created; its Avoided count must match
//     audit mode's (the guards fire identically, whichever way their hits
//     are consumed).
//
// The static guards rarely fire under enable-set creation (the enable
// analysis already prunes what they would catch — see DESIGN.md), so the
// enforce legs here mostly prove "guards that do not fire change nothing";
// RunAvoidanceEnforcement covers the firing cases on the sequential
// engine, where the full strategy and profile guards are available.
func RunAvoidanceOracle(t *testing.T, build AvoidFactory) {
	for _, gc := range []monitor.GCPolicy{monitor.GCNone, monitor.GCAllDead, monitor.GCCoenable} {
		t.Run(gc.String(), func(t *testing.T) {
			spec, err := props.Build(oracleProp)
			if err != nil {
				t.Fatal(err)
			}
			var wantV sliceVerdicts
			ref, err := monitor.New(spec, monitor.Options{
				GC:        gc,
				Creation:  monitor.CreateEnable,
				OnVerdict: wantV.handler(),
			})
			if err != nil {
				t.Fatal(err)
			}
			want := avroraReplay(t, ref)

			var auditV sliceVerdicts
			audit := avroraReplay(t, build(t, oracleProp, gc, monitor.AvoidAudit, auditV.handler()))
			if d := auditV.diff(&wantV); d != "" {
				t.Errorf("audit: %s", d)
			}
			if audit.PeakLive < want.PeakLive {
				t.Errorf("audit: PeakLive = %d, below the sequential peak %d", audit.PeakLive, want.PeakLive)
			}
			auditAvoided := audit.Avoided
			norm := audit
			norm.Avoided, norm.PeakLive = 0, 0
			wantNorm := want
			wantNorm.PeakLive = 0
			if norm != wantNorm {
				t.Errorf("audit: settled counters diverge:\n  got  %+v\n  want %+v", audit, want)
			}

			var enfV sliceVerdicts
			enf := avroraReplay(t, build(t, oracleProp, gc, monitor.AvoidEnforce, enfV.handler()))
			if d := enfV.diff(&wantV); d != "" {
				t.Errorf("enforce: %s", d)
			}
			if enf.Events != want.Events || enf.GoalVerdicts != want.GoalVerdicts {
				t.Errorf("enforce: Events/GoalVerdicts = %d/%d, want %d/%d",
					enf.Events, enf.GoalVerdicts, want.Events, want.GoalVerdicts)
			}
			if enf.Created+enf.Avoided != want.Created {
				t.Errorf("enforce: Created %d + Avoided %d != unguarded Created %d",
					enf.Created, enf.Avoided, want.Created)
			}
			if enf.Avoided != auditAvoided {
				t.Errorf("enforce: Avoided = %d, audit counted %d", enf.Avoided, auditAvoided)
			}
			if enf.Avoided == 0 {
				// Nothing suppressed: enforce must then be bit-identical to
				// the unguarded run, like audit.
				enfNorm := enf
				enfNorm.PeakLive = 0
				if enfNorm != wantNorm {
					t.Errorf("enforce (nothing avoided): settled counters diverge:\n  got  %+v\n  want %+v", enf, want)
				}
			}
		})
	}
}

// profiledPairSpec is a two-creation-site property for the profile-guided
// enforcement leg: P(x) matches on a·g or b·g. Both a and b are creation
// events with the maximal (only) domain {x}, so a trace whose b-objects
// never see g drives the profile to guard b while a stays live — the
// shape the profile-guided mode exists for, and one the DaCapo properties
// cannot produce (their only maximal-domain creation site also carries
// every goal).
func profiledPairSpec(t *testing.T) *monitor.Spec {
	t.Helper()
	alphabet := []string{"a", "b", "g"}
	m := fsm.New(alphabet)
	for _, st := range []string{"start", "s1", "s2", "hit"} {
		if err := m.AddState(st); err != nil {
			t.Fatal(err)
		}
	}
	for _, tr := range [][3]string{
		{"start", "a", "s1"},
		{"start", "b", "s2"},
		{"s1", "g", "hit"},
		{"s2", "g", "hit"},
	} {
		if err := m.AddTransition(tr[0], tr[1], tr[2]); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Freeze(); err != nil {
		t.Fatal(err)
	}
	spec := &monitor.Spec{
		Name:   "ProfiledPair",
		Params: []string{"x"},
		Events: []monitor.EventDef{
			{Name: "a", Params: param.SetOf(0)},
			{Name: "b", Params: param.SetOf(0)},
			{Name: "g", Params: param.SetOf(0)},
		},
		BP:   m,
		Goal: []logic.Category{"hit"},
	}
	if err := spec.Analyze(); err != nil {
		t.Fatal(err)
	}
	return spec
}

// RunAvoidanceEnforcement proves the guard-firing enforcement paths on the
// sequential engine, where the configurations that make guards fire are
// available:
//
//   - full/static: the Figure 5 strategy materializes instances the enable
//     analysis would skip, so the static doomed guard fires on them.
//     Enforce (GCNone — the engine rejects the rest) must preserve
//     verdicts, Events and GoalVerdicts against an unguarded CreateFull
//     run and satisfy Created + Avoided == unguarded Created with
//     Avoided > 0.
//   - profile: a recorded-profile replay guards a creation site whose
//     monitors never reach a goal; replaying the same trace under enforce
//     with the synthesized guards must suppress exactly that site's
//     creations while every verdict survives.
func RunAvoidanceEnforcement(t *testing.T) {
	t.Run("full_static", func(t *testing.T) {
		spec, err := props.Build(oracleProp)
		if err != nil {
			t.Fatal(err)
		}
		var wantV sliceVerdicts
		ref, err := monitor.New(spec, monitor.Options{
			GC:        monitor.GCNone,
			Creation:  monitor.CreateFull,
			OnVerdict: wantV.handler(),
		})
		if err != nil {
			t.Fatal(err)
		}
		want := avroraReplay(t, ref)

		var gotV sliceVerdicts
		eng, err := monitor.New(spec, monitor.Options{
			GC:        monitor.GCNone,
			Creation:  monitor.CreateFull,
			Avoid:     monitor.AvoidEnforce,
			OnVerdict: gotV.handler(),
		})
		if err != nil {
			t.Fatal(err)
		}
		got := avroraReplay(t, eng)

		if d := gotV.diff(&wantV); d != "" {
			t.Error(d)
		}
		if got.Events != want.Events || got.GoalVerdicts != want.GoalVerdicts {
			t.Errorf("Events/GoalVerdicts = %d/%d, want %d/%d",
				got.Events, got.GoalVerdicts, want.Events, want.GoalVerdicts)
		}
		if got.Created+got.Avoided != want.Created {
			t.Errorf("Created %d + Avoided %d != unguarded Created %d",
				got.Created, got.Avoided, want.Created)
		}
		if got.Avoided == 0 {
			t.Error("static guard never fired under the full strategy — the enforcement leg is vacuous")
		}
	})

	t.Run("profile", func(t *testing.T) {
		// One trace, replayed three times over the same seeded object set:
		// unguarded with a profile attached, then enforced with the
		// profile's guards, then compared.
		replay := func(opts monitor.Options) (monitor.Stats, *sliceVerdicts) {
			spec := profiledPairSpec(t)
			var sv sliceVerdicts
			opts.OnVerdict = sv.handler()
			eng, err := monitor.New(spec, opts)
			if err != nil {
				t.Fatal(err)
			}
			h := heap.New()
			a1 := h.Alloc("a1")
			b1 := h.Alloc("b1")
			b2 := h.Alloc("b2")
			symA, _ := spec.Symbol("a")
			symB, _ := spec.Symbol("b")
			symG, _ := spec.Symbol("g")
			eng.Emit(symA, a1)
			eng.Emit(symB, b1)
			eng.Emit(symB, b2)
			eng.Emit(symG, a1) // only the a-born slice reaches the goal
			eng.Flush()
			stats := eng.Stats()
			eng.Close()
			return stats, &sv
		}

		profile := monitor.NewCreationProfile(profiledPairSpec(t))
		want, wantV := replay(monitor.Options{Profile: profile})
		if want.GoalVerdicts != 1 {
			t.Fatalf("profiled run delivered %d goal verdicts, want 1", want.GoalVerdicts)
		}
		guards := profile.Guards()
		if !guards[1] || guards[0] || guards[2] {
			t.Fatalf("profile guards = %v, want only b (symbol 1) guarded", guards)
		}

		got, gotV := replay(monitor.Options{
			Avoid:         monitor.AvoidEnforce,
			ProfileGuards: guards,
		})
		if d := gotV.diff(wantV); d != "" {
			t.Error(d)
		}
		if got.Events != want.Events || got.GoalVerdicts != want.GoalVerdicts {
			t.Errorf("Events/GoalVerdicts = %d/%d, want %d/%d",
				got.Events, got.GoalVerdicts, want.Events, want.GoalVerdicts)
		}
		if got.Created+got.Avoided != want.Created {
			t.Errorf("Created %d + Avoided %d != unguarded Created %d",
				got.Created, got.Avoided, want.Created)
		}
		if got.Avoided != 2 {
			t.Errorf("Avoided = %d, want 2 (both b-born creations suppressed)", got.Avoided)
		}
	})
}
