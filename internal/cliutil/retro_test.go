package cliutil

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestValidateRecordPath(t *testing.T) {
	dir := t.TempDir()
	nested := filepath.Join(dir, "a", "b", "run.rvt")
	got, err := ValidateRecordPath("-record", nested)
	if err != nil {
		t.Fatal(err)
	}
	if got != filepath.Clean(nested) {
		t.Errorf("cleaned path = %q", got)
	}
	if fi, err := os.Stat(filepath.Dir(nested)); err != nil || !fi.IsDir() {
		t.Errorf("parent directory not created: %v", err)
	}
	if _, err := ValidateRecordPath("-record", "  "); err == nil || !strings.Contains(err.Error(), "empty") {
		t.Errorf("empty path error = %v", err)
	}
	// A -record path equal to the -trace input must be refused, including
	// under cosmetic path differences.
	in := filepath.Join(dir, "in.rvt")
	if _, err := ValidateRecordPath("-record", filepath.Join(dir, ".", "in.rvt"), in); err == nil || !strings.Contains(err.Error(), "duplicates") {
		t.Errorf("duplicate path error = %v", err)
	}
	if _, err := ValidateRecordPath("-record", in, ""); err != nil {
		t.Errorf("empty taken entry must not collide: %v", err)
	}
}

func TestLoadQuerySpec(t *testing.T) {
	if _, err := LoadQuerySpec("", ""); err == nil {
		t.Error("no source accepted")
	}
	if _, err := LoadQuerySpec("HasNext", "x.rv"); err == nil {
		t.Error("both sources accepted")
	}
	sp, err := LoadQuerySpec("HasNext", "")
	if err != nil || sp.Name != "HasNext" {
		t.Errorf("builtin load = %v, %v", sp, err)
	}
	if _, err := LoadQuerySpec("NoSuchProp", ""); err == nil {
		t.Error("unknown prop accepted")
	}
}
