package cliutil_test

import (
	"reflect"
	"strings"
	"testing"

	"rvgo/internal/cliutil"
)

// TestParseBackend pins the unified -backend flag's inference and
// mismatch rules: the empty name infers the backend from its modifiers,
// an explicit name must agree with them, and -nodes follows the same
// agreement discipline as -shards and -remote.
func TestParseBackend(t *testing.T) {
	nodes := []string{"n1:7472", "n2:7472"}
	cases := []struct {
		name    string
		backend string
		shards  int
		remote  string
		nodes   []string
		want    cliutil.Backend
		errSub  string // non-empty: expect an error containing it
	}{
		{name: "InferSeq", shards: 1, want: cliutil.BackendSeq},
		{name: "InferShard", shards: 4, want: cliutil.BackendShard},
		{name: "InferRemote", shards: 1, remote: "h:1", want: cliutil.BackendRemote},
		{name: "InferCluster", shards: 1, nodes: nodes, want: cliutil.BackendCluster},
		{name: "InferAmbiguous", shards: 1, remote: "h:1", nodes: nodes, errSub: "-backend"},
		{name: "ExplicitCluster", backend: "cluster", shards: 1, nodes: nodes, want: cliutil.BackendCluster},
		{name: "ClusterNoNodes", backend: "cluster", shards: 1, errSub: "-nodes"},
		{name: "ClusterShards", backend: "cluster", shards: 4, nodes: nodes, errSub: "-shards"},
		{name: "ClusterRemote", backend: "cluster", shards: 1, remote: "h:1", nodes: nodes, errSub: "-remote"},
		{name: "SeqNodes", backend: "seq", shards: 1, nodes: nodes, errSub: "-nodes"},
		{name: "ShardNodes", backend: "shard", shards: 4, nodes: nodes, errSub: "-nodes"},
		{name: "RemoteNodes", backend: "remote", shards: 1, remote: "h:1", nodes: nodes, errSub: "-nodes"},
		{name: "SeqShards", backend: "seq", shards: 4, errSub: "-shards"},
		{name: "RemoteNoAddr", backend: "remote", shards: 1, errSub: "-remote"},
		{name: "Unknown", backend: "mesh", shards: 1, errSub: "cluster"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := cliutil.ParseBackend(tc.backend, tc.shards, tc.remote, tc.nodes)
			if tc.errSub != "" {
				if err == nil || !strings.Contains(err.Error(), tc.errSub) {
					t.Fatalf("got (%v, %v), want error containing %q", got, err, tc.errSub)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Fatalf("got %v, want %v", got, tc.want)
			}
		})
	}
}

// TestSplitNodes pins the -nodes list syntax: comma-separated, whitespace
// and empty entries tolerated.
func TestSplitNodes(t *testing.T) {
	if got := cliutil.SplitNodes(" a:1, b:2 ,,c:3,"); !reflect.DeepEqual(got, []string{"a:1", "b:2", "c:3"}) {
		t.Fatalf("got %q", got)
	}
	if got := cliutil.SplitNodes(""); got != nil {
		t.Fatalf("empty list: got %q, want nil", got)
	}
}
