package cliutil_test

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"rvgo/internal/cliutil"
	"rvgo/internal/dacapo"
	"rvgo/internal/heap"
	"rvgo/internal/monitor"
	"rvgo/internal/param"
	"rvgo/internal/props"
	"rvgo/internal/trace"
)

// recDisp taps dispatched events into the trace writer before the
// engine — the adapter's fast-path surface, with recording.
type recDisp struct {
	rt  monitor.Runtime
	w   *trace.Writer
	err error
}

func (r *recDisp) Spec() *monitor.Spec { return r.rt.Spec() }

func (r *recDisp) Dispatch(sym int, theta param.Instance) {
	if err := r.w.Event(sym, theta); err != nil && r.err == nil {
		r.err = err
	}
	r.rt.Dispatch(sym, theta)
}

func (r *recDisp) EmitNamed(name string, vals ...heap.Ref) error {
	return r.rt.EmitNamed(name, vals...)
}

func oracleKey(v monitor.Verdict) string {
	k := v.Inst.Key()
	return fmt.Sprintf("%d/%s/%v/%v", v.Sym, v.Cat, k.Mask, k.IDs)
}

// onlineOracle drives the recorded workload through a sequential engine
// (optionally recording the monitored stream) and returns settled stats
// and sorted verdict keys. Every call replays onto a fresh heap, so
// object IDs — and hence verdict keys — are identical across calls and
// equal to the recorded IDs.
func onlineOracle(t *testing.T, wl *dacapo.Trace, prop string, gc monitor.GCPolicy, w *trace.Writer) (monitor.Stats, []string) {
	t.Helper()
	spec, err := props.Build(prop)
	if err != nil {
		t.Fatal(err)
	}
	var verdicts []string
	eng, err := monitor.New(spec, monitor.Options{
		GC:        gc,
		Creation:  monitor.CreateEnable,
		OnVerdict: func(v monitor.Verdict) { verdicts = append(verdicts, oracleKey(v)) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	rec := &recDisp{rt: eng, w: w}
	var em dacapo.Emitter = eng
	if w != nil {
		em = rec
	}
	sink, err := dacapo.Adapt(prop, em)
	if err != nil {
		t.Fatal(err)
	}
	h := heap.New()
	h.SetFreeHook(func(o *heap.Object) {
		eng.Free(o)
		if w != nil {
			if werr := w.Free(o); werr != nil && rec.err == nil {
				rec.err = werr
			}
		}
	})
	wl.Replay(h, sink, nil)
	eng.Flush()
	if rec.err != nil {
		t.Fatal(rec.err)
	}
	sort.Strings(verdicts)
	return eng.Stats(), verdicts
}

// TestVerdictLines pins the rvquery -verdicts line shape: event name,
// category, formatted instance.
func TestVerdictLines(t *testing.T) {
	spec, err := props.Build("HasNext")
	if err != nil {
		t.Fatal(err)
	}
	sym, ok := spec.Symbol("next")
	if !ok {
		t.Fatal("HasNext has no next event")
	}
	h := heap.New()
	it := h.Alloc("it")
	var lines []string
	fn := cliutil.VerdictLines(spec, func(s string) { lines = append(lines, s) })
	v := monitor.Verdict{Spec: spec, Sym: sym, Inst: param.Of(spec.Events[sym].Params, it)}
	v.Cat = "error"
	fn(v)
	if len(lines) != 1 {
		t.Fatalf("got %d lines", len(lines))
	}
	for _, want := range []string{"next", "error", it.Label()} {
		if !strings.Contains(lines[0], want) {
			t.Errorf("line %q lacks %q", lines[0], want)
		}
	}
}

// TestRetroOracleDaCapo is the end-to-end oracle for the retroactive
// path: a DaCapo workload's monitored stream is recorded once through
// the segment store, then replayed through the rvquery path
// (RunRetroQuery) sequentially and with 4 parallel workers, under every
// monitor GC policy — verdicts and settled counters must equal the
// online run's exactly.
func TestRetroOracleDaCapo(t *testing.T) {
	const prop = "UnsafeIter"
	p, ok := dacapo.Get("avrora")
	if !ok {
		t.Fatal("no avrora profile")
	}
	wl, err := p.Record(0.05)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := props.Build(prop)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "oracle.rvt")
	// Small segments so the parallel replay has several to fan out over.
	w, err := trace.CreateForSpec(path, spec, trace.WriterOptions{SegmentRecords: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	recStats, _ := onlineOracle(t, wl, prop, monitor.GCCoenable, w)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	for _, gc := range []monitor.GCPolicy{monitor.GCCoenable, monitor.GCAllDead, monitor.GCNone} {
		stats, verdicts := onlineOracle(t, wl, prop, gc, nil)
		if gc == monitor.GCCoenable && stats != recStats {
			t.Fatalf("gc %v: recording pass diverged from reference: %+v vs %+v", gc, recStats, stats)
		}
		for _, workers := range []int{1, 4} {
			var got []string
			q := cliutil.RetroQuery{
				GC:        gc,
				Workers:   workers,
				OnVerdict: func(v monitor.Verdict) { got = append(got, oracleKey(v)) },
			}
			qr, err := cliutil.RunRetroQuery(path, spec, q)
			if err != nil {
				t.Fatalf("gc %v ×%d: %v", gc, workers, err)
			}
			sort.Strings(got)
			if fmt.Sprint(got) != fmt.Sprint(verdicts) {
				t.Errorf("gc %v ×%d: verdicts diverged:\n  online %v\n  retro  %v", gc, workers, verdicts, got)
			}
			for _, c := range []struct {
				name         string
				online, quer uint64
			}{
				{"events", stats.Events, qr.Stats.Events},
				{"created", stats.Created, qr.Stats.Created},
				{"flagged", stats.Flagged, qr.Stats.Flagged},
				{"collected", stats.Collected, qr.Stats.Collected},
				{"goal verdicts", stats.GoalVerdicts, qr.Stats.GoalVerdicts},
				{"steps", stats.Steps, qr.Stats.Steps},
				{"live", uint64(stats.Live), uint64(qr.Stats.Live)},
			} {
				if c.online != c.quer {
					t.Errorf("gc %v ×%d: %s: online %d, retro %d", gc, workers, c.name, c.online, c.quer)
				}
			}
		}
	}
}
