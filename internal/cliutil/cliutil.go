// Package cliutil holds the flag-parsing and backend-construction helpers
// shared by the command-line tools (cmd/rvmon, cmd/rvbench, cmd/rvserve,
// cmd/rvload) and the evaluation harness, so every tool validates -shards
// and -gc the same way and builds the same backend for the same flags.
package cliutil

import (
	"fmt"

	"rvgo/internal/monitor"
	"rvgo/internal/shard"
)

// ParseGC maps the -gc flag values to monitor GC policies.
func ParseGC(s string) (monitor.GCPolicy, error) {
	switch s {
	case "coenable":
		return monitor.GCCoenable, nil
	case "alldead":
		return monitor.GCAllDead, nil
	case "none":
		return monitor.GCNone, nil
	}
	return 0, fmt.Errorf("unknown -gc %q (want coenable, alldead or none)", s)
}

// ValidateShards rejects shard counts no backend accepts. 1 selects the
// sequential engine; >1 the sharded runtime.
func ValidateShards(n int) error {
	if n < 1 {
		return fmt.Errorf("-shards must be >= 1, got %d (1 = sequential engine, >1 = sharded runtime)", n)
	}
	return nil
}

// NewRuntime builds the monitoring backend the -shards flag selects: the
// sequential engine for 1, the sharded runtime for >1. Invalid shard
// counts are rejected with the ValidateShards error.
func NewRuntime(spec *monitor.Spec, opts monitor.Options, shards int) (monitor.Runtime, error) {
	if err := ValidateShards(shards); err != nil {
		return nil, err
	}
	if shards > 1 {
		return shard.New(spec, shard.Options{Options: opts, Shards: shards})
	}
	return monitor.New(spec, opts)
}
