// Package cliutil holds the flag-parsing and backend-construction helpers
// shared by the command-line tools (cmd/rvmon, cmd/rvbench, cmd/rvserve,
// cmd/rvload) and the evaluation harness, so every tool validates
// -backend, -shards and -gc the same way and builds the same backend for
// the same flags.
package cliutil

import (
	"fmt"
	"strings"

	"rvgo"
	"rvgo/internal/dacapo"
	"rvgo/internal/monitor"
	"rvgo/internal/props"
	"rvgo/internal/shard"
	"rvgo/spec"
)

// ParseGC maps the -gc flag values to monitor GC policies.
func ParseGC(s string) (monitor.GCPolicy, error) {
	switch s {
	case "coenable":
		return monitor.GCCoenable, nil
	case "alldead":
		return monitor.GCAllDead, nil
	case "none":
		return monitor.GCNone, nil
	}
	return 0, fmt.Errorf("unknown -gc %q (want coenable, alldead or none)", s)
}

// ParseAvoid maps a tool's creation-guard flag to an avoidance mode,
// sharing monitor.ParseAvoidMode's vocabulary (off, audit, enforce).
func ParseAvoid(s string) (monitor.AvoidMode, error) {
	return monitor.ParseAvoidMode(s)
}

// ValidateShards rejects shard counts no backend accepts. 1 selects the
// sequential engine; >1 the sharded runtime.
func ValidateShards(n int) error {
	if n < 1 {
		return fmt.Errorf("-shards must be >= 1, got %d (1 = sequential engine, >1 = sharded runtime)", n)
	}
	return nil
}

// ValidateProp rejects property names outside the built-in library,
// listing the valid ones.
func ValidateProp(name string) error {
	if _, err := props.Build(name); err != nil {
		return fmt.Errorf("%v (have: %s)", err, strings.Join(props.Names(), ", "))
	}
	return nil
}

// ValidateBench rejects unknown DaCapo benchmark profiles, listing the
// valid ones.
func ValidateBench(name string) error {
	if _, ok := dacapo.Get(name); !ok {
		return fmt.Errorf("unknown benchmark %q (have: %s)", name, strings.Join(dacapo.Benchmarks(), ", "))
	}
	return nil
}

// Backend is the monitoring backend a tool's -backend flag selects.
type Backend int

const (
	// BackendSeq is the in-process sequential engine.
	BackendSeq Backend = iota
	// BackendShard is the in-process sharded concurrent runtime.
	BackendShard
	// BackendRemote is a session against an rvserve monitoring server.
	BackendRemote
	// BackendCluster is one logical session spread across a cluster of
	// rvserve nodes, with slices placed by pivot hash.
	BackendCluster
)

func (b Backend) String() string {
	switch b {
	case BackendSeq:
		return "seq"
	case BackendShard:
		return "shard"
	case BackendRemote:
		return "remote"
	case BackendCluster:
		return "cluster"
	}
	return fmt.Sprintf("Backend(%d)", int(b))
}

// SplitNodes splits a comma-separated -nodes list into addresses,
// trimming whitespace and dropping empty entries, so "a:1, b:2," and
// "a:1,b:2" parse the same.
func SplitNodes(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// ParseBackend resolves the unified -backend flag against its modifier
// flags: -shards sizes the sharded backend (or a remote session's
// server-side backend), -remote addresses the monitoring server, -nodes
// lists a cluster's node addresses. The empty name infers the backend
// from the modifiers, keeping the historic flag spellings working:
// -nodes selects cluster, -remote selects remote, -shards N>1 selects
// shard, otherwise seq. An explicit name must agree with its modifiers —
// a -backend seq run with -shards 4, a -backend remote run without
// -remote, or a -backend cluster run with -shards 4, is rejected rather
// than silently reinterpreted.
func ParseBackend(name string, shards int, remote string, nodes []string) (Backend, error) {
	if err := ValidateShards(shards); err != nil {
		return 0, err
	}
	if name == "" {
		switch {
		case len(nodes) > 0 && remote != "":
			return 0, fmt.Errorf("-nodes selects the cluster backend and -remote the single-server one; set -backend to disambiguate")
		case len(nodes) > 0:
			name = "cluster"
		case remote != "":
			name = "remote"
		case shards > 1:
			name = "shard"
		default:
			name = "seq"
		}
	}
	switch name {
	case "seq":
		if shards > 1 {
			return 0, fmt.Errorf("-backend seq is the sequential engine; it cannot take -shards %d (use -backend shard)", shards)
		}
		if remote != "" {
			return 0, fmt.Errorf("-backend seq is in-process; it cannot take -remote %q (use -backend remote)", remote)
		}
		if len(nodes) > 0 {
			return 0, fmt.Errorf("-backend seq is in-process; it cannot take -nodes (use -backend cluster)")
		}
		return BackendSeq, nil
	case "shard":
		if shards < 2 {
			return 0, fmt.Errorf("-backend shard needs -shards >= 2, got %d", shards)
		}
		if remote != "" {
			return 0, fmt.Errorf("-backend shard is in-process; it cannot take -remote %q (use -backend remote)", remote)
		}
		if len(nodes) > 0 {
			return 0, fmt.Errorf("-backend shard is in-process; it cannot take -nodes (use -backend cluster)")
		}
		return BackendShard, nil
	case "remote":
		if remote == "" {
			return 0, fmt.Errorf("-backend remote needs -remote with the rvserve address")
		}
		if len(nodes) > 0 {
			return 0, fmt.Errorf("-backend remote is a single-server session; it cannot take -nodes (use -backend cluster)")
		}
		return BackendRemote, nil
	case "cluster":
		if len(nodes) == 0 {
			return 0, fmt.Errorf("-backend cluster needs -nodes with the rvserve node addresses")
		}
		if remote != "" {
			return 0, fmt.Errorf("-backend cluster addresses its nodes with -nodes; it cannot take -remote %q", remote)
		}
		if shards > 1 {
			return 0, fmt.Errorf("-backend cluster shards by pivot across nodes; it cannot take -shards %d (per-node sessions are sequential)", shards)
		}
		return BackendCluster, nil
	}
	return 0, fmt.Errorf("unknown -backend %q (want seq, shard, remote or cluster)", name)
}

// NewMonitor builds the façade monitor a tool's flags select. The shards
// modifier sizes the sharded backend, or — for a remote backend — the
// per-session backend on the server; the nodes modifier lists a cluster
// backend's rvserve addresses.
func NewMonitor(s *spec.Spec, backend Backend, shards int, remote string, nodes []string, extra ...rvgo.Option) (*rvgo.Monitor, error) {
	opts := extra
	switch backend {
	case BackendShard:
		opts = append(opts, rvgo.WithShards(shards))
	case BackendRemote:
		opts = append(opts, rvgo.WithRemote(remote), rvgo.WithShards(shards))
	case BackendCluster:
		opts = append(opts, rvgo.WithCluster(nodes...))
	}
	return rvgo.New(s, opts...)
}

// NewRuntime builds the internal monitoring backend the -shards flag
// selects: the sequential engine for 1, the sharded runtime for >1.
// Invalid shard counts are rejected with the ValidateShards error. The
// evaluation harness uses this for its in-process cells; the tools build
// façade monitors with NewMonitor instead.
func NewRuntime(spec *monitor.Spec, opts monitor.Options, shards int) (monitor.Runtime, error) {
	if err := ValidateShards(shards); err != nil {
		return nil, err
	}
	if shards > 1 {
		return shard.New(spec, shard.Options{Options: opts, Shards: shards})
	}
	return monitor.New(spec, opts)
}
