package cliutil

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"rvgo/internal/monitor"
	"rvgo/internal/props"
	ispec "rvgo/internal/spec"
	"rvgo/internal/trace"
)

// ValidateRecordPath validates a tool's -record/-trace output path flag
// the same way across rvmon, rvload and rvquery: the path must be
// non-empty, must not collide with a path another trace flag already
// claims (a -record path equal to the -trace input would overwrite the
// trace being read), and its parent directory is created if missing. It
// returns the cleaned path.
func ValidateRecordPath(flagName, path string, taken ...string) (string, error) {
	if strings.TrimSpace(path) == "" {
		return "", fmt.Errorf("%s: empty path", flagName)
	}
	clean := filepath.Clean(path)
	for _, o := range taken {
		if o != "" && filepath.Clean(o) == clean {
			return "", fmt.Errorf("%s: path %q duplicates another trace path flag", flagName, path)
		}
	}
	if err := trace.EnsureDir(clean); err != nil {
		return "", fmt.Errorf("%s: %v", flagName, err)
	}
	return clean, nil
}

// LoadQuerySpec resolves a retro query's property: a built-in library
// name (-prop) or a .rv specification file (-spec), exactly one of them.
func LoadQuerySpec(prop, specFile string) (*monitor.Spec, error) {
	switch {
	case prop != "" && specFile != "":
		return nil, fmt.Errorf("-prop and -spec are mutually exclusive")
	case prop != "":
		if err := ValidateProp(prop); err != nil {
			return nil, err
		}
		return props.Build(prop)
	case specFile != "":
		src, err := os.ReadFile(specFile)
		if err != nil {
			return nil, err
		}
		return ispec.CompileOne(string(src))
	}
	return nil, fmt.Errorf("need -prop or -spec")
}

// RetroQuery configures one retroactive run of a property over a recorded
// trace (cmd/rvquery's core, shared with the evaluation harness's retro
// tier).
type RetroQuery struct {
	// GC is the monitor GC policy of the replay engines.
	GC monitor.GCPolicy
	// Creation selects the creation strategy (zero value CreateEnable).
	Creation monitor.CreationStrategy
	// Avoid is the creation-avoidance guard mode of the replay engines
	// (off, audit, enforce). Enforce with the full strategy requires
	// GCNone, as everywhere.
	Avoid monitor.AvoidMode
	// ProfileGuards, when non-nil, supplies per-symbol profile-guided
	// creation guards (from CreationProfile.Guards) to the replay
	// engines. The vector is read-only, so parallel replay is fine.
	ProfileGuards []bool
	// Profile, when non-nil, collects per-creation-site statistics
	// during the replay. Profiles are engine-local and unsynchronized:
	// Workers must be <= 1.
	Profile *monitor.CreationProfile
	// Workers is the parallel fan-out; <= 1 replays sequentially.
	Workers int
	// Pivots, when non-empty, restricts the replay to these pivot
	// objects (slice-selective replay).
	Pivots []uint64
	// OnVerdict, when non-nil, receives every goal verdict. With
	// Workers > 1 invocations are serialized.
	OnVerdict func(monitor.Verdict)
}

// VerdictLines adapts a plain line consumer into a RetroQuery verdict
// handler: each goal verdict renders as "event category instance"
// against the query spec. It keeps the commands off internal/monitor
// (the façade boundary): rvquery consumes formatted lines, not engine
// types.
func VerdictLines(sp *monitor.Spec, fn func(line string)) func(monitor.Verdict) {
	return func(v monitor.Verdict) {
		fn(fmt.Sprintf("%s %s %s", sp.Events[v.Sym].Name, v.Cat, v.Inst.Format(sp.Params)))
	}
}

// RetroResult is the outcome of a retroactive query: the settled monitor
// counters plus the replay-side accounting.
type RetroResult struct {
	Stats     monitor.Stats
	Replay    trace.ReplayStats
	Segments  int
	Truncated bool
}

// RunRetroQuery opens the trace at path and replays it through monitors
// of spec. The replay reproduces the online run bit-identically: same
// verdicts, same settled counters, under any worker count (see the
// internal/trace oracle tests).
func RunRetroQuery(path string, spec *monitor.Spec, q RetroQuery) (*RetroResult, error) {
	r, err := trace.Open(path)
	if err != nil {
		return nil, err
	}
	res := &RetroResult{Segments: r.Segments(), Truncated: r.Truncated()}
	mopts := monitor.Options{
		GC:            q.GC,
		Creation:      q.Creation,
		Avoid:         q.Avoid,
		ProfileGuards: q.ProfileGuards,
		Profile:       q.Profile,
		OnVerdict:     q.OnVerdict,
	}
	if q.Workers > 1 {
		if q.Profile != nil {
			return nil, fmt.Errorf("cliutil: creation profiling requires sequential replay (the profile counters are engine-local)")
		}
		pr, err := r.ReplayParallel(spec, trace.ParallelConfig{
			Workers: q.Workers,
			Monitor: mopts,
			Pivots:  q.Pivots,
		})
		if err != nil {
			return nil, err
		}
		res.Stats, res.Replay = pr.Stats, pr.Replay
		return res, nil
	}
	eng, err := monitor.New(spec, mopts)
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	rs, err := r.Replay(eng, trace.ReplayOptions{Pivots: q.Pivots})
	if err != nil {
		return nil, err
	}
	eng.Flush()
	res.Stats, res.Replay = eng.Stats(), rs
	return res, nil
}
