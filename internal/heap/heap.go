// Package heap provides the object-liveness substrate for parametric
// monitoring.
//
// The RV system's monitor garbage collection is driven by the deaths of
// parameter objects: when the JVM collects an Iterator, the coenable-set
// analysis may prove that some monitor instances can never trigger again.
// This package supplies the equivalent signal in Go in two flavours:
//
//   - A deterministic simulated heap (Heap/Object), where the workload
//     explicitly frees objects. This is the substrate used by tests and by
//     the DaCapo-style benchmark harness, because reproducing the paper's
//     Figure 10 statistics requires deterministic collection points. It is
//     also the identity currency of the other death channels: the remote
//     server materializes one Object per protocol object ID, and the
//     live-object registry (internal/registry) allocates one Object per
//     registered Go object, freeing it when the real GC's cleanup signal
//     is delivered.
//   - Real weak references (Weak) built on Go 1.24's weak.Pointer, showing
//     the same engine running against the real garbage collector.
//
// Both implement Ref, the only interface the monitoring engine sees.
package heap

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"weak"
)

// Ref is a possibly-weak reference to a parameter object. The monitoring
// runtime stores Refs in indexing-tree keys and in monitor instances; a Ref
// must never keep its referent alive.
type Ref interface {
	// ID returns a stable nonzero identifier for the referent, usable for
	// hashing and equality even after the referent dies.
	ID() uint64
	// Alive reports whether the referent has not yet been collected.
	Alive() bool
	// Label returns a human-readable name for diagnostics.
	Label() string
}

// Heap is a simulated heap. Objects are allocated with Alloc and die when
// the workload calls Free, which is the moment the "collector" runs for
// them. Heap is safe for concurrent use.
type Heap struct {
	mu       sync.Mutex
	nextID   uint64
	live     int
	allocs   uint64
	frees    uint64
	freeHook func(*Object)
}

// New returns an empty simulated heap.
func New() *Heap { return &Heap{} }

// Object is a simulated heap object. It implements Ref.
type Object struct {
	id    uint64
	label string
	// rid is a remote-protocol object ID (AllocRemote); hasRID objects
	// format their label lazily, so the server's per-object cost is free
	// of string formatting on the ingest path.
	rid    uint64
	hasRID bool
	dead   atomic.Bool
	h      *Heap
}

// Alloc allocates a new live object with a diagnostic label.
func (h *Heap) Alloc(label string) *Object {
	h.mu.Lock()
	h.nextID++
	id := h.nextID
	h.live++
	h.allocs++
	h.mu.Unlock()
	return &Object{id: id, label: label, h: h}
}

// AllocRemote allocates a live object standing in for a remote protocol
// object. The label ("r<rid>") is formatted only when Label is called —
// diagnostics pay for strings, the monitoring server's first-sight
// allocation does not.
func (h *Heap) AllocRemote(rid uint64) *Object {
	h.mu.Lock()
	h.nextID++
	id := h.nextID
	h.live++
	h.allocs++
	h.mu.Unlock()
	return &Object{id: id, rid: rid, hasRID: true, h: h}
}

// Free marks the object as collected. Freeing an already-dead object is a
// no-op, even when frees race: the hook-then-mark sequence runs under the
// heap lock, so the free hook fires exactly once per object, strictly
// before the death becomes visible through Alive.
func (h *Heap) Free(o *Object) {
	if o == nil || o.dead.Load() {
		return
	}
	h.mu.Lock()
	if o.dead.Load() {
		h.mu.Unlock()
		return
	}
	if h.freeHook != nil {
		h.freeHook(o)
	}
	o.dead.Store(true)
	h.live--
	h.frees++
	h.mu.Unlock()
}

// SetFreeHook registers f to run once per effective Free, before the
// object is marked dead. Trace recorders use it to capture death points in
// event order, and test harnesses use it to barrier asynchronous consumers
// against object death. Set it before the workload runs; the hook runs
// under the heap lock and must not call back into this Heap.
func (h *Heap) SetFreeHook(f func(*Object)) { h.freeHook = f }

// Stats returns the number of live objects, total allocations and frees.
func (h *Heap) Stats() (live int, allocs, frees uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.live, h.allocs, h.frees
}

// ID implements Ref.
func (o *Object) ID() uint64 { return o.id }

// Alive implements Ref.
func (o *Object) Alive() bool { return !o.dead.Load() }

// Label implements Ref.
func (o *Object) Label() string {
	if o.label != "" {
		return o.label
	}
	if o.hasRID {
		return fmt.Sprintf("r%d", o.rid)
	}
	return fmt.Sprintf("obj#%d", o.id)
}

var weakIDs atomic.Uint64

// Weak is a Ref backed by a real weak pointer; the referent becomes dead
// when the Go garbage collector reclaims it.
type Weak[T any] struct {
	id    uint64
	label string
	p     weak.Pointer[T]
}

// NewWeak wraps ptr in a weak Ref.
func NewWeak[T any](ptr *T, label string) *Weak[T] {
	return &Weak[T]{id: weakIDs.Add(1), label: label, p: weak.Make(ptr)}
}

// ID implements Ref.
func (w *Weak[T]) ID() uint64 { return w.id }

// Alive implements Ref.
func (w *Weak[T]) Alive() bool { return w.p.Value() != nil }

// Get returns a strong pointer to the referent, or nil if collected.
func (w *Weak[T]) Get() *T { return w.p.Value() }

// Label implements Ref.
func (w *Weak[T]) Label() string {
	if w.label != "" {
		return w.label
	}
	return fmt.Sprintf("weak#%d", w.id)
}

// ForceCollect encourages the runtime to collect unreachable referents of
// weak Refs. It is best-effort and intended for tests.
func ForceCollect() {
	for i := 0; i < 3; i++ {
		runtime.GC()
	}
}
