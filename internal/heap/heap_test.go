package heap_test

import (
	"runtime"
	"testing"

	"rvgo/internal/heap"
)

func TestSimHeapLifecycle(t *testing.T) {
	h := heap.New()
	a := h.Alloc("a")
	b := h.Alloc("b")
	if a.ID() == b.ID() || a.ID() == 0 {
		t.Fatal("ids must be distinct and nonzero")
	}
	if !a.Alive() || !b.Alive() {
		t.Fatal("fresh objects must be alive")
	}
	if live, allocs, frees := h.Stats(); live != 2 || allocs != 2 || frees != 0 {
		t.Fatalf("stats = %d %d %d", live, allocs, frees)
	}
	h.Free(a)
	if a.Alive() {
		t.Fatal("freed object must be dead")
	}
	h.Free(a) // double free is a no-op
	if live, _, frees := h.Stats(); live != 1 || frees != 1 {
		t.Fatalf("after double free: live=%d frees=%d", live, frees)
	}
	if a.Label() != "a" {
		t.Fatalf("label = %q", a.Label())
	}
	if h.Alloc("").Label() == "" {
		t.Fatal("unnamed objects get a synthetic label")
	}
}

func TestWeakRefCollected(t *testing.T) {
	type big struct{ buf [1024]byte }
	mk := func() *heap.Weak[big] {
		p := &big{}
		return heap.NewWeak(p, "w")
	}
	w := mk()
	// Best effort: the referent is unreachable after mk returns.
	heap.ForceCollect()
	if w.Alive() {
		t.Skip("runtime kept the weak referent alive (best-effort test)")
	}
	if w.Get() != nil {
		t.Fatal("Get must be nil after collection")
	}
}

func TestWeakRefAliveWhileHeld(t *testing.T) {
	p := &struct{ x int }{x: 42}
	w := heap.NewWeak(p, "held")
	heap.ForceCollect()
	if !w.Alive() || w.Get() == nil || w.Get().x != 42 {
		t.Fatal("weak ref must stay alive while the referent is reachable")
	}
	if w.ID() == 0 {
		t.Fatal("weak ids must be nonzero")
	}
	// Without this, the compiler may treat p as dead before ForceCollect
	// and the GC is free to clear the weak pointer mid-test.
	runtime.KeepAlive(p)
}
