// Package ltl implements the linear-temporal-logic plugin of the RV system
// (the `ltl:` block of Figure 2). The supported fragment is monitorable
// past-time LTL with an optional top-level future wrapper:
//
//	[] φ   — safety: category "violation" as soon as φ (past-time) fails,
//	<> φ   — co-safety: category "validation" as soon as φ holds,
//	φ      — bare: category "match" whenever φ holds at the current step.
//
// φ is past-time LTL over event atoms: exactly one event is observed per
// step, and the atom e holds iff the current event is e. Operators:
// !, /\, \/, -> (right associative), S (since), (*) (previously, strong),
// (~) (previously, weak), <*> (eventually in the past), [*] (always in the
// past). The paper's HASNEXT formula `[](next => (*)hasnexttrue)` is in
// this fragment.
//
// Monitor synthesis follows Havelund & Roşu: a state is the bit vector of
// current subformula values; stepping recomputes the vector bottom-up from
// the previous one in O(#subformulas). States are immutable and the
// reachable state graph is finite, so the blueprint is Explorable and the
// generic coenable analysis applies unchanged — the formalism-independence
// claim of the paper.
package ltl

import (
	"fmt"

	"rvgo/internal/logic"
)

type opKind int

const (
	opAtom opKind = iota
	opTrue
	opFalse
	opNot
	opAnd
	opOr
	opImplies
	opPrev     // (*) strong previously: false at the first step
	opWeakPrev // (~) weak previously: true at the first step
	opOnce     // <*> eventually in the past
	opHist     // [*] always in the past
	opSince    // S
)

// node is one subformula; children are indices of earlier nodes, so the
// slice of nodes is in bottom-up evaluation order.
type node struct {
	kind opKind
	sym  int // for opAtom
	l, r int // child indices (-1 when unused)
}

type wrapper int

const (
	wrapNone wrapper = iota
	wrapAlways
	wrapEventually
)

// Formula is a compiled ptLTL formula.
type Formula struct {
	alphabet []string
	nodes    []node
	root     int
	wrap     wrapper
	src      string
}

// Monitor turns a Formula into a logic.Explorable blueprint.
type Monitor struct{ f *Formula }

// Compile parses and compiles an LTL pattern over the alphabet.
func Compile(pattern string, alphabet []string) (*Monitor, error) {
	f, err := parse(pattern, alphabet)
	if err != nil {
		return nil, err
	}
	if len(f.nodes) > 58 {
		return nil, fmt.Errorf("ltl: formula has %d subformulas; at most 58 supported", len(f.nodes))
	}
	return &Monitor{f: f}, nil
}

// String returns the source pattern.
func (m *Monitor) String() string { return m.f.src }

// state packs subformula truth values into bits [0..n); bit 63 marks that
// at least one step has been taken; bit 62 is the latched verdict for the
// [] / <> wrappers.
type state struct {
	f    *Formula
	bits uint64
}

const (
	startedBit = uint64(1) << 63
	latchedBit = uint64(1) << 62
)

func (s state) val(i int) bool { return s.bits&(1<<uint(i)) != 0 }

// Step implements logic.State.
func (s state) Step(sym int) logic.State {
	f := s.f
	first := s.bits&startedBit == 0
	var nb uint64
	for i, n := range f.nodes {
		var v bool
		switch n.kind {
		case opAtom:
			v = n.sym == sym
		case opTrue:
			v = true
		case opFalse:
			v = false
		case opNot:
			v = nb&(1<<uint(n.l)) == 0
		case opAnd:
			v = nb&(1<<uint(n.l)) != 0 && nb&(1<<uint(n.r)) != 0
		case opOr:
			v = nb&(1<<uint(n.l)) != 0 || nb&(1<<uint(n.r)) != 0
		case opImplies:
			v = nb&(1<<uint(n.l)) == 0 || nb&(1<<uint(n.r)) != 0
		case opPrev:
			v = !first && s.val(n.l)
		case opWeakPrev:
			v = first || s.val(n.l)
		case opOnce:
			v = nb&(1<<uint(n.l)) != 0 || (!first && s.val(i))
		case opHist:
			v = nb&(1<<uint(n.l)) != 0 && (first || s.val(i))
		case opSince:
			// φ S ψ ≡ ψ ∨ (φ ∧ ◦(φ S ψ))
			v = nb&(1<<uint(n.r)) != 0 ||
				(nb&(1<<uint(n.l)) != 0 && !first && s.val(i))
		}
		if v {
			nb |= 1 << uint(i)
		}
	}
	nb |= startedBit
	rootHolds := nb&(1<<uint(f.root)) != 0
	// Latch wrapper verdicts: a safety violation or co-safety validation is
	// permanent (the monitor has reached a sink category).
	if s.bits&latchedBit != 0 {
		nb |= latchedBit
	} else {
		switch f.wrap {
		case wrapAlways:
			if !rootHolds {
				nb |= latchedBit
			}
		case wrapEventually:
			if rootHolds {
				nb |= latchedBit
			}
		}
	}
	return state{f: f, bits: nb}
}

// Category implements logic.State.
func (s state) Category() logic.Category {
	f := s.f
	switch f.wrap {
	case wrapAlways:
		if s.bits&latchedBit != 0 {
			return logic.Violation
		}
		return logic.Unknown
	case wrapEventually:
		if s.bits&latchedBit != 0 {
			return logic.Validation
		}
		return logic.Unknown
	default:
		if s.bits&startedBit != 0 && s.bits&(1<<uint(f.root)) != 0 {
			return logic.Match
		}
		return logic.Unknown
	}
}

// Alphabet implements logic.Blueprint.
func (m *Monitor) Alphabet() []string { return m.f.alphabet }

// Start implements logic.Blueprint.
func (m *Monitor) Start() logic.State { return state{f: m.f} }

// Categories implements logic.Blueprint.
func (m *Monitor) Categories() []logic.Category {
	switch m.f.wrap {
	case wrapAlways:
		return []logic.Category{logic.Unknown, logic.Violation}
	case wrapEventually:
		return []logic.Category{logic.Unknown, logic.Validation}
	default:
		return []logic.Category{logic.Unknown, logic.Match}
	}
}

// Explore implements logic.Explorable.
func (m *Monitor) Explore(limit int) (*logic.Graph, error) {
	return logic.ExploreStates(m, func(s logic.State) any { return s.(state).bits }, limit)
}

var _ logic.Explorable = (*Monitor)(nil)
