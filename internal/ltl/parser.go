package ltl

import (
	"fmt"
	"strings"
	"unicode"
)

// parse parses the `ltl:` syntax. Grammar:
//
//	top     := '[]' implies | '<>' implies | implies
//	implies := or ('->' implies)? | or ('=>' implies)?     (right assoc)
//	or      := and (('\/' | '||' | 'or') and)*
//	and     := since (('/\' | '&&' | 'and') since)*
//	since   := unary ('S' unary)*                          (left assoc)
//	unary   := ('!'|'not') unary | '(*)' unary | '(~)' unary
//	         | '<*>' unary | '[*]' unary | '(' implies ')'
//	         | 'true' | 'false' | event
func parse(src string, alphabet []string) (*Formula, error) {
	syms := map[string]int{}
	for i, e := range alphabet {
		syms[e] = i
	}
	p := &ltlParser{toks: lexLTL(src), syms: syms, f: &Formula{alphabet: alphabet, src: src}}

	switch p.peek() {
	case "[]":
		p.next()
		p.f.wrap = wrapAlways
	case "<>":
		p.next()
		p.f.wrap = wrapEventually
	}
	root, err := p.implies()
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.toks) {
		return nil, fmt.Errorf("ltl: unexpected %q at end of formula", p.toks[p.pos])
	}
	p.f.root = root
	return p.f, nil
}

type ltlParser struct {
	toks []string
	pos  int
	syms map[string]int
	f    *Formula
}

var ltlOps = []string{"[]", "<>", "(*)", "(~)", "<*>", "[*]", "->", "=>", "/\\", "\\/", "&&", "||", "(", ")", "!"}

func lexLTL(s string) []string {
	var toks []string
	i := 0
outer:
	for i < len(s) {
		if unicode.IsSpace(rune(s[i])) {
			i++
			continue
		}
		for _, op := range ltlOps {
			if strings.HasPrefix(s[i:], op) {
				toks = append(toks, op)
				i += len(op)
				continue outer
			}
		}
		j := i
		for j < len(s) && (unicode.IsLetter(rune(s[j])) || unicode.IsDigit(rune(s[j])) || s[j] == '_') {
			j++
		}
		if j == i {
			toks = append(toks, string(s[i]))
			i++
		} else {
			toks = append(toks, s[i:j])
			i = j
		}
	}
	return toks
}

func (p *ltlParser) peek() string {
	if p.pos < len(p.toks) {
		return p.toks[p.pos]
	}
	return ""
}

func (p *ltlParser) next() string {
	t := p.peek()
	p.pos++
	return t
}

func (p *ltlParser) add(n node) int {
	p.f.nodes = append(p.f.nodes, n)
	return len(p.f.nodes) - 1
}

func (p *ltlParser) implies() (int, error) {
	l, err := p.or()
	if err != nil {
		return 0, err
	}
	if t := p.peek(); t == "->" || t == "=>" {
		p.next()
		r, err := p.implies()
		if err != nil {
			return 0, err
		}
		return p.add(node{kind: opImplies, l: l, r: r}), nil
	}
	return l, nil
}

func (p *ltlParser) or() (int, error) {
	l, err := p.and()
	if err != nil {
		return 0, err
	}
	for {
		t := p.peek()
		if t != "\\/" && t != "||" && t != "or" {
			return l, nil
		}
		p.next()
		r, err := p.and()
		if err != nil {
			return 0, err
		}
		l = p.add(node{kind: opOr, l: l, r: r})
	}
}

func (p *ltlParser) and() (int, error) {
	l, err := p.since()
	if err != nil {
		return 0, err
	}
	for {
		t := p.peek()
		if t != "/\\" && t != "&&" && t != "and" {
			return l, nil
		}
		p.next()
		r, err := p.since()
		if err != nil {
			return 0, err
		}
		l = p.add(node{kind: opAnd, l: l, r: r})
	}
}

func (p *ltlParser) since() (int, error) {
	l, err := p.unary()
	if err != nil {
		return 0, err
	}
	for p.peek() == "S" {
		p.next()
		r, err := p.unary()
		if err != nil {
			return 0, err
		}
		l = p.add(node{kind: opSince, l: l, r: r})
	}
	return l, nil
}

func (p *ltlParser) unary() (int, error) {
	switch t := p.next(); t {
	case "":
		return 0, fmt.Errorf("ltl: unexpected end of formula")
	case "!", "not":
		x, err := p.unary()
		if err != nil {
			return 0, err
		}
		return p.add(node{kind: opNot, l: x, r: -1}), nil
	case "(*)":
		x, err := p.unary()
		if err != nil {
			return 0, err
		}
		return p.add(node{kind: opPrev, l: x, r: -1}), nil
	case "(~)":
		x, err := p.unary()
		if err != nil {
			return 0, err
		}
		return p.add(node{kind: opWeakPrev, l: x, r: -1}), nil
	case "<*>":
		x, err := p.unary()
		if err != nil {
			return 0, err
		}
		return p.add(node{kind: opOnce, l: x, r: -1}), nil
	case "[*]":
		x, err := p.unary()
		if err != nil {
			return 0, err
		}
		return p.add(node{kind: opHist, l: x, r: -1}), nil
	case "(":
		x, err := p.implies()
		if err != nil {
			return 0, err
		}
		if p.next() != ")" {
			return 0, fmt.Errorf("ltl: missing ')'")
		}
		return x, nil
	case "true":
		return p.add(node{kind: opTrue, l: -1, r: -1}), nil
	case "false":
		return p.add(node{kind: opFalse, l: -1, r: -1}), nil
	default:
		a, ok := p.syms[t]
		if !ok {
			return 0, fmt.Errorf("ltl: unknown event %q", t)
		}
		return p.add(node{kind: opAtom, sym: a, l: -1, r: -1}), nil
	}
}
