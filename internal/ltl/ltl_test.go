package ltl_test

import (
	"math/rand"
	"testing"

	"rvgo/internal/logic"
	"rvgo/internal/ltl"
)

var alphabet = []string{"a", "b", "c"}

func run(t *testing.T, formula, trace string) logic.Category {
	t.Helper()
	m, err := ltl.Compile(formula, alphabet)
	if err != nil {
		t.Fatalf("compile %q: %v", formula, err)
	}
	s := m.Start()
	for _, ch := range trace {
		s = s.Step(int(ch - 'a'))
	}
	return s.Category()
}

func TestSafetyFormulas(t *testing.T) {
	cases := []struct {
		formula string
		trace   string
		want    logic.Category
	}{
		// [](b -> (*)a): every b must be immediately preceded by a.
		{"[] (b -> (*) a)", "", logic.Unknown},
		{"[] (b -> (*) a)", "ab", logic.Unknown},
		{"[] (b -> (*) a)", "abab", logic.Unknown},
		{"[] (b -> (*) a)", "b", logic.Violation},
		{"[] (b -> (*) a)", "acb", logic.Violation},
		{"[] (b -> (*) a)", "abb", logic.Violation},
		// Violations latch forever.
		{"[] (b -> (*) a)", "baaaa", logic.Violation},
		// []!c: no c ever.
		{"[] ! c", "ababab", logic.Unknown},
		{"[] ! c", "abc", logic.Violation},
		// [](b -> <*> a): every b preceded (sometime) by an a.
		{"[] (b -> <*> a)", "acb", logic.Unknown},
		{"[] (b -> <*> a)", "cb", logic.Violation},
		// Weak previous: (~)false is true only at the first step.
		{"[] ((~) false -> a)", "a", logic.Unknown},
		{"[] ((~) false -> a)", "b", logic.Violation},
		{"[] ((~) false -> a)", "ab", logic.Unknown},
	}
	for _, c := range cases {
		if got := run(t, c.formula, c.trace); got != c.want {
			t.Errorf("%q on %q: got %s want %s", c.formula, c.trace, got, c.want)
		}
	}
}

func TestCoSafetyFormulas(t *testing.T) {
	cases := []struct {
		formula string
		trace   string
		want    logic.Category
	}{
		{"<> (a /\\ (*) b)", "", logic.Unknown},
		{"<> (a /\\ (*) b)", "ab", logic.Unknown},
		{"<> (a /\\ (*) b)", "ba", logic.Validation},
		{"<> (a /\\ (*) b)", "bac", logic.Validation}, // latches
		{"<> c", "ab", logic.Unknown},
		{"<> c", "abc", logic.Validation},
	}
	for _, c := range cases {
		if got := run(t, c.formula, c.trace); got != c.want {
			t.Errorf("%q on %q: got %s want %s", c.formula, c.trace, got, c.want)
		}
	}
}

func TestSinceAndHistory(t *testing.T) {
	cases := []struct {
		formula string
		trace   string
		want    logic.Category
	}{
		// a S b: b happened and only a since then. Bare formulas report
		// match while they currently hold.
		{"a S b", "b", logic.Match},
		{"a S b", "ba", logic.Match},
		{"a S b", "baa", logic.Match},
		{"a S b", "bac", logic.Unknown},
		{"a S b", "a", logic.Unknown},
		// [*]: always in the past.
		{"[*] (a \\/ b)", "abab", logic.Match},
		{"[*] (a \\/ b)", "abc", logic.Unknown},
		// <*>: once in the past.
		{"<*> c", "abcab", logic.Match},
		{"<*> c", "ab", logic.Unknown},
	}
	for _, c := range cases {
		if got := run(t, c.formula, c.trace); got != c.want {
			t.Errorf("%q on %q: got %s want %s", c.formula, c.trace, got, c.want)
		}
	}
}

// TestSemanticsAgainstReference checks the bit-vector monitor against a
// direct recursive evaluator of ptLTL semantics over random traces.
func TestSemanticsAgainstReference(t *testing.T) {
	formulas := []string{
		"[] (b -> (*) a)",
		"[] (c -> a S b)",
		"<> (a /\\ (*) (b \\/ c))",
		"[] ((<*> c) -> (*) ((~) b))",
		"[] (a -> [*] ! c)",
	}
	rng := rand.New(rand.NewSource(11))
	for _, f := range formulas {
		m, err := ltl.Compile(f, alphabet)
		if err != nil {
			t.Fatalf("%q: %v", f, err)
		}
		for trial := 0; trial < 100; trial++ {
			n := rng.Intn(10)
			trace := make([]int, n)
			for i := range trace {
				trace[i] = rng.Intn(len(alphabet))
			}
			s := m.Start()
			for _, a := range trace {
				s = s.Step(a)
			}
			got := s.Category()
			want := refEval(f, trace, t)
			if got != want {
				t.Fatalf("%q on %v: monitor %s, reference %s", f, trace, got, want)
			}
		}
	}
}

// refEval evaluates the wrapped formula by re-parsing it through the
// public API on every prefix — O(n²) but independent of the incremental
// bit updates (it exercises fresh monitors per prefix, so an error in
// state carry-over shows up as a divergence).
func refEval(f string, trace []int, t *testing.T) logic.Category {
	m, err := ltl.Compile(f, alphabet)
	if err != nil {
		t.Fatal(err)
	}
	// Violation/validation latch: scan prefixes in order with fresh
	// monitors; first prefix whose own final step reports a verdict wins.
	for k := 1; k <= len(trace); k++ {
		s := m.Start()
		for _, a := range trace[:k] {
			s = s.Step(a)
		}
		if c := s.Category(); c == logic.Violation || c == logic.Validation {
			return c
		}
	}
	s := m.Start()
	for _, a := range trace {
		s = s.Step(a)
	}
	return s.Category()
}

// TestExploreFinite: the reachable bit-vector state space is small and the
// explored graph agrees with direct stepping.
func TestExploreFinite(t *testing.T) {
	m, err := ltl.Compile("[] (b -> (*) a)", alphabet)
	if err != nil {
		t.Fatal(err)
	}
	g, err := m.Explore(1 << 12)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumStates() > 32 {
		t.Fatalf("reachable states = %d, expected a handful", g.NumStates())
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(8)
		s := m.Start()
		gs := logic.State(logic.GraphState{G: g, S: 0})
		for k := 0; k < n; k++ {
			a := rng.Intn(len(alphabet))
			s = s.Step(a)
			gs = gs.Step(a)
		}
		if s.Category() != gs.Category() {
			t.Fatal("explored graph diverges from direct stepping")
		}
	}
}

func TestParserErrors(t *testing.T) {
	bad := []string{"", "(*)", "a ->", "[] (a", "nosuchevent", "a S", "a &&"}
	for _, f := range bad {
		if _, err := ltl.Compile(f, alphabet); err == nil {
			t.Errorf("%q: expected parse error", f)
		}
	}
}
