package param

// Interner canonicalizes parameter instances: identical bindings map to one
// *Instance, so the engine's per-event bookkeeping (the processed set, the
// Δ domain, monitor identity) can key on an 8-byte pointer instead of the
// 72-byte Key, and instance equality becomes pointer equality.
//
// Steady state is allocation-free: an instance allocates once, the first
// time its bindings are seen, and every later event carrying the same
// bindings resolves to the same pointer through one map lookup. Interned
// instances hold heap.Refs, so the table never keeps parameter objects
// alive; entries whose objects died are dropped by Sweep under the caller's
// retention rule.
//
// An Interner is not safe for concurrent use. Each engine owns one, matching
// the engine's single-threaded dispatch discipline.
type Interner struct {
	m map[Key]*Instance
}

// NewInterner returns an empty intern table.
func NewInterner() *Interner { return &Interner{m: make(map[Key]*Instance)} }

// Intern returns the canonical pointer for t, allocating it on first sight.
func (in *Interner) Intern(t Instance) *Instance {
	k := t.Key()
	if p, ok := in.m[k]; ok {
		return p
	}
	p := new(Instance)
	*p = t
	in.m[k] = p
	return p
}

// Get returns the canonical pointer for an identity without creating one.
func (in *Interner) Get(k Key) (*Instance, bool) {
	p, ok := in.m[k]
	return p, ok
}

// Len returns the number of interned instances.
func (in *Interner) Len() int { return len(in.m) }

// Sweep drops entries with a dead bound object, except those retain keeps.
// Canonical pointers must outlive every holder: the caller's retain must
// return true for any instance still referenced outside the table (the
// engine retains instances its Δ domain still maps), or a recurrence of the
// same bindings would intern a second, distinct pointer.
func (in *Interner) Sweep(retain func(*Instance) bool) {
	for k, p := range in.m {
		if !p.AllAlive() && (retain == nil || !retain(p)) {
			delete(in.m, k)
		}
	}
}
