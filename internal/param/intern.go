package param

import "rvgo/internal/arena"

// Interner canonicalizes parameter instances: identical bindings map to one
// *Instance, so the engine's per-event bookkeeping (the processed set, the
// Δ domain, monitor identity) can key on an 8-byte pointer instead of the
// 72-byte Key, and instance equality becomes pointer equality.
//
// Instances are stored in a slab arena (package arena), not as individual
// heap objects: the canonical pointer is an interior pointer into a slab,
// stable for the slot's lifetime because slabs never move, and the slot is
// addressed by a generation-tagged handle that monitor records (which are
// pointer-free) can hold instead of a pointer. At millions of live
// instances the host collector sees O(slabs) objects, not O(instances).
//
// Slot lifetime is governed by two independent claims:
//
//   - the table mapping (Key → slot) exists from Intern until Sweep drops
//     it under the caller's retention rule, and
//   - a pin count, taken by the engine for every monitor that stores the
//     slot's handle, held until the monitor itself is recycled.
//
// A slot is recycled onto the arena free list only when both claims are
// gone, so a monitor's instance handle can never dangle even if the table
// entry was swept first.
//
// Steady state is allocation-free: an instance allocates once, the first
// time its bindings are seen, and every later event carrying the same
// bindings resolves to the same pointer through one map lookup. Interned
// instances hold heap.Refs, so the table never keeps parameter objects
// alive.
//
// An Interner is not safe for concurrent use. Each engine owns one, matching
// the engine's single-threaded dispatch discipline.
type Interner struct {
	m    map[Key]arena.Handle
	pool arena.Pool[islot]
}

// islot is one arena slot: the canonical instance plus its lifetime claims.
type islot struct {
	inst   Instance
	pins   int32
	mapped bool
}

// NewInterner returns an empty intern table.
func NewInterner() *Interner { return &Interner{m: make(map[Key]arena.Handle)} }

// Intern returns the canonical pointer and slot handle for t, allocating a
// slot on first sight.
func (in *Interner) Intern(t Instance) (*Instance, arena.Handle) {
	k := t.Key()
	if h, ok := in.m[k]; ok {
		return &in.pool.At(h).inst, h
	}
	h, s := in.pool.Alloc()
	s.inst = t
	s.mapped = true
	in.m[k] = h
	return &s.inst, h
}

// Get returns the canonical pointer and handle for an identity without
// creating one.
func (in *Interner) Get(k Key) (*Instance, arena.Handle, bool) {
	h, ok := in.m[k]
	if !ok {
		return nil, arena.Nil, false
	}
	return &in.pool.At(h).inst, h, true
}

// At returns the instance stored in a live slot. Panics on a stale handle —
// a pinned slot is never stale, so a panic here means a monitor outlived
// its pin (an engine bug).
func (in *Interner) At(h arena.Handle) *Instance { return &in.pool.At(h).inst }

// Pin adds a lifetime claim to the slot: it will survive Sweep (the table
// mapping may still be dropped) until the matching Unpin.
func (in *Interner) Pin(h arena.Handle) { in.pool.At(h).pins++ }

// Unpin drops a pin; the slot is recycled once it is unpinned and the
// table no longer maps it.
func (in *Interner) Unpin(h arena.Handle) {
	s := in.pool.At(h)
	s.pins--
	if s.pins <= 0 && !s.mapped {
		in.pool.Free(h)
	}
}

// Len returns the number of interned (table-mapped) instances.
func (in *Interner) Len() int { return len(in.m) }

// Stats returns the slot arena's occupancy snapshot (pinned-but-unmapped
// slots count as live until their monitors release them).
func (in *Interner) Stats() arena.Stats { return in.pool.Stats() }

// Sweep drops table entries with a dead bound object, except those retain
// keeps. Canonical pointers must outlive every holder: the caller's retain
// must return true for any instance whose *pointer* is still used as a map
// key outside the table (the engine retains instances its Δ domain still
// maps), or a recurrence of the same bindings would intern a second,
// distinct pointer. Slots that are still pinned by a monitor survive the
// sweep unmapped and are recycled by the final Unpin.
func (in *Interner) Sweep(retain func(*Instance) bool) {
	for k, h := range in.m {
		s := in.pool.At(h)
		if !s.inst.AllAlive() && (retain == nil || !retain(&s.inst)) {
			delete(in.m, k)
			s.mapped = false
			if s.pins <= 0 {
				in.pool.Free(h)
			}
		}
	}
}

// Reset drops the table and every slab, returning the store to the host
// allocator in O(1) regardless of size. All handles become stale.
func (in *Interner) Reset() {
	in.m = make(map[Key]arena.Handle)
	in.pool.Reset()
}
