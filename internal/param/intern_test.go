package param

import (
	"testing"

	"rvgo/internal/heap"
)

func TestInternerCanonicalizes(t *testing.T) {
	h := heap.New()
	a, b := h.Alloc("a"), h.Alloc("b")
	in := NewInterner()

	p1 := in.Intern(Of(SetOf(0, 1), a, b))
	p2 := in.Intern(Of(SetOf(0, 1), a, b))
	if p1 != p2 {
		t.Fatalf("identical bindings interned to distinct pointers %p %p", p1, p2)
	}
	p3 := in.Intern(Of(SetOf(0), a))
	if p3 == p1 {
		t.Fatalf("distinct bindings interned to one pointer")
	}
	if in.Len() != 2 {
		t.Fatalf("Len = %d, want 2", in.Len())
	}
	if got, ok := in.Get(p1.Key()); !ok || got != p1 {
		t.Fatalf("Get(%v) = %v, %v", p1.Key(), got, ok)
	}
	if _, ok := in.Get(Of(SetOf(1), b).Key()); ok {
		t.Fatalf("Get invented an entry")
	}
}

func TestInternerSweep(t *testing.T) {
	h := heap.New()
	a, b, c := h.Alloc("a"), h.Alloc("b"), h.Alloc("c")
	in := NewInterner()
	pa := in.Intern(Of(SetOf(0), a))
	pb := in.Intern(Of(SetOf(0), b))
	pc := in.Intern(Of(SetOf(0), c))

	h.Free(b)
	h.Free(c)
	in.Sweep(func(p *Instance) bool { return p == pc }) // pc pinned by caller
	if in.Len() != 2 {
		t.Fatalf("Len = %d after sweep, want 2", in.Len())
	}
	if got, ok := in.Get(pa.Key()); !ok || got != pa {
		t.Fatalf("live entry swept")
	}
	if got, ok := in.Get(pc.Key()); !ok || got != pc {
		t.Fatalf("retained entry swept")
	}
	if _, ok := in.Get(pb.Key()); ok {
		t.Fatalf("dead unretained entry kept")
	}

	// A recurrence of swept bindings gets a fresh canonical pointer; the
	// pinned one keeps its identity.
	if in.Intern(*pc) != pc {
		t.Fatalf("pinned instance lost its canonical pointer")
	}
}

func TestAllAliveAndBitIteration(t *testing.T) {
	h := heap.New()
	a, b := h.Alloc("a"), h.Alloc("b")
	inst := Of(SetOf(1, 3), a, b)
	if !inst.AllAlive() {
		t.Fatalf("AllAlive = false on live instance")
	}
	h.Free(b)
	if inst.AllAlive() {
		t.Fatalf("AllAlive = true with dead binding")
	}
	if inst.AliveMask() != SetOf(1) {
		t.Fatalf("AliveMask = %v, want {1}", inst.AliveMask())
	}

	// First/Rest enumerate exactly Members, in order.
	s := SetOf(0, 2, 5, 7)
	var got []int
	for m := s; m != 0; m = m.Rest() {
		got = append(got, m.First())
	}
	want := s.Members()
	if len(got) != len(want) {
		t.Fatalf("bit iteration yielded %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("bit iteration yielded %v, want %v", got, want)
		}
	}
}
