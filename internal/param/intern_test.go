package param

import (
	"testing"

	"rvgo/internal/heap"
)

func TestInternerCanonicalizes(t *testing.T) {
	h := heap.New()
	a, b := h.Alloc("a"), h.Alloc("b")
	in := NewInterner()

	p1, h1 := in.Intern(Of(SetOf(0, 1), a, b))
	p2, h2 := in.Intern(Of(SetOf(0, 1), a, b))
	if p1 != p2 || h1 != h2 {
		t.Fatalf("identical bindings interned to distinct slots %p %p", p1, p2)
	}
	p3, h3 := in.Intern(Of(SetOf(0), a))
	if p3 == p1 || h3 == h1 {
		t.Fatalf("distinct bindings interned to one slot")
	}
	if in.Len() != 2 {
		t.Fatalf("Len = %d, want 2", in.Len())
	}
	if got, gh, ok := in.Get(p1.Key()); !ok || got != p1 || gh != h1 {
		t.Fatalf("Get(%v) = %v, %v, %v", p1.Key(), got, gh, ok)
	}
	if in.At(h1) != p1 {
		t.Fatalf("At(%v) != canonical pointer", h1)
	}
	if _, _, ok := in.Get(Of(SetOf(1), b).Key()); ok {
		t.Fatalf("Get invented an entry")
	}
}

func TestInternerSweep(t *testing.T) {
	h := heap.New()
	a, b, c := h.Alloc("a"), h.Alloc("b"), h.Alloc("c")
	in := NewInterner()
	pa, _ := in.Intern(Of(SetOf(0), a))
	pb, _ := in.Intern(Of(SetOf(0), b))
	pc, _ := in.Intern(Of(SetOf(0), c))

	h.Free(b)
	h.Free(c)
	in.Sweep(func(p *Instance) bool { return p == pc }) // pc retained by caller
	if in.Len() != 2 {
		t.Fatalf("Len = %d after sweep, want 2", in.Len())
	}
	if got, _, ok := in.Get(pa.Key()); !ok || got != pa {
		t.Fatalf("live entry swept")
	}
	if got, _, ok := in.Get(pc.Key()); !ok || got != pc {
		t.Fatalf("retained entry swept")
	}
	if _, _, ok := in.Get(pb.Key()); ok {
		t.Fatalf("dead unretained entry kept")
	}

	// A recurrence of swept bindings gets a fresh canonical pointer; the
	// retained one keeps its identity.
	if got, _ := in.Intern(*pc); got != pc {
		t.Fatalf("retained instance lost its canonical pointer")
	}
}

// TestInternerPins: a monitor's pin keeps the slot alive across a sweep
// that drops the table mapping; the final Unpin recycles it.
func TestInternerPins(t *testing.T) {
	h := heap.New()
	a := h.Alloc("a")
	in := NewInterner()
	pa, ha := in.Intern(Of(SetOf(0), a))
	in.Pin(ha)

	h.Free(a)
	in.Sweep(nil)
	if in.Len() != 0 {
		t.Fatalf("Len = %d after sweep, want 0 (mapping dropped)", in.Len())
	}
	// The pinned slot survives: the canonical pointer still dereferences.
	if in.At(ha) != pa {
		t.Fatalf("pinned slot recycled under a live handle")
	}
	if live := in.Stats().Live; live != 1 {
		t.Fatalf("arena live = %d, want 1 (the pinned slot)", live)
	}
	in.Unpin(ha)
	if live := in.Stats().Live; live != 0 {
		t.Fatalf("arena live = %d after final Unpin, want 0", live)
	}
}

// TestInternerUnpinWhileMapped: dropping the last pin does not recycle a
// slot the table still maps — Sweep owns the mapping claim.
func TestInternerUnpinWhileMapped(t *testing.T) {
	h := heap.New()
	a := h.Alloc("a")
	in := NewInterner()
	pa, ha := in.Intern(Of(SetOf(0), a))
	in.Pin(ha)
	in.Unpin(ha)
	if got, gh, ok := in.Get(pa.Key()); !ok || got != pa || gh != ha {
		t.Fatalf("mapped slot recycled by Unpin")
	}
	if live := in.Stats().Live; live != 1 {
		t.Fatalf("arena live = %d, want 1", live)
	}
}

func TestAllAliveAndBitIteration(t *testing.T) {
	h := heap.New()
	a, b := h.Alloc("a"), h.Alloc("b")
	inst := Of(SetOf(1, 3), a, b)
	if !inst.AllAlive() {
		t.Fatalf("AllAlive = false on live instance")
	}
	h.Free(b)
	if inst.AllAlive() {
		t.Fatalf("AllAlive = true with dead binding")
	}
	if inst.AliveMask() != SetOf(1) {
		t.Fatalf("AliveMask = %v, want {1}", inst.AliveMask())
	}

	// First/Rest enumerate exactly Members, in order.
	s := SetOf(0, 2, 5, 7)
	var got []int
	for m := s; m != 0; m = m.Rest() {
		got = append(got, m.First())
	}
	want := s.Members()
	if len(got) != len(want) {
		t.Fatalf("bit iteration yielded %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("bit iteration yielded %v, want %v", got, want)
		}
	}
}
