// Package param implements parameter instances for parametric monitoring:
// partial functions θ ∈ [X ⇁ V] from a finite set of parameters X to
// runtime objects V, together with the informativeness order θ ⊑ θ',
// compatibility, and least upper bounds θ ⊔ θ' (paper §2, Definitions 3–5).
//
// A property has at most MaxParams parameters; parameters are identified by
// their index in the property's parameter list, and sets of parameters are
// bitmasks (Set). Values are heap.Refs, so instances never keep parameter
// objects alive.
package param

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"rvgo/internal/heap"
)

// MaxParams is the maximum number of parameters per property. The paper's
// evaluated properties use at most three (UNSAFEMAPITER and the UNSAFESYNC
// variants bind a map, a collection view and an iterator).
const MaxParams = 8

// Set is a bitmask of parameter indices.
type Set uint16

// SetOf builds a Set from parameter indices.
func SetOf(idx ...int) Set {
	var s Set
	for _, i := range idx {
		s |= 1 << uint(i)
	}
	return s
}

// Has reports whether parameter i is in the set.
func (s Set) Has(i int) bool { return s&(1<<uint(i)) != 0 }

// Union returns s ∪ t.
func (s Set) Union(t Set) Set { return s | t }

// Inter returns s ∩ t.
func (s Set) Inter(t Set) Set { return s & t }

// Diff returns s \ t.
func (s Set) Diff(t Set) Set { return s &^ t }

// SubsetOf reports s ⊆ t.
func (s Set) SubsetOf(t Set) bool { return s&^t == 0 }

// Empty reports whether the set has no members.
func (s Set) Empty() bool { return s == 0 }

// Count returns the number of parameters in the set.
func (s Set) Count() int { return bits.OnesCount16(uint16(s)) }

// Members returns the parameter indices in increasing order. It allocates;
// hot paths iterate the mask directly (see the bit loops below) instead.
func (s Set) Members() []int {
	m := make([]int, 0, s.Count())
	for i := 0; i < MaxParams; i++ {
		if s.Has(i) {
			m = append(m, i)
		}
	}
	return m
}

// The hot-path iteration idiom: peel the lowest set bit until empty.
//
//	for m := s; m != 0; m = m.Rest() {
//		i := m.First()
//		...
//	}
//
// First/Rest compile to two instructions each and never allocate, unlike
// Members. Every per-event path below uses this form.

// First returns the smallest parameter index in the set. Undefined on the
// empty set.
func (s Set) First() int { return bits.TrailingZeros16(uint16(s)) }

// Rest returns the set without its smallest member.
func (s Set) Rest() Set { return s & (s - 1) }

// Format renders the set using the given parameter names, e.g. "{c, i}".
func (s Set) Format(names []string) string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for _, i := range s.Members() {
		if !first {
			b.WriteString(", ")
		}
		first = false
		if i < len(names) {
			b.WriteString(names[i])
		} else {
			fmt.Fprintf(&b, "p%d", i)
		}
	}
	b.WriteByte('}')
	return b.String()
}

// Instance is a parameter instance θ: a partial map from parameter indices
// to objects. The zero value is ⊥, the empty instance.
type Instance struct {
	mask Set
	vals [MaxParams]heap.Ref
}

// Empty returns ⊥, the instance binding no parameters.
func Empty() Instance { return Instance{} }

// Bind returns a copy of θ with parameter i bound to v. Rebinding a
// parameter to a different object panics: event dispatch never rebinds.
func (t Instance) Bind(i int, v heap.Ref) Instance {
	if v == nil {
		panic("param: Bind with nil value")
	}
	if t.mask.Has(i) && t.vals[i].ID() != v.ID() {
		panic(fmt.Sprintf("param: rebinding parameter %d", i))
	}
	t.mask |= 1 << uint(i)
	t.vals[i] = v
	return t
}

// Of builds an instance binding the given parameter indices (mask) to vals,
// in increasing index order.
func Of(mask Set, vals ...heap.Ref) Instance {
	if mask.Count() != len(vals) {
		panic("param: Of arity mismatch")
	}
	t := Instance{}
	k := 0
	for m := mask; m != 0; m = m.Rest() {
		t = t.Bind(m.First(), vals[k])
		k++
	}
	return t
}

// Mask returns dom(θ) as a Set.
func (t Instance) Mask() Set { return t.mask }

// Value returns θ(i), or nil if i ∉ dom(θ).
func (t Instance) Value(i int) heap.Ref {
	if !t.mask.Has(i) {
		return nil
	}
	return t.vals[i]
}

// Compatible reports whether θ and u agree on dom(θ) ∩ dom(u) (Def. 5).
func (t Instance) Compatible(u Instance) bool {
	for m := t.mask & u.mask; m != 0; m = m.Rest() {
		i := m.First()
		if t.vals[i].ID() != u.vals[i].ID() {
			return false
		}
	}
	return true
}

// LessInformative reports θ ⊑ u: every binding of θ is a binding of u.
func (t Instance) LessInformative(u Instance) bool {
	if !t.mask.SubsetOf(u.mask) {
		return false
	}
	for m := t.mask; m != 0; m = m.Rest() {
		i := m.First()
		if t.vals[i].ID() != u.vals[i].ID() {
			return false
		}
	}
	return true
}

// Lub returns θ ⊔ u and true when the two instances are compatible;
// otherwise the zero Instance and false.
func (t Instance) Lub(u Instance) (Instance, bool) {
	if !t.Compatible(u) {
		return Instance{}, false
	}
	r := t
	for m := u.mask; m != 0; m = m.Rest() {
		i := m.First()
		r = r.Bind(i, u.vals[i])
	}
	return r, true
}

// Restrict returns θ restricted to the parameters in s.
func (t Instance) Restrict(s Set) Instance {
	r := Instance{}
	for m := t.mask & s; m != 0; m = m.Rest() {
		i := m.First()
		r = r.Bind(i, t.vals[i])
	}
	return r
}

// AliveMask returns the set of bound parameters whose objects are alive.
func (t Instance) AliveMask() Set {
	var s Set
	for m := t.mask; m != 0; m = m.Rest() {
		i := m.First()
		if t.vals[i].Alive() {
			s |= 1 << uint(i)
		}
	}
	return s
}

// AllAlive reports whether every bound parameter object is alive — the
// per-event death check, with an early exit the full AliveMask lacks.
func (t Instance) AllAlive() bool {
	for m := t.mask; m != 0; m = m.Rest() {
		if !t.vals[m.First()].Alive() {
			return false
		}
	}
	return true
}

// Key is a comparable identity for an instance, suitable as a map key.
type Key struct {
	Mask Set
	IDs  [MaxParams]uint64
}

// Key returns the instance's identity.
func (t Instance) Key() Key {
	k := Key{Mask: t.mask}
	for m := t.mask; m != 0; m = m.Rest() {
		i := m.First()
		k.IDs[i] = t.vals[i].ID()
	}
	return k
}

// String renders the instance as ⟨name↦label, …⟩ using indices as names.
func (t Instance) String() string {
	var b strings.Builder
	b.WriteByte('<')
	first := true
	for _, i := range t.mask.Members() {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "p%d=%s", i, t.vals[i].Label())
	}
	b.WriteByte('>')
	return b.String()
}

// Format renders the instance using the given parameter names.
func (t Instance) Format(names []string) string {
	var b strings.Builder
	b.WriteByte('<')
	first := true
	for _, i := range t.mask.Members() {
		if !first {
			b.WriteString(", ")
		}
		first = false
		name := fmt.Sprintf("p%d", i)
		if i < len(names) {
			name = names[i]
		}
		fmt.Fprintf(&b, "%s=%s", name, t.vals[i].Label())
	}
	b.WriteByte('>')
	return b.String()
}

// SortKeys sorts instance keys deterministically (mask, then IDs); used to
// make verdict reports and tests stable.
func SortKeys(keys []Key) {
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].Mask != keys[b].Mask {
			return keys[a].Mask < keys[b].Mask
		}
		for i := 0; i < MaxParams; i++ {
			if keys[a].IDs[i] != keys[b].IDs[i] {
				return keys[a].IDs[i] < keys[b].IDs[i]
			}
		}
		return false
	})
}
