package param_test

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"rvgo/internal/heap"
	"rvgo/internal/param"
)

var testHeap = heap.New()

// pool is a fixed set of objects so random instances share values.
var pool = func() []*heap.Object {
	out := make([]*heap.Object, 6)
	for i := range out {
		out[i] = testHeap.Alloc("")
	}
	return out
}()

// randInstance builds a random instance over 4 parameters and 6 values.
type randInstance struct{ inst param.Instance }

func (randInstance) Generate(r *rand.Rand, _ int) reflect.Value {
	inst := param.Empty()
	for i := 0; i < 4; i++ {
		if r.Intn(2) == 1 {
			inst = inst.Bind(i, pool[r.Intn(len(pool))])
		}
	}
	return reflect.ValueOf(randInstance{inst})
}

func TestSetBasics(t *testing.T) {
	s := param.SetOf(0, 2, 5)
	if !s.Has(0) || !s.Has(2) || !s.Has(5) || s.Has(1) {
		t.Fatalf("membership broken: %v", s)
	}
	if s.Count() != 3 {
		t.Fatalf("count = %d", s.Count())
	}
	if got := s.Members(); !reflect.DeepEqual(got, []int{0, 2, 5}) {
		t.Fatalf("members = %v", got)
	}
	if !param.SetOf(0).SubsetOf(s) || param.SetOf(1).SubsetOf(s) {
		t.Fatal("subset broken")
	}
	if s.Union(param.SetOf(1)) != param.SetOf(0, 1, 2, 5) {
		t.Fatal("union broken")
	}
	if s.Inter(param.SetOf(2, 3)) != param.SetOf(2) {
		t.Fatal("inter broken")
	}
	if s.Diff(param.SetOf(2)) != param.SetOf(0, 5) {
		t.Fatal("diff broken")
	}
	if s.Format([]string{"a", "b", "c"}) != "{a, c, p5}" {
		t.Fatalf("format = %q", s.Format([]string{"a", "b", "c"}))
	}
}

// TestLubIsLeastUpperBound: θ ⊔ θ' is an upper bound of both and is below
// any other upper bound (Definition 5).
func TestLubIsLeastUpperBound(t *testing.T) {
	f := func(a, b, c randInstance) bool {
		lub, ok := a.inst.Lub(b.inst)
		if !ok {
			return !a.inst.Compatible(b.inst)
		}
		if !a.inst.LessInformative(lub) || !b.inst.LessInformative(lub) {
			return false
		}
		// Any other upper bound of a and b is above the lub.
		if a.inst.LessInformative(c.inst) && b.inst.LessInformative(c.inst) {
			return lub.LessInformative(c.inst)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestCompatibilitySymmetric: compatibility is symmetric and reflexive.
func TestCompatibilitySymmetric(t *testing.T) {
	f := func(a, b randInstance) bool {
		if !a.inst.Compatible(a.inst) {
			return false
		}
		return a.inst.Compatible(b.inst) == b.inst.Compatible(a.inst)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestLessInformativePartialOrder: ⊑ is reflexive, antisymmetric (via
// keys) and transitive.
func TestLessInformativePartialOrder(t *testing.T) {
	f := func(a, b, c randInstance) bool {
		if !a.inst.LessInformative(a.inst) {
			return false
		}
		if a.inst.LessInformative(b.inst) && b.inst.LessInformative(a.inst) &&
			a.inst.Key() != b.inst.Key() {
			return false
		}
		if a.inst.LessInformative(b.inst) && b.inst.LessInformative(c.inst) &&
			!a.inst.LessInformative(c.inst) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestRestrictProperties: θ|S ⊑ θ, dom(θ|S) = dom(θ) ∩ S.
func TestRestrictProperties(t *testing.T) {
	f := func(a randInstance, sBits uint8) bool {
		s := param.Set(sBits) & param.SetOf(0, 1, 2, 3)
		r := a.inst.Restrict(s)
		return r.LessInformative(a.inst) && r.Mask() == a.inst.Mask().Inter(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestKeyIdentity: keys are equal iff instances bind the same values.
func TestKeyIdentity(t *testing.T) {
	f := func(a, b randInstance) bool {
		same := a.inst.Mask() == b.inst.Mask()
		if same {
			for _, i := range a.inst.Mask().Members() {
				if a.inst.Value(i).ID() != b.inst.Value(i).ID() {
					same = false
					break
				}
			}
		}
		return (a.inst.Key() == b.inst.Key()) == same
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestBindRules(t *testing.T) {
	a := param.Empty().Bind(1, pool[0])
	if a.Mask() != param.SetOf(1) || a.Value(1).ID() != pool[0].ID() {
		t.Fatal("bind broken")
	}
	if a.Value(0) != nil {
		t.Fatal("unbound value must be nil")
	}
	// Rebinding to the same object is a no-op; to a different one panics.
	_ = a.Bind(1, pool[0])
	defer func() {
		if recover() == nil {
			t.Fatal("rebinding to a different object must panic")
		}
	}()
	_ = a.Bind(1, pool[1])
}

func TestAliveMask(t *testing.T) {
	h := heap.New()
	x, y := h.Alloc("x"), h.Alloc("y")
	inst := param.Empty().Bind(0, x).Bind(2, y)
	if inst.AliveMask() != param.SetOf(0, 2) {
		t.Fatal("both alive expected")
	}
	h.Free(y)
	if inst.AliveMask() != param.SetOf(0) {
		t.Fatal("y should be dead")
	}
}

func TestFormat(t *testing.T) {
	inst := param.Empty().Bind(0, pool[0]).Bind(1, pool[1])
	got := inst.Format([]string{"c", "i"})
	want := "<c=" + pool[0].Label() + ", i=" + pool[1].Label() + ">"
	if got != want {
		t.Fatalf("format = %q want %q", got, want)
	}
}

func TestOfArityMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("arity mismatch must panic")
		}
	}()
	param.Of(param.SetOf(0, 1), pool[0])
}
