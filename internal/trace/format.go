// Package trace is the persistent trace store and flight recorder: the
// "recorded pasts" substrate for retroactive parametric monitoring.
//
// The online runtimes (sequential engine, sharded runtime, remote server)
// observe an event stream once and discard it. This package makes the
// stream durable: a Writer taps every Dispatch/Free into an append-only
// segment file, and a Reader replays a stored trace — whole, slice-filtered
// or partitioned across parallel workers — through any monitor.Runtime, so
// a specification written after the fact can be checked against the exact
// past, with verdicts and settled counters bit-identical to online
// monitoring of the same stream.
//
// # On-disk format
//
// A trace file is a five-byte header ("RVTR" + version) followed by
// independent segments. Each segment is fully self-describing and
// CRC-guarded:
//
//	"RSEG"                                  segment magic
//	uvarint payloadLen                      length prefix
//	payload                                 see below
//	uint32le CRC32-IEEE(payload)            footer
//
// The payload reuses the internal/wire encoding idioms — unsigned varints
// for integers, uvarint-length-prefixed UTF-8 for strings:
//
//	uvarint nsyms, then per symbol: name string, uvarint paramMask
//	varint  pivot                           pivot parameter index, -1 = none
//	uvarint npivot, then npivot delta-encoded ascending pivot object IDs
//	uvarint broadcast                       events in segment not binding pivot
//	uvarint nevents                         event records in segment
//	uvarint nrecords                        total records (events + frees)
//	records                                 tagged, in stream order
//
// A record is a tag byte followed by its body: recEvent (uvarint symbol,
// then one uvarint object ID per parameter in D(sym), ascending parameter
// order) or recFree (uvarint count, then the IDs of the objects dying at
// this stream position). Object IDs are the recording heap's stable
// heap.Ref IDs; labels never touch the disk.
//
// The per-segment pivot index is the retroactive analogue of the
// internal/shard router: the pivot is the parameter every creation event
// binds, so every monitor instance binds it and trace slices partition by
// pivot object. A query interested in particular slices — or a parallel
// replay worker owning a hash partition of them — can skip a whole segment
// when the segment's pivot set contains none of its objects and the
// segment carries no broadcast (non-pivot-binding) events.
//
// Torn tails are expected, not fatal: a crashed writer leaves a final
// segment without a valid footer, and Open simply truncates the trace at
// the last intact segment (Reader.Truncated reports it).
package trace

import (
	"encoding/binary"
	"errors"
	"fmt"

	"rvgo/internal/param"
)

// Version is the trace-format version; Open refuses files written by a
// version it does not speak.
const Version = 1

// fileMagic opens a trace file; segMagic opens every segment.
const (
	fileMagic = "RVTR"
	segMagic  = "RSEG"
)

// MaxSegment bounds a segment payload (64 MiB). A length prefix beyond it
// means corruption, and scanning stops at the previous intact segment.
const MaxSegment = 1 << 26

// Record tags.
const (
	recEvent byte = 0
	recFree  byte = 1
)

// ErrNotTrace reports a file that does not begin with the trace header.
var ErrNotTrace = errors.New("trace: not a trace file (bad magic)")

// SymbolDef is one symbol-table entry: an event name and the parameter
// set it binds. A spec-level trace records the spec's alphabet
// (CreateForSpec); other producers — the DaCapo instrumentation recorder —
// define their own alphabet over the same container.
type SymbolDef struct {
	Name   string
	Params param.Set
}

// segHeader is the decoded per-segment metadata: everything a reader needs
// to decide whether to replay, skip or partition the segment before
// touching a single record.
type segHeader struct {
	syms      []SymbolDef
	pivot     int      // recording spec's pivot parameter, -1 = none
	pivotIDs  []uint64 // ascending object IDs of pivots bound in segment
	broadcast uint64   // events not binding the pivot
	events    uint64   // event records
	records   uint64   // total records
}

// enc is the payload encoder: append-only over a byte slice, mirroring
// wire.Writer's varint helpers.
type enc struct{ buf []byte }

func (e *enc) u(v uint64)   { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *enc) i(v int64)    { e.buf = binary.AppendVarint(e.buf, v) }
func (e *enc) b(v byte)     { e.buf = append(e.buf, v) }
func (e *enc) s(str string) { e.u(uint64(len(str))); e.buf = append(e.buf, str...) }

// dec is the payload decoder: a cursor over a shared read-only byte slice,
// so parallel replay workers decode the same mapped data without copying.
type dec struct {
	buf []byte
	pos int
}

var errShort = errors.New("trace: truncated segment payload")

func (d *dec) u() (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.pos:])
	if n <= 0 {
		return 0, errShort
	}
	d.pos += n
	return v, nil
}

func (d *dec) i() (int64, error) {
	v, n := binary.Varint(d.buf[d.pos:])
	if n <= 0 {
		return 0, errShort
	}
	d.pos += n
	return v, nil
}

func (d *dec) b() (byte, error) {
	if d.pos >= len(d.buf) {
		return 0, errShort
	}
	v := d.buf[d.pos]
	d.pos++
	return v, nil
}

func (d *dec) s() (string, error) {
	n, err := d.u()
	if err != nil {
		return "", err
	}
	if uint64(len(d.buf)-d.pos) < n {
		return "", errShort
	}
	s := string(d.buf[d.pos : d.pos+int(n)])
	d.pos += int(n)
	return s, nil
}

// encodeSymbols writes the recorder's event alphabet as the segment symbol
// table. The full alphabet (not just the symbols appearing in the segment)
// keeps symbol indices identical to the recorder's, so records can carry
// the raw dispatch symbol.
func encodeSymbols(e *enc, syms []SymbolDef) {
	e.u(uint64(len(syms)))
	for _, ev := range syms {
		e.s(ev.Name)
		e.u(uint64(ev.Params))
	}
}

// decodeHeader decodes a segment payload's header, leaving the decoder
// positioned at the first record.
func decodeHeader(d *dec) (*segHeader, error) {
	h := &segHeader{}
	nsyms, err := d.u()
	if err != nil {
		return nil, err
	}
	if nsyms > uint64(len(d.buf)-d.pos) {
		return nil, errShort
	}
	h.syms = make([]SymbolDef, nsyms)
	for i := range h.syms {
		if h.syms[i].Name, err = d.s(); err != nil {
			return nil, err
		}
		m, err := d.u()
		if err != nil {
			return nil, err
		}
		if m >= 1<<param.MaxParams {
			return nil, fmt.Errorf("trace: symbol %q has parameter mask %#x beyond MaxParams", h.syms[i].Name, m)
		}
		h.syms[i].Params = param.Set(m)
	}
	pivot, err := d.i()
	if err != nil {
		return nil, err
	}
	if pivot < -1 || pivot >= param.MaxParams {
		return nil, fmt.Errorf("trace: pivot parameter %d out of range", pivot)
	}
	h.pivot = int(pivot)
	npivot, err := d.u()
	if err != nil {
		return nil, err
	}
	if npivot > uint64(len(d.buf)-d.pos) {
		return nil, errShort
	}
	h.pivotIDs = make([]uint64, npivot)
	var prev uint64
	for i := range h.pivotIDs {
		delta, err := d.u()
		if err != nil {
			return nil, err
		}
		prev += delta
		h.pivotIDs[i] = prev
	}
	if h.broadcast, err = d.u(); err != nil {
		return nil, err
	}
	if h.events, err = d.u(); err != nil {
		return nil, err
	}
	if h.records, err = d.u(); err != nil {
		return nil, err
	}
	return h, nil
}

// pivotPos returns the position of parameter pivot within mask, counting
// set bits below it — the index of the pivot's object ID in a record's
// ascending-parameter ID list.
func pivotPos(mask param.Set, pivot int) int {
	return mask.Inter(param.Set(1<<uint(pivot)) - 1).Count()
}

// hasPivot reports whether a pivot-filtered or partitioned reader owns any
// of the segment's pivot objects. Both lists are ascending, so this is a
// linear merge.
func hasPivot(segIDs, want []uint64) bool {
	i, j := 0, 0
	for i < len(segIDs) && j < len(want) {
		switch {
		case segIDs[i] == want[j]:
			return true
		case segIDs[i] < want[j]:
			i++
		default:
			j++
		}
	}
	return false
}
