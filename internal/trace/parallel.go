package trace

import (
	"fmt"
	"sync"

	"rvgo/internal/monitor"
	"rvgo/internal/shard"
)

// ParallelConfig configures a parallel retroactive replay.
type ParallelConfig struct {
	// Workers is the replay fan-out; ≤1 degrades to a single worker.
	Workers int
	// Monitor configures each worker's sequential engine. OnVerdict, if
	// set, is serialized across workers (never two invocations at once),
	// the same contract the sharded runtime gives its handler.
	Monitor monitor.Options
	// Pivots restricts the replay to these slices (see ReplayOptions).
	Pivots []uint64
}

// ParallelResult is the merged outcome of a parallel replay.
type ParallelResult struct {
	// Stats merges the workers' settled counters under the sharded
	// runtime's discipline: Events counts each trace event once
	// (broadcast fan-out is not double-counted), PeakLive sums the
	// per-worker peaks (an upper bound — the workers do not peak
	// simultaneously), every other counter is an exact sum and equals the
	// sequential engine's.
	Stats monitor.Stats
	// Replay aggregates the per-worker replay stats: Events/Frees are
	// summed (broadcast events appear once per worker that processed
	// them), SegmentsSkimmed counts skims across all workers.
	Replay ReplayStats
}

// ReplayParallel checks spec over the whole trace with cfg.Workers
// independent workers, each running its own sequential engine over its
// hash partition of the pivot space — the retroactive analogue of the
// online sharded runtime, using the same pivot analysis and the same
// splitmix64 partition (shard.Mix). Worker k dispatches the events whose
// pivot object hashes to k plus every broadcast event, applies all deaths
// in stream order, and skims pivot-indexed segments owning none of its
// slices; each worker being sequential, free positioning is exact. Every
// monitor instance binds the pivot, so the workers' monitor populations
// are disjoint and verdicts and settled counters merge losslessly.
func (r *Reader) ReplayParallel(spec *monitor.Spec, cfg ParallelConfig) (ParallelResult, error) {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.Workers > 1 {
		router, err := shard.NewRouter(spec, 2)
		if err != nil {
			return ParallelResult{}, err
		}
		if router.Pivot() < 0 {
			// Unshardable spec: a single worker replays everything.
			cfg.Workers = 1
		}
	}
	var vmu sync.Mutex
	onVerdict := cfg.Monitor.OnVerdict
	workers := make([]*monitor.Engine, cfg.Workers)
	for k := range workers {
		opts := cfg.Monitor
		if onVerdict != nil {
			opts.OnVerdict = func(v monitor.Verdict) {
				vmu.Lock()
				defer vmu.Unlock()
				onVerdict(v)
			}
		}
		eng, err := monitor.New(spec, opts)
		if err != nil {
			return ParallelResult{}, err
		}
		workers[k] = eng
	}

	var wg sync.WaitGroup
	stats := make([]ReplayStats, cfg.Workers)
	errs := make([]error, cfg.Workers)
	for k := 0; k < cfg.Workers; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			stats[k], errs[k] = r.Replay(workers[k], ReplayOptions{
				Pivots:  cfg.Pivots,
				workers: cfg.Workers,
				self:    k,
			})
		}(k)
	}
	wg.Wait()
	for k, err := range errs {
		if err != nil {
			return ParallelResult{}, fmt.Errorf("trace: worker %d: %w", k, err)
		}
	}

	var res ParallelResult
	var traceEvents uint64
	for k, eng := range workers {
		eng.Flush()
		s := eng.Stats()
		res.Stats.Created += s.Created
		res.Stats.Flagged += s.Flagged
		res.Stats.Collected += s.Collected
		res.Stats.GoalVerdicts += s.GoalVerdicts
		res.Stats.Steps += s.Steps
		res.Stats.Live += s.Live
		res.Stats.PeakLive += s.PeakLive
		eng.Close()

		res.Replay.Events += stats[k].Events
		res.Replay.Broadcast += stats[k].Broadcast
		res.Replay.Frees += stats[k].Frees
		res.Replay.EventsSkipped += stats[k].EventsSkipped
		res.Replay.SegmentsSkimmed += stats[k].SegmentsSkimmed
		res.Replay.UnknownSkipped += stats[k].UnknownSkipped
		traceEvents += stats[k].Events
	}
	// A pivot-binding event is dispatched by exactly one worker; a
	// broadcast event by every worker, and each worker dispatched the
	// same broadcast events (they are never filter- or partition-skipped).
	// Subtracting the W−1 duplicate countings makes Events equal to a
	// sequential replay's — the same central-count discipline as the
	// online sharded runtime.
	if cfg.Workers > 1 {
		traceEvents -= uint64(cfg.Workers-1) * stats[0].Broadcast
	}
	res.Stats.Events = traceEvents
	return res, nil
}
