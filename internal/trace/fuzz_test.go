package trace

import (
	"os"
	"path/filepath"
	"testing"

	"rvgo/internal/monitor"
	"rvgo/internal/props"
)

// fuzzSeed builds a small valid trace file's bytes for seeding the corpus.
func fuzzSeed(f *testing.F, segRecords int) []byte {
	f.Helper()
	spec, err := props.Build("UnsafeIter")
	if err != nil {
		f.Fatal(err)
	}
	dir := f.TempDir()
	path := filepath.Join(dir, "seed.rvt")
	w, err := CreateForSpec(path, spec, WriterOptions{SegmentRecords: segRecords})
	if err != nil {
		f.Fatal(err)
	}
	create, _ := spec.Symbol("create")
	update, _ := spec.Symbol("update")
	next, _ := spec.Symbol("next")
	for i := uint64(0); i < 12; i++ {
		w.EventIDs(create, []uint64{1, 10 + i})
		w.EventIDs(next, []uint64{10 + i})
		w.EventIDs(update, []uint64{1})
		w.FreeIDs([]uint64{10 + i})
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	return data
}

// FuzzTraceSegment mirrors FuzzWire for the trace store: arbitrary bytes
// presented as a trace file must never panic the scanner or the replayer —
// they either open (possibly truncated) and replay cleanly through an
// engine, or fail with an error. Every intact trace in the decoder's image
// replays without error.
func FuzzTraceSegment(f *testing.F) {
	seed := fuzzSeed(f, 8)
	f.Add(seed)
	f.Add(seed[:len(seed)-3])
	f.Add([]byte{})
	f.Add([]byte("RVTR"))
	f.Add(append([]byte("RVTR\x01RSEG"), 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01))
	spec, err := props.Build("UnsafeIter")
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.rvt")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		r, err := Open(path)
		if err != nil {
			return
		}
		r.Records()
		r.PivotIDs()
		r.SymbolNames()
		eng, err := monitor.New(spec, monitor.Options{GC: monitor.GCCoenable, Creation: monitor.CreateEnable})
		if err != nil {
			t.Fatal(err)
		}
		defer eng.Close()
		// Replay may reject a decodable-but-inconsistent trace (arity
		// mismatch, symbol out of range); it must not panic.
		if _, err := r.Replay(eng, ReplayOptions{}); err != nil {
			return
		}
		eng.Flush()
	})
}
