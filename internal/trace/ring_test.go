package trace

import (
	"testing"

	"rvgo/internal/heap"
	"rvgo/internal/param"
)

func TestRingWindow(t *testing.T) {
	r := NewRing(4)
	h := heap.New()
	a, b := h.Alloc("a"), h.Alloc("b")
	for i := 0; i < 6; i++ {
		r.RecordDispatch(i, param.Empty().Bind(0, a).Bind(2, b))
	}
	r.RecordFree(a, b)
	snap := r.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot of 7 records in a 4-ring has %d entries", len(snap))
	}
	// Oldest→newest: dispatches 4, 5, 6 (0-based syms 3,4,5) then the free.
	for i, wantSym := range []int32{3, 4, 5} {
		e := snap[i]
		if e.Kind != RingDispatch || e.Sym != wantSym {
			t.Fatalf("snap[%d] = kind %d sym %d, want dispatch %d", i, e.Kind, e.Sym, wantSym)
		}
		if e.N != 2 || e.IDs[0] != a.ID() || e.IDs[1] != b.ID() {
			t.Fatalf("snap[%d] ids = %v n=%d", i, e.IDs, e.N)
		}
		if e.Mask != param.SetOf(0, 2) {
			t.Fatalf("snap[%d] mask = %v", i, e.Mask)
		}
		if e.Seq != uint64(i+4) {
			t.Fatalf("snap[%d] seq = %d, want %d", i, e.Seq, i+4)
		}
	}
	f := snap[3]
	if f.Kind != RingFree || f.Sym != -1 || f.N != 2 || !f.Binds(a.ID()) || !f.Binds(b.ID()) {
		t.Fatalf("free entry = %+v", f)
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d", r.Len())
	}
}

func TestRingFreeSplitsLongDeaths(t *testing.T) {
	r := NewRing(8)
	ids := make([]uint64, param.MaxParams+3)
	for i := range ids {
		ids[i] = uint64(i + 1)
	}
	r.RecordFreeIDs(ids)
	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("long free split into %d entries, want 2", len(snap))
	}
	if int(snap[0].N)+int(snap[1].N) != len(ids) {
		t.Fatalf("split lost IDs: %d + %d != %d", snap[0].N, snap[1].N, len(ids))
	}
}

// TestRingRecordZeroAlloc gates the flight recorder's hot path: recording
// into the ring must not allocate.
func TestRingRecordZeroAlloc(t *testing.T) {
	r := NewRing(256)
	h := heap.New()
	a, b := h.Alloc("a"), h.Alloc("b")
	theta := param.Empty().Bind(0, a).Bind(1, b)
	refs := []heap.Ref{a, b}
	ids := []uint64{a.ID(), b.ID()}
	if avg := testing.AllocsPerRun(2000, func() {
		r.RecordDispatch(1, theta)
	}); avg != 0 {
		t.Errorf("RecordDispatch allocates %.2f/op", avg)
	}
	if avg := testing.AllocsPerRun(2000, func() {
		r.RecordFree(refs...)
	}); avg != 0 {
		t.Errorf("RecordFree allocates %.2f/op", avg)
	}
	if avg := testing.AllocsPerRun(2000, func() {
		r.RecordFreeIDs(ids)
	}); avg != 0 {
		t.Errorf("RecordFreeIDs allocates %.2f/op", avg)
	}
}

// BenchmarkRingRecordAllocs is the benchstat form of the zero-alloc gate.
func BenchmarkRingRecordAllocs(b *testing.B) {
	b.ReportAllocs()
	r := NewRing(1024)
	h := heap.New()
	a, c := h.Alloc("a"), h.Alloc("c")
	theta := param.Empty().Bind(0, a).Bind(1, c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.RecordDispatch(i&7, theta)
	}
}
