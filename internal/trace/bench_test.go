package trace

import (
	"path/filepath"
	"testing"

	"rvgo/internal/heap"
	"rvgo/internal/monitor"
	"rvgo/internal/param"
	"rvgo/internal/props"
)

// nullRuntime absorbs dispatches: the decode-only bound of replay.
type nullRuntime struct {
	spec   *monitor.Spec
	events uint64
}

func (n *nullRuntime) Spec() *monitor.Spec                 { return n.spec }
func (n *nullRuntime) Emit(sym int, vals ...heap.Ref)      {}
func (n *nullRuntime) EmitNamed(string, ...heap.Ref) error { return nil }
func (n *nullRuntime) Dispatch(sym int, _ param.Instance)  { n.events++ }
func (n *nullRuntime) Free(...heap.Ref)                    {}
func (n *nullRuntime) FreeAsync(die func(), _ ...heap.Ref) {
	if die != nil {
		die()
	}
}
func (n *nullRuntime) Barrier()                  {}
func (n *nullRuntime) Flush()                    {}
func (n *nullRuntime) Stats() (st monitor.Stats) { st.Events = n.events; return }
func (n *nullRuntime) Close()                    {}

// benchTrace records a UNSAFEITER workload of about n events.
func benchTrace(b *testing.B, n int) (string, uint64) {
	b.Helper()
	spec, err := props.Build("UnsafeIter")
	if err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(b.TempDir(), "bench.rvt")
	w, err := CreateForSpec(path, spec, WriterOptions{})
	if err != nil {
		b.Fatal(err)
	}
	create, _ := spec.Symbol("create")
	update, _ := spec.Symbol("update")
	next, _ := spec.Symbol("next")
	var events uint64
	id := uint64(1)
	for events < uint64(n) {
		c := id
		id++
		for k := 0; k < 16; k++ {
			it := id
			id++
			w.EventIDs(create, []uint64{c, it})
			w.EventIDs(next, []uint64{it})
			if k%4 == 3 {
				w.EventIDs(update, []uint64{c})
				w.EventIDs(next, []uint64{it})
				events++
			}
			w.FreeIDs([]uint64{it})
			events += 3
		}
		w.FreeIDs([]uint64{c})
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	return path, events
}

// BenchmarkReplayDecode is the decode-only bound: the segment scanner and
// record loop against a runtime that absorbs dispatches.
func BenchmarkReplayDecode(b *testing.B) {
	path, events := benchTrace(b, 1<<16)
	spec, _ := props.Build("UnsafeIter")
	r, err := Open(path)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(events))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt := &nullRuntime{spec: spec}
		if _, err := r.Replay(rt, ReplayOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplayEngine is the full retro-checking rate: decode plus the
// sequential engine monitoring every event under coenable GC.
func BenchmarkReplayEngine(b *testing.B) {
	for _, prop := range []string{"UnsafeIter", "HasNext"} {
		b.Run(prop, func(b *testing.B) {
			path, events := benchTrace(b, 1<<16)
			spec, err := props.Build(prop)
			if err != nil {
				b.Fatal(err)
			}
			r, err := Open(path)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(events))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng, err := monitor.New(spec, monitor.Options{GC: monitor.GCCoenable, Creation: monitor.CreateEnable})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := r.Replay(eng, ReplayOptions{}); err != nil {
					b.Fatal(err)
				}
				eng.Flush()
				eng.Close()
			}
		})
	}
}

// BenchmarkReplayPivotFiltered is the slice-selective rate: query one
// pivot object; the per-segment index skips everything else. SetBytes
// counts the full trace — skipped events are checked (proven irrelevant
// by the index), which is the point of the pivot index.
func BenchmarkReplayPivotFiltered(b *testing.B) {
	path, events := benchTrace(b, 1<<16)
	spec, _ := props.Build("UnsafeIter")
	r, err := Open(path)
	if err != nil {
		b.Fatal(err)
	}
	ids := r.PivotIDs()
	if len(ids) == 0 {
		b.Fatal("no pivot index")
	}
	want := []uint64{ids[len(ids)/2]}
	b.SetBytes(int64(events))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng, err := monitor.New(spec, monitor.Options{GC: monitor.GCCoenable, Creation: monitor.CreateEnable})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := r.Replay(eng, ReplayOptions{Pivots: want}); err != nil {
			b.Fatal(err)
		}
		eng.Flush()
		eng.Close()
	}
}
