package trace

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"
	"testing"

	"rvgo/internal/monitor"
	"rvgo/internal/param"
	"rvgo/internal/props"
)

// tref is a test parameter object with a chosen ID, so the online run and
// the replayed run operate on identical object identities.
type tref struct {
	id   uint64
	dead atomic.Bool
}

func (r *tref) ID() uint64    { return r.id }
func (r *tref) Alive() bool   { return !r.dead.Load() }
func (r *tref) Label() string { return fmt.Sprintf("r%d", r.id) }

// step is one element of a generated stream: a parametric event (sym ≥ 0)
// or an object-death point (sym < 0).
type step struct {
	sym int
	ids []uint64
}

// genUnsafeIter builds a deterministic UnsafeIter stream: colls
// collections, each iterated by iters iterators, alternating safe slices
// with slices that update the collection mid-iteration (a goal verdict).
// Iterators die after their last event; collections die at the end.
func genUnsafeIter(t testing.TB, spec *monitor.Spec, colls, iters int) []step {
	create := sym(t, spec, "create")
	update := sym(t, spec, "update")
	next := sym(t, spec, "next")
	var steps []step
	id := uint64(0)
	newID := func() uint64 { id++; return id }
	collIDs := make([]uint64, colls)
	for c := range collIDs {
		collIDs[c] = newID()
	}
	for k := 0; k < iters; k++ {
		for _, cid := range collIDs {
			iid := newID()
			steps = append(steps, step{sym: create, ids: []uint64{cid, iid}})
			steps = append(steps, step{sym: next, ids: []uint64{iid}})
			if k%2 == 1 {
				// Unsafe slice: update between two nexts.
				steps = append(steps, step{sym: update, ids: []uint64{cid}})
				steps = append(steps, step{sym: next, ids: []uint64{iid}})
			}
			steps = append(steps, step{sym: -1, ids: []uint64{iid}})
		}
	}
	for _, cid := range collIDs {
		steps = append(steps, step{sym: -1, ids: []uint64{cid}})
	}
	return steps
}

// genHasNext builds a HasNext stream: every event binds the iterator (the
// spec's pivot), so segments carry no broadcast events and the pivot index
// can skim.
func genHasNext(t testing.TB, spec *monitor.Spec, iters, uses int) []step {
	hnT := sym(t, spec, "hasnexttrue")
	next := sym(t, spec, "next")
	var steps []step
	for i := 0; i < iters; i++ {
		iid := uint64(i + 1)
		for u := 0; u < uses; u++ {
			if i%3 == 2 && u == uses-1 {
				// Violating slice: next without hasNext.
				steps = append(steps, step{sym: next, ids: []uint64{iid}})
				continue
			}
			steps = append(steps, step{sym: hnT, ids: []uint64{iid}})
			steps = append(steps, step{sym: next, ids: []uint64{iid}})
		}
		steps = append(steps, step{sym: -1, ids: []uint64{iid}})
	}
	return steps
}

func sym(t testing.TB, spec *monitor.Spec, name string) int {
	t.Helper()
	s, ok := spec.Symbol(name)
	if !ok {
		t.Fatalf("spec %q has no event %q", spec.Name, name)
	}
	return s
}

func vkey(v monitor.Verdict) string {
	k := v.Inst.Key()
	return fmt.Sprintf("%d/%s/%v/%v", v.Sym, v.Cat, k.Mask, k.IDs)
}

// runOnline feeds the stream to a fresh sequential engine the way the
// online drivers do and returns its settled stats and sorted verdicts.
func runOnline(t testing.TB, spec *monitor.Spec, steps []step, opts monitor.Options) (monitor.Stats, []string) {
	t.Helper()
	var verdicts []string
	opts.OnVerdict = func(v monitor.Verdict) { verdicts = append(verdicts, vkey(v)) }
	eng, err := monitor.New(spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	objs := map[uint64]*tref{}
	ref := func(id uint64) *tref {
		o := objs[id]
		if o == nil {
			o = &tref{id: id}
			objs[id] = o
		}
		return o
	}
	masks := spec.EventParams()
	for _, st := range steps {
		if st.sym < 0 {
			for _, id := range st.ids {
				o := ref(id)
				eng.Free(o)
				o.dead.Store(true)
			}
			continue
		}
		theta := param.Empty()
		k := 0
		for m := masks[st.sym]; m != 0; m = m.Rest() {
			theta = theta.Bind(m.First(), ref(st.ids[k]))
			k++
		}
		eng.Dispatch(st.sym, theta)
	}
	eng.Flush()
	stats := eng.Stats()
	eng.Close()
	sort.Strings(verdicts)
	return stats, verdicts
}

// record writes the stream to a trace file with the given rotation.
func record(t testing.TB, path string, spec *monitor.Spec, steps []step, segRecords int) {
	t.Helper()
	w, err := CreateForSpec(path, spec, WriterOptions{SegmentRecords: segRecords})
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range steps {
		if st.sym < 0 {
			err = w.FreeIDs(st.ids)
		} else {
			err = w.EventIDs(st.sym, st.ids)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// replaySeq replays a trace through a fresh sequential engine.
func replaySeq(t testing.TB, path string, spec *monitor.Spec, opts monitor.Options, ro ReplayOptions) (monitor.Stats, []string, ReplayStats) {
	t.Helper()
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	var verdicts []string
	opts.OnVerdict = func(v monitor.Verdict) { verdicts = append(verdicts, vkey(v)) }
	eng, err := monitor.New(spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := r.Replay(eng, ro)
	if err != nil {
		t.Fatal(err)
	}
	eng.Flush()
	stats := eng.Stats()
	eng.Close()
	sort.Strings(verdicts)
	return stats, verdicts, rs
}

func eqStats(t *testing.T, what string, got, want monitor.Stats) {
	t.Helper()
	if got != want {
		t.Errorf("%s: stats\n got %+v\nwant %+v", what, got, want)
	}
}

func eqVerdicts(t *testing.T, what string, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d verdicts, want %d\n got %v\nwant %v", what, len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("%s: verdict[%d] = %s, want %s", what, i, got[i], want[i])
		}
	}
}

var gcPolicies = []monitor.GCPolicy{monitor.GCCoenable, monitor.GCAllDead, monitor.GCNone}

// TestReplayOracle: a recorded trace replayed through a fresh sequential
// engine yields stats and per-slice verdicts bit-identical to the online
// run, for every GC policy and across segment rotations.
func TestReplayOracle(t *testing.T) {
	for _, prop := range []string{"UnsafeIter", "HasNext"} {
		spec, err := props.Build(prop)
		if err != nil {
			t.Fatal(err)
		}
		var steps []step
		if prop == "UnsafeIter" {
			steps = genUnsafeIter(t, spec, 7, 24)
		} else {
			steps = genHasNext(t, spec, 60, 8)
		}
		for _, gc := range gcPolicies {
			for _, segRecords := range []int{50, 1 << 16} {
				name := fmt.Sprintf("%s/%s/seg%d", prop, gc, segRecords)
				t.Run(name, func(t *testing.T) {
					opts := monitor.Options{GC: gc, Creation: monitor.CreateEnable}
					wantStats, wantVerdicts := runOnline(t, spec, steps, opts)
					path := filepath.Join(t.TempDir(), "t.rvt")
					record(t, path, spec, steps, segRecords)
					gotStats, gotVerdicts, _ := replaySeq(t, path, spec, opts, ReplayOptions{})
					eqStats(t, name, gotStats, wantStats)
					eqVerdicts(t, name, gotVerdicts, wantVerdicts)
				})
			}
		}
	}
}

// TestParallelReplayOracle: parallel per-segment replay merges to the
// online run's settled counters and verdict set. PeakLive sums per-worker
// peaks, so it is compared only at Workers=1.
func TestParallelReplayOracle(t *testing.T) {
	for _, prop := range []string{"UnsafeIter", "HasNext"} {
		spec, err := props.Build(prop)
		if err != nil {
			t.Fatal(err)
		}
		var steps []step
		if prop == "UnsafeIter" {
			steps = genUnsafeIter(t, spec, 5, 20)
		} else {
			steps = genHasNext(t, spec, 64, 6)
		}
		for _, gc := range gcPolicies {
			opts := monitor.Options{GC: gc, Creation: monitor.CreateEnable}
			wantStats, wantVerdicts := runOnline(t, spec, steps, opts)
			path := filepath.Join(t.TempDir(), "t.rvt")
			record(t, path, spec, steps, 64)
			r, err := Open(path)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 2, 4} {
				name := fmt.Sprintf("%s/%s/w%d", prop, gc, workers)
				t.Run(name, func(t *testing.T) {
					var verdicts []string
					res, err := r.ReplayParallel(spec, ParallelConfig{
						Workers: workers,
						Monitor: monitor.Options{GC: gc, Creation: monitor.CreateEnable,
							OnVerdict: func(v monitor.Verdict) { verdicts = append(verdicts, vkey(v)) }},
					})
					if err != nil {
						t.Fatal(err)
					}
					sort.Strings(verdicts)
					eqVerdicts(t, name, verdicts, wantVerdicts)
					got := res.Stats
					if workers == 1 {
						eqStats(t, name, got, wantStats)
						return
					}
					// PeakLive sums per-worker peaks: an upper bound.
					if got.PeakLive < wantStats.PeakLive/int64(workers) {
						t.Errorf("%s: merged PeakLive %d implausibly low (seq %d)", name, got.PeakLive, wantStats.PeakLive)
					}
					got.PeakLive, wantStats.PeakLive = 0, 0
					eqStats(t, name, got, wantStats)
				})
			}
		}
	}
}

// TestPivotFilter: replaying only selected slices yields exactly those
// slices' verdicts, and the pivot index skims pure (broadcast-free)
// segments wholesale.
func TestPivotFilter(t *testing.T) {
	spec, err := props.Build("HasNext")
	if err != nil {
		t.Fatal(err)
	}
	steps := genHasNext(t, spec, 60, 8)
	opts := monitor.Options{GC: monitor.GCCoenable, Creation: monitor.CreateEnable}
	_, allVerdicts := runOnline(t, spec, steps, opts)
	path := filepath.Join(t.TempDir(), "t.rvt")
	record(t, path, spec, steps, 40)

	// Iterator 3 (1-based: i%3==2 slices violate) is a violating slice.
	wantID := uint64(3)
	var want []string
	for _, v := range allVerdicts {
		if containsID(v, wantID) {
			want = append(want, v)
		}
	}
	if len(want) == 0 {
		t.Fatal("test stream produced no verdict for the filtered slice")
	}
	_, got, rs := replaySeq(t, path, spec, opts, ReplayOptions{Pivots: []uint64{wantID}})
	eqVerdicts(t, "filtered", got, want)
	if rs.SegmentsSkimmed == 0 {
		t.Errorf("pivot filter skimmed no segments (replay stats %+v)", rs)
	}
}

// containsID reports whether a verdict key binds the ID (vkey embeds the
// ID array verbatim).
func containsID(v string, id uint64) bool {
	return len(v) > 0 && (stringsContains(v, fmt.Sprintf("[%d ", id)) ||
		stringsContains(v, fmt.Sprintf(" %d ", id)) ||
		stringsContains(v, fmt.Sprintf(" %d]", id)))
}

func stringsContains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestTornTailRecovery: a trace cut off at any byte — a crashed writer's
// torn tail — still opens, keeps every intact segment, and replays
// cleanly. A corrupted footer truncates the same way.
func TestTornTailRecovery(t *testing.T) {
	spec, err := props.Build("UnsafeIter")
	if err != nil {
		t.Fatal(err)
	}
	steps := genUnsafeIter(t, spec, 3, 10)
	dir := t.TempDir()
	full := filepath.Join(dir, "full.rvt")
	record(t, full, spec, steps, 20)
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Open(full)
	if err != nil {
		t.Fatal(err)
	}
	fullSegs := r.Segments()
	if fullSegs < 2 {
		t.Fatalf("want a multi-segment trace, got %d segments", fullSegs)
	}

	opts := monitor.Options{GC: monitor.GCCoenable, Creation: monitor.CreateEnable}
	cut := filepath.Join(dir, "cut.rvt")
	for n := len(data) - 1; n >= len(fileMagic)+1; n -= 7 {
		if err := os.WriteFile(cut, data[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		rc, err := Open(cut)
		if err != nil {
			t.Fatalf("cut at %d bytes: %v", n, err)
		}
		if rc.Segments() > fullSegs {
			t.Fatalf("cut at %d bytes: %d segments > full %d", n, rc.Segments(), fullSegs)
		}
		if n < len(data) && rc.Segments() == fullSegs && !rc.Truncated() {
			// Cutting inside the last footer must not keep the segment.
			t.Fatalf("cut at %d bytes: full segment count with no truncation flag", n)
		}
		eng, err := monitor.New(spec, monitor.Options{GC: opts.GC, Creation: opts.Creation})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rc.Replay(eng, ReplayOptions{}); err != nil {
			t.Fatalf("cut at %d bytes: replay: %v", n, err)
		}
		eng.Close()
	}

	// Flip a payload byte of the tail segment: CRC catches it and the
	// trace ends at the previous segment.
	bad := append([]byte(nil), data...)
	bad[len(bad)-6] ^= 0xFF
	if err := os.WriteFile(cut, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	rb, err := Open(cut)
	if err != nil {
		t.Fatal(err)
	}
	if !rb.Truncated() || rb.Segments() != fullSegs-1 {
		t.Fatalf("corrupted footer: segments=%d truncated=%v, want %d/true", rb.Segments(), rb.Truncated(), fullSegs-1)
	}
}

// TestWriterKilledMidSegment kills a writer mid-segment — the file ends in
// a sealed prefix plus a partial segment write — and recovers the prefix.
func TestWriterKilledMidSegment(t *testing.T) {
	spec, err := props.Build("HasNext")
	if err != nil {
		t.Fatal(err)
	}
	steps := genHasNext(t, spec, 30, 4)
	dir := t.TempDir()
	full := filepath.Join(dir, "full.rvt")
	record(t, full, spec, steps, 25)
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := Open(full)
	if err != nil {
		t.Fatal(err)
	}
	if rf.Segments() < 3 {
		t.Fatalf("want ≥3 segments, got %d", rf.Segments())
	}
	// "Kill" after the second segment plus half of the third: find the
	// third segment's start by scanning, then cut inside it.
	offs := segmentOffsets(t, data)
	cutAt := offs[2] + (offs[3]-offs[2])/2
	torn := filepath.Join(dir, "torn.rvt")
	if err := os.WriteFile(torn, data[:cutAt], 0o644); err != nil {
		t.Fatal(err)
	}
	rt2, err := Open(torn)
	if err != nil {
		t.Fatal(err)
	}
	if !rt2.Truncated() {
		t.Fatal("mid-segment kill not reported as truncated")
	}
	if rt2.Segments() != 2 {
		t.Fatalf("recovered %d segments, want 2", rt2.Segments())
	}
	eng, err := monitor.New(spec, monitor.Options{GC: monitor.GCCoenable, Creation: monitor.CreateEnable})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := rt2.Replay(eng, ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Events == 0 {
		t.Fatal("recovered trace replayed no events")
	}
	eng.Close()
}

// segmentOffsets returns the byte offset of every segment start plus the
// file length as a final sentinel.
func segmentOffsets(t *testing.T, data []byte) []int64 {
	t.Helper()
	var offs []int64
	pos := len(fileMagic) + 1
	for pos < len(data) {
		offs = append(offs, int64(pos))
		_, next, ok := scanSegment(data, pos)
		if !ok {
			t.Fatalf("corrupt fixture at offset %d", pos)
		}
		pos = next
	}
	return append(offs, int64(len(data)))
}

// TestOpenRejectsForeignFiles: a non-trace file is ErrNotTrace, not a
// misparse.
func TestOpenRejectsForeignFiles(t *testing.T) {
	p := filepath.Join(t.TempDir(), "x")
	if err := os.WriteFile(p, []byte("#!/bin/sh\necho hi\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(p); err != ErrNotTrace {
		t.Fatalf("Open(script) = %v, want ErrNotTrace", err)
	}
}
