package trace

import (
	"fmt"
	"sync/atomic"

	"rvgo/internal/heap"
	"rvgo/internal/monitor"
	"rvgo/internal/param"
	"rvgo/internal/shard"
)

// obj is a replayed parameter object. Its ID is the recorded object ID —
// not a fresh heap ID — so replayed verdict instances, indexing-tree keys
// and pivot routing agree bit-for-bit with the recording run.
type obj struct {
	id   uint64
	dead atomic.Bool
}

func (o *obj) ID() uint64    { return o.id }
func (o *obj) Alive() bool   { return !o.dead.Load() }
func (o *obj) Label() string { return fmt.Sprintf("r%d", o.id) }

// ReplayOptions configures a sequential replay.
type ReplayOptions struct {
	// Pivots restricts replay to the slices of these pivot objects
	// (recorded object IDs, any order): events binding a different pivot
	// are skipped, and segments indexing none of them (with no broadcast
	// events) are skimmed instead of dispatched. nil replays everything.
	// Sound because slices of distinct pivot objects are independent
	// (paper §2) and every monitor instance binds the pivot.
	Pivots []uint64
	// workers/self partition pivot-binding events across parallel replay
	// workers (set by ReplayParallel); zero values disable partitioning.
	workers int
	self    int
}

// ReplayStats reports what a replay actually touched.
type ReplayStats struct {
	Events          uint64 // event records dispatched
	Broadcast       uint64 // dispatched events not binding the query pivot
	Frees           uint64 // free records applied
	EventsSkipped   uint64 // events skipped by pivot filter or partition
	SegmentsSkimmed int    // segments the pivot index let the replay skip
	UnknownSkipped  uint64 // events whose name the query spec lacks
}

// symMap is the per-segment mapping from recorded symbols to the query
// spec's: a trace records the alphabet of the spec that was monitored, a
// retroactive query replays it against a possibly different spec, matched
// by event name.
type symMap struct {
	to      []int       // recorded sym -> query sym, -1 = not in query spec
	mask    []param.Set // query D(sym) for mapped symbols
	arity   []int       // recorded D(sym) arity (ID count in records)
	qbinds  []bool      // recorded sym binds the query pivot
	qpos    []int       // query pivot ID position in the record's ID list
	indexOK bool        // segment pivot index is valid for the query pivot
}

// mapSymbols builds the recorded→query symbol mapping for one segment and
// decides whether the segment's pivot index may accelerate this query.
// The index was built over the recording spec's pivot parameter; it is
// valid for the query iff, for every shared event, the recorded pivot and
// the query pivot occupy the same position in the event's ID list — then
// "pivot object of a record" names the same ID either way. Otherwise the
// index is ignored (replay stays correct, just unaccelerated).
func mapSymbols(hdr *segHeader, qspec *monitor.Spec, qpivot int) (*symMap, error) {
	m := &symMap{
		to:     make([]int, len(hdr.syms)),
		mask:   make([]param.Set, len(hdr.syms)),
		arity:  make([]int, len(hdr.syms)),
		qbinds: make([]bool, len(hdr.syms)),
		qpos:   make([]int, len(hdr.syms)),
	}
	m.indexOK = hdr.pivot >= 0 && qpivot >= 0
	for i, sd := range hdr.syms {
		m.arity[i] = sd.Params.Count()
		rbinds := hdr.pivot >= 0 && sd.Params.Has(hdr.pivot)
		rpos := 0
		if rbinds {
			rpos = pivotPos(sd.Params, hdr.pivot)
		}
		m.to[i] = -1
		qsym, ok := qspec.Symbol(sd.Name)
		if !ok {
			continue
		}
		qmask := qspec.Events[qsym].Params
		if qmask.Count() != m.arity[i] {
			return nil, fmt.Errorf("trace: event %q recorded with %d objects but query spec binds %d parameters",
				sd.Name, m.arity[i], qmask.Count())
		}
		m.to[i] = qsym
		m.mask[i] = qmask
		m.qbinds[i] = qpivot >= 0 && qmask.Has(qpivot)
		if m.qbinds[i] {
			m.qpos[i] = pivotPos(qmask, qpivot)
		}
		// Index validity: recorded and query pivot must pick the same ID
		// out of every shared event's record.
		if rbinds != m.qbinds[i] || (rbinds && rpos != m.qpos[i]) {
			m.indexOK = false
		}
	}
	return m, nil
}

// objTable maps recorded object IDs to replayed objects. Recorded heap
// IDs are allocated sequentially from 1, so a dense slice serves the hot
// path; a map catches arbitrarily large IDs (a trace recorded from a
// frontend with its own handle space).
type objTable struct {
	dense  []*obj
	sparse map[uint64]*obj
	n      int // objects materialized
}

// maxDenseID bounds the dense table (8 bytes/slot); IDs beyond it spill
// to the map.
const maxDenseID = 1 << 22

func (t *objTable) lookup(id uint64) *obj {
	if id < uint64(len(t.dense)) {
		return t.dense[id]
	}
	return t.sparse[id]
}

func (t *objTable) materialize(id uint64) *obj {
	if id < maxDenseID {
		for uint64(len(t.dense)) <= id {
			t.dense = append(t.dense, nil)
		}
		if o := t.dense[id]; o != nil {
			return o
		}
		o := &obj{id: id}
		t.dense[id] = o
		t.n++
		return o
	}
	if o := t.sparse[id]; o != nil {
		return o
	}
	if t.sparse == nil {
		t.sparse = map[uint64]*obj{}
	}
	o := &obj{id: id}
	t.sparse[id] = o
	t.n++
	return o
}

// replayer is the per-replay state shared by the segment loop.
type replayer struct {
	rt    monitor.Runtime
	opts  ReplayOptions
	want  map[uint64]struct{}
	objs  objTable
	refs  []heap.Ref
	ids   []uint64
	dying []*obj
	stats ReplayStats
}

// Replay replays the trace sequentially through rt, materializing one
// replayed object per recorded ID and positioning each free record exactly
// as the online drivers do: rt.Free first (the runtime barriers and every
// prior event observes the objects alive), then the objects are marked
// dead. rt may be any backend — the sequential engine, the sharded
// runtime, a remote client. Events whose name the query spec does not
// define are skipped (the trace may record a richer alphabet than the
// retroactive spec cares about). The caller flushes and reads stats.
func (r *Reader) Replay(rt monitor.Runtime, opts ReplayOptions) (ReplayStats, error) {
	qspec := rt.Spec()
	qpivot := -1
	if opts.workers > 1 || len(opts.Pivots) > 0 {
		router, err := shard.NewRouter(qspec, 2)
		if err != nil {
			return ReplayStats{}, err
		}
		qpivot = router.Pivot()
		if qpivot < 0 && opts.workers > 1 {
			return ReplayStats{}, fmt.Errorf("trace: spec %q has no pivot parameter; parallel replay requires one", qspec.Name)
		}
	}
	rp := &replayer{rt: rt, opts: opts}
	if len(opts.Pivots) > 0 {
		rp.want = make(map[uint64]struct{}, len(opts.Pivots))
		for _, id := range opts.Pivots {
			rp.want[id] = struct{}{}
		}
	}
	for si, seg := range r.segs {
		sm, err := mapSymbols(seg.hdr, qspec, qpivot)
		if err != nil {
			return rp.stats, fmt.Errorf("trace: segment %d: %w", si, err)
		}
		// Slice skipping. A segment whose pivot index names no object this
		// replay owns — and with no broadcast (non-pivot-binding) events,
		// which could touch any slice — dispatches nothing here. It may
		// still *free* objects materialized from earlier segments, so it
		// is skimmed (deaths applied, dispatch skipped) rather than
		// ignored; when nothing has been materialized yet even the skim is
		// unnecessary.
		if sm.indexOK && seg.hdr.broadcast == 0 && !rp.owns(seg.hdr.pivotIDs) {
			rp.stats.SegmentsSkimmed++
			rp.stats.EventsSkipped += seg.hdr.events
			if rp.objs.n == 0 || seg.hdr.records == seg.hdr.events {
				continue
			}
			if err := rp.segment(seg, sm, true); err != nil {
				return rp.stats, fmt.Errorf("trace: segment %d: %w", si, err)
			}
			continue
		}
		if err := rp.segment(seg, sm, false); err != nil {
			return rp.stats, fmt.Errorf("trace: segment %d: %w", si, err)
		}
	}
	return rp.stats, nil
}

// owns reports whether any of the segment's pivot objects passes this
// replay's filter and partition.
func (rp *replayer) owns(pivotIDs []uint64) bool {
	for _, id := range pivotIDs {
		if rp.want != nil {
			if _, ok := rp.want[id]; !ok {
				continue
			}
		}
		if rp.opts.workers > 1 && int(shard.Mix(id)%uint64(rp.opts.workers)) != rp.opts.self {
			continue
		}
		return true
	}
	return false
}

// segment replays one segment. In skim mode event records are decoded past
// without dispatching (their slices are not owned) while free records are
// still applied to already-materialized objects — the deaths of a slice's
// objects may fall in segments the slice's events do not.
func (rp *replayer) segment(seg *segment, sm *symMap, skim bool) error {
	d := &dec{buf: seg.recs}
	for rec := uint64(0); rec < seg.hdr.records; rec++ {
		tag, err := d.b()
		if err != nil {
			return err
		}
		switch tag {
		case recEvent:
			rsym, err := d.u()
			if err != nil {
				return err
			}
			if rsym >= uint64(len(sm.to)) {
				return fmt.Errorf("symbol %d beyond table", rsym)
			}
			rp.ids = rp.ids[:0]
			for k := 0; k < sm.arity[rsym]; k++ {
				id, err := d.u()
				if err != nil {
					return err
				}
				rp.ids = append(rp.ids, id)
			}
			if skim {
				continue
			}
			qsym := sm.to[rsym]
			if qsym < 0 {
				rp.stats.UnknownSkipped++
				continue
			}
			if sm.qbinds[rsym] {
				pid := rp.ids[sm.qpos[rsym]]
				if rp.want != nil {
					if _, ok := rp.want[pid]; !ok {
						rp.stats.EventsSkipped++
						continue
					}
				}
				if rp.opts.workers > 1 && int(shard.Mix(pid)%uint64(rp.opts.workers)) != rp.opts.self {
					rp.stats.EventsSkipped++
					continue
				}
			} else {
				rp.stats.Broadcast++
			}
			rp.refs = rp.refs[:0]
			for _, id := range rp.ids {
				rp.refs = append(rp.refs, rp.objs.materialize(id))
			}
			rp.rt.Dispatch(qsym, param.Of(sm.mask[rsym], rp.refs...))
			rp.stats.Events++
		case recFree:
			n, err := d.u()
			if err != nil {
				return err
			}
			rp.refs = rp.refs[:0]
			rp.dying = rp.dying[:0]
			for k := uint64(0); k < n; k++ {
				id, err := d.u()
				if err != nil {
					return err
				}
				// Only objects this replay materialized can be bound by a
				// live monitor here; deaths of unseen objects are no-ops,
				// exactly as in the online runtimes.
				if o := rp.objs.lookup(id); o != nil && o.Alive() {
					rp.refs = append(rp.refs, o)
					rp.dying = append(rp.dying, o)
				}
			}
			if len(rp.refs) > 0 {
				rp.rt.Free(rp.refs...)
				for _, o := range rp.dying {
					o.dead.Store(true)
				}
				rp.stats.Frees++
			}
		default:
			return fmt.Errorf("unknown record tag %d", tag)
		}
	}
	return nil
}
