package trace

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"rvgo/internal/heap"
	"rvgo/internal/metrics"
	"rvgo/internal/monitor"
	"rvgo/internal/param"
	"rvgo/internal/shard"
)

// WriterOptions configures a trace Writer. The zero value is ready to use.
type WriterOptions struct {
	// SegmentRecords rotates the current segment after this many records
	// (events + frees). 0 = DefaultSegmentRecords.
	SegmentRecords int
	// SyncInterval is the cadence of the background fsync goroutine.
	// 0 = DefaultSyncInterval; negative disables background fsync (Close
	// still syncs).
	SyncInterval time.Duration
	// Metrics, when non-nil, receives the writer's telemetry: sealed
	// segments, records, bytes, and fsync latency. Updates happen on the
	// seal and fsync cold paths only — the per-record append path is
	// untouched.
	Metrics *metrics.TraceSeries
}

// DefaultSegmentRecords is the default segment rotation threshold. Small
// enough that pivot-index skipping has segments to skip on million-event
// traces, large enough that the per-segment header is noise.
const DefaultSegmentRecords = 1 << 16

// DefaultSyncInterval is the default background fsync cadence.
const DefaultSyncInterval = 200 * time.Millisecond

// Writer appends a monitored event stream to a segment file. Methods are
// safe for concurrent use (the façade tap calls them from whatever
// goroutine dispatches events); records are buffered in memory until the
// current segment rotates, and a background goroutine fsyncs sealed bytes
// so a crash loses at most the open segment — which Open then truncates
// cleanly.
type Writer struct {
	mu sync.Mutex
	f  *os.File

	pivot    int         // pivot parameter, -1 when none/unshardable
	binds    []bool      // per symbol: D(sym) contains pivot
	pivotPos []int       // per symbol: index of pivot ID in the record's ID list
	maskOf   []param.Set // per symbol: D(sym)
	head     []byte      // pre-encoded symbol table (identical per segment)
	segMax   int

	rec       []byte              // encoded records of the open segment
	pivots    map[uint64]struct{} // pivot IDs bound in the open segment
	broadcast uint64
	events    uint64
	records   uint64

	segments uint64 // sealed segments
	total    uint64 // total records written (all segments)

	err    error
	closed bool

	met *metrics.TraceSeries // nil-safe when telemetry is off

	syncReq  chan struct{}
	syncDone chan struct{}
}

// CreateForSpec opens a trace for recording a monitored runtime: the
// symbol table is the spec's event alphabet and the pivot is the spec's
// router pivot. The router's pivot selection is the single source of
// truth for both the online sharded runtime and the recorded index, so a
// replay partitioned by this index is partitioned exactly as the online
// sharded runtime would have been. An unshardable spec records without a
// pivot index: the trace is complete, just not slice-skippable.
func CreateForSpec(path string, spec *monitor.Spec, opts WriterOptions) (*Writer, error) {
	if spec == nil {
		return nil, fmt.Errorf("trace: CreateForSpec with nil spec")
	}
	pivot := -1
	if r, err := shard.NewRouter(spec, 2); err == nil {
		pivot = r.Pivot()
	}
	syms := make([]SymbolDef, len(spec.Events))
	for i, ev := range spec.Events {
		syms[i] = SymbolDef{Name: ev.Name, Params: ev.Params}
	}
	return Create(path, syms, pivot, opts)
}

// Create opens path for writing (truncating any previous trace) and writes
// the file header. syms is the recorder's event alphabet; pivot is the
// parameter indexed per segment for slice skipping, or -1 for none.
func Create(path string, syms []SymbolDef, pivot int, opts WriterOptions) (*Writer, error) {
	if len(syms) == 0 {
		return nil, fmt.Errorf("trace: Create with empty symbol table")
	}
	if pivot < -1 || pivot >= param.MaxParams {
		return nil, fmt.Errorf("trace: pivot parameter %d out of range", pivot)
	}
	if opts.SegmentRecords <= 0 {
		opts.SegmentRecords = DefaultSegmentRecords
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write(append([]byte(fileMagic), Version)); err != nil {
		f.Close()
		return nil, err
	}
	w := &Writer{
		f:        f,
		pivot:    pivot,
		binds:    make([]bool, len(syms)),
		pivotPos: make([]int, len(syms)),
		maskOf:   make([]param.Set, len(syms)),
		segMax:   opts.SegmentRecords,
		pivots:   map[uint64]struct{}{},
		met:      opts.Metrics,
		syncReq:  make(chan struct{}, 1),
		syncDone: make(chan struct{}),
	}
	for sym, sd := range syms {
		w.maskOf[sym] = sd.Params
		w.binds[sym] = pivot >= 0 && sd.Params.Has(pivot)
		if w.binds[sym] {
			w.pivotPos[sym] = pivotPos(sd.Params, pivot)
		}
	}
	var he enc
	encodeSymbols(&he, syms)
	he.i(int64(pivot))
	w.head = he.buf
	interval := opts.SyncInterval
	if interval == 0 {
		interval = DefaultSyncInterval
	}
	go w.syncLoop(interval)
	return w, nil
}

// syncLoop fsyncs sealed bytes in the background: on every rotation signal
// and, when interval > 0, on a timer — so a steady stream reaches disk
// even between rotations.
func (w *Writer) syncLoop(interval time.Duration) {
	defer close(w.syncDone)
	var tick *time.Ticker
	var tickC <-chan time.Time
	if interval > 0 {
		tick = time.NewTicker(interval)
		tickC = tick.C
		defer tick.Stop()
	}
	for {
		select {
		case _, ok := <-w.syncReq:
			if !ok {
				return
			}
		case <-tickC:
		}
		w.syncFile()
	}
}

// syncFile fsyncs the trace file, recording the latency.
func (w *Writer) syncFile() error {
	start := time.Now()
	err := w.f.Sync()
	if w.met != nil {
		w.met.FsyncSeconds.Observe(time.Since(start).Seconds())
	}
	return err
}

// Event appends one parametric event.
func (w *Writer) Event(sym int, theta param.Instance) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.check(sym); err != nil {
		return err
	}
	w.rec = append(w.rec, recEvent)
	w.rec = binary.AppendUvarint(w.rec, uint64(sym))
	for m := w.maskOf[sym]; m != 0; m = m.Rest() {
		w.rec = binary.AppendUvarint(w.rec, theta.Value(m.First()).ID())
	}
	if w.binds[sym] {
		w.pivots[theta.Value(w.pivot).ID()] = struct{}{}
	} else {
		w.broadcast++
	}
	w.events++
	return w.push()
}

// EventIDs appends one parametric event given raw object IDs in ascending
// parameter order — the form the remote server and replay drivers hold.
func (w *Writer) EventIDs(sym int, ids []uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.check(sym); err != nil {
		return err
	}
	if len(ids) != w.maskOf[sym].Count() {
		return fmt.Errorf("trace: event %d wants %d ids, got %d", sym, w.maskOf[sym].Count(), len(ids))
	}
	w.rec = append(w.rec, recEvent)
	w.rec = binary.AppendUvarint(w.rec, uint64(sym))
	for _, id := range ids {
		w.rec = binary.AppendUvarint(w.rec, id)
	}
	if w.binds[sym] {
		w.pivots[ids[w.pivotPos[sym]]] = struct{}{}
	} else {
		w.broadcast++
	}
	w.events++
	return w.push()
}

// Free appends an object-death record at the current stream position.
func (w *Writer) Free(refs ...heap.Ref) error {
	if len(refs) == 0 {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil || w.closed {
		return w.state()
	}
	w.rec = append(w.rec, recFree)
	w.rec = binary.AppendUvarint(w.rec, uint64(len(refs)))
	for _, r := range refs {
		w.rec = binary.AppendUvarint(w.rec, r.ID())
	}
	return w.push()
}

// FreeIDs appends an object-death record given raw object IDs.
func (w *Writer) FreeIDs(ids []uint64) error {
	if len(ids) == 0 {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil || w.closed {
		return w.state()
	}
	w.rec = append(w.rec, recFree)
	w.rec = binary.AppendUvarint(w.rec, uint64(len(ids)))
	for _, id := range ids {
		w.rec = binary.AppendUvarint(w.rec, id)
	}
	return w.push()
}

func (w *Writer) check(sym int) error {
	if w.err != nil || w.closed {
		return w.state()
	}
	if sym < 0 || sym >= len(w.maskOf) {
		return fmt.Errorf("trace: symbol %d out of range", sym)
	}
	return nil
}

func (w *Writer) state() error {
	if w.err != nil {
		return w.err
	}
	return fmt.Errorf("trace: writer is closed")
}

// push accounts one appended record and rotates the segment at the
// threshold. Caller holds w.mu.
func (w *Writer) push() error {
	w.records++
	w.total++
	if int(w.records) >= w.segMax {
		return w.seal()
	}
	return nil
}

// seal encodes the open segment, writes it and signals the fsync
// goroutine. Caller holds w.mu; an empty segment is a no-op.
func (w *Writer) seal() error {
	if w.records == 0 {
		return nil
	}
	var e enc
	e.buf = append(e.buf, w.head...)
	ids := make([]uint64, 0, len(w.pivots))
	for id := range w.pivots {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	e.u(uint64(len(ids)))
	var prev uint64
	for _, id := range ids {
		e.u(id - prev)
		prev = id
	}
	e.u(w.broadcast)
	e.u(w.events)
	e.u(w.records)
	e.buf = append(e.buf, w.rec...)
	if len(e.buf) > MaxSegment {
		w.err = fmt.Errorf("trace: segment of %d bytes exceeds MaxSegment", len(e.buf))
		return w.err
	}
	var hdr [4 + binary.MaxVarintLen64]byte
	n := copy(hdr[:], segMagic)
	n += binary.PutUvarint(hdr[n:], uint64(len(e.buf)))
	var foot [4]byte
	binary.LittleEndian.PutUint32(foot[:], crc32.ChecksumIEEE(e.buf))
	for _, b := range [][]byte{hdr[:n], e.buf, foot[:]} {
		if _, err := w.f.Write(b); err != nil {
			w.err = err
			return err
		}
	}
	w.segments++
	if w.met != nil {
		w.met.Segments.Inc()
		w.met.Records.Add(w.records)
		w.met.Bytes.Add(uint64(n + len(e.buf) + len(foot)))
	}
	w.rec = w.rec[:0]
	clear(w.pivots)
	w.broadcast, w.events, w.records = 0, 0, 0
	select {
	case w.syncReq <- struct{}{}:
	default:
	}
	return nil
}

// Flush seals the open segment (if any) to disk. It does not fsync.
func (w *Writer) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return w.state()
	}
	if w.err != nil {
		return w.err
	}
	return w.seal()
}

// Segments returns the number of sealed segments so far.
func (w *Writer) Segments() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.segments
}

// Records returns the total records written (sealed or buffered).
func (w *Writer) Records() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.total
}

// Close seals the open segment, stops the background fsync goroutine,
// fsyncs and closes the file.
func (w *Writer) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	sealErr := error(nil)
	if w.err == nil {
		sealErr = w.seal()
	}
	close(w.syncReq)
	w.mu.Unlock()
	<-w.syncDone
	syncErr := w.syncFile()
	closeErr := w.f.Close()
	for _, err := range []error{w.err, sealErr, syncErr, closeErr} {
		if err != nil {
			return err
		}
	}
	return nil
}

// EnsureDir creates the parent directory of a trace path; shared by the
// cmd-level -record/-trace flag validation.
func EnsureDir(path string) error {
	dir := filepath.Dir(path)
	if dir == "" || dir == "." {
		return nil
	}
	return os.MkdirAll(dir, 0o755)
}
