package trace

import (
	"sync"

	"rvgo/internal/heap"
	"rvgo/internal/param"
)

// Ring record kinds.
const (
	RingDispatch byte = 0 // a parametric event
	RingFree     byte = 1 // an object-death record
)

// RingEvent is one flight-recorder entry. It is a fixed-size value — no
// pointers, no slices — so recording is a struct copy and the ring holds
// no references that could keep parameter objects alive.
type RingEvent struct {
	// Seq is the record's position in the session's stream (1-based).
	Seq uint64
	// Sym is the event symbol (RingDispatch) or -1 (RingFree).
	Sym int32
	// Kind is RingDispatch or RingFree.
	Kind byte
	// N is the number of valid entries in IDs.
	N byte
	// Mask is the bound-parameter set of a dispatch record.
	Mask param.Set
	// IDs are the bound object IDs in ascending parameter order
	// (RingDispatch) or the dying object IDs (RingFree).
	IDs [param.MaxParams]uint64
}

// Binds reports whether the entry mentions object id.
func (e *RingEvent) Binds(id uint64) bool {
	for i := byte(0); i < e.N; i++ {
		if e.IDs[i] == id {
			return true
		}
	}
	return false
}

// Ring is the flight recorder: a fixed-size in-memory window of the most
// recent records, overwritten in place. Recording is mutex-guarded and
// allocation-free (gated by BenchmarkRingRecordAllocs); Snapshot — taken
// when a verdict fires, which is rare — copies the window out in stream
// order. A Ring is safe for concurrent use.
type Ring struct {
	mu  sync.Mutex
	buf []RingEvent
	seq uint64 // total records ever written
}

// NewRing returns a flight recorder holding the last n records (n ≥ 1).
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	return &Ring{buf: make([]RingEvent, n)}
}

// RecordDispatch records one parametric event.
func (r *Ring) RecordDispatch(sym int, theta param.Instance) {
	r.mu.Lock()
	e := r.slot()
	e.Sym = int32(sym)
	e.Kind = RingDispatch
	e.Mask = theta.Mask()
	n := 0
	for m := theta.Mask(); m != 0; m = m.Rest() {
		e.IDs[n] = theta.Value(m.First()).ID()
		n++
	}
	e.N = byte(n)
	r.mu.Unlock()
}

// RecordDispatchIDs records one parametric event given its raw object IDs
// in ascending parameter order — for recorders (the monitoring server)
// that name objects by protocol ID rather than heap reference.
func (r *Ring) RecordDispatchIDs(sym int, mask param.Set, ids []uint64) {
	r.mu.Lock()
	e := r.slot()
	e.Sym = int32(sym)
	e.Kind = RingDispatch
	e.Mask = mask
	n := len(ids)
	if n > param.MaxParams {
		n = param.MaxParams
	}
	copy(e.IDs[:n], ids)
	e.N = byte(n)
	r.mu.Unlock()
}

// RecordFree records an object-death point. More than MaxParams dying
// objects split across consecutive entries.
func (r *Ring) RecordFree(refs ...heap.Ref) {
	r.mu.Lock()
	for len(refs) > 0 {
		chunk := refs
		if len(chunk) > param.MaxParams {
			chunk = chunk[:param.MaxParams]
		}
		refs = refs[len(chunk):]
		e := r.slot()
		e.Sym = -1
		e.Kind = RingFree
		e.Mask = 0
		for i, ref := range chunk {
			e.IDs[i] = ref.ID()
		}
		e.N = byte(len(chunk))
	}
	r.mu.Unlock()
}

// RecordFreeIDs records an object-death point given raw IDs.
func (r *Ring) RecordFreeIDs(ids []uint64) {
	r.mu.Lock()
	for len(ids) > 0 {
		chunk := ids
		if len(chunk) > param.MaxParams {
			chunk = chunk[:param.MaxParams]
		}
		ids = ids[len(chunk):]
		e := r.slot()
		e.Sym = -1
		e.Kind = RingFree
		e.Mask = 0
		copy(e.IDs[:], chunk)
		e.N = byte(len(chunk))
	}
	r.mu.Unlock()
}

// slot claims the next entry. Caller holds r.mu.
func (r *Ring) slot() *RingEvent {
	r.seq++
	e := &r.buf[(r.seq-1)%uint64(len(r.buf))]
	e.Seq = r.seq
	return e
}

// Len returns the number of valid entries (≤ capacity).
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.seq < uint64(len(r.buf)) {
		return int(r.seq)
	}
	return len(r.buf)
}

// Snapshot copies the window out, oldest first. It allocates; verdicts
// are rare and the hot path never calls it.
func (r *Ring) Snapshot() []RingEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := uint64(len(r.buf))
	count := r.seq
	if count > n {
		count = n
	}
	out := make([]RingEvent, count)
	for i := uint64(0); i < count; i++ {
		out[i] = r.buf[(r.seq-count+i)%n]
	}
	return out
}
