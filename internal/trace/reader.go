package trace

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"sort"
)

// segment is one intact on-disk segment: its decoded header plus the
// record region within the reader's shared buffer.
type segment struct {
	hdr  *segHeader
	recs []byte // record region (shared, read-only)
}

// Reader is an opened trace: the file's intact segments, fully indexed.
// The file is read into one buffer at Open (the format is offset-stable,
// so a platform mmap could back the same buffer); decoding records is done
// lazily per replay, and concurrent replays may share one Reader.
type Reader struct {
	segs      []*segment
	truncated bool
}

// Open reads and indexes a trace file. A torn tail — a final segment with
// a short payload or an invalid CRC footer, as left by a crashed writer —
// is truncated, not an error: the trace ends at the last intact segment
// and Truncated reports the cut. Only a missing or foreign file header is
// fatal.
func Open(path string) (*Reader, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < len(fileMagic)+1 || string(data[:len(fileMagic)]) != fileMagic {
		return nil, ErrNotTrace
	}
	if data[len(fileMagic)] != Version {
		return nil, fmt.Errorf("trace: format version %d, want %d", data[len(fileMagic)], Version)
	}
	r := &Reader{}
	pos := len(fileMagic) + 1
	for pos < len(data) {
		seg, next, ok := scanSegment(data, pos)
		if !ok {
			r.truncated = true
			break
		}
		r.segs = append(r.segs, seg)
		pos = next
	}
	return r, nil
}

// scanSegment decodes the segment starting at pos. ok=false means the tail
// from pos on is torn (truncated write or corruption) and scanning stops.
func scanSegment(data []byte, pos int) (seg *segment, next int, ok bool) {
	if pos+len(segMagic) > len(data) || string(data[pos:pos+len(segMagic)]) != segMagic {
		return nil, 0, false
	}
	pos += len(segMagic)
	plen, n := binary.Uvarint(data[pos:])
	if n <= 0 || plen > MaxSegment {
		return nil, 0, false
	}
	pos += n
	if uint64(len(data)-pos) < plen+4 {
		return nil, 0, false
	}
	payload := data[pos : pos+int(plen)]
	pos += int(plen)
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(data[pos:pos+4]) {
		return nil, 0, false
	}
	pos += 4
	d := &dec{buf: payload}
	hdr, err := decodeHeader(d)
	if err != nil {
		// The CRC matched but the header does not decode: a writer bug or
		// deliberate corruption, either way the tail is unusable.
		return nil, 0, false
	}
	return &segment{hdr: hdr, recs: payload[d.pos:]}, pos, true
}

// Segments returns the number of intact segments.
func (r *Reader) Segments() int { return len(r.segs) }

// Truncated reports whether Open cut a torn tail off the trace.
func (r *Reader) Truncated() bool { return r.truncated }

// Records returns the total record count across intact segments.
func (r *Reader) Records() uint64 {
	var n uint64
	for _, s := range r.segs {
		n += s.hdr.records
	}
	return n
}

// Events returns the total event-record count across intact segments.
func (r *Reader) Events() uint64 {
	var n uint64
	for _, s := range r.segs {
		n += s.hdr.events
	}
	return n
}

// SymbolNames returns the event alphabet recorded in the first segment's
// symbol table (empty for an empty trace) — what rvquery prints when the
// query spec does not match the recording.
func (r *Reader) SymbolNames() []string {
	if len(r.segs) == 0 {
		return nil
	}
	names := make([]string, len(r.segs[0].hdr.syms))
	for i, s := range r.segs[0].hdr.syms {
		names[i] = s.Name
	}
	return names
}

// PivotIDs returns the union of the per-segment pivot indexes, ascending:
// every slice (pivot object) the trace contains.
func (r *Reader) PivotIDs() []uint64 {
	seen := map[uint64]struct{}{}
	var ids []uint64
	for _, s := range r.segs {
		for _, id := range s.hdr.pivotIDs {
			if _, dup := seen[id]; !dup {
				seen[id] = struct{}{}
				ids = append(ids, id)
			}
		}
	}
	sortIDs(ids)
	return ids
}

// Record is one decoded trace record, as delivered by Scan. For an event
// record Free is false, Sym indexes the segment's symbol table and IDs
// bind the symbol's parameters in ascending parameter order; for a death
// record Free is true and IDs are the dying objects. IDs is a shared
// buffer, valid only for the duration of the callback.
type Record struct {
	Free bool
	Sym  int
	IDs  []uint64
}

// Scan decodes every record across the intact segments in stream order
// and hands each to fn; a non-nil return stops the scan and is returned.
// Traces written by Writer carry an identical symbol table in every
// segment, so Sym is stable across the whole scan; SymbolNames resolves
// it.
func (r *Reader) Scan(fn func(Record) error) error {
	var ids []uint64
	for si, seg := range r.segs {
		d := &dec{buf: seg.recs}
		for rec := uint64(0); rec < seg.hdr.records; rec++ {
			tag, err := d.b()
			if err != nil {
				return fmt.Errorf("trace: segment %d: %w", si, err)
			}
			switch tag {
			case recEvent:
				sym, err := d.u()
				if err != nil {
					return fmt.Errorf("trace: segment %d: %w", si, err)
				}
				if sym >= uint64(len(seg.hdr.syms)) {
					return fmt.Errorf("trace: segment %d: symbol %d beyond table", si, sym)
				}
				n := seg.hdr.syms[sym].Params.Count()
				ids = ids[:0]
				for k := 0; k < n; k++ {
					id, err := d.u()
					if err != nil {
						return fmt.Errorf("trace: segment %d: %w", si, err)
					}
					ids = append(ids, id)
				}
				if err := fn(Record{Sym: int(sym), IDs: ids}); err != nil {
					return err
				}
			case recFree:
				n, err := d.u()
				if err != nil {
					return fmt.Errorf("trace: segment %d: %w", si, err)
				}
				ids = ids[:0]
				for k := uint64(0); k < n; k++ {
					id, err := d.u()
					if err != nil {
						return fmt.Errorf("trace: segment %d: %w", si, err)
					}
					ids = append(ids, id)
				}
				if err := fn(Record{Free: true, IDs: ids}); err != nil {
					return err
				}
			default:
				return fmt.Errorf("trace: segment %d: unknown record tag %d", si, tag)
			}
		}
	}
	return nil
}

// PivotSegments returns, for each pivot ID, how many segments index it —
// the slice's footprint across the trace, and hence how much a selective
// query for that slice can skip. Cheap: header-only, no record decoding.
func (r *Reader) PivotSegments() map[uint64]int {
	counts := map[uint64]int{}
	for _, s := range r.segs {
		for _, id := range s.hdr.pivotIDs {
			counts[id]++
		}
	}
	return counts
}

func sortIDs(ids []uint64) {
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
}
