package remote_test

import (
	"fmt"
	"math/rand"
	"net"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"rvgo/internal/conformance"
	"rvgo/internal/dacapo"
	"rvgo/internal/heap"
	"rvgo/internal/monitor"
	"rvgo/internal/props"
	"rvgo/internal/remote"
	"rvgo/internal/server"
	"rvgo/internal/shard"
)

// startServer runs a monitoring server on an ephemeral localhost port and
// returns its address. The server is drained when the test ends.
func startServer(t testing.TB, opts server.Options) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(opts)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	t.Cleanup(func() {
		srv.Shutdown(5 * time.Second)
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return l.Addr().String()
}

// TestClientConformance runs the backend-independent Runtime suite over
// the network, once against a sequential session and once against a
// sharded one.
func TestClientConformance(t *testing.T) {
	addr := startServer(t, server.Options{})
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			conformance.RunEmitNamed(t, func(t *testing.T, prop string, onVerdict func(monitor.Verdict)) monitor.Runtime {
				cl, err := remote.Dial(addr, remote.Options{
					Prop:      prop,
					GC:        monitor.GCCoenable,
					Creation:  monitor.CreateEnable,
					Shards:    shards,
					OnVerdict: onVerdict,
				})
				if err != nil {
					t.Fatal(err)
				}
				return cl
			})
		})
	}
}

// TestClientFreeConformance runs the death-positioning suite (Free and
// FreeAsync) over the network: protocol-level frees must position deaths
// exactly as the in-process backends do.
func TestClientFreeConformance(t *testing.T) {
	addr := startServer(t, server.Options{})
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			conformance.RunFree(t, func(t *testing.T, prop string, onVerdict func(monitor.Verdict)) monitor.Runtime {
				cl, err := remote.Dial(addr, remote.Options{
					Prop:      prop,
					GC:        monitor.GCCoenable,
					Creation:  monitor.CreateEnable,
					Shards:    shards,
					OnVerdict: onVerdict,
				})
				if err != nil {
					t.Fatal(err)
				}
				return cl
			})
		})
	}
}

// TestClientArenaOracle replays the avrora trace over the network under
// every GC policy, against sequential and 4-shard server sessions, and
// requires per-slice verdicts and settled counters bit-identical to an
// in-process sequential-engine reference.
func TestClientArenaOracle(t *testing.T) {
	addr := startServer(t, server.Options{})
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			conformance.RunArenaOracle(t, func(t *testing.T, prop string, gc monitor.GCPolicy, onVerdict func(monitor.Verdict)) monitor.Runtime {
				cl, err := remote.Dial(addr, remote.Options{
					Prop:      prop,
					GC:        gc,
					Creation:  monitor.CreateEnable,
					Shards:    shards,
					OnVerdict: onVerdict,
				})
				if err != nil {
					t.Fatal(err)
				}
				return cl
			})
		})
	}
}

// TestClientAvoidanceOracle replays the avrora trace over the network
// under every GC policy × avoidance mode (the mode travels in the Hello)
// and holds verdicts and settled counters against the unguarded
// sequential reference.
func TestClientAvoidanceOracle(t *testing.T) {
	addr := startServer(t, server.Options{})
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			conformance.RunAvoidanceOracle(t, func(t *testing.T, prop string, gc monitor.GCPolicy, avoid monitor.AvoidMode, onVerdict func(monitor.Verdict)) monitor.Runtime {
				cl, err := remote.Dial(addr, remote.Options{
					Prop:      prop,
					GC:        gc,
					Creation:  monitor.CreateEnable,
					Avoid:     avoid,
					Shards:    shards,
					OnVerdict: onVerdict,
				})
				if err != nil {
					t.Fatal(err)
				}
				return cl
			})
		})
	}
}

// gstep is one step of a backend-independent random trace: an event over
// object ordinals, or (sym == -1) the death of objs[0].
type gstep struct {
	sym  int
	objs []int
}

// genTrace generates a random trace for a spec: per-parameter pools of
// live ordinals, random events over live objects, random births and
// deaths (same generator shape as the internal/shard oracle).
func genTrace(rng *rand.Rand, spec *monitor.Spec, n int) []gstep {
	nParams := len(spec.Params)
	pools := make([][]int, nParams)
	next := 0
	alloc := func(p int) {
		pools[p] = append(pools[p], next)
		next++
	}
	for p := 0; p < nParams; p++ {
		alloc(p)
		alloc(p)
	}
	var steps []gstep
	for len(steps) < n {
		switch r := rng.Float64(); {
		case r < 0.08:
			p := rng.Intn(nParams)
			if len(pools[p]) <= 1 {
				continue
			}
			i := rng.Intn(len(pools[p]))
			o := pools[p][i]
			pools[p] = append(pools[p][:i], pools[p][i+1:]...)
			steps = append(steps, gstep{sym: -1, objs: []int{o}})
		case r < 0.2:
			alloc(rng.Intn(nParams))
		default:
			sym := rng.Intn(len(spec.Events))
			ps := spec.Events[sym].Params.Members()
			objs := make([]int, len(ps))
			for k, p := range ps {
				objs[k] = pools[p][rng.Intn(len(pools[p]))]
			}
			steps = append(steps, gstep{sym: sym, objs: objs})
		}
	}
	return steps
}

// result is one backend's observable outcome.
type result struct {
	verdicts map[string][]string
	stats    monitor.Stats
}

func recordVerdicts(spec *monitor.Spec, mu *sync.Mutex, into map[string][]string) func(monitor.Verdict) {
	return func(v monitor.Verdict) {
		k := v.Inst.Format(spec.Params)
		if mu != nil {
			mu.Lock()
			defer mu.Unlock()
		}
		into[k] = append(into[k], fmt.Sprintf("%d/%s", v.Sym, v.Cat))
	}
}

// freer is the death-forwarding surface of the remote remote.
type freer interface {
	Free(refs ...heap.Ref)
}

// replayInto feeds a gstep trace into any backend. Local backends get a
// Barrier before each death; the remote client gets an explicit Free (the
// server barriers on its side).
func replayInto(t testing.TB, rt monitor.Runtime, h *heap.Heap, steps []gstep, prefix string) {
	t.Helper()
	objs := map[int]*heap.Object{}
	get := func(o int) *heap.Object {
		v, ok := objs[o]
		if !ok {
			v = h.Alloc(fmt.Sprintf("%so%d", prefix, o))
			objs[o] = v
		}
		return v
	}
	f, isRemote := rt.(freer)
	for _, st := range steps {
		if st.sym < 0 {
			o := get(st.objs[0])
			if isRemote {
				f.Free(o)
			} else {
				rt.Barrier()
			}
			h.Free(o)
			continue
		}
		vals := make([]heap.Ref, len(st.objs))
		for k, o := range st.objs {
			vals[k] = get(o)
		}
		rt.Emit(st.sym, vals...)
	}
}

// execTrace runs one backend over a trace. kind: "seq", "shard", or
// "remote"; shards applies to the latter two.
func execTrace(t testing.TB, addr string, spec *monitor.Spec, prop string, gc monitor.GCPolicy, kind string, shards int, steps []gstep) result {
	t.Helper()
	verdicts := map[string][]string{}
	var rt monitor.Runtime
	var err error
	switch kind {
	case "seq":
		rt, err = monitor.New(spec, monitor.Options{
			GC: gc, Creation: monitor.CreateEnable,
			OnVerdict: recordVerdicts(spec, nil, verdicts),
		})
	case "shard":
		rt, err = shard.New(spec, shard.Options{
			Options: monitor.Options{
				GC: gc, Creation: monitor.CreateEnable,
				OnVerdict: recordVerdicts(spec, nil, verdicts),
			},
			Shards: shards,
		})
	case "remote":
		rt, err = remote.Dial(addr, remote.Options{
			Prop: prop, GC: gc, Creation: monitor.CreateEnable, Shards: shards,
			OnVerdict: recordVerdicts(spec, nil, verdicts),
		})
	default:
		t.Fatalf("unknown backend kind %q", kind)
	}
	if err != nil {
		t.Fatal(err)
	}
	replayInto(t, rt, heap.New(), steps, "")
	rt.Flush()
	st := rt.Stats()
	rt.Close()
	if cl, ok := rt.(*remote.Client); ok {
		if err := cl.Err(); err != nil {
			t.Fatalf("remote session error: %v", err)
		}
	}
	return result{verdicts: verdicts, stats: st}
}

// compareResults checks per-slice verdict sequences and settled counters.
// PeakLive is compared only when exact is set (sharded backends sum
// per-shard peaks, an upper bound).
func compareResults(t *testing.T, name string, oracle, got result, exact bool) {
	t.Helper()
	a, b := oracle.stats, got.stats
	if !exact {
		a.PeakLive, b.PeakLive = 0, 0
	}
	if a != b {
		t.Errorf("%s: stats diverge:\n  oracle %+v\n  got    %+v", name, a, b)
	}
	if !reflect.DeepEqual(oracle.verdicts, got.verdicts) {
		t.Errorf("%s: per-slice verdicts diverge:\n  oracle %v\n  got    %v", name, oracle.verdicts, got.verdicts)
	}
}

// TestRemoteEquivalenceRandom is the network oracle: identical random
// traces through the sequential engine, the sharded runtime, and remote
// sessions (sequential and sharded server backends) must produce equal
// per-slice verdict sequences and settled counters, under all three GC
// policies. A remote session over a 1-shard backend must match the
// sequential engine exactly, PeakLive included.
func TestRemoteEquivalenceRandom(t *testing.T) {
	addr := startServer(t, server.Options{})
	gcs := []monitor.GCPolicy{monitor.GCNone, monitor.GCAllDead, monitor.GCCoenable}
	propNames := []string{"HasNext", "UnsafeIter", "UnsafeMapIter"}
	seeds := 3
	if testing.Short() {
		seeds = 1
		propNames = propNames[:2]
	}
	for _, prop := range propNames {
		spec, err := props.Build(prop)
		if err != nil {
			t.Fatal(err)
		}
		for seed := 0; seed < seeds; seed++ {
			rng := rand.New(rand.NewSource(int64(seed)))
			steps := genTrace(rng, spec, 300)
			for _, gc := range gcs {
				name := fmt.Sprintf("%s/seed%d/gc=%s", prop, seed, gc)
				oracle := execTrace(t, addr, spec, prop, gc, "seq", 0, steps)
				if oracle.stats.Events == 0 {
					t.Fatalf("%s: trace drove no events", name)
				}
				sharded := execTrace(t, addr, spec, prop, gc, "shard", 4, steps)
				compareResults(t, name+"/shard4", oracle, sharded, false)
				remote1 := execTrace(t, addr, spec, prop, gc, "remote", 1, steps)
				compareResults(t, name+"/remote1", oracle, remote1, true)
				remote4 := execTrace(t, addr, spec, prop, gc, "remote", 4, steps)
				compareResults(t, name+"/remote4", oracle, remote4, false)
			}
		}
	}
}

// TestRemoteEquivalenceDaCapo replays recorded DaCapo workload traces —
// instrumentation events and object deaths in program order — through the
// property adapters into the sequential engine and a remote session, and
// requires identical verdicts and counters.
func TestRemoteEquivalenceDaCapo(t *testing.T) {
	addr := startServer(t, server.Options{})
	benches := []struct {
		name  string
		scale float64
	}{{"avrora", 0.02}, {"xalan", 1.0}}
	propNames := props.DaCapoProperties()
	if testing.Short() {
		benches = benches[:1]
		propNames = propNames[:2]
	}
	for _, b := range benches {
		p, ok := dacapo.Get(b.name)
		if !ok {
			t.Fatalf("no profile %q", b.name)
		}
		tr, err := p.Record(b.scale)
		if err != nil {
			t.Fatal(err)
		}
		for _, propName := range propNames {
			spec, err := props.Build(propName)
			if err != nil {
				t.Fatal(err)
			}
			runOne := func(overWire bool, shards int) result {
				verdicts := map[string][]string{}
				var rt monitor.Runtime
				var err error
				if overWire {
					rt, err = remote.Dial(addr, remote.Options{
						Prop: propName, GC: monitor.GCCoenable, Creation: monitor.CreateEnable,
						Shards: shards, OnVerdict: recordVerdicts(spec, nil, verdicts),
					})
				} else {
					rt, err = monitor.New(spec, monitor.Options{
						GC: monitor.GCCoenable, Creation: monitor.CreateEnable,
						OnVerdict: recordVerdicts(spec, nil, verdicts),
					})
				}
				if err != nil {
					t.Fatal(err)
				}
				sink, err := dacapo.Adapt(propName, rt)
				if err != nil {
					t.Fatal(err)
				}
				h := heap.New()
				if f, ok := rt.(freer); ok {
					h.SetFreeHook(func(o *heap.Object) { f.Free(o) })
					tr.Replay(h, sink, nil)
				} else {
					tr.Replay(h, sink, rt.Barrier)
				}
				rt.Flush()
				st := rt.Stats()
				rt.Close()
				return result{verdicts: verdicts, stats: st}
			}
			oracle := runOne(false, 0)
			if oracle.stats.Events == 0 {
				t.Fatalf("%s/%s: trace drove no events", b.name, propName)
			}
			got1 := runOne(true, 1)
			compareResults(t, fmt.Sprintf("%s/%s/remote1", b.name, propName), oracle, got1, true)
			got4 := runOne(true, 4)
			compareResults(t, fmt.Sprintf("%s/%s/remote4", b.name, propName), oracle, got4, false)
		}
	}
}

// TestConcurrentSessions drives many concurrent sessions against one
// server (run under -race in CI): every session must independently match
// the sequential oracle for its own trace.
func TestConcurrentSessions(t *testing.T) {
	addr := startServer(t, server.Options{})
	const sessions = 10
	propNames := []string{"HasNext", "UnsafeIter", "UnsafeMapIter", "UnsafeSyncColl", "UnsafeSyncMap"}
	var wg sync.WaitGroup
	for g := 0; g < sessions; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			prop := propNames[g%len(propNames)]
			spec, err := props.Build(prop)
			if err != nil {
				t.Error(err)
				return
			}
			rng := rand.New(rand.NewSource(int64(7000 + g)))
			steps := genTrace(rng, spec, 500)
			gc := []monitor.GCPolicy{monitor.GCCoenable, monitor.GCAllDead}[g%2]
			shards := []int{1, 4}[g%2]
			oracle := execTrace(t, addr, spec, prop, gc, "seq", 0, steps)
			got := execTrace(t, addr, spec, prop, gc, "remote", shards, steps)
			compareResults(t, fmt.Sprintf("session%d/%s", g, prop), oracle, got, shards == 1)
		}(g)
	}
	wg.Wait()
}

// TestShardedVerdictStream hammers one sharded session with a
// verdict-dense stream and no barriers, so server-side shard workers
// reconstruct verdict IDs concurrently with the session goroutine
// ingesting events — the access pattern that races on the session's ID
// tables unless they are locked (run under -race in CI).
func TestShardedVerdictStream(t *testing.T) {
	addr := startServer(t, server.Options{})
	var verdicts int
	var vmu sync.Mutex
	cl, err := remote.Dial(addr, remote.Options{
		Prop: "HasNext", GC: monitor.GCCoenable, Creation: monitor.CreateEnable,
		Shards: 4,
		OnVerdict: func(monitor.Verdict) {
			vmu.Lock()
			verdicts++
			vmu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h := heap.New()
	next, _ := cl.Spec().Symbol("next")
	hnT, _ := cl.Spec().Symbol("hasnexttrue")
	const iters = 5000
	for k := 0; k < iters; k++ {
		it := h.Alloc("i")
		cl.Emit(hnT, it)
		cl.Emit(next, it)
		cl.Emit(next, it) // violation: verdict fires on a shard worker
		cl.Free(it)
	}
	cl.Flush()
	st := cl.Stats()
	cl.Close()
	if err := cl.Err(); err != nil {
		t.Fatal(err)
	}
	if st.Events != 3*iters || st.GoalVerdicts != iters {
		t.Fatalf("stats = %+v, want Events=%d GoalVerdicts=%d", st, 3*iters, iters)
	}
	vmu.Lock()
	defer vmu.Unlock()
	if verdicts != iters {
		t.Fatalf("delivered %d verdicts, want %d", verdicts, iters)
	}
}

// TestSpecSourceSession: a session negotiated from .rv source (compiled
// independently on both sides) monitors correctly.
func TestSpecSourceSession(t *testing.T) {
	addr := startServer(t, server.Options{})
	src := `HasNextSrc(Iterator i) {
    event hasnexttrue(i)
    event hasnextfalse(i)
    event next(i)

    fsm:
    unknown [
        hasnexttrue -> more
        hasnextfalse -> none
        next -> error
    ]
    more [
        hasnexttrue -> more
        hasnextfalse -> none
        next -> unknown
    ]
    none [
        hasnexttrue -> more
        hasnextfalse -> none
        next -> error
    ]
    error [ ]
    @error { print "violation" }
}`
	var got []string
	cl, err := remote.Dial(addr, remote.Options{
		SpecSource: src,
		GC:         monitor.GCCoenable,
		Creation:   monitor.CreateEnable,
		OnVerdict: func(v monitor.Verdict) {
			got = append(got, string(v.Cat)+"@"+v.Inst.Format(v.Spec.Params))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	h := heap.New()
	i := h.Alloc("it")
	for _, ev := range []string{"hasnexttrue", "next", "next"} {
		if err := cl.EmitNamed(ev, i); err != nil {
			t.Fatal(err)
		}
	}
	cl.Barrier()
	if len(got) != 1 || !strings.Contains(got[0], "error") {
		t.Fatalf("verdicts = %v, want one error verdict", got)
	}
}

// TestDialErrors: server-side refusals (unknown property, bad shard
// count) surface as Dial errors carrying the server's message.
func TestDialErrors(t *testing.T) {
	addr := startServer(t, server.Options{MaxShards: 4})
	if _, err := remote.Dial(addr, remote.Options{Prop: "NoSuchProp"}); err == nil {
		t.Fatal("Dial with an unknown property succeeded")
	} else if !strings.Contains(err.Error(), "NoSuchProp") {
		t.Errorf("error %q does not name the property", err)
	}
	if _, err := remote.Dial(addr, remote.Options{Prop: "HasNext", Shards: 64}); err == nil {
		t.Fatal("Dial with an excessive shard count succeeded")
	} else if !strings.Contains(err.Error(), "out of range") {
		t.Errorf("error %q does not mention the shard range", err)
	}
	// Client-side option validation.
	if _, err := remote.Dial(addr, remote.Options{}); err == nil {
		t.Fatal("Dial with no spec reference succeeded")
	}
}

// TestServerDrain: Shutdown stops accepting but lets an active session
// finish its stream and get its final stats.
func TestServerDrain(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.Options{})
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()

	cl, err := remote.Dial(l.Addr().String(), remote.Options{
		Prop: "HasNext", GC: monitor.GCCoenable, Creation: monitor.CreateEnable,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := heap.New()
	it := h.Alloc("i")
	if err := cl.EmitNamed("hasnexttrue", it); err != nil {
		t.Fatal(err)
	}

	shutdownDone := make(chan struct{})
	go func() {
		srv.Shutdown(10 * time.Second)
		close(shutdownDone)
	}()
	// New connections must be refused while the old session still works.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := remote.Dial(l.Addr().String(), remote.Options{Prop: "HasNext"}); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server kept accepting sessions after Shutdown began")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := cl.EmitNamed("next", it); err != nil {
		t.Fatal(err)
	}
	cl.Flush()
	st := cl.Stats()
	if st.Events != 2 {
		t.Fatalf("draining session stats = %+v, want Events=2", st)
	}
	cl.Close()
	if err := cl.Err(); err != nil {
		t.Fatalf("session error during drain: %v", err)
	}
	<-shutdownDone
	if err := <-done; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if got := srv.Stats().Events; got != 2 {
		t.Fatalf("server aggregate events = %d, want 2", got)
	}
}
