// Package remote implements monitor.Runtime over the wire protocol: a
// monitored program embeds a Client instead of an in-process engine, and
// its events are monitored by a remote rvserve (internal/server) session.
//
// The Client pipelines event writes (they buffer until a sync operation or
// a full buffer drains them), reads verdicts and flow-control credit on a
// background goroutine, and — because the network has no weak references —
// reports parameter-object deaths explicitly with Free. On the server a
// Free kills the session's counterpart objects, which is the death signal
// the paper's coenable-set monitor GC consumes; the server barriers its
// runtime first, so every event sent before the Free observes the objects
// alive and per-slice verdicts and counters match an in-process replay of
// the same stream exactly (see the oracle tests in this package).
//
// Concurrency: all Runtime methods are safe for concurrent use. The
// OnVerdict handler runs on the reader goroutine and must not call back
// into the Client. Dispatch blocks when the server's credit window is
// exhausted — that is the protocol-level backpressure of a backend that
// cannot keep up.
//
// Memory: the Client keeps one table entry per distinct object it has
// sent, including dead ones, so that late verdicts mentioning a dead
// object (possible under the alldead/none GC policies, whose monitors
// outlive their objects) can be reconstructed with the original refs —
// the same lifetime a dead heap.Ref's identity has in process.
package remote

import (
	"fmt"
	"net"
	"sync"

	"rvgo/internal/heap"
	"rvgo/internal/logic"
	"rvgo/internal/monitor"
	"rvgo/internal/param"
	"rvgo/internal/props"
	"rvgo/internal/spec"
	"rvgo/internal/wire"
)

// Options configures a session.
type Options struct {
	// Prop names a property from the server's built-in library. Exactly
	// one of Prop and SpecSource must be set.
	Prop string
	// SpecSource is .rv specification source compiled by both sides; it
	// must define exactly one property.
	SpecSource string
	// GC is the monitor GC policy for the session's backend.
	GC monitor.GCPolicy
	// Creation is the monitor creation strategy (CreateEnable unless the
	// session is a single-shard semantic oracle).
	Creation monitor.CreationStrategy
	// Avoid is the creation-avoidance mode for the session's engine(s).
	// Static guards only: profiles are engine-local and do not cross the
	// wire.
	Avoid monitor.AvoidMode
	// Shards selects the server-side backend: 1 = sequential engine,
	// >1 = sharded runtime, 0 = server default.
	Shards int
	// Window caps the event-credit window (0 = accept the server's).
	Window int
	// OnVerdict receives goal verdicts, serialized, in per-slice order. It
	// runs on the reader goroutine and must not call back into the Client.
	OnVerdict func(monitor.Verdict)
}

// Client is a remote monitoring session. It implements monitor.Runtime.
type Client struct {
	conn net.Conn
	spec *monitor.Spec
	opts Options

	// wmu serializes frame writes and flushes. The reader goroutine never
	// takes it, so a write stalled on TCP backpressure cannot wedge the
	// inbound stream (which is what feeds credit back to unblock writes).
	wmu sync.Mutex
	w   *wire.Writer

	// cmu guards the credit window; credit arrivals signal cond.
	cmu     sync.Mutex
	cond    *sync.Cond
	credits int64

	// tmu guards the remote-ID table used to reconstruct verdict
	// instances.
	tmu   sync.Mutex
	table map[uint64]heap.Ref

	// pmu guards the pending sync-operation map and the sticky error.
	pmu     sync.Mutex
	pending map[uint64]chan wire.Msg
	token   uint64
	err     error
	closed  bool

	final      monitor.Stats // settled counters from ByeAck
	readerDone chan struct{}
}

var _ monitor.Runtime = (*Client)(nil)

// Dial opens a monitoring session. The local spec is compiled from the
// same reference the server receives (library name or source), and the
// server's compiled event list is verified against it before Dial returns.
func Dial(addr string, opts Options) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewSession(conn, opts)
}

// NewSession runs the session handshake over an established connection
// (Dial with a dialed TCP conn; tests may pass an in-process pipe).
func NewSession(conn net.Conn, opts Options) (*Client, error) {
	local, kind, ref, err := resolveSpec(opts)
	if err != nil {
		conn.Close()
		return nil, err
	}
	c := &Client{
		conn:       conn,
		spec:       local,
		opts:       opts,
		w:          wire.NewWriter(conn),
		table:      map[uint64]heap.Ref{},
		pending:    map[uint64]chan wire.Msg{},
		readerDone: make(chan struct{}),
	}
	c.cond = sync.NewCond(&c.cmu)

	hello := wire.Hello{
		Version:  wire.Version,
		SpecKind: kind,
		Spec:     ref,
		GC:       byte(opts.GC),
		Creation: byte(opts.Creation),
		Avoid:    byte(opts.Avoid),
		Shards:   uint64(opts.Shards),
		Window:   uint64(opts.Window),
	}
	if err := c.w.WriteHello(hello); err != nil {
		conn.Close()
		return nil, err
	}
	if err := c.w.Flush(); err != nil {
		conn.Close()
		return nil, err
	}
	r := wire.NewReader(conn)
	var msg wire.Msg
	if err := r.Next(&msg); err != nil {
		conn.Close()
		return nil, fmt.Errorf("remote: reading HelloAck: %w", err)
	}
	switch msg.Type {
	case wire.THelloAck:
	case wire.TError:
		conn.Close()
		return nil, fmt.Errorf("remote: server refused session: %s", msg.Error.Msg)
	default:
		conn.Close()
		return nil, fmt.Errorf("remote: expected HelloAck, got message type %d", msg.Type)
	}
	if err := c.verifyAck(msg.HelloAck); err != nil {
		conn.Close()
		return nil, err
	}
	c.credits = int64(msg.HelloAck.Window)
	go c.readLoop(r)
	return c, nil
}

// resolveSpec compiles the client-side copy of the spec.
func resolveSpec(opts Options) (*monitor.Spec, byte, string, error) {
	switch {
	case opts.Prop != "" && opts.SpecSource != "":
		return nil, 0, "", fmt.Errorf("remote: set exactly one of Prop and SpecSource")
	case opts.Prop != "":
		s, err := props.Build(opts.Prop)
		if err != nil {
			return nil, 0, "", err
		}
		return s, wire.SpecProp, opts.Prop, nil
	case opts.SpecSource != "":
		s, err := spec.CompileOne(opts.SpecSource)
		if err != nil {
			return nil, 0, "", err
		}
		return s, wire.SpecSource, opts.SpecSource, nil
	}
	return nil, 0, "", fmt.Errorf("remote: set one of Prop and SpecSource")
}

// verifyAck checks that the server compiled the same spec we did: the
// negotiation half of the protocol. Divergence (library version skew, a
// different .rv compilation) would silently misroute symbols, so it is a
// hard error.
func (c *Client) verifyAck(a wire.HelloAck) error {
	if a.SpecName != c.spec.Name {
		return fmt.Errorf("remote: spec negotiation: server compiled %q, client %q", a.SpecName, c.spec.Name)
	}
	if len(a.Params) != len(c.spec.Params) {
		return fmt.Errorf("remote: spec negotiation: server has %d parameters, client %d", len(a.Params), len(c.spec.Params))
	}
	if len(a.Events) != len(c.spec.Events) {
		return fmt.Errorf("remote: spec negotiation: server has %d events, client %d", len(a.Events), len(c.spec.Events))
	}
	for i, ev := range c.spec.Events {
		if a.Events[i].Name != ev.Name || param.Set(a.Events[i].Params) != ev.Params {
			return fmt.Errorf("remote: spec negotiation: event %d is %s%v on the server, %s%v locally",
				i, a.Events[i].Name, param.Set(a.Events[i].Params).Members(), ev.Name, ev.Params.Members())
		}
	}
	return nil
}

// readLoop drains the inbound stream: verdicts to the handler, credit to
// the window, acks to their waiters. On any exit every still-pending
// waiter is released (a sync op racing Close can land after the Bye and
// never be answered; its caller gets the zero result, not a hang).
func (c *Client) readLoop(r *wire.Reader) {
	defer close(c.readerDone)
	defer c.drainPending()
	var msg wire.Msg
	for {
		if err := r.Next(&msg); err != nil {
			c.fatal(fmt.Errorf("remote: connection lost: %w", err))
			return
		}
		switch msg.Type {
		case wire.TVerdict:
			c.deliverVerdict(msg.Verdict)
		case wire.TCredit:
			c.cmu.Lock()
			c.credits += int64(msg.Credit.N)
			c.cmu.Unlock()
			c.cond.Broadcast()
		case wire.TBarrierAck, wire.TFlushAck:
			c.complete(msg.Sync.Token, msg)
		case wire.TStats:
			c.complete(msg.Stats.Token, msg)
		case wire.TByeAck:
			// ByeAck carries no token; it completes the pending Close.
			c.complete(byeToken, msg)
			return
		case wire.TError:
			c.fatal(fmt.Errorf("remote: server error: %s", msg.Error.Msg))
			return
		default:
			c.fatal(fmt.Errorf("remote: unexpected message type %d", msg.Type))
			return
		}
	}
}

// byeToken is the reserved pending-map key for the ByeAck (tokens handed
// to sync ops start at 1).
const byeToken = 0

// deliverVerdict reconstructs the instance from the client's own refs and
// invokes the handler.
func (c *Client) deliverVerdict(v wire.Verdict) {
	if c.opts.OnVerdict == nil {
		return
	}
	inst := param.Empty()
	mask := param.Set(v.Mask)
	c.tmu.Lock()
	for k, p := range mask.Members() {
		ref, ok := c.table[v.IDs[k]]
		if !ok {
			ref = ghostRef(v.IDs[k])
		}
		inst = inst.Bind(p, ref)
	}
	c.tmu.Unlock()
	var sym int
	if v.Sym >= 0 && v.Sym < len(c.spec.Events) {
		sym = v.Sym
	}
	c.opts.OnVerdict(monitor.Verdict{
		Spec: c.spec,
		Sym:  sym,
		Cat:  logic.Category(v.Cat),
		Inst: inst,
	})
}

// complete hands an ack to its waiter.
func (c *Client) complete(token uint64, msg wire.Msg) {
	c.pmu.Lock()
	ch := c.pending[token]
	delete(c.pending, token)
	c.pmu.Unlock()
	if ch != nil {
		ch <- msg
	}
}

// fatal records the sticky error and releases every waiter.
func (c *Client) fatal(err error) {
	c.pmu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.pmu.Unlock()
	c.drainPending()
	// Unblock producers waiting for credit.
	c.cmu.Lock()
	c.credits = 1 << 40
	c.cmu.Unlock()
	c.cond.Broadcast()
}

// drainPending closes every pending waiter channel (each sees ok=false).
func (c *Client) drainPending() {
	c.pmu.Lock()
	chans := make([]chan wire.Msg, 0, len(c.pending))
	for tok, ch := range c.pending {
		chans = append(chans, ch)
		delete(c.pending, tok)
	}
	c.pmu.Unlock()
	for _, ch := range chans {
		close(ch)
	}
}

// Err returns the sticky session error, if any: connection loss, a server
// Error frame, or a protocol violation. Runtime methods degrade to no-ops
// once it is set.
func (c *Client) Err() error {
	c.pmu.Lock()
	defer c.pmu.Unlock()
	return c.err
}

// Spec implements monitor.Runtime.
func (c *Client) Spec() *monitor.Spec { return c.spec }

// Emit implements monitor.Runtime.
func (c *Client) Emit(sym int, vals ...heap.Ref) {
	c.Dispatch(sym, param.Of(c.spec.Events[sym].Params, vals...))
}

// EmitNamed implements monitor.Runtime.
func (c *Client) EmitNamed(name string, vals ...heap.Ref) error {
	sym, ok := c.spec.Symbol(name)
	if !ok {
		return fmt.Errorf("remote: spec %q has no event %q", c.spec.Name, name)
	}
	if want := c.spec.Events[sym].Params.Count(); len(vals) != want {
		return fmt.Errorf("remote: event %q takes %d values, got %d", name, want, len(vals))
	}
	c.Emit(sym, vals...)
	return nil
}

// Dispatch implements monitor.Runtime: the event is written to the
// pipeline (no round trip). It blocks while the server's credit window is
// exhausted.
func (c *Client) Dispatch(sym int, theta param.Instance) {
	ps := c.spec.Events[sym].Params.Members()
	ids := make([]uint64, len(ps))
	c.tmu.Lock()
	for k, p := range ps {
		ref := theta.Value(p)
		id := ref.ID()
		ids[k] = id
		if _, ok := c.table[id]; !ok {
			c.table[id] = ref
		}
	}
	c.tmu.Unlock()

	c.spendCredit()
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := c.w.WriteEvent(sym, ids); err != nil {
		c.fatal(err)
	}
}

// spendCredit takes one event credit, flushing the write pipeline and
// blocking while the window is empty (the events in the buffer are what
// will earn the refill).
func (c *Client) spendCredit() {
	c.cmu.Lock()
	for c.credits <= 0 {
		c.cmu.Unlock()
		c.wmu.Lock()
		err := c.w.Flush()
		c.wmu.Unlock()
		if err != nil {
			c.fatal(err)
		}
		c.cmu.Lock()
		if c.credits > 0 {
			break
		}
		c.cond.Wait()
	}
	c.credits--
	c.cmu.Unlock()
}

// Free reports parameter-object deaths to the server, in call order
// relative to Dispatch: every event already dispatched observes the
// objects alive, every later event must not mention them. This is the
// explicit, protocol-level replacement for the weak-reference death signal
// the in-process backends get from the heap. It implements
// monitor.Runtime's synchronous death positioning: the server barriers the
// session's backend before applying the free.
func (c *Client) Free(refs ...heap.Ref) {
	if len(refs) == 0 {
		return
	}
	ids := make([]uint64, len(refs))
	for k, ref := range refs {
		ids[k] = ref.ID()
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := c.w.WriteFree(ids); err != nil {
		c.fatal(err)
		return
	}
	// Deaths drive monitor GC on the server; flush so they are timely
	// even when the event pipeline is idle.
	if err := c.w.Flush(); err != nil {
		c.fatal(err)
	}
}

// FreeAsync implements monitor.Runtime's pipelined death positioning. For
// a remote session the positioned point is the free frame's place in the
// write pipeline — the server barriers its backend when the frame arrives —
// so the local die runs as soon as the frame is written: the local refs
// only feed verdict reconstruction, where dead identities are expected
// (that is the whole point of monitor GC).
func (c *Client) FreeAsync(die func(), refs ...heap.Ref) {
	c.Free(refs...)
	if die != nil {
		die()
	}
}

// roundTrip issues a token frame and waits for its ack. Returns the zero
// Msg when the session is dead.
func (c *Client) roundTrip(t byte) (wire.Msg, bool) {
	c.pmu.Lock()
	if c.err != nil || c.closed {
		c.pmu.Unlock()
		return wire.Msg{}, false
	}
	c.token++
	tok := c.token
	ch := make(chan wire.Msg, 1)
	c.pending[tok] = ch
	c.pmu.Unlock()

	c.wmu.Lock()
	err := c.w.WriteSync(t, tok)
	if err == nil {
		err = c.w.Flush()
	}
	c.wmu.Unlock()
	if err != nil {
		c.fatal(err)
		return wire.Msg{}, false
	}
	msg, ok := <-ch
	return msg, ok
}

// Barrier implements monitor.Runtime: it returns once the server has
// processed every event dispatched before the call (and delivered every
// verdict those events produced — the ack is ordered behind the verdicts
// on the stream).
func (c *Client) Barrier() {
	c.roundTrip(wire.TBarrier)
}

// Flush implements monitor.Runtime: a remote full expunge/compaction pass,
// settling the Figure 10 counters.
func (c *Client) Flush() {
	c.roundTrip(wire.TFlush)
}

// Stats implements monitor.Runtime: a remote counter snapshot. After Close
// it returns the final settled counters.
func (c *Client) Stats() monitor.Stats {
	c.pmu.Lock()
	if c.closed {
		st := c.final
		c.pmu.Unlock()
		return st
	}
	c.pmu.Unlock()
	msg, ok := c.roundTrip(wire.TStatsReq)
	if !ok {
		return monitor.Stats{}
	}
	return fromWireStats(msg.Stats)
}

// Close implements monitor.Runtime: orderly shutdown. The server flushes
// the session's backend and returns the final counters, which remain
// available through Stats. Close is idempotent.
func (c *Client) Close() {
	c.pmu.Lock()
	if c.closed {
		c.pmu.Unlock()
		return
	}
	c.closed = true
	dead := c.err != nil
	var ch chan wire.Msg
	if !dead {
		ch = make(chan wire.Msg, 1)
		c.pending[byeToken] = ch
	}
	c.pmu.Unlock()

	if !dead {
		c.wmu.Lock()
		err := c.w.WriteBye()
		if err == nil {
			err = c.w.Flush()
		}
		c.wmu.Unlock()
		if err == nil {
			if msg, ok := <-ch; ok {
				c.pmu.Lock()
				c.final = fromWireStats(msg.Stats)
				c.pmu.Unlock()
			}
		}
	}
	c.conn.Close()
	<-c.readerDone
}

// ghostRef stands in for a table miss during verdict reconstruction (a
// verdict naming an object this client never sent — possible only with a
// misbehaving server).
type ghostRef uint64

func (g ghostRef) ID() uint64    { return uint64(g) }
func (g ghostRef) Alive() bool   { return false }
func (g ghostRef) Label() string { return fmt.Sprintf("r%d", uint64(g)) }

func fromWireStats(s wire.Stats) monitor.Stats {
	return monitor.Stats{
		Events:       s.Events,
		Created:      s.Created,
		Flagged:      s.Flagged,
		Collected:    s.Collected,
		GoalVerdicts: s.GoalVerdicts,
		Steps:        s.Steps,
		Avoided:      s.Avoided,
		Live:         s.Live,
		PeakLive:     s.PeakLive,
	}
}
