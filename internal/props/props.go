// Package props is the built-in property library: the five properties the
// paper evaluates on DaCapo (§5.1) plus the non-iterator properties it
// mentions (HASHSET, SAFEENUM, SAFEFILE, SAFEFILEWRITER) and the SAFELOCK
// CFG property of Figure 4. Each constructor returns a compiled
// monitor.Spec with the static analyses ready to run.
//
// Events correspond to the paper's AspectJ pointcuts, renamed to plain
// identifiers since this reproduction instruments programs through an
// explicit API (see package dacapo and DESIGN.md).
package props

import (
	"fmt"
	"sort"

	"rvgo/internal/cfg"
	"rvgo/internal/ere"
	"rvgo/internal/fsm"
	"rvgo/internal/logic"
	"rvgo/internal/ltl"
	"rvgo/internal/monitor"
	"rvgo/internal/param"
)

// Builder constructs a property spec.
type Builder func() (*monitor.Spec, error)

// registry maps property names to builders.
var registry = map[string]Builder{
	"HasNext":        HasNext,
	"HasNextLTL":     HasNextLTL,
	"UnsafeIter":     UnsafeIter,
	"UnsafeMapIter":  UnsafeMapIter,
	"UnsafeSyncColl": UnsafeSyncColl,
	"UnsafeSyncMap":  UnsafeSyncMap,
	"SafeLock":       SafeLock,
	"SafeLockMatch":  SafeLockMatch,
	"HashSet":        HashSet,
	"SafeEnum":       SafeEnum,
	"SafeFile":       SafeFile,
	"SafeFileWriter": SafeFileWriter,
}

// Names returns the registered property names, sorted.
func Names() []string {
	var out []string
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Build constructs a property by name.
func Build(name string) (*monitor.Spec, error) {
	b, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("props: unknown property %q", name)
	}
	return b()
}

// DaCapoProperties are the five properties of the paper's evaluation, in
// the column order of Figures 9 and 10.
func DaCapoProperties() []string {
	return []string{"HasNext", "UnsafeIter", "UnsafeMapIter", "UnsafeSyncColl", "UnsafeSyncMap"}
}

func finish(s *monitor.Spec) (*monitor.Spec, error) {
	if err := s.Analyze(); err != nil {
		return nil, err
	}
	return s, nil
}

// HasNext is the HASNEXT typestate of Figures 1–2, as an FSM: calling
// next() is only safe immediately after hasNext() returned true. The goal
// category is the FSM state "error".
func HasNext() (*monitor.Spec, error) {
	alphabet := []string{"hasnexttrue", "hasnextfalse", "next"}
	m := fsm.New(alphabet)
	for _, st := range []string{"unknown", "more", "none", "error"} {
		if err := m.AddState(st); err != nil {
			return nil, err
		}
	}
	trans := [][3]string{
		{"unknown", "hasnexttrue", "more"},
		{"unknown", "hasnextfalse", "none"},
		{"unknown", "next", "error"},
		{"more", "hasnexttrue", "more"},
		{"more", "hasnextfalse", "none"},
		{"more", "next", "unknown"},
		{"none", "hasnextfalse", "none"},
		{"none", "hasnexttrue", "more"},
		{"none", "next", "error"},
	}
	for _, tr := range trans {
		if err := m.AddTransition(tr[0], tr[1], tr[2]); err != nil {
			return nil, err
		}
	}
	if err := m.Freeze(); err != nil {
		return nil, err
	}
	return finish(&monitor.Spec{
		Name:   "HasNext",
		Params: []string{"i"},
		Events: []monitor.EventDef{
			{Name: "hasnexttrue", Params: param.SetOf(0)},
			{Name: "hasnextfalse", Params: param.SetOf(0)},
			{Name: "next", Params: param.SetOf(0)},
		},
		BP:   m,
		Goal: []logic.Category{"error"},
	})
}

// HasNextLTL is the same property in past-time LTL, Figure 2's second
// formalism: [](next => (*)hasnexttrue).
func HasNextLTL() (*monitor.Spec, error) {
	alphabet := []string{"hasnexttrue", "hasnextfalse", "next"}
	bp, err := ltl.Compile("[] (next -> (*) hasnexttrue)", alphabet)
	if err != nil {
		return nil, err
	}
	return finish(&monitor.Spec{
		Name:   "HasNextLTL",
		Params: []string{"i"},
		Events: []monitor.EventDef{
			{Name: "hasnexttrue", Params: param.SetOf(0)},
			{Name: "hasnextfalse", Params: param.SetOf(0)},
			{Name: "next", Params: param.SetOf(0)},
		},
		BP:   bp,
		Goal: []logic.Category{logic.Violation},
	})
}

// UnsafeIter is the UNSAFEITER property of Figure 3: a Collection must not
// be updated between an Iterator's creation and use.
func UnsafeIter() (*monitor.Spec, error) {
	const (
		pC = 0
		pI = 1
	)
	alphabet := []string{"create", "update", "next"}
	bp, err := ere.Compile("update* create next* update+ next", alphabet)
	if err != nil {
		return nil, err
	}
	return finish(&monitor.Spec{
		Name:   "UnsafeIter",
		Params: []string{"c", "i"},
		Events: []monitor.EventDef{
			{Name: "create", Params: param.SetOf(pC, pI)},
			{Name: "update", Params: param.SetOf(pC)},
			{Name: "next", Params: param.SetOf(pI)},
		},
		BP:   bp,
		Goal: []logic.Category{logic.Match},
	})
}

// UnsafeMapIter is UNSAFEMAPITER: a Map must not be updated while one of
// its key/value view collections is being iterated. Three parameters: the
// map m, the view collection c, the iterator i.
func UnsafeMapIter() (*monitor.Spec, error) {
	const (
		pM = 0
		pC = 1
		pI = 2
	)
	alphabet := []string{"createColl", "createIter", "useIter", "updateMap"}
	bp, err := ere.Compile("updateMap* createColl createIter useIter* updateMap+ useIter", alphabet)
	if err != nil {
		return nil, err
	}
	return finish(&monitor.Spec{
		Name:   "UnsafeMapIter",
		Params: []string{"m", "c", "i"},
		Events: []monitor.EventDef{
			{Name: "createColl", Params: param.SetOf(pM, pC)},
			{Name: "createIter", Params: param.SetOf(pC, pI)},
			{Name: "useIter", Params: param.SetOf(pI)},
			{Name: "updateMap", Params: param.SetOf(pM)},
		},
		BP:   bp,
		Goal: []logic.Category{logic.Match},
	})
}

// UnsafeSyncColl is UNSAFESYNCCOLL: iterators over a synchronized
// collection must be created and accessed while holding the collection's
// lock.
func UnsafeSyncColl() (*monitor.Spec, error) {
	const (
		pC = 0
		pI = 1
	)
	alphabet := []string{"sync", "syncCreateIter", "asyncCreateIter", "syncAccess", "asyncAccess"}
	bp, err := ere.Compile(
		"sync (asyncCreateIter | syncCreateIter syncAccess* asyncAccess)", alphabet)
	if err != nil {
		return nil, err
	}
	return finish(&monitor.Spec{
		Name:   "UnsafeSyncColl",
		Params: []string{"c", "i"},
		Events: []monitor.EventDef{
			{Name: "sync", Params: param.SetOf(pC)},
			{Name: "syncCreateIter", Params: param.SetOf(pC, pI)},
			{Name: "asyncCreateIter", Params: param.SetOf(pC, pI)},
			{Name: "syncAccess", Params: param.SetOf(pI)},
			{Name: "asyncAccess", Params: param.SetOf(pI)},
		},
		BP:   bp,
		Goal: []logic.Category{logic.Match},
	})
}

// UnsafeSyncMap is UNSAFESYNCMAP: the UNSAFESYNCCOLL discipline applied to
// the key/value views of a synchronized map (three parameters).
func UnsafeSyncMap() (*monitor.Spec, error) {
	const (
		pM = 0
		pC = 1
		pI = 2
	)
	alphabet := []string{"sync", "createSet", "syncCreateIter", "asyncCreateIter", "syncAccess", "asyncAccess"}
	bp, err := ere.Compile(
		"sync createSet (asyncCreateIter | syncCreateIter syncAccess* asyncAccess)", alphabet)
	if err != nil {
		return nil, err
	}
	return finish(&monitor.Spec{
		Name:   "UnsafeSyncMap",
		Params: []string{"m", "c", "i"},
		Events: []monitor.EventDef{
			{Name: "sync", Params: param.SetOf(pM)},
			{Name: "createSet", Params: param.SetOf(pM, pC)},
			{Name: "syncCreateIter", Params: param.SetOf(pC, pI)},
			{Name: "asyncCreateIter", Params: param.SetOf(pC, pI)},
			{Name: "syncAccess", Params: param.SetOf(pI)},
			{Name: "asyncAccess", Params: param.SetOf(pI)},
		},
		BP:   bp,
		Goal: []logic.Category{logic.Match},
	})
}

// SafeLock is the SAFELOCK context-free property of Figure 4: acquire and
// release calls must be balanced and properly nested with method begin/end
// within each (Lock, Thread) pair. The goal is the fail category — the
// handler fires when the trace leaves the language's prefix closure.
func SafeLock() (*monitor.Spec, error) {
	const (
		pL = 0
		pT = 1
	)
	alphabet := []string{"acquire", "release", "begin", "end"}
	bp, err := cfg.CompileAuto("S -> S begin S end | S acquire S release | epsilon", alphabet)
	if err != nil {
		return nil, err
	}
	return finish(&monitor.Spec{
		Name:   "SafeLock",
		Params: []string{"l", "t"},
		Events: []monitor.EventDef{
			{Name: "acquire", Params: param.SetOf(pL, pT)},
			{Name: "release", Params: param.SetOf(pL, pT)},
			{Name: "begin", Params: param.SetOf(pT)},
			{Name: "end", Params: param.SetOf(pT)},
		},
		BP:   bp,
		Goal: []logic.Category{logic.Fail},
	})
}

// SafeLockMatch is SAFELOCK with the match goal: it reports whenever the
// trace is balanced. Unlike SafeLock it admits the grammar-level coenable
// analysis of §3 and is used to demonstrate formalism-independent GC for
// context-free properties.
func SafeLockMatch() (*monitor.Spec, error) {
	const (
		pL = 0
		pT = 1
	)
	alphabet := []string{"acquire", "release", "begin", "end"}
	bp, err := cfg.CompileAuto("S -> S begin S end | S acquire S release | epsilon", alphabet)
	if err != nil {
		return nil, err
	}
	return finish(&monitor.Spec{
		Name:   "SafeLockMatch",
		Params: []string{"l", "t"},
		Events: []monitor.EventDef{
			{Name: "acquire", Params: param.SetOf(pL, pT)},
			{Name: "release", Params: param.SetOf(pL, pT)},
			{Name: "begin", Params: param.SetOf(pT)},
			{Name: "end", Params: param.SetOf(pT)},
		},
		BP:   bp,
		Goal: []logic.Category{logic.Match},
	})
}

// HashSet forbids mutating an element's hash-relevant state while it is a
// member of a hash set.
func HashSet() (*monitor.Spec, error) {
	const (
		pS = 0
		pO = 1
	)
	alphabet := []string{"add", "remove", "mutate"}
	m := fsm.New(alphabet)
	for _, st := range []string{"out", "in", "error"} {
		if err := m.AddState(st); err != nil {
			return nil, err
		}
	}
	trans := [][3]string{
		{"out", "add", "in"},
		{"out", "remove", "out"},
		{"out", "mutate", "out"},
		{"in", "add", "in"},
		{"in", "remove", "out"},
		{"in", "mutate", "error"},
	}
	for _, tr := range trans {
		if err := m.AddTransition(tr[0], tr[1], tr[2]); err != nil {
			return nil, err
		}
	}
	if err := m.Freeze(); err != nil {
		return nil, err
	}
	return finish(&monitor.Spec{
		Name:   "HashSet",
		Params: []string{"s", "o"},
		Events: []monitor.EventDef{
			{Name: "add", Params: param.SetOf(pS, pO)},
			{Name: "remove", Params: param.SetOf(pS, pO)},
			{Name: "mutate", Params: param.SetOf(pO)},
		},
		BP:   m,
		Goal: []logic.Category{"error"},
	})
}

// SafeEnum forbids using an Enumeration after its Vector was modified
// (the pre-Iterator sibling of UNSAFEITER).
func SafeEnum() (*monitor.Spec, error) {
	const (
		pV = 0
		pE = 1
	)
	alphabet := []string{"create", "modify", "nextElem"}
	bp, err := ere.Compile("modify* create nextElem* modify+ nextElem", alphabet)
	if err != nil {
		return nil, err
	}
	return finish(&monitor.Spec{
		Name:   "SafeEnum",
		Params: []string{"v", "e"},
		Events: []monitor.EventDef{
			{Name: "create", Params: param.SetOf(pV, pE)},
			{Name: "modify", Params: param.SetOf(pV)},
			{Name: "nextElem", Params: param.SetOf(pE)},
		},
		BP:   bp,
		Goal: []logic.Category{logic.Match},
	})
}

// SafeFile requires reads to happen only between open and close.
func SafeFile() (*monitor.Spec, error) {
	alphabet := []string{"open", "read", "close"}
	m := fsm.New(alphabet)
	for _, st := range []string{"closed", "opened", "error"} {
		if err := m.AddState(st); err != nil {
			return nil, err
		}
	}
	trans := [][3]string{
		{"closed", "open", "opened"},
		{"closed", "read", "error"},
		{"closed", "close", "error"},
		{"opened", "read", "opened"},
		{"opened", "close", "closed"},
		{"opened", "open", "error"},
	}
	for _, tr := range trans {
		if err := m.AddTransition(tr[0], tr[1], tr[2]); err != nil {
			return nil, err
		}
	}
	if err := m.Freeze(); err != nil {
		return nil, err
	}
	return finish(&monitor.Spec{
		Name:   "SafeFile",
		Params: []string{"f"},
		Events: []monitor.EventDef{
			{Name: "open", Params: param.SetOf(0)},
			{Name: "read", Params: param.SetOf(0)},
			{Name: "close", Params: param.SetOf(0)},
		},
		BP:   m,
		Goal: []logic.Category{"error"},
	})
}

// SafeFileWriter forbids writing to a writer after it has been closed,
// expressed in past-time LTL: [](write -> ¬◇̄ close).
func SafeFileWriter() (*monitor.Spec, error) {
	alphabet := []string{"write", "close"}
	bp, err := ltl.Compile("[] (write -> ! <*> close)", alphabet)
	if err != nil {
		return nil, err
	}
	return finish(&monitor.Spec{
		Name:   "SafeFileWriter",
		Params: []string{"w"},
		Events: []monitor.EventDef{
			{Name: "write", Params: param.SetOf(0)},
			{Name: "close", Params: param.SetOf(0)},
		},
		BP:   bp,
		Goal: []logic.Category{logic.Violation},
	})
}
