package props_test

import (
	"fmt"
	"testing"

	"rvgo/internal/heap"
	"rvgo/internal/monitor"
	"rvgo/internal/props"
)

// run builds the property, dispatches the script and returns the verdict
// count. Script entries are event name + object labels; objects are
// allocated on first use and freed by the pseudo-event "free".
func run(t *testing.T, prop string, script [][]string) int {
	t.Helper()
	s, err := props.Build(prop)
	if err != nil {
		t.Fatal(err)
	}
	verdicts := 0
	eng, err := monitor.New(s, monitor.Options{
		GC: monitor.GCCoenable, Creation: monitor.CreateEnable,
		OnVerdict: func(monitor.Verdict) { verdicts++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	h := heap.New()
	objs := map[string]*heap.Object{}
	obj := func(name string) *heap.Object {
		if o, ok := objs[name]; ok {
			return o
		}
		o := h.Alloc(name)
		objs[name] = o
		return o
	}
	for _, step := range script {
		if step[0] == "free" {
			h.Free(obj(step[1]))
			continue
		}
		vals := make([]heap.Ref, 0, len(step)-1)
		for _, name := range step[1:] {
			vals = append(vals, obj(name))
		}
		if err := eng.EmitNamed(step[0], vals...); err != nil {
			t.Fatalf("%s: %v", step[0], err)
		}
	}
	return verdicts
}

func TestAllPropertiesBuildAndAnalyze(t *testing.T) {
	for _, name := range props.Names() {
		s, err := props.Build(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := s.Analysis(); err != nil {
			t.Fatalf("%s analysis: %v", name, err)
		}
	}
	if _, err := props.Build("NoSuch"); err == nil {
		t.Fatal("unknown property must error")
	}
}

func TestHasNextViolation(t *testing.T) {
	if got := run(t, "HasNext", [][]string{
		{"hasnexttrue", "i1"}, {"next", "i1"}, {"next", "i1"},
	}); got != 1 {
		t.Fatalf("verdicts = %d", got)
	}
	if got := run(t, "HasNext", [][]string{
		{"hasnexttrue", "i1"}, {"next", "i1"},
		{"hasnexttrue", "i1"}, {"next", "i1"}, {"hasnextfalse", "i1"},
	}); got != 0 {
		t.Fatalf("clean walk: verdicts = %d", got)
	}
}

func TestHasNextLTLAgreesWithFSM(t *testing.T) {
	script := [][]string{
		{"hasnexttrue", "i1"}, {"next", "i1"},
		{"hasnextfalse", "i1"}, {"next", "i1"}, // violation
	}
	if fsmV, ltlV := run(t, "HasNext", script), run(t, "HasNextLTL", script); fsmV != 1 || ltlV != 1 {
		t.Fatalf("fsm=%d ltl=%d, want 1/1", fsmV, ltlV)
	}
}

func TestUnsafeIterMatch(t *testing.T) {
	if got := run(t, "UnsafeIter", [][]string{
		{"create", "c", "i"}, {"next", "i"}, {"update", "c"}, {"next", "i"},
	}); got != 1 {
		t.Fatalf("verdicts = %d", got)
	}
	// Update before create is fine; no use after update means no match.
	if got := run(t, "UnsafeIter", [][]string{
		{"update", "c"}, {"create", "c", "i"}, {"next", "i"}, {"update", "c"},
	}); got != 0 {
		t.Fatalf("verdicts = %d", got)
	}
}

func TestUnsafeMapIterMatch(t *testing.T) {
	if got := run(t, "UnsafeMapIter", [][]string{
		{"createColl", "m", "c"}, {"createIter", "c", "i"},
		{"useIter", "i"}, {"updateMap", "m"}, {"useIter", "i"},
	}); got != 1 {
		t.Fatalf("verdicts = %d", got)
	}
	// Iterating a different map's view is unaffected.
	if got := run(t, "UnsafeMapIter", [][]string{
		{"createColl", "m1", "c1"}, {"createIter", "c1", "i1"},
		{"updateMap", "m2"}, {"useIter", "i1"},
	}); got != 0 {
		t.Fatalf("cross-map verdicts = %d", got)
	}
}

func TestUnsafeSyncCollMatch(t *testing.T) {
	if got := run(t, "UnsafeSyncColl", [][]string{
		{"sync", "c"}, {"asyncCreateIter", "c", "i"},
	}); got != 1 {
		t.Fatalf("async create: verdicts = %d", got)
	}
	if got := run(t, "UnsafeSyncColl", [][]string{
		{"sync", "c"}, {"syncCreateIter", "c", "i"},
		{"syncAccess", "i"}, {"asyncAccess", "i"},
	}); got != 1 {
		t.Fatalf("async access: verdicts = %d", got)
	}
	if got := run(t, "UnsafeSyncColl", [][]string{
		{"sync", "c"}, {"syncCreateIter", "c", "i"}, {"syncAccess", "i"},
	}); got != 0 {
		t.Fatalf("clean sync use: verdicts = %d", got)
	}
}

func TestUnsafeSyncMapMatch(t *testing.T) {
	if got := run(t, "UnsafeSyncMap", [][]string{
		{"sync", "m"}, {"createSet", "m", "c"},
		{"syncCreateIter", "c", "i"}, {"asyncAccess", "i"},
	}); got != 1 {
		t.Fatalf("verdicts = %d", got)
	}
}

func TestSafeLockFail(t *testing.T) {
	if got := run(t, "SafeLock", [][]string{
		{"begin", "t"}, {"acquire", "l", "t"}, {"release", "l", "t"},
		{"release", "l", "t"},
	}); got != 1 {
		t.Fatalf("verdicts = %d", got)
	}
	if got := run(t, "SafeLock", [][]string{
		{"begin", "t"}, {"acquire", "l", "t"}, {"release", "l", "t"}, {"end", "t"},
	}); got != 0 {
		t.Fatalf("balanced trace: verdicts = %d", got)
	}
}

func TestHashSetViolation(t *testing.T) {
	if got := run(t, "HashSet", [][]string{
		{"add", "s", "o"}, {"mutate", "o"},
	}); got != 1 {
		t.Fatalf("verdicts = %d", got)
	}
	if got := run(t, "HashSet", [][]string{
		{"add", "s", "o"}, {"remove", "s", "o"}, {"mutate", "o"},
	}); got != 0 {
		t.Fatalf("mutate after remove: verdicts = %d", got)
	}
}

func TestSafeEnum(t *testing.T) {
	if got := run(t, "SafeEnum", [][]string{
		{"create", "v", "e"}, {"modify", "v"}, {"nextElem", "e"},
	}); got != 1 {
		t.Fatalf("verdicts = %d", got)
	}
}

func TestSafeFile(t *testing.T) {
	if got := run(t, "SafeFile", [][]string{
		{"open", "f"}, {"read", "f"}, {"close", "f"}, {"read", "f"},
	}); got != 1 {
		t.Fatalf("verdicts = %d", got)
	}
}

func TestSafeFileWriter(t *testing.T) {
	if got := run(t, "SafeFileWriter", [][]string{
		{"write", "w"}, {"close", "w"}, {"write", "w"},
	}); got != 1 {
		t.Fatalf("verdicts = %d", got)
	}
	if got := run(t, "SafeFileWriter", [][]string{
		{"write", "w"}, {"write", "w"}, {"close", "w"},
	}); got != 0 {
		t.Fatalf("clean writer: verdicts = %d", got)
	}
}

// TestGCKeepsVerdictsForEveryProperty replays each property's violating
// script with interleaved frees of unrelated objects: coenable GC must not
// suppress the verdicts.
func TestGCKeepsVerdictsForEveryProperty(t *testing.T) {
	scripts := map[string][][]string{
		"HasNext":    {{"hasnexttrue", "i1"}, {"next", "i1"}, {"next", "i1"}},
		"UnsafeIter": {{"create", "c", "i"}, {"update", "c"}, {"next", "i"}},
		"UnsafeMapIter": {
			{"createColl", "m", "c"}, {"createIter", "c", "i"},
			{"updateMap", "m"}, {"useIter", "i"},
		},
		"HashSet": {{"add", "s", "o"}, {"mutate", "o"}},
	}
	for prop, script := range scripts {
		// Interleave garbage objects that die immediately.
		var full [][]string
		for k, step := range script {
			full = append(full, step)
			junk := fmt.Sprintf("junk%d", k)
			full = append(full, []string{"free", junk})
		}
		if got := run(t, prop, full); got != 1 {
			t.Errorf("%s with junk frees: verdicts = %d", prop, got)
		}
	}
}
