package coenable_test

import (
	"testing"

	"rvgo/internal/coenable"
	"rvgo/internal/fsm"
	"rvgo/internal/logic"
)

// buildGraph explores a small FSM given as (states, transitions); the
// first state is initial and undefined transitions go to the implicit
// fail sink fsm.Freeze adds.
func buildGraph(t *testing.T, alphabet, states []string, trans [][3]string) *logic.Graph {
	t.Helper()
	m := fsm.New(alphabet)
	for _, st := range states {
		if err := m.AddState(st); err != nil {
			t.Fatal(err)
		}
	}
	for _, tr := range trans {
		if err := m.AddTransition(tr[0], tr[1], tr[2]); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Freeze(); err != nil {
		t.Fatal(err)
	}
	g, err := m.Explore(1 << 12)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestCanReachGoalGoalFree: with a goal category no state carries, nothing
// can reach the goal — every state is doomed, every enable family empty,
// and no event is a creation event.
func TestCanReachGoalGoalFree(t *testing.T) {
	g := buildGraph(t, []string{"a", "b"}, []string{"s0", "s1"}, [][3]string{
		{"s0", "a", "s1"},
		{"s1", "b", "s0"},
	})
	goal := coenable.GoalOf("no-such-category")
	reach := coenable.CanReachGoal(g, goal)
	for s, ok := range reach {
		if ok {
			t.Errorf("state %d can reach a goal that no state carries", s)
		}
	}
	doomed := coenable.Doomed(g, goal)
	if coenable.DoomedCount(doomed) != len(doomed) {
		t.Errorf("DoomedCount = %d, want all %d states doomed", coenable.DoomedCount(doomed), len(doomed))
	}
	enable := coenable.EnableFromGraph(g, goal)
	for a, fam := range enable {
		if len(fam) != 0 {
			t.Errorf("ENABLE(%s) = %v, want empty for a goal-free property", g.Alphabet[a], fam)
		}
	}
	guards := coenable.Guards(g, goal, enable)
	for _, gi := range guards {
		if gi.Creation {
			t.Errorf("event %s marked creation in a goal-free property", g.Alphabet[gi.Sym])
		}
		if !gi.DoomedStart || !gi.NoViablePrefix {
			t.Errorf("event %s: DoomedStart=%v NoViablePrefix=%v, want both true", g.Alphabet[gi.Sym], gi.DoomedStart, gi.NoViablePrefix)
		}
	}
}

// TestCanReachGoalUnreachableGoal: a goal state exists but no transition
// leads to it, so only the goal state itself reaches the goal (in zero
// steps) and every trace-reachable state is doomed.
func TestCanReachGoalUnreachableGoal(t *testing.T) {
	// "island" carries the goal category but has no inbound transitions.
	g := buildGraph(t, []string{"a"}, []string{"s0", "island"}, [][3]string{
		{"s0", "a", "s0"},
		{"island", "a", "island"},
	})
	goal := coenable.GoalOf("island")
	reach := coenable.CanReachGoal(g, goal)
	doomed := coenable.Doomed(g, goal)
	for s := range reach {
		isIsland := goal(g.Cat[s])
		if reach[s] != isIsland {
			t.Errorf("state %d (%s): CanReachGoal = %v, want %v", s, g.Cat[s], reach[s], isIsland)
		}
		if doomed[s] == isIsland {
			t.Errorf("state %d (%s): doomed = %v, want %v", s, g.Cat[s], doomed[s], !isIsland)
		}
	}
	// The initial state cannot reach the island, so no goal trace exists:
	// no creation events, empty enable families.
	enable := coenable.EnableFromGraph(g, goal)
	for a, fam := range enable {
		if len(fam) != 0 {
			t.Errorf("ENABLE(%s) = %v, want empty when the goal is unreachable from the start", g.Alphabet[a], fam)
		}
	}
}

// TestSingleStateSelfLoop: a one-state automaton whose only state is the
// goal and self-loops on the whole alphabet. Every event both starts and
// extends goal traces, so ∅ and every subset closed under occurrence
// appear in each enable family, nothing is doomed, and the coenable
// analysis terminates (the self-loop must not diverge).
func TestSingleStateSelfLoop(t *testing.T) {
	g := buildGraph(t, []string{"a", "b"}, []string{"only"}, [][3]string{
		{"only", "a", "only"},
		{"only", "b", "only"},
	})
	goal := coenable.GoalOf("only")
	reach := coenable.CanReachGoal(g, goal)
	doomed := coenable.Doomed(g, goal)
	// Freeze adds a fail sink, but it is unreachable from the loop state.
	if !reach[0] || doomed[0] {
		t.Errorf("loop state: CanReachGoal=%v doomed=%v, want reachable and not doomed", reach[0], doomed[0])
	}
	enable := coenable.EnableFromGraph(g, goal)
	guards := coenable.Guards(g, goal, enable)
	for a := range g.Alphabet {
		found := false
		for _, es := range enable[a] {
			if es == 0 {
				found = true
			}
		}
		if !found {
			t.Errorf("ENABLE(%s) lacks ∅: every event can begin a goal trace here", g.Alphabet[a])
		}
		if !guards[a].Creation || guards[a].DoomedStart || guards[a].NoViablePrefix {
			t.Errorf("GUARD(%s) = %+v, want creation, not guarded", g.Alphabet[a], guards[a])
		}
	}
}

// TestEnableFromGraphDeadSinkRegression pins the dead-sink fix: a fail
// sink self-looping on the whole alphabet (every FSM's implicit reject
// state) must not close its prefix family under all events — before the
// fix, EnableFromGraph enumerated all 2^|E| subsets through the sink and
// polluted every family; the enable sets must stay exactly the goal-trace
// prefixes. The automaton accepts only the sequence a·b (goal "done"):
// any other order falls into the sink.
func TestEnableFromGraphDeadSinkRegression(t *testing.T) {
	g := buildGraph(t, []string{"a", "b", "c"}, []string{"s0", "s1", "done"}, [][3]string{
		{"s0", "a", "s1"},
		{"s1", "b", "done"},
	})
	goal := coenable.GoalOf("done")
	enable := coenable.EnableFromGraph(g, goal)

	alphabet := g.Alphabet
	want := map[string][]coenable.EventSet{
		// a begins the only goal trace.
		"a": {0},
		// b is preceded by exactly {a}.
		"b": {toSet(alphabet, "a")},
		// c occurs in no goal trace at all.
		"c": nil,
	}
	for a, name := range alphabet {
		got := enable[a]
		w := want[name]
		if len(got) != len(w) {
			t.Errorf("ENABLE(%s) = %v, want %v", name, got, w)
			continue
		}
		for i := range w {
			if got[i] != w[i] {
				t.Errorf("ENABLE(%s)[%d] = %v, want %v", name, i, got[i], w[i])
			}
		}
	}

	guards := coenable.Guards(g, goal, enable)
	for a, name := range alphabet {
		gi := guards[a]
		switch name {
		case "a":
			if !gi.Creation || gi.NoViablePrefix {
				t.Errorf("GUARD(a) = %+v, want creation event", gi)
			}
		case "b":
			if gi.Creation || gi.NoViablePrefix {
				t.Errorf("GUARD(b) = %+v, want viable non-creation", gi)
			}
			if !gi.DoomedStart {
				t.Errorf("GUARD(b) = %+v, want doomed start (b first falls into the sink)", gi)
			}
		case "c":
			if !gi.NoViablePrefix || gi.Creation {
				t.Errorf("GUARD(c) = %+v, want no viable prefix", gi)
			}
		}
	}
}
