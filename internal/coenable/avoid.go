// avoid.go: the static creation-avoidance analysis (Reger's "story of
// parametric trace slicing, garbage and static analysis" direction): where
// the coenable GC reclaims a doomed monitor after it exists, this pass
// proves at specification-compile time that certain creations can never
// reach a goal category at all, so the engine can decline to materialize
// them. The products are per-state doom (CanReachGoal negated) and a
// per-event-symbol guard summary the engine and the introspection tools
// share.
package coenable

import "rvgo/internal/logic"

// Doomed returns the per-state cannot-reach-goal predicate: doomed[s] is
// true when no goal category is reachable from s in zero or more steps. A
// goal state itself is never doomed (reachable in zero steps), so a
// creation whose first transition lands on a verdict is never guarded
// away. Doom is a trap: every successor of a doomed state is doomed, which
// is what makes suppressing a doomed creation's whole descendant tree
// sound (see internal/monitor's avoidance guard and DESIGN.md).
func Doomed(g *logic.Graph, goal Goal) []bool {
	reach := canReachGoal(g, goal)
	doomed := make([]bool, len(reach))
	for s, ok := range reach {
		doomed[s] = !ok
	}
	return doomed
}

// GuardInfo is the static creation-guard summary for one event symbol.
type GuardInfo struct {
	// Sym is the event symbol the guard describes.
	Sym int
	// Creation reports ∅ ∈ ENABLE(e): the event can begin a goal trace,
	// so the enable-set strategy creates monitors from ⊥ for it.
	Creation bool
	// DoomedStart reports that the event's transition out of the initial
	// state lands in a doomed state: a monitor created from ⊥ at the
	// start of the trace could never reach a goal. For explorable graphs
	// with enable sets pruned through goal-reachability this is the
	// complement of Creation; it is reported separately because the
	// engine's from-⊥ progenitor state can drift off the initial state on
	// propositional events, where the guard re-evaluates dynamically.
	DoomedStart bool
	// NoViablePrefix reports that ENABLE(e) is empty: no goal trace
	// contains the event at all, so no prefix of parameter bindings can
	// ever satisfy its enable condition — every creation the event could
	// ever contribute to is provably wasted.
	NoViablePrefix bool
}

// Guards computes the per-symbol static creation-guard summary from an
// explored property graph and its (goal-reachability-pruned) enable sets.
func Guards(g *logic.Graph, goal Goal, enable Sets) []GuardInfo {
	doomed := Doomed(g, goal)
	out := make([]GuardInfo, len(g.Alphabet))
	for sym := range g.Alphabet {
		gi := GuardInfo{
			Sym:            sym,
			DoomedStart:    doomed[g.Next[0][sym]],
			NoViablePrefix: len(enable[sym]) == 0,
		}
		for _, es := range enable[sym] {
			if es == 0 {
				gi.Creation = true
				break
			}
		}
		out[sym] = gi
	}
	return out
}

// DoomedCount returns how many of the graph's states are doomed — the
// size of the region the creation guard fences off (introspection).
func DoomedCount(doomed []bool) int {
	n := 0
	for _, d := range doomed {
		if d {
			n++
		}
	}
	return n
}
