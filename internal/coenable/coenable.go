// Package coenable implements the paper's central static analysis (§3):
// coenable sets, their parameter images, and the runtime ALIVENESS check.
//
// COENABLE_{P,G}(e) collects, for every trace w with P(w) ∈ G containing e,
// the set of events occurring after e in w. If a monitor instance has just
// observed e and, for every set in COENABLE(e), at least one event in the
// set can never occur again (because a parameter object it needs has been
// garbage collected), the instance can never reach a verdict in G and may
// itself be collected (Theorem 1).
//
// For finite-state monitors (FSM, ERE-DFA, ptLTL) the sets are computed as
// the least fixed point of the SEEABLE equations over an explored state
// graph. The CFG plugin has its own grammar-level fixpoint (package cfg).
//
// The dual ENABLE sets (events occurring *before* e in goal traces, Chen et
// al. ASE'09) are computed here as well; they drive monitor-creation
// avoidance in the runtime engine.
package coenable

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"rvgo/internal/logic"
	"rvgo/internal/param"
)

// EventSet is a bitmask over a property's event alphabet (≤ 32 events).
type EventSet uint32

// Has reports whether symbol a is in the set.
func (s EventSet) Has(a int) bool { return s&(1<<uint(a)) != 0 }

// With returns s ∪ {a}.
func (s EventSet) With(a int) EventSet { return s | 1<<uint(a) }

// Count returns the number of events in the set.
func (s EventSet) Count() int { return bits.OnesCount32(uint32(s)) }

// Format renders the set with event names, e.g. "{next, update}".
func (s EventSet) Format(alphabet []string) string {
	var names []string
	for a := 0; a < len(alphabet); a++ {
		if s.Has(a) {
			names = append(names, alphabet[a])
		}
	}
	return "{" + strings.Join(names, ", ") + "}"
}

// Sets maps each event symbol to its coenable (or enable) family: a
// disjunction of event sets, minimized and with ∅ dropped (for coenable)
// per the paper.
type Sets [][]EventSet

// Goal identifies the verdict categories of interest G ⊆ C.
type Goal func(logic.Category) bool

// GoalOf builds a Goal from a list of categories.
func GoalOf(cats ...logic.Category) Goal {
	m := map[logic.Category]bool{}
	for _, c := range cats {
		m[c] = true
	}
	return func(c logic.Category) bool { return m[c] }
}

// FromGraph computes COENABLE_{P,G} for the property monitored by the
// explored finite state graph g, using the least fixed point of
//
//	SEEABLE(s) ⊇ {∅}                       if γ(s) ∈ G
//	SEEABLE(s) ⊇ {{e} ∪ T | T ∈ SEEABLE(s')}   for σ(s,e) = s'
//	COENABLE(e) = ⋃_{σ(s,e)=s'} SEEABLE(s')    for reachable s
//
// ∅ members are dropped from the result and each family is minimized by
// absorption (a superset of another member is redundant in the ALIVENESS
// disjunction).
func FromGraph(g *logic.Graph, goal Goal) Sets {
	n := g.NumStates()
	na := len(g.Alphabet)
	seeable := make([]map[EventSet]bool, n)
	for s := 0; s < n; s++ {
		seeable[s] = map[EventSet]bool{}
		if goal(g.Cat[s]) {
			seeable[s][0] = true
		}
	}
	// Least fixed point: iterate until no set family grows. The domain is
	// finite (families over P(E)) and the step function monotone.
	for changed := true; changed; {
		changed = false
		for s := 0; s < n; s++ {
			for a := 0; a < na; a++ {
				s2 := g.Next[s][a]
				for t := range seeable[s2] {
					nt := t.With(a)
					if !seeable[s][nt] {
						seeable[s][nt] = true
						changed = true
					}
				}
			}
		}
	}
	reach := reachable(g)
	out := make(Sets, na)
	for a := 0; a < na; a++ {
		family := map[EventSet]bool{}
		for s := 0; s < n; s++ {
			if !reach[s] {
				continue
			}
			s2 := g.Next[s][a]
			for t := range seeable[s2] {
				if t != 0 { // drop ∅ (paper §3)
					family[t] = true
				}
			}
		}
		out[a] = Minimize(family)
	}
	return out
}

// EnableFromGraph computes ENABLE_{P,G}: for each event e, the family of
// event sets that occur strictly before e in some goal trace. ∅ membership
// is meaningful here (it marks e as a possible first event, i.e. a
// "creation event") and is therefore kept; minimization keeps subsets
// (the creation check is an equality test, so no absorption is applied).
func EnableFromGraph(g *logic.Graph, goal Goal) Sets {
	n := g.NumStates()
	na := len(g.Alphabet)
	pre := make([]map[EventSet]bool, n)
	for s := 0; s < n; s++ {
		pre[s] = map[EventSet]bool{}
	}
	pre[0][0] = true
	canReach := canReachGoal(g, goal)
	for changed := true; changed; {
		changed = false
		for s := 0; s < n; s++ {
			for a := 0; a < na; a++ {
				s2 := g.Next[s][a]
				if !canReach[s2] {
					// Prefix sets only ever surface below (the family
					// collection) through transitions into goal-reaching
					// states, and goal-reachability is closed under
					// predecessors — so a set propagated into a dead
					// state can never resurface. Skipping the
					// propagation is semantics-preserving and essential:
					// a dead sink self-looping on the whole alphabet
					// (every FSM's implicit reject state) would
					// otherwise close its family under all events and
					// enumerate 2^|E| subsets.
					continue
				}
				for t := range pre[s] {
					nt := t.With(a)
					if !pre[s2][nt] {
						pre[s2][nt] = true
						changed = true
					}
				}
			}
		}
	}
	out := make(Sets, na)
	for a := 0; a < na; a++ {
		family := map[EventSet]bool{}
		for s := 0; s < n; s++ {
			if len(pre[s]) == 0 {
				continue // unreachable
			}
			s2 := g.Next[s][a]
			if !canReach[s2] {
				continue // the trace could never be completed into G
			}
			for t := range pre[s] {
				family[t] = true
			}
		}
		sets := make([]EventSet, 0, len(family))
		for t := range family {
			sets = append(sets, t)
		}
		sortSets(sets)
		out[a] = sets
	}
	return out
}

// StateSeeable computes the per-state SEEABLE families (the coenable
// information indexed by state rather than by event). This is the more
// precise formulation the paper attributes to Tracematches — usable only
// for finite-state monitors. ∅ members are dropped and families minimized;
// a state with an empty family cannot reach the goal again.
func StateSeeable(g *logic.Graph, goal Goal) [][]EventSet {
	n := g.NumStates()
	na := len(g.Alphabet)
	seeable := make([]map[EventSet]bool, n)
	for s := 0; s < n; s++ {
		seeable[s] = map[EventSet]bool{}
		if goal(g.Cat[s]) {
			seeable[s][0] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for s := 0; s < n; s++ {
			for a := 0; a < na; a++ {
				s2 := g.Next[s][a]
				for t := range seeable[s2] {
					nt := t.With(a)
					if !seeable[s][nt] {
						seeable[s][nt] = true
						changed = true
					}
				}
			}
		}
	}
	out := make([][]EventSet, n)
	for s := 0; s < n; s++ {
		fam := map[EventSet]bool{}
		for t := range seeable[s] {
			if t != 0 {
				fam[t] = true
			}
		}
		// A goal state's own ∅ is dropped like the event-indexed variant:
		// the handler has run; only future goals justify retention. States
		// that can reach a goal in ≥1 steps keep a nonempty family.
		out[s] = Minimize(fam)
	}
	return out
}

// Minimize drops redundant supersets from a family: in the disjunction
// ⋁_S ⋀_{x∈S} live_x a superset of another member is absorbed.
func Minimize(family map[EventSet]bool) []EventSet {
	sets := make([]EventSet, 0, len(family))
	for t := range family {
		sets = append(sets, t)
	}
	sortSets(sets)
	var out []EventSet
	for _, t := range sets {
		redundant := false
		for _, kept := range out {
			if kept&t == kept { // kept ⊆ t
				redundant = true
				break
			}
		}
		if !redundant {
			out = append(out, t)
		}
	}
	return out
}

func sortSets(sets []EventSet) {
	sort.Slice(sets, func(i, j int) bool {
		if sets[i].Count() != sets[j].Count() {
			return sets[i].Count() < sets[j].Count()
		}
		return sets[i] < sets[j]
	})
}

func reachable(g *logic.Graph) []bool {
	n := g.NumStates()
	seen := make([]bool, n)
	stack := []int{0}
	seen[0] = true
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range g.Next[s] {
			if !seen[t] {
				seen[t] = true
				stack = append(stack, t)
			}
		}
	}
	return seen
}

// CanReachGoal returns, per state, whether some state with a goal category
// is reachable in zero or more steps.
func CanReachGoal(g *logic.Graph, goal Goal) []bool { return canReachGoal(g, goal) }

func canReachGoal(g *logic.Graph, goal Goal) []bool {
	n := g.NumStates()
	// Reverse reachability from goal states.
	rev := make([][]int, n)
	for s := 0; s < n; s++ {
		for _, t := range g.Next[s] {
			rev[t] = append(rev[t], s)
		}
	}
	ok := make([]bool, n)
	var stack []int
	for s := 0; s < n; s++ {
		if goal(g.Cat[s]) {
			ok[s] = true
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range rev[s] {
			if !ok[p] {
				ok[p] = true
				stack = append(stack, p)
			}
		}
	}
	return ok
}

// ParamSets maps an event-set family through the parametric event
// definition D : E → P(X) (Definition 11), yielding COENABLE^X families of
// parameter sets, minimized by absorption.
func ParamSets(s Sets, evParams []param.Set) [][]param.Set {
	out := make([][]param.Set, len(s))
	for a, family := range s {
		seen := map[param.Set]bool{}
		for _, t := range family {
			var ps param.Set
			for b := 0; b < len(evParams); b++ {
				if t.Has(b) {
					ps = ps.Union(evParams[b])
				}
			}
			seen[ps] = true
		}
		out[a] = minimizeParams(seen)
	}
	return out
}

func minimizeParams(family map[param.Set]bool) []param.Set {
	sets := make([]param.Set, 0, len(family))
	for t := range family {
		sets = append(sets, t)
	}
	sort.Slice(sets, func(i, j int) bool {
		if sets[i].Count() != sets[j].Count() {
			return sets[i].Count() < sets[j].Count()
		}
		return sets[i] < sets[j]
	})
	var out []param.Set
	for _, t := range sets {
		redundant := false
		for _, kept := range out {
			if kept.SubsetOf(t) {
				redundant = true
				break
			}
		}
		if !redundant {
			out = append(out, t)
		}
	}
	return out
}

// Alive evaluates the paper's ALIVENESS(e) formula for a monitor instance:
//
//	ALIVENESS(e) = ⋁_{S ∈ COENABLE^X(e)} ⋀_{x∈S} live_x
//
// where live_x is true if x is unbound in the instance (a future extension
// instance may still bind it — §3 Discussion) or its bound object is alive.
// bound is dom(θ) and aliveMask ⊆ bound the parameters whose objects live.
func Alive(disjuncts []param.Set, bound, aliveMask param.Set) bool {
	deadBound := bound.Diff(aliveMask)
	for _, s := range disjuncts {
		if s.Inter(deadBound).Empty() {
			return true
		}
	}
	return false
}

// FormatEventSets renders a coenable family for one event, Section 3 style:
// "{next}, {next, update}".
func FormatEventSets(family []EventSet, alphabet []string) string {
	if len(family) == 0 {
		return "∅"
	}
	parts := make([]string, len(family))
	for i, t := range family {
		parts[i] = t.Format(alphabet)
	}
	return strings.Join(parts, ", ")
}

// FormatParamSets renders a parameter coenable family, e.g. "{i}, {c, i}".
func FormatParamSets(family []param.Set, names []string) string {
	if len(family) == 0 {
		return "∅"
	}
	parts := make([]string, len(family))
	for i, t := range family {
		parts[i] = t.Format(names)
	}
	return strings.Join(parts, ", ")
}

// AlivenessFormula renders the minimized boolean formula the engine
// evaluates at runtime, e.g. "alive(i) ∨ (alive(c) ∧ alive(i))".
func AlivenessFormula(disjuncts []param.Set, names []string) string {
	if len(disjuncts) == 0 {
		return "false"
	}
	terms := make([]string, len(disjuncts))
	for i, s := range disjuncts {
		var lits []string
		for _, x := range s.Members() {
			n := fmt.Sprintf("p%d", x)
			if x < len(names) {
				n = names[x]
			}
			lits = append(lits, "alive("+n+")")
		}
		if len(lits) == 0 {
			terms[i] = "true"
		} else if len(lits) == 1 {
			terms[i] = lits[0]
		} else {
			terms[i] = "(" + strings.Join(lits, " ∧ ") + ")"
		}
	}
	return strings.Join(terms, " ∨ ")
}
