package coenable_test

import (
	"testing"

	"rvgo/internal/coenable"
	"rvgo/internal/ere"
	"rvgo/internal/logic"
	"rvgo/internal/param"
)

// unsafeIter builds the UNSAFEITER property of Figure 3:
//
//	ere: update* create next* update+ next
//
// over alphabet [create, update, next] with D(create)={c,i}, D(update)={c},
// D(next)={i}.
func unsafeIter(t *testing.T) (*ere.Monitor, []string) {
	t.Helper()
	alphabet := []string{"create", "update", "next"}
	m, err := ere.Compile("update* create next* update+ next", alphabet)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return m, alphabet
}

const (
	symCreate = 0
	symUpdate = 1
	symNext   = 2
)

func toSet(alphabet []string, names ...string) coenable.EventSet {
	var s coenable.EventSet
	for _, n := range names {
		for a, e := range alphabet {
			if e == n {
				s = s.With(a)
			}
		}
	}
	return s
}

// TestUnsafeIterCoenableEvents checks the worked example of Section 3:
//
//	COENABLE(create) = {{next, update}}
//	COENABLE(update) = {{next}, {next, update}, {next, create, update}}
//	COENABLE(next)   = {{next, update}}
//
// modulo minimization: {next, update} and {next, create, update} are
// absorbed by {next} in update's family, since the paper itself translates
// the sets to a minimized boolean formula for the ALIVENESS check.
func TestUnsafeIterCoenableEvents(t *testing.T) {
	m, alphabet := unsafeIter(t)
	g, err := m.Explore(1 << 12)
	if err != nil {
		t.Fatal(err)
	}
	sets := coenable.FromGraph(g, coenable.GoalOf(logic.Match))

	want := map[int][]coenable.EventSet{
		symCreate: {toSet(alphabet, "next", "update")},
		symUpdate: {toSet(alphabet, "next")},
		symNext:   {toSet(alphabet, "next", "update")},
	}
	for sym, w := range want {
		got := sets[sym]
		if len(got) != len(w) {
			t.Fatalf("COENABLE(%s) = %s, want %s", alphabet[sym],
				coenable.FormatEventSets(got, alphabet), coenable.FormatEventSets(w, alphabet))
		}
		for i := range w {
			if got[i] != w[i] {
				t.Errorf("COENABLE(%s)[%d] = %s, want %s", alphabet[sym], i,
					got[i].Format(alphabet), w[i].Format(alphabet))
			}
		}
	}
}

// TestUnsafeIterCoenableParams checks the parameter image (Definition 11):
//
//	COENABLE^X(create) = {{c, i}}
//	COENABLE^X(update) = {{i}}            (minimized from {{i},{c,i}})
//	COENABLE^X(next)   = {{c, i}}
func TestUnsafeIterCoenableParams(t *testing.T) {
	m, _ := unsafeIter(t)
	g, err := m.Explore(1 << 12)
	if err != nil {
		t.Fatal(err)
	}
	sets := coenable.FromGraph(g, coenable.GoalOf(logic.Match))

	const (
		pC = 0
		pI = 1
	)
	evParams := []param.Set{
		symCreate: param.SetOf(pC, pI),
		symUpdate: param.SetOf(pC),
		symNext:   param.SetOf(pI),
	}
	ps := coenable.ParamSets(sets, evParams)

	want := map[int][]param.Set{
		symCreate: {param.SetOf(pC, pI)},
		symUpdate: {param.SetOf(pI)},
		symNext:   {param.SetOf(pC, pI)},
	}
	names := []string{"c", "i"}
	for sym, w := range want {
		got := ps[sym]
		if len(got) != len(w) {
			t.Fatalf("COENABLE^X(sym %d) = %s, want %s", sym,
				coenable.FormatParamSets(got, names), coenable.FormatParamSets(w, names))
		}
		for i := range w {
			if got[i] != w[i] {
				t.Errorf("COENABLE^X(sym %d)[%d] = %s, want %s", sym, i,
					got[i].Format(names), w[i].Format(names))
			}
		}
	}
}

// TestUnsafeIterAliveness reproduces the paper's motivating scenario: a
// monitor for ⟨c1, i1⟩ whose last event was update becomes unnecessary the
// moment the Iterator dies, even while the Collection lives on — the case
// JavaMOP could not collect.
func TestUnsafeIterAliveness(t *testing.T) {
	m, _ := unsafeIter(t)
	g, err := m.Explore(1 << 12)
	if err != nil {
		t.Fatal(err)
	}
	const (
		pC = 0
		pI = 1
	)
	evParams := []param.Set{
		symCreate: param.SetOf(pC, pI),
		symUpdate: param.SetOf(pC),
		symNext:   param.SetOf(pI),
	}
	ps := coenable.ParamSets(coenable.FromGraph(g, coenable.GoalOf(logic.Match)), evParams)

	bound := param.SetOf(pC, pI)
	// Both alive: necessary.
	if !coenable.Alive(ps[symUpdate], bound, param.SetOf(pC, pI)) {
		t.Error("monitor with both objects alive must be kept")
	}
	// Iterator dead, Collection alive: collectable after any event.
	for sym := range evParams {
		if coenable.Alive(ps[sym], bound, param.SetOf(pC)) {
			t.Errorf("after %d, dead iterator must make the monitor collectable", sym)
		}
	}
	// Collection dead, Iterator alive, last event update: still collectable
	// since every disjunct needs {i} at minimum... {i} alive ⇒ kept.
	if !coenable.Alive(ps[symUpdate], bound, param.SetOf(pI)) {
		t.Error("after update, live iterator alone keeps the monitor (COENABLE^X(update) ∋ {i})")
	}
	// Partial instance ⟨c⟩ with c alive: unbound i counts as live.
	if !coenable.Alive(ps[symUpdate], param.SetOf(pC), param.SetOf(pC)) {
		t.Error("partial instance with unbound i must be kept (future extensions possible)")
	}
}

// TestEnableSetsUnsafeIter checks the creation-event analysis: update and
// create can begin a goal trace (∅ ∈ ENABLE), next cannot.
func TestEnableSetsUnsafeIter(t *testing.T) {
	m, alphabet := unsafeIter(t)
	g, err := m.Explore(1 << 12)
	if err != nil {
		t.Fatal(err)
	}
	en := coenable.EnableFromGraph(g, coenable.GoalOf(logic.Match))

	hasEmpty := func(sym int) bool {
		for _, s := range en[sym] {
			if s == 0 {
				return true
			}
		}
		return false
	}
	if !hasEmpty(symCreate) {
		t.Errorf("create must be a creation event; ENABLE = %s", coenable.FormatEventSets(en[symCreate], alphabet))
	}
	if !hasEmpty(symUpdate) {
		t.Errorf("update must be a creation event; ENABLE = %s", coenable.FormatEventSets(en[symUpdate], alphabet))
	}
	if hasEmpty(symNext) {
		t.Errorf("next must not be a creation event; ENABLE = %s", coenable.FormatEventSets(en[symNext], alphabet))
	}
	// ENABLE(next) must require create to have occurred (create ∈ every set).
	for _, s := range en[symNext] {
		if !s.Has(symCreate) {
			t.Errorf("ENABLE(next) contains %s without create", s.Format(alphabet))
		}
	}
}

// TestAlivenessFormula spot-checks the rendered minimized boolean formula.
func TestAlivenessFormula(t *testing.T) {
	names := []string{"c", "i"}
	f := coenable.AlivenessFormula([]param.Set{param.SetOf(1), param.SetOf(0, 1)}, names)
	if f != "alive(i) ∨ (alive(c) ∧ alive(i))" {
		t.Errorf("formula = %q", f)
	}
	if coenable.AlivenessFormula(nil, names) != "false" {
		t.Error("empty disjunction must render false")
	}
}
