// Package metrics is the engine-wide telemetry substrate: a small,
// dependency-free metrics registry with atomic counters, gauges and
// fixed-bucket histograms, exposed as Prometheus text (/metrics on
// cmd/rvserve), as a JSON snapshot (/statusz, read by cmd/rvtop), and
// through the public façade hook (rvgo.WithMetrics / Monitor.Metrics).
//
// The design discipline mirrors the PR 4 interner: every series is
// resolved ONCE, at component construction time, against a single
// pre-interned label dimension (a tenant or shard name), and the hot path
// only ever touches the resolved *Counter/*Gauge/*Histogram — one or two
// atomic operations, zero allocations, no map lookups, no formatting.
// Label interning, name registration and text encoding all happen on cold
// paths (construction and scrape).
//
// Instrument methods are nil-receiver-safe: a component built without
// telemetry holds nil series and pays a single predictable branch per
// update site. Telemetry is provably semantics-free — the conformance
// suite runs every backend with metrics enabled and requires verdicts and
// settled counters bit-identical to the bare run.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind is a metric family's type, using the Prometheus vocabulary.
type Kind string

// The metric kinds.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// Counter is a monotonically increasing atomic counter. All methods are
// safe for concurrent use and safe on a nil receiver (no-ops), so
// instrument sites need no enablement checks.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds d.
func (c *Counter) Add(d uint64) {
	if c != nil && d != 0 {
		c.v.Add(d)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic signed instantaneous value. Methods are safe for
// concurrent use and no-ops on a nil receiver.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds d (deltas may be negative).
func (g *Gauge) Add(d int64) {
	if g != nil && d != 0 {
		g.v.Add(d)
	}
}

// SetMax raises the gauge to v if v is larger (a high-water mark).
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram: observation counts per upper
// bound, plus a total count and sum. Observe is a bounded linear scan and
// three atomic updates — no allocation, safe for concurrent use, no-op on
// a nil receiver.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; +Inf is implicit
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		s := math.Float64frombits(old) + v
		if h.sumBits.CompareAndSwap(old, math.Float64bits(s)) {
			return
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// within the bucket that holds it — the same estimate a Prometheus
// histogram_quantile gives. Observations beyond the last finite bound
// report that bound. Returns 0 with no observations or a nil receiver.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if float64(cum) >= rank {
			if i >= len(h.bounds) {
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			inBucket := h.buckets[i].Load()
			if inBucket == 0 {
				return h.bounds[i]
			}
			frac := (rank - float64(cum-inBucket)) / float64(inBucket)
			return lo + (h.bounds[i]-lo)*frac
		}
	}
	return h.bounds[len(h.bounds)-1]
}

// series is one labeled instance of a family.
type series struct {
	label string
	c     *Counter
	g     *Gauge
	h     *Histogram
}

// family is one named metric: a kind, an optional single label key, and
// the interned series per label value.
type family struct {
	name    string
	help    string
	kind    Kind
	label   string // label key; "" = unlabeled (one implicit series)
	bounds  []float64
	mu      sync.Mutex
	order   []*series
	byLabel map[string]*series
}

// intern resolves the series for a label value, creating it on first use.
func (f *family) intern(value string) *series {
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.byLabel[value]; ok {
		return s
	}
	s := &series{label: value}
	switch f.kind {
	case KindCounter:
		s.c = &Counter{}
	case KindGauge:
		s.g = &Gauge{}
	case KindHistogram:
		s.h = &Histogram{bounds: f.bounds, buckets: make([]atomic.Uint64, len(f.bounds)+1)}
	}
	f.byLabel[value] = s
	f.order = append(f.order, s)
	return s
}

// Registry is a set of metric families. Registration is idempotent —
// resolving the same name again returns the existing family (so
// components constructed repeatedly against one registry share series) —
// and a name re-registered with a different kind or label key panics: that
// is a programming error in the metric inventory, not runtime input.
type Registry struct {
	mu     sync.Mutex
	fams   []*family
	byName map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

func (r *Registry) resolve(name, help string, kind Kind, label string, bounds []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.kind != kind || f.label != label {
			panic(fmt.Sprintf("metrics: %s re-registered as %s{%s}, existing %s{%s}", name, kind, label, f.kind, f.label))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind, label: label, bounds: bounds, byLabel: map[string]*series{}}
	r.byName[name] = f
	r.fams = append(r.fams, f)
	return f
}

// Counter resolves an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.resolve(name, help, KindCounter, "", nil).intern("").c
}

// LabeledCounter resolves the counter for one value of the family's single
// label dimension. The label value is interned: the caller keeps the
// returned pointer and the hot path never touches the registry again.
func (r *Registry) LabeledCounter(name, help, label, value string) *Counter {
	return r.resolve(name, help, KindCounter, label, nil).intern(value).c
}

// Gauge resolves an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.resolve(name, help, KindGauge, "", nil).intern("").g
}

// LabeledGauge resolves the gauge for one label value.
func (r *Registry) LabeledGauge(name, help, label, value string) *Gauge {
	return r.resolve(name, help, KindGauge, label, nil).intern(value).g
}

// Histogram resolves an unlabeled histogram over the given ascending
// bucket upper bounds (+Inf is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	return r.resolve(name, help, KindHistogram, "", bounds).intern("").h
}

// LabeledHistogram resolves the histogram for one label value.
func (r *Registry) LabeledHistogram(name, help, label, value string, bounds []float64) *Histogram {
	return r.resolve(name, help, KindHistogram, label, bounds).intern(value).h
}

// SecondsBuckets is the canonical latency bucket ladder (1µs … 4s): wide
// enough for an fsync on contended disks, fine enough that a sweep pass's
// p50/p99 separate.
var SecondsBuckets = []float64{
	1e-6, 4e-6, 16e-6, 64e-6, 256e-6, 1e-3, 4e-3, 16e-3, 64e-3, 256e-3, 1, 4,
}

// CountBuckets is the canonical size bucket ladder (1 … 4096), for batch
// sizes and fan-outs.
var CountBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096}

// BucketSnapshot is one cumulative histogram bucket. The implicit +Inf
// bucket is omitted from snapshots (its count equals the series Count), so
// Le always marshals as a finite JSON number.
type BucketSnapshot struct {
	Le    float64 `json:"le"`
	Count uint64  `json:"count"`
}

// SeriesSnapshot is one series' point-in-time state.
type SeriesSnapshot struct {
	Label   string           `json:"label,omitempty"`
	Value   float64          `json:"value"`           // counter/gauge value; histogram sum
	Count   uint64           `json:"count,omitempty"` // histogram observation count
	Buckets []BucketSnapshot `json:"buckets,omitempty"`
}

// FamilySnapshot is one family's point-in-time state: the JSON shape of
// /statusz's metrics section and of the façade's Snapshot.
type FamilySnapshot struct {
	Name   string           `json:"name"`
	Help   string           `json:"help,omitempty"`
	Kind   Kind             `json:"kind"`
	Label  string           `json:"label,omitempty"`
	Series []SeriesSnapshot `json:"series"`
}

// Snapshot returns every family's current state, families in registration
// order, series in label-interning order. Values are read with the same
// atomics the hot paths write; the snapshot is not a consistent cut across
// series (no metrics snapshot is), but each individual value is exact.
func (r *Registry) Snapshot() []FamilySnapshot {
	r.mu.Lock()
	fams := append([]*family(nil), r.fams...)
	r.mu.Unlock()
	out := make([]FamilySnapshot, 0, len(fams))
	for _, f := range fams {
		fs := FamilySnapshot{Name: f.name, Help: f.help, Kind: f.kind, Label: f.label}
		f.mu.Lock()
		order := append([]*series(nil), f.order...)
		f.mu.Unlock()
		for _, s := range order {
			ss := SeriesSnapshot{Label: s.label}
			switch f.kind {
			case KindCounter:
				ss.Value = float64(s.c.Value())
			case KindGauge:
				ss.Value = float64(s.g.Value())
			case KindHistogram:
				ss.Value = s.h.Sum()
				ss.Count = s.h.Count()
				var cum uint64
				for i, le := range f.bounds {
					cum += s.h.buckets[i].Load()
					ss.Buckets = append(ss.Buckets, BucketSnapshot{Le: le, Count: cum})
				}
			}
			fs.Series = append(fs.Series, ss)
		}
		out = append(out, fs)
	}
	return out
}

// Find returns the snapshot of one family by name (convenience for tests
// and reports).
func (r *Registry) Find(name string) (FamilySnapshot, bool) {
	for _, f := range r.Snapshot() {
		if f.Name == name {
			return f, true
		}
	}
	return FamilySnapshot{}, false
}

// WriteProm writes the registry in the Prometheus text exposition format
// (version 0.0.4): one HELP/TYPE header per family, one sample line per
// series, histograms expanded to cumulative _bucket/_sum/_count samples.
func (r *Registry) WriteProm(w io.Writer) error {
	for _, f := range r.Snapshot() {
		if f.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.Name, strings.ReplaceAll(f.Help, "\n", " ")); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.Name, f.Kind); err != nil {
			return err
		}
		for _, s := range f.Series {
			if err := writePromSeries(w, f, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writePromSeries(w io.Writer, f FamilySnapshot, s SeriesSnapshot) error {
	if f.Kind != KindHistogram {
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.Name, promLabels(f.Label, s.Label, "", ""), promFloat(s.Value))
		return err
	}
	for _, b := range s.Buckets {
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.Name, promLabels(f.Label, s.Label, "le", promFloat(b.Le)), b.Count); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.Name, promLabels(f.Label, s.Label, "le", "+Inf"), s.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.Name, promLabels(f.Label, s.Label, "", ""), promFloat(s.Value)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.Name, promLabels(f.Label, s.Label, "", ""), s.Count)
	return err
}

// promLabels renders a label block from up to two key/value pairs,
// skipping empty keys.
func promLabels(k1, v1, k2, v2 string) string {
	var parts []string
	if k1 != "" {
		parts = append(parts, k1+`="`+escapeLabel(v1)+`"`)
	}
	if k2 != "" {
		parts = append(parts, k2+`="`+escapeLabel(v2)+`"`)
	}
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func promFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Names returns the registered family names, sorted (diagnostics, tests).
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.byName))
	for n := range r.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
