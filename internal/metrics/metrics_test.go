package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("rv_test_total", "help")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	// Idempotent re-registration returns the same series.
	if again := r.Counter("rv_test_total", "help"); again.Value() != 42 {
		t.Fatalf("re-registration did not return the existing counter")
	}

	g := r.LabeledGauge("rv_test_live", "", "tenant", "HasNext")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
	g.SetMax(10)
	g.SetMax(2)
	if got := g.Value(); got != 10 {
		t.Fatalf("SetMax gauge = %d, want 10", got)
	}

	// Nil receivers are safe no-ops everywhere.
	var nc *Counter
	var ng *Gauge
	var nh *Histogram
	nc.Inc()
	nc.Add(5)
	ng.Set(1)
	ng.Add(1)
	ng.SetMax(1)
	nh.Observe(1)
	if nc.Value() != 0 || ng.Value() != 0 || nh.Count() != 0 || nh.Sum() != 0 || nh.Quantile(0.5) != 0 {
		t.Fatal("nil receivers must read as zero")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("rv_test_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("rv_test_total", "")
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("rv_test_seconds", "", []float64{0.001, 0.01, 0.1, 1})
	for i := 0; i < 90; i++ {
		h.Observe(0.005) // (0.001, 0.01]
	}
	for i := 0; i < 10; i++ {
		h.Observe(0.5) // (0.1, 1]
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d, want 100", h.Count())
	}
	if got, want := h.Sum(), 90*0.005+10*0.5; math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum = %g, want %g", got, want)
	}
	// p50 interpolates inside (0.001, 0.01]; p99 inside (0.1, 1].
	if p50 := h.Quantile(0.5); p50 <= 0.001 || p50 > 0.01 {
		t.Fatalf("p50 = %g, want in (0.001, 0.01]", p50)
	}
	if p99 := h.Quantile(0.99); p99 <= 0.1 || p99 > 1 {
		t.Fatalf("p99 = %g, want in (0.1, 1]", p99)
	}
	// Observations beyond the last bound clamp to it.
	h.Observe(50)
	if q := h.Quantile(1); q != 1 {
		t.Fatalf("overflow quantile = %g, want clamp to last bound 1", q)
	}
}

func TestWritePromFormat(t *testing.T) {
	r := NewRegistry()
	r.LabeledCounter("rv_engine_events_total", "Events dispatched.", "tenant", "HasNext").Add(128)
	r.LabeledCounter("rv_engine_events_total", "Events dispatched.", "tenant", `we"ird\x`).Add(1)
	r.Gauge("rv_server_sessions_active", "Sessions open.").Set(3)
	h := r.Histogram("rv_trace_fsync_seconds", "Fsync duration.", []float64{0.001, 0.1})
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(5)

	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP rv_engine_events_total Events dispatched.\n",
		"# TYPE rv_engine_events_total counter\n",
		`rv_engine_events_total{tenant="HasNext"} 128` + "\n",
		`rv_engine_events_total{tenant="we\"ird\\x"} 1` + "\n",
		"# TYPE rv_server_sessions_active gauge\n",
		"rv_server_sessions_active 3\n",
		"# TYPE rv_trace_fsync_seconds histogram\n",
		`rv_trace_fsync_seconds_bucket{le="0.001"} 1` + "\n",
		`rv_trace_fsync_seconds_bucket{le="0.1"} 2` + "\n",
		`rv_trace_fsync_seconds_bucket{le="+Inf"} 3` + "\n",
		"rv_trace_fsync_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom output missing %q in:\n%s", want, out)
		}
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	NewEngineSeries(r, "HasNext", "coenable").Events.Add(9)
	NewTraceSeries(r, "HasNext").FsyncSeconds.Observe(0.002)

	snap := r.Snapshot()
	raw, err := json.Marshal(snap)
	if err != nil {
		t.Fatalf("snapshot must be JSON-encodable (no Inf bounds): %v", err)
	}
	var back []FamilySnapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	fam, ok := r.Find("rv_engine_events_total")
	if !ok || len(fam.Series) != 1 || fam.Series[0].Value != 9 || fam.Series[0].Label != "HasNext" {
		t.Fatalf("rv_engine_events_total snapshot wrong: %+v (ok=%v)", fam, ok)
	}
	hist, ok := r.Find("rv_trace_fsync_seconds")
	if !ok || hist.Series[0].Count != 1 {
		t.Fatalf("rv_trace_fsync_seconds snapshot wrong: %+v (ok=%v)", hist, ok)
	}
}

// TestScrapeUnderHammer is the -race stress gate from the issue: N
// goroutines hammer counters, gauges and histograms through pre-resolved
// series (the hot-path shape) while a scraper concurrently renders
// Prometheus text and JSON snapshots. The race detector is the assertion;
// the final counts double-check no update was lost.
func TestScrapeUnderHammer(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 5000

	var wg sync.WaitGroup
	stop := make(chan struct{})
	scraperDone := make(chan struct{})
	go func() { // scraper
		defer close(scraperDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			var buf bytes.Buffer
			if err := r.WriteProm(&buf); err != nil {
				t.Errorf("WriteProm: %v", err)
				return
			}
			if _, err := json.Marshal(r.Snapshot()); err != nil {
				t.Errorf("snapshot marshal: %v", err)
				return
			}
		}
	}()

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each worker interns its own tenant once, then hammers the
			// resolved series — the same access pattern the engine uses.
			tenant := "tenant-" + string(rune('a'+w))
			es := NewEngineSeries(r, tenant, "coenable")
			for i := 0; i < perWorker; i++ {
				es.Events.Inc()
				es.Live.Add(1)
				es.Live.Add(-1)
				es.PeakLive.SetMax(int64(i))
				es.SweepSeconds.Observe(float64(i%10) * 1e-6)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-scraperDone

	fam, ok := r.Find("rv_engine_events_total")
	if !ok {
		t.Fatal("rv_engine_events_total not registered")
	}
	var total float64
	for _, s := range fam.Series {
		total += s.Value
	}
	if total != workers*perWorker {
		t.Fatalf("events total = %v, want %d", total, workers*perWorker)
	}
	hist, _ := r.Find("rv_engine_sweep_seconds")
	if got := hist.Series[0].Count; got != workers*perWorker {
		t.Fatalf("sweep observations = %d, want %d", got, workers*perWorker)
	}
}
