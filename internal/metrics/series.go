package metrics

import "strconv"

// This file is the metric inventory: every family the engine exports, its
// canonical name and help string, resolved into per-layer series structs
// at component construction time. Names follow rv_<layer>_<what>_<unit>;
// each family carries at most one label dimension (tenant, shard, gc, or
// writer), interned here so hot paths never format a label.

// EngineSeries is the per-tenant engine-layer telemetry an
// internal/monitor.Engine publishes (by amortized delta, see
// monitor.Options.Metrics). Multiple engines for one tenant — shard
// workers, repeated sessions — Add into the same series, so counters are
// cumulative across the tenant's whole history, the live gauge is the
// tenant-wide total, and peak-live is the largest single-engine peak.
type EngineSeries struct {
	Events    *Counter
	Steps     *Counter
	Created   *Counter
	Flagged   *Counter
	Collected *Counter
	Recycled  *Counter
	Reused    *Counter
	Verdicts  *Counter
	Sweeps    *Counter
	Live      *Gauge
	PeakLive  *Gauge
	// Arena occupancy: the monitor store's slab arena, published as deltas
	// like everything else. Occupancy and fragmentation are derived
	// scrape-side (live/capacity, free/(live+free)) from these and Live.
	ArenaSlabs *Gauge
	ArenaCap   *Gauge
	ArenaFree  *Gauge
	// SweepSeconds is labeled by GC policy, not tenant: the collection
	// latency distribution is a property of the policy's sweep algorithm,
	// and pooling it across tenants is what makes the histogram useful.
	SweepSeconds *Histogram
}

// NewEngineSeries interns the engine families for one tenant under the
// given GC policy name.
func NewEngineSeries(r *Registry, tenant, gc string) *EngineSeries {
	return &EngineSeries{
		Events:     r.LabeledCounter("rv_engine_events_total", "Events dispatched into the slicing engine.", "tenant", tenant),
		Steps:      r.LabeledCounter("rv_engine_steps_total", "Monitor transition steps taken.", "tenant", tenant),
		Created:    r.LabeledCounter("rv_engine_monitors_created_total", "Monitor instances created.", "tenant", tenant),
		Flagged:    r.LabeledCounter("rv_engine_monitors_flagged_total", "Monitors flagged unreachable by parameter death.", "tenant", tenant),
		Collected:  r.LabeledCounter("rv_engine_monitors_collected_total", "Monitors reclaimed by the GC policy.", "tenant", tenant),
		Recycled:   r.LabeledCounter("rv_engine_monitors_recycled_total", "Collected monitors returned to the free pool.", "tenant", tenant),
		Reused:     r.LabeledCounter("rv_engine_pool_reused_total", "Monitor creations satisfied from the free pool.", "tenant", tenant),
		Verdicts:   r.LabeledCounter("rv_engine_verdicts_total", "Goal verdicts reached.", "tenant", tenant),
		Sweeps:     r.LabeledCounter("rv_engine_sweeps_total", "Expunge sweep passes over the live set.", "tenant", tenant),
		Live:       r.LabeledGauge("rv_engine_monitors_live", "Monitors currently live.", "tenant", tenant),
		PeakLive:   r.LabeledGauge("rv_engine_monitors_peak_live", "Largest per-engine peak of live monitors.", "tenant", tenant),
		ArenaSlabs: r.LabeledGauge("rv_engine_arena_slabs", "Slabs allocated in the monitor-store arena.", "tenant", tenant),
		ArenaCap:   r.LabeledGauge("rv_engine_arena_capacity", "Record capacity of the monitor-store arena.", "tenant", tenant),
		ArenaFree:  r.LabeledGauge("rv_engine_arena_free", "Records on the monitor-store arena free list.", "tenant", tenant),
		SweepSeconds: r.LabeledHistogram("rv_engine_sweep_seconds",
			"Expunge sweep pass duration by GC policy.", "gc", gc, SecondsBuckets),
	}
}

// ShardSeries is the shard-runtime telemetry: per-shard mailbox state
// (labeled "tenant/sN") plus per-tenant dispatch-shape counters.
type ShardSeries struct {
	// Per shard, index-aligned with the runtime's workers.
	MailboxDepth []*Gauge
	Batches      []*Counter
	BatchEvents  []*Counter
	// Per tenant.
	Refusals   *Counter
	Broadcasts *Counter
}

// NewShardSeries interns the shard families for one tenant across n
// shards. Shard label values are "tenant/s0" … "tenant/s<n-1>".
func NewShardSeries(r *Registry, tenant string, n int) *ShardSeries {
	s := &ShardSeries{
		Refusals:   r.LabeledCounter("rv_shard_refusals_total", "TryDispatch batches refused for lack of mailbox space.", "tenant", tenant),
		Broadcasts: r.LabeledCounter("rv_shard_broadcasts_total", "Events broadcast to every shard.", "tenant", tenant),
	}
	for i := 0; i < n; i++ {
		lbl := tenant + "/s" + strconv.Itoa(i)
		s.MailboxDepth = append(s.MailboxDepth, r.LabeledGauge("rv_shard_mailbox_depth", "Batches queued in the shard mailbox.", "shard", lbl))
		s.Batches = append(s.Batches, r.LabeledCounter("rv_shard_batches_total", "Batches shipped to the shard worker.", "shard", lbl))
		s.BatchEvents = append(s.BatchEvents, r.LabeledCounter("rv_shard_batch_events_total", "Events shipped in batches to the shard worker.", "shard", lbl))
	}
	return s
}

// ServerSeries is the per-tenant server-layer telemetry: session
// lifecycle, ingestion volume, and flow-control stalls.
type ServerSeries struct {
	Sessions     *Counter
	Events       *Counter
	Verdicts     *Counter
	Frees        *Counter
	CreditGrants *Counter
	CreditStalls *Counter
	StallSeconds *Histogram
}

// NewServerSeries interns the server families for one tenant (the spec
// name a session monitors under).
func NewServerSeries(r *Registry, tenant string) *ServerSeries {
	return &ServerSeries{
		Sessions:     r.LabeledCounter("rv_server_sessions_total", "Monitoring sessions opened.", "tenant", tenant),
		Events:       r.LabeledCounter("rv_server_events_total", "Events accepted from sessions.", "tenant", tenant),
		Verdicts:     r.LabeledCounter("rv_server_verdicts_total", "Verdicts pushed to sessions.", "tenant", tenant),
		Frees:        r.LabeledCounter("rv_server_frees_total", "Free notifications accepted from sessions.", "tenant", tenant),
		CreditGrants: r.LabeledCounter("rv_server_credit_grants_total", "Credit grants issued to sessions.", "tenant", tenant),
		CreditStalls: r.LabeledCounter("rv_server_credit_stalls_total", "Times session ingestion blocked on a full shard mailbox.", "tenant", tenant),
		StallSeconds: r.LabeledHistogram("rv_server_credit_stall_seconds",
			"Duration of session ingestion stalls.", "tenant", tenant, SecondsBuckets),
	}
}

// SessionsActive resolves the server's one global gauge.
func SessionsActive(r *Registry) *Gauge {
	return r.Gauge("rv_server_sessions_active", "Sessions currently open.")
}

// TraceSeries is the trace-store telemetry for one writer.
type TraceSeries struct {
	Segments     *Counter
	Records      *Counter
	Bytes        *Counter
	FsyncSeconds *Histogram
}

// NewTraceSeries interns the trace families for one writer label
// (typically the tenant whose stream is being recorded).
func NewTraceSeries(r *Registry, writer string) *TraceSeries {
	return &TraceSeries{
		Segments: r.LabeledCounter("rv_trace_segments_total", "Sealed trace segments written.", "writer", writer),
		Records:  r.LabeledCounter("rv_trace_records_total", "Records written to the trace store.", "writer", writer),
		Bytes:    r.LabeledCounter("rv_trace_bytes_total", "Bytes written to the trace store.", "writer", writer),
		FsyncSeconds: r.LabeledHistogram("rv_trace_fsync_seconds",
			"Trace store fsync duration.", "writer", writer, SecondsBuckets),
	}
}

// ClusterSeries is the router-tier telemetry for one tenant: event
// routing shape, handoff activity, and downstream flow control of the
// pivot-hashed cluster fanout (internal/cluster).
type ClusterSeries struct {
	Events         *Counter // events routed to a single pivot-owned slot
	Broadcasts     *Counter // events broadcast to every slot (no pivot bound)
	Frees          *Counter // free rendezvous broadcast to every slot
	Verdicts       *Counter // verdicts merged back upstream
	Handoffs       *Counter // slot moves completed (join, leave, crash)
	HandoffRecords *Counter // journal records replayed during handoffs
	CreditStalls   *Counter // dispatches that blocked on an empty slot window
	Nodes          *Gauge   // healthy downstream nodes
	Slots          *Gauge   // slots (virtual shards) in the fanout
}

// NewClusterSeries interns the cluster families for one tenant.
func NewClusterSeries(r *Registry, tenant string) *ClusterSeries {
	return &ClusterSeries{
		Events:         r.LabeledCounter("rv_cluster_events_total", "Events routed to their pivot-owned slot.", "tenant", tenant),
		Broadcasts:     r.LabeledCounter("rv_cluster_broadcasts_total", "Events broadcast to every slot.", "tenant", tenant),
		Frees:          r.LabeledCounter("rv_cluster_frees_total", "Free rendezvous broadcast to every slot.", "tenant", tenant),
		Verdicts:       r.LabeledCounter("rv_cluster_verdicts_total", "Verdicts merged back to the upstream session.", "tenant", tenant),
		Handoffs:       r.LabeledCounter("rv_cluster_handoffs_total", "Slot handoffs completed between nodes.", "tenant", tenant),
		HandoffRecords: r.LabeledCounter("rv_cluster_handoff_records_total", "Journal records replayed during slot handoffs.", "tenant", tenant),
		CreditStalls:   r.LabeledCounter("rv_cluster_credit_stalls_total", "Dispatches blocked on an exhausted slot credit window.", "tenant", tenant),
		Nodes:          r.LabeledGauge("rv_cluster_nodes", "Healthy downstream nodes serving this tenant.", "tenant", tenant),
		Slots:          r.LabeledGauge("rv_cluster_slots", "Slots (virtual shards) in the tenant's fanout.", "tenant", tenant),
	}
}

// ClientSeries is the façade-side telemetry for a remote-backed Monitor,
// counting traffic as it crosses into the client runtime (the engine —
// and its EngineSeries — lives server-side).
type ClientSeries struct {
	Events   *Counter
	Frees    *Counter
	Verdicts *Counter
}

// NewClientSeries interns the client families for one tenant.
func NewClientSeries(r *Registry, tenant string) *ClientSeries {
	return &ClientSeries{
		Events:   r.LabeledCounter("rv_client_events_total", "Events sent to the remote monitoring server.", "tenant", tenant),
		Frees:    r.LabeledCounter("rv_client_frees_total", "Free notifications sent to the remote monitoring server.", "tenant", tenant),
		Verdicts: r.LabeledCounter("rv_client_verdicts_total", "Verdicts received from the remote monitoring server.", "tenant", tenant),
	}
}
