package server_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"rvgo/internal/heap"
	"rvgo/internal/monitor"
	"rvgo/internal/remote"
	"rvgo/internal/server"
)

// startServerOpts is startServer with options and a handle on the Server.
func startServerOpts(t *testing.T, opts server.Options) (*server.Server, string) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(opts)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	t.Cleanup(func() {
		srv.Shutdown(2 * time.Second)
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return srv, l.Addr().String()
}

// TestDebugHandler drives a sharded session while scraping /metrics and
// /statusz concurrently: the introspection surface must show engine,
// shard, server, and trace series for the session's tenant, and the
// scrapes must never block ingestion (they only read atomics).
func TestDebugHandler(t *testing.T) {
	dir := t.TempDir()
	srv, addr := startServerOpts(t, server.Options{RecordDir: dir})
	web := httptest.NewServer(srv.DebugHandler())
	defer web.Close()

	cl, err := remote.Dial(addr, remote.Options{
		Prop:     "HasNext",
		GC:       monitor.GCCoenable,
		Creation: monitor.CreateEnable,
		Shards:   2,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Scrape concurrently with ingestion from a second goroutine.
	scrapeErr := make(chan error, 1)
	go func() {
		defer close(scrapeErr)
		for i := 0; i < 20; i++ {
			for _, path := range []string{"/metrics", "/statusz"} {
				if _, err := get(web.URL + path); err != nil {
					scrapeErr <- err
					return
				}
			}
		}
	}()

	h := heap.New()
	for i := 0; i < 2000; i++ {
		it := h.Alloc("it")
		if err := cl.EmitNamed("hasnexttrue", it); err != nil {
			t.Fatal(err)
		}
		if err := cl.EmitNamed("next", it); err != nil {
			t.Fatal(err)
		}
		cl.Free(it)
		h.Free(it)
	}
	cl.Flush()
	if err := <-scrapeErr; err != nil {
		t.Fatalf("concurrent scrape: %v", err)
	}

	// Mid-session statusz: the session is visible with its tenant.
	var st statuszDoc
	if err := json.Unmarshal([]byte(httpGet(t, web.URL+"/statusz")), &st); err != nil {
		t.Fatal(err)
	}
	if st.Active != 1 || len(st.Sessions) != 1 {
		t.Fatalf("statusz: active=%d sessions=%v, want one open session", st.Active, st.Sessions)
	}
	sess := st.Sessions[0]
	if sess.Tenant != "HasNext" || sess.Shards != 2 || sess.Events != 4000 {
		t.Fatalf("statusz session = %+v, want tenant=HasNext shards=2 events=4000", sess)
	}

	cl.Close()

	// After the session closes, every layer's series must be present and
	// nonzero in the Prometheus text, labeled by tenant.
	deadline := time.Now().Add(2 * time.Second)
	var prom string
	for {
		prom = httpGet(t, web.URL+"/metrics")
		if strings.Contains(prom, "rv_server_sessions_active 0") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("session never left the active gauge:\n%s", prom)
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, want := range []string{
		`rv_engine_events_total{tenant="HasNext"} 4000`,
		`rv_engine_monitors_created_total{tenant="HasNext"} 2000`,
		`rv_engine_monitors_collected_total{tenant="HasNext"} 2000`,
		`rv_server_events_total{tenant="HasNext"} 4000`,
		`rv_server_sessions_total{tenant="HasNext"} 1`,
		`rv_shard_batches_total{shard="HasNext/s0"}`,
		`rv_trace_records_total{writer="HasNext"}`,
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("full /metrics:\n%s", prom)
	}

	// The recorded trace exists and is nonempty.
	recs, err := filepath.Glob(filepath.Join(dir, "session-*.rvt"))
	if err != nil || len(recs) != 1 {
		t.Fatalf("recorded traces = %v (err %v), want one", recs, err)
	}
	if fi, err := os.Stat(recs[0]); err != nil || fi.Size() == 0 {
		t.Fatalf("recorded trace %s empty or unreadable (err %v)", recs[0], err)
	}

	// Final statusz reflects the closed session in the aggregate.
	if err := json.Unmarshal([]byte(httpGet(t, web.URL+"/statusz")), &st); err != nil {
		t.Fatal(err)
	}
	if st.Total != 1 || st.Events != 4000 || len(st.Sessions) != 0 {
		t.Fatalf("final statusz = total=%d events=%d sessions=%v", st.Total, st.Events, st.Sessions)
	}
}

// statuszDoc mirrors the wire shape (what rvtop does) rather than reusing
// server.Statusz, so a field rename breaks this test, not just rvtop.
type statuszDoc struct {
	UptimeSec float64 `json:"uptime_sec"`
	Active    int     `json:"active_sessions"`
	Total     uint64  `json:"total_sessions"`
	Events    uint64  `json:"events"`
	Verdicts  uint64  `json:"verdicts"`
	Sessions  []struct {
		ID     uint64 `json:"id"`
		Tenant string `json:"tenant"`
		Shards int    `json:"shards"`
		Events uint64 `json:"events"`
	} `json:"sessions"`
	Metrics []struct {
		Name string `json:"name"`
		Kind string `json:"kind"`
	} `json:"metrics"`
}

func get(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != 200 {
		return "", fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return string(body), nil
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	body, err := get(url)
	if err != nil {
		t.Fatal(err)
	}
	return body
}
