package server

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"sort"
	"time"

	"rvgo/internal/metrics"
)

// Statusz is the JSON document served at /statusz: the server aggregate,
// every ready session, and the full metrics snapshot. Its field names are
// a stable contract — cmd/rvtop (which may not import internal packages)
// parses this shape with its own mirror structs.
type Statusz struct {
	UptimeSec float64                  `json:"uptime_sec"`
	Active    int                      `json:"active_sessions"`
	Total     uint64                   `json:"total_sessions"`
	Events    uint64                   `json:"events"`
	Verdicts  uint64                   `json:"verdicts"`
	Sessions  []SessionStatus          `json:"sessions"`
	Metrics   []metrics.FamilySnapshot `json:"metrics"`
}

// SessionStatus is one active session's point-in-time state.
type SessionStatus struct {
	ID        uint64  `json:"id"`
	Tenant    string  `json:"tenant"`
	Shards    int     `json:"shards"`
	Window    int     `json:"window"`
	Events    uint64  `json:"events"`
	Stalls    uint64  `json:"stalls"`
	StallSec  float64 `json:"stall_sec"`
	UptimeSec float64 `json:"uptime_sec"`
}

// Statusz assembles the /statusz snapshot. Safe to call from any
// goroutine: session fields are published by the ready flag and counters
// are atomics, so the scrape never barriers or blocks a backend.
func (s *Server) Statusz() Statusz {
	st := s.Stats()
	out := Statusz{
		UptimeSec: time.Since(s.started).Seconds(),
		Active:    st.ActiveSessions,
		Total:     st.TotalSessions,
		Events:    st.Events,
		Verdicts:  st.Verdicts,
	}
	s.mu.Lock()
	live := make([]*session, 0, len(s.sessions))
	for sess := range s.sessions {
		live = append(live, sess)
	}
	s.mu.Unlock()
	for _, sess := range live {
		if !sess.ready.Load() {
			continue // still in handshake; its fields are not published yet
		}
		out.Sessions = append(out.Sessions, SessionStatus{
			ID:        sess.id,
			Tenant:    sess.tenant,
			Shards:    sess.shardCount(),
			Window:    sess.window,
			Events:    sess.events.Load(),
			Stalls:    sess.stalls.Load(),
			StallSec:  float64(sess.stallNs.Load()) / 1e9,
			UptimeSec: time.Since(sess.opened).Seconds(),
		})
	}
	sort.Slice(out.Sessions, func(a, b int) bool { return out.Sessions[a].ID < out.Sessions[b].ID })
	out.Metrics = s.reg.Snapshot()
	return out
}

// DebugHandler returns the server's introspection surface, for serving on
// a side listener (rvserve -metrics):
//
//	/metrics        Prometheus text exposition of every registered series
//	/statusz        the Statusz JSON snapshot (what cmd/rvtop polls)
//	/debug/pprof/*  the standard Go profiling endpoints
//
// Handlers read only atomics and registry snapshots — scraping never
// stalls a session or a shard worker.
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.reg.WriteProm(w)
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(s.Statusz())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
