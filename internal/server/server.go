// Package server is the multi-tenant monitoring server: it accepts
// wire-protocol sessions over TCP and runs one monitor.Runtime per session
// — the paper's engine, deployed as a service.
//
// Each session owns a private spec registry entry (compiled from the
// client's Hello), its own monitoring backend (sequential engine or
// sharded runtime, chosen per session), a session-scoped simulated heap,
// and a remote-ID→object table. The table is the network replacement for
// weak references: a client names parameter objects with integer IDs, the
// server materializes one heap object per ID on first mention, and a
// protocol Free message kills the object — which is exactly the death
// signal the coenable-set GC consumes. Monitor lifetime on the server is
// governed entirely by these protocol-level deaths; no amount of server-
// side garbage collection can reclaim a monitor whose client never
// declares its objects dead, and nothing but the table keeps them alive.
//
// Before applying a Free the session barriers its runtime, so every event
// sent before the Free observes the objects alive: per-session counters
// and verdicts are trace-faithful and equal to a local replay of the same
// stream (see the client package's oracle tests).
//
// Flow control: sessions grant event credits (wire.Credit) as the backend
// actually accepts events. Ingestion into a sharded runtime first tries
// the non-blocking TryDispatch; when the target mailbox refuses, the
// session falls back to the blocking Dispatch — which stalls the session
// reader, withholds further credit, and so propagates the mailbox's
// backpressure to the remote producer at the protocol level.
package server

import (
	"errors"
	"fmt"
	"io"
	"net"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"rvgo/internal/heap"
	"rvgo/internal/logic"
	"rvgo/internal/metrics"
	"rvgo/internal/monitor"
	"rvgo/internal/param"
	"rvgo/internal/props"
	"rvgo/internal/shard"
	"rvgo/internal/spec"
	"rvgo/internal/trace"
	"rvgo/internal/wire"
)

// Options configures a Server.
type Options struct {
	// Window is the event-credit window granted to each session (default
	// 4096). A client may request a smaller one in its Hello.
	Window int
	// MaxShards caps the per-session backend size a client may request
	// (default 16; the cap exists because shards are goroutines the client
	// makes the server spawn).
	MaxShards int
	// DefaultShards is the backend when the client's Hello leaves the
	// choice to the server (Shards == 0). Default 1: the sequential
	// engine.
	DefaultShards int
	// Logf, when non-nil, receives one line per session lifecycle event.
	Logf func(format string, args ...any)
	// FlightWindow, when > 0, gives each session a flight recorder of the
	// last n records (events and protocol frees); the window is dumped to
	// Logf whenever the session reports a non-match verdict — the recent-
	// event context of a failure, without recording whole sessions.
	FlightWindow int
	// RecordDir, when non-empty, records every session's event stream to a
	// persistent trace (<RecordDir>/session-<id>.rvt) for retroactive
	// querying. A recording failure is logged and disables recording for
	// that session; it never interrupts monitoring.
	RecordDir string
}

// Server accepts and runs monitoring sessions.
type Server struct {
	opts Options

	mu       sync.Mutex
	listener net.Listener
	sessions map[*session]struct{}
	nextID   uint64
	draining bool

	wg sync.WaitGroup

	// Aggregate counters across all sessions, past and present.
	events   atomic.Uint64
	verdicts atomic.Uint64
	accepted atomic.Uint64

	// reg is the server's metrics registry: every layer a session runs —
	// engine, shard runtime, trace recorder, and the server itself —
	// publishes into it, labeled by tenant (the session's spec name). It is
	// always live (series cost nothing until sessions intern them) and is
	// what DebugHandler scrapes.
	reg        *metrics.Registry
	sessActive *metrics.Gauge
	started    time.Time
}

// New builds a server.
func New(opts Options) *Server {
	if opts.Window <= 0 {
		opts.Window = 4096
	}
	if opts.MaxShards <= 0 {
		opts.MaxShards = 16
	}
	if opts.DefaultShards <= 0 {
		opts.DefaultShards = 1
	}
	s := &Server{opts: opts, sessions: map[*session]struct{}{}, reg: metrics.NewRegistry(), started: time.Now()}
	s.sessActive = metrics.SessionsActive(s.reg)
	return s
}

// Metrics returns the server's metrics registry (scraping, tests).
func (s *Server) Metrics() *metrics.Registry { return s.reg }

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// Stats is the server-wide aggregate view.
type Stats struct {
	ActiveSessions int
	TotalSessions  uint64
	Events         uint64
	Verdicts       uint64
}

// Stats returns the aggregate counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	active := len(s.sessions)
	s.mu.Unlock()
	return Stats{
		ActiveSessions: active,
		TotalSessions:  s.accepted.Load(),
		Events:         s.events.Load(),
		Verdicts:       s.verdicts.Load(),
	}
}

// Serve accepts sessions on l until the listener is closed (by Shutdown or
// Close). It returns nil on orderly shutdown.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return errors.New("server: Serve after Shutdown")
	}
	s.listener = l
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.nextID++
		sess := &session{srv: s, id: s.nextID, conn: conn}
		s.sessions[sess] = struct{}{}
		s.accepted.Add(1)
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			sess.run()
			s.mu.Lock()
			delete(s.sessions, sess)
			s.mu.Unlock()
		}()
	}
}

// Shutdown drains the server gracefully: it stops accepting, then waits up
// to timeout for active sessions to finish their streams (a client Bye or
// disconnect). Sessions still active at the deadline are force-closed.
func (s *Server) Shutdown(timeout time.Duration) {
	s.mu.Lock()
	s.draining = true
	l := s.listener
	s.mu.Unlock()
	if l != nil {
		l.Close()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(timeout):
		s.mu.Lock()
		for sess := range s.sessions {
			sess.conn.Close()
		}
		s.mu.Unlock()
		<-done
	}
}

// Close force-closes the listener and every active session.
func (s *Server) Close() { s.Shutdown(0) }

// session is one client connection: a spec, a backend, a heap, and the
// remote-ID table.
type session struct {
	srv  *Server
	id   uint64
	conn net.Conn

	wmu sync.Mutex // serializes all frame writes + flushes
	w   *wire.Writer

	rt     monitor.Runtime
	srt    *shard.Runtime // non-nil when the backend is sharded
	spec   *monitor.Spec
	heap   *heap.Heap
	flight *trace.Ring // non-nil with Options.FlightWindow > 0

	// tmu guards the ID tables: the session goroutine writes them while
	// ingesting events, and onVerdict reads back on shard workers.
	tmu     sync.Mutex
	objects map[uint64]*heap.Object // remote ID → session heap object
	back    map[uint64]uint64       // session heap object ID → remote ID

	window  int
	ungrant int // events accepted since the last credit grant

	// Node mode (cluster tier): a router marks the session with a
	// NodeHello before the ordinary Hello, which authorizes the handoff
	// frames. vskip is the number of verdict forwards still to suppress
	// inside a handoff bracket — the replayed journal regenerates verdicts
	// the upstream client already received, and the engine must count them
	// (its settled counters are checked against the donor's) without the
	// router delivering them twice.
	node       bool
	nodeRouter uint64
	nodeSlot   uint64
	vskip      atomic.Int64

	// Telemetry. tenant/met/opened are written during the handshake and
	// published by ready.Store(true); the /statusz scraper reads them only
	// after a positive ready.Load(), and reads the counters below with
	// atomics, so session state never races a scrape.
	tenant  string
	met     *metrics.ServerSeries
	rec     *trace.Writer // non-nil with Options.RecordDir
	opened  time.Time
	ready   atomic.Bool
	events  atomic.Uint64
	stalls  atomic.Uint64
	stallNs atomic.Uint64

	vals []heap.Ref // dispatch scratch
	vids []uint64   // verdict-ID scratch (onVerdict is serialized)
}

// run executes the session to completion.
func (s *session) run() {
	defer s.conn.Close()
	r := wire.NewReader(s.conn)
	s.w = wire.NewWriter(s.conn)

	var msg wire.Msg
	if err := r.Next(&msg); err != nil {
		s.srv.logf("session %d: reading hello: %v", s.id, err)
		return
	}
	if msg.Type == wire.TNodeHello {
		// A cluster router owns this session: remember the marker (it
		// authorizes the handoff frames) and read the ordinary Hello next.
		s.node = true
		s.nodeRouter, s.nodeSlot = msg.NodeHello.Router, msg.NodeHello.Slot
		if err := r.Next(&msg); err != nil {
			s.srv.logf("session %d: reading hello: %v", s.id, err)
			return
		}
	}
	if msg.Type != wire.THello {
		s.fail("expected Hello, got message type %d", msg.Type)
		return
	}
	if err := s.handshake(msg.Hello); err != nil {
		s.fail("%v", err)
		return
	}
	defer s.teardown()
	defer s.rt.Close()
	s.srv.logf("session %d: open spec=%s shards=%d window=%d", s.id, s.spec.Name, s.shardCount(), s.window)

	// Ingest loop, batch-drained: frames already sitting in the read
	// buffer are decoded and dispatched back to back — the decoder reuses
	// one Msg and ID buffer, so a pipelined burst of events shares the
	// engine's allocation-free path end to end — and the accumulated
	// credit is flushed only when the stream would block (or the half-
	// window threshold forces an early grant; see event).
	for {
		if err := r.Next(&msg); err != nil {
			if err != io.EOF {
				s.srv.logf("session %d: read: %v", s.id, err)
			}
			return
		}
		for {
			stop, err := s.handle(&msg)
			if err != nil {
				s.fail("%v", err)
				return
			}
			if stop {
				return
			}
			if !r.FrameBuffered() {
				break
			}
			if err := r.Next(&msg); err != nil {
				if err != io.EOF {
					s.srv.logf("session %d: read: %v", s.id, err)
				}
				return
			}
		}
		if s.ungrant > 0 {
			if err := s.grantCredit(); err != nil {
				return
			}
		}
	}
}

// handle processes one decoded frame. stop reports an orderly end of the
// session (Bye); a non-nil error is a protocol violation.
func (s *session) handle(msg *wire.Msg) (stop bool, err error) {
	switch msg.Type {
	case wire.TEvent:
		return false, s.event(msg.Event)
	case wire.TFree:
		s.free(msg.Free.IDs)
	case wire.TBarrier:
		s.rt.Barrier()
		s.ack(wire.TBarrierAck, msg.Sync.Token)
	case wire.TFlush:
		s.rt.Flush()
		s.ack(wire.TFlushAck, msg.Sync.Token)
	case wire.TStatsReq:
		st := s.rt.Stats()
		token := msg.Sync.Token
		s.writeLocked(func() error { return s.w.WriteStats(toWireStats(token, st)) })
	case wire.TBye:
		s.rt.Flush()
		st := s.rt.Stats()
		s.writeLocked(func() error { return s.w.WriteByeAck(wire.ByeAck{Stats: toWireStats(0, st)}) })
		s.srv.logf("session %d: closed after %d events", s.id, s.events.Load())
		return true, nil
	case wire.THandoffBegin:
		if !s.node {
			return false, fmt.Errorf("HandoffBegin on a session without a NodeHello")
		}
		s.vskip.Store(int64(msg.HandoffBegin.Skip))
		s.srv.logf("session %d: handoff begin (router %d slot %d, skipping %d verdicts)",
			s.id, s.nodeRouter, s.nodeSlot, msg.HandoffBegin.Skip)
	case wire.THandoffEnd:
		if !s.node {
			return false, fmt.Errorf("HandoffEnd on a session without a NodeHello")
		}
		// Settle the replayed state, stop suppressing (a correct replay
		// consumed the skip budget exactly; a leftover budget would
		// silently swallow live verdicts), and ack with the counters the
		// router verifies against the donor's ByeAck.
		s.rt.Flush()
		s.vskip.Store(0)
		st := s.rt.Stats()
		token := msg.Sync.Token
		s.writeLocked(func() error { return s.w.WriteHandoffAck(toWireStats(token, st)) })
		s.srv.logf("session %d: handoff settled after %d events", s.id, s.events.Load())
	default:
		return false, fmt.Errorf("unexpected message type %d", msg.Type)
	}
	return false, nil
}

// teardown finishes a session's telemetry lifecycle: the active-session
// gauge drops and the trace recorder (if any) is sealed and closed. It
// runs after rt.Close, so the engine's final delta publication lands
// before the gauge moves.
func (s *session) teardown() {
	if s.ready.Load() {
		s.srv.sessActive.Add(-1)
	}
	if s.rec != nil {
		if err := s.rec.Close(); err != nil {
			s.srv.logf("session %d: closing recording: %v", s.id, err)
		}
		s.rec = nil
	}
}

func (s *session) shardCount() int {
	if s.srt != nil {
		return s.srt.Shards()
	}
	return 1
}

// handshake validates the Hello, compiles the spec and builds the backend.
func (s *session) handshake(h wire.Hello) error {
	if h.Version != wire.Version {
		return fmt.Errorf("protocol version %d not supported (server speaks %d)", h.Version, wire.Version)
	}
	compiled, err := resolveSpec(h.SpecKind, h.Spec)
	if err != nil {
		return err
	}
	gc := monitor.GCPolicy(h.GC)
	if gc < monitor.GCNone || gc > monitor.GCCoenable {
		return fmt.Errorf("unknown GC policy %d", h.GC)
	}
	creation := monitor.CreationStrategy(h.Creation)
	if creation != monitor.CreateEnable && creation != monitor.CreateFull {
		return fmt.Errorf("unknown creation strategy %d", h.Creation)
	}
	avoid := monitor.AvoidMode(h.Avoid)
	if avoid < monitor.AvoidOff || avoid > monitor.AvoidEnforce {
		return fmt.Errorf("unknown avoidance mode %d", h.Avoid)
	}
	shards := int(h.Shards)
	if shards == 0 {
		shards = s.srv.opts.DefaultShards
	}
	if shards < 1 || shards > s.srv.opts.MaxShards {
		return fmt.Errorf("shards %d out of range 1..%d", shards, s.srv.opts.MaxShards)
	}
	window := s.srv.opts.Window
	if h.Window > 0 && int(h.Window) < window {
		window = int(h.Window)
	}

	opts := monitor.Options{
		GC: gc, Creation: creation, Avoid: avoid, OnVerdict: s.onVerdict,
		Metrics: metrics.NewEngineSeries(s.srv.reg, compiled.Name, gc.String()),
	}
	if shards > 1 {
		srt, err := shard.New(compiled, shard.Options{
			Options: opts, Shards: shards,
			MetricsRegistry: s.srv.reg, MetricsLabel: compiled.Name,
		})
		if err != nil {
			return err
		}
		s.rt, s.srt = srt, srt
	} else {
		eng, err := monitor.New(compiled, opts)
		if err != nil {
			return err
		}
		s.rt = eng
	}
	s.spec = compiled
	if s.srv.opts.FlightWindow > 0 {
		s.flight = trace.NewRing(s.srv.opts.FlightWindow)
	}
	s.heap = heap.New()
	s.objects = map[uint64]*heap.Object{}
	s.back = map[uint64]uint64{}
	s.window = window

	if dir := s.srv.opts.RecordDir; dir != "" {
		path := filepath.Join(dir, fmt.Sprintf("session-%d.rvt", s.id))
		wtr, err := func() (*trace.Writer, error) {
			if err := trace.EnsureDir(path); err != nil {
				return nil, err
			}
			return trace.CreateForSpec(path, compiled, trace.WriterOptions{
				Metrics: metrics.NewTraceSeries(s.srv.reg, compiled.Name),
			})
		}()
		if err != nil {
			s.srv.logf("session %d: recording disabled: %v", s.id, err)
		} else {
			s.rec = wtr
		}
	}

	s.tenant = compiled.Name
	s.met = metrics.NewServerSeries(s.srv.reg, s.tenant)
	s.met.Sessions.Inc()
	s.srv.sessActive.Add(1)
	s.opened = time.Now()
	s.ready.Store(true)

	ack := wire.HelloAck{
		Session:  s.id,
		Window:   uint64(window),
		SpecName: compiled.Name,
		Params:   compiled.Params,
	}
	for _, ev := range compiled.Events {
		ack.Events = append(ack.Events, wire.EventDef{Name: ev.Name, Params: uint64(ev.Params)})
	}
	return s.writeLocked(func() error { return s.w.WriteHelloAck(ack) })
}

// resolveSpec turns the Hello's spec reference into a compiled Spec: a
// library property name, or .rv source compiled on the spot (which must
// define exactly one property).
func resolveSpec(kind byte, src string) (*monitor.Spec, error) {
	switch kind {
	case wire.SpecProp:
		return props.Build(src)
	case wire.SpecSource:
		return spec.CompileOne(src)
	}
	return nil, fmt.Errorf("unknown spec kind %d", kind)
}

// event dispatches one remote event into the backend and replenishes
// credit as the backend accepts it.
func (s *session) event(ev wire.Event) error {
	if ev.Sym < 0 || ev.Sym >= len(s.spec.Events) {
		return fmt.Errorf("event symbol %d out of range (spec %s has %d events)", ev.Sym, s.spec.Name, len(s.spec.Events))
	}
	want := s.spec.Events[ev.Sym].Params.Count()
	if len(ev.IDs) != want {
		return fmt.Errorf("event %q takes %d objects, got %d", s.spec.Events[ev.Sym].Name, want, len(ev.IDs))
	}
	s.vals = s.vals[:0]
	s.tmu.Lock()
	for _, id := range ev.IDs {
		o, ok := s.objects[id]
		if !ok {
			o = s.heap.AllocRemote(id)
			s.objects[id] = o
			s.back[o.ID()] = id
		}
		if !o.Alive() {
			s.tmu.Unlock()
			return fmt.Errorf("event %q uses remote object %d after its free", s.spec.Events[ev.Sym].Name, id)
		}
		s.vals = append(s.vals, o)
	}
	s.tmu.Unlock()
	theta := param.Of(s.spec.Events[ev.Sym].Params, s.vals...)
	// Record before dispatch: on the sequential backend the verdict
	// handler runs inside Dispatch, and the window it dumps must include
	// the event that triggered it.
	if s.flight != nil {
		s.flight.RecordDispatchIDs(ev.Sym, s.spec.Events[ev.Sym].Params, ev.IDs)
	}
	if s.rec != nil {
		if err := s.rec.EventIDs(ev.Sym, ev.IDs); err != nil {
			s.srv.logf("session %d: recording stopped: %v", s.id, err)
			s.rec.Close()
			s.rec = nil
		}
	}
	if s.srt != nil {
		// Non-blocking first: a refusal means the target mailbox is full,
		// and the blocking fallback is precisely the backpressure — the
		// session reads no further frames (and grants no further credit)
		// until the shard drains.
		if !s.srt.TryDispatch(ev.Sym, theta) {
			s.stallDispatch(ev.Sym, theta)
		}
	} else {
		s.rt.Dispatch(ev.Sym, theta)
	}
	s.events.Add(1)
	s.met.Events.Inc()
	s.srv.events.Add(1)

	// Credit: the half-window threshold keeps the producer's pipeline from
	// ever emptying while the backend keeps up; below it, accumulated
	// credit rides until the ingest loop drains the read buffer (run), so
	// a pipelined burst costs one credit write instead of many.
	s.ungrant++
	if s.ungrant >= s.window/2 || s.window < 2 {
		return s.grantCredit()
	}
	return nil
}

// stallDispatch is the blocking fallback behind a TryDispatch refusal:
// the session reader stalls here, withholding credit, until the shard
// mailbox drains. The stall is counted and timed, and a stall still
// blocked after one second logs a structured warning with the withheld
// credit and the backlog — the "why is my session stuck" diagnostic. The
// timer allocation is fine: this path is already blocking on a full
// mailbox.
func (s *session) stallDispatch(sym int, theta param.Instance) {
	s.met.CreditStalls.Inc()
	credits := s.ungrant
	start := time.Now()
	warn := time.AfterFunc(time.Second, func() {
		depths := s.srt.QueueDepths()
		deepest := 0
		for _, d := range depths {
			if d > deepest {
				deepest = d
			}
		}
		s.srv.logf("session %d: credit-starved >1s tenant=%s credits_withheld=%d mailbox_depth=%d shards=%d",
			s.id, s.tenant, credits, deepest, len(depths))
	})
	s.srt.Dispatch(sym, theta)
	warn.Stop()
	d := time.Since(start)
	s.met.StallSeconds.Observe(d.Seconds())
	s.stallNs.Add(uint64(d))
	s.stalls.Add(1)
}

// grantCredit flushes the accumulated event credit to the client.
func (s *session) grantCredit() error {
	n := uint64(s.ungrant)
	if n == 0 {
		return nil
	}
	s.ungrant = 0
	s.met.CreditGrants.Inc()
	return s.writeLocked(func() error { return s.w.WriteCredit(n) })
}

// free applies protocol-level object deaths: barrier the backend so every
// event sent before the Free is processed against the old liveness, then
// kill the objects — from this moment the coenable-set GC may flag and
// collect every monitor whose ALIVENESS formula depended on them, exactly
// as if a weak reference had been cleared. Table entries are retained,
// now holding dead objects: an event naming the ID again is
// use-after-free and must be refused (never silently re-allocated), and a
// late verdict (the alldead/none GC policies keep such monitors) may
// still mention the object. A dead entry costs the same bounded memory as
// its s.back row.
func (s *session) free(ids []uint64) {
	if s.flight != nil {
		s.flight.RecordFreeIDs(ids)
	}
	s.met.Frees.Inc()
	if s.rec != nil {
		if err := s.rec.FreeIDs(ids); err != nil {
			s.srv.logf("session %d: recording stopped: %v", s.id, err)
			s.rec.Close()
			s.rec = nil
		}
	}
	// Barrier only when a death is observable: deaths of objects that
	// never appeared in an event (dacapo workloads free far more objects
	// than any one property mentions) change nothing for the monitors,
	// and a cross-shard sync per irrelevant death would stall ingestion.
	s.tmu.Lock()
	observable := false
	for _, id := range ids {
		if o, ok := s.objects[id]; ok && o.Alive() {
			observable = true
			break
		}
	}
	s.tmu.Unlock()
	if observable {
		s.rt.Barrier()
	}
	s.tmu.Lock()
	defer s.tmu.Unlock()
	for _, id := range ids {
		o, ok := s.objects[id]
		if !ok {
			// Never appeared in an event: record a tombstone anyway, so
			// the death is final for this ID too — a later event naming
			// it must be refused, not silently allocated live.
			o = s.heap.AllocRemote(id)
			s.objects[id] = o
			s.back[o.ID()] = id
		}
		s.heap.Free(o)
	}
}

// onVerdict forwards a goal verdict to the client. It is called from the
// session goroutine (sequential backend) or from shard workers (serialized
// by the shard runtime's verdict mutex) — never concurrently with itself,
// which is what lets it reuse the session's verdict-ID scratch.
func (s *session) onVerdict(v monitor.Verdict) {
	// Inside a handoff bracket the first vskip verdicts are replays the
	// upstream client already has; the engine counted them, the wire must
	// not carry them again. onVerdict invocations are serialized, so the
	// check-then-decrement pair never races itself.
	if s.vskip.Load() > 0 {
		s.vskip.Add(-1)
		return
	}
	s.srv.verdicts.Add(1)
	s.met.Verdicts.Inc()
	wv := wire.Verdict{Sym: v.Sym, Cat: string(v.Cat), Mask: uint64(v.Inst.Mask())}
	s.vids = s.vids[:0]
	s.tmu.Lock()
	for pm := v.Inst.Mask(); pm != 0; pm = pm.Rest() {
		s.vids = append(s.vids, s.back[v.Inst.Value(pm.First()).ID()])
	}
	s.tmu.Unlock()
	wv.IDs = s.vids
	s.writeLocked(func() error { return s.w.WriteVerdict(wv) })
	if s.flight != nil && v.Cat != logic.Match {
		s.dumpWindow(wv)
	}
}

// dumpWindow logs the flight-recorder window behind a failure verdict:
// the recent events and protocol frees, oldest first, with the client's
// object IDs. onVerdict invocations are serialized, so the dump is one
// coherent block per verdict.
func (s *session) dumpWindow(v wire.Verdict) {
	var b []byte
	for _, e := range s.flight.Snapshot() {
		if e.Kind == trace.RingFree {
			b = fmt.Appendf(b, " #%d free%v", e.Seq, e.IDs[:e.N])
		} else if int(e.Sym) < len(s.spec.Events) {
			b = fmt.Appendf(b, " #%d %s%v", e.Seq, s.spec.Events[e.Sym].Name, e.IDs[:e.N])
		}
	}
	s.srv.logf("session %d: verdict %s on %v, flight window:%s", s.id, v.Cat, v.IDs, string(b))
}

// ack writes a token-echo frame.
func (s *session) ack(t byte, token uint64) {
	s.writeLocked(func() error { return s.w.WriteSync(t, token) })
}

// fail sends a fatal Error frame and logs; the caller closes the session.
func (s *session) fail(format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	s.srv.logf("session %d: %s", s.id, msg)
	s.writeLocked(func() error { return s.w.WriteError(msg) })
}

// writeLocked runs one or more frame writes under the write mutex and
// flushes, so every server→client frame becomes visible promptly and
// writes from shard workers never interleave mid-frame.
func (s *session) writeLocked(f func() error) error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	if err := f(); err != nil {
		return err
	}
	return s.w.Flush()
}

func toWireStats(token uint64, st monitor.Stats) wire.Stats {
	return wire.Stats{
		Token:        token,
		Events:       st.Events,
		Created:      st.Created,
		Flagged:      st.Flagged,
		Collected:    st.Collected,
		GoalVerdicts: st.GoalVerdicts,
		Steps:        st.Steps,
		Avoided:      st.Avoided,
		Live:         st.Live,
		PeakLive:     st.PeakLive,
	}
}
