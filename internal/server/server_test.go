package server_test

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"rvgo/internal/heap"
	"rvgo/internal/monitor"
	"rvgo/internal/remote"
	"rvgo/internal/server"
	"rvgo/internal/wire"
)

// startServer runs a server on an ephemeral port; the test gets the
// address and a raw-dial helper for speaking the protocol by hand.
func startServer(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.Options{})
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	t.Cleanup(func() {
		srv.Shutdown(2 * time.Second)
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return l.Addr().String()
}

func dialRaw(t *testing.T, addr string) (net.Conn, *wire.Writer, *wire.Reader) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn, wire.NewWriter(conn), wire.NewReader(conn)
}

// expectError reads frames until a TError arrives (skipping acks and
// credit) and returns its message.
func expectError(t *testing.T, r *wire.Reader) string {
	t.Helper()
	var msg wire.Msg
	for {
		if err := r.Next(&msg); err != nil {
			t.Fatalf("stream ended without an Error frame: %v", err)
		}
		if msg.Type == wire.TError {
			return msg.Error.Msg
		}
	}
}

func hello(t *testing.T, w *wire.Writer, h wire.Hello) {
	t.Helper()
	if err := w.WriteHello(h); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
}

func validHello() wire.Hello {
	return wire.Hello{
		Version:  wire.Version,
		SpecKind: wire.SpecProp,
		Spec:     "UnsafeIter",
		GC:       byte(monitor.GCCoenable),
		Creation: byte(monitor.CreateEnable),
		Shards:   1,
	}
}

// TestGarbageStream: raw garbage instead of a Hello must not wedge the
// server; the connection just dies.
func TestGarbageStream(t *testing.T) {
	addr := startServer(t)
	conn, _, _ := dialRaw(t, addr)
	if _, err := conn.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x7F, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 64)
	for {
		if _, err := conn.Read(buf); err != nil {
			return // closed (possibly after an Error frame): the right outcome
		}
	}
}

// TestEventBeforeHello: the first frame must be a Hello.
func TestEventBeforeHello(t *testing.T) {
	addr := startServer(t)
	_, w, r := dialRaw(t, addr)
	if err := w.WriteEvent(0, []uint64{1}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if msg := expectError(t, r); !strings.Contains(msg, "Hello") {
		t.Errorf("error %q does not mention the missing Hello", msg)
	}
}

// TestBadVersion: an unknown protocol version is refused.
func TestBadVersion(t *testing.T) {
	addr := startServer(t)
	_, w, r := dialRaw(t, addr)
	h := validHello()
	h.Version = 99
	hello(t, w, h)
	if msg := expectError(t, r); !strings.Contains(msg, "version") {
		t.Errorf("error %q does not mention the version", msg)
	}
}

// TestUseAfterFree: an event naming a remote object the client already
// freed is a protocol error — the object's death was final.
func TestUseAfterFree(t *testing.T) {
	addr := startServer(t)
	_, w, r := dialRaw(t, addr)
	hello(t, w, validHello())
	var msg wire.Msg
	if err := r.Next(&msg); err != nil || msg.Type != wire.THelloAck {
		t.Fatalf("no HelloAck: %v %d", err, msg.Type)
	}
	// create(c=1, i=2); free 2; next(i=2) → error.
	if err := w.WriteEvent(0, []uint64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteFree([]uint64{2}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteEvent(2, []uint64{2}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if msg := expectError(t, r); !strings.Contains(msg, "free") {
		t.Errorf("error %q does not mention the free", msg)
	}
}

// TestFreeBeforeFirstMentionIsFinal: freeing an ID the server has never
// seen must still make that ID's death final — a later event naming it is
// use-after-free, not a fresh allocation.
func TestFreeBeforeFirstMentionIsFinal(t *testing.T) {
	addr := startServer(t)
	_, w, r := dialRaw(t, addr)
	hello(t, w, validHello())
	var msg wire.Msg
	if err := r.Next(&msg); err != nil || msg.Type != wire.THelloAck {
		t.Fatalf("no HelloAck: %v %d", err, msg.Type)
	}
	if err := w.WriteFree([]uint64{7}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteEvent(0, []uint64{7, 8}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if msg := expectError(t, r); !strings.Contains(msg, "free") {
		t.Errorf("error %q does not mention the free", msg)
	}
}

// TestBadSymbolAndArity: out-of-range symbols and wrong value counts are
// protocol errors, not panics.
func TestBadSymbolAndArity(t *testing.T) {
	for name, ev := range map[string]wire.Event{
		"symbol":   {Sym: 99, IDs: []uint64{1}},
		"negative": {Sym: 0, IDs: []uint64{}},
		"arity":    {Sym: 0, IDs: []uint64{1, 2, 3}},
	} {
		t.Run(name, func(t *testing.T) {
			addr := startServer(t)
			_, w, r := dialRaw(t, addr)
			hello(t, w, validHello())
			var msg wire.Msg
			if err := r.Next(&msg); err != nil || msg.Type != wire.THelloAck {
				t.Fatalf("no HelloAck: %v %d", err, msg.Type)
			}
			if err := w.WriteEvent(ev.Sym, ev.IDs); err != nil {
				t.Fatal(err)
			}
			if err := w.Flush(); err != nil {
				t.Fatal(err)
			}
			expectError(t, r)
		})
	}
}

// TestFlightWindowDump covers Options.FlightWindow: a session on a server
// with a flight recorder gets its recent records dumped to Logf when a
// failure verdict fires, including the event that triggered it and
// positioned frees, with the client's own object IDs.
func TestFlightWindowDump(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var (
		logMu sync.Mutex
		logs  []string
	)
	srv := server.New(server.Options{
		FlightWindow: 8,
		Logf: func(format string, args ...any) {
			logMu.Lock()
			logs = append(logs, fmt.Sprintf(format, args...))
			logMu.Unlock()
		},
	})
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	defer func() {
		srv.Shutdown(2 * time.Second)
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()

	cl, err := remote.Dial(l.Addr().String(), remote.Options{
		Prop:     "HasNext",
		GC:       monitor.GCCoenable,
		Creation: monitor.CreateEnable,
		Shards:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := heap.New()
	stale, it := h.Alloc("stale"), h.Alloc("it")
	if err := cl.EmitNamed("hasnexttrue", stale); err != nil {
		t.Fatal(err)
	}
	cl.Free(stale)
	h.Free(stale)
	if err := cl.EmitNamed("hasnexttrue", it); err != nil {
		t.Fatal(err)
	}
	if err := cl.EmitNamed("next", it); err != nil {
		t.Fatal(err)
	}
	if err := cl.EmitNamed("next", it); err != nil { // next without hasNext: error
		t.Fatal(err)
	}
	cl.Flush()
	cl.Close()

	logMu.Lock()
	defer logMu.Unlock()
	var dump string
	for _, line := range logs {
		if strings.Contains(line, "flight window:") {
			dump = line
			break
		}
	}
	if dump == "" {
		t.Fatalf("no flight-window dump in logs: %q", logs)
	}
	for _, want := range []string{"hasnexttrue", "next", "free"} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump %q lacks %q", dump, want)
		}
	}
	if !strings.Contains(dump, fmt.Sprintf("[%d]", it.ID())) {
		t.Errorf("dump %q lacks the failing object ID %d", dump, it.ID())
	}
}
