// Package registry is the weak-keyed live-object table behind the public
// rv frontend: it assigns stable monitoring identities (simulated-heap
// objects, the heap.Ref currency of every backend) to live Go objects, and
// turns the host garbage collector into the death signal that drives
// coenable-set monitor GC.
//
// Each registered Go object gets one heap.Object identity, held in a table
// keyed by the object's address and guarded by a weak.Pointer — the table
// never keeps a registered object alive. A runtime.AddCleanup hook fires
// after the Go GC collects the object and enqueues its identity on the
// death queue; the queue is drained at deterministic points chosen by the
// caller (package rv drains before dispatching, tests drain at pinned
// runtime.GC() cycles via Settle), and the drained identities are then
// freed through the monitoring runtime's async-free path exactly like an
// internal/wire protocol free: positioned in the event stream, then
// driving coenable-set GC.
//
// This is the in-process analogue of the paper's JVM weak references
// (§4.2): where the JVM clears a weak key and the indexing trees notice,
// Go runs a cleanup and the registry converts it into an explicit,
// stream-positioned death. The conversion is what restores determinism —
// a raw weak-reference flip could race queued events, but a queued death
// signal has a definite position in the trace.
//
// Allocator caveat: a pointer-free object smaller than 16 bytes lands in
// the Go tiny allocator, which packs unrelated objects into one block; the
// block — and with it the object's cleanup — survives until every tenant
// dies. Monitored objects should contain a pointer or be ≥ 16 bytes
// (every realistic iterator or collection is).
package registry

import (
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
	"weak"

	"rvgo/internal/heap"
)

// Stats are the table's lifetime counters.
type Stats struct {
	Registered uint64 // distinct objects given an identity
	Cleaned    uint64 // cleanups fired (objects collected by the Go GC)
	Delivered  uint64 // death signals handed out by Drain
	Live       int    // table entries whose object has not been cleaned up
	Pending    int    // deaths queued but not yet drained
}

// entry is one registered object: its monitoring identity and the weak
// guard that detects address reuse. It holds no strong reference to the
// Go object.
type entry struct {
	wp   weak.Pointer[byte]
	obj  *heap.Object
	addr uintptr
}

// Table maps live Go objects to monitoring identities. It is safe for
// concurrent use; cleanup hooks run on the runtime's cleanup goroutine and
// take the same lock.
type Table struct {
	mu         sync.Mutex
	heap       *heap.Heap
	entries    map[uintptr]*entry
	queue      []*heap.Object // cleanup-fired identities, in cleanup order
	registered uint64
	delivered  uint64
	cleaned    atomic.Uint64 // also read by Settle without the lock
	pending    atomic.Int64  // len(queue), readable without the lock
}

// New returns an empty table with its own identity heap.
func New() *Table {
	return &Table{heap: heap.New(), entries: map[uintptr]*entry{}}
}

// Heap returns the identity heap. Identities drained from the death queue
// are freed against it (heap.Free) when the death is applied.
func (t *Table) Heap() *heap.Heap { return t.heap }

// refOf extracts the identity-bearing pointer from a registered value.
// Pointer-shaped kinds (pointers, maps, channels) carry a stable heap
// address; everything else either has no address (a non-pointer boxed into
// the interface is a fresh allocation per call, so its identity would be
// meaningless) or an ambiguous one (two slices can share a data pointer).
func refOf(v any) (*byte, uintptr, error) {
	if v == nil {
		return nil, 0, fmt.Errorf("registry: cannot register nil")
	}
	rv := reflect.ValueOf(v)
	switch rv.Kind() {
	case reflect.Pointer, reflect.Map, reflect.Chan, reflect.UnsafePointer:
		if rv.IsNil() {
			return nil, 0, fmt.Errorf("registry: cannot register nil %s", rv.Type())
		}
		p := rv.UnsafePointer()
		return (*byte)(p), uintptr(p), nil
	}
	return nil, 0, fmt.Errorf("registry: %s is not a pointer, map or channel — parameter objects must have reference identity", rv.Type())
}

// Register returns the monitoring identity for a live Go object, creating
// one on first sight: the same object always maps to the same identity,
// and a dead object's address reused by a new allocation gets a fresh one
// (the weak guard detects the reuse). The table itself never keeps the
// object alive.
//
// The object must be heap-allocated: like runtime.AddCleanup and
// weak.Make, registering a pointer to a global crashes the runtime.
func (t *Table) Register(v any, label string) (*heap.Object, error) {
	bp, addr, err := refOf(v)
	if err != nil {
		return nil, err
	}

	t.mu.Lock()
	if e, ok := t.entries[addr]; ok {
		if e.wp.Value() == bp {
			obj := e.obj
			t.mu.Unlock()
			runtime.KeepAlive(v)
			return obj, nil
		}
		// The previous occupant of this address died but its cleanup has
		// not run yet; it keeps ownership of its queued death, we just
		// stop pointing at it.
		delete(t.entries, addr)
	}
	obj := t.heap.Alloc(label)
	e := &entry{wp: weak.Make(bp), obj: obj, addr: addr}
	t.entries[addr] = e
	t.registered++
	t.mu.Unlock()

	runtime.AddCleanup(bp, t.onCollected, e)
	runtime.KeepAlive(v)
	return obj, nil
}

// Lookup returns the identity of an already-registered live object, or nil.
func (t *Table) Lookup(v any) *heap.Object {
	bp, addr, err := refOf(v)
	if err != nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if e, ok := t.entries[addr]; ok && e.wp.Value() == bp {
		return e.obj
	}
	return nil
}

// onCollected is the runtime.AddCleanup hook: the Go GC has collected a
// registered object. The identity joins the death queue; the table entry
// is dropped only if it still describes this object (the address may
// already host a successor).
func (t *Table) onCollected(e *entry) {
	t.mu.Lock()
	if cur, ok := t.entries[e.addr]; ok && cur == e {
		delete(t.entries, e.addr)
	}
	t.queue = append(t.queue, e.obj)
	t.pending.Add(1)
	t.cleaned.Add(1)
	t.mu.Unlock()
}

// Drain removes and returns every queued death signal, in cleanup order.
// The returned identities are still alive; the caller owns their deaths
// and applies them through the runtime's free path (which calls heap.Free
// on this table's Heap at the positioned point). Callers serialize their
// drains against their own event dispatch — that choice of drain point is
// what pins deaths to trace positions.
func (t *Table) Drain() []*heap.Object {
	t.mu.Lock()
	q := t.queue
	t.queue = nil
	t.pending.Store(0)
	t.delivered += uint64(len(q))
	t.mu.Unlock()
	return q
}

// Pending returns the number of queued, undrained death signals.
func (t *Table) Pending() int { return int(t.pending.Load()) }

// Cleaned returns the number of cleanups fired since the table was
// created. Tests record it before dropping objects and Settle to the
// expected count — that is the "runtime.GC()-pinned" discipline.
func (t *Table) Cleaned() uint64 { return t.cleaned.Load() }

// Settle runs garbage-collection cycles until at least target cleanups
// have fired in total (Cleaned reaches target), or the timeout elapses.
// Cleanups run asynchronously after the collection that discovers the
// object, so one runtime.GC() is not enough; Settle loops GC and yields
// until the count arrives. It reports whether the target was reached.
func (t *Table) Settle(target uint64, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for i := 0; t.cleaned.Load() < target; i++ {
		if time.Now().After(deadline) {
			return false
		}
		runtime.GC()
		// The cleanup goroutine needs to run between our cycles.
		if i < 4 {
			runtime.Gosched()
		} else {
			time.Sleep(time.Millisecond)
		}
	}
	return true
}

// Stats returns a snapshot of the table counters.
func (t *Table) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return Stats{
		Registered: t.registered,
		Cleaned:    t.cleaned.Load(),
		Delivered:  t.delivered,
		Live:       len(t.entries),
		Pending:    len(t.queue),
	}
}
