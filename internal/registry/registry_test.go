package registry

import (
	"runtime"
	"testing"
	"time"

	"rvgo/internal/heap"
)

type thing struct {
	id  int
	pad [8]int64
}

// register boxes the allocation in a noinline helper so the test frame
// holds no hidden strong reference to it.
//
//go:noinline
func register(t *testing.T, tab *Table, id int, label string) *heap.Object {
	t.Helper()
	o := &thing{id: id}
	ref, err := tab.Register(o, label)
	if err != nil {
		t.Fatal(err)
	}
	return ref
}

func TestIdentityStable(t *testing.T) {
	tab := New()
	o := &thing{id: 1}
	a, err := tab.Register(o, "a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := tab.Register(o, "ignored")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same object mapped to two identities: %v, %v", a, b)
	}
	if got := tab.Lookup(o); got != a {
		t.Fatalf("Lookup = %v, want %v", got, a)
	}
	o2 := &thing{id: 2}
	c, err := tab.Register(o2, "c")
	if err != nil {
		t.Fatal(err)
	}
	if c == a || c.ID() == a.ID() {
		t.Fatalf("distinct objects share an identity: %v, %v", a, c)
	}
	st := tab.Stats()
	if st.Registered != 2 || st.Live != 2 || st.Pending != 0 {
		t.Errorf("stats = %+v, want Registered=2 Live=2 Pending=0", st)
	}
	runtime.KeepAlive(o)
	runtime.KeepAlive(o2)
}

func TestRejectsNonReference(t *testing.T) {
	tab := New()
	if _, err := tab.Register(nil, ""); err == nil {
		t.Error("Register(nil) succeeded")
	}
	if _, err := tab.Register(42, ""); err == nil {
		t.Error("Register(int) succeeded")
	}
	if _, err := tab.Register(thing{}, ""); err == nil {
		t.Error("Register(struct value) succeeded")
	}
	if _, err := tab.Register((*thing)(nil), ""); err == nil {
		t.Error("Register(typed nil) succeeded")
	}
	if _, err := tab.Register([]int{1}, ""); err == nil {
		t.Error("Register(slice) succeeded")
	}
	m := map[int]int{}
	if _, err := tab.Register(m, "m"); err != nil {
		t.Errorf("Register(map): %v", err)
	}
	runtime.KeepAlive(m)
}

func TestDeathSignal(t *testing.T) {
	tab := New()
	keep := &thing{id: 0}
	keepRef, err := tab.Register(keep, "keep")
	if err != nil {
		t.Fatal(err)
	}
	base := tab.Cleaned()
	dead := register(t, tab, 1, "dead")
	if !dead.Alive() {
		t.Fatal("identity dead before its object was collected")
	}
	if !tab.Settle(base+1, 5*time.Second) {
		t.Fatalf("cleanup did not fire; stats %+v", tab.Stats())
	}
	if got := tab.Pending(); got != 1 {
		t.Fatalf("Pending = %d, want 1", got)
	}
	q := tab.Drain()
	if len(q) != 1 || q[0] != dead {
		t.Fatalf("Drain = %v, want [%v]", q, dead)
	}
	// The drained identity is still alive: the caller positions the death.
	if !q[0].Alive() {
		t.Error("identity died before the caller applied the death")
	}
	tab.Heap().Free(q[0])
	if q[0].Alive() {
		t.Error("identity still alive after heap.Free")
	}
	if !keepRef.Alive() {
		t.Error("live object's identity died")
	}
	if tab.Pending() != 0 {
		t.Errorf("Pending after drain = %d, want 0", tab.Pending())
	}
	st := tab.Stats()
	if st.Delivered != 1 || st.Live != 1 {
		t.Errorf("stats = %+v, want Delivered=1 Live=1", st)
	}
	runtime.KeepAlive(keep)
}

func TestDeathOrderAndBatch(t *testing.T) {
	tab := New()
	base := tab.Cleaned()
	const n = 16
	for i := 0; i < n; i++ {
		register(t, tab, i, "x")
	}
	if !tab.Settle(base+n, 10*time.Second) {
		t.Fatalf("only %d/%d cleanups fired", tab.Cleaned()-base, n)
	}
	q := tab.Drain()
	if len(q) != n {
		t.Fatalf("Drain returned %d identities, want %d", len(q), n)
	}
	seen := map[uint64]bool{}
	for _, o := range q {
		if seen[o.ID()] {
			t.Fatalf("identity %d delivered twice", o.ID())
		}
		seen[o.ID()] = true
	}
	if tab.Stats().Live != 0 {
		t.Errorf("Live = %d, want 0", tab.Stats().Live)
	}
}

// TestAddressReuse hammers allocate/collect cycles: a reused address must
// never resurrect the previous occupant's identity.
func TestAddressReuse(t *testing.T) {
	tab := New()
	seen := map[uint64]bool{}
	for round := 0; round < 8; round++ {
		base := tab.Cleaned()
		const n = 64
		for i := 0; i < n; i++ {
			ref := register(t, tab, i, "r")
			if seen[ref.ID()] {
				t.Fatalf("round %d: identity %d issued twice", round, ref.ID())
			}
			seen[ref.ID()] = true
		}
		if !tab.Settle(base+n, 10*time.Second) {
			t.Fatalf("round %d: only %d/%d cleanups fired", round, tab.Cleaned()-base, n)
		}
		for _, o := range tab.Drain() {
			tab.Heap().Free(o)
		}
	}
	if st := tab.Stats(); st.Live != 0 || st.Registered != 8*64 {
		t.Errorf("stats = %+v, want Live=0 Registered=%d", st, 8*64)
	}
}
