// Package logic defines the formalism-independent base-monitor abstraction
// of the RV system (paper §2, Definition 8): a monitor is a state machine
// M = (S, E, C, ı, σ, γ) classifying finite traces into verdict categories.
//
// Each specification formalism (FSM, ERE, ptLTL, CFG) provides a Blueprint
// that manufactures immutable monitor States. Immutability is what makes
// the parametric algorithm's state copy Δ(θ') ← σ(Δ(max θ”⊑θ'), e) cheap
// and safe for every plugin: taking a new instance's initial state from a
// progenitor is a pointer copy.
package logic

import "fmt"

// Category is a verdict category (an element of C). Conventional values
// are Match, Fail and Unknown; the FSM plugin additionally uses state names
// as categories (so a handler can attach to reaching state "error"), and
// the LTL plugin uses Violation and Validation.
type Category string

// Conventional verdict categories.
const (
	Match      Category = "match"
	Fail       Category = "fail"
	Unknown    Category = "?"
	Violation  Category = "violation"
	Validation Category = "validation"
)

// State is an immutable monitor state. Step must not mutate the receiver;
// it returns the successor state for the given event symbol. Symbols are
// indices into the blueprint's alphabet.
type State interface {
	Step(sym int) State
	Category() Category
}

// Blueprint manufactures monitor states for one property formalism.
type Blueprint interface {
	// Alphabet returns the event names; a symbol is an index into it.
	Alphabet() []string
	// Start returns the initial state ı.
	Start() State
	// Categories returns all verdict categories the monitor can emit.
	Categories() []Category
}

// Graph is an explicit, explored finite state graph: states are integers,
// state 0 is initial, Next[s][a] is the successor (always defined — finite
// monitors are completed with sink states), Cat[s] the verdict category.
// It is the input to the coenable/enable static analyses.
type Graph struct {
	Alphabet []string
	Next     [][]int
	Cat      []Category

	// boxed holds one pre-converted State interface value per graph state
	// (see Box). When present, GraphState.Step returns boxed successors, so
	// a monitor step never allocates; without it every Step boxes a fresh
	// 16-byte GraphState into the State interface — the single largest
	// allocation source on the dispatch hot path.
	boxed []State
}

// Box precomputes the boxed State value for every graph state. It is not
// safe to call concurrently with Step; the spec compiler calls it once
// before any engine runs (engines sharing one Graph across shard workers
// then only read boxed). Box is idempotent and tolerates later growth of
// Next (states added after Box simply fall back to per-step boxing).
func (g *Graph) Box() {
	if len(g.boxed) == len(g.Next) {
		return
	}
	boxed := make([]State, len(g.Next))
	for i := range boxed {
		boxed[i] = GraphState{G: g, S: i}
	}
	g.boxed = boxed
}

// state returns the State for index i, preboxed when available.
func (g *Graph) state(i int) State {
	if i < len(g.boxed) {
		return g.boxed[i]
	}
	return GraphState{G: g, S: i}
}

// State returns the boxed State for index i, preboxed (allocation-free)
// when Box has run. Engines that store graph states as raw uint32 words
// use this to rebox a word for State-typed consumers (verdict handlers,
// dead-state checks, State()).
func (g *Graph) State(i int) State { return g.state(i) }

// NumStates returns the number of states in the graph.
func (g *Graph) NumStates() int { return len(g.Next) }

// Validate checks internal consistency of the graph.
func (g *Graph) Validate() error {
	if len(g.Next) != len(g.Cat) {
		return fmt.Errorf("logic: graph has %d transition rows but %d categories", len(g.Next), len(g.Cat))
	}
	for s, row := range g.Next {
		if len(row) != len(g.Alphabet) {
			return fmt.Errorf("logic: state %d has %d transitions, want %d", s, len(row), len(g.Alphabet))
		}
		for a, t := range row {
			if t < 0 || t >= len(g.Next) {
				return fmt.Errorf("logic: state %d symbol %d: bad successor %d", s, a, t)
			}
		}
	}
	return nil
}

// Explorable is implemented by blueprints with a finite reachable state
// space (FSM, ERE, ptLTL). The coenable analysis consumes the Graph. CFG
// monitors are not Explorable; the CFG plugin computes coenable sets from
// the grammar directly (paper §3, "CFG Example").
type Explorable interface {
	Blueprint
	// Explore enumerates the reachable state graph, failing if it would
	// exceed limit states.
	Explore(limit int) (*Graph, error)
}

// GraphState adapts a Graph into a State; the Graph itself then serves as
// an Explorable Blueprint via GraphBlueprint.
type GraphState struct {
	G *Graph
	S int
}

// Step implements State.
func (gs GraphState) Step(sym int) State { return gs.G.state(gs.G.Next[gs.S][sym]) }

// Category implements State.
func (gs GraphState) Category() Category { return gs.G.Cat[gs.S] }

// GraphBlueprint wraps an explicit Graph as a Blueprint.
type GraphBlueprint struct{ G *Graph }

// Alphabet implements Blueprint.
func (b GraphBlueprint) Alphabet() []string { return b.G.Alphabet }

// Start implements Blueprint.
func (b GraphBlueprint) Start() State { return b.G.state(0) }

// Categories implements Blueprint.
func (b GraphBlueprint) Categories() []Category {
	seen := map[Category]bool{}
	var out []Category
	for _, c := range b.G.Cat {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}

// Explore implements Explorable.
func (b GraphBlueprint) Explore(limit int) (*Graph, error) {
	if b.G.NumStates() > limit {
		return nil, fmt.Errorf("logic: graph has %d states, limit %d", b.G.NumStates(), limit)
	}
	return b.G, nil
}

// ExploreStates is a generic breadth-first exploration helper for plugins
// whose states are comparable values. key must canonicalize a State into a
// comparable identity.
func ExploreStates(bp Blueprint, key func(State) any, limit int) (*Graph, error) {
	alpha := bp.Alphabet()
	g := &Graph{Alphabet: alpha}
	index := map[any]int{}
	var states []State

	add := func(s State) (int, error) {
		k := key(s)
		if i, ok := index[k]; ok {
			return i, nil
		}
		if len(states) >= limit {
			return 0, fmt.Errorf("logic: explore exceeded %d states", limit)
		}
		i := len(states)
		index[k] = i
		states = append(states, s)
		g.Next = append(g.Next, make([]int, len(alpha)))
		g.Cat = append(g.Cat, s.Category())
		return i, nil
	}

	if _, err := add(bp.Start()); err != nil {
		return nil, err
	}
	for i := 0; i < len(states); i++ {
		for a := range alpha {
			succ := states[i].Step(a)
			j, err := add(succ)
			if err != nil {
				return nil, err
			}
			g.Next[i][a] = j
		}
	}
	return g, nil
}
