package logic_test

import (
	"testing"

	"rvgo/internal/logic"
)

// twoState is a manual blueprint used to exercise ExploreStates.
type twoState struct{ odd bool }

func (s twoState) Step(sym int) logic.State {
	if sym == 0 {
		return twoState{odd: !s.odd}
	}
	return s
}

func (s twoState) Category() logic.Category {
	if s.odd {
		return logic.Match
	}
	return logic.Unknown
}

type twoBP struct{}

func (twoBP) Alphabet() []string { return []string{"flip", "noop"} }
func (twoBP) Start() logic.State { return twoState{} }
func (twoBP) Categories() []logic.Category {
	return []logic.Category{logic.Unknown, logic.Match}
}

func TestExploreStates(t *testing.T) {
	g, err := logic.ExploreStates(twoBP{}, func(s logic.State) any { return s.(twoState).odd }, 10)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumStates() != 2 {
		t.Fatalf("states = %d", g.NumStates())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Graph agrees with direct stepping.
	s := logic.State(logic.GraphState{G: g, S: 0})
	d := logic.State(twoState{})
	for _, sym := range []int{0, 1, 0, 0, 1} {
		s = s.Step(sym)
		d = d.Step(sym)
		if s.Category() != d.Category() {
			t.Fatal("explored graph diverges")
		}
	}
}

func TestExploreLimit(t *testing.T) {
	if _, err := logic.ExploreStates(twoBP{}, func(s logic.State) any { return s.(twoState).odd }, 1); err == nil {
		t.Fatal("limit must be enforced")
	}
}

func TestGraphValidate(t *testing.T) {
	bad := &logic.Graph{
		Alphabet: []string{"a"},
		Next:     [][]int{{5}},
		Cat:      []logic.Category{logic.Unknown},
	}
	if err := bad.Validate(); err == nil {
		t.Fatal("out-of-range successor must fail validation")
	}
	short := &logic.Graph{
		Alphabet: []string{"a", "b"},
		Next:     [][]int{{0}},
		Cat:      []logic.Category{logic.Unknown},
	}
	if err := short.Validate(); err == nil {
		t.Fatal("short transition row must fail validation")
	}
}

func TestGraphBlueprint(t *testing.T) {
	g := &logic.Graph{
		Alphabet: []string{"a"},
		Next:     [][]int{{1}, {1}},
		Cat:      []logic.Category{logic.Unknown, logic.Match},
	}
	bp := logic.GraphBlueprint{G: g}
	if got := bp.Start().Step(0).Category(); got != logic.Match {
		t.Fatalf("category = %s", got)
	}
	cats := bp.Categories()
	if len(cats) != 2 {
		t.Fatalf("categories = %v", cats)
	}
	if _, err := bp.Explore(1); err == nil {
		t.Fatal("explore limit must apply")
	}
	if eg, err := bp.Explore(10); err != nil || eg != g {
		t.Fatal("explore must return the graph itself")
	}
}
