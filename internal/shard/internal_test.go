package shard

import (
	"testing"

	"rvgo/internal/heap"
	"rvgo/internal/monitor"
	"rvgo/internal/param"
	"rvgo/internal/props"
)

// TestTryDispatchBackpressure stalls a worker and fills its mailbox:
// TryDispatch must refuse exactly when the mailbox is full and accept
// again once the worker drains.
func TestTryDispatchBackpressure(t *testing.T) {
	spec, err := props.Build("HasNext")
	if err != nil {
		t.Fatal(err)
	}
	const depth = 4
	rt, err := New(spec, Options{
		Options:      monitor.Options{GC: monitor.GCCoenable, Creation: monitor.CreateEnable},
		Shards:       2,
		BatchSize:    1,
		MailboxDepth: depth,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	// Find an object routed to shard 0.
	h := heap.New()
	var it heap.Ref
	for {
		o := h.Alloc("i")
		if target, _ := rt.router.Route(0, param.Of(param.SetOf(0), o)); target == 0 {
			it = o
			break
		}
	}
	theta := param.Of(param.SetOf(0), it)

	// Stall worker 0 inside a control request; entered guarantees the
	// worker has taken the request off the mailbox.
	entered := make(chan struct{})
	gate := make(chan struct{})
	done := rt.workers[0].control(func(*monitor.Engine) {
		entered <- struct{}{}
		<-gate
	})
	<-entered

	// With BatchSize 1 every accepted event is one mailbox send: exactly
	// depth of them fit while the worker is stalled.
	for k := 0; k < depth; k++ {
		if !rt.TryDispatch(0, theta) {
			t.Fatalf("TryDispatch refused at %d/%d with mailbox space left", k, depth)
		}
	}
	if rt.TryDispatch(0, theta) {
		t.Fatal("TryDispatch accepted with a full mailbox and stalled worker")
	}
	// The other shard is idle and must still accept its own events.
	var other heap.Ref
	for {
		o := h.Alloc("j")
		if target, _ := rt.router.Route(0, param.Of(param.SetOf(0), o)); target == 1 {
			other = o
			break
		}
	}
	if !rt.TryDispatch(0, param.Of(param.SetOf(0), other)) {
		t.Fatal("a stalled shard must not block TryDispatch to other shards")
	}

	close(gate)
	<-done
	rt.Barrier()
	if !rt.TryDispatch(0, theta) {
		t.Fatal("TryDispatch must accept again after the worker drained")
	}
	rt.Barrier()
	if got := rt.Stats().Events; got != depth+2 {
		t.Fatalf("Events = %d, want %d", got, depth+2)
	}
}

// TestPartialBatchVisible: Stats and Barrier must flush a partially filled
// batch; events never linger in the open batch.
func TestPartialBatchVisible(t *testing.T) {
	spec, err := props.Build("HasNext")
	if err != nil {
		t.Fatal(err)
	}
	rt, err := New(spec, Options{
		Options:   monitor.Options{GC: monitor.GCCoenable, Creation: monitor.CreateEnable},
		Shards:    4,
		BatchSize: 1024, // far larger than the event count
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	h := heap.New()
	hnT, _ := spec.Symbol("hasnexttrue")
	for k := 0; k < 5; k++ {
		rt.Emit(hnT, h.Alloc("i"))
	}
	st := rt.Stats()
	if st.Events != 5 || st.Created != 5 {
		t.Fatalf("stats after partial batch = %+v, want Events=5 Created=5", st)
	}
}

// TestStatsAfterClose: `defer rt.Close()` must compose with reading the
// final counters in any order — Stats/ShardStats return the captured
// values, Barrier/Flush are no-ops, Close is idempotent.
func TestStatsAfterClose(t *testing.T) {
	spec, err := props.Build("HasNext")
	if err != nil {
		t.Fatal(err)
	}
	rt, err := New(spec, Options{
		Options: monitor.Options{GC: monitor.GCCoenable, Creation: monitor.CreateEnable},
		Shards:  4,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := heap.New()
	hnT, _ := spec.Symbol("hasnexttrue")
	for k := 0; k < 7; k++ {
		rt.Emit(hnT, h.Alloc("i"))
	}
	rt.Close()
	rt.Close() // idempotent
	rt.Barrier()
	rt.Flush()
	st := rt.Stats()
	if st.Events != 7 || st.Created != 7 {
		t.Fatalf("post-Close stats = %+v, want Events=7 Created=7", st)
	}
	if got := len(rt.ShardStats()); got != 4 {
		t.Fatalf("post-Close ShardStats has %d shards, want 4", got)
	}
}
