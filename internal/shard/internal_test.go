package shard

import (
	"strings"
	"testing"

	"rvgo/internal/ere"
	"rvgo/internal/heap"
	"rvgo/internal/logic"
	"rvgo/internal/monitor"
	"rvgo/internal/param"
	"rvgo/internal/props"
)

// TestTryDispatchBackpressure stalls a worker and fills its mailbox:
// TryDispatch must refuse exactly when the mailbox is full and accept
// again once the worker drains.
func TestTryDispatchBackpressure(t *testing.T) {
	spec, err := props.Build("HasNext")
	if err != nil {
		t.Fatal(err)
	}
	const depth = 4
	rt, err := New(spec, Options{
		Options:      monitor.Options{GC: monitor.GCCoenable, Creation: monitor.CreateEnable},
		Shards:       2,
		BatchSize:    1,
		MailboxDepth: depth,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	// Find an object routed to shard 0.
	h := heap.New()
	var it heap.Ref
	for {
		o := h.Alloc("i")
		if target, _ := rt.router.Route(0, param.Of(param.SetOf(0), o)); target == 0 {
			it = o
			break
		}
	}
	theta := param.Of(param.SetOf(0), it)

	// Stall worker 0 inside a control request; entered guarantees the
	// worker has taken the request off the mailbox.
	entered := make(chan struct{})
	gate := make(chan struct{})
	done := rt.workers[0].control(func(*monitor.Engine) {
		entered <- struct{}{}
		<-gate
	})
	<-entered

	// With BatchSize 1 every accepted event is one mailbox send: exactly
	// depth of them fit while the worker is stalled.
	for k := 0; k < depth; k++ {
		if !rt.TryDispatch(0, theta) {
			t.Fatalf("TryDispatch refused at %d/%d with mailbox space left", k, depth)
		}
	}
	if rt.TryDispatch(0, theta) {
		t.Fatal("TryDispatch accepted with a full mailbox and stalled worker")
	}
	// The other shard is idle and must still accept its own events.
	var other heap.Ref
	for {
		o := h.Alloc("j")
		if target, _ := rt.router.Route(0, param.Of(param.SetOf(0), o)); target == 1 {
			other = o
			break
		}
	}
	if !rt.TryDispatch(0, param.Of(param.SetOf(0), other)) {
		t.Fatal("a stalled shard must not block TryDispatch to other shards")
	}

	close(gate)
	<-done
	rt.Barrier()
	if !rt.TryDispatch(0, theta) {
		t.Fatal("TryDispatch must accept again after the worker drained")
	}
	rt.Barrier()
	if got := rt.Stats().Events; got != depth+2 {
		t.Fatalf("Events = %d, want %d", got, depth+2)
	}
}

// TestTryDispatchBroadcastAllOrNothing: a broadcast event (one binding no
// parameters) offered while any shard's mailbox is full must be refused
// everywhere — never half-delivered — and accepted once the stalled shard
// drains.
func TestTryDispatchBroadcastAllOrNothing(t *testing.T) {
	spec := propMixInternalSpec(t)
	const depth = 2
	rt, err := New(spec, Options{
		Options:      monitor.Options{GC: monitor.GCCoenable, Creation: monitor.CreateEnable},
		Shards:       3,
		BatchSize:    1,
		MailboxDepth: depth,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	tick, ok := spec.Symbol("tick")
	if !ok {
		t.Fatal("no tick symbol")
	}
	if _, broadcast := rt.router.Route(tick, param.Empty()); !broadcast {
		t.Fatal("tick must be a broadcast event")
	}

	// Stall worker 1 and fill its mailbox through broadcasts.
	entered := make(chan struct{})
	gate := make(chan struct{})
	done := rt.workers[1].control(func(*monitor.Engine) {
		entered <- struct{}{}
		<-gate
	})
	<-entered
	for k := 0; k < depth; k++ {
		if !rt.TryDispatch(tick, param.Empty()) {
			t.Fatalf("broadcast refused at %d/%d with space left everywhere", k, depth)
		}
	}
	if rt.TryDispatch(tick, param.Empty()) {
		t.Fatal("broadcast accepted with shard 1's mailbox full")
	}
	before := rt.events.Load()
	close(gate)
	<-done
	rt.Barrier()
	if !rt.TryDispatch(tick, param.Empty()) {
		t.Fatal("broadcast must be accepted after the stalled shard drained")
	}
	rt.Barrier()
	if got := rt.events.Load(); got != before+1 {
		t.Fatalf("events = %d, want %d (refused broadcast must not count or half-deliver)", got, before+1)
	}
	// Every shard's engine must have seen the same number of events: the
	// refused broadcast must not have reached a subset of shards.
	st := rt.ShardStats()
	for i, s := range st {
		if s.Events != st[0].Events {
			t.Fatalf("shard %d saw %d events, shard 0 saw %d: broadcast was half-delivered", i, s.Events, st[0].Events)
		}
	}
}

// propMixInternalSpec builds a spec with a propositional (broadcast) event
// for the internal tests: "tick" binds no parameters, so the router must
// broadcast it.
func propMixInternalSpec(t testing.TB) *monitor.Spec {
	t.Helper()
	alphabet := []string{"open", "tick", "close"}
	bp, err := ere.Compile("open (tick | close)* close", alphabet)
	if err != nil {
		t.Fatal(err)
	}
	s := &monitor.Spec{
		Name:   "PropMixInternal",
		Params: []string{"f"},
		Events: []monitor.EventDef{
			{Name: "open", Params: param.SetOf(0)},
			{Name: "tick", Params: 0},
			{Name: "close", Params: param.SetOf(0)},
		},
		BP:   bp,
		Goal: []logic.Category{logic.Match},
	}
	if err := s.Analyze(); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestDispatchAfterClosePanics: dispatching on a closed runtime is a
// programming error and must fail fast with an attributable panic, for
// both the blocking and the non-blocking entry points.
func TestDispatchAfterClosePanics(t *testing.T) {
	spec, err := props.Build("HasNext")
	if err != nil {
		t.Fatal(err)
	}
	h := heap.New()
	theta := param.Of(param.SetOf(0), h.Alloc("i"))
	for _, tc := range []struct {
		name string
		call func(rt *Runtime)
	}{
		{"Dispatch", func(rt *Runtime) { rt.Dispatch(0, theta) }},
		{"TryDispatch", func(rt *Runtime) { rt.TryDispatch(0, theta) }},
		{"Emit", func(rt *Runtime) { rt.Emit(0, h.Alloc("j")) }},
	} {
		rt, err := New(spec, Options{
			Options: monitor.Options{GC: monitor.GCCoenable, Creation: monitor.CreateEnable},
			Shards:  2,
		})
		if err != nil {
			t.Fatal(err)
		}
		rt.Close()
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Errorf("%s after Close did not panic", tc.name)
					return
				}
				msg, ok := r.(string)
				if !ok || !strings.Contains(msg, "Dispatch after Close") {
					t.Errorf("%s after Close panicked with %v, want a 'Dispatch after Close' message", tc.name, r)
				}
			}()
			tc.call(rt)
		}()
	}
}

// TestPartialBatchVisible: Stats and Barrier must flush a partially filled
// batch; events never linger in the open batch.
func TestPartialBatchVisible(t *testing.T) {
	spec, err := props.Build("HasNext")
	if err != nil {
		t.Fatal(err)
	}
	rt, err := New(spec, Options{
		Options:   monitor.Options{GC: monitor.GCCoenable, Creation: monitor.CreateEnable},
		Shards:    4,
		BatchSize: 1024, // far larger than the event count
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	h := heap.New()
	hnT, _ := spec.Symbol("hasnexttrue")
	for k := 0; k < 5; k++ {
		rt.Emit(hnT, h.Alloc("i"))
	}
	st := rt.Stats()
	if st.Events != 5 || st.Created != 5 {
		t.Fatalf("stats after partial batch = %+v, want Events=5 Created=5", st)
	}
}

// TestStatsAfterClose: `defer rt.Close()` must compose with reading the
// final counters in any order — Stats/ShardStats return the captured
// values, Barrier/Flush are no-ops, Close is idempotent.
func TestStatsAfterClose(t *testing.T) {
	spec, err := props.Build("HasNext")
	if err != nil {
		t.Fatal(err)
	}
	rt, err := New(spec, Options{
		Options: monitor.Options{GC: monitor.GCCoenable, Creation: monitor.CreateEnable},
		Shards:  4,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := heap.New()
	hnT, _ := spec.Symbol("hasnexttrue")
	for k := 0; k < 7; k++ {
		rt.Emit(hnT, h.Alloc("i"))
	}
	rt.Close()
	rt.Close() // idempotent
	rt.Barrier()
	rt.Flush()
	st := rt.Stats()
	if st.Events != 7 || st.Created != 7 {
		t.Fatalf("post-Close stats = %+v, want Events=7 Created=7", st)
	}
	if got := len(rt.ShardStats()); got != 4 {
		t.Fatalf("post-Close ShardStats has %d shards, want 4", got)
	}
}
