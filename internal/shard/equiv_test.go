package shard_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"rvgo/internal/dacapo"
	"rvgo/internal/ere"
	"rvgo/internal/heap"
	"rvgo/internal/logic"
	"rvgo/internal/monitor"
	"rvgo/internal/param"
	"rvgo/internal/props"
	"rvgo/internal/shard"
)

// gstep is one step of a backend-independent random trace: an event over
// object ordinals, or (sym == -1) the death of ordinal objs[0]. Ordinals
// are mapped to fresh heap objects per replay, so the same trace can drive
// any number of backends with identical per-slice event/death sequences.
type gstep struct {
	sym  int
	objs []int
}

// genTrace generates a random trace for an arbitrary spec: per-parameter
// pools of live ordinals, random events over live objects, random object
// births and deaths. Events only ever mention live objects, as in a real
// program.
func genTrace(rng *rand.Rand, spec *monitor.Spec, n int) []gstep {
	nParams := len(spec.Params)
	pools := make([][]int, nParams)
	next := 0
	alloc := func(p int) {
		pools[p] = append(pools[p], next)
		next++
	}
	for p := 0; p < nParams; p++ {
		alloc(p)
		alloc(p)
	}
	var steps []gstep
	for len(steps) < n {
		switch r := rng.Float64(); {
		case r < 0.08: // a parameter object dies
			p := rng.Intn(nParams)
			if len(pools[p]) <= 1 {
				continue
			}
			i := rng.Intn(len(pools[p]))
			o := pools[p][i]
			pools[p] = append(pools[p][:i], pools[p][i+1:]...)
			steps = append(steps, gstep{sym: -1, objs: []int{o}})
		case r < 0.2: // a fresh object appears
			alloc(rng.Intn(nParams))
		default:
			sym := rng.Intn(len(spec.Events))
			ps := spec.Events[sym].Params.Members()
			objs := make([]int, len(ps))
			for k, p := range ps {
				objs[k] = pools[p][rng.Intn(len(pools[p]))]
			}
			steps = append(steps, gstep{sym: sym, objs: objs})
		}
	}
	return steps
}

// result is one backend's observable outcome: per-slice verdict sequences
// (keyed by the instance rendered with object labels, which are stable
// across replays) and the settled counters.
type result struct {
	verdicts map[string][]string
	stats    monitor.Stats
}

// recordVerdicts returns a verdict handler appending "sym/category" to the
// slice's sequence. The handler relies on the backend serializing verdict
// delivery (the sequential engine trivially, the sharded runtime via its
// verdict mutex).
func recordVerdicts(spec *monitor.Spec, into map[string][]string) func(monitor.Verdict) {
	return func(v monitor.Verdict) {
		k := v.Inst.Format(spec.Params)
		into[k] = append(into[k], fmt.Sprintf("%d/%s", v.Sym, v.Cat))
	}
}

// replayInto feeds a gstep trace into a backend, allocating fresh objects
// labeled prefix+ordinal and barriering before every death so the backend
// observes deaths at their trace positions. useTry exercises the
// non-blocking path with a retry loop (order-preserving).
func replayInto(t testing.TB, rt monitor.Runtime, h *heap.Heap, steps []gstep, prefix string, useTry bool) {
	t.Helper()
	spec := rt.Spec()
	objs := map[int]*heap.Object{}
	get := func(o int) *heap.Object {
		v, ok := objs[o]
		if !ok {
			v = h.Alloc(fmt.Sprintf("%so%d", prefix, o))
			objs[o] = v
		}
		return v
	}
	srt, _ := rt.(*shard.Runtime)
	for _, st := range steps {
		if st.sym < 0 {
			rt.Barrier()
			h.Free(get(st.objs[0]))
			continue
		}
		vals := make([]heap.Ref, len(st.objs))
		for k, o := range st.objs {
			vals[k] = get(o)
		}
		if useTry && srt != nil {
			theta := param.Of(spec.Events[st.sym].Params, vals...)
			for !srt.TryDispatch(st.sym, theta) {
				runtime.Gosched()
			}
		} else {
			rt.Emit(st.sym, vals...)
		}
	}
}

// execTrace runs one backend over a trace. shards == 0 selects the
// sequential engine (the oracle); otherwise the sharded runtime.
func execTrace(t testing.TB, spec *monitor.Spec, gc monitor.GCPolicy, shards, batch int, steps []gstep, useTry bool) result {
	t.Helper()
	verdicts := map[string][]string{}
	opts := monitor.Options{GC: gc, Creation: monitor.CreateEnable, OnVerdict: recordVerdicts(spec, verdicts)}
	var rt monitor.Runtime
	var err error
	if shards == 0 {
		rt, err = monitor.New(spec, opts)
	} else {
		rt, err = shard.New(spec, shard.Options{Options: opts, Shards: shards, BatchSize: batch})
	}
	if err != nil {
		t.Fatal(err)
	}
	replayInto(t, rt, heap.New(), steps, "", useTry)
	rt.Flush()
	st := rt.Stats()
	rt.Close()
	return result{verdicts: verdicts, stats: st}
}

// compareResults checks per-slice verdict sequences and the settled
// counters. PeakLive is excluded: the sharded runtime sums per-shard peaks,
// an upper bound on the sequential peak.
func compareResults(t *testing.T, name string, oracle, got result) {
	t.Helper()
	a, b := oracle.stats, got.stats
	a.PeakLive, b.PeakLive = 0, 0
	if a != b {
		t.Errorf("%s: stats diverge:\n  sequential %+v\n  sharded    %+v", name, a, b)
	}
	if !reflect.DeepEqual(oracle.verdicts, got.verdicts) {
		t.Errorf("%s: per-slice verdicts diverge:\n  sequential %v\n  sharded    %v",
			name, oracle.verdicts, got.verdicts)
	}
}

// propMixSpec exercises the propositional-event dispatch path: tick binds
// no parameters, so the router must broadcast it and every shard's ⊥-slice
// and monitors observe it.
func propMixSpec(t testing.TB) *monitor.Spec {
	t.Helper()
	alphabet := []string{"open", "tick", "close"}
	bp, err := ere.Compile("open (tick | close)* close", alphabet)
	if err != nil {
		t.Fatal(err)
	}
	s := &monitor.Spec{
		Name:   "PropMix",
		Params: []string{"f"},
		Events: []monitor.EventDef{
			{Name: "open", Params: param.SetOf(0)},
			{Name: "tick", Params: 0},
			{Name: "close", Params: param.SetOf(0)},
		},
		BP:   bp,
		Goal: []logic.Category{logic.Match},
	}
	if err := s.Analyze(); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestShardEquivalenceAllProps is the core oracle: for every property in
// the library (plus a spec with a propositional event), random traces with
// mid-trace object deaths produce the same per-slice verdict sequences and
// the same settled counters on the sharded runtime (N ∈ {1,2,4,8}) as on
// the sequential engine, under all three GC policies.
func TestShardEquivalenceAllProps(t *testing.T) {
	gcs := []monitor.GCPolicy{monitor.GCNone, monitor.GCAllDead, monitor.GCCoenable}
	seeds := 4
	if testing.Short() {
		seeds = 2
	}
	specs := map[string]*monitor.Spec{"PropMix": propMixSpec(t)}
	names := append([]string{"PropMix"}, props.Names()...)
	for _, name := range names {
		spec, ok := specs[name]
		if !ok {
			var err error
			spec, err = props.Build(name)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
		for seed := 0; seed < seeds; seed++ {
			rng := rand.New(rand.NewSource(int64(seed)))
			steps := genTrace(rng, spec, 300)
			for _, gc := range gcs {
				oracle := execTrace(t, spec, gc, 0, 0, steps, false)
				for _, n := range []int{1, 2, 4, 8} {
					got := execTrace(t, spec, gc, n, 4, steps, n == 4)
					compareResults(t, fmt.Sprintf("%s/seed%d/gc=%s/shards=%d", name, seed, gc, n), oracle, got)
				}
			}
		}
	}
}

// TestShardEquivalenceDaCapo replays recorded DaCapo workload traces —
// instrumentation events and object deaths in program order — through the
// property adapters into both backends and requires identical verdicts and
// counters.
func TestShardEquivalenceDaCapo(t *testing.T) {
	benches := []struct {
		name  string
		scale float64
	}{
		{"avrora", 0.02},
		{"bloat", 0.002},
		{"xalan", 1.0},
	}
	gcs := []monitor.GCPolicy{monitor.GCNone, monitor.GCAllDead, monitor.GCCoenable}
	shardCounts := []int{1, 2, 4, 8}
	if testing.Short() {
		benches = benches[:1]
		shardCounts = []int{4}
	}
	for _, b := range benches {
		p, ok := dacapo.Get(b.name)
		if !ok {
			t.Fatalf("no profile %q", b.name)
		}
		tr, err := p.Record(b.scale)
		if err != nil {
			t.Fatal(err)
		}
		for _, propName := range props.DaCapoProperties() {
			spec, err := props.Build(propName)
			if err != nil {
				t.Fatal(err)
			}
			runOne := func(gc monitor.GCPolicy, shards int) result {
				verdicts := map[string][]string{}
				opts := monitor.Options{GC: gc, Creation: monitor.CreateEnable, OnVerdict: recordVerdicts(spec, verdicts)}
				var rt monitor.Runtime
				var err error
				if shards == 0 {
					rt, err = monitor.New(spec, opts)
				} else {
					rt, err = shard.New(spec, shard.Options{Options: opts, Shards: shards})
				}
				if err != nil {
					t.Fatal(err)
				}
				sink, err := dacapo.Adapt(propName, rt)
				if err != nil {
					t.Fatal(err)
				}
				tr.Replay(heap.New(), sink, rt.Barrier)
				rt.Flush()
				st := rt.Stats()
				rt.Close()
				return result{verdicts: verdicts, stats: st}
			}
			for _, gc := range gcs {
				oracle := runOne(gc, 0)
				if oracle.stats.Events == 0 {
					t.Fatalf("%s/%s: trace drove no events", b.name, propName)
				}
				for _, n := range shardCounts {
					got := runOne(gc, n)
					compareResults(t, fmt.Sprintf("%s/%s/gc=%s/shards=%d", b.name, propName, gc, n), oracle, got)
				}
			}
		}
	}
}

// TestShardParallelProducers is the randomized multi-goroutine dispatch
// oracle (run under -race in CI): several producers with disjoint object
// families feed one sharded runtime concurrently, mixing Dispatch and
// TryDispatch. Slices of disjoint families are independent, so the merged
// outcome must equal the sequential engine processing the producers' traces
// back to back.
func TestShardParallelProducers(t *testing.T) {
	spec, err := props.Build("UnsafeIter")
	if err != nil {
		t.Fatal(err)
	}
	const producers = 4
	rounds := 6
	if testing.Short() {
		rounds = 2
	}
	for seed := 0; seed < rounds; seed++ {
		traces := make([][]gstep, producers)
		for g := range traces {
			rng := rand.New(rand.NewSource(int64(1000*seed + g)))
			traces[g] = genTrace(rng, spec, 400)
		}

		// Sequential oracle: the concatenation, families labeled apart.
		oracleVerdicts := map[string][]string{}
		eng, err := monitor.New(spec, monitor.Options{
			GC: monitor.GCCoenable, Creation: monitor.CreateEnable,
			OnVerdict: recordVerdicts(spec, oracleVerdicts),
		})
		if err != nil {
			t.Fatal(err)
		}
		oh := heap.New()
		for g, steps := range traces {
			replayInto(t, eng, oh, steps, fmt.Sprintf("g%d.", g), false)
		}
		eng.Flush()
		oracle := result{verdicts: oracleVerdicts, stats: eng.Stats()}

		// Concurrent run: one runtime, one producer goroutine per family.
		gotVerdicts := map[string][]string{}
		rt, err := shard.New(spec, shard.Options{
			Options: monitor.Options{
				GC: monitor.GCCoenable, Creation: monitor.CreateEnable,
				OnVerdict: recordVerdicts(spec, gotVerdicts),
			},
			Shards:    4,
			BatchSize: 8,
		})
		if err != nil {
			t.Fatal(err)
		}
		sh := heap.New()
		var wg sync.WaitGroup
		for g, steps := range traces {
			wg.Add(1)
			go func(g int, steps []gstep) {
				defer wg.Done()
				replayInto(t, rt, sh, steps, fmt.Sprintf("g%d.", g), g%2 == 1)
			}(g, steps)
		}
		wg.Wait()
		rt.Flush()
		got := result{verdicts: gotVerdicts, stats: rt.Stats()}
		rt.Close()
		compareResults(t, fmt.Sprintf("parallel/seed%d", seed), oracle, got)
	}
}
