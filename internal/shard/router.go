package shard

import (
	"fmt"

	"rvgo/internal/monitor"
	"rvgo/internal/param"
)

// Router decides which shard processes an event. It exploits the slicing
// semantics (paper §2): trace slices for incompatible parameter instances
// are independent, so the monitor store can be partitioned — provided every
// event reaches every shard whose monitors its slice touches.
//
// The partition key is a spec-level pivot parameter p, chosen so that every
// monitor-creating event binds p (see NewRouter). Under the enable-set
// creation strategy every monitor instance is then guaranteed to bind p:
//
//   - an instance created from ⊥ is the instance of a creation event, and
//     every creation event binds p;
//   - an instance created by a join θ” ⊔ θ extends its progenitor θ”,
//     which binds p by induction.
//
// Because an instance's binding of p never changes, hashing the pivot
// object gives each monitor a stable home shard. Events binding p route to
// that shard; events not binding p (including propositional events) are
// broadcast to every shard, where they can only reach monitors agreeing
// with them — exactly the monitors the sequential engine would dispatch
// them to. Creation joins stay shard-local: a progenitor compatible with a
// pivot-binding event binds the same pivot object, hence lives on the same
// shard, and a join triggered by a broadcast event finds its progenitor on
// whichever single shard owns it. The fresh-object creation guard is also
// preserved: any prior event relevant to a creation on shard k either bound
// the same pivot object (routed to k) or no pivot at all (broadcast), so
// shard k's seen-records contain every record the guard consults.
type Router struct {
	shards int
	pivot  int    // parameter index, or -1 when unshardable (single shard)
	binds  []bool // per symbol: does D(sym) contain the pivot?
}

// NewRouter analyzes the spec and selects the pivot parameter. Candidate
// pivots are the parameters bound by every creation event (an event e with
// ∅ ∈ ENABLE(e), per the enable-set analysis of internal/coenable): that is
// what makes every monitor instance bind the pivot. Among candidates the
// one appearing in the most event domains wins — each covered event routes
// to a single shard instead of broadcasting. If no candidate exists the
// spec is unshardable and the router degenerates to a single shard.
func NewRouter(spec *monitor.Spec, shards int) (*Router, error) {
	an, err := spec.Analysis()
	if err != nil {
		return nil, err
	}
	if shards < 1 {
		return nil, fmt.Errorf("shard: %d shards", shards)
	}
	cand := param.Set(1<<uint(len(spec.Params))) - 1
	for sym := range spec.Events {
		if an.Creation[sym] {
			cand = cand.Inter(spec.Events[sym].Params)
		}
	}
	pivot, bestCover := -1, -1
	for _, p := range cand.Members() {
		cover := 0
		for _, ev := range spec.Events {
			if ev.Params.Has(p) {
				cover++
			}
		}
		if cover > bestCover {
			pivot, bestCover = p, cover
		}
	}
	if pivot < 0 {
		shards = 1
	}
	r := &Router{shards: shards, pivot: pivot, binds: make([]bool, len(spec.Events))}
	for sym, ev := range spec.Events {
		r.binds[sym] = pivot >= 0 && ev.Params.Has(pivot)
	}
	return r, nil
}

// Shards returns the effective shard count (1 when the spec is
// unshardable, regardless of what was requested).
func (r *Router) Shards() int { return r.shards }

// Pivot returns the pivot parameter index, or -1 when the spec is
// unshardable.
func (r *Router) Pivot() int { return r.pivot }

// Route returns the target shard for an event, or broadcast=true when the
// event must go to every shard (it does not bind the pivot).
func (r *Router) Route(sym int, theta param.Instance) (target int, broadcast bool) {
	if r.shards == 1 {
		return 0, false
	}
	if !r.binds[sym] {
		return 0, true
	}
	return int(mix(theta.Value(r.pivot).ID()) % uint64(r.shards)), false
}

// Mix exposes the router's ID-mixing function. Replay drivers that
// partition recorded events by pivot object ID (internal/trace) must use
// the very same hash, so a parallel retroactive replay partitions slices
// exactly as the online sharded runtime would have.
func Mix(id uint64) uint64 { return mix(id) }

// mix is the splitmix64 finalizer: object IDs are sequential, and the
// router needs them spread uniformly over shards.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}
