package shard_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"rvgo/internal/heap"
	"rvgo/internal/monitor"
	"rvgo/internal/props"
	"rvgo/internal/shard"
)

// TestShardArenaRaceStress hammers a 4-shard runtime with concurrent
// producers interleaving Dispatch and FreeAsync while a tiny sweep
// interval keeps the workers collecting and recycling arena slots
// mid-traffic, and an observer goroutine snapshots Stats/ArenaStats
// through the control rendezvous the whole time. Built to run under
// -race (which also arms the pool poison checks): the schedule is the
// test. The settled assertions prove per-shard arena ownership — each
// worker's slab arena accounts exactly the monitors that worker owns,
// and recycling actually happened under concurrency (the high-water
// mark stays well below the total monitor count).
func TestShardArenaRaceStress(t *testing.T) {
	spec, err := props.Build("UnsafeIter")
	if err != nil {
		t.Fatal(err)
	}
	rt, err := shard.New(spec, shard.Options{
		Options: monitor.Options{
			GC:       monitor.GCCoenable,
			Creation: monitor.CreateEnable,
			// Sweep constantly: slot recycling must race the producers.
			SweepInterval: 16,
		},
		Shards: 4, BatchSize: 2, MailboxDepth: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	create, _ := spec.Symbol("create")
	update, _ := spec.Symbol("update")
	next, _ := spec.Symbol("next")

	h := heap.New()
	const producers = 8
	const rounds = 250

	// Observer: concurrent counter/occupancy snapshots must be safe
	// against dispatch, deaths and sweeps (they ride the same rendezvous
	// the workers use for Flush).
	stop := make(chan struct{})
	var obs sync.WaitGroup
	obs.Add(1)
	go func() {
		defer obs.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			rt.Stats()
			for i, ast := range rt.ArenaStats() {
				if ast.Live < 0 || ast.Live > ast.Cap {
					t.Errorf("shard %d arena snapshot inconsistent: %+v", i, ast)
				}
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	var died sync.WaitGroup
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			c := h.Alloc(fmt.Sprintf("c%d", p))
			for r := 0; r < rounds; r++ {
				if r > 0 && r%16 == 0 {
					// Rotate the collection: its death must flag and
					// reclaim every monitor still pinned to it.
					old := c
					died.Add(1)
					rt.FreeAsync(func() { h.Free(old); died.Done() }, old)
					c = h.Alloc(fmt.Sprintf("c%d_%d", p, r))
				}
				it := h.Alloc(fmt.Sprintf("i%d_%d", p, r))
				rt.Emit(create, c, it)
				rt.Emit(update, c)
				rt.Emit(next, it) // the UNSAFEITER match
				died.Add(1)
				rt.FreeAsync(func() { h.Free(it); died.Done() }, it)
			}
			died.Add(1)
			rt.FreeAsync(func() { h.Free(c); died.Done() }, c)
		}(p)
	}
	wg.Wait()
	rt.Barrier()

	waitDone := make(chan struct{})
	go func() { died.Wait(); close(waitDone) }()
	select {
	case <-waitDone:
	case <-time.After(30 * time.Second):
		t.Fatal("not every FreeAsync die ran: rendezvous deadlock?")
	}
	close(stop)
	obs.Wait()

	rt.Flush()
	shardStats := rt.ShardStats()
	arenaStats := rt.ArenaStats()
	st := rt.Stats()

	// Per-shard arena ownership: each worker's arena accounts exactly the
	// monitors that worker still holds — no record leaked into or out of
	// another shard's slabs.
	var high int
	for i := range shardStats {
		if arenaStats[i].Live != int(shardStats[i].Live) {
			t.Errorf("shard %d: arena live %d != engine live %d",
				i, arenaStats[i].Live, shardStats[i].Live)
		}
		high += arenaStats[i].HighWater
	}

	if want := uint64(producers * rounds * 3); st.Events != want {
		t.Errorf("Events = %d, want %d", st.Events, want)
	}
	// Every parameter object died and the flush expunged, so coenable GC
	// must have reclaimed the whole population...
	if st.Live != 0 || st.Created != st.Collected {
		t.Errorf("population not reclaimed: %+v", st)
	}
	// ...and it must have been reclaiming all along: had slots only been
	// freed at the final flush, the high-water mark would equal the full
	// monitor count.
	if high >= producers*rounds {
		t.Errorf("arena high water %d, want < %d (no mid-run slot recycling?)", high, producers*rounds)
	}
	if live, _, _ := h.Stats(); live != 0 {
		t.Errorf("heap live = %d after all deaths", live)
	}
	rt.Close()
}
