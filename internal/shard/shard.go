// Package shard is the concurrent monitoring runtime: it partitions the
// parametric monitor store across N single-threaded monitor.Engine workers
// and routes events to shards by a stable hash of their parameter bindings.
//
// The paper's engine is inherently sequential — one event at a time through
// one store, with expunging amortized over operations. But its slicing
// semantics make the store shardable: trace slices for incompatible
// parameter instances never interact, so monitors can be partitioned by a
// pivot parameter's object (see Router) and each partition monitored by an
// unmodified sequential engine, preserving the paper's lazy collection
// discipline — per-shard indexing trees, per-shard sweeps, no cross-shard
// locking. Events whose bindings do not determine a shard are broadcast;
// they reach the one shard holding their monitors and are no-ops elsewhere.
//
// Ingestion is batched: producers append to a per-shard open batch and ship
// full batches through a bounded mailbox, amortizing channel traffic the
// same way the paper amortizes expunging. Dispatch blocks when a mailbox is
// full (backpressure); TryDispatch refuses instead. Because each slice's
// events flow through one producer into one FIFO mailbox and one worker,
// per-slice verdict ordering stays deterministic; cross-slice verdict
// interleaving is not (it never was observable — slices are independent).
//
// The Runtime implements monitor.Runtime, so cmd/rvmon, cmd/rvbench and the
// evaluation harness run either backend behind one interface. Merged
// counters match the sequential engine exactly on the same per-slice event
// and death sequence (see the equivalence tests); PeakLive is the one
// exception — it sums per-shard peaks, an upper bound on the global peak.
//
// "Same death sequence" is the caller's obligation: liveness is read when
// an event is processed, not when it is dispatched, so a death racing the
// mailboxes can be observed before queued events that preceded it. That
// only ever collects monitors earlier — but verdicts still in flight inside
// the mailbox window at death time can be suppressed with them. Callers
// that need exact trace fidelity Barrier before each death (cmd/rvmon's
// "free", internal/eval's heap free hook, the oracle tests); callers whose
// event sources keep objects alive until their events are processed (the
// natural contract with real weak references) get fidelity for free.
package shard

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"rvgo/internal/arena"
	"rvgo/internal/heap"
	"rvgo/internal/metrics"
	"rvgo/internal/monitor"
	"rvgo/internal/param"
)

// Options configures a sharded runtime. The embedded monitor.Options are
// applied to every shard engine; OnVerdict is serialized across shards, so
// handlers need not be safe for concurrent use.
type Options struct {
	monitor.Options
	// Shards is the number of worker engines (default: GOMAXPROCS). The
	// effective count may be lower: 1 when the spec is unshardable.
	Shards int
	// BatchSize is the number of events shipped to a shard per mailbox
	// send (default 64).
	BatchSize int
	// MailboxDepth is the number of batches a shard mailbox buffers before
	// Dispatch blocks (default 16).
	MailboxDepth int
	// MetricsRegistry, when non-nil, receives the shard-layer telemetry
	// (mailbox depth, batch shapes, broadcasts, refusals) under
	// MetricsLabel as the tenant (default: the spec name). Engine-layer
	// telemetry is separate: set the embedded Options.Metrics and every
	// shard engine delta-publishes into that one shared series.
	MetricsRegistry *metrics.Registry
	// MetricsLabel is the tenant label for MetricsRegistry series.
	MetricsLabel string
}

// Runtime is the sharded monitoring runtime for one specification.
type Runtime struct {
	spec    *monitor.Spec
	router  *Router
	workers []*worker
	events  atomic.Uint64 // Dispatch calls, the merged Stats.Events
	// metric series (nil-safe when telemetry is off).
	broadcasts *metrics.Counter
	refusals   *metrics.Counter
	vmu        sync.Mutex // serializes OnVerdict across shards
	fmu        sync.Mutex // serializes FreeAsync broadcasts (see Free)
	wg         sync.WaitGroup
	closed     bool
	final      []monitor.Stats // per-shard counters captured at Close
}

var _ monitor.Runtime = (*Runtime)(nil)

// New builds a sharded runtime. The creation strategy must be CreateEnable
// when more than one shard is requested: the enable-set analysis is what
// guarantees every monitor instance binds the routing pivot (CreateFull
// materializes instances for arbitrary event subsets, which cannot be
// partitioned without cross-shard joins).
func New(spec *monitor.Spec, opts Options) (*Runtime, error) {
	if opts.Shards <= 0 {
		opts.Shards = runtime.GOMAXPROCS(0)
	}
	if opts.BatchSize <= 0 {
		opts.BatchSize = 64
	}
	if opts.MailboxDepth <= 0 {
		opts.MailboxDepth = 16
	}
	if opts.Creation != monitor.CreateEnable && opts.Shards > 1 {
		return nil, fmt.Errorf("shard: creation strategy %d requires a single shard", opts.Creation)
	}
	if opts.Profile != nil && opts.Shards > 1 {
		return nil, fmt.Errorf("shard: creation profiling requires a single shard (the profile is engine-local and unsynchronized)")
	}
	router, err := NewRouter(spec, opts.Shards)
	if err != nil {
		return nil, err
	}
	rt := &Runtime{spec: spec, router: router}
	var shardMet *metrics.ShardSeries
	if opts.MetricsRegistry != nil {
		label := opts.MetricsLabel
		if label == "" {
			label = spec.Name
		}
		shardMet = metrics.NewShardSeries(opts.MetricsRegistry, label, router.Shards())
		rt.broadcasts = shardMet.Broadcasts
		rt.refusals = shardMet.Refusals
	}
	engOpts := opts.Options
	if user := opts.OnVerdict; user != nil {
		engOpts.OnVerdict = func(v monitor.Verdict) {
			rt.vmu.Lock()
			defer rt.vmu.Unlock()
			user(v)
		}
	}
	for i := 0; i < router.Shards(); i++ {
		eng, err := monitor.New(spec, engOpts)
		if err != nil {
			return nil, err
		}
		w := &worker{
			idx:     i,
			eng:     eng,
			pending: getBatch(opts.BatchSize),
			mailbox: make(chan message, opts.MailboxDepth),
			batchSz: opts.BatchSize,
		}
		if shardMet != nil {
			w.metDepth = shardMet.MailboxDepth[i]
			w.metBatches = shardMet.Batches[i]
			w.metBatchEvents = shardMet.BatchEvents[i]
		}
		rt.workers = append(rt.workers, w)
		rt.wg.Add(1)
		go w.run(&rt.wg)
	}
	return rt, nil
}

// Spec implements monitor.Runtime.
func (rt *Runtime) Spec() *monitor.Spec { return rt.spec }

// Shards returns the effective shard count.
func (rt *Runtime) Shards() int { return len(rt.workers) }

// Pivot returns the routing pivot parameter index, or -1 when the spec is
// unshardable.
func (rt *Runtime) Pivot() int { return rt.router.Pivot() }

// Emit implements monitor.Runtime.
func (rt *Runtime) Emit(sym int, vals ...heap.Ref) {
	rt.Dispatch(sym, param.Of(rt.spec.Events[sym].Params, vals...))
}

// EmitNamed implements monitor.Runtime. Unknown names and arity
// mismatches are reported as errors (Emit, the index-based hot path,
// panics instead).
func (rt *Runtime) EmitNamed(name string, vals ...heap.Ref) error {
	sym, ok := rt.spec.Symbol(name)
	if !ok {
		return fmt.Errorf("shard: spec %q has no event %q", rt.spec.Name, name)
	}
	if want := rt.spec.Events[sym].Params.Count(); len(vals) != want {
		return fmt.Errorf("shard: event %q takes %d values, got %d", name, want, len(vals))
	}
	rt.Emit(sym, vals...)
	return nil
}

// Dispatch routes one parametric event, blocking when the target mailbox
// (every mailbox, for broadcast events) is full. Safe for concurrent use;
// events from one goroutine reach each shard in dispatch order.
// Dispatching after Close is a programming error and panics with a
// diagnosable message rather than corrupting the shut-down mailboxes.
func (rt *Runtime) Dispatch(sym int, theta param.Instance) {
	rt.checkOpen()
	rt.events.Add(1)
	ev := event{sym: sym, inst: theta}
	if target, broadcast := rt.router.Route(sym, theta); !broadcast {
		rt.workers[target].enqueue(ev)
	} else {
		rt.broadcasts.Inc()
		for _, w := range rt.workers {
			w.enqueue(ev)
		}
	}
}

// QueueDepths returns each shard mailbox's current length in batches. The
// reads are unsynchronized channel lengths — safe from any goroutine, and
// exactly the backlog picture a stall diagnostic wants.
func (rt *Runtime) QueueDepths() []int {
	out := make([]int, len(rt.workers))
	for i, w := range rt.workers {
		out[i] = len(w.mailbox)
	}
	return out
}

// TryDispatch is the non-blocking Dispatch: it enqueues the event and
// returns true only when every target shard can accept it without blocking.
// A refused event is not enqueued anywhere (all-or-nothing, so broadcast
// events cannot be half-delivered). Callers retrying TryDispatch must
// preserve their own per-slice ordering.
func (rt *Runtime) TryDispatch(sym int, theta param.Instance) bool {
	rt.checkOpen()
	ev := event{sym: sym, inst: theta}
	target, broadcast := rt.router.Route(sym, theta)
	if !broadcast {
		w := rt.workers[target]
		w.mu.Lock()
		ok := w.canAccept()
		if ok {
			w.enqueueLocked(ev)
		}
		w.mu.Unlock()
		if ok {
			rt.events.Add(1)
		} else {
			rt.refusals.Inc()
		}
		return ok
	}
	// Broadcast: take every shard lock in index order, check, then commit.
	// Mailbox sends only ever happen under the shard's lock, so a positive
	// canAccept cannot be invalidated before the enqueue.
	for _, w := range rt.workers {
		w.mu.Lock()
	}
	ok := true
	for _, w := range rt.workers {
		if !w.canAccept() {
			ok = false
			break
		}
	}
	if ok {
		for _, w := range rt.workers {
			w.enqueueLocked(ev)
		}
	}
	for i := len(rt.workers) - 1; i >= 0; i-- {
		rt.workers[i].mu.Unlock()
	}
	if ok {
		rt.events.Add(1)
		rt.broadcasts.Inc()
	} else {
		rt.refusals.Inc()
	}
	return ok
}

// Free implements monitor.Runtime's synchronous death positioning: a
// barrier, so every event dispatched before the call is processed against
// the old liveness before the caller marks the objects dead. This is what
// the explicit-free drivers (trace replay, the simulated-heap free hook)
// use; it stalls the producer for a full queue drain per death.
func (rt *Runtime) Free(refs ...heap.Ref) {
	rt.Barrier()
}

// FreeAsync implements monitor.Runtime's pipelined death positioning: a
// free record is broadcast into every shard's event stream, the workers
// rendezvous at it, and the last arrival runs die. Each shard processes
// its pre-record events before the death becomes visible and its
// post-record events after — the same positioning Free gives, but the
// producer returns as soon as the record is enqueued instead of waiting
// for the queues to drain. Broadcasts are serialized so concurrent frees
// enter every mailbox in the same order; two workers waiting at
// oppositely-ordered records would deadlock the rendezvous.
func (rt *Runtime) FreeAsync(die func(), refs ...heap.Ref) {
	rt.checkOpen()
	if die == nil {
		rt.Barrier()
		return
	}
	rec := &freeRec{die: die, done: make(chan struct{})}
	rec.n.Store(int32(len(rt.workers)))
	rt.fmu.Lock()
	for _, w := range rt.workers {
		w.sendFree(rec)
	}
	rt.fmu.Unlock()
}

// checkOpen panics when the runtime has been closed. The check is
// advisory (closed is read without synchronization, as Close must not race
// Dispatch anyway), but it turns the silent misuse into a deterministic,
// clearly attributed failure on the sequential misuse pattern.
func (rt *Runtime) checkOpen() {
	if rt.closed {
		panic("shard: Dispatch after Close on spec " + rt.spec.Name)
	}
}

// ctlAll flushes open batches and runs a control request on every shard,
// returning once all have executed. Shards drain concurrently. After Close
// it is a no-op: the mailboxes are gone, and the workers drained everything
// on the way out.
func (rt *Runtime) ctlAll(ctl func(int, *monitor.Engine)) {
	if rt.closed {
		return
	}
	dones := make([]<-chan struct{}, len(rt.workers))
	for i, w := range rt.workers {
		i := i
		dones[i] = w.control(func(e *monitor.Engine) { ctl(i, e) })
	}
	for _, d := range dones {
		<-d
	}
}

// Barrier implements monitor.Runtime: it returns once every event
// dispatched before the call has been fully processed by its shard.
func (rt *Runtime) Barrier() {
	rt.ctlAll(func(int, *monitor.Engine) {})
}

// Flush implements monitor.Runtime: a barrier followed by a full
// expunge/compaction pass on every shard, so the merged counters settle.
// After Close it is a no-op (Close flushes).
func (rt *Runtime) Flush() {
	rt.ctlAll(func(_ int, e *monitor.Engine) { e.Flush() })
}

// Stats implements monitor.Runtime: per-shard counters are snapshotted by
// the workers (behind any events already mailed) and merged. Events is the
// number of Dispatch calls — a broadcast event counts once, as in the
// sequential engine — and PeakLive sums per-shard peaks, an upper bound on
// the true concurrent peak. All other counters are exact sums.
func (rt *Runtime) Stats() monitor.Stats {
	per := rt.ShardStats()
	var s monitor.Stats
	for _, st := range per {
		s.Created += st.Created
		s.Flagged += st.Flagged
		s.Collected += st.Collected
		s.GoalVerdicts += st.GoalVerdicts
		s.Steps += st.Steps
		s.Avoided += st.Avoided
		s.Live += st.Live
		s.PeakLive += st.PeakLive
	}
	s.Events = rt.events.Load()
	return s
}

// ShardStats returns each shard engine's counters (diagnostics, tests).
// After Close it returns the counters captured when the runtime shut down.
func (rt *Runtime) ShardStats() []monitor.Stats {
	if rt.closed {
		return append([]monitor.Stats(nil), rt.final...)
	}
	out := make([]monitor.Stats, len(rt.workers))
	rt.ctlAll(func(i int, e *monitor.Engine) { out[i] = e.Stats() })
	return out
}

// ArenaStats returns each shard engine's monitor-arena occupancy. Every
// worker owns its slab arena exclusively — records never migrate between
// shards — so the snapshot, taken at the same control rendezvous as
// ShardStats, must account each shard's live monitors exactly. After
// Close the slabs have been released and the slice is all zeros.
func (rt *Runtime) ArenaStats() []arena.Stats {
	out := make([]arena.Stats, len(rt.workers))
	rt.ctlAll(func(i int, e *monitor.Engine) { out[i] = e.ArenaStats() })
	return out
}

// Close drains the mailboxes, flushes every shard and stops the workers.
// Stats/ShardStats keep working afterwards (returning the final counters)
// and Barrier/Flush become no-ops, so `defer rt.Close()` composes with
// reading results in any order; only Dispatch after Close is a programming
// error. Close is idempotent but must not race Dispatch or itself.
func (rt *Runtime) Close() {
	if rt.closed {
		return
	}
	rt.final = make([]monitor.Stats, len(rt.workers))
	rt.ctlAll(func(i int, e *monitor.Engine) {
		e.Flush()
		rt.final[i] = e.Stats()
	})
	rt.closed = true
	for _, w := range rt.workers {
		w.flush()
		close(w.mailbox)
	}
	rt.wg.Wait()
}
