package shard

import (
	"sync"
	"sync/atomic"

	"rvgo/internal/metrics"
	"rvgo/internal/monitor"
	"rvgo/internal/param"
)

// event is one parametric event in flight to a shard.
type event struct {
	sym  int
	inst param.Instance
}

// message is one mailbox element: a batch of events, a control request
// executed by the worker between batches (stats snapshots, flushes,
// barriers), or a free record (an asynchronous object death). All three
// ride the same FIFO, so by the time one executes, every event enqueued
// before it has been processed. Batches travel as *[]event so the pool
// round-trip reuses one boxed header instead of re-boxing the slice into
// an interface on every Get/Put.
type message struct {
	batch *[]event
	ctl   func(*monitor.Engine)
	done  chan<- struct{}
	free  *freeRec
}

// freeRec is one FreeAsync death, broadcast to every shard: the workers
// rendezvous at their copy of the record, the last arrival runs die (the
// death becomes visible), and only then does any worker proceed to the
// events behind the record. Each shard's pre-record events are processed
// before it arrives and its post-record events after the death — the same
// stream position a Barrier-then-kill gives, without stalling producers.
type freeRec struct {
	die  func()
	n    atomic.Int32 // workers still to arrive
	done chan struct{}
}

// arrive is one worker reaching its copy of the record.
func (rec *freeRec) arrive() {
	if rec.n.Add(-1) == 0 {
		rec.die()
		close(rec.done)
		return
	}
	<-rec.done
}

// batchPool recycles event batches between producers and workers without
// taking any worker lock (a worker must never need a producer-side lock to
// make progress, or a blocking Dispatch holding that lock would deadlock).
var batchPool = sync.Pool{New: func() any { return new([]event) }}

func getBatch(capHint int) *[]event {
	p := batchPool.Get().(*[]event)
	if cap(*p) < capHint {
		*p = make([]event, 0, capHint)
	}
	*p = (*p)[:0]
	return p
}

func putBatch(p *[]event) {
	clear(*p)
	*p = (*p)[:0]
	batchPool.Put(p)
}

// worker is one shard: a single-threaded monitor.Engine behind a bounded
// mailbox of event batches. All mailbox sends happen while holding mu, so
// the channel's free capacity can only grow between a producer's check and
// its send; the worker only receives and never takes mu.
type worker struct {
	idx     int
	eng     *monitor.Engine
	mu      sync.Mutex
	pending *[]event // open batch, always len < batchSize outside mu
	mailbox chan message
	batchSz int
	// per-shard series (nil-safe when telemetry is off).
	metDepth       *metrics.Gauge
	metBatches     *metrics.Counter
	metBatchEvents *metrics.Counter
}

// run is the shard goroutine: drain batches in FIFO order, execute control
// requests in between.
func (w *worker) run(wg *sync.WaitGroup) {
	defer wg.Done()
	defer w.metDepth.Set(0) // a stopped worker has no backlog
	for msg := range w.mailbox {
		if msg.ctl != nil {
			msg.ctl(w.eng)
			close(msg.done)
			continue
		}
		if msg.free != nil {
			msg.free.arrive()
			continue
		}
		for _, ev := range *msg.batch {
			w.eng.Dispatch(ev.sym, ev.inst)
		}
		putBatch(msg.batch)
		w.metDepth.Set(int64(len(w.mailbox)))
	}
}

// ship sends the open batch to the mailbox (possibly blocking — that is
// the backpressure) and starts a fresh one, recording the batch shape and
// the post-send backlog. Callers hold mu.
func (w *worker) ship() {
	n := len(*w.pending)
	w.mailbox <- message{batch: w.pending}
	w.pending = getBatch(w.batchSz)
	w.metBatches.Inc()
	w.metBatchEvents.Add(uint64(n))
	w.metDepth.Set(int64(len(w.mailbox)))
}

// enqueue appends one event to the open batch, shipping the batch to the
// mailbox when it fills. The mailbox send blocks while holding mu — that is
// the backpressure: further producers queue on the mutex until the worker
// drains a batch.
func (w *worker) enqueue(ev event) {
	w.mu.Lock()
	*w.pending = append(*w.pending, ev)
	if len(*w.pending) >= w.batchSz {
		w.ship()
	}
	w.mu.Unlock()
}

// canAccept reports whether one more event fits without blocking: either
// the open batch has room to spare, or the mailbox can take the filled
// batch. Callers must hold mu.
func (w *worker) canAccept() bool {
	return len(*w.pending)+1 < w.batchSz || len(w.mailbox) < cap(w.mailbox)
}

// enqueueLocked is enqueue for callers already holding mu after a positive
// canAccept: the mailbox send is guaranteed not to block.
func (w *worker) enqueueLocked(ev event) {
	*w.pending = append(*w.pending, ev)
	if len(*w.pending) >= w.batchSz {
		w.ship()
	}
}

// flushLocked ships the open batch even if partially filled; callers hold
// mu.
func (w *worker) flushLocked() {
	if len(*w.pending) > 0 {
		w.ship()
	}
}

// flush ships the open batch even if partially filled.
func (w *worker) flush() {
	w.mu.Lock()
	w.flushLocked()
	w.mu.Unlock()
}

// sendFree flushes the open batch and enqueues a free record behind it.
// The mailbox send may block (backpressure), but never on the record's
// rendezvous — the worker completes that on its own.
func (w *worker) sendFree(rec *freeRec) {
	w.mu.Lock()
	w.flushLocked()
	w.mailbox <- message{free: rec}
	w.mu.Unlock()
}

// control flushes the open batch and enqueues a control request behind it,
// returning the done channel.
func (w *worker) control(ctl func(*monitor.Engine)) <-chan struct{} {
	done := make(chan struct{})
	w.mu.Lock()
	w.flushLocked()
	w.mailbox <- message{ctl: ctl, done: done}
	w.mu.Unlock()
	return done
}
