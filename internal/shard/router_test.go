package shard_test

import (
	"testing"

	"rvgo/internal/ere"
	"rvgo/internal/heap"
	"rvgo/internal/logic"
	"rvgo/internal/monitor"
	"rvgo/internal/param"
	"rvgo/internal/props"
	"rvgo/internal/shard"
)

// TestPivotBindsCreationEvents: for every property in the library, the
// selected pivot parameter must be bound by every monitor-creating event —
// the invariant that guarantees every monitor instance binds the pivot and
// therefore has a stable home shard.
func TestPivotBindsCreationEvents(t *testing.T) {
	for _, name := range props.Names() {
		spec, err := props.Build(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		an, err := spec.Analysis()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		r, err := shard.NewRouter(spec, 4)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if r.Pivot() < 0 {
			if r.Shards() != 1 {
				t.Errorf("%s: unshardable spec must fall back to 1 shard, got %d", name, r.Shards())
			}
			continue
		}
		if r.Shards() != 4 {
			t.Errorf("%s: shardable spec kept %d of 4 shards", name, r.Shards())
		}
		for sym := range spec.Events {
			if an.Creation[sym] && !spec.Events[sym].Params.Has(r.Pivot()) {
				t.Errorf("%s: creation event %s does not bind pivot %s",
					name, spec.Events[sym].Name, spec.Params[r.Pivot()])
			}
		}
	}
}

// TestRouterHasNext: the single-parameter property routes every event by
// its iterator — no broadcasts — and routing is stable per object.
func TestRouterHasNext(t *testing.T) {
	spec, err := props.Build("HasNext")
	if err != nil {
		t.Fatal(err)
	}
	r, err := shard.NewRouter(spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.Pivot() != 0 {
		t.Fatalf("pivot = %d, want 0", r.Pivot())
	}
	h := heap.New()
	for k := 0; k < 32; k++ {
		it := h.Alloc("i")
		theta := param.Of(param.SetOf(0), it)
		first := -1
		for sym := range spec.Events {
			target, broadcast := r.Route(sym, theta)
			if broadcast {
				t.Fatalf("event %d broadcast despite binding the pivot", sym)
			}
			if first < 0 {
				first = target
			} else if target != first {
				t.Fatalf("object routed to shard %d then %d", first, target)
			}
		}
	}
}

// TestRouterBroadcast: UnsafeIter events not binding the pivot broadcast;
// events binding it route.
func TestRouterBroadcast(t *testing.T) {
	spec, err := props.Build("UnsafeIter")
	if err != nil {
		t.Fatal(err)
	}
	r, err := shard.NewRouter(spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.Pivot() < 0 {
		t.Fatal("UnsafeIter must be shardable (create binds both parameters)")
	}
	h := heap.New()
	sawBroadcast := false
	for sym, ev := range spec.Events {
		vals := make([]heap.Ref, ev.Params.Count())
		for i := range vals {
			vals[i] = h.Alloc("o")
		}
		theta := param.Of(ev.Params, vals...)
		_, broadcast := r.Route(sym, theta)
		want := !ev.Params.Has(r.Pivot())
		if broadcast != want {
			t.Errorf("event %s: broadcast = %v, want %v", ev.Name, broadcast, want)
		}
		if broadcast {
			sawBroadcast = true
		}
	}
	if !sawBroadcast {
		t.Error("UnsafeIter has a one-parameter event off the pivot; expected a broadcast")
	}
}

// unshardableSpec has two creation events over disjoint parameters, so no
// pivot exists: either "a x" or "b y" can begin a goal trace.
func unshardableSpec(t *testing.T) *monitor.Spec {
	t.Helper()
	alphabet := []string{"a", "b"}
	bp, err := ere.Compile("a | b", alphabet)
	if err != nil {
		t.Fatal(err)
	}
	s := &monitor.Spec{
		Name:   "Disjoint",
		Params: []string{"x", "y"},
		Events: []monitor.EventDef{
			{Name: "a", Params: param.SetOf(0)},
			{Name: "b", Params: param.SetOf(1)},
		},
		BP:   bp,
		Goal: []logic.Category{logic.Match},
	}
	if err := s.Analyze(); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestUnshardableFallsBack: a spec with no pivot degenerates to one shard
// but still monitors correctly through the sharded façade.
func TestUnshardableFallsBack(t *testing.T) {
	spec := unshardableSpec(t)
	rt, err := shard.New(spec, shard.Options{
		Options: monitor.Options{GC: monitor.GCCoenable, Creation: monitor.CreateEnable},
		Shards:  8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if rt.Shards() != 1 || rt.Pivot() != -1 {
		t.Fatalf("shards=%d pivot=%d, want 1/-1", rt.Shards(), rt.Pivot())
	}
	h := heap.New()
	rt.Emit(0, h.Alloc("x1"))
	rt.Emit(1, h.Alloc("y1"))
	rt.Flush()
	st := rt.Stats()
	if st.Events != 2 || st.GoalVerdicts != 2 {
		t.Fatalf("stats = %+v, want 2 events and 2 goal verdicts", st)
	}
}

// TestCreateFullRejected: the Figure 5 oracle strategy cannot be sharded.
func TestCreateFullRejected(t *testing.T) {
	spec, err := props.Build("UnsafeIter")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := shard.New(spec, shard.Options{
		Options: monitor.Options{Creation: monitor.CreateFull},
		Shards:  4,
	}); err == nil {
		t.Fatal("CreateFull with 4 shards must be rejected")
	}
	rt, err := shard.New(spec, shard.Options{
		Options: monitor.Options{Creation: monitor.CreateFull},
		Shards:  1,
	})
	if err != nil {
		t.Fatalf("CreateFull with a single shard must work: %v", err)
	}
	rt.Close()
}
