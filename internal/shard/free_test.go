package shard_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"rvgo/internal/heap"
	"rvgo/internal/monitor"
	"rvgo/internal/props"
	"rvgo/internal/shard"
)

// execTraceFreeAsync is execTrace with deaths delivered through the
// pipelined FreeAsync path instead of Barrier-then-kill: the producer
// never stalls on a death, yet the positioning contract promises the same
// per-slice event/death sequences — and therefore identical results.
func execTraceFreeAsync(t testing.TB, spec *monitor.Spec, gc monitor.GCPolicy, shards, batch int, steps []gstep) result {
	t.Helper()
	verdicts := map[string][]string{}
	opts := monitor.Options{GC: gc, Creation: monitor.CreateEnable, OnVerdict: recordVerdicts(spec, verdicts)}
	var rt monitor.Runtime
	var err error
	if shards == 0 {
		rt, err = monitor.New(spec, opts)
	} else {
		rt, err = shard.New(spec, shard.Options{Options: opts, Shards: shards, BatchSize: batch})
	}
	if err != nil {
		t.Fatal(err)
	}
	h := heap.New()
	objs := map[int]*heap.Object{}
	get := func(o int) *heap.Object {
		v, ok := objs[o]
		if !ok {
			v = h.Alloc(fmt.Sprintf("o%d", o))
			objs[o] = v
		}
		return v
	}
	for _, st := range steps {
		if st.sym < 0 {
			o := get(st.objs[0])
			rt.FreeAsync(func() { h.Free(o) }, o)
			continue
		}
		vals := make([]heap.Ref, len(st.objs))
		for k, o := range st.objs {
			vals[k] = get(o)
		}
		rt.Emit(st.sym, vals...)
	}
	rt.Flush()
	st := rt.Stats()
	rt.Close()
	return result{verdicts: verdicts, stats: st}
}

// TestFreeAsyncEquivalence: random traces with mid-trace deaths produce
// the same per-slice verdict sequences and settled counters whether deaths
// ride the synchronous Barrier-then-kill path or the pipelined FreeAsync
// records, on the sequential engine and on 1/2/4/8 shards, under all three
// GC policies.
func TestFreeAsyncEquivalence(t *testing.T) {
	gcs := []monitor.GCPolicy{monitor.GCNone, monitor.GCAllDead, monitor.GCCoenable}
	propsUnder := []string{"HasNext", "UnsafeIter", "UnsafeMapIter"}
	seeds := 3
	if testing.Short() {
		seeds = 1
	}
	for _, name := range propsUnder {
		spec, err := props.Build(name)
		if err != nil {
			t.Fatal(err)
		}
		for seed := 0; seed < seeds; seed++ {
			rng := rand.New(rand.NewSource(int64(100 + seed)))
			steps := genTrace(rng, spec, 300)
			for _, gc := range gcs {
				oracle := execTrace(t, spec, gc, 0, 0, steps, false)
				for _, n := range []int{0, 1, 2, 4, 8} {
					got := execTraceFreeAsync(t, spec, gc, n, 4, steps)
					compareResults(t, fmt.Sprintf("%s/seed%d/gc=%s/shards=%d/freeasync", name, seed, gc, n), oracle, got)
				}
			}
		}
	}
}

// TestFreeAsyncConcurrent drives concurrent producers that interleave
// events and FreeAsync deaths on the same sharded runtime: the serialized
// broadcast must never deadlock the worker rendezvous, and every die must
// run. (The deadlock shape this guards: two records entering two mailboxes
// in opposite orders, each worker waiting at the other's record.)
func TestFreeAsyncConcurrent(t *testing.T) {
	spec, err := props.Build("HasNext")
	if err != nil {
		t.Fatal(err)
	}
	rt, err := shard.New(spec, shard.Options{
		Options: monitor.Options{GC: monitor.GCCoenable, Creation: monitor.CreateEnable},
		Shards:  4, BatchSize: 2, MailboxDepth: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := heap.New()
	hnT, _ := spec.Symbol("hasnexttrue")
	nxt, _ := spec.Symbol("next")
	const producers = 8
	const rounds = 200
	var died sync.WaitGroup
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				it := h.Alloc(fmt.Sprintf("p%d_%d", p, r))
				rt.Emit(hnT, it)
				rt.Emit(nxt, it)
				died.Add(1)
				rt.FreeAsync(func() { h.Free(it); died.Done() }, it)
			}
		}(p)
	}
	wg.Wait()
	rt.Barrier()
	waitDone := make(chan struct{})
	go func() { died.Wait(); close(waitDone) }()
	select {
	case <-waitDone:
	case <-time.After(30 * time.Second):
		t.Fatal("not every FreeAsync die ran: rendezvous deadlock?")
	}
	rt.Flush()
	st := rt.Stats()
	rt.Close()
	if want := uint64(producers * rounds * 2); st.Events != want {
		t.Errorf("Events = %d, want %d", st.Events, want)
	}
	if live, _, frees := h.Stats(); live != 0 || frees != producers*rounds {
		t.Errorf("heap: live=%d frees=%d, want 0/%d", live, frees, producers*rounds)
	}
}
