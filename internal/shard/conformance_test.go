package shard_test

import (
	"testing"

	"rvgo/internal/conformance"
	"rvgo/internal/monitor"
	"rvgo/internal/props"
	"rvgo/internal/shard"
)

// shardFactory builds a 4-shard runtime for the conformance suites.
func shardFactory(t *testing.T, prop string, onVerdict func(monitor.Verdict)) monitor.Runtime {
	spec, err := props.Build(prop)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := shard.New(spec, shard.Options{
		Options: monitor.Options{
			GC:        monitor.GCCoenable,
			Creation:  monitor.CreateEnable,
			OnVerdict: onVerdict,
		},
		Shards: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

// TestShardConformance runs the backend-independent Runtime suite on the
// sharded runtime.
func TestShardConformance(t *testing.T) {
	conformance.RunEmitNamed(t, shardFactory)
}

// TestShardFreeConformance runs the death-positioning suite (Free and
// FreeAsync) on the sharded runtime.
func TestShardFreeConformance(t *testing.T) {
	conformance.RunFree(t, shardFactory)
}
