package shard_test

import (
	"testing"

	"rvgo/internal/conformance"
	"rvgo/internal/monitor"
	"rvgo/internal/props"
	"rvgo/internal/shard"
)

// shardFactory builds a 4-shard runtime for the conformance suites.
func shardFactory(t *testing.T, prop string, onVerdict func(monitor.Verdict)) monitor.Runtime {
	return shardPolicyFactory(t, prop, monitor.GCCoenable, onVerdict)
}

// shardPolicyFactory builds a 4-shard runtime under an explicit GC policy
// for the oracle matrix.
func shardPolicyFactory(t *testing.T, prop string, gc monitor.GCPolicy, onVerdict func(monitor.Verdict)) monitor.Runtime {
	spec, err := props.Build(prop)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := shard.New(spec, shard.Options{
		Options: monitor.Options{
			GC:        gc,
			Creation:  monitor.CreateEnable,
			OnVerdict: onVerdict,
		},
		Shards: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

// TestShardConformance runs the backend-independent Runtime suite on the
// sharded runtime.
func TestShardConformance(t *testing.T) {
	conformance.RunEmitNamed(t, shardFactory)
}

// TestShardFreeConformance runs the death-positioning suite (Free and
// FreeAsync) on the sharded runtime.
func TestShardFreeConformance(t *testing.T) {
	conformance.RunFree(t, shardFactory)
}

// TestShardArenaOracle replays the avrora trace through the 4-shard
// runtime under every GC policy and requires per-slice verdicts and
// settled counters bit-identical to a sequential-engine reference.
func TestShardArenaOracle(t *testing.T) {
	conformance.RunArenaOracle(t, shardPolicyFactory)
}

// TestShardAvoidanceOracle replays the avrora trace through the 4-shard
// runtime under every GC policy × avoidance mode, against the unguarded
// sequential reference.
func TestShardAvoidanceOracle(t *testing.T) {
	conformance.RunAvoidanceOracle(t, func(t *testing.T, prop string, gc monitor.GCPolicy, avoid monitor.AvoidMode, onVerdict func(monitor.Verdict)) monitor.Runtime {
		spec, err := props.Build(prop)
		if err != nil {
			t.Fatal(err)
		}
		rt, err := shard.New(spec, shard.Options{
			Options: monitor.Options{
				GC:        gc,
				Creation:  monitor.CreateEnable,
				Avoid:     avoid,
				OnVerdict: onVerdict,
			},
			Shards: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rt
	})
}
