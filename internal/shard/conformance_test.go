package shard_test

import (
	"testing"

	"rvgo/internal/conformance"
	"rvgo/internal/monitor"
	"rvgo/internal/props"
	"rvgo/internal/shard"
)

// TestShardConformance runs the backend-independent Runtime suite on the
// sharded runtime.
func TestShardConformance(t *testing.T) {
	conformance.RunEmitNamed(t, func(t *testing.T, prop string, onVerdict func(monitor.Verdict)) monitor.Runtime {
		spec, err := props.Build(prop)
		if err != nil {
			t.Fatal(err)
		}
		rt, err := shard.New(spec, shard.Options{
			Options: monitor.Options{
				GC:        monitor.GCCoenable,
				Creation:  monitor.CreateEnable,
				OnVerdict: onVerdict,
			},
			Shards: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rt
	})
}
