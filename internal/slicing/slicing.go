// Package slicing implements the semantic ground truth of parametric
// monitoring: trace slicing (Definition 6), parametric properties
// (Definition 7) and the abstract monitoring algorithm MONITOR(M) of
// Figure 5. It is deliberately naive — tables keyed by canonical parameter
// instances, no indexing trees, no GC — and serves as the oracle that the
// optimized engine (package monitor) is property-tested against.
package slicing

import (
	"rvgo/internal/logic"
	"rvgo/internal/param"
)

// Event is a parametric event e⟨θ⟩.
type Event struct {
	Sym  int
	Inst param.Instance
}

// Slice computes the θ-trace slice τ↾θ (Definition 6): the base symbols of
// the events whose parameter instances are less informative than θ.
func Slice(trace []Event, theta param.Instance) []int {
	var out []int
	for _, e := range trace {
		if e.Inst.LessInformative(theta) {
			out = append(out, e.Sym)
		}
	}
	return out
}

// RunBase runs a base monitor over a non-parametric trace and returns the
// final verdict category γ(σ(ı, w)).
func RunBase(bp logic.Blueprint, w []int) logic.Category {
	s := bp.Start()
	for _, a := range w {
		s = s.Step(a)
	}
	return s.Category()
}

// PropertyAt evaluates the parametric property ΛX.P at τ and θ
// (Definition 7): P(τ↾θ).
func PropertyAt(bp logic.Blueprint, trace []Event, theta param.Instance) logic.Category {
	return RunBase(bp, Slice(trace, theta))
}

// Monitor is the abstract parametric monitor of Figure 5. Δ maps parameter
// instances to base-monitor states, Θ is the set of known instances
// (always containing ⊥ and closed under lubs of compatible members), and Γ
// the verdict table.
type Monitor struct {
	bp    logic.Blueprint
	delta map[param.Key]logic.State
	insts map[param.Key]param.Instance
	gamma map[param.Key]logic.Category

	// scratch, reused across Process calls. The oracle stays naive in
	// structure (full Θ scans, no indexing); reusing the per-event
	// buffers just keeps property tests over long random traces from
	// spending their time in the allocator.
	targets map[param.Key]param.Instance
	commits []pending
}

type pending struct {
	inst  param.Instance
	state logic.State
}

// New creates the abstract monitor with Δ(⊥) = ı and Θ = {⊥}.
func New(bp logic.Blueprint) *Monitor {
	m := &Monitor{
		bp:      bp,
		delta:   map[param.Key]logic.State{},
		insts:   map[param.Key]param.Instance{},
		gamma:   map[param.Key]logic.Category{},
		targets: map[param.Key]param.Instance{},
	}
	bot := param.Empty()
	m.delta[bot.Key()] = bp.Start()
	m.insts[bot.Key()] = bot
	m.gamma[bot.Key()] = bp.Start().Category()
	return m
}

// Update is one verdict-table update produced by processing an event.
type Update struct {
	Inst param.Instance
	Cat  logic.Category
}

// Process implements the body of the foreach loop in Figure 5 for one
// parametric event e⟨θ⟩, returning the Γ updates in deterministic order.
func (m *Monitor) Process(e Event) []Update {
	theta := e.Inst

	// {θ} ⊔ Θ: lubs of θ with every compatible known instance. ⊥ ∈ Θ, so
	// θ itself always appears.
	targets := m.targets
	clear(targets)
	for _, known := range m.insts {
		if lub, ok := known.Lub(theta); ok {
			targets[lub.Key()] = lub
		}
	}

	// Compute all new states against the *old* tables, then commit: line 4
	// of Figure 5 reads Δ(max{θ'' ∈ Θ | θ'' ⊑ θ'}) from the pre-event
	// state even when θ' itself is being updated in the same iteration.
	commits := m.commits[:0]
	for _, tgt := range targets {
		base := m.maxBelow(tgt)
		commits = append(commits, pending{inst: tgt, state: m.delta[base.Key()].Step(e.Sym)})
	}
	m.commits = commits[:0]
	var ups []Update
	for _, c := range commits {
		k := c.inst.Key()
		m.delta[k] = c.state
		m.insts[k] = c.inst
		cat := c.state.Category()
		m.gamma[k] = cat
		ups = append(ups, Update{Inst: c.inst, Cat: cat})
	}
	sortUpdates(ups)
	return ups
}

// maxBelow returns max{θ” ∈ Θ | θ” ⊑ θ'}. Because Θ is closed under lubs
// of compatible instances, the maximum is unique (all members below θ' are
// pairwise compatible, and their lub is itself below θ' and in Θ).
func (m *Monitor) maxBelow(tgt param.Instance) param.Instance {
	best := param.Empty()
	bestCount := -1
	for _, known := range m.insts {
		if known.LessInformative(tgt) && known.Mask().Count() > bestCount {
			best = known
			bestCount = known.Mask().Count()
		}
	}
	return best
}

// Gamma returns the verdict table entry for θ, defaulting to the verdict of
// the empty slice for unknown instances (Definition 7 assigns every θ a
// verdict; unseen instances have the empty slice).
func (m *Monitor) Gamma(theta param.Instance) logic.Category {
	if c, ok := m.gamma[theta.Key()]; ok {
		return c
	}
	// Unknown θ: its slice is that of max{θ'' ∈ Θ | θ'' ⊑ θ}.
	base := m.maxBelow(theta)
	return m.delta[base.Key()].Category()
}

// Instances returns all known parameter instances (Θ), ⊥ included.
func (m *Monitor) Instances() []param.Instance {
	out := make([]param.Instance, 0, len(m.insts))
	keys := make([]param.Key, 0, len(m.insts))
	for k := range m.insts {
		keys = append(keys, k)
	}
	param.SortKeys(keys)
	for _, k := range keys {
		out = append(out, m.insts[k])
	}
	return out
}

func sortUpdates(ups []Update) {
	keys := make([]param.Key, len(ups))
	byKey := map[param.Key]Update{}
	for i, u := range ups {
		keys[i] = u.Inst.Key()
		byKey[keys[i]] = u
	}
	param.SortKeys(keys)
	for i, k := range keys {
		ups[i] = byKey[k]
	}
}
