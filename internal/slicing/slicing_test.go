package slicing_test

import (
	"fmt"
	"math/rand"
	"testing"

	"rvgo/internal/ere"
	"rvgo/internal/heap"
	"rvgo/internal/logic"
	"rvgo/internal/param"
	"rvgo/internal/slicing"
)

const (
	pC = 0
	pI = 1
)

const (
	symCreate = 0
	symUpdate = 1
	symNext   = 2
)

func unsafeIterBP(t testing.TB) logic.Blueprint {
	t.Helper()
	bp, err := ere.Compile("update* create next* update+ next",
		[]string{"create", "update", "next"})
	if err != nil {
		t.Fatal(err)
	}
	return bp
}

// TestPaperSliceExample reproduces the slicing example below Definition 6:
// for τ = update⟨c1⟩ update⟨c2⟩ create⟨c1,i1⟩ next⟨i1⟩,
//
//	τ↾⟨c2⟩     = update
//	τ↾⟨c1⟩     = update
//	τ↾⟨c1,i1⟩  = update create next
//	τ↾⟨i1⟩     = next
//
// (the paper lists the ⟨c1,i1⟩ slice as "update next" against its own
// Definition 6 — create⟨c1,i1⟩ ⊑ ⟨c1,i1⟩, so create is in the slice; the
// prose around Figure 3 confirms create belongs to the full slice.)
func TestPaperSliceExample(t *testing.T) {
	h := heap.New()
	c1, c2, i1 := h.Alloc("c1"), h.Alloc("c2"), h.Alloc("i1")
	tau := []slicing.Event{
		{Sym: symUpdate, Inst: param.Empty().Bind(pC, c1)},
		{Sym: symUpdate, Inst: param.Empty().Bind(pC, c2)},
		{Sym: symCreate, Inst: param.Empty().Bind(pC, c1).Bind(pI, i1)},
		{Sym: symNext, Inst: param.Empty().Bind(pI, i1)},
	}
	cases := []struct {
		theta param.Instance
		want  []int
	}{
		{param.Empty().Bind(pC, c2), []int{symUpdate}},
		{param.Empty().Bind(pC, c1), []int{symUpdate}},
		{param.Empty().Bind(pC, c1).Bind(pI, i1), []int{symUpdate, symCreate, symNext}},
		{param.Empty().Bind(pI, i1), []int{symNext}},
		{param.Empty(), nil},
	}
	for _, c := range cases {
		got := slicing.Slice(tau, c.theta)
		if fmt.Sprint(got) != fmt.Sprint(c.want) {
			t.Errorf("slice for %s: got %v want %v", c.theta, got, c.want)
		}
	}
}

// TestMonitorComputesParametricProperty is the paper's central correctness
// statement (TACAS'09 theorem, restated above Figure 5): after processing
// τ, Γ(θ) = P(τ↾θ) for every θ. Verified on random parametric traces for
// every instance over the seen values.
func TestMonitorComputesParametricProperty(t *testing.T) {
	bp := unsafeIterBP(t)
	h := heap.New()
	cols := []*heap.Object{h.Alloc("c1"), h.Alloc("c2")}
	iters := []*heap.Object{h.Alloc("i1"), h.Alloc("i2"), h.Alloc("i3")}

	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		mon := slicing.New(bp)
		var tau []slicing.Event
		for n := 0; n < 40; n++ {
			var e slicing.Event
			switch rng.Intn(3) {
			case 0:
				e = slicing.Event{Sym: symUpdate, Inst: param.Empty().Bind(pC, cols[rng.Intn(2)])}
			case 1:
				e = slicing.Event{Sym: symCreate,
					Inst: param.Empty().Bind(pC, cols[rng.Intn(2)]).Bind(pI, iters[rng.Intn(3)])}
			case 2:
				e = slicing.Event{Sym: symNext, Inst: param.Empty().Bind(pI, iters[rng.Intn(3)])}
			}
			tau = append(tau, e)
			mon.Process(e)

			// Check Γ against Definition 7 for every instance over the
			// seen values (the full cross product, including partial
			// ones).
			for _, theta := range allInstances(cols, iters) {
				got := mon.Gamma(theta)
				want := slicing.PropertyAt(bp, tau, theta)
				if got != want {
					t.Fatalf("seed %d after %d events: Γ(%s) = %s, P(τ↾θ) = %s",
						seed, len(tau), theta, got, want)
				}
			}
		}
	}
}

func allInstances(cols, iters []*heap.Object) []param.Instance {
	out := []param.Instance{param.Empty()}
	for _, c := range cols {
		out = append(out, param.Empty().Bind(pC, c))
	}
	for _, i := range iters {
		out = append(out, param.Empty().Bind(pI, i))
	}
	for _, c := range cols {
		for _, i := range iters {
			out = append(out, param.Empty().Bind(pC, c).Bind(pI, i))
		}
	}
	return out
}

// TestThetaLubClosure: Θ stays closed under lubs of compatible members
// (the invariant that makes line 4's max unique).
func TestThetaLubClosure(t *testing.T) {
	bp := unsafeIterBP(t)
	h := heap.New()
	cols := []*heap.Object{h.Alloc("c1"), h.Alloc("c2")}
	iters := []*heap.Object{h.Alloc("i1"), h.Alloc("i2")}
	rng := rand.New(rand.NewSource(4))
	mon := slicing.New(bp)
	for n := 0; n < 60; n++ {
		switch rng.Intn(3) {
		case 0:
			mon.Process(slicing.Event{Sym: symUpdate, Inst: param.Empty().Bind(pC, cols[rng.Intn(2)])})
		case 1:
			mon.Process(slicing.Event{Sym: symCreate,
				Inst: param.Empty().Bind(pC, cols[rng.Intn(2)]).Bind(pI, iters[rng.Intn(2)])})
		case 2:
			mon.Process(slicing.Event{Sym: symNext, Inst: param.Empty().Bind(pI, iters[rng.Intn(2)])})
		}
		insts := mon.Instances()
		keys := map[param.Key]bool{}
		for _, a := range insts {
			keys[a.Key()] = true
		}
		for _, a := range insts {
			for _, b := range insts {
				if lub, ok := a.Lub(b); ok && !keys[lub.Key()] {
					t.Fatalf("Θ not lub-closed: %s ⊔ %s missing", a, b)
				}
			}
		}
	}
}

func TestRunBase(t *testing.T) {
	bp := unsafeIterBP(t)
	if got := slicing.RunBase(bp, []int{symCreate, symNext, symUpdate, symNext}); got != logic.Match {
		t.Fatalf("create next update next = %s, want match", got)
	}
	if got := slicing.RunBase(bp, []int{symNext}); got != logic.Fail {
		t.Fatalf("next = %s, want fail", got)
	}
	if got := slicing.RunBase(bp, nil); got != logic.Unknown {
		t.Fatalf("ε = %s, want ?", got)
	}
}
