package cfg

import (
	"rvgo/internal/coenable"
)

// Coenable computes COENABLE_{P,{match}} for the property monitored by the
// grammar, as the least fixed point of the paper's equations (§3, "CFG
// Example"):
//
//	G(ε)  = {∅}      G(e) = {{e}}      G(A) = ⋃_{A→β} G(β)
//	G(β1 β2) = {T1 ∪ T2 | T1 ∈ G(β1), T2 ∈ G(β2)}
//	C(x) = {T1 ∪ T2 | A → β1 x β2 ∈ Π, T1 ∈ C(A), T2 ∈ G(β2)}
//	COENABLE(e) = C(e)
//
// with the implicit base C(S) ⊇ {∅} for the start symbol (the suffix after
// the root may be empty). ∅ members are dropped from the final result and
// each family is minimized, exactly as for the finite-state analysis. A
// state-indexed technique à la Tracematches cannot exist here because the
// monitor's state space is unbounded; this grammar-level analysis is what
// makes the paper's GC formalism-independent.
func (g *Grammar) Coenable() coenable.Sets {
	nNT := len(g.Nonterminals)
	nT := len(g.Alphabet)

	// gen[nt] is G(nt) as a set family; genProd caches G(β) per production
	// suffix on demand via genSeq.
	gen := make([]map[coenable.EventSet]bool, nNT)
	for i := range gen {
		gen[i] = map[coenable.EventSet]bool{}
	}
	genSym := func(s int) map[coenable.EventSet]bool {
		if IsTerm(s) {
			return map[coenable.EventSet]bool{coenable.EventSet(1) << uint(s): true}
		}
		return gen[NTIndex(s)]
	}
	// G fixpoint.
	for changed := true; changed; {
		changed = false
		for _, p := range g.Prods {
			// G(β) for the whole RHS: product of unions.
			acc := map[coenable.EventSet]bool{0: true}
			for _, s := range p.RHS {
				acc = product(acc, genSym(s))
				if len(acc) == 0 {
					break
				}
			}
			for t := range acc {
				if !gen[p.LHS][t] {
					gen[p.LHS][t] = true
					changed = true
				}
			}
		}
	}

	// C fixpoint over nonterminals and terminals.
	coenNT := make([]map[coenable.EventSet]bool, nNT)
	for i := range coenNT {
		coenNT[i] = map[coenable.EventSet]bool{}
	}
	coenNT[0][0] = true // base: C(S) ∋ ∅
	coenT := make([]map[coenable.EventSet]bool, nT)
	for i := range coenT {
		coenT[i] = map[coenable.EventSet]bool{}
	}
	for changed := true; changed; {
		changed = false
		for _, p := range g.Prods {
			for i, x := range p.RHS {
				// G(β2) for the suffix after x.
				suffix := map[coenable.EventSet]bool{0: true}
				for _, s := range p.RHS[i+1:] {
					suffix = product(suffix, genSym(s))
					if len(suffix) == 0 {
						break
					}
				}
				contrib := product(coenNT[p.LHS], suffix)
				var dst map[coenable.EventSet]bool
				if IsTerm(x) {
					dst = coenT[x]
				} else {
					dst = coenNT[NTIndex(x)]
				}
				for t := range contrib {
					if !dst[t] {
						dst[t] = true
						changed = true
					}
				}
			}
		}
	}

	out := make(coenable.Sets, nT)
	for e := 0; e < nT; e++ {
		family := map[coenable.EventSet]bool{}
		for t := range coenT[e] {
			if t != 0 { // drop ∅ (paper §3)
				family[t] = true
			}
		}
		out[e] = coenable.Minimize(family)
	}
	return out
}

// Enable computes ENABLE_{P,{match}}: the family of event sets occurring
// strictly before each terminal in words of the language. It is the mirror
// fixpoint of Coenable (prefixes instead of suffixes); ∅ members are kept,
// marking creation events.
func (g *Grammar) Enable() coenable.Sets {
	nNT := len(g.Nonterminals)
	nT := len(g.Alphabet)
	gen := make([]map[coenable.EventSet]bool, nNT)
	for i := range gen {
		gen[i] = map[coenable.EventSet]bool{}
	}
	genSym := func(s int) map[coenable.EventSet]bool {
		if IsTerm(s) {
			return map[coenable.EventSet]bool{coenable.EventSet(1) << uint(s): true}
		}
		return gen[NTIndex(s)]
	}
	for changed := true; changed; {
		changed = false
		for _, p := range g.Prods {
			acc := map[coenable.EventSet]bool{0: true}
			for _, s := range p.RHS {
				acc = product(acc, genSym(s))
				if len(acc) == 0 {
					break
				}
			}
			for t := range acc {
				if !gen[p.LHS][t] {
					gen[p.LHS][t] = true
					changed = true
				}
			}
		}
	}

	enNT := make([]map[coenable.EventSet]bool, nNT)
	for i := range enNT {
		enNT[i] = map[coenable.EventSet]bool{}
	}
	enNT[0][0] = true // base: nothing precedes the root
	enT := make([]map[coenable.EventSet]bool, nT)
	for i := range enT {
		enT[i] = map[coenable.EventSet]bool{}
	}
	for changed := true; changed; {
		changed = false
		for _, p := range g.Prods {
			for i, x := range p.RHS {
				prefix := map[coenable.EventSet]bool{0: true}
				for _, s := range p.RHS[:i] {
					prefix = product(prefix, genSym(s))
					if len(prefix) == 0 {
						break
					}
				}
				contrib := product(enNT[p.LHS], prefix)
				var dst map[coenable.EventSet]bool
				if IsTerm(x) {
					dst = enT[x]
				} else {
					dst = enNT[NTIndex(x)]
				}
				for t := range contrib {
					if !dst[t] {
						dst[t] = true
						changed = true
					}
				}
			}
		}
	}

	out := make(coenable.Sets, nT)
	for e := 0; e < nT; e++ {
		sets := make([]coenable.EventSet, 0, len(enT[e]))
		for t := range enT[e] {
			sets = append(sets, t)
		}
		sortEventSets(sets)
		out[e] = sets
	}
	return out
}

func product(a, b map[coenable.EventSet]bool) map[coenable.EventSet]bool {
	out := map[coenable.EventSet]bool{}
	for t1 := range a {
		for t2 := range b {
			out[t1|t2] = true
		}
	}
	return out
}

func sortEventSets(sets []coenable.EventSet) {
	for i := 1; i < len(sets); i++ {
		for j := i; j > 0 && less(sets[j], sets[j-1]); j-- {
			sets[j], sets[j-1] = sets[j-1], sets[j]
		}
	}
}

func less(a, b coenable.EventSet) bool {
	if a.Count() != b.Count() {
		return a.Count() < b.Count()
	}
	return a < b
}
