package cfg

import (
	"fmt"
	"sort"

	"rvgo/internal/logic"
)

// This file implements an SLR(1) shift-reduce recognizer as the fast CFG
// monitor backend. JavaMOP's CFG plugin monitors with an LR-style stack
// machine rather than chart parsing: per event the work is a few table
// lookups and the monitor state is the parse stack, whose depth is the
// grammar's nesting depth — for SAFELOCK, the current lock/method nesting —
// instead of the Earley chart, which grows with the slice length.
//
// Not every grammar is SLR(1); Compile tries SLR first and transparently
// falls back to the Earley monitor (earley.go), which accepts all CFGs.
// Both backends implement the same verdict semantics (match = trace in the
// language, fail = not a viable prefix) and are cross-checked in tests.

// lr0Item is an LR(0) item: production prod with the dot at position dot.
type lr0Item struct {
	prod int
	dot  int
}

type lr0Set []lr0Item

// actionKind distinguishes parse actions.
type actionKind uint8

const (
	actNone actionKind = iota
	actShift
	actReduce
	actAccept
)

type action struct {
	kind actionKind
	arg  int // shift: target state; reduce: production index
}

// slrTable is the parse table of the augmented grammar S' → S.
type slrTable struct {
	g *Grammar
	// action[state][terminal]; the end-of-input column is index nT.
	action [][]action
	// gotoNT[state][nonterminal].
	gotoNT [][]int
	// accepting state prediction uses FOLLOW-driven reduces with the $
	// column; prodLen/prodLHS are cached for reduce steps.
	prodLen []int
	prodLHS []int
}

// buildSLR constructs the SLR(1) table, or reports why the grammar is not
// SLR(1).
func buildSLR(g *Grammar) (*slrTable, error) {
	nT := len(g.Alphabet)
	nNT := len(g.Nonterminals)

	// Augment: production index len(g.Prods) is S' → S with LHS index nNT.
	augProd := len(g.Prods)
	prodLen := make([]int, len(g.Prods)+1)
	prodLHS := make([]int, len(g.Prods)+1)
	for i, p := range g.Prods {
		prodLen[i] = len(p.RHS)
		prodLHS[i] = p.LHS
	}
	prodLen[augProd] = 1
	prodLHS[augProd] = nNT

	rhsOf := func(prod int) []int {
		if prod == augProd {
			return []int{NTSym(0)}
		}
		return g.Prods[prod].RHS
	}

	closure := func(seed []lr0Item) lr0Set {
		seen := map[lr0Item]bool{}
		var out lr0Set
		var work []lr0Item
		add := func(it lr0Item) {
			if !seen[it] {
				seen[it] = true
				work = append(work, it)
				out = append(out, it)
			}
		}
		for _, it := range seed {
			add(it)
		}
		for i := 0; i < len(work); i++ {
			it := work[i]
			rhs := rhsOf(it.prod)
			if it.dot >= len(rhs) || IsTerm(rhs[it.dot]) {
				continue
			}
			nt := NTIndex(rhs[it.dot])
			for _, pi := range g.prodsByLHS[nt] {
				add(lr0Item{prod: pi, dot: 0})
			}
		}
		sort.Slice(out, func(a, b int) bool {
			if out[a].prod != out[b].prod {
				return out[a].prod < out[b].prod
			}
			return out[a].dot < out[b].dot
		})
		return out
	}

	key := func(s lr0Set) string {
		b := make([]byte, 0, len(s)*4)
		for _, it := range s {
			b = append(b, byte(it.prod), byte(it.prod>>8), byte(it.dot), ';')
		}
		return string(b)
	}

	var states []lr0Set
	index := map[string]int{}
	addState := func(s lr0Set) int {
		k := key(s)
		if i, ok := index[k]; ok {
			return i
		}
		i := len(states)
		index[k] = i
		states = append(states, s)
		return i
	}
	addState(closure([]lr0Item{{prod: augProd, dot: 0}}))

	follow := followSets(g)

	var tbl slrTable
	tbl.g = g
	tbl.prodLen = prodLen
	tbl.prodLHS = prodLHS

	for si := 0; si < len(states); si++ {
		st := states[si]
		// Partition by symbol after the dot.
		bySym := map[int][]lr0Item{}
		var reduces []lr0Item
		for _, it := range st {
			rhs := rhsOf(it.prod)
			if it.dot < len(rhs) {
				s := rhs[it.dot]
				bySym[s] = append(bySym[s], lr0Item{prod: it.prod, dot: it.dot + 1})
			} else {
				reduces = append(reduces, it)
			}
		}
		row := make([]action, nT+1)
		gotoRow := make([]int, nNT)
		for i := range gotoRow {
			gotoRow[i] = -1
		}
		var syms []int
		for s := range bySym {
			syms = append(syms, s)
		}
		sort.Ints(syms)
		for _, s := range syms {
			target := addState(closure(bySym[s]))
			if IsTerm(s) {
				row[s] = action{kind: actShift, arg: target}
			} else {
				gotoRow[NTIndex(s)] = target
			}
		}
		for _, it := range reduces {
			if it.prod == augProd {
				if row[nT].kind != actNone {
					return nil, fmt.Errorf("cfg: accept conflict")
				}
				row[nT] = action{kind: actAccept}
				continue
			}
			lhs := g.Prods[it.prod].LHS
			for t := 0; t <= nT; t++ {
				if !follow[lhs][t] {
					continue
				}
				switch row[t].kind {
				case actNone:
					row[t] = action{kind: actReduce, arg: it.prod}
				case actShift:
					return nil, fmt.Errorf("cfg: shift/reduce conflict on %s", termName(g, t))
				case actReduce, actAccept:
					return nil, fmt.Errorf("cfg: reduce/reduce conflict on %s", termName(g, t))
				}
			}
		}
		// Rows are appended in state order; states grow during the loop.
		tbl.action = append(tbl.action, row)
		tbl.gotoNT = append(tbl.gotoNT, gotoRow)
	}
	return &tbl, nil
}

func termName(g *Grammar, t int) string {
	if t == len(g.Alphabet) {
		return "$"
	}
	return g.Alphabet[t]
}

// followSets computes FOLLOW over terminals plus $ (index nT); FOLLOW(S)
// contains $.
func followSets(g *Grammar) []map[int]bool {
	nT := len(g.Alphabet)
	nNT := len(g.Nonterminals)
	first := firstSets(g)
	follow := make([]map[int]bool, nNT)
	for i := range follow {
		follow[i] = map[int]bool{}
	}
	follow[0][nT] = true
	for changed := true; changed; {
		changed = false
		add := func(nt, t int) {
			if !follow[nt][t] {
				follow[nt][t] = true
				changed = true
			}
		}
		for _, p := range g.Prods {
			for i, s := range p.RHS {
				if IsTerm(s) {
					continue
				}
				nt := NTIndex(s)
				nullableRest := true
				for _, s2 := range p.RHS[i+1:] {
					if IsTerm(s2) {
						add(nt, s2)
						nullableRest = false
						break
					}
					for t := range first[NTIndex(s2)] {
						add(nt, t)
					}
					if !g.Nullable(NTIndex(s2)) {
						nullableRest = false
						break
					}
				}
				if nullableRest {
					for t := range follow[p.LHS] {
						add(nt, t)
					}
				}
			}
		}
	}
	return follow
}

// firstSets computes FIRST over terminals for each nonterminal.
func firstSets(g *Grammar) []map[int]bool {
	first := make([]map[int]bool, len(g.Nonterminals))
	for i := range first {
		first[i] = map[int]bool{}
	}
	for changed := true; changed; {
		changed = false
		for _, p := range g.Prods {
			for _, s := range p.RHS {
				if IsTerm(s) {
					if !first[p.LHS][s] {
						first[p.LHS][s] = true
						changed = true
					}
					break
				}
				for t := range first[NTIndex(s)] {
					if !first[p.LHS][t] {
						first[p.LHS][t] = true
						changed = true
					}
				}
				if !g.Nullable(NTIndex(s)) {
					break
				}
			}
		}
	}
	return first
}

// slrState is the immutable monitor state: the LR parse stack after
// consuming the trace so far. dead marks a non-viable prefix.
type slrState struct {
	tbl   *slrTable
	stack []int // LR states, stack[0] = 0; never mutated after creation
	dead  bool
}

// Step implements logic.State: shift the terminal (running any reduces
// first), producing a fresh stack.
func (s *slrState) Step(sym int) logic.State {
	if s.dead {
		return s
	}
	// Copy-on-write: reductions and the shift build a new stack. The
	// prefix copy is O(depth); depth is the grammar nesting level.
	stack := make([]int, len(s.stack), len(s.stack)+4)
	copy(stack, s.stack)
	for {
		top := stack[len(stack)-1]
		act := s.tbl.action[top][sym]
		switch act.kind {
		case actShift:
			stack = append(stack, act.arg)
			return &slrState{tbl: s.tbl, stack: stack}
		case actReduce:
			n := s.tbl.prodLen[act.arg]
			stack = stack[:len(stack)-n]
			nt := s.tbl.prodLHS[act.arg]
			g := s.tbl.gotoNT[stack[len(stack)-1]][nt]
			if g < 0 {
				return &slrState{tbl: s.tbl, dead: true}
			}
			stack = append(stack, g)
		default:
			// No action on this terminal: not a viable prefix, ever.
			return &slrState{tbl: s.tbl, dead: true}
		}
	}
}

// Category implements logic.State: match iff the trace consumed so far is
// in the language, decided by running the $-column reduces on a scratch
// copy of the stack; fail for dead prefixes.
func (s *slrState) Category() logic.Category {
	if s.dead {
		return logic.Fail
	}
	nT := len(s.tbl.g.Alphabet)
	stack := append([]int(nil), s.stack...)
	for {
		top := stack[len(stack)-1]
		act := s.tbl.action[top][nT]
		switch act.kind {
		case actAccept:
			return logic.Match
		case actReduce:
			n := s.tbl.prodLen[act.arg]
			stack = stack[:len(stack)-n]
			nt := s.tbl.prodLHS[act.arg]
			g := s.tbl.gotoNT[stack[len(stack)-1]][nt]
			if g < 0 {
				return logic.Unknown
			}
			stack = append(stack, g)
		default:
			return logic.Unknown
		}
	}
}

// SLRMonitor is the table-driven CFG blueprint.
type SLRMonitor struct {
	g   *Grammar
	tbl *slrTable
}

// CompileSLR builds an SLR(1) monitor for the grammar, or an error if the
// grammar is not SLR(1).
func CompileSLR(g *Grammar) (*SLRMonitor, error) {
	tbl, err := buildSLR(g)
	if err != nil {
		return nil, err
	}
	return &SLRMonitor{g: g, tbl: tbl}, nil
}

// Alphabet implements logic.Blueprint.
func (m *SLRMonitor) Alphabet() []string { return m.g.Alphabet }

// Start implements logic.Blueprint.
func (m *SLRMonitor) Start() logic.State { return &slrState{tbl: m.tbl, stack: []int{0}} }

// Categories implements logic.Blueprint.
func (m *SLRMonitor) Categories() []logic.Category {
	return []logic.Category{logic.Unknown, logic.Match, logic.Fail}
}

// Grammar returns the underlying grammar (for the coenable analysis).
func (m *SLRMonitor) Grammar() *Grammar { return m.g }

var _ logic.Blueprint = (*SLRMonitor)(nil)
