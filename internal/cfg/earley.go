package cfg

import (
	"sort"

	"rvgo/internal/logic"
)

// item is an Earley item [A → α·β, start]: production prod with the dot at
// position dot, begun at input position start.
type item struct {
	prod  int
	dot   int
	start int
}

// itemSet is a frozen, sorted, deduplicated Earley item set for one input
// position. Sets are immutable once built, which is what allows monitor
// states to share chart prefixes.
type itemSet []item

// Monitor is the CFG blueprint. Its states are persistent Earley charts.
type Monitor struct {
	g     *Grammar
	start logic.State
}

// Compile builds an Earley CFG monitor from production syntax. Most
// callers should prefer CompileAuto, which uses the SLR(1) backend when
// the grammar allows it.
func Compile(src string, alphabet []string) (*Monitor, error) {
	g, err := Parse(src, alphabet)
	if err != nil {
		return nil, err
	}
	return FromGrammar(g), nil
}

// CompileAuto builds the fastest available monitor for the grammar: the
// table-driven SLR(1) recognizer when the grammar is SLR(1), otherwise
// the general Earley recognizer. Both carry the grammar for the §3
// coenable analysis.
func CompileAuto(src string, alphabet []string) (logic.Blueprint, error) {
	g, err := Parse(src, alphabet)
	if err != nil {
		return nil, err
	}
	if m, err := CompileSLR(g); err == nil {
		return m, nil
	}
	return FromGrammar(g), nil
}

// StackDepthForTest exposes the SLR parse-stack depth of a state (tests
// assert the O(nesting) memory claim).
func StackDepthForTest(s logic.State) int {
	if ss, ok := s.(*slrState); ok {
		return len(ss.stack)
	}
	return -1
}

// FromGrammar wraps an existing grammar as a monitor blueprint.
func FromGrammar(g *Grammar) *Monitor {
	m := &Monitor{g: g}
	set0 := g.closure(nil, 0, func(yield func(item)) {
		for _, pi := range g.prodsByLHS[0] {
			yield(item{prod: pi, dot: 0, start: 0})
		}
	})
	m.start = &chartState{g: g, sets: []itemSet{set0}}
	return m
}

// chartState is an immutable Earley chart: sets[k] holds the items after
// consuming k events. Step shares the prefix of sets with its successor.
type chartState struct {
	g    *Grammar
	sets []itemSet
	dead bool // viable-prefix failure: sink
}

// Step implements logic.State.
func (c *chartState) Step(sym int) logic.State {
	if c.dead {
		return c
	}
	g := c.g
	n := len(c.sets)
	cur := c.sets[n-1]

	next := g.closure(c.sets, n, func(yield func(item)) {
		for _, it := range cur {
			p := g.Prods[it.prod]
			if it.dot < len(p.RHS) && p.RHS[it.dot] == sym {
				yield(item{prod: it.prod, dot: it.dot + 1, start: it.start})
			}
		}
	})
	if len(next) == 0 {
		// No viable continuation: the trace is not a prefix of any word in
		// the language, and never will be again.
		return &chartState{g: g, dead: true}
	}
	sets := make([]itemSet, n+1)
	copy(sets, c.sets)
	sets[n] = next
	return &chartState{g: g, sets: sets}
}

// Category implements logic.State: match when the whole trace derives the
// start symbol, fail when no continuation is viable, ? otherwise.
func (c *chartState) Category() logic.Category {
	if c.dead {
		return logic.Fail
	}
	if len(c.sets) == 1 {
		// Empty trace: match iff the start symbol is nullable.
		if c.g.Nullable(0) {
			return logic.Match
		}
		return logic.Unknown
	}
	last := c.sets[len(c.sets)-1]
	for _, it := range last {
		p := c.g.Prods[it.prod]
		if p.LHS == 0 && it.start == 0 && it.dot == len(p.RHS) {
			return logic.Match
		}
	}
	return logic.Unknown
}

// closure computes an Earley item set: seeds are produced by seed, then
// prediction and completion are applied to a fixpoint. Nullable
// nonterminals are handled by Aycock–Horspool style eager advancement over
// nullable predictions. prior is the chart so far (for completion); pos the
// position of the set being built.
func (g *Grammar) closure(prior []itemSet, pos int, seed func(yield func(item))) itemSet {
	seen := map[item]bool{}
	var work []item
	add := func(it item) {
		if !seen[it] {
			seen[it] = true
			work = append(work, it)
		}
	}
	seed(add)
	for i := 0; i < len(work); i++ {
		it := work[i]
		p := g.Prods[it.prod]
		if it.dot < len(p.RHS) {
			s := p.RHS[it.dot]
			if !IsTerm(s) {
				nt := NTIndex(s)
				// Predict.
				for _, pi := range g.prodsByLHS[nt] {
					add(item{prod: pi, dot: 0, start: pos})
				}
				// Nullable advancement.
				if g.Nullable(nt) {
					add(item{prod: it.prod, dot: it.dot + 1, start: it.start})
				}
			}
			continue
		}
		// Complete: advance items in set it.start waiting on p.LHS. A
		// completed item with start == pos spans the empty string, which
		// can only happen when p.LHS is nullable; the Aycock–Horspool
		// nullable advancement above already covers that case.
		if it.start == pos {
			continue
		}
		from := prior[it.start]
		for j := 0; j < len(from); j++ {
			w := from[j]
			wp := g.Prods[w.prod]
			if w.dot < len(wp.RHS) && !IsTerm(wp.RHS[w.dot]) && NTIndex(wp.RHS[w.dot]) == p.LHS {
				add(item{prod: w.prod, dot: w.dot + 1, start: w.start})
			}
		}
	}
	out := make(itemSet, len(work))
	copy(out, work)
	sort.Slice(out, func(a, b int) bool {
		if out[a].prod != out[b].prod {
			return out[a].prod < out[b].prod
		}
		if out[a].dot != out[b].dot {
			return out[a].dot < out[b].dot
		}
		return out[a].start < out[b].start
	})
	return out
}

// Alphabet implements logic.Blueprint.
func (m *Monitor) Alphabet() []string { return m.g.Alphabet }

// Start implements logic.Blueprint.
func (m *Monitor) Start() logic.State { return m.start }

// Categories implements logic.Blueprint.
func (m *Monitor) Categories() []logic.Category {
	return []logic.Category{logic.Unknown, logic.Match, logic.Fail}
}

// Grammar returns the underlying grammar (for the coenable analysis).
func (m *Monitor) Grammar() *Grammar { return m.g }

var _ logic.Blueprint = (*Monitor)(nil)
