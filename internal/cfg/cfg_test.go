package cfg_test

import (
	"math/rand"
	"testing"

	"rvgo/internal/cfg"
	"rvgo/internal/coenable"
	"rvgo/internal/logic"
)

var lockAlphabet = []string{"acquire", "release", "begin", "end"}

const safeLockGrammar = "S -> S begin S end | S acquire S release | epsilon"

func mustCompile(t *testing.T, grammar string, alphabet []string) *cfg.Monitor {
	t.Helper()
	m, err := cfg.Compile(grammar, alphabet)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return m
}

func classify(m *cfg.Monitor, trace []int) logic.Category {
	s := m.Start()
	for _, a := range trace {
		s = s.Step(a)
	}
	return s.Category()
}

const (
	acq = 0
	rel = 1
	beg = 2
	end = 3
)

func TestSafeLockRecognition(t *testing.T) {
	m := mustCompile(t, safeLockGrammar, lockAlphabet)
	cases := []struct {
		trace []int
		want  logic.Category
	}{
		{nil, logic.Match}, // ε ∈ L
		{[]int{acq}, logic.Unknown},
		{[]int{acq, rel}, logic.Match},
		{[]int{beg, acq, rel, end}, logic.Match},
		{[]int{acq, beg, rel}, logic.Fail}, // release closes over begin: never properly nested
		{[]int{beg, end, beg, end}, logic.Match},
		{[]int{acq, acq, rel, rel}, logic.Match},
		{[]int{rel}, logic.Fail},           // release without acquire
		{[]int{acq, rel, rel}, logic.Fail}, // unbalanced release
		{[]int{beg, acq, end}, logic.Fail}, // end closes before release
	}
	for _, c := range cases {
		if got := classify(m, c.trace); got != c.want {
			t.Errorf("trace %v: got %s want %s", c.trace, got, c.want)
		}
	}
}

func TestFailIsPermanent(t *testing.T) {
	m := mustCompile(t, safeLockGrammar, lockAlphabet)
	s := m.Start().Step(rel) // fail
	if s.Category() != logic.Fail {
		t.Fatal("expected fail")
	}
	for a := range lockAlphabet {
		if s.Step(a).Category() != logic.Fail {
			t.Fatal("fail must be a sink")
		}
	}
}

// TestPersistentCharts: stepping must not mutate the receiver — two
// diverging continuations of the same state classify independently.
func TestPersistentCharts(t *testing.T) {
	m := mustCompile(t, safeLockGrammar, lockAlphabet)
	base := m.Start().Step(acq)
	s1 := base.Step(rel)
	s2 := base.Step(acq)
	if s1.Category() != logic.Match {
		t.Fatalf("s1 = %s", s1.Category())
	}
	if s2.Category() != logic.Unknown {
		t.Fatalf("s2 = %s", s2.Category())
	}
	// And the base state still behaves as before.
	if base.Step(rel).Category() != logic.Match {
		t.Fatal("base state was corrupted by a later step")
	}
}

// TestAgainstBruteForce compares Earley recognition with a brute-force
// derivation enumeration for all traces up to length 6.
func TestAgainstBruteForce(t *testing.T) {
	m := mustCompile(t, safeLockGrammar, lockAlphabet)
	var walk func(trace []int)
	walk = func(trace []int) {
		if len(trace) > 6 {
			return
		}
		got := classify(m, trace) == logic.Match
		want := inDyckLanguage(trace)
		if got != want {
			t.Fatalf("trace %v: earley %v, brute force %v", trace, got, want)
		}
		for a := range lockAlphabet {
			walk(append(trace, a))
		}
	}
	walk(nil)
}

// inDyckLanguage decides membership in the SafeLock language directly: the
// grammar generates exactly the balanced strings over the two bracket
// pairs acquire/release and begin/end (a two-letter Dyck language).
func inDyckLanguage(trace []int) bool {
	var stack []int
	for _, a := range trace {
		switch a {
		case acq, beg:
			stack = append(stack, a)
		case rel:
			if len(stack) == 0 || stack[len(stack)-1] != acq {
				return false
			}
			stack = stack[:len(stack)-1]
		case end:
			if len(stack) == 0 || stack[len(stack)-1] != beg {
				return false
			}
			stack = stack[:len(stack)-1]
		}
	}
	return len(stack) == 0
}

func TestEpsilonGrammarHandling(t *testing.T) {
	// Nullable chains: A -> B B, B -> epsilon | a.
	m := mustCompile(t, "A -> B B\nB -> epsilon | a", []string{"a"})
	if got := classify(m, nil); got != logic.Match {
		t.Fatalf("ε: %s", got)
	}
	if got := classify(m, []int{0}); got != logic.Match {
		t.Fatalf("a: %s", got)
	}
	if got := classify(m, []int{0, 0}); got != logic.Match {
		t.Fatalf("aa: %s", got)
	}
	if got := classify(m, []int{0, 0, 0}); got != logic.Fail {
		t.Fatalf("aaa: %s", got)
	}
}

func TestGrammarParserErrors(t *testing.T) {
	bad := []string{
		"",
		"S acquire release", // missing ->
		"acquire -> S",      // terminal head
	}
	for _, g := range bad {
		if _, err := cfg.Compile(g, lockAlphabet); err == nil {
			t.Errorf("grammar %q: expected error", g)
		}
	}
}

// TestCoenableSafeLock checks the grammar-level coenable fixpoint of §3 on
// the paper's own CFG example.
func TestCoenableSafeLock(t *testing.T) {
	g, err := cfg.Parse(safeLockGrammar, lockAlphabet)
	if err != nil {
		t.Fatal(err)
	}
	sets := g.Coenable()

	has := func(sym int, want coenable.EventSet) bool {
		for _, s := range sets[sym] {
			if s == want {
				return true
			}
		}
		return false
	}
	// After an acquire, a release must still be possible.
	if !has(acq, coenable.EventSet(1<<rel)) {
		t.Errorf("COENABLE(acquire) = %v must contain {release}", sets[acq])
	}
	// After a begin, an end must still be possible.
	if !has(beg, coenable.EventSet(1<<end)) {
		t.Errorf("COENABLE(begin) = %v must contain {end}", sets[beg])
	}
	// Every set for acquire contains release (it can never be closed
	// without one).
	for _, s := range sets[acq] {
		if !s.Has(rel) {
			t.Errorf("COENABLE(acquire) member %v lacks release", s)
		}
	}
}

// TestEnableSafeLock: acquire and begin can start a matching trace;
// release and end cannot.
func TestEnableSafeLock(t *testing.T) {
	g, err := cfg.Parse(safeLockGrammar, lockAlphabet)
	if err != nil {
		t.Fatal(err)
	}
	en := g.Enable()
	hasEmpty := func(sym int) bool {
		for _, s := range en[sym] {
			if s == 0 {
				return true
			}
		}
		return false
	}
	if !hasEmpty(acq) || !hasEmpty(beg) {
		t.Error("acquire and begin must be creation events")
	}
	if hasEmpty(rel) || hasEmpty(end) {
		t.Error("release and end must not be creation events")
	}
}

// TestRandomBalancedTraces feeds long random balanced traces and checks
// match; perturbed ones must not match.
func TestRandomBalancedTraces(t *testing.T) {
	m := mustCompile(t, safeLockGrammar, lockAlphabet)
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		trace := genBalanced(rng, 0, 24)
		if got := classify(m, trace); got != logic.Match {
			t.Fatalf("balanced trace %v classified %s", trace, got)
		}
		if len(trace) >= 2 {
			// Truncation is a strict prefix: unknown (extendable) and not
			// match unless the prefix happens to be balanced.
			pfx := trace[:len(trace)-1]
			if got := classify(m, pfx); got == logic.Fail {
				t.Fatalf("prefix of balanced trace must not fail: %v", pfx)
			}
		}
	}
}

func genBalanced(rng *rand.Rand, depth, budget int) []int {
	if budget <= 1 || (depth > 0 && rng.Intn(3) == 0) {
		return nil
	}
	var out []int
	for budget > 1 && rng.Intn(2) == 0 {
		inner := genBalanced(rng, depth+1, budget/2)
		if rng.Intn(2) == 0 {
			out = append(out, acq)
			out = append(out, inner...)
			out = append(out, rel)
		} else {
			out = append(out, beg)
			out = append(out, inner...)
			out = append(out, end)
		}
		budget -= len(inner) + 2
	}
	return out
}

func TestGrammarString(t *testing.T) {
	g, err := cfg.Parse(safeLockGrammar, lockAlphabet)
	if err != nil {
		t.Fatal(err)
	}
	want := "S -> S begin S end\nS -> S acquire S release\nS -> epsilon"
	if g.String() != want {
		t.Fatalf("String() = %q", g.String())
	}
}
