// Package cfg implements the context-free-grammar plugin of the RV system
// (the `cfg:` block of Figure 4, SAFELOCK). Traces in the language of the
// grammar are classified match; traces that are not a viable prefix of any
// word in the language are classified fail; all others ?.
//
// Recognition is incremental Earley parsing with persistent (structurally
// shared) charts, so monitor states satisfy the engine's immutability
// contract: Step never mutates the receiver, and copying a progenitor's
// state is a pointer copy. Because the CFG monitor's state space is
// unbounded, the blueprint is *not* Explorable; coenable sets are computed
// directly from the grammar by the paper's G/C fixpoint equations
// (coenable.go in this package) — the case that motivates the paper's
// formalism-independent design, since Tracematches' state-indexed technique
// cannot apply here.
package cfg

import (
	"fmt"
	"strings"
)

// Grammar is a context-free grammar (N, E, S, Π). Terminals are event
// symbols (indices into Alphabet); nonterminals are negative integers
// encoded by nonterminal index nt as -(nt+1). The start symbol is
// nonterminal 0, which is the left-hand side of the first production
// ("the first symbol seen is always assumed the start symbol").
type Grammar struct {
	Alphabet     []string
	Nonterminals []string
	Prods        []Prod
	prodsByLHS   [][]int // production indices per nonterminal
	nullable     []bool  // per nonterminal
}

// Prod is one production A → β. RHS symbols: ≥0 terminal, <0 nonterminal.
type Prod struct {
	LHS int // nonterminal index
	RHS []int
}

// IsTerm reports whether an RHS symbol is a terminal.
func IsTerm(sym int) bool { return sym >= 0 }

// NTIndex decodes a nonterminal RHS symbol.
func NTIndex(sym int) int { return -sym - 1 }

// NTSym encodes a nonterminal index as an RHS symbol.
func NTSym(nt int) int { return -(nt + 1) }

// Parse parses the `cfg:` production syntax of Figure 4:
//
//	S -> S begin S end | S acquire S release | epsilon
//
// Multiple productions may be given separated by commas or newlines; every
// lowercase identifier that names an event in alphabet is a terminal,
// every other identifier is a nonterminal.
func Parse(src string, alphabet []string) (*Grammar, error) {
	terms := map[string]int{}
	for i, e := range alphabet {
		terms[e] = i
	}
	g := &Grammar{Alphabet: alphabet}
	nts := map[string]int{}
	ntOf := func(name string) int {
		if i, ok := nts[name]; ok {
			return i
		}
		i := len(g.Nonterminals)
		nts[name] = i
		g.Nonterminals = append(g.Nonterminals, name)
		return i
	}

	// Split into rules on newlines/commas, keeping "A -> alt | alt" whole.
	var rules []string
	for _, line := range strings.FieldsFunc(src, func(r rune) bool { return r == '\n' || r == ',' || r == ';' }) {
		line = strings.TrimSpace(line)
		if line != "" {
			rules = append(rules, line)
		}
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("cfg: empty grammar")
	}
	for _, rule := range rules {
		parts := strings.SplitN(rule, "->", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("cfg: production %q missing '->'", rule)
		}
		lhsName := strings.TrimSpace(parts[0])
		if lhsName == "" || strings.ContainsAny(lhsName, " \t") {
			return nil, fmt.Errorf("cfg: bad production head %q", lhsName)
		}
		if _, isTerm := terms[lhsName]; isTerm {
			return nil, fmt.Errorf("cfg: event %q cannot be a production head", lhsName)
		}
		lhs := ntOf(lhsName)
		for _, alt := range strings.Split(parts[1], "|") {
			fields := strings.Fields(alt)
			var rhs []int
			for _, f := range fields {
				switch {
				case f == "epsilon":
					// contributes nothing
				default:
					if t, ok := terms[f]; ok {
						rhs = append(rhs, t)
					} else {
						rhs = append(rhs, NTSym(ntOf(f)))
					}
				}
			}
			g.Prods = append(g.Prods, Prod{LHS: lhs, RHS: rhs})
		}
	}
	g.finish()
	return g, nil
}

// New builds a grammar programmatically; prods use NTSym for nonterminals.
func New(alphabet, nonterminals []string, prods []Prod) (*Grammar, error) {
	g := &Grammar{Alphabet: alphabet, Nonterminals: nonterminals, Prods: prods}
	for _, p := range prods {
		if p.LHS < 0 || p.LHS >= len(nonterminals) {
			return nil, fmt.Errorf("cfg: production with bad LHS %d", p.LHS)
		}
		for _, s := range p.RHS {
			if IsTerm(s) && s >= len(alphabet) {
				return nil, fmt.Errorf("cfg: bad terminal %d", s)
			}
			if !IsTerm(s) && NTIndex(s) >= len(nonterminals) {
				return nil, fmt.Errorf("cfg: bad nonterminal in RHS")
			}
		}
	}
	g.finish()
	return g, nil
}

func (g *Grammar) finish() {
	g.prodsByLHS = make([][]int, len(g.Nonterminals))
	for i, p := range g.Prods {
		g.prodsByLHS[p.LHS] = append(g.prodsByLHS[p.LHS], i)
	}
	// Nullability fixpoint.
	g.nullable = make([]bool, len(g.Nonterminals))
	for changed := true; changed; {
		changed = false
		for _, p := range g.Prods {
			if g.nullable[p.LHS] {
				continue
			}
			all := true
			for _, s := range p.RHS {
				if IsTerm(s) || !g.nullable[NTIndex(s)] {
					all = false
					break
				}
			}
			if all {
				g.nullable[p.LHS] = true
				changed = true
			}
		}
	}
}

// Nullable reports whether nonterminal nt derives ε.
func (g *Grammar) Nullable(nt int) bool { return g.nullable[nt] }

// String renders the grammar in production syntax.
func (g *Grammar) String() string {
	var b strings.Builder
	for i, p := range g.Prods {
		if i > 0 {
			b.WriteString("\n")
		}
		fmt.Fprintf(&b, "%s ->", g.Nonterminals[p.LHS])
		if len(p.RHS) == 0 {
			b.WriteString(" epsilon")
		}
		for _, s := range p.RHS {
			if IsTerm(s) {
				b.WriteString(" " + g.Alphabet[s])
			} else {
				b.WriteString(" " + g.Nonterminals[NTIndex(s)])
			}
		}
	}
	return b.String()
}
