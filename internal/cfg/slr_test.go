package cfg_test

import (
	"testing"

	"rvgo/internal/cfg"
	"rvgo/internal/logic"
)

// TestSLRMatchesEarley cross-checks the table-driven recognizer against
// the Earley monitor on every SafeLock trace up to length 6.
func TestSLRMatchesEarley(t *testing.T) {
	g, err := cfg.Parse(safeLockGrammar, lockAlphabet)
	if err != nil {
		t.Fatal(err)
	}
	slr, err := cfg.CompileSLR(g)
	if err != nil {
		t.Fatalf("SafeLock must be SLR(1): %v", err)
	}
	earley := cfg.FromGrammar(g)

	var walk func(se, ee logic.State, depth int)
	walk = func(se, ee logic.State, depth int) {
		if se.Category() != ee.Category() {
			t.Fatalf("divergence at depth %d: slr %s vs earley %s", depth, se.Category(), ee.Category())
		}
		if depth == 6 {
			return
		}
		for a := range lockAlphabet {
			walk(se.Step(a), ee.Step(a), depth+1)
		}
	}
	walk(slr.Start(), earley.Start(), 0)
}

// TestSLRImmutableStates: diverging continuations from a shared state must
// not interfere (the parse stack is copy-on-write).
func TestSLRImmutableStates(t *testing.T) {
	g, err := cfg.Parse(safeLockGrammar, lockAlphabet)
	if err != nil {
		t.Fatal(err)
	}
	slr, err := cfg.CompileSLR(g)
	if err != nil {
		t.Fatal(err)
	}
	base := slr.Start().Step(acq).Step(beg)
	s1 := base.Step(end) // close method inside lock: fail? end closes over acquire→ fail handled at step
	s2 := base.Step(acq).Step(rel).Step(end).Step(rel)
	if s2.Category() != logic.Match {
		t.Fatalf("nested close = %s", s2.Category())
	}
	_ = s1
	if base.Step(acq).Step(rel).Step(end).Step(rel).Category() != logic.Match {
		t.Fatal("base state corrupted by earlier step")
	}
}

// TestCompileAutoFallsBack: an ambiguous grammar is not SLR(1) and must
// fall back to Earley while recognizing the same language.
func TestCompileAutoFallsBack(t *testing.T) {
	// Ambiguous: E -> E E | a. Not SLR(1).
	bp, err := cfg.CompileAuto("E -> E E | a", []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	if _, isSLR := bp.(*cfg.SLRMonitor); isSLR {
		t.Fatal("ambiguous grammar cannot be SLR(1)")
	}
	s := bp.Start()
	if s.Step(0).Category() != logic.Match {
		t.Fatal("a must match")
	}
	if s.Step(0).Step(0).Step(0).Category() != logic.Match {
		t.Fatal("aaa must match")
	}
	// And SafeLock auto-compiles to the SLR backend.
	bp2, err := cfg.CompileAuto(safeLockGrammar, lockAlphabet)
	if err != nil {
		t.Fatal(err)
	}
	if _, isSLR := bp2.(*cfg.SLRMonitor); !isSLR {
		t.Fatal("SafeLock must use the SLR backend")
	}
}

// TestSLRStackDepthIndependentOfTraceLength: the monitor state stays small
// on long flat traces (the reason MOP's CFG plugin is LR-based).
func TestSLRStackDepthIndependentOfTraceLength(t *testing.T) {
	g, err := cfg.Parse(safeLockGrammar, lockAlphabet)
	if err != nil {
		t.Fatal(err)
	}
	slr, err := cfg.CompileSLR(g)
	if err != nil {
		t.Fatal(err)
	}
	s := slr.Start()
	for i := 0; i < 10000; i++ {
		s = s.Step(acq)
		s = s.Step(rel)
	}
	if s.Category() != logic.Match {
		t.Fatal("balanced trace must match")
	}
	if d := cfg.StackDepthForTest(s); d > 8 {
		t.Fatalf("stack depth %d after 20000 flat events", d)
	}
}
