package dacapo

import (
	"os"
	"path/filepath"
	"testing"

	"rvgo/internal/heap"
	"rvgo/internal/monitor"
	"rvgo/internal/props"
)

// stepShape reduces a step to its persisted identity: operand IDs, op and
// flags (labels are not persisted).
type stepShape struct {
	death            uint64
	op               Op
	flags            int
	coll, iter, mref uint64
}

func shapes(t *Trace) []stepShape {
	out := make([]stepShape, len(t.Steps))
	for i, st := range t.Steps {
		if st.Death != nil {
			out[i] = stepShape{death: st.Death.ID()}
			continue
		}
		out[i] = stepShape{
			op: st.Ev.Op, flags: eventFlags(st.Ev),
			coll: refID(st.Ev.Coll), iter: refID(st.Ev.Iter), mref: refID(st.Ev.Map),
		}
	}
	return out
}

func recordSmall(t *testing.T) *Trace {
	t.Helper()
	p, ok := Get("avrora")
	if !ok {
		t.Fatal("no avrora profile")
	}
	tr, err := p.Record(0.02)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Steps) == 0 {
		t.Fatal("empty recording")
	}
	return tr
}

// monitorTrace replays a trace through a fresh sequential engine and
// returns its settled stats — the behavioural fingerprint a persisted
// trace must preserve.
func monitorTrace(t *testing.T, tr *Trace, prop string) monitor.Stats {
	t.Helper()
	spec, err := props.Build(prop)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := monitor.New(spec, monitor.Options{GC: monitor.GCCoenable, Creation: monitor.CreateEnable})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	sink, err := Adapt(prop, eng)
	if err != nil {
		t.Fatal(err)
	}
	h := heap.New()
	h.SetFreeHook(func(o *heap.Object) { eng.Free(o) })
	tr.Replay(h, sink, nil)
	eng.Flush()
	return eng.Stats()
}

func TestTraceFileRoundTrip(t *testing.T) {
	tr := recordSmall(t)
	path := filepath.Join(t.TempDir(), "avrora.rvt")
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := shapes(tr)
	have := shapes(got)
	if len(want) != len(have) {
		t.Fatalf("reread %d steps, recorded %d", len(have), len(want))
	}
	for i := range want {
		if want[i] != have[i] {
			t.Fatalf("step %d: reread %+v, recorded %+v", i, have[i], want[i])
		}
	}
	// The persisted trace must monitor identically to the live recording.
	if w, g := monitorTrace(t, tr, "UnsafeIter"), monitorTrace(t, got, "UnsafeIter"); w != g {
		t.Fatalf("reread trace monitors differently: %+v vs %+v", g, w)
	}
}

func TestTraceFileLegacyFallback(t *testing.T) {
	tr := recordSmall(t)
	path := filepath.Join(t.TempDir(), "legacy.txt")
	if err := writeLegacyFile(tr, path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := shapes(tr)
	have := shapes(got)
	if len(want) != len(have) {
		t.Fatalf("reread %d steps, recorded %d", len(have), len(want))
	}
	for i := range want {
		if want[i] != have[i] {
			t.Fatalf("step %d: reread %+v, recorded %+v", i, have[i], want[i])
		}
	}
}

func TestTraceFileLegacyMalformed(t *testing.T) {
	dir := t.TempDir()
	for name, body := range map[string]string{
		"badtag":   "# rvgo dacapo trace\nx 1 2 3\n",
		"badop":    "e 99 0 1 0 0\n",
		"badflags": "e 0 16 1 2 0\n",
		"zerofree": "f 0\n",
		"badnum":   "e one 0 1 2 0\n",
	} {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadTraceFile(path); err == nil {
			t.Errorf("%s: malformed legacy trace accepted", name)
		}
	}
}

func TestTraceFileMissing(t *testing.T) {
	if _, err := ReadTraceFile(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("missing file accepted")
	}
}
