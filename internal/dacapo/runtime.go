// Package dacapo is the benchmark substrate standing in for the DaCapo
// suite of the paper's evaluation (§5.1). Since this reproduction cannot
// run a JVM, the package provides:
//
//   - instrumented collection / iterator / map types whose operations emit
//     instrumentation events (the role AspectJ weaving plays in the paper),
//     backed by the simulated heap so object death is deterministic; and
//   - fifteen synthetic workload profiles calibrated against the event
//     counts of the paper's Figure 10 (scaled down; see profiles.go).
//
// The workloads preserve what the paper's evaluation depends on: the
// relative volume of events per property, the ratio of monitors to events,
// and — crucially for the garbage-collection comparison — the lifetime
// asymmetry between long-lived collections and short-lived iterators.
package dacapo

import (
	"errors"
	"time"

	"rvgo/internal/heap"
)

// Op identifies an instrumentation point.
type Op int

// Instrumentation points (the pointcuts of §1's examples).
const (
	OpIterCreate  Op = iota // collection.iterator()
	OpIterHasNext           // iterator.hasNext(), Flag = result
	OpIterNext              // iterator.next(), Flag = inside sync block
	OpCollUpdate            // collection.add/remove/clear
	OpCollSync              // Collections.synchronizedCollection(c)
	OpMapView               // map.values() / map.keySet()
	OpMapUpdate             // map.put/remove/clear
	OpMapSync               // Collections.synchronizedMap(m)
)

// Event is one instrumentation event.
type Event struct {
	Op         Op
	Coll       heap.Ref // collection operand
	Iter       heap.Ref // iterator operand
	Map        heap.Ref // map operand
	Flag       bool     // hasNext result, or "inside sync block"
	CollSynced bool     // the collection was wrapped by OpCollSync
	MapSynced  bool     // the map was wrapped by OpMapSync
	IsView     bool     // the collection is a map view
}

// Sink consumes instrumentation events (a monitoring system adapter).
type Sink func(Event)

// ErrTimeout is returned by workloads that exceed the runtime's deadline —
// the "∞: not terminated" entries of Figure 9.
var ErrTimeout = errors.New("dacapo: workload timed out")

// Runtime owns the heap, the sinks, and the timeout discipline.
type Runtime struct {
	Heap     *heap.Heap
	sinks    []Sink
	deadline time.Time
	ops      int
	workAcc  uint64
	timedOut bool
}

// NewRuntime creates a runtime with no sinks (an unmonitored program).
func NewRuntime() *Runtime {
	return &Runtime{Heap: heap.New()}
}

// AddSink attaches a monitoring system.
func (rt *Runtime) AddSink(s Sink) { rt.sinks = append(rt.sinks, s) }

// SetDeadline aborts the workload after the given instant.
func (rt *Runtime) SetDeadline(t time.Time) { rt.deadline = t }

// TimedOut reports whether the last workload hit the deadline.
func (rt *Runtime) TimedOut() bool { return rt.timedOut }

func (rt *Runtime) emit(ev Event) {
	for _, s := range rt.sinks {
		s(ev)
	}
}

// checkDeadline is called on a coarse schedule by instrumented operations.
func (rt *Runtime) checkDeadline() bool {
	rt.ops++
	if rt.ops&0xFFF != 0 {
		return false
	}
	if !rt.deadline.IsZero() && time.Now().After(rt.deadline) {
		rt.timedOut = true
		return true
	}
	return false
}

// work simulates application computation: w rounds of a cheap xorshift, so
// baseline (unmonitored) runtime is nonzero and overhead percentages mean
// something.
func (rt *Runtime) work(w int) {
	x := rt.workAcc | 1
	for i := 0; i < w; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	rt.workAcc = x
}

// Collection is an instrumented java.util.Collection stand-in.
type Collection struct {
	rt     *Runtime
	obj    *heap.Object
	size   int
	synced bool
	view   *MapObj // non-nil when this is a map's key/value view
}

// NewCollection allocates a collection with the given initial size.
func (rt *Runtime) NewCollection(size int) *Collection {
	return &Collection{rt: rt, obj: rt.Heap.Alloc("coll"), size: size}
}

// Sync wraps the collection à la Collections.synchronizedCollection.
func (c *Collection) Sync() *Collection {
	c.synced = true
	c.rt.emit(Event{Op: OpCollSync, Coll: c.obj, CollSynced: true})
	return c
}

// Ref returns the collection's heap object.
func (c *Collection) Ref() heap.Ref { return c.obj }

// Update mutates the collection (add/remove/clear).
func (c *Collection) Update() {
	c.rt.work(4)
	c.size++
	c.rt.emit(Event{Op: OpCollUpdate, Coll: c.obj, CollSynced: c.synced, IsView: c.view != nil})
	if c.view != nil {
		// Structural changes to a view write through to the map.
		c.view.rt.emit(Event{Op: OpMapUpdate, Map: c.view.obj, MapSynced: c.view.synced})
	}
}

// Iterator creates an iterator; inSync states whether the caller holds the
// collection's lock (relevant for the UNSAFESYNC properties).
func (c *Collection) Iterator(inSync bool) *Iterator {
	it := &Iterator{rt: c.rt, obj: c.rt.Heap.Alloc("iter"), coll: c, remaining: c.size}
	var mref heap.Ref
	msynced := false
	if c.view != nil {
		mref = c.view.obj
		msynced = c.view.synced
	}
	c.rt.emit(Event{
		Op: OpIterCreate, Coll: c.obj, Iter: it.obj, Map: mref,
		Flag: inSync, CollSynced: c.synced, MapSynced: msynced, IsView: c.view != nil,
	})
	return it
}

// Free releases the collection object (its lexical scope ended and the
// "collector" reclaims it).
func (c *Collection) Free() { c.rt.Heap.Free(c.obj) }

// Iterator is an instrumented java.util.Iterator stand-in.
type Iterator struct {
	rt        *Runtime
	obj       *heap.Object
	coll      *Collection
	remaining int
}

// Ref returns the iterator's heap object.
func (it *Iterator) Ref() heap.Ref { return it.obj }

// HasNext probes the iterator, emitting hasnexttrue/hasnextfalse.
func (it *Iterator) HasNext() bool {
	it.rt.work(2)
	res := it.remaining > 0
	it.rt.emit(Event{
		Op: OpIterHasNext, Iter: it.obj, Coll: it.coll.obj, Flag: res,
		CollSynced: it.coll.synced, IsView: it.coll.view != nil,
	})
	return res
}

// Next consumes an element; inSync as for Iterator creation.
func (it *Iterator) Next(inSync bool) {
	it.rt.work(3)
	if it.remaining > 0 {
		it.remaining--
	}
	var mref heap.Ref
	msynced := false
	if it.coll.view != nil {
		mref = it.coll.view.obj
		msynced = it.coll.view.synced
	}
	it.rt.emit(Event{
		Op: OpIterNext, Iter: it.obj, Coll: it.coll.obj, Map: mref,
		Flag: inSync, CollSynced: it.coll.synced, MapSynced: msynced, IsView: it.coll.view != nil,
	})
}

// Free releases the iterator object.
func (it *Iterator) Free() { it.rt.Heap.Free(it.obj) }

// MapObj is an instrumented java.util.Map stand-in.
type MapObj struct {
	rt     *Runtime
	obj    *heap.Object
	size   int
	synced bool
}

// NewMap allocates a map.
func (rt *Runtime) NewMap(size int) *MapObj {
	return &MapObj{rt: rt, obj: rt.Heap.Alloc("map"), size: size}
}

// Sync wraps the map à la Collections.synchronizedMap.
func (m *MapObj) Sync() *MapObj {
	m.synced = true
	m.rt.emit(Event{Op: OpMapSync, Map: m.obj, MapSynced: true})
	return m
}

// Ref returns the map's heap object.
func (m *MapObj) Ref() heap.Ref { return m.obj }

// Update mutates the map.
func (m *MapObj) Update() {
	m.rt.work(4)
	m.size++
	m.rt.emit(Event{Op: OpMapUpdate, Map: m.obj, MapSynced: m.synced})
}

// Values returns the value-view collection (map.values()).
func (m *MapObj) Values() *Collection {
	c := &Collection{rt: m.rt, obj: m.rt.Heap.Alloc("view"), size: m.size, synced: m.synced, view: m}
	m.rt.emit(Event{Op: OpMapView, Map: m.obj, Coll: c.obj, MapSynced: m.synced, IsView: true})
	return c
}

// Free releases the map object.
func (m *MapObj) Free() { m.rt.Heap.Free(m.obj) }
