package dacapo

import (
	"math/rand"
)

// Profile is a synthetic workload model for one DaCapo benchmark. The
// knobs are calibrated per benchmark in profiles.go so that, at Scale 1.0,
// the event volumes are roughly 1/50 of the paper's Figure 10 and the
// monitor-to-event ratios and object-lifetime shapes are preserved.
type Profile struct {
	Name string
	// Collections is the number of collections (or map views) allocated
	// over the run at scale 1.0.
	Collections int
	// LiveWindow is how many collections coexist; older ones are freed as
	// new ones arrive (collections outliving iterators is the pathology
	// that motivates the paper).
	LiveWindow int
	// ItersPerColl is the mean number of iterators taken per collection.
	ItersPerColl float64
	// OpsPerIter is the number of elements walked per iterator (each
	// element is one hasNext(true) + next pair, ended by hasNext(false)).
	OpsPerIter int
	// UpdatesPerColl is the mean number of collection updates per
	// collection lifetime (emitted between iterations — safe).
	UpdatesPerColl float64
	// MapShare is the fraction of collections that are map views (feeding
	// the UNSAFEMAPITER / UNSAFESYNCMAP properties).
	MapShare float64
	// SyncShare is the fraction of maps/collections that are synchronized.
	SyncShare float64
	// UnsafeShare is the fraction of iterations that interleave an update
	// inside the walk — real violations, as the paper found in DaCapo.
	UnsafeShare float64
	// Work is the application busywork per instrumented operation; large
	// values model compute-bound benchmarks with negligible monitoring
	// overhead (eclipse, tradesoap), small values the iterator-bound ones
	// (bloat, pmd). One unit ≈ 2ns.
	Work int
	// BaseWork is uninstrumented application work per collection step,
	// giving compute-bound benchmarks a stable baseline runtime even when
	// they emit almost no events.
	BaseWork int
	Seed     int64
}

type ringEntry struct {
	coll *Collection
	m    *MapObj
}

// Run executes the workload against the runtime at the given scale.
// It returns ErrTimeout if the runtime's deadline was exceeded.
func (p Profile) Run(rt *Runtime, scale float64) error {
	rng := rand.New(rand.NewSource(p.Seed))
	n := int(float64(p.Collections) * scale)
	if n < 1 {
		n = 1
	}
	// The live window is a property of the program, not of the input
	// size: scaling it down would mask the retention pathology (§1) that
	// long-lived collections inflict on all-parameters-dead GC.
	window := p.LiveWindow
	if window < 2 {
		window = 2
	}

	ring := make([]ringEntry, 0, window)
	evict := func() {
		e := ring[0]
		ring = ring[:copy(ring, ring[1:])]
		e.coll.Free()
		if e.m != nil {
			e.m.Free()
		}
	}

	for k := 0; k < n; k++ {
		if rt.checkDeadline() {
			return ErrTimeout
		}
		rt.work(p.Work + p.BaseWork)

		// Allocate a plain collection or a map with a view.
		var entry ringEntry
		size := p.OpsPerIter
		if rng.Float64() < p.MapShare {
			m := rt.NewMap(size)
			if rng.Float64() < p.SyncShare {
				m.Sync()
			}
			entry = ringEntry{coll: m.Values(), m: m}
		} else {
			c := rt.NewCollection(size)
			if rng.Float64() < p.SyncShare {
				c.Sync()
			}
			entry = ringEntry{coll: c}
		}
		ring = append(ring, entry)
		if len(ring) > window {
			evict()
		}

		// Iterate a (possibly older) live collection: iterator lifetimes
		// are short, collection lifetimes long.
		iters := countFor(rng, p.ItersPerColl)
		for j := 0; j < iters; j++ {
			target := ring[rng.Intn(len(ring))]
			c := target.coll
			inSync := !c.synced || rng.Float64() < 0.95
			it := c.Iterator(inSync && c.synced)
			unsafeWalk := rng.Float64() < p.UnsafeShare
			for e := 0; e < p.OpsPerIter; e++ {
				if !it.HasNext() {
					break
				}
				it.Next(inSync && c.synced)
				rt.work(p.Work)
				if unsafeWalk && e == p.OpsPerIter/2 {
					// The UNSAFEITER violation: update mid-walk, then keep
					// using the iterator.
					c.Update()
				}
				if rt.checkDeadline() {
					it.Free()
					return ErrTimeout
				}
			}
			it.HasNext() // the final hasnextfalse probe
			it.Free()    // iterators die young
		}

		// Safe updates between iterations.
		updates := countFor(rng, p.UpdatesPerColl)
		for u := 0; u < updates; u++ {
			ring[rng.Intn(len(ring))].coll.Update()
		}
	}
	for len(ring) > 0 {
		evict()
	}
	return nil
}

// countFor draws an integer with the given mean: the integer part plus a
// Bernoulli fractional part.
func countFor(rng *rand.Rand, mean float64) int {
	nInt := int(mean)
	if rng.Float64() < mean-float64(nInt) {
		nInt++
	}
	return nInt
}
