package dacapo

import "sort"

// profiles models the fifteen DaCapo benchmarks of the paper's Figure 9/10
// at Scale 1.0 ≈ 1/50 of the paper's event volumes. The calibration
// targets, from Figure 10 and §5.2:
//
//   - bloat: the pathological case — ~1.6 M collections, ~941 K iterators,
//     78 M hasNext / 77 M next calls, ~19.6 K collections coexisting; very
//     little application work per event, so monitoring dominates.
//   - avrora, pmd: millions of events, many short iterations, large live
//     windows (high retention for JavaMOP-style GC).
//   - h2: tens of millions of events but short-lived monitor instances
//     ("monitor instances in h2 have shorter lifetimes").
//   - sunflow: millions of events, few monitor instances (long walks).
//   - eclipse, tomcat, trade*: compute-bound, negligible event rates —
//     the near-zero-overhead rows.
//   - xalan: tiny iterator traffic but map-view heavy.
var profiles = map[string]Profile{
	"bloat":      {Name: "bloat", Collections: 16000, LiveWindow: 400, ItersPerColl: 4, OpsPerIter: 40, UpdatesPerColl: 8, MapShare: 0.30, SyncShare: 0.30, UnsafeShare: 0.002, Work: 100, Seed: 101},
	"jython":     {Name: "jython", Collections: 3, LiveWindow: 2, ItersPerColl: 1, OpsPerIter: 1, UpdatesPerColl: 1, MapShare: 0.5, SyncShare: 0.2, UnsafeShare: 0, Work: 400, BaseWork: 6_000_000, Seed: 102},
	"avrora":     {Name: "avrora", Collections: 4000, LiveWindow: 120, ItersPerColl: 2.0, OpsPerIter: 1, UpdatesPerColl: 3, MapShare: 0.35, SyncShare: 0.35, UnsafeShare: 0.001, Work: 250, Seed: 103},
	"batik":      {Name: "batik", Collections: 120, LiveWindow: 16, ItersPerColl: 1, OpsPerIter: 3, UpdatesPerColl: 1, MapShare: 0.3, SyncShare: 0.3, UnsafeShare: 0, Work: 150, BaseWork: 100_000, Seed: 104},
	"eclipse":    {Name: "eclipse", Collections: 400, LiveWindow: 32, ItersPerColl: 1.4, OpsPerIter: 3, UpdatesPerColl: 1, MapShare: 0.3, SyncShare: 0.3, UnsafeShare: 0, Work: 400, BaseWork: 250_000, Seed: 105},
	"fop":        {Name: "fop", Collections: 1500, LiveWindow: 64, ItersPerColl: 1.5, OpsPerIter: 3, UpdatesPerColl: 1.5, MapShare: 0.3, SyncShare: 0.35, UnsafeShare: 0, Work: 120, BaseWork: 10_000, Seed: 106},
	"h2":         {Name: "h2", Collections: 30000, LiveWindow: 40, ItersPerColl: 2, OpsPerIter: 3, UpdatesPerColl: 1, MapShare: 0.25, SyncShare: 0.25, UnsafeShare: 0, Work: 180, Seed: 107},
	"luindex":    {Name: "luindex", Collections: 2, LiveWindow: 2, ItersPerColl: 1, OpsPerIter: 1, UpdatesPerColl: 1, MapShare: 0.3, SyncShare: 0.3, UnsafeShare: 0, Work: 500, BaseWork: 5_000_000, Seed: 108},
	"lusearch":   {Name: "lusearch", Collections: 4, LiveWindow: 2, ItersPerColl: 1, OpsPerIter: 2, UpdatesPerColl: 1, MapShare: 0.3, SyncShare: 0.3, UnsafeShare: 0, Work: 600, BaseWork: 4_000_000, Seed: 109},
	"pmd":        {Name: "pmd", Collections: 9000, LiveWindow: 700, ItersPerColl: 1.5, OpsPerIter: 7, UpdatesPerColl: 4, MapShare: 0.35, SyncShare: 0.3, UnsafeShare: 0.001, Work: 90, Seed: 110},
	"sunflow":    {Name: "sunflow", Collections: 1000, LiveWindow: 24, ItersPerColl: 1, OpsPerIter: 26, UpdatesPerColl: 0.5, MapShare: 0.2, SyncShare: 0.2, UnsafeShare: 0, Work: 450, BaseWork: 20_000, Seed: 111},
	"tomcat":     {Name: "tomcat", Collections: 2, LiveWindow: 2, ItersPerColl: 1, OpsPerIter: 1, UpdatesPerColl: 1, MapShare: 0.5, SyncShare: 0.5, UnsafeShare: 0, Work: 700, BaseWork: 5_000_000, Seed: 112},
	"tradebeans": {Name: "tradebeans", Collections: 2, LiveWindow: 2, ItersPerColl: 1, OpsPerIter: 1, UpdatesPerColl: 1, MapShare: 0.5, SyncShare: 0.5, UnsafeShare: 0, Work: 900, BaseWork: 8_000_000, Seed: 113},
	"tradesoap":  {Name: "tradesoap", Collections: 2, LiveWindow: 2, ItersPerColl: 1, OpsPerIter: 1, UpdatesPerColl: 1, MapShare: 0.5, SyncShare: 0.5, UnsafeShare: 0, Work: 900, BaseWork: 8_000_000, Seed: 114},
	"xalan":      {Name: "xalan", Collections: 30, LiveWindow: 8, ItersPerColl: 1, OpsPerIter: 1, UpdatesPerColl: 2, MapShare: 0.9, SyncShare: 0.3, UnsafeShare: 0, Work: 250, BaseWork: 500_000, Seed: 115},
}

// Benchmarks returns the benchmark names in the paper's row order.
func Benchmarks() []string {
	return []string{
		"bloat", "jython", "avrora", "batik", "eclipse", "fop", "h2",
		"luindex", "lusearch", "pmd", "sunflow", "tomcat", "tradebeans",
		"tradesoap", "xalan",
	}
}

// Get returns the profile for a benchmark name.
func Get(name string) (Profile, bool) {
	p, ok := profiles[name]
	return p, ok
}

// All returns all profiles sorted by name.
func All() []Profile {
	var out []Profile
	for _, p := range profiles {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
