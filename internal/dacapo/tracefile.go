// On-disk persistence for recorded workload traces. The segment format
// of internal/trace is the repo's one trace format: a persisted workload
// trace is a segment file whose symbol alphabet is the instrumentation
// alphabet (one symbol per Op × flag combination, binding the c/i/m
// operand slots) rather than a property's event alphabet. Traces written
// before the segment store used a line-based text format; ReadTraceFile
// sniffs the magic and falls back to parsing it, so old fixtures stay
// readable.

package dacapo

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"

	"rvgo/internal/heap"
	"rvgo/internal/param"
	"rvgo/internal/trace"
)

// opNames is the symbol-name stem per Op, in Op order.
var opNames = [...]string{
	"itercreate", "iterhasnext", "iternext", "collupdate",
	"collsync", "mapview", "mapupdate", "mapsync",
}

// Flag bits folded into the symbol index: the boolean half of an Event.
const (
	flagFlag = 1 << iota // Event.Flag
	flagCollSynced
	flagMapSynced
	flagIsView
)

// flagChars spell the suffix of a flagged symbol name, bit order.
const flagChars = "fcmv"

func eventFlags(ev Event) int {
	f := 0
	if ev.Flag {
		f |= flagFlag
	}
	if ev.CollSynced {
		f |= flagCollSynced
	}
	if ev.MapSynced {
		f |= flagMapSynced
	}
	if ev.IsView {
		f |= flagIsView
	}
	return f
}

// fileSymbols is the persisted instrumentation alphabet: symbol index
// op<<4|flags, every symbol binding the three operand parameters
// (collection, iterator, map; ID 0 records an absent operand — heap IDs
// start at 1).
func fileSymbols() []trace.SymbolDef {
	mask := param.SetOf(0, 1, 2)
	syms := make([]trace.SymbolDef, len(opNames)<<4)
	for op, stem := range opNames {
		for f := 0; f < 16; f++ {
			name := stem
			if f != 0 {
				var sb strings.Builder
				sb.WriteString(stem)
				sb.WriteByte('+')
				for b := 0; b < 4; b++ {
					if f&(1<<b) != 0 {
						sb.WriteByte(flagChars[b])
					}
				}
				name = sb.String()
			}
			syms[op<<4|f] = trace.SymbolDef{Name: name, Params: mask}
		}
	}
	return syms
}

func refID(r heap.Ref) uint64 {
	if r == nil {
		return 0
	}
	return r.ID()
}

// WriteFile persists the trace in the segment format. Object labels are
// not persisted (the format records IDs); a reread trace replays with
// synthesized labels. There is no pivot index — a workload trace is
// replay substrate, not a retroactive-query target.
func (t *Trace) WriteFile(path string) error {
	w, err := trace.Create(path, fileSymbols(), -1, trace.WriterOptions{})
	if err != nil {
		return err
	}
	var ids [3]uint64
	for _, st := range t.Steps {
		if st.Death != nil {
			err = w.FreeIDs([]uint64{st.Death.ID()})
		} else {
			ids[0], ids[1], ids[2] = refID(st.Ev.Coll), refID(st.Ev.Iter), refID(st.Ev.Map)
			err = w.EventIDs(int(st.Ev.Op)<<4|eventFlags(st.Ev), ids[:])
		}
		if err != nil {
			w.Close()
			return err
		}
	}
	return w.Close()
}

// fileRef is a reread trace operand: the recorded ID with a synthesized
// label. Always alive — Trace.Replay reallocates fresh heap objects and
// applies deaths itself.
type fileRef struct{ id uint64 }

func (r fileRef) ID() uint64    { return r.id }
func (r fileRef) Alive() bool   { return true }
func (r fileRef) Label() string { return fmt.Sprintf("o%d", r.id) }

func fileOperand(id uint64) heap.Ref {
	if id == 0 {
		return nil
	}
	return fileRef{id}
}

// ReadTraceFile loads a persisted workload trace: segment-format files
// (the "RVTR" magic) through the trace reader, anything else through the
// legacy line-based fallback parser.
func ReadTraceFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	var magic [4]byte
	n, _ := f.Read(magic[:])
	f.Close()
	if n == 4 && string(magic[:]) == "RVTR" {
		return readSegmentTrace(path)
	}
	return readLegacyTrace(path)
}

func readSegmentTrace(path string) (*Trace, error) {
	r, err := trace.Open(path)
	if err != nil {
		return nil, err
	}
	if r.Truncated() {
		return nil, fmt.Errorf("dacapo: %s: trace has a torn tail (crashed recorder?)", path)
	}
	names := r.SymbolNames()
	tr := &Trace{}
	err = r.Scan(func(rec trace.Record) error {
		if rec.Free {
			for _, id := range rec.IDs {
				tr.Steps = append(tr.Steps, Step{Death: fileRef{id}})
			}
			return nil
		}
		if rec.Sym >= len(opNames)<<4 || len(rec.IDs) != 3 {
			return fmt.Errorf("dacapo: %s: symbol %d (%q) is not an instrumentation event", path, rec.Sym, names[rec.Sym])
		}
		f := rec.Sym & 15
		tr.Steps = append(tr.Steps, Step{Ev: Event{
			Op:         Op(rec.Sym >> 4),
			Coll:       fileOperand(rec.IDs[0]),
			Iter:       fileOperand(rec.IDs[1]),
			Map:        fileOperand(rec.IDs[2]),
			Flag:       f&flagFlag != 0,
			CollSynced: f&flagCollSynced != 0,
			MapSynced:  f&flagMapSynced != 0,
			IsView:     f&flagIsView != 0,
		}})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return tr, nil
}

// legacyHeader is the first line of the pre-segment-store text format.
const legacyHeader = "# rvgo dacapo trace"

// writeLegacyFile emits the legacy line-based format — kept as the
// reference implementation of what the fallback parser accepts (and to
// generate fixtures for its tests).
func writeLegacyFile(t *Trace, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	fmt.Fprintln(w, legacyHeader)
	for _, st := range t.Steps {
		if st.Death != nil {
			fmt.Fprintf(w, "f %d\n", st.Death.ID())
			continue
		}
		fmt.Fprintf(w, "e %d %d %d %d %d\n", int(st.Ev.Op), eventFlags(st.Ev),
			refID(st.Ev.Coll), refID(st.Ev.Iter), refID(st.Ev.Map))
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// readLegacyTrace parses the line-based format: "e op flags coll iter
// map" per event, "f id" per death, blank lines and #-comments ignored.
func readLegacyTrace(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	tr := &Trace{}
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		bad := func() error {
			return fmt.Errorf("dacapo: %s:%d: malformed legacy trace line %q", path, line, text)
		}
		nums := make([]uint64, len(fields)-1)
		for i, s := range fields[1:] {
			if nums[i], err = strconv.ParseUint(s, 10, 64); err != nil {
				return nil, bad()
			}
		}
		switch fields[0] {
		case "f":
			if len(nums) != 1 || nums[0] == 0 {
				return nil, bad()
			}
			tr.Steps = append(tr.Steps, Step{Death: fileRef{nums[0]}})
		case "e":
			if len(nums) != 5 || nums[0] >= uint64(len(opNames)) || nums[1] >= 16 {
				return nil, bad()
			}
			f := int(nums[1])
			tr.Steps = append(tr.Steps, Step{Ev: Event{
				Op:         Op(nums[0]),
				Coll:       fileOperand(nums[2]),
				Iter:       fileOperand(nums[3]),
				Map:        fileOperand(nums[4]),
				Flag:       f&flagFlag != 0,
				CollSynced: f&flagCollSynced != 0,
				MapSynced:  f&flagMapSynced != 0,
				IsView:     f&flagIsView != 0,
			}})
		default:
			return nil, bad()
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return tr, nil
}
