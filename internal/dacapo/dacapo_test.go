package dacapo_test

import (
	"testing"
	"time"

	"rvgo/internal/dacapo"
	"rvgo/internal/monitor"
	"rvgo/internal/props"
)

func TestProfilesComplete(t *testing.T) {
	names := dacapo.Benchmarks()
	if len(names) != 15 {
		t.Fatalf("want the 15 DaCapo benchmarks, have %d", len(names))
	}
	for _, n := range names {
		p, ok := dacapo.Get(n)
		if !ok {
			t.Fatalf("missing profile %q", n)
		}
		if p.Collections < 1 || p.OpsPerIter < 1 {
			t.Fatalf("%s: degenerate profile %+v", n, p)
		}
	}
	if _, ok := dacapo.Get("nosuch"); ok {
		t.Fatal("unknown benchmark must not resolve")
	}
	if len(dacapo.All()) != 15 {
		t.Fatal("All() must return every profile")
	}
}

func TestWorkloadDeterminism(t *testing.T) {
	count := func() (events int, creates int) {
		rt := dacapo.NewRuntime()
		rt.AddSink(func(ev dacapo.Event) {
			events++
			if ev.Op == dacapo.OpIterCreate {
				creates++
			}
		})
		p, _ := dacapo.Get("avrora")
		if err := p.Run(rt, 0.02); err != nil {
			t.Fatal(err)
		}
		return
	}
	e1, c1 := count()
	e2, c2 := count()
	if e1 != e2 || c1 != c2 {
		t.Fatalf("workload not deterministic: (%d,%d) vs (%d,%d)", e1, c1, e2, c2)
	}
	if e1 == 0 || c1 == 0 {
		t.Fatal("workload emitted nothing")
	}
}

// TestLifetimeShape: iterators die before their collections — the paper's
// central assumption about real programs.
func TestLifetimeShape(t *testing.T) {
	rt := dacapo.NewRuntime()
	deadIterCreates := 0
	rt.AddSink(func(ev dacapo.Event) {
		if ev.Op == dacapo.OpIterCreate && !ev.Coll.Alive() {
			deadIterCreates++
		}
	})
	p, _ := dacapo.Get("bloat")
	if err := p.Run(rt, 0.005); err != nil {
		t.Fatal(err)
	}
	if deadIterCreates != 0 {
		t.Fatal("events must never mention dead objects")
	}
	live, allocs, frees := rt.Heap.Stats()
	if live != 0 {
		t.Fatalf("workload leaked %d objects", live)
	}
	if allocs == 0 || frees != allocs {
		t.Fatalf("allocs=%d frees=%d", allocs, frees)
	}
}

func TestTimeout(t *testing.T) {
	rt := dacapo.NewRuntime()
	rt.SetDeadline(time.Now().Add(-time.Second)) // already expired
	p, _ := dacapo.Get("bloat")
	err := p.Run(rt, 0.05)
	if err != dacapo.ErrTimeout || !rt.TimedOut() {
		t.Fatalf("err = %v, timedOut = %v", err, rt.TimedOut())
	}
}

// TestAdaptersDriveProperties: every DaCapo property receives events from
// the instrumented workload and creates monitors.
func TestAdaptersDriveProperties(t *testing.T) {
	for _, prop := range props.DaCapoProperties() {
		spec, err := props.Build(prop)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := monitor.New(spec, monitor.Options{GC: monitor.GCCoenable, Creation: monitor.CreateEnable})
		if err != nil {
			t.Fatal(err)
		}
		sink, err := dacapo.Adapt(prop, eng)
		if err != nil {
			t.Fatal(err)
		}
		rt := dacapo.NewRuntime()
		rt.AddSink(sink)
		p, _ := dacapo.Get("bloat")
		if err := p.Run(rt, 0.01); err != nil {
			t.Fatal(err)
		}
		eng.Flush()
		st := eng.Stats()
		if st.Events == 0 {
			t.Errorf("%s: no events reached the engine", prop)
		}
		if st.Created == 0 {
			t.Errorf("%s: no monitors created", prop)
		}
	}
	if _, err := dacapo.Adapt("NoSuch", nil); err == nil {
		t.Fatal("unknown property must error")
	}
}

// TestUnsafeShareProducesViolations: the bloat profile's unsafe walks
// produce UNSAFEITER matches, as the paper observed real violations in
// DaCapo.
func TestUnsafeShareProducesViolations(t *testing.T) {
	spec, err := props.Build("UnsafeIter")
	if err != nil {
		t.Fatal(err)
	}
	verdicts := 0
	eng, err := monitor.New(spec, monitor.Options{
		GC: monitor.GCCoenable, Creation: monitor.CreateEnable,
		OnVerdict: func(monitor.Verdict) { verdicts++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	sink, err := dacapo.Adapt("UnsafeIter", eng)
	if err != nil {
		t.Fatal(err)
	}
	rt := dacapo.NewRuntime()
	rt.AddSink(sink)
	p, _ := dacapo.Get("bloat")
	if err := p.Run(rt, 0.2); err != nil {
		t.Fatal(err)
	}
	if verdicts == 0 {
		t.Fatal("expected some injected UNSAFEITER violations")
	}
}
