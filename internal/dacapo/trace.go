package dacapo

import (
	"fmt"

	"rvgo/internal/heap"
)

// Step is one element of a recorded trace: either an instrumentation event
// or the death of a parameter object.
type Step struct {
	Ev    Event
	Death heap.Ref // non-nil: the object died here (Ev is zero)
}

// Trace is a recorded instrumentation-event/death sequence. A workload run
// is recorded once and can then be replayed deterministically into any
// number of monitoring backends — each replay allocates fresh heap objects
// and frees them at the recorded death points, so every backend observes
// the identical per-slice event and death sequence. This is the substrate
// for cross-backend equivalence oracles (sequential engine vs the sharded
// runtime) where re-running the workload against live backends would let
// object deaths race asynchronous event processing.
type Trace struct {
	Steps []Step
}

// Record runs the profile at the given scale against a private runtime and
// captures its instrumentation events and object deaths in order.
func (p Profile) Record(scale float64) (*Trace, error) {
	rt := NewRuntime()
	tr := &Trace{}
	rt.AddSink(func(ev Event) { tr.Steps = append(tr.Steps, Step{Ev: ev}) })
	rt.Heap.SetFreeHook(func(o *heap.Object) {
		tr.Steps = append(tr.Steps, Step{Death: o})
	})
	if err := p.Run(rt, scale); err != nil {
		return nil, err
	}
	return tr, nil
}

// Replay feeds the trace into sink, reallocating every recorded object on
// h (on first mention, preserving allocation order and labels) and freeing
// it at its recorded death point. beforeFree, if non-nil, runs before each
// death takes effect — asynchronous backends pass their Barrier here so
// queued events are processed against the liveness they were recorded
// under.
func (t *Trace) Replay(h *heap.Heap, sink Sink, beforeFree func()) {
	objs := map[uint64]*heap.Object{}
	remap := func(r heap.Ref) heap.Ref {
		if r == nil {
			return nil
		}
		o, ok := objs[r.ID()]
		if !ok {
			o = h.Alloc(r.Label())
			objs[r.ID()] = o
		}
		return o
	}
	for _, st := range t.Steps {
		if st.Death != nil {
			o, ok := objs[st.Death.ID()]
			if !ok {
				// An object can die without ever appearing in an event
				// (e.g. a collection that was never iterated); there is
				// nothing for the backends to observe.
				continue
			}
			if beforeFree != nil {
				beforeFree()
			}
			h.Free(o)
			continue
		}
		ev := st.Ev
		ev.Coll = remap(ev.Coll)
		ev.Iter = remap(ev.Iter)
		ev.Map = remap(ev.Map)
		sink(ev)
	}
}

// Events returns the number of instrumentation events in the trace.
func (t *Trace) Events() int {
	n := 0
	for _, st := range t.Steps {
		if st.Death == nil {
			n++
		}
	}
	return n
}

// String summarizes the trace for diagnostics.
func (t *Trace) String() string {
	return fmt.Sprintf("trace{%d steps, %d events}", len(t.Steps), t.Events())
}
