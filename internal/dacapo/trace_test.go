package dacapo_test

import (
	"testing"

	"rvgo/internal/dacapo"
	"rvgo/internal/heap"
	"rvgo/internal/monitor"
	"rvgo/internal/props"
)

// TestRecordReplayMatchesLiveRun: replaying a recorded workload trace into
// an engine must produce exactly the counters of monitoring the live
// workload — events and object deaths land at the same trace positions.
func TestRecordReplayMatchesLiveRun(t *testing.T) {
	p, ok := dacapo.Get("avrora")
	if !ok {
		t.Fatal("no avrora profile")
	}
	const scale = 0.02
	for _, prop := range []string{"HasNext", "UnsafeIter", "UnsafeMapIter"} {
		spec, err := props.Build(prop)
		if err != nil {
			t.Fatal(err)
		}
		mk := func() *monitor.Engine {
			eng, err := monitor.New(spec, monitor.Options{
				GC: monitor.GCCoenable, Creation: monitor.CreateEnable,
			})
			if err != nil {
				t.Fatal(err)
			}
			return eng
		}

		// Live: the engine monitors the running workload.
		live := mk()
		rt := dacapo.NewRuntime()
		sink, err := dacapo.Adapt(prop, live)
		if err != nil {
			t.Fatal(err)
		}
		rt.AddSink(sink)
		if err := p.Run(rt, scale); err != nil {
			t.Fatal(err)
		}
		live.Flush()

		// Replayed: the same workload, recorded once and fed back.
		tr, err := p.Record(scale)
		if err != nil {
			t.Fatal(err)
		}
		replayed := mk()
		sink2, err := dacapo.Adapt(prop, replayed)
		if err != nil {
			t.Fatal(err)
		}
		tr.Replay(heap.New(), sink2, nil)
		replayed.Flush()

		a, b := live.Stats(), replayed.Stats()
		a.PeakLive, b.PeakLive = 0, 0
		if a != b {
			t.Errorf("%s: live %+v != replayed %+v", prop, a, b)
		}
		if a.Events == 0 {
			t.Errorf("%s: trace drove no events", prop)
		}
	}
}
