package dacapo

import (
	"fmt"

	"rvgo/internal/heap"
	"rvgo/internal/monitor"
	"rvgo/internal/param"
)

// Emitter is the property-event half of an adapter: the RV and JavaMOP
// engines and the tracematch engine all satisfy it.
type Emitter interface {
	EmitNamed(event string, vals ...heap.Ref) error
}

// dispatcher is the fast-path surface every in-process backend, the
// sharded runtime, the remote client and the tracematch engine provide:
// with the spec in hand the adapter resolves event symbols and parameter
// indices once, and each instrumentation event becomes a direct
// Dispatch(sym, θ) — no per-event name lookup, no variadic slice boxed
// through an interface call, no allocation.
type dispatcher interface {
	Spec() *monitor.Spec
	Dispatch(sym int, theta param.Instance)
}

// Adapt translates instrumentation events into the parametric events of a
// named property, mirroring the AspectJ pointcuts of §1's figures. It
// returns a Sink that feeds the emitter. Unknown properties are an error,
// as is (on the fast path) a spec that lacks a property's events.
func Adapt(property string, em Emitter) (Sink, error) {
	if d, ok := em.(dispatcher); ok {
		return adaptFast(property, d)
	}
	emit := func(event string, vals ...heap.Ref) {
		if err := em.EmitNamed(event, vals...); err != nil {
			panic(fmt.Sprintf("dacapo: adapter for %s: %v", property, err))
		}
	}
	switch property {
	case "HasNext", "HasNextLTL":
		return func(ev Event) {
			switch ev.Op {
			case OpIterHasNext:
				if ev.Flag {
					emit("hasnexttrue", ev.Iter)
				} else {
					emit("hasnextfalse", ev.Iter)
				}
			case OpIterNext:
				emit("next", ev.Iter)
			}
		}, nil

	case "UnsafeIter":
		return func(ev Event) {
			switch ev.Op {
			case OpIterCreate:
				emit("create", ev.Coll, ev.Iter)
			case OpCollUpdate:
				emit("update", ev.Coll)
			case OpIterNext:
				emit("next", ev.Iter)
			}
		}, nil

	case "UnsafeMapIter":
		return func(ev Event) {
			switch ev.Op {
			case OpMapView:
				emit("createColl", ev.Map, ev.Coll)
			case OpIterCreate:
				if ev.IsView {
					emit("createIter", ev.Coll, ev.Iter)
				}
			case OpIterNext:
				emit("useIter", ev.Iter)
			case OpMapUpdate:
				emit("updateMap", ev.Map)
			}
		}, nil

	case "UnsafeSyncColl":
		return func(ev Event) {
			switch ev.Op {
			case OpCollSync:
				emit("sync", ev.Coll)
			case OpIterCreate:
				if ev.Flag {
					emit("syncCreateIter", ev.Coll, ev.Iter)
				} else {
					emit("asyncCreateIter", ev.Coll, ev.Iter)
				}
			case OpIterNext:
				if ev.Flag {
					emit("syncAccess", ev.Iter)
				} else {
					emit("asyncAccess", ev.Iter)
				}
			}
		}, nil

	case "UnsafeSyncMap":
		return func(ev Event) {
			switch ev.Op {
			case OpMapSync:
				emit("sync", ev.Map)
			case OpMapView:
				emit("createSet", ev.Map, ev.Coll)
			case OpIterCreate:
				if !ev.IsView {
					return
				}
				if ev.Flag {
					emit("syncCreateIter", ev.Coll, ev.Iter)
				} else {
					emit("asyncCreateIter", ev.Coll, ev.Iter)
				}
			case OpIterNext:
				if !ev.IsView {
					return
				}
				if ev.Flag {
					emit("syncAccess", ev.Iter)
				} else {
					emit("asyncAccess", ev.Iter)
				}
			}
		}, nil
	}
	return nil, fmt.Errorf("dacapo: no adapter for property %q", property)
}

// fastEv is one pre-resolved parametric event: the symbol plus the
// parameter indices it binds, in ascending order.
type fastEv struct {
	sym    int
	p1, p2 int
}

// resolver pre-resolves a property's event names against the backend's
// compiled spec; emit1/emit2 then cost one Bind chain and one Dispatch.
type resolver struct {
	d    dispatcher
	spec *monitor.Spec
	err  error
}

func (r *resolver) ev(name string, arity int) fastEv {
	if r.err != nil {
		return fastEv{}
	}
	sym, ok := r.spec.Symbol(name)
	if !ok {
		r.err = fmt.Errorf("dacapo: spec %q has no event %q", r.spec.Name, name)
		return fastEv{}
	}
	ps := r.spec.Events[sym].Params
	if ps.Count() != arity {
		r.err = fmt.Errorf("dacapo: event %q binds %d parameters, adapter expects %d", name, ps.Count(), arity)
		return fastEv{}
	}
	f := fastEv{sym: sym, p1: ps.First()}
	if arity == 2 {
		f.p2 = ps.Rest().First()
	}
	return f
}

func (r *resolver) emit1(f fastEv, a heap.Ref) {
	r.d.Dispatch(f.sym, param.Empty().Bind(f.p1, a))
}

func (r *resolver) emit2(f fastEv, a, b heap.Ref) {
	r.d.Dispatch(f.sym, param.Empty().Bind(f.p1, a).Bind(f.p2, b))
}

// adaptFast is Adapt for backends exposing their spec: the returned sinks
// are allocation-free per event.
func adaptFast(property string, d dispatcher) (Sink, error) {
	r := &resolver{d: d, spec: d.Spec()}
	switch property {
	case "HasNext", "HasNextLTL":
		hnT, hnF, next := r.ev("hasnexttrue", 1), r.ev("hasnextfalse", 1), r.ev("next", 1)
		if r.err != nil {
			return nil, r.err
		}
		return func(ev Event) {
			switch ev.Op {
			case OpIterHasNext:
				if ev.Flag {
					r.emit1(hnT, ev.Iter)
				} else {
					r.emit1(hnF, ev.Iter)
				}
			case OpIterNext:
				r.emit1(next, ev.Iter)
			}
		}, nil

	case "UnsafeIter":
		create, update, next := r.ev("create", 2), r.ev("update", 1), r.ev("next", 1)
		if r.err != nil {
			return nil, r.err
		}
		return func(ev Event) {
			switch ev.Op {
			case OpIterCreate:
				r.emit2(create, ev.Coll, ev.Iter)
			case OpCollUpdate:
				r.emit1(update, ev.Coll)
			case OpIterNext:
				r.emit1(next, ev.Iter)
			}
		}, nil

	case "UnsafeMapIter":
		createColl, createIter := r.ev("createColl", 2), r.ev("createIter", 2)
		useIter, updateMap := r.ev("useIter", 1), r.ev("updateMap", 1)
		if r.err != nil {
			return nil, r.err
		}
		return func(ev Event) {
			switch ev.Op {
			case OpMapView:
				r.emit2(createColl, ev.Map, ev.Coll)
			case OpIterCreate:
				if ev.IsView {
					r.emit2(createIter, ev.Coll, ev.Iter)
				}
			case OpIterNext:
				r.emit1(useIter, ev.Iter)
			case OpMapUpdate:
				r.emit1(updateMap, ev.Map)
			}
		}, nil

	case "UnsafeSyncColl":
		sync := r.ev("sync", 1)
		syncCreate, asyncCreate := r.ev("syncCreateIter", 2), r.ev("asyncCreateIter", 2)
		syncAcc, asyncAcc := r.ev("syncAccess", 1), r.ev("asyncAccess", 1)
		if r.err != nil {
			return nil, r.err
		}
		return func(ev Event) {
			switch ev.Op {
			case OpCollSync:
				r.emit1(sync, ev.Coll)
			case OpIterCreate:
				if ev.Flag {
					r.emit2(syncCreate, ev.Coll, ev.Iter)
				} else {
					r.emit2(asyncCreate, ev.Coll, ev.Iter)
				}
			case OpIterNext:
				if ev.Flag {
					r.emit1(syncAcc, ev.Iter)
				} else {
					r.emit1(asyncAcc, ev.Iter)
				}
			}
		}, nil

	case "UnsafeSyncMap":
		sync, createSet := r.ev("sync", 1), r.ev("createSet", 2)
		syncCreate, asyncCreate := r.ev("syncCreateIter", 2), r.ev("asyncCreateIter", 2)
		syncAcc, asyncAcc := r.ev("syncAccess", 1), r.ev("asyncAccess", 1)
		if r.err != nil {
			return nil, r.err
		}
		return func(ev Event) {
			switch ev.Op {
			case OpMapSync:
				r.emit1(sync, ev.Map)
			case OpMapView:
				r.emit2(createSet, ev.Map, ev.Coll)
			case OpIterCreate:
				if !ev.IsView {
					return
				}
				if ev.Flag {
					r.emit2(syncCreate, ev.Coll, ev.Iter)
				} else {
					r.emit2(asyncCreate, ev.Coll, ev.Iter)
				}
			case OpIterNext:
				if !ev.IsView {
					return
				}
				if ev.Flag {
					r.emit1(syncAcc, ev.Iter)
				} else {
					r.emit1(asyncAcc, ev.Iter)
				}
			}
		}, nil
	}
	return nil, fmt.Errorf("dacapo: no adapter for property %q", property)
}
