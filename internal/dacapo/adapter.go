package dacapo

import (
	"fmt"

	"rvgo/internal/heap"
)

// Emitter is the property-event half of an adapter: the RV and JavaMOP
// engines and the tracematch engine all satisfy it.
type Emitter interface {
	EmitNamed(event string, vals ...heap.Ref) error
}

// Adapt translates instrumentation events into the parametric events of a
// named property, mirroring the AspectJ pointcuts of §1's figures. It
// returns a Sink that feeds the emitter. Unknown properties are an error.
func Adapt(property string, em Emitter) (Sink, error) {
	emit := func(event string, vals ...heap.Ref) {
		if err := em.EmitNamed(event, vals...); err != nil {
			panic(fmt.Sprintf("dacapo: adapter for %s: %v", property, err))
		}
	}
	switch property {
	case "HasNext", "HasNextLTL":
		return func(ev Event) {
			switch ev.Op {
			case OpIterHasNext:
				if ev.Flag {
					emit("hasnexttrue", ev.Iter)
				} else {
					emit("hasnextfalse", ev.Iter)
				}
			case OpIterNext:
				emit("next", ev.Iter)
			}
		}, nil

	case "UnsafeIter":
		return func(ev Event) {
			switch ev.Op {
			case OpIterCreate:
				emit("create", ev.Coll, ev.Iter)
			case OpCollUpdate:
				emit("update", ev.Coll)
			case OpIterNext:
				emit("next", ev.Iter)
			}
		}, nil

	case "UnsafeMapIter":
		return func(ev Event) {
			switch ev.Op {
			case OpMapView:
				emit("createColl", ev.Map, ev.Coll)
			case OpIterCreate:
				if ev.IsView {
					emit("createIter", ev.Coll, ev.Iter)
				}
			case OpIterNext:
				emit("useIter", ev.Iter)
			case OpMapUpdate:
				emit("updateMap", ev.Map)
			}
		}, nil

	case "UnsafeSyncColl":
		return func(ev Event) {
			switch ev.Op {
			case OpCollSync:
				emit("sync", ev.Coll)
			case OpIterCreate:
				if ev.Flag {
					emit("syncCreateIter", ev.Coll, ev.Iter)
				} else {
					emit("asyncCreateIter", ev.Coll, ev.Iter)
				}
			case OpIterNext:
				if ev.Flag {
					emit("syncAccess", ev.Iter)
				} else {
					emit("asyncAccess", ev.Iter)
				}
			}
		}, nil

	case "UnsafeSyncMap":
		return func(ev Event) {
			switch ev.Op {
			case OpMapSync:
				emit("sync", ev.Map)
			case OpMapView:
				emit("createSet", ev.Map, ev.Coll)
			case OpIterCreate:
				if !ev.IsView {
					return
				}
				if ev.Flag {
					emit("syncCreateIter", ev.Coll, ev.Iter)
				} else {
					emit("asyncCreateIter", ev.Coll, ev.Iter)
				}
			case OpIterNext:
				if !ev.IsView {
					return
				}
				if ev.Flag {
					emit("syncAccess", ev.Iter)
				} else {
					emit("asyncAccess", ev.Iter)
				}
			}
		}, nil
	}
	return nil, fmt.Errorf("dacapo: no adapter for property %q", property)
}
