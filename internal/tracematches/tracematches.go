// Package tracematches reimplements the Tracematches-style monitoring
// engine the paper compares against (§3 Discussion, §5): a regex-only
// system that stores, per automaton state, a disjunction of partial
// variable bindings, and collects bindings using *state-indexed* coenable
// information — "more precise, but limited to finite logics", since the
// per-state analysis cannot exist for context-free properties.
//
// Differences from abc's tracematches, documented for honesty:
//
//   - Matching is prefix-based (like the RV semantics in this repo), not
//     suffix-based; both fire the handler at the same UNSAFEITER-style
//     violations for the workload shapes evaluated here.
//   - Negative bindings are not modelled; a transition that would move a
//     binding into a dead automaton state simply drops the fork.
//
// The performance profile preserved is the one the paper discusses:
// per-event work proportional to the number of candidate binding disjuncts
// (found through a per-value index, with a per-state scan fallback), fork
// duplication on binding extension, and eager state-based collection.
package tracematches

import (
	"fmt"

	"rvgo/internal/coenable"
	"rvgo/internal/heap"
	"rvgo/internal/logic"
	"rvgo/internal/monitor"
	"rvgo/internal/param"
)

// Stats mirrors the monitoring counters of the RV engine where meaningful.
type Stats struct {
	Events       uint64
	Created      uint64 // bindings created (incl. forks)
	Collected    uint64 // bindings dropped by state-based GC
	GoalVerdicts uint64
	Live         int64
	PeakLive     int64
}

type binding struct {
	inst  param.Instance
	state int
	dead  bool
}

// Engine is a tracematch instance for one property.
type Engine struct {
	spec  *monitor.Spec
	graph *logic.Graph
	// stateNeeds[s] is the state-indexed coenable family: parameter sets,
	// one of which must be fully alive for the binding to still reach a
	// goal state from s.
	stateNeeds [][]param.Set
	liveState  []bool
	// possibleMasks[s] are the binding domains that can reach state s; a
	// scan fallback is needed for (s, sym) when some mask misses D(sym).
	possibleMasks []map[param.Set]bool
	goal          func(logic.Category) bool

	byState  [][]*binding
	byValue  map[uint64][]*binding
	exists   map[bkey]bool
	onMatch  func(param.Instance)
	stats    Stats
	sinceGC  int
	gcPeriod int
}

type bkey struct {
	k param.Key
	s int
}

// Options configures the tracematch engine.
type Options struct {
	OnMatch func(param.Instance)
	// GCPeriod is the number of events between eager collection sweeps.
	GCPeriod int
}

// New builds a tracematch engine from a spec whose blueprint is finite
// (Explorable). CFG properties are rejected — the limitation the paper
// points out.
func New(spec *monitor.Spec, opts Options) (*Engine, error) {
	ex, ok := spec.BP.(logic.Explorable)
	if !ok {
		return nil, fmt.Errorf("tracematches: %q is not a finite-state property", spec.Name)
	}
	g, err := ex.Explore(monitor.ExploreLimit)
	if err != nil {
		return nil, err
	}
	goalSet := map[logic.Category]bool{}
	for _, c := range spec.Goal {
		goalSet[c] = true
	}
	goal := func(c logic.Category) bool { return goalSet[c] }

	e := &Engine{
		spec:     spec,
		graph:    g,
		goal:     goal,
		byState:  make([][]*binding, g.NumStates()),
		byValue:  map[uint64][]*binding{},
		exists:   map[bkey]bool{},
		onMatch:  opts.OnMatch,
		gcPeriod: opts.GCPeriod,
	}
	if e.gcPeriod <= 0 {
		e.gcPeriod = 512
	}

	// State-indexed coenable sets (SEEABLE per state, mapped through D).
	seeable := coenable.StateSeeable(g, goal)
	evParams := spec.EventParams()
	e.stateNeeds = make([][]param.Set, g.NumStates())
	e.liveState = coenable.CanReachGoal(g, goal)
	for s := range e.stateNeeds {
		fam := map[param.Set]bool{}
		for _, t := range seeable[s] {
			var ps param.Set
			for b := range evParams {
				if t.Has(b) {
					ps = ps.Union(evParams[b])
				}
			}
			fam[ps] = true
		}
		for f := range fam {
			e.stateNeeds[s] = append(e.stateNeeds[s], f)
		}
	}

	// possibleMasks fixpoint over the automaton.
	e.possibleMasks = make([]map[param.Set]bool, g.NumStates())
	for s := range e.possibleMasks {
		e.possibleMasks[s] = map[param.Set]bool{}
	}
	e.possibleMasks[0][0] = true
	for changed := true; changed; {
		changed = false
		for s := 0; s < g.NumStates(); s++ {
			for sym := range g.Alphabet {
				t := g.Next[s][sym]
				for mask := range e.possibleMasks[s] {
					nm := mask.Union(evParams[sym])
					if !e.possibleMasks[t][nm] {
						e.possibleMasks[t][nm] = true
						changed = true
					}
				}
			}
		}
	}
	return e, nil
}

// Stats returns a copy of the counters.
func (e *Engine) Stats() Stats { return e.stats }

// Spec returns the engine's specification (it also lets the dacapo adapter
// take its symbol-resolved fast path).
func (e *Engine) Spec() *monitor.Spec { return e.spec }

// EmitNamed dispatches an event by name.
func (e *Engine) EmitNamed(name string, vals ...heap.Ref) error {
	sym, ok := e.spec.Symbol(name)
	if !ok {
		return fmt.Errorf("tracematches: no event %q", name)
	}
	e.Emit(sym, vals...)
	return nil
}

// Emit dispatches the parametric event sym⟨vals⟩.
func (e *Engine) Emit(sym int, vals ...heap.Ref) {
	e.Dispatch(sym, param.Of(e.spec.Events[sym].Params, vals...))
}

// Dispatch processes one parametric event.
func (e *Engine) Dispatch(sym int, theta param.Instance) {
	e.stats.Events++
	evParams := e.spec.Events[sym].Params

	// Candidate bindings: those sharing one of θ's objects...
	visited := map[*binding]bool{}
	var cands []*binding
	for _, p := range evParams.Members() {
		id := theta.Value(p).ID()
		lst := e.byValue[id]
		w := 0
		for _, b := range lst {
			if b.dead {
				continue
			}
			lst[w] = b
			w++
			if !visited[b] {
				visited[b] = true
				cands = append(cands, b)
			}
		}
		e.byValue[id] = lst[:w]
	}
	// ...plus, per state with a live transition on sym, bindings that may
	// bind none of D(e)'s parameters (scan fallback).
	for s := range e.byState {
		if !e.liveState[e.graph.Next[s][sym]] {
			continue
		}
		need := false
		for mask := range e.possibleMasks[s] {
			if mask.Inter(evParams).Empty() {
				need = true
				break
			}
		}
		if !need {
			continue
		}
		for _, b := range e.byState[s] {
			if !b.dead && b.inst.Mask().Inter(evParams).Empty() && !visited[b] {
				visited[b] = true
				cands = append(cands, b)
			}
		}
	}

	for _, b := range cands {
		if b.dead || !b.inst.Compatible(theta) {
			continue
		}
		target := e.graph.Next[b.state][sym]
		if !e.liveState[target] {
			// The fork/move would die instantly; tracematches encodes this
			// as a constraint refinement, we just skip it. A move (no new
			// parameters) means this binding can never match: collect it.
			if evParams.SubsetOf(b.inst.Mask()) {
				e.drop(b)
			}
			continue
		}
		lub, _ := b.inst.Lub(theta)
		if lub.Key() == b.inst.Key() {
			// Move: retire the old disjunct, add the advanced one.
			e.retire(b)
			e.addBinding(lub, target)
		} else {
			// Extension: fork — the narrower binding stays for other
			// future combinations (the disjunct duplication that makes
			// tracematches memory-hungry on multi-variable properties).
			e.addBinding(lub, target)
		}
	}

	// A fresh binding starting at the initial state.
	if t := e.graph.Next[0][sym]; e.liveState[t] {
		e.addBinding(theta, t)
	}

	e.sinceGC++
	if e.sinceGC >= e.gcPeriod {
		e.sinceGC = 0
		e.Sweep()
	}
}

func (e *Engine) addBinding(inst param.Instance, state int) {
	k := bkey{k: inst.Key(), s: state}
	if e.exists[k] {
		return
	}
	b := &binding{inst: inst, state: state}
	e.exists[k] = true
	e.stats.Created++
	e.stats.Live++
	if e.stats.Live > e.stats.PeakLive {
		e.stats.PeakLive = e.stats.Live
	}
	if e.matched(b) {
		return
	}
	e.register(b)
}

// matched reports and retires the binding when it reached a goal state.
func (e *Engine) matched(b *binding) bool {
	if !e.goal(e.graph.Cat[b.state]) {
		return false
	}
	e.stats.GoalVerdicts++
	if e.onMatch != nil {
		e.onMatch(b.inst)
	}
	e.retire(b)
	return true
}

func (e *Engine) register(b *binding) {
	e.byState[b.state] = append(e.byState[b.state], b)
	for _, p := range b.inst.Mask().Members() {
		id := b.inst.Value(p).ID()
		e.byValue[id] = append(e.byValue[id], b)
	}
}

// retire removes a binding that moved or matched (not a GC collection);
// list entries are compacted lazily.
func (e *Engine) retire(b *binding) {
	if b.dead {
		return
	}
	b.dead = true
	delete(e.exists, bkey{k: b.inst.Key(), s: b.state})
	e.stats.Live--
}

// drop removes a binding by state-based garbage collection.
func (e *Engine) drop(b *binding) {
	if b.dead {
		return
	}
	e.retire(b)
	e.stats.Collected++
}

// Sweep is the eager state-based collection pass: a binding whose state
// needs a parameter set that is no longer fully alive can never complete.
func (e *Engine) Sweep() {
	for s := range e.byState {
		lst := e.byState[s]
		w := 0
		for _, b := range lst {
			if b.dead {
				continue
			}
			if !e.needsAlive(b) {
				e.drop(b)
				continue
			}
			lst[w] = b
			w++
		}
		for j := w; j < len(lst); j++ {
			lst[j] = nil
		}
		e.byState[s] = lst[:w]
	}
	for id, lst := range e.byValue {
		w := 0
		for _, b := range lst {
			if !b.dead {
				lst[w] = b
				w++
			}
		}
		if w == 0 {
			delete(e.byValue, id)
		} else {
			e.byValue[id] = lst[:w]
		}
	}
}

// needsAlive evaluates the state-indexed ALIVENESS: some needed parameter
// set must be fully alive (unbound parameters count as live).
func (e *Engine) needsAlive(b *binding) bool {
	needs := e.stateNeeds[b.state]
	if len(needs) == 0 {
		return false
	}
	bound := b.inst.Mask()
	deadBound := bound.Diff(b.inst.AliveMask())
	for _, s := range needs {
		if s.Inter(deadBound).Empty() {
			return true
		}
	}
	return false
}
