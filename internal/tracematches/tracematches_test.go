package tracematches_test

import (
	"fmt"
	"math/rand"
	"testing"

	"rvgo/internal/heap"
	"rvgo/internal/monitor"
	"rvgo/internal/param"
	"rvgo/internal/props"
	"rvgo/internal/tracematches"
)

func newTM(t testing.TB, prop string) (*tracematches.Engine, *monitor.Spec, *int) {
	t.Helper()
	s, err := props.Build(prop)
	if err != nil {
		t.Fatal(err)
	}
	matches := 0
	tm, err := tracematches.New(s, tracematches.Options{
		OnMatch: func(param.Instance) { matches++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	return tm, s, &matches
}

func TestUnsafeIterViolation(t *testing.T) {
	tm, _, matches := newTM(t, "UnsafeIter")
	h := heap.New()
	c, i := h.Alloc("c"), h.Alloc("i")
	must(t, tm.EmitNamed("create", c, i))
	must(t, tm.EmitNamed("next", i))
	must(t, tm.EmitNamed("update", c))
	must(t, tm.EmitNamed("next", i))
	if *matches != 1 {
		t.Fatalf("matches = %d", *matches)
	}
}

func TestNoCrossBindingMatch(t *testing.T) {
	tm, _, matches := newTM(t, "UnsafeIter")
	h := heap.New()
	c1, c2, i1 := h.Alloc("c1"), h.Alloc("c2"), h.Alloc("i1")
	must(t, tm.EmitNamed("create", c1, i1))
	must(t, tm.EmitNamed("update", c2)) // different collection
	must(t, tm.EmitNamed("next", i1))
	if *matches != 0 {
		t.Fatalf("matches = %d", *matches)
	}
}

// TestAgreesWithRVEngine: on random fresh traces the tracematch engine
// must report exactly the goal verdicts the RV engine reports.
func TestAgreesWithRVEngine(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s, err := props.Build("UnsafeIter")
		if err != nil {
			t.Fatal(err)
		}
		var tmGot, rvGot []string
		tm, err := tracematches.New(s, tracematches.Options{
			OnMatch: func(inst param.Instance) { tmGot = append(tmGot, inst.String()) },
		})
		if err != nil {
			t.Fatal(err)
		}
		eng, err := monitor.New(s, monitor.Options{
			GC: monitor.GCNone, Creation: monitor.CreateEnable,
			OnVerdict: func(v monitor.Verdict) { rvGot = append(rvGot, v.Inst.String()) },
		})
		if err != nil {
			t.Fatal(err)
		}

		h := heap.New()
		cols := []*heap.Object{h.Alloc("c1"), h.Alloc("c2")}
		type iter struct{ obj *heap.Object }
		var iters []iter
		for n := 0; n < 80; n++ {
			switch rng.Intn(3) {
			case 0:
				c := cols[rng.Intn(2)]
				it := h.Alloc(fmt.Sprintf("i%d", len(iters)))
				iters = append(iters, iter{it})
				must(t, tm.EmitNamed("create", c, it))
				must(t, eng.EmitNamed("create", c, it))
			case 1:
				c := cols[rng.Intn(2)]
				must(t, tm.EmitNamed("update", c))
				must(t, eng.EmitNamed("update", c))
			case 2:
				if len(iters) == 0 {
					continue
				}
				it := iters[rng.Intn(len(iters))].obj
				must(t, tm.EmitNamed("next", it))
				must(t, eng.EmitNamed("next", it))
			}
		}
		if fmt.Sprint(tmGot) != fmt.Sprint(rvGot) {
			t.Fatalf("seed %d: tracematches %v vs RV %v", seed, tmGot, rvGot)
		}
	}
}

// TestStateBasedGC: bindings whose needed parameters died are dropped by
// the eager sweep.
func TestStateBasedGC(t *testing.T) {
	tm, _, _ := newTM(t, "UnsafeIter")
	h := heap.New()
	c := h.Alloc("c")
	for k := 0; k < 100; k++ {
		it := h.Alloc(fmt.Sprintf("i%d", k))
		must(t, tm.EmitNamed("create", c, it))
		must(t, tm.EmitNamed("next", it))
		h.Free(it)
	}
	tm.Sweep()
	st := tm.Stats()
	if st.Collected == 0 {
		t.Fatalf("state-based GC collected nothing: %+v", st)
	}
	// Only the ⟨c⟩-ish disjuncts may survive; all ⟨c,i⟩ bindings with dead
	// iterators must be gone.
	if st.Live > 5 {
		t.Fatalf("live bindings = %d, want nearly none", st.Live)
	}
}

func TestRejectsCFGProperties(t *testing.T) {
	s, err := props.Build("SafeLock")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tracematches.New(s, tracematches.Options{}); err == nil {
		t.Fatal("tracematches must reject context-free properties (the paper's point)")
	}
}

func must(t testing.TB, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
