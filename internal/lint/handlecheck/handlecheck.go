// Package handlecheck enforces the arena-handle discipline of the slab
// monitor store (DESIGN.md "The arena store"): *monitor.Mon values are
// transient views resolved from uint32 arena handles, valid only for the
// duration of one engine operation, and may not be retained. A *Mon
// stored in a struct field, a package-level variable, a named type or a
// container element type outside internal/monitor would dangle the
// moment the arena recycles the slot (generation-tagged handles exist
// precisely so stale references are caught — but only handles carry
// generations, raw pointers do not).
//
// The linter is a syntactic pass over the repository's Go sources using
// only the standard library (go/parser + go/ast): for every file outside
// internal/monitor it resolves the file's import alias of
// rvgo/internal/monitor and flags the type monitor.Mon (or *monitor.Mon,
// or any container over it) appearing in
//
//   - a struct field type,
//   - a package-level var declaration,
//   - a named type declaration (type X map[K]*monitor.Mon),
//
// all of which are stores. Function parameters, results and local
// variables are not flagged: passing a view down a call stack within one
// operation is exactly what the transient contract permits. Types inside
// func types are likewise exempt (a closure type mentions Mon without
// storing one).
package handlecheck

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// monitorPath is the package whose Mon records the discipline protects.
const monitorPath = "rvgo/internal/monitor"

// Finding is one discipline violation.
type Finding struct {
	Pos  token.Position
	What string // which store retained the handle
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.What)
}

// CheckDir walks root recursively and checks every Go file outside
// internal/monitor. Directories named testdata, vendor or starting with
// "." or "_" are skipped (fixtures are checked by CheckFile directly).
func CheckDir(root string) ([]Finding, error) {
	var findings []Finding
	monDir := filepath.Join(root, "internal", "monitor")
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if path == monDir {
				// The store's own package may hold its records however it
				// needs to — the discipline governs everyone else.
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		fs, err := CheckFile(path)
		if err != nil {
			return err
		}
		findings = append(findings, fs...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Offset < b.Offset
	})
	return findings, nil
}

// CheckFile parses one Go file and returns its violations.
func CheckFile(path string) ([]Finding, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	return checkAST(fset, f), nil
}

// monitorName returns the identifier the file refers to the monitor
// package by ("" if the file does not import it). A dot- or blank-import
// yields "" too: dot imports would need type information to resolve, and
// the repository style forbids them anyway.
func monitorName(f *ast.File) string {
	for _, imp := range f.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil || p != monitorPath {
			continue
		}
		if imp.Name != nil {
			if n := imp.Name.Name; n != "." && n != "_" {
				return n
			}
			return ""
		}
		return "monitor"
	}
	return ""
}

func checkAST(fset *token.FileSet, f *ast.File) []Finding {
	mon := monitorName(f)
	if mon == "" {
		return nil
	}
	var findings []Finding
	report := func(pos token.Pos, what string) {
		findings = append(findings, Finding{Pos: fset.Position(pos), What: what})
	}

	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok {
			// Function bodies may contain local struct/var declarations;
			// struct types declared anywhere are stores, package-level
			// vars are handled below, locals are transient.
			if fd, isFn := decl.(*ast.FuncDecl); isFn && fd.Body != nil {
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if st, ok := n.(*ast.StructType); ok {
						checkStruct(mon, st, report)
					}
					return true
				})
			}
			continue
		}
		switch gd.Tok {
		case token.VAR:
			for _, s := range gd.Specs {
				vs := s.(*ast.ValueSpec)
				if vs.Type != nil && holdsMon(mon, vs.Type) {
					report(vs.Pos(), fmt.Sprintf("package-level var retains *%s.Mon — store the uint32 arena handle instead", mon))
				}
			}
		case token.TYPE:
			for _, s := range gd.Specs {
				ts := s.(*ast.TypeSpec)
				if st, ok := ts.Type.(*ast.StructType); ok {
					checkStruct(mon, st, report)
					continue
				}
				if holdsMon(mon, ts.Type) {
					report(ts.Pos(), fmt.Sprintf("named type retains *%s.Mon — store the uint32 arena handle instead", mon))
				}
			}
		}
	}
	return findings
}

func checkStruct(mon string, st *ast.StructType, report func(token.Pos, string)) {
	for _, field := range st.Fields.List {
		if holdsMon(mon, field.Type) {
			report(field.Pos(), fmt.Sprintf("struct field retains *%s.Mon — store the uint32 arena handle instead", mon))
		}
		// Nested anonymous structs are their own stores.
		if inner, ok := deref(field.Type).(*ast.StructType); ok {
			checkStruct(mon, inner, report)
		}
	}
}

func deref(t ast.Expr) ast.Expr {
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.ParenExpr:
			t = x.X
		default:
			return t
		}
	}
}

// holdsMon reports whether storing a value of type t retains a
// monitor.Mon: the selector itself, a pointer to it, or any array,
// slice, map or channel over such a type. Function types are not stores
// (their values capture nothing by type alone), and nested struct types
// are handled by checkStruct so each field gets its own finding.
func holdsMon(mon string, t ast.Expr) bool {
	switch x := t.(type) {
	case *ast.SelectorExpr:
		id, ok := x.X.(*ast.Ident)
		return ok && id.Name == mon && x.Sel.Name == "Mon"
	case *ast.StarExpr:
		return holdsMon(mon, x.X)
	case *ast.ParenExpr:
		return holdsMon(mon, x.X)
	case *ast.ArrayType:
		return holdsMon(mon, x.Elt)
	case *ast.MapType:
		return holdsMon(mon, x.Key) || holdsMon(mon, x.Value)
	case *ast.ChanType:
		return holdsMon(mon, x.Value)
	case *ast.Ellipsis:
		return holdsMon(mon, x.Elt)
	}
	return false
}
