package handlecheck

import (
	"strings"
	"testing"
)

// TestCatchesPlantedEscapes parses the planted-escape fixture and
// requires every store form to be found: struct field, package var,
// named container type, channel element, local struct.
func TestCatchesPlantedEscapes(t *testing.T) {
	findings, err := CheckFile("testdata/bad.go")
	if err != nil {
		t.Fatal(err)
	}
	type want struct {
		line   int
		substr string
	}
	expected := []want{
		{10, "struct field"},
		{15, "package-level var"},
		{18, "named type"},
		{22, "struct field"},
		{28, "struct field"},
	}
	if len(findings) != len(expected) {
		t.Fatalf("got %d findings, want %d:\n%s", len(findings), len(expected), render(findings))
	}
	for i, w := range expected {
		f := findings[i]
		if f.Pos.Line != w.line || !strings.Contains(f.What, w.substr) {
			t.Errorf("finding %d = %s, want line %d containing %q", i, f, w.line, w.substr)
		}
	}
}

// TestCatchesAliasedImport: the escape hides behind an import alias.
func TestCatchesAliasedImport(t *testing.T) {
	findings, err := CheckFile("testdata/bad_alias.go")
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1:\n%s", len(findings), render(findings))
	}
	if !strings.Contains(findings[0].What, "struct field retains *store.Mon") {
		t.Errorf("finding = %s, want the aliased package name in the message", findings[0])
	}
}

// TestPermitsTransientUses: parameters, results, locals, func-typed
// fields and unrelated Mon selectors produce no findings.
func TestPermitsTransientUses(t *testing.T) {
	findings, err := CheckFile("testdata/good.go")
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("got %d findings on the permitted-use fixture:\n%s", len(findings), render(findings))
	}
}

// TestRepositoryClean runs the linter over the whole repository: no
// package outside internal/monitor may retain a *monitor.Mon. CI runs
// this in the lint job.
func TestRepositoryClean(t *testing.T) {
	findings, err := CheckDir("../../..")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("arena-handle discipline violation: %s", f)
	}
}

func render(fs []Finding) string {
	var b strings.Builder
	for _, f := range fs {
		b.WriteString("  " + f.String() + "\n")
	}
	return b.String()
}
