// Planted arena-discipline escapes: every store form the linter must
// catch. This file lives under testdata so the go tool (and CheckDir)
// ignore it; the tests parse it directly with CheckFile.
package bad

import "rvgo/internal/monitor"

// Struct field retaining a view pointer.
type cache struct {
	last *monitor.Mon
	name string
}

// Package-level var retaining views through a map.
var registry map[uint64]*monitor.Mon

// Named container type over views.
type ring []*monitor.Mon

// Channel element retention inside a struct.
type mailbox struct {
	inbox chan *monitor.Mon
}

// Local struct types are stores too.
func escape(m *monitor.Mon) {
	type holder struct {
		kept *monitor.Mon
	}
	_ = holder{kept: m}
}
