// The escape behind an import alias: the linter must resolve the file's
// own name for the monitor package, not match the literal "monitor".
package bad

import store "rvgo/internal/monitor"

type aliased struct {
	view *store.Mon
}
