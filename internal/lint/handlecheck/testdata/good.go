// Transient uses the discipline permits: parameters, results, locals and
// function-typed fields. The linter must report nothing here.
package good

import (
	"example.com/subpkg"

	"rvgo/internal/monitor"
)

// Passing a view down a call stack within one engine operation is the
// contract working as intended.
func step(m *monitor.Mon) *monitor.Mon {
	local := m
	return local
}

// A function-typed field mentions Mon without storing one.
type hooks struct {
	onStep func(*monitor.Mon)
}

// Handles, not views, are what stores keep.
type index struct {
	slots map[uint64]uint32
}

// Unrelated selectors named Mon from other packages are not the monitor
// package's records.
type other struct {
	m subpkg.Mon
}
