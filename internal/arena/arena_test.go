package arena

import (
	"strings"
	"testing"
)

type rec struct {
	a, b uint32
}

func TestAllocFreeReuse(t *testing.T) {
	var p Pool[rec]
	h1, r1 := p.Alloc()
	h2, r2 := p.Alloc()
	if h1 == h2 {
		t.Fatal("distinct allocations share a handle")
	}
	if h1.IsNil() || h2.IsNil() {
		t.Fatal("Alloc returned Nil")
	}
	r1.a, r2.a = 1, 2
	if p.At(h1).a != 1 || p.At(h2).a != 2 {
		t.Fatal("records alias or lost writes")
	}
	if p.Live() != 2 {
		t.Fatalf("Live = %d, want 2", p.Live())
	}

	p.Free(h1)
	if p.Live() != 1 {
		t.Fatalf("Live = %d after Free, want 1", p.Live())
	}
	h3, r3 := p.Alloc()
	if h3.Index() != h1.Index() {
		t.Fatalf("free-list reuse expected: index %d, want %d", h3.Index(), h1.Index())
	}
	if h3 == h1 {
		t.Fatal("recycled slot reissued under the stale generation")
	}
	if r3.a != 0 {
		t.Fatal("recycled record not zeroed")
	}
	if p.Reused() != 1 {
		t.Fatalf("Reused = %d, want 1", p.Reused())
	}
}

func TestStaleHandlePanics(t *testing.T) {
	var p Pool[rec]
	h, _ := p.Alloc()
	p.Free(h)

	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("%s on a stale handle did not panic", name)
			}
			if !strings.Contains(r.(string), "stale handle") {
				t.Fatalf("%s panic = %v, want a stale-handle message", name, r)
			}
		}()
		f()
	}
	mustPanic("At", func() { p.At(h) })
	mustPanic("Free", func() { p.Free(h) })
	mustPanic("At(Nil)", func() { p.At(Nil) })

	if _, ok := p.Get(h); ok {
		t.Fatal("Get found a freed handle")
	}
	if p.Alive(h) {
		t.Fatal("freed handle reported alive")
	}

	// ABA: the recycled slot's new handle works, the old one still fails.
	h2, _ := p.Alloc()
	if h2.Index() != h.Index() {
		t.Fatalf("expected slot reuse, got index %d want %d", h2.Index(), h.Index())
	}
	if !p.Alive(h2) || p.Alive(h) {
		t.Fatal("generation tag failed to separate old and new allocation of one slot")
	}
	mustPanic("At after ABA reuse", func() { p.At(h) })
}

func TestGenerationsAdvance(t *testing.T) {
	var p Pool[rec]
	h1, _ := p.Alloc()
	p.Free(h1)
	h2, _ := p.Alloc()
	p.Free(h2)
	h3, _ := p.Alloc()
	if h1 == h2 || h2 == h3 || h1 == h3 {
		t.Fatalf("handle generations repeat: %v %v %v", h1, h2, h3)
	}
	if h1.Index() != h2.Index() || h2.Index() != h3.Index() {
		t.Fatal("LIFO free list should reuse the same slot")
	}
}

func TestSlabGrowth(t *testing.T) {
	var p Pool[rec]
	n := SlabSize*2 + 5
	handles := make([]Handle, 0, n)
	for i := 0; i < n; i++ {
		h, r := p.Alloc()
		r.a = uint32(i)
		handles = append(handles, h)
	}
	st := p.Stats()
	if st.Slabs != 3 || st.Cap != 3*SlabSize || st.Live != n || st.HighWater != n {
		t.Fatalf("stats = %+v", st)
	}
	for i, h := range handles {
		if p.At(h).a != uint32(i) {
			t.Fatalf("record %d corrupted across slab growth", i)
		}
	}
	// Pointers are stable: record addresses taken before growth still hold.
	h0 := handles[0]
	r0 := p.At(h0)
	for i := 0; i < SlabSize; i++ {
		p.Alloc()
	}
	if p.At(h0) != r0 {
		t.Fatal("record pointer moved when the pool grew")
	}
}

func TestStatsOccupancyFragmentation(t *testing.T) {
	var p Pool[rec]
	var hs []Handle
	for i := 0; i < 100; i++ {
		h, _ := p.Alloc()
		hs = append(hs, h)
	}
	for _, h := range hs[:40] {
		p.Free(h)
	}
	st := p.Stats()
	if st.Live != 60 || st.Free != 40 || st.HighWater != 100 {
		t.Fatalf("stats = %+v", st)
	}
	if got := st.Occupancy(); got != 60.0/float64(SlabSize) {
		t.Fatalf("Occupancy = %v", got)
	}
	if got := st.Fragmentation(); got != 0.4 {
		t.Fatalf("Fragmentation = %v, want 0.4", got)
	}
	if (Stats{}).Occupancy() != 0 || (Stats{}).Fragmentation() != 0 {
		t.Fatal("empty-pool ratios must be 0")
	}
}

func TestPoisonVerify(t *testing.T) {
	var p Pool[rec]
	poisoned, verified := 0, 0
	p.SetChecks(
		func(r *rec) { r.a = 0xDEAD; poisoned++ },
		func(r *rec) {
			verified++
			if r.a != 0xDEAD {
				panic("poison not intact")
			}
		},
	)
	h, _ := p.Alloc()
	p.Free(h)
	if poisoned != 1 {
		t.Fatalf("poison ran %d times", poisoned)
	}
	_, r := p.Alloc()
	if verified != 1 {
		t.Fatalf("verify ran %d times", verified)
	}
	if r.a != 0 {
		t.Fatal("reused record not zeroed after verify")
	}

	// A mutation while pooled must trip verify.
	h2, _ := p.Alloc()
	p.Free(h2)
	idx := h2.Index()
	p.slabs[idx>>slabShift][idx&slabMask].a = 7 // simulate a stray write
	defer func() {
		if recover() == nil {
			t.Fatal("verify did not trip on a mutated pooled record")
		}
	}()
	p.Alloc() // LIFO: pops the mutated slot
}

func TestReset(t *testing.T) {
	var p Pool[rec]
	var hs []Handle
	for i := 0; i < SlabSize+10; i++ {
		h, _ := p.Alloc()
		hs = append(hs, h)
	}
	p.Free(hs[0])
	p.Reset()
	st := p.Stats()
	if st.Slabs != 0 || st.Live != 0 || st.Free != 0 || st.Cap != 0 {
		t.Fatalf("stats after Reset = %+v", st)
	}
	for _, h := range hs[1:] {
		if p.Alive(h) {
			t.Fatal("handle survived Reset")
		}
	}
	// The pool is reusable after Reset.
	h, r := p.Alloc()
	r.a = 9
	if p.At(h).a != 9 {
		t.Fatal("pool unusable after Reset")
	}
}

func TestHandleString(t *testing.T) {
	if Nil.String() != "arena.Nil" {
		t.Fatalf("Nil.String() = %q", Nil.String())
	}
	var p Pool[rec]
	h, _ := p.Alloc()
	if s := h.String(); !strings.Contains(s, "0@g1") {
		t.Fatalf("String() = %q, want slot 0 generation 1", s)
	}
}
