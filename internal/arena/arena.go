// Package arena implements uint32-indexed slab arenas: dense, index-
// addressed storage for the monitoring engine's bulk state, designed so
// the *host* garbage collector never traverses it.
//
// The motivating failure mode is ironic for this codebase: an engine built
// to garbage-collect *monitors* aggressively was itself a Go-GC burden,
// because every monitor, index-tree leaf member and parameter instance was
// an individual heap object the collector had to discover and mark. At
// millions of live monitors the mark phase scans millions of objects that
// the engine already tracks precisely. A slab arena removes them from the
// collector's world: records live in large fixed-size slabs, references
// between them are uint32 indices rather than pointers, and when the
// record type T contains no pointers the slabs are noscan allocations the
// collector never looks inside — the monitor store's GC cost becomes
// O(slabs), not O(monitors). This is the elib.Heap / gentemplate pool
// idiom from production Go dataplanes, specialized to fixed-size records.
//
// Handles are generation-tagged: a Handle packs a 32-bit slot index with
// the slot's 32-bit allocation generation, and every dereference checks
// the tag, so a stale handle (use-after-free, or an ABA reuse of the slot)
// fails loudly instead of silently aliasing an unrelated record.
// Reclamation is a free-list push — index recycling is O(1) and the freed
// garbage literally becomes the allocator, exactly the discipline the
// engine already applied to its pooled monitors.
//
// Each record type gets its own Pool (its own size class); free lists are
// per-pool, so allocation never searches and never splits. Pools are not
// safe for concurrent use: each engine owns its pools, mirroring the
// per-shard ownership invariant of the sharded runtime (a handle must
// never cross shards — see DESIGN.md "arena store").
package arena

import "fmt"

const (
	// slabShift sizes a slab at 4096 records: large enough that slab count
	// stays trivial at 10M+ records, small enough that a nearly idle
	// engine wastes at most one slab per pool.
	slabShift = 12
	// SlabSize is the number of records per slab.
	SlabSize = 1 << slabShift
	slabMask = SlabSize - 1
)

// Handle is a generation-tagged reference to a pool slot: the high 32 bits
// are the slot's allocation generation (odd while live), the low 32 bits
// the slot index plus one. The zero Handle is Nil and never issued.
type Handle uint64

// Nil is the invalid handle.
const Nil Handle = 0

// IsNil reports whether the handle is the zero handle.
func (h Handle) IsNil() bool { return h == Nil }

// Index returns the slot index. Undefined on Nil.
func (h Handle) Index() uint32 { return uint32(h) - 1 }

func (h Handle) gen() uint32 { return uint32(h >> 32) }

func makeHandle(gen, idx uint32) Handle {
	return Handle(gen)<<32 | Handle(idx+1)
}

// String renders the handle for diagnostics.
func (h Handle) String() string {
	if h.IsNil() {
		return "arena.Nil"
	}
	return fmt.Sprintf("arena.Handle(%d@g%d)", h.Index(), h.gen())
}

// Stats is a point-in-time occupancy snapshot of a pool.
type Stats struct {
	Slabs     int // slabs allocated
	Cap       int // record capacity (Slabs * SlabSize)
	Live      int // records currently allocated
	Free      int // records on the free list (Cap - Live - never-used)
	HighWater int // maximum of Live over the pool's lifetime
}

// Occupancy returns Live/Cap in [0,1]; 0 for an empty pool.
func (s Stats) Occupancy() float64 {
	if s.Cap == 0 {
		return 0
	}
	return float64(s.Live) / float64(s.Cap)
}

// Fragmentation returns the fraction of ever-used capacity that sits on
// the free list: Free/(Live+Free). 0 for a pool with no free records.
func (s Stats) Fragmentation() float64 {
	if s.Live+s.Free == 0 {
		return 0
	}
	return float64(s.Free) / float64(s.Live+s.Free)
}

// Pool is a slab arena for records of type T. The zero value is ready to
// use. If T contains no pointer-typed fields, the slabs are noscan: the Go
// collector never traverses the pool's contents regardless of how many
// records are live.
type Pool[T any] struct {
	slabs [][]T
	// gens holds each slot's generation, parallel to slabs. A slot is live
	// while its generation is odd; Alloc and Free each increment it, so a
	// handle's tag matches exactly while its allocation is current.
	gens [][]uint32
	// free is the LIFO free list of recycled slot indices. A slice (not an
	// intrusive list threaded through T) so that T stays fully caller-
	// defined and the list itself is one noscan allocation.
	free   []uint32
	next   uint32 // next never-used slot index
	live   int
	high   int
	reused uint64 // allocations served from the free list
	// poison is run on every Free and verify on every Alloc that reuses a
	// freed slot; installed by race/testing builds to scramble freed
	// records and assert the scramble is intact on reuse, so a straggling
	// stale reference that writes through a dangling pointer is caught at
	// the recycle point even if it dodged a generation check.
	poison, verify func(*T)
}

// SetChecks installs the poison/verify pair; see Pool.poison. Either may
// be nil. Intended for race-armed builds: the checks run on the Free and
// Alloc cold paths only.
func (p *Pool[T]) SetChecks(poison, verify func(*T)) {
	p.poison, p.verify = poison, verify
}

// Alloc returns a fresh handle and a pointer to its (zeroed) record. The
// pointer is stable for the lifetime of the allocation: slabs are never
// moved or resized.
func (p *Pool[T]) Alloc() (Handle, *T) {
	var idx uint32
	if n := len(p.free); n > 0 {
		idx = p.free[n-1]
		p.free = p.free[:n-1]
		r := &p.slabs[idx>>slabShift][idx&slabMask]
		if p.verify != nil {
			p.verify(r)
		}
		var zero T
		*r = zero
		p.reused++
	} else {
		idx = p.next
		p.next++
		if int(idx>>slabShift) == len(p.slabs) {
			p.slabs = append(p.slabs, make([]T, SlabSize))
			p.gens = append(p.gens, make([]uint32, SlabSize))
		}
	}
	g := &p.gens[idx>>slabShift][idx&slabMask]
	*g++ // even (free) -> odd (live)
	p.live++
	if p.live > p.high {
		p.high = p.live
	}
	return makeHandle(*g, idx), &p.slabs[idx>>slabShift][idx&slabMask]
}

// At returns the record for a live handle, panicking on Nil or on a stale
// handle (freed slot, or a slot recycled to a newer generation). The
// generation check is two array reads and a compare — cheap enough for
// every hot-path dereference.
func (p *Pool[T]) At(h Handle) *T {
	idx := uint32(h) - 1
	si, so := idx>>slabShift, idx&slabMask
	if h == Nil || int(si) >= len(p.slabs) || p.gens[si][so] != h.gen() {
		panic(fmt.Sprintf("arena: stale handle %v (use-after-free or ABA reuse)", h))
	}
	return &p.slabs[si][so]
}

// Get returns the record for the handle, or nil/false if the handle is
// Nil or stale.
func (p *Pool[T]) Get(h Handle) (*T, bool) {
	if h == Nil {
		return nil, false
	}
	idx := uint32(h) - 1
	si, so := idx>>slabShift, idx&slabMask
	if int(si) >= len(p.slabs) || p.gens[si][so] != h.gen() {
		return nil, false
	}
	return &p.slabs[si][so], true
}

// Alive reports whether the handle currently addresses a live record.
func (p *Pool[T]) Alive(h Handle) bool {
	_, ok := p.Get(h)
	return ok
}

// Free recycles a live handle's slot onto the free list. The slot's
// generation advances, so the handle (and any copy of it) is immediately
// stale; a later Alloc may reuse the index under a new generation.
func (p *Pool[T]) Free(h Handle) {
	r := p.At(h) // validates
	if p.poison != nil {
		p.poison(r)
	}
	idx := uint32(h) - 1
	p.gens[idx>>slabShift][idx&slabMask]++ // odd (live) -> even (free)
	p.free = append(p.free, idx)
	p.live--
}

// Live returns the number of currently allocated records.
func (p *Pool[T]) Live() int { return p.live }

// Reused returns the number of allocations served from the free list over
// the pool's lifetime — the recycling hit count.
func (p *Pool[T]) Reused() uint64 { return p.reused }

// Cap returns the pool's record capacity.
func (p *Pool[T]) Cap() int { return len(p.slabs) * SlabSize }

// Stats returns the occupancy snapshot.
func (p *Pool[T]) Stats() Stats {
	return Stats{
		Slabs:     len(p.slabs),
		Cap:       len(p.slabs) * SlabSize,
		Live:      p.live,
		Free:      len(p.free),
		HighWater: p.high,
	}
}

// Reset drops every slab and forgets every allocation. All outstanding
// handles become stale (their slabs are gone, so At panics and Get reports
// false). Used when an engine closes: one Reset returns the whole monitor
// store to the host allocator regardless of how many records were live.
func (p *Pool[T]) Reset() {
	p.slabs, p.gens, p.free = nil, nil, nil
	p.next, p.live = 0, 0
}
