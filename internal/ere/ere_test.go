package ere_test

import (
	"math/rand"
	"strings"
	"testing"

	"rvgo/internal/ere"
	"rvgo/internal/logic"
)

var alphabet = []string{"a", "b", "c"}

func mustCompile(t *testing.T, pattern string) *ere.Monitor {
	t.Helper()
	m, err := ere.Compile(pattern, alphabet)
	if err != nil {
		t.Fatalf("compile %q: %v", pattern, err)
	}
	return m
}

func classify(m *ere.Monitor, w string) logic.Category {
	s := m.Start()
	for _, ch := range w {
		s = s.Step(int(ch - 'a'))
	}
	return s.Category()
}

func TestBasicPatterns(t *testing.T) {
	cases := []struct {
		pattern string
		trace   string
		want    logic.Category
	}{
		{"a b", "", logic.Unknown},
		{"a b", "a", logic.Unknown},
		{"a b", "ab", logic.Match},
		{"a b", "ba", logic.Fail},
		{"a b", "abc", logic.Fail},
		{"a*", "", logic.Match},
		{"a*", "aaa", logic.Match},
		{"a*", "ab", logic.Fail},
		{"a+", "", logic.Unknown},
		{"a+", "a", logic.Match},
		{"a?", "", logic.Match},
		{"a? b", "b", logic.Match},
		{"a | b", "a", logic.Match},
		{"a | b", "b", logic.Match},
		{"a | b", "c", logic.Fail},
		{"(a b)* ", "abab", logic.Match},
		{"(a b)*", "aba", logic.Unknown},
		{"epsilon", "", logic.Match},
		{"epsilon", "a", logic.Fail},
		// Intersection: strings with at least one a AND at least one b.
		{"((a|b|c)* a (a|b|c)*) & ((a|b|c)* b (a|b|c)*)", "cacb", logic.Match},
		{"((a|b|c)* a (a|b|c)*) & ((a|b|c)* b (a|b|c)*)", "caca", logic.Unknown},
		// Complement: anything that is not exactly "ab".
		{"~(a b)", "", logic.Match},
		{"~(a b)", "ab", logic.Unknown}, // "ab" is not in ¬L, but "abX" is
		{"~(a b)", "aba", logic.Match},
	}
	for _, c := range cases {
		m := mustCompile(t, c.pattern)
		if got := classify(m, c.trace); got != c.want {
			t.Errorf("pattern %q trace %q: got %s want %s", c.pattern, c.trace, got, c.want)
		}
	}
}

func TestUnsafeIterPattern(t *testing.T) {
	// With create=a, update=b, next=c:
	m := mustCompile(t, "b* a c* b+ c")
	cases := map[string]logic.Category{
		"acbc":   logic.Match, // create next update next
		"bbacbc": logic.Match,
		"a":      logic.Unknown,
		"abc":    logic.Match,   // create update next
		"ac":     logic.Unknown, // still waiting for update+ next
		"ca":     logic.Fail,    // next before create
		"aa":     logic.Fail,    // two creates
	}
	for w, want := range cases {
		if got := classify(m, w); got != want {
			t.Errorf("trace %q: got %s want %s", w, got, want)
		}
	}
}

func TestParserErrors(t *testing.T) {
	bad := []string{
		"", "(", "a |", "a )", "unknownevent", "a **b(", "~",
	}
	for _, p := range bad {
		if _, err := ere.Compile(p, alphabet); err == nil {
			t.Errorf("pattern %q: expected error", p)
		}
	}
}

// TestDerivativeDFAAgainstBruteForce cross-checks the derivative DFA
// against direct language membership for random small patterns: nullable
// of iterated derivatives is membership by definition, so instead the DFA
// classification is compared with an independent NFA-free evaluator built
// on the same AST semantics (language membership by recursive expansion
// over bounded-length strings).
func TestDerivativeDFAAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		pattern := randPattern(rng, 3)
		m, err := ere.Compile(pattern, alphabet)
		if err != nil {
			t.Fatalf("pattern %q: %v", pattern, err)
		}
		// Enumerate all strings up to length 5; compare the DFA's match
		// category with recursive membership on the AST.
		e, err := ere.Parse(pattern, alphabet)
		if err != nil {
			t.Fatal(err)
		}
		var walk func(prefix []int)
		walk = func(prefix []int) {
			if len(prefix) > 5 {
				return
			}
			s := m.Start()
			for _, a := range prefix {
				s = s.Step(a)
			}
			got := s.Category() == logic.Match
			want := ere.Member(e, prefix)
			if got != want {
				t.Fatalf("pattern %q trace %v: dfa match=%v membership=%v", pattern, prefix, got, want)
			}
			for a := range alphabet {
				walk(append(prefix, a))
			}
		}
		walk(nil)
	}
}

func randPattern(rng *rand.Rand, depth int) string {
	if depth == 0 || rng.Intn(4) == 0 {
		return alphabet[rng.Intn(len(alphabet))]
	}
	l := randPattern(rng, depth-1)
	r := randPattern(rng, depth-1)
	switch rng.Intn(6) {
	case 0:
		return "(" + l + " " + r + ")"
	case 1:
		return "(" + l + " | " + r + ")"
	case 2:
		return "(" + l + ")*"
	case 3:
		return "(" + l + ")+"
	case 4:
		return "(" + l + " & " + r + ")"
	default:
		return "(" + l + ")?"
	}
}

func TestDFAStateCountBounded(t *testing.T) {
	// A pathological-ish pattern still yields a small canonical DFA.
	m := mustCompile(t, "(a|b)* a (a|b) (a|b) (a|b)")
	if m.NumStates() > 64 {
		t.Fatalf("DFA has %d states; canonicalization regressed", m.NumStates())
	}
}

func TestExploreMatchesStepping(t *testing.T) {
	m := mustCompile(t, "b* a c* b+ c")
	g, err := m.Explore(1 << 12)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(8)
		s := m.Start()
		gs := logic.State(logic.GraphState{G: g, S: 0})
		var b strings.Builder
		for k := 0; k < n; k++ {
			a := rng.Intn(len(alphabet))
			b.WriteByte(byte('a' + a))
			s = s.Step(a)
			gs = gs.Step(a)
		}
		if s.Category() != gs.Category() {
			t.Fatalf("trace %q: direct %s vs explored %s", b.String(), s.Category(), gs.Category())
		}
	}
}
