package ere

// Member decides w ∈ L(e) directly on the AST by recursive expansion. It
// is exponential and exists as an executable specification: tests
// cross-check the derivative DFA against it on short strings.
func Member(e Expr, w []int) bool {
	switch e := e.(type) {
	case emptyExpr:
		return false
	case epsExpr:
		return len(w) == 0
	case symExpr:
		return len(w) == 1 && w[0] == e.a
	case catExpr:
		for k := 0; k <= len(w); k++ {
			if Member(e.l, w[:k]) && Member(e.r, w[k:]) {
				return true
			}
		}
		return false
	case altExpr:
		for _, x := range e.xs {
			if Member(x, w) {
				return true
			}
		}
		return false
	case andExpr:
		for _, x := range e.xs {
			if !Member(x, w) {
				return false
			}
		}
		return true
	case starExpr:
		if len(w) == 0 {
			return true
		}
		for k := 1; k <= len(w); k++ {
			if Member(e.x, w[:k]) && Member(e, w[k:]) {
				return true
			}
		}
		return false
	case notExpr:
		return !Member(e.x, w)
	}
	return false
}
