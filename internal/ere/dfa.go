package ere

import (
	"fmt"

	"rvgo/internal/logic"
)

// DefaultStateLimit bounds the number of derivative states; EREs over
// monitoring alphabets are tiny, so exceeding this indicates a bug or a
// pathological pattern.
const DefaultStateLimit = 1 << 14

// Monitor is the DFA monitor for an ERE pattern. It implements
// logic.Explorable. State categories: match for nullable states, fail for
// states whose language is empty (no suffix can ever match again), and ?
// otherwise.
type Monitor struct {
	alphabet []string
	graph    *logic.Graph
	expr     Expr
}

// Compile builds a DFA monitor from a pattern string.
func Compile(pattern string, alphabet []string) (*Monitor, error) {
	e, err := Parse(pattern, alphabet)
	if err != nil {
		return nil, err
	}
	return CompileExpr(e, alphabet)
}

// CompileExpr builds a DFA monitor from an already-constructed expression.
func CompileExpr(e Expr, alphabet []string) (*Monitor, error) {
	g, err := buildDFA(e, alphabet, DefaultStateLimit)
	if err != nil {
		return nil, err
	}
	return &Monitor{alphabet: alphabet, graph: g, expr: e}, nil
}

func buildDFA(root Expr, alphabet []string, limit int) (*logic.Graph, error) {
	index := map[string]int{}
	var states []Expr
	g := &logic.Graph{Alphabet: alphabet}

	add := func(e Expr) (int, error) {
		k := e.key()
		if i, ok := index[k]; ok {
			return i, nil
		}
		if len(states) >= limit {
			return 0, fmt.Errorf("ere: derivative DFA exceeded %d states", limit)
		}
		i := len(states)
		index[k] = i
		states = append(states, e)
		g.Next = append(g.Next, make([]int, len(alphabet)))
		g.Cat = append(g.Cat, logic.Unknown) // fixed up below
		return i, nil
	}

	if _, err := add(root); err != nil {
		return nil, err
	}
	for i := 0; i < len(states); i++ {
		for a := range alphabet {
			j, err := add(states[i].deriv(a))
			if err != nil {
				return nil, err
			}
			g.Next[i][a] = j
		}
	}

	// Categories: match for nullable; fail for states that cannot reach a
	// nullable state (their language is empty, so no extension can match).
	liveToMatch := make([]bool, len(states))
	for changed := true; changed; {
		changed = false
		for i, e := range states {
			if liveToMatch[i] {
				continue
			}
			if e.nullable() {
				liveToMatch[i] = true
				changed = true
				continue
			}
			for a := range alphabet {
				if liveToMatch[g.Next[i][a]] {
					liveToMatch[i] = true
					changed = true
					break
				}
			}
		}
	}
	for i, e := range states {
		switch {
		case e.nullable():
			g.Cat[i] = logic.Match
		case !liveToMatch[i]:
			g.Cat[i] = logic.Fail
		default:
			g.Cat[i] = logic.Unknown
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// Alphabet implements logic.Blueprint.
func (m *Monitor) Alphabet() []string { return m.alphabet }

// Start implements logic.Blueprint.
func (m *Monitor) Start() logic.State { return logic.GraphState{G: m.graph, S: 0} }

// Categories implements logic.Blueprint.
func (m *Monitor) Categories() []logic.Category {
	return logic.GraphBlueprint{G: m.graph}.Categories()
}

// Explore implements logic.Explorable.
func (m *Monitor) Explore(limit int) (*logic.Graph, error) {
	if m.graph.NumStates() > limit {
		return nil, fmt.Errorf("ere: %d states exceeds limit %d", m.graph.NumStates(), limit)
	}
	return m.graph, nil
}

// NumStates returns the DFA size (for tests and diagnostics).
func (m *Monitor) NumStates() int { return m.graph.NumStates() }

var _ logic.Explorable = (*Monitor)(nil)
