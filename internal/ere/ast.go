// Package ere implements the extended-regular-expression plugin of the RV
// system (the `ere:` blocks of Figure 3). EREs extend regular expressions
// with intersection (&) and complement (~). The monitor is the minimal-ish
// DFA obtained from Brzozowski derivatives over canonicalized terms, which
// handles & and ~ without a powerset construction.
//
// Verdicts: a state whose expression is nullable is a match; a state from
// which no string is accepted is fail; otherwise ? (unknown). Matching is
// prefix-incremental: every prefix of the trace is classified, so a handler
// fires at each match, as in JavaMOP's ERE plugin.
package ere

import (
	"fmt"
	"sort"
	"strings"
)

// Expr is a canonicalized ERE term. Exprs are interned by their printed
// form during DFA construction, so structural equality after smart
// constructors is what bounds the derivative state space.
type Expr interface {
	// nullable reports whether the empty trace is in the language.
	nullable() bool
	// deriv returns the Brzozowski derivative with respect to symbol a.
	deriv(a int) Expr
	// key renders a canonical form (used to identify DFA states).
	key() string
}

type (
	emptyExpr struct{}            // ∅: no traces
	epsExpr   struct{}            // ε: the empty trace
	symExpr   struct{ a int }     // single event
	catExpr   struct{ l, r Expr } // concatenation (right-nested)
	altExpr   struct{ xs []Expr } // union, flattened/sorted/deduped
	andExpr   struct{ xs []Expr } // intersection, flattened/sorted/deduped
	starExpr  struct{ x Expr }
	notExpr   struct{ x Expr }
)

// Empty is the empty language ∅.
var Empty Expr = emptyExpr{}

// Eps is the language {ε}.
var Eps Expr = epsExpr{}

// Sym returns the single-event expression for symbol a.
func Sym(a int) Expr { return symExpr{a} }

// Cat concatenates expressions, applying the identities ∅·r = ∅, ε·r = r.
func Cat(l, r Expr) Expr {
	if l == Empty || r == Empty {
		return Empty
	}
	if l == Eps {
		return r
	}
	if r == Eps {
		return l
	}
	// Right-nest so printed forms are canonical.
	if lc, ok := l.(catExpr); ok {
		return catExpr{lc.l, Cat(lc.r, r)}
	}
	return catExpr{l, r}
}

// CatAll concatenates a sequence.
func CatAll(xs ...Expr) Expr {
	r := Eps
	for i := len(xs) - 1; i >= 0; i-- {
		r = Cat(xs[i], r)
	}
	return r
}

// Alt builds a canonical union: flattened, deduplicated, sorted, with ∅
// dropped.
func Alt(xs ...Expr) Expr {
	flat := flatten(xs, func(e Expr) ([]Expr, bool) {
		if a, ok := e.(altExpr); ok {
			return a.xs, true
		}
		return nil, false
	})
	seen := map[string]bool{}
	var keep []Expr
	for _, e := range flat {
		if e == Empty {
			continue
		}
		k := e.key()
		if !seen[k] {
			seen[k] = true
			keep = append(keep, e)
		}
	}
	switch len(keep) {
	case 0:
		return Empty
	case 1:
		return keep[0]
	}
	sortExprs(keep)
	return altExpr{keep}
}

// And builds a canonical intersection: flattened, deduplicated, sorted; if
// any operand is ∅ the result is ∅.
func And(xs ...Expr) Expr {
	flat := flatten(xs, func(e Expr) ([]Expr, bool) {
		if a, ok := e.(andExpr); ok {
			return a.xs, true
		}
		return nil, false
	})
	seen := map[string]bool{}
	var keep []Expr
	for _, e := range flat {
		if e == Empty {
			return Empty
		}
		k := e.key()
		if !seen[k] {
			seen[k] = true
			keep = append(keep, e)
		}
	}
	switch len(keep) {
	case 0:
		return Not(Empty) // intersection of nothing: everything
	case 1:
		return keep[0]
	}
	sortExprs(keep)
	return andExpr{keep}
}

// Star returns x*, applying ∅* = ε* = ε and (x*)* = x*.
func Star(x Expr) Expr {
	switch x := x.(type) {
	case emptyExpr, epsExpr:
		return Eps
	case starExpr:
		return x
	}
	return starExpr{x}
}

// Plus returns x+ = x·x*.
func Plus(x Expr) Expr { return Cat(x, Star(x)) }

// Opt returns x? = x | ε.
func Opt(x Expr) Expr { return Alt(x, Eps) }

// Not returns the complement ¬x, applying ¬¬x = x.
func Not(x Expr) Expr {
	if n, ok := x.(notExpr); ok {
		return n.x
	}
	return notExpr{x}
}

func flatten(xs []Expr, split func(Expr) ([]Expr, bool)) []Expr {
	var out []Expr
	for _, e := range xs {
		if sub, ok := split(e); ok {
			out = append(out, sub...)
		} else {
			out = append(out, e)
		}
	}
	return out
}

func sortExprs(xs []Expr) {
	sort.Slice(xs, func(i, j int) bool { return xs[i].key() < xs[j].key() })
}

func (emptyExpr) nullable() bool { return false }
func (epsExpr) nullable() bool   { return true }
func (symExpr) nullable() bool   { return false }
func (e catExpr) nullable() bool { return e.l.nullable() && e.r.nullable() }
func (e altExpr) nullable() bool {
	for _, x := range e.xs {
		if x.nullable() {
			return true
		}
	}
	return false
}
func (e andExpr) nullable() bool {
	for _, x := range e.xs {
		if !x.nullable() {
			return false
		}
	}
	return true
}
func (starExpr) nullable() bool  { return true }
func (e notExpr) nullable() bool { return !e.x.nullable() }

func (emptyExpr) deriv(int) Expr { return Empty }
func (epsExpr) deriv(int) Expr   { return Empty }
func (e symExpr) deriv(a int) Expr {
	if e.a == a {
		return Eps
	}
	return Empty
}
func (e catExpr) deriv(a int) Expr {
	d := Cat(e.l.deriv(a), e.r)
	if e.l.nullable() {
		return Alt(d, e.r.deriv(a))
	}
	return d
}
func (e altExpr) deriv(a int) Expr {
	ds := make([]Expr, len(e.xs))
	for i, x := range e.xs {
		ds[i] = x.deriv(a)
	}
	return Alt(ds...)
}
func (e andExpr) deriv(a int) Expr {
	ds := make([]Expr, len(e.xs))
	for i, x := range e.xs {
		ds[i] = x.deriv(a)
	}
	return And(ds...)
}
func (e starExpr) deriv(a int) Expr { return Cat(e.x.deriv(a), starExpr{e.x}) }
func (e notExpr) deriv(a int) Expr  { return Not(e.x.deriv(a)) }

func (emptyExpr) key() string  { return "0" }
func (epsExpr) key() string    { return "e" }
func (e symExpr) key() string  { return fmt.Sprintf("s%d", e.a) }
func (e catExpr) key() string  { return "(" + e.l.key() + "." + e.r.key() + ")" }
func (e altExpr) key() string  { return "(" + joinKeys(e.xs, "|") + ")" }
func (e andExpr) key() string  { return "(" + joinKeys(e.xs, "&") + ")" }
func (e starExpr) key() string { return e.x.key() + "*" }
func (e notExpr) key() string  { return "~" + e.x.key() }

func joinKeys(xs []Expr, sep string) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = x.key()
	}
	return strings.Join(parts, sep)
}
