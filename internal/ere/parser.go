package ere

import (
	"fmt"
	"strings"
	"unicode"
)

// Parse parses the `ere:` pattern syntax of Figure 3 over the given event
// alphabet. Grammar (lowest to highest precedence):
//
//	alt    := and ('|' and)*
//	and    := cat ('&' cat)*
//	cat    := unary+
//	unary  := atom ('*' | '+' | '?')*
//	atom   := '~' atom | '(' alt ')' | 'epsilon' | 'empty' | event
//
// Event names must be members of alphabet.
func Parse(pattern string, alphabet []string) (Expr, error) {
	syms := map[string]int{}
	for i, e := range alphabet {
		syms[e] = i
	}
	p := &parser{toks: lex(pattern), syms: syms}
	e, err := p.alt()
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.toks) {
		return nil, fmt.Errorf("ere: unexpected %q at end of pattern", p.toks[p.pos])
	}
	return e, nil
}

type parser struct {
	toks []string
	pos  int
	syms map[string]int
}

func lex(s string) []string {
	var toks []string
	i := 0
	for i < len(s) {
		c := rune(s[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case strings.ContainsRune("()|&*+?~", c):
			toks = append(toks, string(c))
			i++
		default:
			j := i
			for j < len(s) && (isIdent(rune(s[j]))) {
				j++
			}
			if j == i {
				toks = append(toks, string(c))
				i++
			} else {
				toks = append(toks, s[i:j])
				i = j
			}
		}
	}
	return toks
}

func isIdent(c rune) bool {
	return unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_'
}

func (p *parser) peek() string {
	if p.pos < len(p.toks) {
		return p.toks[p.pos]
	}
	return ""
}

func (p *parser) next() string {
	t := p.peek()
	p.pos++
	return t
}

func (p *parser) alt() (Expr, error) {
	e, err := p.and()
	if err != nil {
		return nil, err
	}
	for p.peek() == "|" {
		p.next()
		r, err := p.and()
		if err != nil {
			return nil, err
		}
		e = Alt(e, r)
	}
	return e, nil
}

func (p *parser) and() (Expr, error) {
	e, err := p.cat()
	if err != nil {
		return nil, err
	}
	for p.peek() == "&" {
		p.next()
		r, err := p.cat()
		if err != nil {
			return nil, err
		}
		e = And(e, r)
	}
	return e, nil
}

func (p *parser) cat() (Expr, error) {
	e, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t == "" || t == ")" || t == "|" || t == "&" {
			return e, nil
		}
		r, err := p.unary()
		if err != nil {
			return nil, err
		}
		e = Cat(e, r)
	}
}

func (p *parser) unary() (Expr, error) {
	e, err := p.atom()
	if err != nil {
		return nil, err
	}
	for {
		switch p.peek() {
		case "*":
			p.next()
			e = Star(e)
		case "+":
			p.next()
			e = Plus(e)
		case "?":
			p.next()
			e = Opt(e)
		default:
			return e, nil
		}
	}
}

func (p *parser) atom() (Expr, error) {
	switch t := p.next(); t {
	case "":
		return nil, fmt.Errorf("ere: unexpected end of pattern")
	case "~":
		e, err := p.atom()
		if err != nil {
			return nil, err
		}
		return Not(e), nil
	case "(":
		e, err := p.alt()
		if err != nil {
			return nil, err
		}
		if p.next() != ")" {
			return nil, fmt.Errorf("ere: missing ')'")
		}
		return e, nil
	case "epsilon":
		return Eps, nil
	case "empty":
		return Empty, nil
	case ")", "|", "&", "*", "+", "?":
		return nil, fmt.Errorf("ere: unexpected %q", t)
	default:
		a, ok := p.syms[t]
		if !ok {
			return nil, fmt.Errorf("ere: unknown event %q", t)
		}
		return Sym(a), nil
	}
}
