package index_test

import (
	"fmt"
	"testing"

	"rvgo/internal/heap"
	"rvgo/internal/index"
	"rvgo/internal/param"
)

// fakeMon implements index.Monitor with observable counters.
type fakeMon struct {
	notified  int
	flagged   bool
	refs      int
	collected bool
}

func (m *fakeMon) NotifyParamDeath() { m.notified++ }
func (m *fakeMon) Collectable() bool { return m.flagged }
func (m *fakeMon) Retain()           { m.refs++ }
func (m *fakeMon) Release() {
	m.refs--
	if m.refs <= 0 {
		m.collected = true
	}
}

func TestMapPutGet(t *testing.T) {
	h := heap.New()
	m := index.NewMap()
	var keys []*heap.Object
	mkSet := func() *index.Set {
		s := index.NewSet()
		s.Add(&fakeMon{})
		return s
	}
	for i := 0; i < 100; i++ {
		k := h.Alloc(fmt.Sprintf("k%d", i))
		keys = append(keys, k)
		m.Put(k, mkSet())
	}
	if m.Len() != 100 {
		t.Fatalf("len = %d", m.Len())
	}
	for _, k := range keys {
		if _, ok := m.Get(k); !ok {
			t.Fatalf("missing key %s", k.Label())
		}
	}
	if _, ok := m.Get(h.Alloc("other")); ok {
		t.Fatal("phantom key")
	}
	// Replacement keeps a single entry.
	m.Put(keys[0], mkSet())
	if m.Len() != 100 {
		t.Fatalf("len after replace = %d", m.Len())
	}
}

// TestEmptyStructuresDropped: the paper drops mappings to empty data
// structures opportunistically (§5.1.1).
func TestEmptyStructuresDropped(t *testing.T) {
	h := heap.New()
	m := index.NewMap()
	k := h.Alloc("k")
	m.Put(k, index.NewSet()) // empty set
	m.ExpungeAll()
	if m.Len() != 0 {
		t.Fatalf("empty set mapping must be dropped, len = %d", m.Len())
	}
}

// TestMapExpungeNotifies reproduces Figure 7: when a key's object dies and
// the map is touched, the monitors below the mapping are notified and the
// broken mapping removed.
func TestMapExpungeNotifies(t *testing.T) {
	h := heap.New()
	m := index.NewMap()
	k := h.Alloc("c2")
	set := index.NewSet()
	mon1, mon3 := &fakeMon{}, &fakeMon{}
	set.Add(mon1)
	set.Add(mon3)
	m.Put(k, set)

	h.Free(k)
	m.ExpungeAll()
	if mon1.notified == 0 || mon3.notified == 0 {
		t.Fatal("monitors below a dead key must be notified")
	}
	if _, ok := m.Get(k); ok {
		t.Fatal("broken mapping must be removed")
	}
	if m.Len() != 0 {
		t.Fatalf("len = %d", m.Len())
	}
	// Detaching released the containment.
	if mon1.refs != 0 || !mon1.collected {
		t.Fatal("detach must release contained monitors")
	}
}

// TestSetCompaction reproduces Figure 8: iterating a set skips and removes
// collectable monitors in one pass.
func TestSetCompaction(t *testing.T) {
	s := index.NewSet()
	var mons []*fakeMon
	for i := 0; i < 10; i++ {
		m := &fakeMon{}
		mons = append(mons, m)
		s.Add(m)
	}
	for i, m := range mons {
		if i%2 == 0 {
			m.flagged = true
		}
	}
	var visited int
	s.ForEach(func(index.Monitor) { visited++ })
	if visited != 5 {
		t.Fatalf("visited %d, want 5", visited)
	}
	if s.Len() != 5 {
		t.Fatalf("len after compaction = %d", s.Len())
	}
	for i, m := range mons {
		if i%2 == 0 && (!m.collected || m.refs != 0) {
			t.Fatal("flagged members must be released")
		}
		if i%2 == 1 && m.refs != 1 {
			t.Fatal("live members must stay retained")
		}
	}
}

func TestMapGrowSweepsDeadKeys(t *testing.T) {
	h := heap.New()
	m := index.NewMap()
	dead := 0
	for i := 0; i < 200; i++ {
		k := h.Alloc("")
		set := index.NewSet()
		set.Add(&fakeMon{})
		m.Put(k, set)
		if i%3 == 0 {
			h.Free(k)
			dead++
		}
	}
	// Growth sweeps exhaustively; remaining entries are only live ones.
	m.ExpungeAll()
	if m.Len() != 200-dead {
		t.Fatalf("len = %d, want %d", m.Len(), 200-dead)
	}
}

func TestTreeLookup(t *testing.T) {
	h := heap.New()
	tree := index.NewTree(param.SetOf(0, 1))
	c1, i1, i2 := h.Alloc("c1"), h.Alloc("i1"), h.Alloc("i2")

	v1 := param.Empty().Bind(0, c1).Bind(1, i1)
	v2 := param.Empty().Bind(0, c1).Bind(1, i2)
	inst1, inst2 := &v1, &v2

	if tree.Lookup(inst1) != nil {
		t.Fatal("lookup before insert must be nil")
	}
	mon := &fakeMon{}
	s1 := tree.GetOrCreate(inst1)
	s1.Add(mon)
	s2 := tree.GetOrCreate(inst2)
	s2.Add(&fakeMon{})
	if s1 == s2 {
		t.Fatal("distinct tuples must get distinct leaves")
	}
	if tree.GetOrCreate(inst1) != s1 {
		t.Fatal("GetOrCreate must be stable")
	}
	if tree.Lookup(inst1) != s1 || tree.Lookup(inst2) != s2 {
		t.Fatal("lookup after insert")
	}
	h.Free(c1)
	tree.Root().ExpungeAll()
	if tree.Lookup(inst1) != nil {
		t.Fatal("dead first-level key must break the path")
	}
	if mon.notified == 0 {
		t.Fatal("monitor under the dead key must be notified")
	}
}

// TestLazyExpungeQuota: without touching the map, dead keys stay; each
// operation only examines a bounded number of buckets.
func TestLazyExpungeQuota(t *testing.T) {
	h := heap.New()
	m := index.NewMap()
	var keys []*heap.Object
	for i := 0; i < 64; i++ {
		k := h.Alloc("")
		keys = append(keys, k)
		m.Put(k, index.NewSet())
	}
	before := m.Len()
	for _, k := range keys {
		h.Free(k)
	}
	if m.Len() != before {
		t.Fatal("no operation yet: nothing expunged")
	}
	// A single Get expunges at most ExpungeQuota buckets.
	m.Get(keys[0])
	if before-m.Len() > 16 {
		t.Fatalf("one op expunged %d entries; laziness broken", before-m.Len())
	}
	m.ExpungeAll()
	if m.Len() != 0 {
		t.Fatalf("full sweep left %d entries", m.Len())
	}
}

func TestEachMonitorWalksSubtrees(t *testing.T) {
	h := heap.New()
	outer := index.NewMap()
	inner := index.NewMap()
	set := index.NewSet()
	set.Add(&fakeMon{})
	set.Add(&fakeMon{})
	inner.Put(h.Alloc("i"), set)
	outer.Put(h.Alloc("c"), inner)
	count := 0
	outer.EachMonitor(func(index.Monitor) { count++ })
	if count != 2 {
		t.Fatalf("EachMonitor visited %d", count)
	}
}

// TestExpungeQuotaFinalBucket: a dead key whose bucket is the last one the
// round-robin cursor reaches is still discovered — quota exhaustion per
// operation postpones, never loses, the notification. The amortized stride
// means an operation may charge no scan at all; the test bounds the number
// of operations needed by the table size times the stride.
func TestExpungeQuotaFinalBucket(t *testing.T) {
	h := heap.New()
	m := index.NewMap()
	var keys []*heap.Object
	for i := 0; i < 64; i++ { // spread over all buckets, no resize after
		k := h.Alloc("")
		keys = append(keys, k)
		set := index.NewSet()
		set.Add(&fakeMon{})
		m.Put(k, set)
	}
	probe := h.Alloc("probe")
	mon := &fakeMon{}
	set := index.NewSet()
	set.Add(mon)
	m.Put(probe, set)
	h.Free(probe)

	// Worst case: the cursor has just passed the probe's bucket, so a full
	// round-robin revolution is needed. Each operation scans at most
	// ExpungeQuota buckets and only every strideth operation scans at all;
	// 4*64 live-key Gets overshoot any table size this test can have.
	alive := keys[0]
	for i := 0; i < 4*64 && mon.notified == 0; i++ {
		m.Get(alive)
	}
	if mon.notified == 0 {
		t.Fatal("dead key in the cursor's last bucket never expunged")
	}
	if _, ok := m.Get(probe); ok {
		t.Fatal("dead mapping still reachable after expunge")
	}
	if !mon.collected {
		t.Fatal("monitor under the dead key not released")
	}
}

// TestResizeFullSweep: growing the table expunges exhaustively — every dead
// key is discovered by the resize itself, with no expunge quota involved.
func TestResizeFullSweep(t *testing.T) {
	h := heap.New()
	m := index.NewMap()
	var dead []*fakeMon
	// NewMap starts with 8 buckets and grows at 32 entries; insert the dead
	// cohort first, kill it, then push past the resize threshold.
	for i := 0; i < 16; i++ {
		k := h.Alloc("")
		mon := &fakeMon{}
		set := index.NewSet()
		set.Add(mon)
		m.Put(k, set)
		dead = append(dead, mon)
		h.Free(k)
	}
	for i := 0; i < 40; i++ { // crosses the 32-entry growth threshold
		set := index.NewSet()
		set.Add(&fakeMon{})
		m.Put(h.Alloc(""), set)
	}
	for i, mon := range dead {
		if mon.notified == 0 {
			t.Fatalf("dead key %d not notified by the resize sweep", i)
		}
		if !mon.collected {
			t.Fatalf("dead key %d's monitor not released by the resize sweep", i)
		}
	}
	if m.Len() != 40 {
		t.Fatalf("len = %d after resize, want 40 live", m.Len())
	}
}

// TestSetCompactionAllFlagged: when every member is flagged, one iteration
// releases everything and visits nothing.
func TestSetCompactionAllFlagged(t *testing.T) {
	s := index.NewSet()
	var mons []*fakeMon
	for i := 0; i < 8; i++ {
		m := &fakeMon{flagged: true}
		mons = append(mons, m)
		s.Add(m)
	}
	visited := 0
	s.ForEach(func(index.Monitor) { visited++ })
	if visited != 0 {
		t.Fatalf("visited %d flagged members", visited)
	}
	if s.Len() != 0 {
		t.Fatalf("len = %d after all-flagged compaction", s.Len())
	}
	for i, m := range mons {
		if !m.collected || m.refs != 0 {
			t.Fatalf("member %d not released", i)
		}
	}
}

// TestAppendLiveMatchesForEach: AppendLive is the closure-free ForEach —
// same compaction, same survivors, appended to the caller's buffer.
func TestAppendLiveMatchesForEach(t *testing.T) {
	mk := func() (*index.Set, []*fakeMon) {
		s := index.NewSet()
		var mons []*fakeMon
		for i := 0; i < 10; i++ {
			m := &fakeMon{flagged: i%3 == 0}
			mons = append(mons, m)
			s.Add(m)
		}
		return s, mons
	}
	s1, _ := mk()
	s2, _ := mk()
	var viaForEach []index.Monitor
	s1.ForEach(func(m index.Monitor) { viaForEach = append(viaForEach, m) })
	buf := make([]index.Monitor, 0, 4)
	buf = s2.AppendLive(buf)
	if len(buf) != len(viaForEach) {
		t.Fatalf("AppendLive returned %d members, ForEach visited %d", len(buf), len(viaForEach))
	}
	if s1.Len() != s2.Len() {
		t.Fatalf("post-compaction lengths diverge: %d vs %d", s1.Len(), s2.Len())
	}
	// Appending must extend, not overwrite.
	buf2 := s2.AppendLive(buf)
	if len(buf2) != 2*len(buf) {
		t.Fatalf("AppendLive did not append: %d, want %d", len(buf2), 2*len(buf))
	}
}
