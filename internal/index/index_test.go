package index_test

import (
	"fmt"
	"testing"

	"rvgo/internal/heap"
	"rvgo/internal/index"
	"rvgo/internal/param"
)

// fakeMon implements index.Monitor with observable counters.
type fakeMon struct {
	notified  int
	flagged   bool
	refs      int
	collected bool
}

func (m *fakeMon) NotifyParamDeath() { m.notified++ }
func (m *fakeMon) Collectable() bool { return m.flagged }
func (m *fakeMon) Retain()           { m.refs++ }
func (m *fakeMon) Release() {
	m.refs--
	if m.refs <= 0 {
		m.collected = true
	}
}

func TestMapPutGet(t *testing.T) {
	h := heap.New()
	m := index.NewMap()
	var keys []*heap.Object
	mkSet := func() *index.Set {
		s := index.NewSet()
		s.Add(&fakeMon{})
		return s
	}
	for i := 0; i < 100; i++ {
		k := h.Alloc(fmt.Sprintf("k%d", i))
		keys = append(keys, k)
		m.Put(k, mkSet())
	}
	if m.Len() != 100 {
		t.Fatalf("len = %d", m.Len())
	}
	for _, k := range keys {
		if _, ok := m.Get(k); !ok {
			t.Fatalf("missing key %s", k.Label())
		}
	}
	if _, ok := m.Get(h.Alloc("other")); ok {
		t.Fatal("phantom key")
	}
	// Replacement keeps a single entry.
	m.Put(keys[0], mkSet())
	if m.Len() != 100 {
		t.Fatalf("len after replace = %d", m.Len())
	}
}

// TestEmptyStructuresDropped: the paper drops mappings to empty data
// structures opportunistically (§5.1.1).
func TestEmptyStructuresDropped(t *testing.T) {
	h := heap.New()
	m := index.NewMap()
	k := h.Alloc("k")
	m.Put(k, index.NewSet()) // empty set
	m.ExpungeAll()
	if m.Len() != 0 {
		t.Fatalf("empty set mapping must be dropped, len = %d", m.Len())
	}
}

// TestMapExpungeNotifies reproduces Figure 7: when a key's object dies and
// the map is touched, the monitors below the mapping are notified and the
// broken mapping removed.
func TestMapExpungeNotifies(t *testing.T) {
	h := heap.New()
	m := index.NewMap()
	k := h.Alloc("c2")
	set := index.NewSet()
	mon1, mon3 := &fakeMon{}, &fakeMon{}
	set.Add(mon1)
	set.Add(mon3)
	m.Put(k, set)

	h.Free(k)
	m.ExpungeAll()
	if mon1.notified == 0 || mon3.notified == 0 {
		t.Fatal("monitors below a dead key must be notified")
	}
	if _, ok := m.Get(k); ok {
		t.Fatal("broken mapping must be removed")
	}
	if m.Len() != 0 {
		t.Fatalf("len = %d", m.Len())
	}
	// Detaching released the containment.
	if mon1.refs != 0 || !mon1.collected {
		t.Fatal("detach must release contained monitors")
	}
}

// TestSetCompaction reproduces Figure 8: iterating a set skips and removes
// collectable monitors in one pass.
func TestSetCompaction(t *testing.T) {
	s := index.NewSet()
	var mons []*fakeMon
	for i := 0; i < 10; i++ {
		m := &fakeMon{}
		mons = append(mons, m)
		s.Add(m)
	}
	for i, m := range mons {
		if i%2 == 0 {
			m.flagged = true
		}
	}
	var visited int
	s.ForEach(func(index.Monitor) { visited++ })
	if visited != 5 {
		t.Fatalf("visited %d, want 5", visited)
	}
	if s.Len() != 5 {
		t.Fatalf("len after compaction = %d", s.Len())
	}
	for i, m := range mons {
		if i%2 == 0 && (!m.collected || m.refs != 0) {
			t.Fatal("flagged members must be released")
		}
		if i%2 == 1 && m.refs != 1 {
			t.Fatal("live members must stay retained")
		}
	}
}

func TestMapGrowSweepsDeadKeys(t *testing.T) {
	h := heap.New()
	m := index.NewMap()
	dead := 0
	for i := 0; i < 200; i++ {
		k := h.Alloc("")
		set := index.NewSet()
		set.Add(&fakeMon{})
		m.Put(k, set)
		if i%3 == 0 {
			h.Free(k)
			dead++
		}
	}
	// Growth sweeps exhaustively; remaining entries are only live ones.
	m.ExpungeAll()
	if m.Len() != 200-dead {
		t.Fatalf("len = %d, want %d", m.Len(), 200-dead)
	}
}

func TestTreeLookup(t *testing.T) {
	h := heap.New()
	tree := index.NewTree(param.SetOf(0, 1))
	c1, i1, i2 := h.Alloc("c1"), h.Alloc("i1"), h.Alloc("i2")

	inst1 := param.Empty().Bind(0, c1).Bind(1, i1)
	inst2 := param.Empty().Bind(0, c1).Bind(1, i2)

	if tree.Lookup(inst1) != nil {
		t.Fatal("lookup before insert must be nil")
	}
	mon := &fakeMon{}
	s1 := tree.GetOrCreate(inst1)
	s1.Add(mon)
	s2 := tree.GetOrCreate(inst2)
	s2.Add(&fakeMon{})
	if s1 == s2 {
		t.Fatal("distinct tuples must get distinct leaves")
	}
	if tree.GetOrCreate(inst1) != s1 {
		t.Fatal("GetOrCreate must be stable")
	}
	if tree.Lookup(inst1) != s1 || tree.Lookup(inst2) != s2 {
		t.Fatal("lookup after insert")
	}
	h.Free(c1)
	tree.Root().ExpungeAll()
	if tree.Lookup(inst1) != nil {
		t.Fatal("dead first-level key must break the path")
	}
	if mon.notified == 0 {
		t.Fatal("monitor under the dead key must be notified")
	}
}

// TestLazyExpungeQuota: without touching the map, dead keys stay; each
// operation only examines a bounded number of buckets.
func TestLazyExpungeQuota(t *testing.T) {
	h := heap.New()
	m := index.NewMap()
	var keys []*heap.Object
	for i := 0; i < 64; i++ {
		k := h.Alloc("")
		keys = append(keys, k)
		m.Put(k, index.NewSet())
	}
	before := m.Len()
	for _, k := range keys {
		h.Free(k)
	}
	if m.Len() != before {
		t.Fatal("no operation yet: nothing expunged")
	}
	// A single Get expunges at most ExpungeQuota buckets.
	m.Get(keys[0])
	if before-m.Len() > 16 {
		t.Fatalf("one op expunged %d entries; laziness broken", before-m.Len())
	}
	m.ExpungeAll()
	if m.Len() != 0 {
		t.Fatalf("full sweep left %d entries", m.Len())
	}
}

func TestEachMonitorWalksSubtrees(t *testing.T) {
	h := heap.New()
	outer := index.NewMap()
	inner := index.NewMap()
	set := index.NewSet()
	set.Add(&fakeMon{})
	set.Add(&fakeMon{})
	inner.Put(h.Alloc("i"), set)
	outer.Put(h.Alloc("c"), inner)
	count := 0
	outer.EachMonitor(func(index.Monitor) { count++ })
	if count != 2 {
		t.Fatalf("EachMonitor visited %d", count)
	}
}
