package index_test

import (
	"fmt"
	"testing"

	"rvgo/internal/arena"
	"rvgo/internal/heap"
	"rvgo/internal/index"
	"rvgo/internal/param"
)

// fakeMon is one observable monitor record; fakeStore is the test Resolver
// over an arena of them, mirroring how the engine resolves handles.
type fakeMon struct {
	notified  int
	flagged   bool
	refs      int
	collected bool
}

type fakeStore struct {
	pool arena.Pool[fakeMon]
}

func (s *fakeStore) alloc() index.Handle {
	h, _ := s.pool.Alloc()
	return h
}

func (s *fakeStore) allocFlagged() index.Handle {
	h, m := s.pool.Alloc()
	m.flagged = true
	return h
}

func (s *fakeStore) at(h index.Handle) *fakeMon { return s.pool.At(h) }

func (s *fakeStore) NotifyParamDeath(h index.Handle) { s.pool.At(h).notified++ }
func (s *fakeStore) Collectable(h index.Handle) bool { return s.pool.At(h).flagged }
func (s *fakeStore) Retain(h index.Handle)           { s.pool.At(h).refs++ }
func (s *fakeStore) Release(h index.Handle) {
	m := s.pool.At(h)
	m.refs--
	if m.refs <= 0 {
		m.collected = true
	}
}

func TestMapPutGet(t *testing.T) {
	h := heap.New()
	r := &fakeStore{}
	m := index.NewMap()
	var keys []*heap.Object
	mkSet := func() *index.Set {
		s := index.NewSet()
		s.Add(r, r.alloc())
		return s
	}
	for i := 0; i < 100; i++ {
		k := h.Alloc(fmt.Sprintf("k%d", i))
		keys = append(keys, k)
		m.Put(r, k, mkSet())
	}
	if m.Len() != 100 {
		t.Fatalf("len = %d", m.Len())
	}
	for _, k := range keys {
		if _, ok := m.Get(r, k); !ok {
			t.Fatalf("missing key %s", k.Label())
		}
	}
	if _, ok := m.Get(r, h.Alloc("other")); ok {
		t.Fatal("phantom key")
	}
	// Replacement keeps a single entry.
	m.Put(r, keys[0], mkSet())
	if m.Len() != 100 {
		t.Fatalf("len after replace = %d", m.Len())
	}
}

// TestEmptyStructuresDropped: the paper drops mappings to empty data
// structures opportunistically (§5.1.1).
func TestEmptyStructuresDropped(t *testing.T) {
	h := heap.New()
	r := &fakeStore{}
	m := index.NewMap()
	k := h.Alloc("k")
	m.Put(r, k, index.NewSet()) // empty set
	m.ExpungeAll(r)
	if m.Len() != 0 {
		t.Fatalf("empty set mapping must be dropped, len = %d", m.Len())
	}
}

// TestMapExpungeNotifies reproduces Figure 7: when a key's object dies and
// the map is touched, the monitors below the mapping are notified and the
// broken mapping removed.
func TestMapExpungeNotifies(t *testing.T) {
	h := heap.New()
	r := &fakeStore{}
	m := index.NewMap()
	k := h.Alloc("c2")
	set := index.NewSet()
	mon1, mon3 := r.alloc(), r.alloc()
	set.Add(r, mon1)
	set.Add(r, mon3)
	m.Put(r, k, set)

	h.Free(k)
	m.ExpungeAll(r)
	if r.at(mon1).notified == 0 || r.at(mon3).notified == 0 {
		t.Fatal("monitors below a dead key must be notified")
	}
	if _, ok := m.Get(r, k); ok {
		t.Fatal("broken mapping must be removed")
	}
	if m.Len() != 0 {
		t.Fatalf("len = %d", m.Len())
	}
	// Detaching released the containment.
	if r.at(mon1).refs != 0 || !r.at(mon1).collected {
		t.Fatal("detach must release contained monitors")
	}
}

// TestSetCompaction reproduces Figure 8: iterating a set skips and removes
// collectable monitors in one pass.
func TestSetCompaction(t *testing.T) {
	r := &fakeStore{}
	s := index.NewSet()
	var mons []index.Handle
	for i := 0; i < 10; i++ {
		m := r.alloc()
		mons = append(mons, m)
		s.Add(r, m)
	}
	for i, m := range mons {
		if i%2 == 0 {
			r.at(m).flagged = true
		}
	}
	var visited int
	s.ForEach(r, func(index.Handle) { visited++ })
	if visited != 5 {
		t.Fatalf("visited %d, want 5", visited)
	}
	if s.Len() != 5 {
		t.Fatalf("len after compaction = %d", s.Len())
	}
	for i, m := range mons {
		if i%2 == 0 && (!r.at(m).collected || r.at(m).refs != 0) {
			t.Fatal("flagged members must be released")
		}
		if i%2 == 1 && r.at(m).refs != 1 {
			t.Fatal("live members must stay retained")
		}
	}
}

func TestMapGrowSweepsDeadKeys(t *testing.T) {
	h := heap.New()
	r := &fakeStore{}
	m := index.NewMap()
	dead := 0
	for i := 0; i < 200; i++ {
		k := h.Alloc("")
		set := index.NewSet()
		set.Add(r, r.alloc())
		m.Put(r, k, set)
		if i%3 == 0 {
			h.Free(k)
			dead++
		}
	}
	// Growth sweeps exhaustively; remaining entries are only live ones.
	m.ExpungeAll(r)
	if m.Len() != 200-dead {
		t.Fatalf("len = %d, want %d", m.Len(), 200-dead)
	}
}

func TestTreeLookup(t *testing.T) {
	h := heap.New()
	r := &fakeStore{}
	tree := index.NewTree(param.SetOf(0, 1))
	c1, i1, i2 := h.Alloc("c1"), h.Alloc("i1"), h.Alloc("i2")

	v1 := param.Empty().Bind(0, c1).Bind(1, i1)
	v2 := param.Empty().Bind(0, c1).Bind(1, i2)
	inst1, inst2 := &v1, &v2

	if tree.Lookup(r, inst1) != nil {
		t.Fatal("lookup before insert must be nil")
	}
	mon := r.alloc()
	s1 := tree.GetOrCreate(r, inst1)
	s1.Add(r, mon)
	s2 := tree.GetOrCreate(r, inst2)
	s2.Add(r, r.alloc())
	if s1 == s2 {
		t.Fatal("distinct tuples must get distinct leaves")
	}
	if tree.GetOrCreate(r, inst1) != s1 {
		t.Fatal("GetOrCreate must be stable")
	}
	if tree.Lookup(r, inst1) != s1 || tree.Lookup(r, inst2) != s2 {
		t.Fatal("lookup after insert")
	}
	h.Free(c1)
	tree.Root().ExpungeAll(r)
	if tree.Lookup(r, inst1) != nil {
		t.Fatal("dead first-level key must break the path")
	}
	if r.at(mon).notified == 0 {
		t.Fatal("monitor under the dead key must be notified")
	}
}

// TestLazyExpungeQuota: without touching the map, dead keys stay; each
// operation only examines a bounded number of buckets.
func TestLazyExpungeQuota(t *testing.T) {
	h := heap.New()
	r := &fakeStore{}
	m := index.NewMap()
	var keys []*heap.Object
	for i := 0; i < 64; i++ {
		k := h.Alloc("")
		keys = append(keys, k)
		m.Put(r, k, index.NewSet())
	}
	before := m.Len()
	for _, k := range keys {
		h.Free(k)
	}
	if m.Len() != before {
		t.Fatal("no operation yet: nothing expunged")
	}
	// A single Get expunges at most ExpungeQuota buckets.
	m.Get(r, keys[0])
	if before-m.Len() > 16 {
		t.Fatalf("one op expunged %d entries; laziness broken", before-m.Len())
	}
	m.ExpungeAll(r)
	if m.Len() != 0 {
		t.Fatalf("full sweep left %d entries", m.Len())
	}
}

func TestEachHandleWalksSubtrees(t *testing.T) {
	h := heap.New()
	r := &fakeStore{}
	outer := index.NewMap()
	inner := index.NewMap()
	set := index.NewSet()
	set.Add(r, r.alloc())
	set.Add(r, r.alloc())
	inner.Put(r, h.Alloc("i"), set)
	outer.Put(r, h.Alloc("c"), inner)
	count := 0
	outer.EachHandle(func(index.Handle) { count++ })
	if count != 2 {
		t.Fatalf("EachHandle visited %d", count)
	}
}

// TestExpungeQuotaFinalBucket: a dead key whose bucket is the last one the
// round-robin cursor reaches is still discovered — quota exhaustion per
// operation postpones, never loses, the notification. The amortized stride
// means an operation may charge no scan at all; the test bounds the number
// of operations needed by the table size times the stride.
func TestExpungeQuotaFinalBucket(t *testing.T) {
	h := heap.New()
	r := &fakeStore{}
	m := index.NewMap()
	var keys []*heap.Object
	for i := 0; i < 64; i++ { // spread over all buckets, no resize after
		k := h.Alloc("")
		keys = append(keys, k)
		set := index.NewSet()
		set.Add(r, r.alloc())
		m.Put(r, k, set)
	}
	probe := h.Alloc("probe")
	mon := r.alloc()
	set := index.NewSet()
	set.Add(r, mon)
	m.Put(r, probe, set)
	h.Free(probe)

	// Worst case: the cursor has just passed the probe's bucket, so a full
	// round-robin revolution is needed. Each operation scans at most
	// ExpungeQuota buckets and only every strideth operation scans at all;
	// 4*64 live-key Gets overshoot any table size this test can have.
	alive := keys[0]
	for i := 0; i < 4*64 && r.at(mon).notified == 0; i++ {
		m.Get(r, alive)
	}
	if r.at(mon).notified == 0 {
		t.Fatal("dead key in the cursor's last bucket never expunged")
	}
	if _, ok := m.Get(r, probe); ok {
		t.Fatal("dead mapping still reachable after expunge")
	}
	if !r.at(mon).collected {
		t.Fatal("monitor under the dead key not released")
	}
}

// TestResizeFullSweep: growing the table expunges exhaustively — every dead
// key is discovered by the resize itself, with no expunge quota involved.
func TestResizeFullSweep(t *testing.T) {
	h := heap.New()
	r := &fakeStore{}
	m := index.NewMap()
	var dead []index.Handle
	// NewMap starts with 8 buckets and grows at 32 entries; insert the dead
	// cohort first, kill it, then push past the resize threshold.
	for i := 0; i < 16; i++ {
		k := h.Alloc("")
		mon := r.alloc()
		set := index.NewSet()
		set.Add(r, mon)
		m.Put(r, k, set)
		dead = append(dead, mon)
		h.Free(k)
	}
	for i := 0; i < 40; i++ { // crosses the 32-entry growth threshold
		set := index.NewSet()
		set.Add(r, r.alloc())
		m.Put(r, h.Alloc(""), set)
	}
	for i, mon := range dead {
		if r.at(mon).notified == 0 {
			t.Fatalf("dead key %d not notified by the resize sweep", i)
		}
		if !r.at(mon).collected {
			t.Fatalf("dead key %d's monitor not released by the resize sweep", i)
		}
	}
	if m.Len() != 40 {
		t.Fatalf("len = %d after resize, want 40 live", m.Len())
	}
}

// TestSetCompactionAllFlagged: when every member is flagged, one iteration
// releases everything and visits nothing.
func TestSetCompactionAllFlagged(t *testing.T) {
	r := &fakeStore{}
	s := index.NewSet()
	var mons []index.Handle
	for i := 0; i < 8; i++ {
		m := r.allocFlagged()
		mons = append(mons, m)
		s.Add(r, m)
	}
	visited := 0
	s.ForEach(r, func(index.Handle) { visited++ })
	if visited != 0 {
		t.Fatalf("visited %d flagged members", visited)
	}
	if s.Len() != 0 {
		t.Fatalf("len = %d after all-flagged compaction", s.Len())
	}
	for i, m := range mons {
		if !r.at(m).collected || r.at(m).refs != 0 {
			t.Fatalf("member %d not released", i)
		}
	}
}

// TestAppendLiveMatchesForEach: AppendLive is the closure-free ForEach —
// same compaction, same survivors, appended to the caller's buffer.
func TestAppendLiveMatchesForEach(t *testing.T) {
	r := &fakeStore{}
	mk := func() *index.Set {
		s := index.NewSet()
		for i := 0; i < 10; i++ {
			var m index.Handle
			if i%3 == 0 {
				m = r.allocFlagged()
			} else {
				m = r.alloc()
			}
			s.Add(r, m)
		}
		return s
	}
	s1 := mk()
	s2 := mk()
	var viaForEach []index.Handle
	s1.ForEach(r, func(h index.Handle) { viaForEach = append(viaForEach, h) })
	buf := make([]index.Handle, 0, 4)
	buf = s2.AppendLive(r, buf)
	if len(buf) != len(viaForEach) {
		t.Fatalf("AppendLive returned %d members, ForEach visited %d", len(buf), len(viaForEach))
	}
	if s1.Len() != s2.Len() {
		t.Fatalf("post-compaction lengths diverge: %d vs %d", s1.Len(), s2.Len())
	}
	// Appending must extend, not overwrite.
	buf2 := s2.AppendLive(r, buf)
	if len(buf2) != 2*len(buf) {
		t.Fatalf("AppendLive did not append: %d, want %d", len(buf2), 2*len(buf))
	}
}
