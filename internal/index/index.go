// Package index implements the RV system's specialized indexing trees
// (paper §4.1–§4.2, Figures 6–8): weak-keyed hash maps (Map, the paper's
// RVMap) whose levels index one parameter each, with leaf sets of monitor
// instances (Set, the paper's RVSet).
//
// The data structures embody the paper's lazy collection discipline:
//
//   - Map operations expunge a bounded number of buckets per call, looking
//     for keys whose parameter object died; monitors below a dead key are
//     notified (they then decide via coenable ALIVENESS whether to flag
//     themselves) and the broken mapping is removed (Figure 7).
//   - Set iteration skips and compacts away monitors flagged for removal in
//     a single pass (Figure 8).
//   - A monitor instance is "collected" once every container has dropped it
//     (container refcounting plays the role of JVM reachability).
//
// Monitors are referenced by generation-tagged arena handles (see package
// arena), not pointers: a leaf Set is a slice of uint64 handles whose
// backing array contains no pointers, so the host garbage collector never
// traverses the monitor store through the trees — at millions of live
// monitors the trees contribute O(distinct parameter objects) to the mark
// phase, not O(monitors). Monitor behavior (death notification, the
// collectable check, container refcounting) is reached through a Resolver,
// which the engine implements over its monitor arena; every container
// operation takes the resolver explicitly so the containers themselves
// stay pointer-free.
//
// The lookup path is allocation-free and monomorphic: entries hold their
// child Map and leaf Set as concrete typed fields (exactly one non-nil), so
// a tree walk is pointer chasing with no interface dispatch, and iteration
// over a leaf goes through caller-owned scratch buffers (AppendLive) rather
// than closures. The expunge quota is amortized across lookups: only every
// expungeStride-th map operation scans buckets for dead keys, bounding
// pruning overhead well below one bucket scan per event while keeping
// reclamation latency proportional to operation count (the paper's "looks
// through a subset of its entries", spread thinner).
package index

import (
	"rvgo/internal/arena"
	"rvgo/internal/heap"
	"rvgo/internal/param"
)

// Handle identifies a monitor instance in the owning engine's arena.
type Handle = arena.Handle

// Resolver is the view of the monitor store the indexing trees need: it
// maps a Handle to monitor behavior. The engine implements it over its
// slab arena. Containers never hold monitor pointers — only handles — so
// every operation that must touch a monitor takes the resolver explicitly.
type Resolver interface {
	// NotifyParamDeath tells the monitor that a parameter object below its
	// mapping died; the monitor re-evaluates its ALIVENESS formula and may
	// flag itself.
	NotifyParamDeath(h Handle)
	// Collectable reports whether the monitor has been flagged as
	// unnecessary (or terminated) and should be dropped from containers.
	Collectable(h Handle) bool
	// Retain/Release maintain the container refcount; Release must record
	// "collected" when the count reaches zero.
	Retain(h Handle)
	Release(h Handle)
}

// Value is a node in an indexing tree: either a *Map (next level) or a
// *Set (leaf). It survives as the Put/Get currency; the internal tree walk
// uses the typed entry fields directly.
type Value interface {
	// EachHandle visits every monitor handle in the subtree.
	EachHandle(f func(Handle))
	// detach releases all monitors contained in the subtree; called when
	// the subtree's mapping is removed from its parent.
	detach(r Resolver)
	// isEmpty reports an empty substructure (droppable, §5.1.1).
	isEmpty() bool
}

// ExpungeQuota is the number of buckets examined for dead keys per
// expunging map operation; a full sweep happens on resize.
const ExpungeQuota = 2

// expungeStride is the number of map operations between expunge scans: the
// quota is spent once per stride, not once per operation.
const expungeStride = 4

// entry is one mapping. Exactly one of child/leaf is non-nil; keeping them
// as concrete types (instead of a Value interface) makes the lookup walk
// monomorphic — no interface method dispatch, no type assertions on the
// per-event path.
type entry struct {
	key   heap.Ref
	id    uint64
	child *Map
	leaf  *Set
}

func (e *entry) value() Value {
	if e.child != nil {
		return e.child
	}
	return e.leaf
}

func (e *entry) isEmpty() bool {
	if e.child != nil {
		return e.child.isEmpty()
	}
	return e.leaf.isEmpty()
}

func (e *entry) notifyAndDetach(r Resolver) {
	v := e.value()
	v.EachHandle(func(h Handle) { r.NotifyParamDeath(h) })
	v.detach(r)
}

// Map is a weak-keyed hash map from parameter objects to Values (RVMap).
// The zero value is not usable; use NewMap.
type Map struct {
	buckets [][]entry
	count   int
	cursor  int // round-robin expunge position
	ops     int // operations since the last expunge scan
	quota   int
}

// NewMap returns an empty map.
func NewMap() *Map {
	return &Map{buckets: make([][]entry, 8), quota: ExpungeQuota}
}

// Len returns the number of live entries (dead-but-unexpunged keys count
// until they are discovered).
func (m *Map) Len() int { return m.count }

func (m *Map) isEmpty() bool { return m.count == 0 }

func (m *Map) slot(id uint64) int {
	// Fibonacci hashing spreads sequential IDs.
	return int((id * 0x9E3779B97F4A7C15) >> 32 & uint64(len(m.buckets)-1))
}

// maybeExpunge charges one operation against the amortized expunge budget,
// scanning quota buckets every expungeStride-th call.
func (m *Map) maybeExpunge(r Resolver) {
	m.ops++
	if m.ops >= expungeStride {
		m.ops = 0
		m.expunge(r, m.quota)
	}
}

// find returns the entry for the key, or nil. It does not expunge; the
// callers that stand in for map operations charge the budget themselves.
func (m *Map) find(id uint64) *entry {
	b := m.buckets[m.slot(id)]
	for i := range b {
		if b[i].id == id {
			return &b[i]
		}
	}
	return nil
}

// Get looks up the value for the key, expunging some dead entries as an
// amortized side effect (lazy notification, Figure 7A).
func (m *Map) Get(r Resolver, k heap.Ref) (Value, bool) {
	m.maybeExpunge(r)
	if e := m.find(k.ID()); e != nil {
		return e.value(), true
	}
	return nil, false
}

// Put inserts or replaces the value for the key.
func (m *Map) Put(r Resolver, k heap.Ref, v Value) {
	m.maybeExpunge(r)
	if m.count >= len(m.buckets)*4 {
		m.grow(r)
	}
	child, _ := v.(*Map)
	leaf, _ := v.(*Set)
	if e := m.find(k.ID()); e != nil {
		e.child, e.leaf = child, leaf
		return
	}
	b := m.slot(k.ID())
	m.buckets[b] = append(m.buckets[b], entry{key: k, id: k.ID(), child: child, leaf: leaf})
	m.count++
}

// putMap and putLeaf are the monomorphic Put fast paths used by the tree
// builder; they skip the interface split and do not charge the expunge
// budget (GetOrCreate already charged for the operation).
func (m *Map) putMap(r Resolver, k heap.Ref, child *Map) {
	if m.count >= len(m.buckets)*4 {
		m.grow(r)
	}
	b := m.slot(k.ID())
	m.buckets[b] = append(m.buckets[b], entry{key: k, id: k.ID(), child: child})
	m.count++
}

func (m *Map) putLeaf(r Resolver, k heap.Ref, leaf *Set) {
	if m.count >= len(m.buckets)*4 {
		m.grow(r)
	}
	b := m.slot(k.ID())
	m.buckets[b] = append(m.buckets[b], entry{key: k, id: k.ID(), leaf: leaf})
	m.count++
}

// grow doubles the table, sweeping every entry for dead keys on the way —
// the paper expunges exhaustively "when the hash table underlying the map
// needs to be expanded".
func (m *Map) grow(r Resolver) {
	old := m.buckets
	m.buckets = make([][]entry, len(old)*2)
	m.count = 0
	m.cursor = 0
	for _, bucket := range old {
		for i := range bucket {
			e := &bucket[i]
			if !e.key.Alive() {
				e.notifyAndDetach(r)
				continue
			}
			b := m.slot(e.id)
			m.buckets[b] = append(m.buckets[b], *e)
			m.count++
		}
	}
}

// expunge scans up to n buckets (round-robin) for entries whose key died,
// notifying the monitors below and removing the mapping.
func (m *Map) expunge(r Resolver, n int) {
	for i := 0; i < n; i++ {
		b := m.cursor
		m.cursor = (m.cursor + 1) % len(m.buckets)
		bucket := m.buckets[b]
		w := 0
		for j := range bucket {
			e := &bucket[j]
			if e.key.Alive() {
				// Opportunistically drop empty substructures, as the paper
				// does when checking values of live mappings (§5.1.1).
				if e.isEmpty() {
					m.count--
					continue
				}
				bucket[w] = *e
				w++
				continue
			}
			e.notifyAndDetach(r)
			m.count--
		}
		if w != len(bucket) {
			for j := w; j < len(bucket); j++ {
				bucket[j] = entry{}
			}
			m.buckets[b] = bucket[:w]
		}
	}
}

// ExpungeAll sweeps the whole table once (used by tests and by the engine
// when a property session ends).
func (m *Map) ExpungeAll(r Resolver) { m.expunge(r, len(m.buckets)) }

// EachEntry visits live entries (no expunge side effects).
func (m *Map) EachEntry(f func(k heap.Ref, v Value)) {
	for _, bucket := range m.buckets {
		for i := range bucket {
			if bucket[i].key.Alive() {
				f(bucket[i].key, bucket[i].value())
			}
		}
	}
}

// FlushAll expunges the whole subtree exhaustively and compacts every leaf
// set: the end-of-session settling pass (used by the engine's Flush).
func (m *Map) FlushAll(r Resolver) {
	m.ExpungeAll(r)
	for _, bucket := range m.buckets {
		for i := range bucket {
			e := &bucket[i]
			if !e.key.Alive() {
				continue
			}
			if e.child != nil {
				e.child.FlushAll(r)
			} else {
				e.leaf.Compact(r)
			}
		}
	}
	m.ExpungeAll(r)
}

// EachHandle implements Value.
func (m *Map) EachHandle(f func(Handle)) {
	for _, bucket := range m.buckets {
		for i := range bucket {
			bucket[i].value().EachHandle(f)
		}
	}
}

func (m *Map) detach(r Resolver) {
	for _, bucket := range m.buckets {
		for i := range bucket {
			bucket[i].value().detach(r)
		}
	}
	m.buckets = make([][]entry, 1)
	m.count = 0
	m.cursor = 0
}

// Set is a compacting slice of monitor handles (RVSet). Its backing array
// is pointer-free: the collector never scans a leaf's members.
type Set struct {
	items []Handle
}

// NewSet returns an empty set.
func NewSet() *Set { return &Set{} }

// Len returns the current number of members (flagged-but-unremoved members
// count until the next compaction).
func (s *Set) Len() int { return len(s.items) }

func (s *Set) isEmpty() bool { return len(s.items) == 0 }

// Add appends a monitor and retains it.
func (s *Set) Add(r Resolver, h Handle) {
	r.Retain(h)
	s.items = append(s.items, h)
}

// ForEach visits live members, compacting away collectable ones in the same
// pass (Figure 8). Visited monitors may become collectable during the pass
// (e.g. by reaching a final verdict); they are still compacted next time.
func (s *Set) ForEach(r Resolver, f func(Handle)) {
	w := 0
	for _, h := range s.items {
		if r.Collectable(h) {
			r.Release(h)
			continue
		}
		s.items[w] = h
		w++
		f(h)
	}
	s.items = s.items[:w]
}

// AppendLive compacts the set exactly like ForEach — collectable members
// are released and removed — and appends the surviving members to buf,
// returning the extended slice. It is the closure-free iteration used on
// the dispatch hot path: the engine reuses one scratch buffer across
// events, so visiting a leaf allocates nothing once the buffer has grown to
// the high-water mark. The returned members were all live at snapshot time;
// a member flagged while the caller walks the buffer must be re-checked by
// the caller (exactly as ForEach re-checks at visit time).
func (s *Set) AppendLive(r Resolver, buf []Handle) []Handle {
	w := 0
	for _, h := range s.items {
		if r.Collectable(h) {
			r.Release(h)
			continue
		}
		s.items[w] = h
		w++
		buf = append(buf, h)
	}
	s.items = s.items[:w]
	return buf
}

// Compact removes collectable members without visiting.
func (s *Set) Compact(r Resolver) { s.ForEach(r, func(Handle) {}) }

// CompactWith removes collectable members and members for which drop
// returns true (used by the engine's weak domain registries: a member
// whose bound parameter object died would be unreachable through any weak
// tree, so registries release it too).
func (s *Set) CompactWith(r Resolver, drop func(Handle) bool) {
	w := 0
	for _, h := range s.items {
		if r.Collectable(h) || drop(h) {
			r.Release(h)
			continue
		}
		s.items[w] = h
		w++
	}
	s.items = s.items[:w]
}

// EachHandle implements Value.
func (s *Set) EachHandle(f func(Handle)) {
	for _, h := range s.items {
		f(h)
	}
}

func (s *Set) detach(r Resolver) {
	for _, h := range s.items {
		r.Release(h)
	}
	s.items = nil
}

// Tree is one indexing tree ⟨S⟩ for a parameter subset S: a chain of Maps,
// one level per parameter in params (ascending index order), with a Set at
// each leaf holding every monitor whose instance extends the key tuple.
type Tree struct {
	params []int
	root   *Map
}

// NewTree creates a tree over the given parameter indices.
func NewTree(params param.Set) *Tree {
	return &Tree{params: params.Members(), root: NewMap()}
}

// Params returns the tree's parameter indices.
func (t *Tree) Params() []int { return t.params }

// Lookup returns the leaf set for θ restricted to the tree's parameters, or
// nil if no such mapping exists. θ must bind every tree parameter. The
// pointer parameter keeps the per-event walk copy-free (instances are
// interned by the engine).
func (t *Tree) Lookup(r Resolver, inst *param.Instance) *Set {
	m := t.root
	last := len(t.params) - 1
	for i, p := range t.params {
		m.maybeExpunge(r)
		e := m.find(inst.Value(p).ID())
		if e == nil {
			return nil
		}
		if i == last {
			return e.leaf
		}
		m = e.child
	}
	return nil
}

// GetOrCreate returns the leaf set for θ, creating intermediate levels as
// needed.
func (t *Tree) GetOrCreate(r Resolver, inst *param.Instance) *Set {
	if len(t.params) == 0 {
		panic("index: tree with no parameters")
	}
	m := t.root
	last := len(t.params) - 1
	for i, p := range t.params {
		k := inst.Value(p)
		m.maybeExpunge(r)
		e := m.find(k.ID())
		if e == nil {
			if i == last {
				leaf := NewSet()
				m.putLeaf(r, k, leaf)
				return leaf
			}
			next := NewMap()
			m.putMap(r, k, next)
			m = next
			continue
		}
		if i == last {
			return e.leaf
		}
		m = e.child
	}
	panic("unreachable")
}

// Root exposes the root map (tests, diagnostics).
func (t *Tree) Root() *Map { return t.root }
