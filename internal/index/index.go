// Package index implements the RV system's specialized indexing trees
// (paper §4.1–§4.2, Figures 6–8): weak-keyed hash maps (Map, the paper's
// RVMap) whose levels index one parameter each, with leaf sets of monitor
// instances (Set, the paper's RVSet).
//
// The data structures embody the paper's lazy collection discipline:
//
//   - Map operations expunge a bounded number of buckets per call, looking
//     for keys whose parameter object died; monitors below a dead key are
//     notified (they then decide via coenable ALIVENESS whether to flag
//     themselves) and the broken mapping is removed (Figure 7).
//   - Set iteration skips and compacts away monitors flagged for removal in
//     a single pass (Figure 8).
//   - A monitor instance is "collected" once every container has dropped it
//     (container refcounting plays the role of JVM reachability).
package index

import (
	"rvgo/internal/heap"
	"rvgo/internal/param"
)

// Monitor is the view of a monitor instance the indexing trees need. It is
// implemented by the engine's monitor type.
type Monitor interface {
	// NotifyParamDeath tells the monitor that a parameter object below its
	// mapping died; the monitor re-evaluates its ALIVENESS formula and may
	// flag itself.
	NotifyParamDeath()
	// Collectable reports whether the monitor has been flagged as
	// unnecessary (or terminated) and should be dropped from containers.
	Collectable() bool
	// Retain/Release maintain the container refcount; Release must record
	// "collected" when the count reaches zero.
	Retain()
	Release()
}

// Value is a node in an indexing tree: either a *Map (next level) or a
// *Set (leaf).
type Value interface {
	// EachMonitor visits every monitor in the subtree.
	EachMonitor(f func(Monitor))
	// detach releases all monitors contained in the subtree; called when
	// the subtree's mapping is removed from its parent.
	detach()
}

// ExpungeQuota is the number of buckets examined for dead keys per map
// operation; a full sweep happens on resize. The quota keeps pruning
// overhead bounded per event (the paper's "looks through a subset of its
// entries").
const ExpungeQuota = 2

type entry struct {
	key heap.Ref
	id  uint64
	val Value
}

// Map is a weak-keyed hash map from parameter objects to Values (RVMap).
// The zero value is not usable; use NewMap.
type Map struct {
	buckets [][]entry
	count   int
	cursor  int // round-robin expunge position
	quota   int
}

// NewMap returns an empty map.
func NewMap() *Map {
	return &Map{buckets: make([][]entry, 8), quota: ExpungeQuota}
}

// Len returns the number of live entries (dead-but-unexpunged keys count
// until they are discovered).
func (m *Map) Len() int { return m.count }

func (m *Map) slot(id uint64) int {
	// Fibonacci hashing spreads sequential IDs.
	return int((id * 0x9E3779B97F4A7C15) >> 32 & uint64(len(m.buckets)-1))
}

// Get looks up the value for the key, expunging some dead entries as a side
// effect (lazy notification, Figure 7A).
func (m *Map) Get(k heap.Ref) (Value, bool) {
	m.expunge(m.quota)
	b := m.slot(k.ID())
	for _, e := range m.buckets[b] {
		if e.id == k.ID() {
			return e.val, true
		}
	}
	return nil, false
}

// Put inserts or replaces the value for the key.
func (m *Map) Put(k heap.Ref, v Value) {
	m.expunge(m.quota)
	if m.count >= len(m.buckets)*4 {
		m.grow()
	}
	b := m.slot(k.ID())
	for i, e := range m.buckets[b] {
		if e.id == k.ID() {
			m.buckets[b][i].val = v
			return
		}
	}
	m.buckets[b] = append(m.buckets[b], entry{key: k, id: k.ID(), val: v})
	m.count++
}

// grow doubles the table, sweeping every entry for dead keys on the way —
// the paper expunges exhaustively "when the hash table underlying the map
// needs to be expanded".
func (m *Map) grow() {
	old := m.buckets
	m.buckets = make([][]entry, len(old)*2)
	m.count = 0
	m.cursor = 0
	for _, bucket := range old {
		for _, e := range bucket {
			if !e.key.Alive() {
				notifyAndDetach(e.val)
				continue
			}
			b := m.slot(e.id)
			m.buckets[b] = append(m.buckets[b], e)
			m.count++
		}
	}
}

// expunge scans up to n buckets (round-robin) for entries whose key died,
// notifying the monitors below and removing the mapping.
func (m *Map) expunge(n int) {
	for i := 0; i < n; i++ {
		b := m.cursor
		m.cursor = (m.cursor + 1) % len(m.buckets)
		bucket := m.buckets[b]
		w := 0
		for _, e := range bucket {
			if e.key.Alive() {
				// Opportunistically drop empty substructures, as the paper
				// does when checking values of live mappings (§5.1.1).
				if isEmpty(e.val) {
					m.count--
					continue
				}
				bucket[w] = e
				w++
				continue
			}
			notifyAndDetach(e.val)
			m.count--
		}
		if w != len(bucket) {
			for j := w; j < len(bucket); j++ {
				bucket[j] = entry{}
			}
			m.buckets[b] = bucket[:w]
		}
	}
}

// ExpungeAll sweeps the whole table once (used by tests and by the engine
// when a property session ends).
func (m *Map) ExpungeAll() { m.expunge(len(m.buckets)) }

// EachEntry visits live entries (no expunge side effects).
func (m *Map) EachEntry(f func(k heap.Ref, v Value)) {
	for _, bucket := range m.buckets {
		for _, e := range bucket {
			if e.key.Alive() {
				f(e.key, e.val)
			}
		}
	}
}

// EachMonitor implements Value.
func (m *Map) EachMonitor(f func(Monitor)) {
	for _, bucket := range m.buckets {
		for _, e := range bucket {
			e.val.EachMonitor(f)
		}
	}
}

func (m *Map) detach() {
	for _, bucket := range m.buckets {
		for _, e := range bucket {
			e.val.detach()
		}
	}
	m.buckets = make([][]entry, 1)
	m.count = 0
	m.cursor = 0
}

func notifyAndDetach(v Value) {
	v.EachMonitor(func(mon Monitor) { mon.NotifyParamDeath() })
	v.detach()
}

func isEmpty(v Value) bool {
	switch n := v.(type) {
	case *Set:
		return n.Len() == 0
	case *Map:
		return n.Len() == 0
	}
	return false
}

// Set is a compacting slice of monitor instances (RVSet).
type Set struct {
	items []Monitor
}

// NewSet returns an empty set.
func NewSet() *Set { return &Set{} }

// Len returns the current number of members (flagged-but-unremoved members
// count until the next compaction).
func (s *Set) Len() int { return len(s.items) }

// Add appends a monitor and retains it.
func (s *Set) Add(m Monitor) {
	m.Retain()
	s.items = append(s.items, m)
}

// ForEach visits live members, compacting away collectable ones in the same
// pass (Figure 8). Visited monitors may become collectable during the pass
// (e.g. by reaching a final verdict); they are still compacted next time.
func (s *Set) ForEach(f func(Monitor)) {
	w := 0
	for _, m := range s.items {
		if m.Collectable() {
			m.Release()
			continue
		}
		s.items[w] = m
		w++
		f(m)
	}
	for j := w; j < len(s.items); j++ {
		s.items[j] = nil
	}
	s.items = s.items[:w]
}

// Compact removes collectable members without visiting.
func (s *Set) Compact() { s.ForEach(func(Monitor) {}) }

// CompactWith removes collectable members and members for which drop
// returns true (used by the engine's weak domain registries: a member
// whose bound parameter object died would be unreachable through any weak
// tree, so registries release it too).
func (s *Set) CompactWith(drop func(Monitor) bool) {
	w := 0
	for _, m := range s.items {
		if m.Collectable() || drop(m) {
			m.Release()
			continue
		}
		s.items[w] = m
		w++
	}
	for j := w; j < len(s.items); j++ {
		s.items[j] = nil
	}
	s.items = s.items[:w]
}

// EachMonitor implements Value.
func (s *Set) EachMonitor(f func(Monitor)) {
	for _, m := range s.items {
		f(m)
	}
}

func (s *Set) detach() {
	for _, m := range s.items {
		m.Release()
	}
	s.items = nil
}

// Tree is one indexing tree ⟨S⟩ for a parameter subset S: a chain of Maps,
// one level per parameter in params (ascending index order), with a Set at
// each leaf holding every monitor whose instance extends the key tuple.
type Tree struct {
	params []int
	root   *Map
}

// NewTree creates a tree over the given parameter indices.
func NewTree(params param.Set) *Tree {
	return &Tree{params: params.Members(), root: NewMap()}
}

// Params returns the tree's parameter indices.
func (t *Tree) Params() []int { return t.params }

// Lookup returns the leaf set for θ restricted to the tree's parameters, or
// nil if no such mapping exists. θ must bind every tree parameter.
func (t *Tree) Lookup(inst param.Instance) *Set {
	node := Value(t.root)
	for _, p := range t.params {
		m, ok := node.(*Map)
		if !ok {
			return nil
		}
		v, ok := m.Get(inst.Value(p))
		if !ok {
			return nil
		}
		node = v
	}
	leaf, _ := node.(*Set)
	return leaf
}

// GetOrCreate returns the leaf set for θ, creating intermediate levels as
// needed.
func (t *Tree) GetOrCreate(inst param.Instance) *Set {
	if len(t.params) == 0 {
		panic("index: tree with no parameters")
	}
	node := t.root
	for i, p := range t.params {
		k := inst.Value(p)
		last := i == len(t.params)-1
		v, ok := node.Get(k)
		if !ok {
			if last {
				leaf := NewSet()
				node.Put(k, leaf)
				return leaf
			}
			next := NewMap()
			node.Put(k, next)
			node = next
			continue
		}
		if last {
			return v.(*Set)
		}
		node = v.(*Map)
	}
	panic("unreachable")
}

// Root exposes the root map (tests, diagnostics).
func (t *Tree) Root() *Map { return t.root }
