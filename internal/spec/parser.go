package spec

import (
	"fmt"
)

// Property is a parsed (not yet compiled) specification.
type Property struct {
	Name   string
	Params []Param
	Events []EventDecl
	Logics []LogicBlock
}

// Param is a declared parameter, e.g. "Iterator i" (the type is optional
// and informational).
type Param struct {
	Type string
	Name string
}

// EventDecl declares a parametric event and the parameters it binds.
type EventDecl struct {
	Name   string
	Params []string
	Line   int
}

// LogicBlock is one property body in a given formalism, with its handlers.
type LogicBlock struct {
	Kind     string // "fsm", "ere", "ltl", "cfg"
	Body     string // raw pattern text (ere/ltl/cfg)
	FSM      []FSMState
	Handlers []Handler
}

// FSMState is one state of an fsm block.
type FSMState struct {
	Name  string
	Trans []FSMTrans
}

// FSMTrans is one transition "event -> state".
type FSMTrans struct {
	Event string
	To    string
}

// Handler attaches code to a verdict category, e.g. "@match { ... }".
type Handler struct {
	Category string
	Body     string
}

// Parse parses a .rv property source.
func Parse(src string) (*Property, error) {
	lx := newLexer(src)
	p := &Property{}

	tok, err := lx.next()
	if err != nil {
		return nil, err
	}
	if tok.kind != tokIdent {
		return nil, lx.errf("expected property name, got %q", tok.text)
	}
	p.Name = tok.text
	if err := expect(lx, "("); err != nil {
		return nil, err
	}
	if err := p.parseParams(lx); err != nil {
		return nil, err
	}
	if err := expect(lx, "{"); err != nil {
		return nil, err
	}

	for {
		tok, err := lx.next()
		if err != nil {
			return nil, err
		}
		switch {
		case tok.kind == tokPunct && tok.text == "}":
			if err := p.check(); err != nil {
				return nil, err
			}
			return p, nil
		case tok.kind == tokEOF:
			return nil, lx.errf("unexpected end of property %q", p.Name)
		case tok.kind == tokIdent && tok.text == "event":
			if err := p.parseEvent(lx); err != nil {
				return nil, err
			}
		case tok.kind == tokIdent && isLogicKeyword(tok.text):
			if err := expect(lx, ":"); err != nil {
				return nil, err
			}
			lb := LogicBlock{Kind: tok.text}
			if tok.text == "fsm" {
				states, err := parseFSMBody(lx)
				if err != nil {
					return nil, err
				}
				lb.FSM = states
			} else {
				lb.Body = lx.restOfLogicBlock()
				if lb.Body == "" {
					return nil, lx.errf("empty %s block", tok.text)
				}
			}
			p.Logics = append(p.Logics, lb)
		case tok.kind == tokPunct && tok.text == "@":
			cat, err := lx.next()
			if err != nil {
				return nil, err
			}
			if cat.kind != tokIdent {
				return nil, lx.errf("expected handler category after '@'")
			}
			body, err := lx.braceBlock()
			if err != nil {
				return nil, err
			}
			if len(p.Logics) == 0 {
				return nil, lx.errf("handler @%s before any logic block", cat.text)
			}
			last := &p.Logics[len(p.Logics)-1]
			last.Handlers = append(last.Handlers, Handler{Category: cat.text, Body: body})
		default:
			return nil, lx.errf("unexpected %q in property body", tok.text)
		}
	}
}

func (p *Property) parseParams(lx *lexer) error {
	for {
		tok, err := lx.next()
		if err != nil {
			return err
		}
		if tok.kind == tokPunct && tok.text == ")" {
			return nil
		}
		if tok.kind != tokIdent {
			return lx.errf("expected parameter declaration")
		}
		// Either "Type name" or bare "name".
		nxt, err := lx.peek()
		if err != nil {
			return err
		}
		prm := Param{Name: tok.text}
		if nxt.kind == tokIdent {
			if _, err := lx.next(); err != nil {
				return err
			}
			prm = Param{Type: tok.text, Name: nxt.text}
		}
		p.Params = append(p.Params, prm)
		sep, err := lx.next()
		if err != nil {
			return err
		}
		if sep.kind == tokPunct && sep.text == ")" {
			return nil
		}
		if sep.kind != tokPunct || sep.text != "," {
			return lx.errf("expected ',' or ')' in parameter list")
		}
	}
}

func (p *Property) parseEvent(lx *lexer) error {
	name, err := lx.next()
	if err != nil {
		return err
	}
	if name.kind != tokIdent {
		return lx.errf("expected event name")
	}
	if err := expect(lx, "("); err != nil {
		return err
	}
	ev := EventDecl{Name: name.text, Line: name.line}
	for {
		tok, err := lx.next()
		if err != nil {
			return err
		}
		if tok.kind == tokPunct && tok.text == ")" {
			break
		}
		if tok.kind == tokPunct && tok.text == "," {
			continue
		}
		if tok.kind != tokIdent {
			return lx.errf("expected parameter name in event %q", ev.Name)
		}
		ev.Params = append(ev.Params, tok.text)
	}
	p.Events = append(p.Events, ev)
	return nil
}

// parseFSMBody parses "state [ ev -> state ... ] ..." until a non-state
// token (handler '@', logic keyword, or '}') is reached.
func parseFSMBody(lx *lexer) ([]FSMState, error) {
	var states []FSMState
	for {
		save := *lx
		tok, err := lx.next()
		if err != nil {
			return nil, err
		}
		if tok.kind != tokIdent || isLogicKeyword(tok.text) {
			*lx = save
			break
		}
		open, err := lx.next()
		if err != nil {
			return nil, err
		}
		if open.kind != tokPunct || open.text != "[" {
			*lx = save
			break
		}
		st := FSMState{Name: tok.text}
		for {
			t, err := lx.next()
			if err != nil {
				return nil, err
			}
			if t.kind == tokPunct && t.text == "]" {
				break
			}
			if t.kind != tokIdent {
				return nil, lx.errf("expected event name in state %q", st.Name)
			}
			if err := expect(lx, "->"); err != nil {
				return nil, err
			}
			to, err := lx.next()
			if err != nil {
				return nil, err
			}
			if to.kind != tokIdent {
				return nil, lx.errf("expected target state after '->'")
			}
			st.Trans = append(st.Trans, FSMTrans{Event: t.text, To: to.text})
		}
		states = append(states, st)
	}
	if len(states) == 0 {
		return nil, lx.errf("fsm block has no states")
	}
	return states, nil
}

func (p *Property) check() error {
	if p.Name == "" {
		return fmt.Errorf("spec: property has no name")
	}
	if len(p.Params) == 0 {
		return fmt.Errorf("spec: property %q declares no parameters", p.Name)
	}
	if len(p.Events) == 0 {
		return fmt.Errorf("spec: property %q declares no events", p.Name)
	}
	if len(p.Logics) == 0 {
		return fmt.Errorf("spec: property %q has no logic block", p.Name)
	}
	declared := map[string]bool{}
	for _, prm := range p.Params {
		declared[prm.Name] = true
	}
	seen := map[string]bool{}
	for _, ev := range p.Events {
		if seen[ev.Name] {
			return fmt.Errorf("spec: duplicate event %q", ev.Name)
		}
		seen[ev.Name] = true
		for _, prm := range ev.Params {
			if !declared[prm] {
				return fmt.Errorf("spec: event %q binds undeclared parameter %q", ev.Name, prm)
			}
		}
	}
	for _, lb := range p.Logics {
		if len(lb.Handlers) == 0 {
			return fmt.Errorf("spec: %s block of %q has no handlers (no verdict categories of interest)", lb.Kind, p.Name)
		}
	}
	return nil
}

func expect(lx *lexer, text string) error {
	tok, err := lx.next()
	if err != nil {
		return err
	}
	if tok.text != text {
		return lx.errf("expected %q, got %q", text, tok.text)
	}
	return nil
}
