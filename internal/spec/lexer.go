// Package spec implements the RV specification language of Figures 2–4: a
// property declares parameters, events over those parameters, one or more
// logic blocks (fsm, ere, ltl, cfg), and handlers attached to verdict
// categories. AspectJ pointcuts are replaced by plain event declarations —
// programs are instrumented through the engine API instead of weaving (see
// DESIGN.md).
//
// Example (HASNEXT, both formalisms, as in Figure 2):
//
//	HasNext(Iterator i) {
//	    event hasnexttrue(i)
//	    event hasnextfalse(i)
//	    event next(i)
//
//	    fsm:
//	    unknown [
//	        hasnexttrue -> more
//	        hasnextfalse -> none
//	        next -> error
//	    ]
//	    more [
//	        hasnexttrue -> more
//	        hasnextfalse -> none
//	        next -> unknown
//	    ]
//	    none [
//	        hasnextfalse -> none
//	        hasnexttrue -> more
//	        next -> error
//	    ]
//	    error [ ]
//	    @error { print "improper Iterator use found!" }
//
//	    ltl: [] (next -> (*) hasnexttrue)
//	    @violation { print "improper Iterator use found!" }
//	}
package spec

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind int

const (
	tokIdent tokKind = iota
	tokPunct         // ( ) { } [ ] , -> @
	tokBlock         // raw text of a logic block or handler body
	tokEOF
)

type token struct {
	kind tokKind
	text string
	line int
}

type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

func (lx *lexer) errf(format string, args ...any) error {
	return fmt.Errorf("spec: line %d: %s", lx.line, fmt.Sprintf(format, args...))
}

func (lx *lexer) skipSpace() {
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case c == '\n':
			lx.line++
			lx.pos++
		case unicode.IsSpace(rune(c)):
			lx.pos++
		case c == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '/':
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.pos++
			}
		default:
			return
		}
	}
}

// next returns the next structural token.
func (lx *lexer) next() (token, error) {
	lx.skipSpace()
	if lx.pos >= len(lx.src) {
		return token{kind: tokEOF, line: lx.line}, nil
	}
	c := lx.src[lx.pos]
	switch c {
	case '(', ')', '{', '}', '[', ']', ',', '@', ':':
		lx.pos++
		return token{kind: tokPunct, text: string(c), line: lx.line}, nil
	}
	if strings.HasPrefix(lx.src[lx.pos:], "->") {
		lx.pos += 2
		return token{kind: tokPunct, text: "->", line: lx.line}, nil
	}
	if isIdentStart(rune(c)) {
		j := lx.pos
		for j < len(lx.src) && isIdentPart(rune(lx.src[j])) {
			j++
		}
		t := token{kind: tokIdent, text: lx.src[lx.pos:j], line: lx.line}
		lx.pos = j
		return t, nil
	}
	return token{}, lx.errf("unexpected character %q", c)
}

// peek returns the next token without consuming it.
func (lx *lexer) peek() (token, error) {
	save := *lx
	t, err := lx.next()
	*lx = save
	return t, err
}

// restOfLogicBlock consumes raw text until the start of the next section:
// a line beginning with '@', a known logic keyword followed by ':', or the
// closing '}' of the property. Used for ere/ltl/cfg pattern bodies.
func (lx *lexer) restOfLogicBlock() string {
	start := lx.pos
	depth := 0
	for lx.pos < len(lx.src) {
		lx.skipSpace()
		if lx.pos >= len(lx.src) {
			break
		}
		c := lx.src[lx.pos]
		if depth == 0 {
			if c == '@' || c == '}' {
				break
			}
			if isIdentStart(rune(c)) {
				j := lx.pos
				for j < len(lx.src) && isIdentPart(rune(lx.src[j])) {
					j++
				}
				word := lx.src[lx.pos:j]
				if isLogicKeyword(word) && nextNonSpace(lx.src, j) == ':' {
					break
				}
				lx.pos = j
				continue
			}
		}
		switch c {
		case '(', '[':
			depth++
		case ')', ']':
			depth--
		case '\n':
			lx.line++
		}
		lx.pos++
	}
	return strings.TrimSpace(lx.src[start:lx.pos])
}

// braceBlock consumes a {...} block (handler body) and returns its inner
// text.
func (lx *lexer) braceBlock() (string, error) {
	lx.skipSpace()
	if lx.pos >= len(lx.src) || lx.src[lx.pos] != '{' {
		return "", lx.errf("expected '{'")
	}
	lx.pos++
	start := lx.pos
	depth := 1
	for lx.pos < len(lx.src) {
		switch lx.src[lx.pos] {
		case '{':
			depth++
		case '}':
			depth--
			if depth == 0 {
				body := lx.src[start:lx.pos]
				lx.pos++
				return strings.TrimSpace(body), nil
			}
		case '\n':
			lx.line++
		}
		lx.pos++
	}
	return "", lx.errf("unterminated handler block")
}

func isIdentStart(c rune) bool { return unicode.IsLetter(c) || c == '_' }
func isIdentPart(c rune) bool  { return unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_' }

func isLogicKeyword(w string) bool {
	switch w {
	case "fsm", "ere", "ltl", "cfg":
		return true
	}
	return false
}

func nextNonSpace(s string, i int) byte {
	for i < len(s) {
		if !unicode.IsSpace(rune(s[i])) {
			return s[i]
		}
		i++
	}
	return 0
}
