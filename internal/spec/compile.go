package spec

import (
	"fmt"
	"strings"

	"rvgo/internal/cfg"
	"rvgo/internal/ere"
	"rvgo/internal/fsm"
	"rvgo/internal/logic"
	"rvgo/internal/ltl"
	"rvgo/internal/monitor"
	"rvgo/internal/param"
)

// Compiled is one runnable monitor compiled from a logic block: Figure 2
// shows a single property carrying both an fsm and an ltl block, each with
// its own handlers, so compilation yields one Compiled per block.
type Compiled struct {
	Spec *monitor.Spec
	Kind string // formalism of the block
	// Handlers maps verdict categories to handler body text; the host
	// decides how to run them (rvmon interprets `print "..."`).
	Handlers map[logic.Category]string
}

// CompileOne parses and compiles .rv source that must define exactly one
// monitorable property, with the static analyses run. This is the shape
// the wire protocol's spec negotiation needs: the client and server both
// compile the same source through this helper, so the single-property
// rule and its diagnostics cannot drift between the two ends.
func CompileOne(src string) (*monitor.Spec, error) {
	p, err := Parse(src)
	if err != nil {
		return nil, err
	}
	compiled, err := p.Compile()
	if err != nil {
		return nil, err
	}
	if len(compiled) != 1 {
		return nil, fmt.Errorf("spec: source compiles to %d properties, want exactly 1", len(compiled))
	}
	s := compiled[0].Spec
	if err := s.Analyze(); err != nil {
		return nil, err
	}
	return s, nil
}

// Compile compiles every logic block of the property.
func (p *Property) Compile() ([]*Compiled, error) {
	alphabet := make([]string, len(p.Events))
	events := make([]monitor.EventDef, len(p.Events))
	paramIdx := map[string]int{}
	var paramNames []string
	for i, prm := range p.Params {
		paramIdx[prm.Name] = i
		paramNames = append(paramNames, prm.Name)
	}
	if len(p.Params) > param.MaxParams {
		return nil, fmt.Errorf("spec: %q has %d parameters, max %d", p.Name, len(p.Params), param.MaxParams)
	}
	for i, ev := range p.Events {
		alphabet[i] = ev.Name
		var ps param.Set
		for _, prm := range ev.Params {
			ps = ps.Union(param.SetOf(paramIdx[prm]))
		}
		events[i] = monitor.EventDef{Name: ev.Name, Params: ps}
	}

	var out []*Compiled
	for bi, lb := range p.Logics {
		bp, err := buildBlueprint(lb, alphabet)
		if err != nil {
			return nil, fmt.Errorf("spec: %q %s block: %w", p.Name, lb.Kind, err)
		}
		handlers := map[logic.Category]string{}
		var goal []logic.Category
		for _, h := range lb.Handlers {
			cat := logic.Category(h.Category)
			if _, dup := handlers[cat]; dup {
				return nil, fmt.Errorf("spec: %q has duplicate handler @%s", p.Name, h.Category)
			}
			handlers[cat] = h.Body
			goal = append(goal, cat)
		}
		name := p.Name
		if len(p.Logics) > 1 {
			name = fmt.Sprintf("%s#%s%d", p.Name, lb.Kind, bi)
		}
		s := &monitor.Spec{
			Name:   name,
			Params: paramNames,
			Events: events,
			BP:     bp,
			Goal:   goal,
		}
		if err := s.Analyze(); err != nil {
			return nil, fmt.Errorf("spec: %q: %w", p.Name, err)
		}
		out = append(out, &Compiled{Spec: s, Kind: lb.Kind, Handlers: handlers})
	}
	return out, nil
}

func buildBlueprint(lb LogicBlock, alphabet []string) (logic.Blueprint, error) {
	switch lb.Kind {
	case "fsm":
		m := fsm.New(alphabet)
		for _, st := range lb.FSM {
			if err := m.AddState(st.Name); err != nil {
				return nil, err
			}
		}
		for _, st := range lb.FSM {
			for _, tr := range st.Trans {
				if err := m.AddTransition(st.Name, tr.Event, tr.To); err != nil {
					return nil, err
				}
			}
		}
		if err := m.Freeze(); err != nil {
			return nil, err
		}
		return m, nil
	case "ere":
		return ere.Compile(lb.Body, alphabet)
	case "ltl":
		return ltl.Compile(lb.Body, alphabet)
	case "cfg":
		return cfg.CompileAuto(lb.Body, alphabet)
	}
	return nil, fmt.Errorf("unknown formalism %q", lb.Kind)
}

// RunHandler interprets a handler body: each `print "..."` line yields one
// output line; anything else is ignored (handler bodies are arbitrary Java
// in the paper — printing is what its examples do).
func RunHandler(body string, emit func(string)) {
	for _, line := range strings.Split(body, "\n") {
		line = strings.TrimSpace(line)
		line = strings.TrimSuffix(line, ";")
		if rest, ok := strings.CutPrefix(line, "print"); ok {
			rest = strings.TrimSpace(rest)
			rest = strings.Trim(rest, `"`)
			emit(rest)
		}
	}
}
