package spec_test

import (
	"strings"
	"testing"

	"rvgo/internal/heap"
	"rvgo/internal/logic"
	"rvgo/internal/monitor"
	"rvgo/internal/spec"
)

const hasNextSrc = `
// HASNEXT, Figure 2.
HasNext(Iterator i) {
    event hasnexttrue(i)
    event hasnextfalse(i)
    event next(i)

    fsm:
    unknown [
        hasnexttrue -> more
        hasnextfalse -> none
        next -> error
    ]
    more [
        hasnexttrue -> more
        hasnextfalse -> none
        next -> unknown
    ]
    none [
        hasnextfalse -> none
        hasnexttrue -> more
        next -> error
    ]
    error [ ]
    @error { print "improper Iterator use found!" }

    ltl: [] (next -> (*) hasnexttrue)
    @violation { print "improper Iterator use found!" }
}
`

const unsafeIterSrc = `
UnsafeIter(Collection c, Iterator i) {
    event create(c, i)
    event update(c)
    event next(i)
    ere : update* create next* update+ next
    @match { print "improper Concurrent Modification found!" }
}
`

const safeLockSrc = `
SafeLock(Lock l, Thread t) {
    event acquire(l, t)
    event release(l, t)
    event begin(t)
    event end(t)
    cfg : S -> S begin S end | S acquire S release | epsilon
    @fail { print "improper Lock use found!" }
}
`

func TestParseHasNext(t *testing.T) {
	p, err := spec.Parse(hasNextSrc)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "HasNext" {
		t.Fatalf("name = %q", p.Name)
	}
	if len(p.Params) != 1 || p.Params[0].Name != "i" || p.Params[0].Type != "Iterator" {
		t.Fatalf("params = %+v", p.Params)
	}
	if len(p.Events) != 3 {
		t.Fatalf("events = %+v", p.Events)
	}
	if len(p.Logics) != 2 || p.Logics[0].Kind != "fsm" || p.Logics[1].Kind != "ltl" {
		t.Fatalf("logics = %+v", p.Logics)
	}
	if len(p.Logics[0].FSM) != 4 {
		t.Fatalf("fsm states = %d", len(p.Logics[0].FSM))
	}
	if p.Logics[1].Body != "[] (next -> (*) hasnexttrue)" {
		t.Fatalf("ltl body = %q", p.Logics[1].Body)
	}
	if p.Logics[0].Handlers[0].Category != "error" {
		t.Fatalf("handler = %+v", p.Logics[0].Handlers)
	}
}

// TestCompileAndRunBothFormalisms: the two logic blocks of Figure 2 flag
// the same violation.
func TestCompileAndRunBothFormalisms(t *testing.T) {
	p, err := spec.Parse(hasNextSrc)
	if err != nil {
		t.Fatal(err)
	}
	compiled, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if len(compiled) != 2 {
		t.Fatalf("compiled %d blocks", len(compiled))
	}
	h := heap.New()
	it := h.Alloc("i1")
	for _, c := range compiled {
		verdicts := 0
		eng, err := monitor.New(c.Spec, monitor.Options{
			GC: monitor.GCCoenable, Creation: monitor.CreateEnable,
			OnVerdict: func(monitor.Verdict) { verdicts++ },
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, ev := range []string{"hasnexttrue", "next", "next"} {
			if err := eng.EmitNamed(ev, it); err != nil {
				t.Fatal(err)
			}
		}
		if verdicts != 1 {
			t.Fatalf("%s block: %d verdicts, want 1", c.Kind, verdicts)
		}
	}
}

func TestCompileEREProperty(t *testing.T) {
	p, err := spec.Parse(unsafeIterSrc)
	if err != nil {
		t.Fatal(err)
	}
	compiled, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	s := compiled[0].Spec
	if !s.IsGoal(logic.Match) {
		t.Fatal("goal must include match")
	}
	an, err := s.Analysis()
	if err != nil {
		t.Fatal(err)
	}
	if !an.HasCoenable {
		t.Fatal("ERE property must have coenable analysis")
	}
	sym, ok := s.Symbol("create")
	if !ok || s.Events[sym].Params.Count() != 2 {
		t.Fatal("create must bind two parameters")
	}
}

func TestCompileCFGProperty(t *testing.T) {
	p, err := spec.Parse(safeLockSrc)
	if err != nil {
		t.Fatal(err)
	}
	compiled, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	h := heap.New()
	l, th := h.Alloc("l"), h.Alloc("t")
	verdicts := 0
	eng, err := monitor.New(compiled[0].Spec, monitor.Options{
		GC: monitor.GCCoenable, Creation: monitor.CreateEnable,
		OnVerdict: func(monitor.Verdict) { verdicts++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range [][]any{
		{"acquire", l, th}, {"release", l, th}, {"release", l, th},
	} {
		var vals []heap.Ref
		for _, v := range ev[1:] {
			vals = append(vals, v.(*heap.Object))
		}
		if err := eng.EmitNamed(ev[0].(string), vals...); err != nil {
			t.Fatal(err)
		}
	}
	if verdicts != 1 {
		t.Fatalf("verdicts = %d", verdicts)
	}
}

func TestParseErrors(t *testing.T) {
	bad := map[string]string{
		"no name":         `(x) { event e(x) ere: e @match {} }`,
		"no params":       `P() { event e() ere: e @match {} }`,
		"no events":       `P(x) { ere: x @match {} }`,
		"no logic":        `P(x) { event e(x) }`,
		"no handlers":     `P(x) { event e(x) ere: e }`,
		"undeclared":      `P(x) { event e(y) ere: e @match { } }`,
		"dup events":      `P(x) { event e(x) event e(x) ere: e @match { } }`,
		"orphan handler":  `P(x) { event e(x) @match { } ere: e }`,
		"unclosed":        `P(x) { event e(x) ere: e @match {`,
		"bad fsm":         `P(x) { event e(x) fsm: @match { } }`,
		"bad transition":  `P(x) { event e(x) fsm: s [ e -> ] @s { } }`,
		"unknown pattern": `P(x) { event e(x) ere: nosuch @match { } }`,
	}
	for name, src := range bad {
		p, err := spec.Parse(src)
		if err == nil {
			_, err = p.Compile()
		}
		if err == nil {
			t.Errorf("%s: expected an error", name)
		}
	}
}

func TestRunHandler(t *testing.T) {
	var out []string
	spec.RunHandler(`print "hello";`+"\n"+`somejava();`+"\n"+`print "world"`, func(s string) {
		out = append(out, s)
	})
	if strings.Join(out, "|") != "hello|world" {
		t.Fatalf("handler output = %v", out)
	}
}
