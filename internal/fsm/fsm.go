// Package fsm implements the finite-state-machine plugin of the RV system
// (the `fsm:` blocks of Figure 2). A machine is given as named states with
// event-labelled transitions; the first state is initial. The verdict
// category of a state is its own name (so a handler may attach to reaching
// state "error"), and a trace that attempts an undefined transition is
// classified fail and stays there — matching the paper's "σ(ı,w) undefined
// ⇒ fail" convention via an explicit fail sink.
package fsm

import (
	"fmt"

	"rvgo/internal/logic"
)

// Machine is a finite state machine in the spirit of Definition 8.
type Machine struct {
	alphabet []string
	states   []string // state names; index 0 is initial
	next     [][]int  // next[s][a]; -1 means undefined (→ fail sink)
	byName   map[string]int
	symByEv  map[string]int
	graph    *logic.Graph // completed graph, built by Freeze
}

// New creates a machine over the given event alphabet.
func New(alphabet []string) *Machine {
	m := &Machine{
		alphabet: append([]string(nil), alphabet...),
		byName:   map[string]int{},
		symByEv:  map[string]int{},
	}
	for i, e := range m.alphabet {
		if _, dup := m.symByEv[e]; dup {
			panic(fmt.Sprintf("fsm: duplicate event %q", e))
		}
		m.symByEv[e] = i
	}
	return m
}

// Symbol returns the symbol index of an event name.
func (m *Machine) Symbol(event string) (int, bool) {
	s, ok := m.symByEv[event]
	return s, ok
}

// AddState declares a state; the first declared state is initial.
func (m *Machine) AddState(name string) error {
	if m.graph != nil {
		return fmt.Errorf("fsm: machine already frozen")
	}
	if _, dup := m.byName[name]; dup {
		return fmt.Errorf("fsm: duplicate state %q", name)
	}
	m.byName[name] = len(m.states)
	m.states = append(m.states, name)
	row := make([]int, len(m.alphabet))
	for i := range row {
		row[i] = -1
	}
	m.next = append(m.next, row)
	return nil
}

// AddTransition adds from --event--> to. Both states must exist.
func (m *Machine) AddTransition(from, event, to string) error {
	if m.graph != nil {
		return fmt.Errorf("fsm: machine already frozen")
	}
	f, ok := m.byName[from]
	if !ok {
		return fmt.Errorf("fsm: unknown state %q", from)
	}
	t, ok := m.byName[to]
	if !ok {
		return fmt.Errorf("fsm: unknown state %q", to)
	}
	a, ok := m.symByEv[event]
	if !ok {
		return fmt.Errorf("fsm: unknown event %q", event)
	}
	if m.next[f][a] != -1 {
		return fmt.Errorf("fsm: state %q already has a transition on %q", from, event)
	}
	m.next[f][a] = t
	return nil
}

// Freeze completes the machine (adding a fail sink for undefined
// transitions) and validates it. It must be called before Start/Explore.
func (m *Machine) Freeze() error {
	if m.graph != nil {
		return nil
	}
	if len(m.states) == 0 {
		return fmt.Errorf("fsm: no states")
	}
	n := len(m.states)
	g := &logic.Graph{Alphabet: m.alphabet}
	needSink := false
	for _, row := range m.next {
		for _, t := range row {
			if t == -1 {
				needSink = true
			}
		}
	}
	total := n
	sink := -1
	if needSink {
		sink = n
		total = n + 1
	}
	g.Next = make([][]int, total)
	g.Cat = make([]logic.Category, total)
	for s := 0; s < n; s++ {
		row := make([]int, len(m.alphabet))
		for a, t := range m.next[s] {
			if t == -1 {
				row[a] = sink
			} else {
				row[a] = t
			}
		}
		g.Next[s] = row
		g.Cat[s] = logic.Category(m.states[s])
	}
	if needSink {
		row := make([]int, len(m.alphabet))
		for a := range row {
			row[a] = sink
		}
		g.Next[sink] = row
		g.Cat[sink] = logic.Fail
	}
	if err := g.Validate(); err != nil {
		return err
	}
	m.graph = g
	return nil
}

// Alphabet implements logic.Blueprint.
func (m *Machine) Alphabet() []string { return m.alphabet }

// Start implements logic.Blueprint.
func (m *Machine) Start() logic.State {
	m.mustFreeze()
	return logic.GraphState{G: m.graph, S: 0}
}

// Categories implements logic.Blueprint.
func (m *Machine) Categories() []logic.Category {
	m.mustFreeze()
	return logic.GraphBlueprint{G: m.graph}.Categories()
}

// Explore implements logic.Explorable.
func (m *Machine) Explore(limit int) (*logic.Graph, error) {
	if err := m.Freeze(); err != nil {
		return nil, err
	}
	if m.graph.NumStates() > limit {
		return nil, fmt.Errorf("fsm: %d states exceeds limit %d", m.graph.NumStates(), limit)
	}
	return m.graph, nil
}

// States returns the declared state names (excluding the implicit sink).
func (m *Machine) States() []string { return m.states }

func (m *Machine) mustFreeze() {
	if err := m.Freeze(); err != nil {
		panic(err)
	}
}

var _ logic.Explorable = (*Machine)(nil)
