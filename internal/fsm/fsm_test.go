package fsm_test

import (
	"testing"

	"rvgo/internal/fsm"
	"rvgo/internal/logic"
)

// hasNext builds the HASNEXT typestate of Figure 1.
func hasNext(t *testing.T) *fsm.Machine {
	t.Helper()
	m := fsm.New([]string{"hasnexttrue", "hasnextfalse", "next"})
	for _, s := range []string{"unknown", "more", "none", "error"} {
		if err := m.AddState(s); err != nil {
			t.Fatal(err)
		}
	}
	for _, tr := range [][3]string{
		{"unknown", "hasnexttrue", "more"},
		{"unknown", "hasnextfalse", "none"},
		{"unknown", "next", "error"},
		{"more", "hasnexttrue", "more"},
		{"more", "hasnextfalse", "none"},
		{"more", "next", "unknown"},
		{"none", "hasnexttrue", "more"},
		{"none", "hasnextfalse", "none"},
		{"none", "next", "error"},
	} {
		if err := m.AddTransition(tr[0], tr[1], tr[2]); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Freeze(); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestHasNextTypestate(t *testing.T) {
	m := hasNext(t)
	hnT, _ := m.Symbol("hasnexttrue")
	hnF, _ := m.Symbol("hasnextfalse")
	nxt, _ := m.Symbol("next")

	cases := []struct {
		trace []int
		want  logic.Category
	}{
		{nil, "unknown"},
		{[]int{hnT}, "more"},
		{[]int{hnT, nxt}, "unknown"},
		{[]int{hnT, nxt, nxt}, "error"},
		{[]int{hnF}, "none"},
		{[]int{hnF, nxt}, "error"},
		{[]int{nxt}, "error"},
		{[]int{hnT, hnT, nxt}, "unknown"},
		// Transitions out of error are undefined: the fail sink.
		{[]int{nxt, hnT}, logic.Fail},
	}
	for _, c := range cases {
		s := m.Start()
		for _, a := range c.trace {
			s = s.Step(a)
		}
		if s.Category() != c.want {
			t.Errorf("trace %v: got %s want %s", c.trace, s.Category(), c.want)
		}
	}
}

func TestBuilderErrors(t *testing.T) {
	m := fsm.New([]string{"a"})
	if err := m.AddState("s"); err != nil {
		t.Fatal(err)
	}
	if err := m.AddState("s"); err == nil {
		t.Error("duplicate state must fail")
	}
	if err := m.AddTransition("s", "a", "nosuch"); err == nil {
		t.Error("unknown target must fail")
	}
	if err := m.AddTransition("nosuch", "a", "s"); err == nil {
		t.Error("unknown source must fail")
	}
	if err := m.AddTransition("s", "b", "s"); err == nil {
		t.Error("unknown event must fail")
	}
	if err := m.AddTransition("s", "a", "s"); err != nil {
		t.Fatal(err)
	}
	if err := m.AddTransition("s", "a", "s"); err == nil {
		t.Error("duplicate transition must fail")
	}
	empty := fsm.New([]string{"a"})
	if err := empty.Freeze(); err == nil {
		t.Error("empty machine must not freeze")
	}
}

func TestDuplicateEventPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate alphabet event must panic")
		}
	}()
	fsm.New([]string{"a", "a"})
}

func TestCategoriesAndExplore(t *testing.T) {
	m := hasNext(t)
	g, err := m.Explore(100)
	if err != nil {
		t.Fatal(err)
	}
	// 4 declared states + fail sink.
	if g.NumStates() != 5 {
		t.Fatalf("states = %d", g.NumStates())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	cats := map[logic.Category]bool{}
	for _, c := range m.Categories() {
		cats[c] = true
	}
	for _, want := range []logic.Category{"unknown", "more", "none", "error", logic.Fail} {
		if !cats[want] {
			t.Errorf("missing category %s", want)
		}
	}
	if _, err := m.Explore(2); err == nil {
		t.Error("explore beyond limit must fail")
	}
}

func TestNoSinkWhenTotal(t *testing.T) {
	m := fsm.New([]string{"a"})
	if err := m.AddState("s"); err != nil {
		t.Fatal(err)
	}
	if err := m.AddTransition("s", "a", "s"); err != nil {
		t.Fatal(err)
	}
	g, err := m.Explore(10)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumStates() != 1 {
		t.Fatalf("total machine must not grow a sink: %d states", g.NumStates())
	}
}
