package eval

import (
	"encoding/json"
	"os"
	"testing"
)

func loadBaseline(t *testing.T, path string) *Results {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading committed baseline: %v", err)
	}
	var res Results
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatalf("parsing %s: %v", path, err)
	}
	return &res
}

// requireCountersEqual pins two committed archives of the identical grid
// config to bit-identical Figure 10 counters, cell by cell. Micro timing
// and sections absent from the older run are outside the comparison by
// construction. Stats.Avoided predates some archives: JSON decoding
// zero-fills it, and it is zero in every unguarded grid, so the struct
// comparison stays exact.
func requireCountersEqual(t *testing.T, pre, cur *Results, preName, curName string) {
	t.Helper()
	if pre.Config.Scale != cur.Config.Scale || pre.Config.Shards != cur.Config.Shards {
		t.Fatalf("baseline configs differ: %+v vs %+v", pre.Config, cur.Config)
	}
	cells := 0
	for _, bench := range pre.Config.Benchmarks {
		for _, prop := range pre.Config.Properties {
			for _, sys := range pre.Config.Systems {
				b, okB := lookup(pre, bench, prop, sys)
				c, okC := lookup(cur, bench, prop, sys)
				if !okB || !okC {
					t.Errorf("%s/%s/%s: cell missing (%s %v, %s %v)", bench, prop, sys, preName, okB, curName, okC)
					continue
				}
				cells++
				if b.Stats != c.Stats {
					t.Errorf("%s/%s/%s: counters diverged:\n  %s %+v\n  %s %+v",
						bench, prop, sys, preName, b.Stats, curName, c.Stats)
				}
				if b.TMStats != c.TMStats {
					t.Errorf("%s/%s/%s: tracematch counters diverged:\n  %s %+v\n  %s %+v",
						bench, prop, sys, preName, b.TMStats, curName, c.TMStats)
				}
			}
		}
		b, okB := pre.All[bench]
		c, okC := cur.All[bench]
		if okB && okC && b.Stats != c.Stats {
			t.Errorf("%s/ALL/RV: counters diverged:\n  %s %+v\n  %s %+v", bench, preName, b.Stats, curName, c.Stats)
		}
	}
	if cells == 0 {
		t.Fatal("no shared cells compared")
	}
}

// TestBaselineCountersStable pins the migration oracles at the archive
// level: BENCH_PR4.json (pre-arena), BENCH_PR8.json (arena store) and
// BENCH_PR10.json (creation-avoidance engine, guards off in the grid) all
// ran the identical grid config, so every shared Figure 10 counter must be
// bit-identical — the slab store changed where monitors live and the guard
// hooks added a consulted-but-off branch to creation, neither may change
// what the engine computes.
func TestBaselineCountersStable(t *testing.T) {
	pr4 := loadBaseline(t, "../../BENCH_PR4.json")
	pr8 := loadBaseline(t, "../../BENCH_PR8.json")
	pr10 := loadBaseline(t, "../../BENCH_PR10.json")

	requireCountersEqual(t, pr4, pr8, "pre-arena", "arena")
	requireCountersEqual(t, pr8, pr10, "arena", "avoidance")

	// The arena baselines must carry the occupancy columns CI gates on.
	for name, res := range map[string]*Results{"BENCH_PR8.json": pr8, "BENCH_PR10.json": pr10} {
		if res.Metrics == nil || res.Metrics.ArenaCap == 0 || res.Metrics.ArenaSlabs == 0 {
			t.Errorf("%s telemetry section lacks arena occupancy: %+v", name, res.Metrics)
		}
	}
}

// TestBaselinePR10Avoid pins the shape of the committed avoid section CI
// replays: every leg settled identical to its unguarded reference, the
// full-strategy enforce leg actually avoided creations, and the grid cells
// are self-describing about their creation strategy and guard mode.
func TestBaselinePR10Avoid(t *testing.T) {
	res := loadBaseline(t, "../../BENCH_PR10.json")
	ar := res.Avoid
	if ar == nil {
		t.Fatal("BENCH_PR10.json has no Avoid section")
	}
	if bad := ar.Verify(); len(bad) != 0 {
		t.Fatalf("committed avoid section fails its own contract: %v", bad)
	}
	if len(ar.Runs) != 7 {
		t.Errorf("avoid section has %d runs, want the 7-leg grid", len(ar.Runs))
	}
	if fe, ok := findAvoidRun(ar.Runs, "full/enforce"); !ok || fe.Stats.Avoided == 0 {
		t.Errorf("full/enforce leg missing or avoided nothing: %+v", fe)
	}
	if ar.Scale <= 0 {
		t.Errorf("avoid section does not record its scale (compare reruns need it): %v", ar.Scale)
	}
	for _, bench := range res.Config.Benchmarks {
		for _, prop := range res.Config.Properties {
			c, ok := lookup(res, bench, prop, SysRV)
			if !ok {
				continue
			}
			if c.Creation != "enable" || c.Avoid != "off" {
				t.Errorf("%s/%s/RV cell not self-describing: Creation=%q Avoid=%q", bench, prop, c.Creation, c.Avoid)
			}
		}
	}
}
