package eval

import (
	"encoding/json"
	"os"
	"testing"
)

func loadBaseline(t *testing.T, path string) *Results {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading committed baseline: %v", err)
	}
	var res Results
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatalf("parsing %s: %v", path, err)
	}
	return &res
}

// TestBaselineCountersStable pins the arena migration's oracle at the
// archive level: the committed pre-arena baseline (BENCH_PR4.json) and the
// arena-store baseline (BENCH_PR8.json) ran the identical grid config, so
// every shared Figure 10 counter must be bit-identical — the slab store
// changed where monitors live, not what the engine computes. Micro timing
// and the PR8-only telemetry fields are outside the comparison by
// construction (Compare zeroes quantiles and skips sections absent from
// the older run).
func TestBaselineCountersStable(t *testing.T) {
	pre := loadBaseline(t, "../../BENCH_PR4.json")
	cur := loadBaseline(t, "../../BENCH_PR8.json")

	if pre.Config.Scale != cur.Config.Scale || pre.Config.Shards != cur.Config.Shards {
		t.Fatalf("baseline configs differ: %+v vs %+v", pre.Config, cur.Config)
	}
	cells := 0
	for _, bench := range pre.Config.Benchmarks {
		for _, prop := range pre.Config.Properties {
			for _, sys := range pre.Config.Systems {
				b, okB := lookup(pre, bench, prop, sys)
				c, okC := lookup(cur, bench, prop, sys)
				if !okB || !okC {
					t.Errorf("%s/%s/%s: cell missing (pre %v, cur %v)", bench, prop, sys, okB, okC)
					continue
				}
				cells++
				if b.Stats != c.Stats {
					t.Errorf("%s/%s/%s: counters diverged across the arena migration:\n  pre-arena %+v\n  arena     %+v",
						bench, prop, sys, b.Stats, c.Stats)
				}
				if b.TMStats != c.TMStats {
					t.Errorf("%s/%s/%s: tracematch counters diverged:\n  pre-arena %+v\n  arena     %+v",
						bench, prop, sys, b.TMStats, c.TMStats)
				}
			}
		}
		b, okB := pre.All[bench]
		c, okC := cur.All[bench]
		if okB && okC && b.Stats != c.Stats {
			t.Errorf("%s/ALL/RV: counters diverged:\n  pre-arena %+v\n  arena     %+v", bench, b.Stats, c.Stats)
		}
	}
	if cells == 0 {
		t.Fatal("no shared cells compared")
	}

	// The arena baseline must carry the occupancy columns CI now gates on.
	if cur.Metrics == nil || cur.Metrics.ArenaCap == 0 || cur.Metrics.ArenaSlabs == 0 {
		t.Errorf("BENCH_PR8.json telemetry section lacks arena occupancy: %+v", cur.Metrics)
	}
}
