package eval

import (
	"fmt"
	"net"
	"time"

	"rvgo/internal/cluster"
	"rvgo/internal/dacapo"
	"rvgo/internal/heap"
	"rvgo/internal/monitor"
	"rvgo/internal/remote"
	"rvgo/internal/server"
)

// ClusterConfig controls the cluster comparison tier.
type ClusterConfig struct {
	// Scale is the workload scale of the recorded trace (default 0.05).
	Scale float64
	// Bench is the DaCapo profile (default avrora — its iterator churn
	// spreads slices across many pivots, so the hash actually fans out).
	Bench string
	// Prop is the monitored property (default UnsafeIter).
	Prop string
	// Nodes is the in-process rvserve node count (default 4).
	Nodes int
}

// ClusterReport is the cluster tier of a result grid: the same recorded
// multi-pivot workload monitored once through a single remote session and
// once through a pivot-hashed cluster session over N in-process rvserve
// nodes, with the cluster's settled counters and verdict count verified
// against the single-node run (PeakLive excluded — per-slot peaks are
// sampled on independent maintenance clocks and do not sum comparably).
type ClusterReport struct {
	Bench string
	Prop  string
	Nodes int
	// Events is the per-run monitored event count (identical by
	// construction: both runs replay the same recorded trace).
	Events uint64
	// Verdicts is the goal-verdict count, identical across runs when
	// Identical holds.
	Verdicts uint64
	// SingleSec/SingleRate measure the single remote session.
	SingleSec  float64
	SingleRate float64
	// ClusterSec/ClusterRate measure the N-node cluster session.
	ClusterSec  float64
	ClusterRate float64
	// Speedup is SingleSec / ClusterSec (>1: the cluster was faster; on a
	// single-core host expect ≈1 or below — the tier is a correctness and
	// plumbing gate first, a scaling measurement second).
	Speedup float64
	// Identical reports whether the cluster run's settled counters
	// (PeakLive excluded) and verdict count matched the single-node run.
	Identical bool
}

// clusterNodes starts n in-process rvserve nodes on loopback listeners
// and returns their addresses plus a shutdown func.
func clusterNodes(n int) ([]string, func(), error) {
	addrs := make([]string, 0, n)
	var stops []func()
	stop := func() {
		for _, s := range stops {
			s()
		}
	}
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			stop()
			return nil, nil, err
		}
		srv := server.New(server.Options{})
		go srv.Serve(l)
		addrs = append(addrs, l.Addr().String())
		stops = append(stops, func() { srv.Shutdown(time.Second) })
	}
	return addrs, stop, nil
}

// replayThrough drives the recorded workload through one monitoring
// runtime (heap deaths forwarded as protocol frees) and returns the wall
// time and settled stats.
func replayThrough(tr *dacapo.Trace, prop string, rt monitor.Runtime) (float64, monitor.Stats, error) {
	sink, err := dacapo.Adapt(prop, rt)
	if err != nil {
		return 0, monitor.Stats{}, err
	}
	h := heap.New()
	h.SetFreeHook(func(o *heap.Object) { rt.Free(o) })
	start := time.Now()
	tr.Replay(h, sink, nil)
	rt.Flush()
	sec := time.Since(start).Seconds()
	return sec, rt.Stats(), nil
}

// RunCluster runs the cluster comparison tier: it records the workload
// once, monitors it through a single remote session against one node,
// then through a pivot-hashed cluster session across all nodes, and
// verifies the two runs settle identically.
func RunCluster(cfg ClusterConfig) (*ClusterReport, error) {
	if cfg.Scale == 0 {
		cfg.Scale = 0.05
	}
	if cfg.Bench == "" {
		cfg.Bench = "avrora"
	}
	if cfg.Prop == "" {
		cfg.Prop = "UnsafeIter"
	}
	if cfg.Nodes == 0 {
		cfg.Nodes = 4
	}
	p, ok := dacapo.Get(cfg.Bench)
	if !ok {
		return nil, fmt.Errorf("eval: unknown benchmark %q", cfg.Bench)
	}
	tr, err := p.Record(cfg.Scale)
	if err != nil {
		return nil, err
	}
	addrs, stop, err := clusterNodes(cfg.Nodes)
	if err != nil {
		return nil, err
	}
	defer stop()

	rep := &ClusterReport{Bench: cfg.Bench, Prop: cfg.Prop, Nodes: cfg.Nodes}

	var singleVerdicts uint64
	single, err := remote.Dial(addrs[0], remote.Options{
		Prop:      cfg.Prop,
		GC:        monitor.GCCoenable,
		Creation:  monitor.CreateEnable,
		Shards:    1,
		OnVerdict: func(monitor.Verdict) { singleVerdicts++ },
	})
	if err != nil {
		return nil, err
	}
	singleSec, singleStats, err := replayThrough(tr, cfg.Prop, single)
	single.Close()
	if err != nil {
		return nil, err
	}
	if err := single.Err(); err != nil {
		return nil, fmt.Errorf("single-node session: %w", err)
	}

	var clusterVerdicts uint64
	clu, err := cluster.Open(cluster.Options{
		Prop:      cfg.Prop,
		GC:        monitor.GCCoenable,
		Creation:  monitor.CreateEnable,
		Nodes:     addrs,
		OnVerdict: func(monitor.Verdict) { clusterVerdicts++ },
	})
	if err != nil {
		return nil, err
	}
	clusterSec, clusterStats, err := replayThrough(tr, cfg.Prop, clu)
	clu.Close()
	if err != nil {
		return nil, err
	}
	if err := clu.Err(); err != nil {
		return nil, fmt.Errorf("cluster session: %w", err)
	}

	rep.Events = singleStats.Events
	rep.Verdicts = singleVerdicts
	rep.SingleSec = singleSec
	rep.ClusterSec = clusterSec
	if singleSec > 0 {
		rep.SingleRate = float64(singleStats.Events) / singleSec
	}
	if clusterSec > 0 {
		rep.ClusterRate = float64(clusterStats.Events) / clusterSec
		rep.Speedup = singleSec / clusterSec
	}
	singleStats.PeakLive, clusterStats.PeakLive = 0, 0
	rep.Identical = singleStats == clusterStats && singleVerdicts == clusterVerdicts
	return rep, nil
}
