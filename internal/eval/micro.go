package eval

import (
	"bytes"
	"fmt"
	"runtime"
	"runtime/debug"
	"time"

	"rvgo/internal/heap"
	"rvgo/internal/monitor"
	"rvgo/internal/props"
	"rvgo/internal/wire"
)

// MicroResult is one hot-path micro measurement: per-event wall time and
// allocation counts over a fixed, deterministic event loop. Unlike the cell
// runtimes, AllocsPerEvent is deterministic — the loops run after a warmup
// that fills every pool, intern table and scratch buffer to its high-water
// mark — so CI can gate on it tightly where timing gates must stay loose.
type MicroResult struct {
	Name           string
	Events         int
	NsPerEvent     float64
	AllocsPerEvent float64
	BytesPerEvent  float64
}

// RunMicro measures the hot paths: sequential dispatch with and without
// fan-out, GC-churn dispatch (pool + intern sweep in steady state), and
// wire event decoding. The grid runner appends these to Results so every
// archived BENCH_*.json carries an allocation trajectory.
func RunMicro() ([]MicroResult, error) {
	var out []MicroResult
	for _, sc := range []struct {
		name   string
		events int
		build  func() (func(n int), error)
	}{
		{"dispatch/hasnext", 200_000, microHasNext},
		{"dispatch/unsafeiter-fanout", 20_000, microFanout},
		{"dispatch/churn-gc", 100_000, microChurn},
		{"wire/event-decode", 200_000, microWireDecode},
	} {
		run, err := sc.build()
		if err != nil {
			return nil, fmt.Errorf("eval: building micro %s: %w", sc.name, err)
		}
		out = append(out, measureMicro(sc.name, sc.events, run))
	}
	return out, nil
}

// measureMicro runs the loop once to warm every structure, then measures a
// second identical run with the collector paused: Mallocs deltas are exact
// and repeatable, wall time is free of GC pauses.
func measureMicro(name string, events int, run func(n int)) MicroResult {
	run(events) // warmup: pools, intern tables, scratch buffers, map growth
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	run(events)
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return MicroResult{
		Name:           name,
		Events:         events,
		NsPerEvent:     float64(elapsed.Nanoseconds()) / float64(events),
		AllocsPerEvent: float64(after.Mallocs-before.Mallocs) / float64(events),
		BytesPerEvent:  float64(after.TotalAlloc-before.TotalAlloc) / float64(events),
	}
}

// microHasNext: single-parameter dispatch over a fixed iterator working
// set — the tightest loop the engine has.
func microHasNext() (func(int), error) {
	spec, err := props.Build("HasNext")
	if err != nil {
		return nil, err
	}
	eng, err := monitor.New(spec, monitor.Options{GC: monitor.GCCoenable, Creation: monitor.CreateEnable})
	if err != nil {
		return nil, err
	}
	h := heap.New()
	iters := make([]*heap.Object, 256)
	for i := range iters {
		iters[i] = h.Alloc("")
	}
	hnT, _ := spec.Symbol("hasnexttrue")
	nxt, _ := spec.Symbol("next")
	return func(n int) {
		for i := 0; i < n; i++ {
			it := iters[i&255]
			if i&1 == 0 {
				eng.Emit(hnT, it)
			} else {
				eng.Emit(nxt, it)
			}
		}
	}, nil
}

// microFanout: an update event fanning out to 64 monitors on one
// collection — the leaf-walk path.
func microFanout() (func(int), error) {
	spec, err := props.Build("UnsafeIter")
	if err != nil {
		return nil, err
	}
	eng, err := monitor.New(spec, monitor.Options{GC: monitor.GCCoenable, Creation: monitor.CreateEnable})
	if err != nil {
		return nil, err
	}
	h := heap.New()
	c := h.Alloc("c")
	create, _ := spec.Symbol("create")
	update, _ := spec.Symbol("update")
	for i := 0; i < 64; i++ {
		eng.Emit(create, c, h.Alloc(""))
	}
	return func(n int) {
		for i := 0; i < n; i++ {
			eng.Emit(update, c)
		}
	}, nil
}

// microChurn: generations of short-lived iterators — creation, dispatch,
// death, coenable collection, monitor-pool reuse and intern-table sweep,
// all in one loop. This is the scenario the free list exists for; its
// steady state must not allocate per generation.
func microChurn() (func(int), error) {
	spec, err := props.Build("UnsafeIter")
	if err != nil {
		return nil, err
	}
	eng, err := monitor.New(spec, monitor.Options{
		GC: monitor.GCCoenable, Creation: monitor.CreateEnable, SweepInterval: 256,
	})
	if err != nil {
		return nil, err
	}
	h := heap.New()
	c := h.Alloc("c")
	create, _ := spec.Symbol("create")
	update, _ := spec.Symbol("update")
	next, _ := spec.Symbol("next")
	return func(n int) {
		for i := 0; i < n; i += 4 {
			it := h.Alloc("")
			eng.Emit(create, c, it)
			eng.Emit(next, it)
			h.Free(it)
			eng.Emit(update, c)
			eng.Emit(update, c)
		}
	}, nil
}

// microWireDecode: the server's per-frame decode loop over a pre-encoded
// pipelined event burst (the reader reuses its frame and ID buffers).
func microWireDecode() (func(int), error) {
	const burst = 4096
	var buf bytes.Buffer
	w := wire.NewWriter(&buf)
	for i := 0; i < burst; i++ {
		if err := w.WriteEvent(i&3, []uint64{uint64(i & 1023), uint64(i & 255)}); err != nil {
			return nil, err
		}
	}
	if err := w.Flush(); err != nil {
		return nil, err
	}
	encoded := buf.Bytes()
	return func(n int) {
		// One looping reader per run: the measured loop itself decodes n
		// frames from an endless pipelined stream with zero per-frame
		// allocation.
		r := wire.NewReader(&loopReader{data: encoded})
		var msg wire.Msg
		for i := 0; i < n; i++ {
			if err := r.Next(&msg); err != nil {
				panic(err)
			}
		}
	}, nil
}

// loopReader replays a byte stream forever (frame boundaries align with
// the buffer, so wrapping between Read calls is safe).
type loopReader struct {
	data []byte
	off  int
}

func (l *loopReader) Read(p []byte) (int, error) {
	if l.off == len(l.data) {
		l.off = 0
	}
	n := copy(p, l.data[l.off:])
	l.off += n
	return n, nil
}
