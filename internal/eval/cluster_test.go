package eval_test

import (
	"net"
	"testing"
	"time"

	"rvgo/internal/eval"
	"rvgo/internal/server"
)

// TestRunCluster: the cluster comparison tier runs end to end at tiny
// scale and settles identically to the single-node session. Exact
// verdict-stream equivalence (including mid-trace membership changes) is
// covered by internal/cluster's oracle tests; this pins the harness
// plumbing and the report shape.
func TestRunCluster(t *testing.T) {
	cr, err := eval.RunCluster(eval.ClusterConfig{Scale: 0.05, Nodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !cr.Identical {
		t.Fatalf("cluster run diverged from single-node: %+v", cr)
	}
	if cr.Events == 0 {
		t.Fatalf("no monitoring activity: %+v", cr)
	}
	if cr.Nodes != 3 || cr.SingleSec <= 0 || cr.ClusterSec <= 0 || cr.Speedup <= 0 {
		t.Fatalf("report shape off: %+v", cr)
	}
}

// TestRunCellCluster: a grid cell placed on a cluster backend
// (Config.Nodes) runs end to end with sane counters.
func TestRunCellCluster(t *testing.T) {
	var addrs []string
	for i := 0; i < 2; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := server.New(server.Options{})
		go srv.Serve(l)
		defer srv.Shutdown(time.Second)
		addrs = append(addrs, l.Addr().String())
	}
	cfg := smallConfig()
	cfg.Nodes = addrs
	base, err := eval.RunBaseline("avrora", cfg.Scale)
	if err != nil {
		t.Fatal(err)
	}
	cell, err := eval.RunCell("avrora", "UnsafeIter", eval.SysRV, base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cell.Stats.Events == 0 || cell.Stats.Created == 0 || cell.Stats.Collected == 0 {
		t.Fatalf("cluster cell saw no monitoring activity: %+v", cell.Stats)
	}
}
