package eval

import (
	"rvgo/internal/heap"
	"rvgo/internal/metrics"
	"rvgo/internal/monitor"
	"rvgo/internal/props"
)

// MetricsReport is the telemetry section of a bench run: the engine's own
// metrics registry observed over a fixed GC-churn workload. Where the
// micro section measures what the hot path costs, this section measures
// what the observability layer sees — pool hit rate, expunge sweeps, and
// the collection-latency distribution — so an archived run records the
// engine's reclamation behavior, not just its speed. Counter fields are
// deterministic (the workload is fixed); the latency quantiles are
// machine-dependent and reported, not gated.
type MetricsReport struct {
	Events      uint64  // engine dispatches observed by the registry
	Created     uint64  // monitors created
	Collected   uint64  // monitors reclaimed by GC
	Recycled    uint64  // reclaimed monitors returned to the pool
	Reused      uint64  // creations satisfied from the pool
	PoolHitRate float64 // Reused / Created
	Sweeps      uint64  // timed expunge/compaction sweeps
	SweepP50Us  float64 // sweep latency median, microseconds
	SweepP99Us  float64 // sweep latency p99, microseconds

	// Slab-arena occupancy at settle (after the final flush, before the
	// store is torn down). The churn workload is fixed, so these are
	// deterministic and CI-gated like the counters above: a change means
	// the store's growth or recycling behavior changed.
	ArenaSlabs int64 // slabs allocated
	ArenaCap   int64 // record slots backed by those slabs
	ArenaFree  int64 // recycled slots parked on the free list
}

// metricsChurnEvents sizes the report workload: enough generations that
// the monitor pool reaches steady state and the sweep histogram has a
// population worth quantiling.
const metricsChurnEvents = 200_000

// RunMetricsReport drives the microChurn generation loop — create,
// dispatch, death, coenable collection — on a sequential engine with a
// metrics registry attached, and reads the report off the settled series.
// The registry is exercised exactly as WithMetrics wires it, so the
// report doubles as an end-to-end check that instrumented counters settle
// to the engine's exact behavior under churn.
func RunMetricsReport() (*MetricsReport, error) {
	spec, err := props.Build("UnsafeIter")
	if err != nil {
		return nil, err
	}
	reg := metrics.NewRegistry()
	series := metrics.NewEngineSeries(reg, "UnsafeIter", monitor.GCCoenable.String())
	eng, err := monitor.New(spec, monitor.Options{
		GC:            monitor.GCCoenable,
		Creation:      monitor.CreateEnable,
		SweepInterval: 256,
		Metrics:       series,
	})
	if err != nil {
		return nil, err
	}
	h := heap.New()
	c := h.Alloc("c")
	create, _ := spec.Symbol("create")
	update, _ := spec.Symbol("update")
	next, _ := spec.Symbol("next")
	for i := 0; i < metricsChurnEvents; i += 4 {
		it := h.Alloc("")
		eng.Emit(create, c, it)
		eng.Emit(next, it)
		h.Free(it)
		eng.Emit(update, c)
		eng.Emit(update, c)
	}
	eng.Flush()
	// Arena occupancy is read at settle, before Close: Close releases the
	// slabs and zeroes the gauges (the store no longer exists).
	arenaSlabs := series.ArenaSlabs.Value()
	arenaCap := series.ArenaCap.Value()
	arenaFree := series.ArenaFree.Value()
	eng.Close() // settles the final publication deltas into the registry

	rep := &MetricsReport{
		Events:     series.Events.Value(),
		Created:    series.Created.Value(),
		Collected:  series.Collected.Value(),
		Recycled:   series.Recycled.Value(),
		Reused:     series.Reused.Value(),
		Sweeps:     series.Sweeps.Value(),
		SweepP50Us: series.SweepSeconds.Quantile(0.50) * 1e6,
		SweepP99Us: series.SweepSeconds.Quantile(0.99) * 1e6,
		ArenaSlabs: arenaSlabs,
		ArenaCap:   arenaCap,
		ArenaFree:  arenaFree,
	}
	if rep.Created > 0 {
		rep.PoolHitRate = float64(rep.Reused) / float64(rep.Created)
	}
	return rep, nil
}
