// Creation-avoidance experiment: record one monitored DaCapo workload
// into the persistent trace store, then replay the identical stream under
// every guard configuration — static guards in audit and enforce modes
// under both creation strategies, and the profile-guided mode fed by a
// per-creation-site profile of the recorded trace. The section reports
// the Created-count and peak-occupancy reductions the guards buy and
// verifies the suppression contract against the unguarded replay: same
// per-slice verdicts, Created + Avoided == unguarded Created, and audit
// mode bit-identical (see DESIGN.md "Static creation avoidance").
//
// The shape of the results is itself a finding: under enable-set creation
// the static guard almost never fires (the enable analysis already prunes
// the creations it would catch), so the measurable reductions come from
// the full strategy — where the Figure 5 Δ-scan materializes doomed
// instances wholesale — and from the profile-guided mode, which guards
// creation sites the recorded trace proves never reach a goal.

package eval

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"rvgo/internal/cliutil"
	"rvgo/internal/monitor"
	"rvgo/internal/props"
	"rvgo/internal/trace"
)

// AvoidConfig controls the creation-avoidance tier.
type AvoidConfig struct {
	Scale float64 // workload scale (1.0 ≈ paper/50)
	Bench string  // DaCapo profile (default avrora)
	Prop  string  // property (default UnsafeIter)
	// Dir, when non-empty, keeps the recorded trace there (default: a
	// temporary directory removed after the run).
	Dir string
}

// AvoidSite is one creation site (event symbol) of the property: its
// static analysis verdicts and the per-site counters the profiled replay
// observed. ProfileGuard reports that the profile-guided mode would guard
// the site (monitors were born there and none ever reached a goal).
type AvoidSite struct {
	Event        string
	Creation     bool // ∅ ∈ ENABLE(e): e can begin a goal trace
	StaticGuard  bool // doomed start or no viable prefix
	Created      uint64
	Restepped    uint64
	ReachedGoal  uint64
	ProfileGuard bool
}

// AvoidRun is one replay measurement: a guard configuration over the
// recorded trace. Reductions are fractions of the unguarded reference
// under the same creation strategy (0 = no reduction).
type AvoidRun struct {
	Label         string // e.g. "enable/enforce", "full/off"
	Creation      string // creation strategy: enable, full
	GC            string
	Avoid         string // guard mode: off, audit, enforce
	ProfileGuided bool
	Sec           float64
	Stats         monitor.Stats
	CreatedCut    float64 // 1 - Created/reference Created
	PeakCut       float64 // 1 - PeakLive/reference PeakLive
	Identical     bool    // verdicts (and invariants) hold vs the reference
}

// AvoidReport is the creation-avoidance section of a result grid. Scale
// records the workload scale the trace was recorded at, so a baseline
// comparison can rerun the identical tier.
type AvoidReport struct {
	Bench, Prop  string
	Scale        float64
	DoomedStates int // automaton states that cannot reach the goal
	TotalStates  int
	TraceMB      float64
	Segments     int
	Sites        []AvoidSite
	Runs         []AvoidRun
}

// avoidLeg replays the recorded trace once under a guard configuration
// and returns the run row plus its sorted verdict keys.
func avoidLeg(path string, spec *monitor.Spec, label string, creation monitor.CreationStrategy, gc monitor.GCPolicy, avoid monitor.AvoidMode, guards []bool, prof *monitor.CreationProfile) (AvoidRun, []string, error) {
	var keys []string
	q := cliutil.RetroQuery{
		GC:            gc,
		Creation:      creation,
		Avoid:         avoid,
		ProfileGuards: guards,
		Profile:       prof,
		Workers:       1,
		OnVerdict:     func(v monitor.Verdict) { keys = append(keys, verdictKey(v)) },
	}
	start := time.Now()
	qr, err := cliutil.RunRetroQuery(path, spec, q)
	if err != nil {
		return AvoidRun{}, nil, fmt.Errorf("eval: avoid replay %s: %w", label, err)
	}
	sort.Strings(keys)
	cname := "enable"
	if creation == monitor.CreateFull {
		cname = "full"
	}
	run := AvoidRun{
		Label:         label,
		Creation:      cname,
		GC:            gc.String(),
		Avoid:         avoid.String(),
		ProfileGuided: guards != nil,
		Sec:           time.Since(start).Seconds(),
		Stats:         qr.Stats,
	}
	return run, keys, nil
}

// checkAgainst fills a guarded run's Identical flag and reductions from
// its unguarded reference: per-slice verdicts must match; in audit mode
// every settled counter except Avoided must too; in enforce mode Events
// and GoalVerdicts must match and Created + Avoided must equal the
// reference's Created (every suppressed creation accounted for).
func (run *AvoidRun) checkAgainst(ref AvoidRun, refKeys, keys []string) {
	run.Identical = fmt.Sprint(keys) == fmt.Sprint(refKeys)
	switch run.Avoid {
	case "audit":
		norm := run.Stats
		norm.Avoided = 0
		run.Identical = run.Identical && norm == ref.Stats
	case "enforce":
		run.Identical = run.Identical &&
			run.Stats.Events == ref.Stats.Events &&
			run.Stats.GoalVerdicts == ref.Stats.GoalVerdicts &&
			run.Stats.Created+run.Stats.Avoided == ref.Stats.Created
	}
	if ref.Stats.Created > 0 {
		run.CreatedCut = 1 - float64(run.Stats.Created)/float64(ref.Stats.Created)
	}
	if ref.Stats.PeakLive > 0 {
		run.PeakCut = 1 - float64(run.Stats.PeakLive)/float64(ref.Stats.PeakLive)
	}
}

// RunAvoid records one monitored workload and replays it under the full
// guard grid: enable-set creation with guards off/audit/enforce, the full
// (Figure 5) strategy unguarded and statically enforced, and a
// profile-guided enforce leg using the per-site profile the recorded
// trace produced.
func RunAvoid(cfg AvoidConfig) (*AvoidReport, error) {
	if cfg.Bench == "" {
		cfg.Bench = "avrora"
	}
	if cfg.Prop == "" {
		cfg.Prop = "UnsafeIter"
	}
	if cfg.Scale <= 0 {
		cfg.Scale = 0.1
	}
	dir := cfg.Dir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "rvavoid")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	spec, err := props.Build(cfg.Prop)
	if err != nil {
		return nil, err
	}
	an, err := spec.Analysis()
	if err != nil {
		return nil, err
	}
	res := &AvoidReport{Bench: cfg.Bench, Prop: cfg.Prop, Scale: cfg.Scale, TotalStates: len(an.Doomed)}
	for _, d := range an.Doomed {
		if d {
			res.DoomedStates++
		}
	}

	// Record the workload once; the replays below all read this trace, so
	// every leg sees the byte-identical stream (the retro tier proves
	// replay == online).
	path := filepath.Join(dir, fmt.Sprintf("%s_%s.rvt", cfg.Bench, cfg.Prop))
	w, err := trace.CreateForSpec(path, spec, trace.WriterOptions{})
	if err != nil {
		return nil, err
	}
	rcfg := RetroConfig{Scale: cfg.Scale, Bench: cfg.Bench, Prop: cfg.Prop}
	if _, _, _, err := onlinePass(rcfg, spec, w); err != nil {
		w.Close()
		return nil, fmt.Errorf("eval: avoid recording pass: %w", err)
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	if fi, err := os.Stat(path); err == nil {
		res.TraceMB = float64(fi.Size()) / (1 << 20)
	}

	// Enable-strategy legs: unguarded reference, audit, enforce.
	refE, refEKeys, err := avoidLeg(path, spec, "enable/off", monitor.CreateEnable, monitor.GCCoenable, monitor.AvoidOff, nil, nil)
	if err != nil {
		return nil, err
	}
	refE.Identical = true
	res.Runs = append(res.Runs, refE)
	for _, mode := range []monitor.AvoidMode{monitor.AvoidAudit, monitor.AvoidEnforce} {
		run, keys, err := avoidLeg(path, spec, "enable/"+mode.String(), monitor.CreateEnable, monitor.GCCoenable, mode, nil, nil)
		if err != nil {
			return nil, err
		}
		run.checkAgainst(refE, refEKeys, keys)
		res.Runs = append(res.Runs, run)
	}

	// Full-strategy legs (GCNone: enforce under the full strategy requires
	// it, and the unguarded reference must share the policy): the Figure 5
	// Δ-scan materializes instances the enable analysis never builds, so
	// this is where the static guard has something to suppress.
	refF, refFKeys, err := avoidLeg(path, spec, "full/off", monitor.CreateFull, monitor.GCNone, monitor.AvoidOff, nil, nil)
	if err != nil {
		return nil, err
	}
	refF.Identical = true
	res.Runs = append(res.Runs, refF)
	fullEnf, fullKeys, err := avoidLeg(path, spec, "full/enforce", monitor.CreateFull, monitor.GCNone, monitor.AvoidEnforce, nil, nil)
	if err != nil {
		return nil, err
	}
	fullEnf.checkAgainst(refF, refFKeys, fullKeys)
	res.Runs = append(res.Runs, fullEnf)

	// Profile pass: replay unguarded with a per-creation-site profile
	// attached, synthesize guards from it, then enforce them over the same
	// trace. On the DaCapo properties the only maximal-domain creation
	// site also carries every goal, so the profile typically guards
	// nothing here — the per-site counters (Sites) are the deliverable,
	// and the enforce leg proves guards that do not fire change nothing.
	prof := monitor.NewCreationProfile(spec)
	profRun, profKeys, err := avoidLeg(path, spec, "enable/profiled", monitor.CreateEnable, monitor.GCCoenable, monitor.AvoidOff, nil, prof)
	if err != nil {
		return nil, err
	}
	profRun.checkAgainst(refE, refEKeys, profKeys)
	profRun.Identical = profRun.Identical && profRun.Stats == refE.Stats
	res.Runs = append(res.Runs, profRun)
	guards := prof.Guards()
	pEnf, pKeys, err := avoidLeg(path, spec, "enable/profile-enforce", monitor.CreateEnable, monitor.GCCoenable, monitor.AvoidEnforce, guards, nil)
	if err != nil {
		return nil, err
	}
	pEnf.checkAgainst(refE, refEKeys, pKeys)
	res.Runs = append(res.Runs, pEnf)

	// Per-site summary: static analysis verdicts plus profiled counters.
	for sym, ev := range spec.Events {
		site := AvoidSite{
			Event:        ev.Name,
			Created:      prof.Created[sym],
			Restepped:    prof.Restepped[sym],
			ReachedGoal:  prof.ReachedGoal[sym],
			ProfileGuard: guards[sym],
		}
		if sym < len(an.Creation) {
			site.Creation = an.Creation[sym]
		}
		if an.Guards != nil {
			gi := an.Guards[sym]
			site.StaticGuard = gi.DoomedStart || gi.NoViablePrefix
		}
		res.Sites = append(res.Sites, site)
	}

	// Segment count from any replay of the store.
	if r, err := trace.Open(path); err == nil {
		res.Segments = r.Segments()
	}
	return res, nil
}

// Verify returns the tier's hard failures: a guarded replay that broke
// the suppression contract, or a full-strategy enforce leg whose guard
// never fired (the acceptance criterion is a measurable reduction).
func (r *AvoidReport) Verify() []string {
	var bad []string
	for _, run := range r.Runs {
		if !run.Identical {
			bad = append(bad, fmt.Sprintf("%s: diverged from its unguarded reference", run.Label))
		}
		if run.Label == "full/enforce" && run.Stats.Avoided == 0 {
			bad = append(bad, "full/enforce: static guard never fired — no creation avoided")
		}
	}
	return bad
}
